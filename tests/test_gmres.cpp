#include <gtest/gtest.h>

#include <cmath>

#include "core/gmres.hpp"
#include "mesh/generate.hpp"
#include "sparse/ilu.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

Bcsr4 random_dd(const CsrGraph& adj, unsigned seed, double dd = 8.0) {
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (idx_t r = 0; r < m.num_rows(); ++r)
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      double* b = m.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (m.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += dd;
    }
  return m;
}

TEST(Gmres, SolvesDiagonalSystemInOneIteration) {
  const std::size_t n = 40;
  AVec<double> b(n), x(n, 0.0);
  Rng rng(1);
  for (auto& bi : b) bi = rng.uniform(-1, 1);
  const LinearOp a = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 3.0 * in[i];
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-12;
  const GmresResult r = gmres_solve(a, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], b[i] / 3.0, 1e-10);
}

TEST(Gmres, SolvesBcsrSystemUnpreconditioned) {
  const Bcsr4 a = random_dd(generate_box(3, 3, 2).vertex_graph(), 2);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n), x(n, 0.0);
  Rng rng(3);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-10;
  opt.max_iters = 300;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-6);
}

TEST(Gmres, IluPreconditioningCutsIterations) {
  const Bcsr4 a = random_dd(generate_box(4, 4, 3).vertex_graph(), 4, 5.0);
  const IluFactor f = factorize_ilu(a, symbolic_ilu(a.structure(), 0));
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n);
  Rng rng(5);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  const LinearOp pre = [&](std::span<const double> in, std::span<double> out) {
    trsv_serial(f, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-8;
  opt.max_iters = 300;
  AVec<double> x1(n, 0.0), x2(n, 0.0);
  const GmresResult plain = gmres_solve(op, nullptr, b, x1, opt, vec);
  const GmresResult prec = gmres_solve(op, &pre, b, x2, opt, vec);
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x2[i], xref[i], 1e-5);
}

TEST(Gmres, ExactPreconditionerConvergesInOneIteration) {
  // Dense-pattern ILU is an exact LU: preconditioned operator = identity.
  std::vector<std::pair<idx_t, idx_t>> es;
  for (idx_t i = 0; i < 6; ++i)
    for (idx_t j = i + 1; j < 6; ++j) es.emplace_back(i, j);
  const Bcsr4 a = random_dd(build_csr_from_edges(6, es), 6);
  const IluFactor f = factorize_ilu(a, symbolic_ilu(a.structure(), 0));
  const std::size_t n = 6 * kBs;
  AVec<double> b(n), x(n, 0.0);
  Rng rng(7);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  const LinearOp pre = [&](std::span<const double> in, std::span<double> out) {
    trsv_serial(f, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-10;
  const GmresResult r = gmres_solve(op, &pre, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(Gmres, RestartStillConverges) {
  const Bcsr4 a = random_dd(generate_box(3, 3, 3).vertex_graph(), 8, 4.0);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n), x(n, 0.0);
  Rng rng(9);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.restart = 5;  // force many restart cycles
  opt.rtol = 1e-8;
  opt.max_iters = 400;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 5);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-4);
}

// Regression: on happy breakdown (hj1 == 0) the solver used to leave
// v[j+1] holding stale data (zeros on the first cycle, garbage from the
// previous restart cycle afterwards) and kept orthogonalizing against it,
// producing all-zero Hessenberg columns and NaN in the back-substitution.
// Both operators below are rank-deficient in Krylov space — the basis is
// exhausted after 1 (resp. 2) vectors with an *exactly* zero remainder
// (unit-basis b keeps every dot product and norm exact in floating point).
// rtol = -1 makes the relative-residual exit unreachable, so only the
// breakdown path can terminate the Arnoldi loop.
TEST(Gmres, HappyBreakdownAtFirstColumnYieldsExactSolution) {
  const std::size_t n = 16;
  AVec<double> b(n, 0.0), x(n, 0.0);
  b[3] = 1.0;  // beta == 1 exactly => v0 == b and A v0 - h00 v0 == 0
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.restart = 4;
  opt.max_iters = 8;
  opt.rtol = -1.0;
  opt.atol = 0.0;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(std::isnan(x[i])) << i;
    EXPECT_EQ(x[i], b[i]) << i;  // exact, not just close
  }
}

TEST(Gmres, HappyBreakdownMidCycleYieldsExactSolution) {
  // Swap operator: A e3 = e5, A e5 = e3, identity elsewhere. With b = e3
  // the Krylov space is span{e3, e5}; the j = 1 Arnoldi step leaves an
  // exactly zero vector mid-cycle. Solution of A x = b is x = e5.
  const std::size_t n = 16;
  AVec<double> b(n, 0.0), x(n, 0.0);
  b[3] = 1.0;
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
    out[3] = in[5];
    out[5] = in[3];
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.restart = 4;
  opt.max_iters = 8;
  opt.rtol = -1.0;
  opt.atol = 0.0;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(std::isnan(x[i])) << i;
    EXPECT_EQ(x[i], i == 5 ? 1.0 : 0.0) << i;
  }
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  AVec<double> b(16, 0.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
  };
  VecOps vec{1};
  const GmresResult r = gmres_solve(op, nullptr, b, x, GmresOptions{}, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Gmres, CountsReductionsInProfile) {
  AVec<double> b(16, 1.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 2.0 * in[i];
  };
  VecOps vec{1};
  Profile prof;
  GmresOptions opt;
  opt.rtol = 1e-12;
  gmres_solve(op, nullptr, b, x, opt, vec, &prof);
  EXPECT_GT(prof.reductions, 0u);
}

TEST(Gmres, ReductionCountIsPerGlobalReductionNotPerSweep) {
  // A = 2I converges in one column: 1 residual norm + (j+2 = 2) for the
  // fused MGS column — its dots are sequentially dependent, so fusing the
  // sweeps does not change the number of global reductions performed.
  AVec<double> b(16, 1.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 2.0 * in[i];
  };
  VecOps vec{1};
  Profile prof;
  GmresOptions opt;
  opt.rtol = 1e-12;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec, &prof);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_EQ(prof.reductions, 3u);
}

}  // namespace
}  // namespace fun3d
