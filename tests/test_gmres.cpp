#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>

#include "core/gmres.hpp"
#include "mesh/generate.hpp"
#include "parallel/team.hpp"
#include "sparse/ilu.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

/// Runs fn() inside a nested region whose inner teams are capped at one
/// thread — the environment where run_team detects a shortfall.
template <class Fn>
void with_capped_team(Fn&& fn) {
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    fn();
  }
  omp_set_max_active_levels(saved);
}

Bcsr4 random_dd(const CsrGraph& adj, unsigned seed, double dd = 8.0) {
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (idx_t r = 0; r < m.num_rows(); ++r)
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      double* b = m.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (m.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += dd;
    }
  return m;
}

TEST(Gmres, SolvesDiagonalSystemInOneIteration) {
  const std::size_t n = 40;
  AVec<double> b(n), x(n, 0.0);
  Rng rng(1);
  for (auto& bi : b) bi = rng.uniform(-1, 1);
  const LinearOp a = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 3.0 * in[i];
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-12;
  const GmresResult r = gmres_solve(a, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], b[i] / 3.0, 1e-10);
}

TEST(Gmres, SolvesBcsrSystemUnpreconditioned) {
  const Bcsr4 a = random_dd(generate_box(3, 3, 2).vertex_graph(), 2);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n), x(n, 0.0);
  Rng rng(3);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-10;
  opt.max_iters = 300;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-6);
}

TEST(Gmres, IluPreconditioningCutsIterations) {
  const Bcsr4 a = random_dd(generate_box(4, 4, 3).vertex_graph(), 4, 5.0);
  const IluFactor f = factorize_ilu(a, symbolic_ilu(a.structure(), 0));
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n);
  Rng rng(5);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  const LinearOp pre = [&](std::span<const double> in, std::span<double> out) {
    trsv_serial(f, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-8;
  opt.max_iters = 300;
  AVec<double> x1(n, 0.0), x2(n, 0.0);
  const GmresResult plain = gmres_solve(op, nullptr, b, x1, opt, vec);
  const GmresResult prec = gmres_solve(op, &pre, b, x2, opt, vec);
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x2[i], xref[i], 1e-5);
}

TEST(Gmres, ExactPreconditionerConvergesInOneIteration) {
  // Dense-pattern ILU is an exact LU: preconditioned operator = identity.
  std::vector<std::pair<idx_t, idx_t>> es;
  for (idx_t i = 0; i < 6; ++i)
    for (idx_t j = i + 1; j < 6; ++j) es.emplace_back(i, j);
  const Bcsr4 a = random_dd(build_csr_from_edges(6, es), 6);
  const IluFactor f = factorize_ilu(a, symbolic_ilu(a.structure(), 0));
  const std::size_t n = 6 * kBs;
  AVec<double> b(n), x(n, 0.0);
  Rng rng(7);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  const LinearOp pre = [&](std::span<const double> in, std::span<double> out) {
    trsv_serial(f, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.rtol = 1e-10;
  const GmresResult r = gmres_solve(op, &pre, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(Gmres, RestartStillConverges) {
  const Bcsr4 a = random_dd(generate_box(3, 3, 3).vertex_graph(), 8, 4.0);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n), x(n, 0.0);
  Rng rng(9);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.restart = 5;  // force many restart cycles
  opt.rtol = 1e-8;
  opt.max_iters = 400;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 5);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-4);
}

// Regression: on happy breakdown (hj1 == 0) the solver used to leave
// v[j+1] holding stale data (zeros on the first cycle, garbage from the
// previous restart cycle afterwards) and kept orthogonalizing against it,
// producing all-zero Hessenberg columns and NaN in the back-substitution.
// Both operators below are rank-deficient in Krylov space — the basis is
// exhausted after 1 (resp. 2) vectors with an *exactly* zero remainder
// (unit-basis b keeps every dot product and norm exact in floating point).
// rtol = -1 makes the relative-residual exit unreachable, so only the
// breakdown path can terminate the Arnoldi loop.
TEST(Gmres, HappyBreakdownAtFirstColumnYieldsExactSolution) {
  const std::size_t n = 16;
  AVec<double> b(n, 0.0), x(n, 0.0);
  b[3] = 1.0;  // beta == 1 exactly => v0 == b and A v0 - h00 v0 == 0
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.restart = 4;
  opt.max_iters = 8;
  opt.rtol = -1.0;
  opt.atol = 0.0;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(std::isnan(x[i])) << i;
    EXPECT_EQ(x[i], b[i]) << i;  // exact, not just close
  }
}

TEST(Gmres, HappyBreakdownMidCycleYieldsExactSolution) {
  // Swap operator: A e3 = e5, A e5 = e3, identity elsewhere. With b = e3
  // the Krylov space is span{e3, e5}; the j = 1 Arnoldi step leaves an
  // exactly zero vector mid-cycle. Solution of A x = b is x = e5.
  const std::size_t n = 16;
  AVec<double> b(n, 0.0), x(n, 0.0);
  b[3] = 1.0;
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
    out[3] = in[5];
    out[5] = in[3];
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.restart = 4;
  opt.max_iters = 8;
  opt.rtol = -1.0;
  opt.atol = 0.0;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(std::isnan(x[i])) << i;
    EXPECT_EQ(x[i], i == 5 ? 1.0 : 0.0) << i;
  }
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  AVec<double> b(16, 0.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
  };
  VecOps vec{1};
  const GmresResult r = gmres_solve(op, nullptr, b, x, GmresOptions{}, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Gmres, CountsReductionsInProfile) {
  AVec<double> b(16, 1.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 2.0 * in[i];
  };
  VecOps vec{1};
  Profile prof;
  GmresOptions opt;
  opt.rtol = 1e-12;
  gmres_solve(op, nullptr, b, x, opt, vec, &prof);
  EXPECT_GT(prof.reductions, 0u);
}

TEST(Gmres, ReductionCountIsPerGlobalReductionNotPerSweep) {
  // A = 2I converges in one column: 1 residual norm + (j+2 = 2) for the
  // fused MGS column — its dots are sequentially dependent, so fusing the
  // sweeps does not change the number of global reductions performed —
  // + 1 for the true-residual norm the converged exit path recomputes.
  AVec<double> b(16, 1.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 2.0 * in[i];
  };
  VecOps vec{1};
  Profile prof;
  GmresOptions opt;
  opt.rtol = 1e-12;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec, &prof);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_EQ(prof.reductions, 4u);
  EXPECT_EQ(prof.gmres.reductions, 4u);
  EXPECT_EQ(prof.gmres.columns, 1u);
}

// ---- pipelined mode (GmresMode::kPipelined, DESIGN.md §9) ----

TEST(Gmres, PipelinedMatchesClassicalSolution) {
  const Bcsr4 a = random_dd(generate_box(3, 3, 2).vertex_graph(), 2);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n);
  Rng rng(3);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  // The fused single-reduction projection is CGS-like: it loses
  // orthogonality near machine-precision residuals (rtol <= 1e-8 on this
  // system trips the cancellation fallback), which is why the solver keeps
  // the classical MGS escape hatch. At production-style tolerances the two
  // modes walk the same Krylov space step for step.
  opt.rtol = 1e-6;
  opt.max_iters = 300;
  AVec<double> x1(n, 0.0), x2(n, 0.0);
  const GmresResult classical = gmres_solve(op, nullptr, b, x1, opt, vec);
  opt.mode = GmresMode::kPipelined;
  const GmresResult pipelined = gmres_solve(op, nullptr, b, x2, opt, vec);
  ASSERT_TRUE(classical.converged);
  ASSERT_TRUE(pipelined.converged);
  // Same Krylov space, same convergence behaviour: iteration parity +-1.
  EXPECT_NEAR(pipelined.iterations, classical.iterations, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x2[i], xref[i], 1e-4);
}

TEST(Gmres, PipelinedPerformsOneReductionPerColumn) {
  const Bcsr4 a = random_dd(generate_box(3, 3, 2).vertex_graph(), 2);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n);
  Rng rng(3);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  GmresOptions opt;
  // Stay in the regime where the fused projection is numerically clean
  // (no cancellation fallbacks); see PipelinedMatchesClassicalSolution.
  opt.rtol = 1e-6;
  opt.max_iters = 300;

  Profile classical_prof;
  AVec<double> x1(n, 0.0);
  gmres_solve(op, nullptr, b, x1, opt, vec, &classical_prof);
  opt.mode = GmresMode::kPipelined;
  Profile prof;
  AVec<double> x2(n, 0.0);
  const GmresResult r = gmres_solve(op, nullptr, b, x2, opt, vec, &prof);
  ASSERT_TRUE(r.converged);

  // Every column went through the fused 1-reduction path; the only other
  // reductions are the cycle-head residual norms (one per cycle + the
  // converged exit's true-residual check). Within a single restart cycle
  // that is exactly columns + 2 reductions in total.
  EXPECT_EQ(prof.gmres.fallback_columns, 0u);
  EXPECT_EQ(prof.gmres.pipelined_columns, prof.gmres.columns);
  ASSERT_GT(prof.gmres.columns, 2u);
  ASSERT_LE(r.iterations, opt.restart);  // single cycle
  EXPECT_EQ(prof.gmres.reductions, prof.gmres.columns + 2);
  // O(1) per column versus the classical j+2 growth.
  EXPECT_LT(prof.gmres.reductions_per_column(), 2.0);
  EXPECT_GT(classical_prof.gmres.reductions_per_column(), 2.0);
  EXPECT_LT(prof.reductions, classical_prof.reductions);
}

TEST(Gmres, PipelinedFallsBackOnCancellationAndBreakdown) {
  // A = 2I: the first column's candidate z_0 = 2 v_0 lies entirely in the
  // span of v_0, so the Pythagorean norm estimate cancels to exactly zero
  // and the column re-runs through classical MGS — which then detects the
  // (happy) breakdown and exits with the exact solution.
  AVec<double> b(16, 1.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 2.0 * in[i];
  };
  VecOps vec{1};
  Profile prof;
  GmresOptions opt;
  opt.rtol = 1e-12;
  opt.mode = GmresMode::kPipelined;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec, &prof);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prof.gmres.columns, 1u);
  EXPECT_EQ(prof.gmres.fallback_columns, 1u);
  EXPECT_EQ(prof.gmres.pipelined_columns, 0u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(x[i], 0.5);
}

TEST(Gmres, PipelinedHappyBreakdownMidCycleYieldsExactSolution) {
  // The swap-operator case above, pipelined: the j = 1 column cancels and
  // falls back, the fallback detects the exact breakdown, and the solve
  // still produces the exact solution (no NaN from the lagged norm).
  const std::size_t n = 16;
  AVec<double> b(n, 0.0), x(n, 0.0);
  b[3] = 1.0;
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
    out[3] = in[5];
    out[5] = in[3];
  };
  VecOps vec{1};
  GmresOptions opt;
  opt.restart = 4;
  opt.max_iters = 8;
  opt.rtol = -1.0;
  opt.atol = 0.0;
  opt.mode = GmresMode::kPipelined;
  const GmresResult r = gmres_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(std::isnan(x[i])) << i;
    EXPECT_EQ(x[i], i == 5 ? 1.0 : 0.0) << i;
  }
}

TEST(GmresShortfall, PipelinedCappedTeamBitwiseMatchesUncapped) {
  // A capped OpenMP team aborts every fused split-phase sweep inside the
  // pipelined solve; the kAbort fallbacks must keep the entire solve —
  // solution vector included — bitwise-identical to the uncapped run.
  const Bcsr4 a = random_dd(generate_box(3, 3, 2).vertex_graph(), 2);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> b(n);
  Rng rng(13);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  const VecOps vec{4};
  GmresOptions opt;
  opt.rtol = 1e-8;
  opt.max_iters = 300;
  opt.mode = GmresMode::kPipelined;

  AVec<double> x_ref(n, 0.0);
  const GmresResult r_ref = gmres_solve(op, nullptr, b, x_ref, opt, vec);
  ASSERT_TRUE(r_ref.converged);

  reset_team_shortfall_stats();
  const VecOpsStats before = vecops_stats();
  AVec<double> x_cap(n, 0.0);
  GmresResult r_cap;
  with_capped_team(
      [&] { r_cap = gmres_solve(op, nullptr, b, x_cap, opt, vec); });
  const VecOpsStats after = vecops_stats();

  EXPECT_GT(team_shortfall_events(), 0u);
  EXPECT_GT(after.split_fallbacks, before.split_fallbacks);
  EXPECT_TRUE(r_cap.converged);
  EXPECT_EQ(r_cap.iterations, r_ref.iterations);
  EXPECT_EQ(r_cap.relative_residual, r_ref.relative_residual);  // bitwise
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x_cap[i], x_ref[i]);
  reset_team_shortfall_stats();
}

// Regression for the converged exit path: the solver used to report the
// Givens recurrence estimate as `relative_residual`; with a preconditioner
// the estimate drifts from the truth. The exit path must recompute the
// true preconditioned residual — bitwise what an independent
// ||M^{-1}(b - A x)|| / ||M^{-1} b|| evaluation yields.
TEST(Gmres, ReportsTrueResidualNotGivensEstimateOnExit) {
  // Weak diagonal dominance + ILU(0): enough arithmetic per iteration for
  // the recurrence to drift measurably.
  const Bcsr4 a = random_dd(generate_box(4, 4, 3).vertex_graph(), 11, 2.2);
  const IluFactor f = factorize_ilu(a, symbolic_ilu(a.structure(), 0));
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> b(n);
  Rng rng(12);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  const LinearOp pre = [&](std::span<const double> in, std::span<double> out) {
    trsv_serial(f, in, out);
  };
  VecOps vec{1};
  for (const GmresMode mode : {GmresMode::kClassical, GmresMode::kPipelined}) {
    GmresOptions opt;
    opt.rtol = 1e-6;
    opt.max_iters = 400;
    opt.mode = mode;
    AVec<double> x(n, 0.0);
    const GmresResult r = gmres_solve(op, &pre, b, x, opt, vec);
    ASSERT_TRUE(r.converged);

    // Independent true-residual evaluation with the same primitives the
    // exit path uses: must match the report bit for bit.
    AVec<double> tmp(n), pr(n);
    auto pre_norm = [&](std::span<const double> q, std::span<double> t,
                        std::span<double> p) {
      op(q, t);
      vec.aypx(-1.0, b, t);
      pre(t, p);
      return vec.norm2(p);
    };
    AVec<double> zero(n, 0.0), t0(n), p0(n);
    const double beta0 = pre_norm(zero, t0, p0);
    const double true_rel = pre_norm(x, tmp, pr) / beta0;
    EXPECT_DOUBLE_EQ(r.relative_residual, true_rel);
    EXPECT_LE(r.relative_residual, opt.rtol);
    // ... and the Givens estimate it replaced is visibly different.
    EXPECT_NE(r.relative_residual, r.estimate_residual);
  }
}

}  // namespace
}  // namespace fun3d
