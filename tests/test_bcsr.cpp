#include <gtest/gtest.h>

#include "mesh/generate.hpp"
#include "sparse/bcsr.hpp"

namespace fun3d {
namespace {

CsrGraph small_graph() {
  // 0-1, 1-2 path (no self loops; diagonal added by from_adjacency).
  return build_csr_from_edges(
      3, std::vector<std::pair<idx_t, idx_t>>{{0, 1}, {1, 2}});
}

TEST(Bcsr, PatternIncludesDiagonal) {
  const Bcsr4 m = Bcsr4::from_adjacency(small_graph());
  EXPECT_EQ(m.num_rows(), 3);
  EXPECT_EQ(m.num_blocks(), 7u);  // 4 off-diag + 3 diag
  for (idx_t r = 0; r < 3; ++r) {
    EXPECT_EQ(m.col(m.diag_index(r)), r);
    // Columns sorted.
    const auto cols = m.row_cols(r);
    for (std::size_t i = 1; i < cols.size(); ++i)
      EXPECT_LT(cols[i - 1], cols[i]);
  }
}

TEST(Bcsr, FindLocatesEntries) {
  const Bcsr4 m = Bcsr4::from_adjacency(small_graph());
  EXPECT_GE(m.find(0, 1), 0);
  EXPECT_GE(m.find(1, 0), 0);
  EXPECT_EQ(m.find(0, 2), -1);
}

TEST(Bcsr, AddBlockAccumulates) {
  Bcsr4 m = Bcsr4::from_adjacency(small_graph());
  double blk[kBs2];
  for (int i = 0; i < kBs2; ++i) blk[i] = i;
  m.add_block(0, 1, blk);
  m.add_block(0, 1, blk);
  const double* b = m.block(m.find(0, 1));
  for (int i = 0; i < kBs2; ++i) EXPECT_DOUBLE_EQ(b[i], 2.0 * i);
}

TEST(Bcsr, AddBlockOutsidePatternThrows) {
  Bcsr4 m = Bcsr4::from_adjacency(small_graph());
  double blk[kBs2] = {};
  EXPECT_THROW(m.add_block(0, 2, blk), std::out_of_range);
}

TEST(Bcsr, ShiftDiagonalAddsScalarIdentity) {
  Bcsr4 m = Bcsr4::from_adjacency(small_graph());
  const std::vector<double> s{1.0, 2.0, 3.0};
  m.shift_diagonal(s);
  for (idx_t r = 0; r < 3; ++r) {
    const double* d = m.block(m.diag_index(r));
    for (int i = 0; i < kBs; ++i)
      for (int j = 0; j < kBs; ++j)
        EXPECT_DOUBLE_EQ(d[i * kBs + j],
                         i == j ? s[static_cast<std::size_t>(r)] : 0.0);
  }
}

TEST(Bcsr, SetZeroClears) {
  Bcsr4 m = Bcsr4::from_adjacency(small_graph());
  const std::vector<double> s{1, 1, 1};
  m.shift_diagonal(s);
  m.set_zero();
  for (std::size_t nz = 0; nz < m.num_blocks(); ++nz)
    for (int i = 0; i < kBs2; ++i)
      EXPECT_EQ(m.block(static_cast<idx_t>(nz))[i], 0.0);
}

TEST(Bcsr, StructureMatchesMeshAdjacency) {
  const TetMesh mesh = generate_box(3, 3, 3);
  const Bcsr4 m = Bcsr4::from_adjacency(mesh.vertex_graph());
  EXPECT_EQ(m.num_blocks(),
            2 * mesh.edges.size() + static_cast<std::size_t>(mesh.num_vertices));
  const CsrGraph s = m.structure();
  EXPECT_EQ(s.num_vertices(), mesh.num_vertices);
  EXPECT_EQ(s.num_arcs(), m.num_blocks());
}

TEST(Bcsr, StreamBytesScalesWithBlocks) {
  const Bcsr4 m = Bcsr4::from_adjacency(small_graph());
  EXPECT_EQ(m.stream_bytes(),
            7u * (kBs2 * 8 + 4) + 4u * 4);
}

}  // namespace
}  // namespace fun3d
