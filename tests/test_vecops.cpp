#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <vector>

#include "core/vecops.hpp"
#include "parallel/team.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

/// Runs fn() inside a nested region whose inner teams are capped at one
/// thread — the environment where run_team detects a shortfall.
template <class Fn>
void with_capped_team(Fn&& fn) {
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    fn();
  }
  omp_set_max_active_levels(saved);
}

/// Deterministic multi-vector problem: k basis vectors + target w.
struct MgsProblem {
  std::vector<AVec<double>> basis;
  std::vector<std::span<const double>> spans;
  AVec<double> w;

  MgsProblem(std::size_t k, std::size_t n, unsigned seed) : w(n) {
    Rng rng(seed);
    basis.resize(k);
    for (auto& b : basis) {
      b.resize(n);
      for (auto& bi : b) bi = rng.uniform(-1, 1);
    }
    for (auto& b : basis) spans.emplace_back(b.data(), n);
    for (auto& wi : w) wi = rng.uniform(-1, 1);
  }
  [[nodiscard]] std::span<const std::span<const double>> basis_span() const {
    return {spans.data(), spans.size()};
  }
};

class VecOpsTest : public ::testing::TestWithParam<int> {
 protected:
  VecOps ops() const { return VecOps{GetParam()}; }
};

TEST_P(VecOpsTest, DotAndNorm) {
  const VecOps v = ops();
  AVec<double> x(1000), y(1000);
  Rng rng(1);
  double ref = 0, nx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
    ref += x[i] * y[i];
    nx += x[i] * x[i];
  }
  EXPECT_NEAR(v.dot(x, y), ref, 1e-10);
  EXPECT_NEAR(v.norm2(x), std::sqrt(nx), 1e-10);
}

TEST_P(VecOpsTest, AxpyFamilies) {
  const VecOps v = ops();
  AVec<double> x(257), y(257), w(257);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 1.0;
  }
  v.waxpy(2.0, x, y, w);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_DOUBLE_EQ(w[i], 1.0 + 2.0 * static_cast<double>(i));
  v.axpy(-1.0, x, w);  // w = 1 + i
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_DOUBLE_EQ(w[i], 1.0 + static_cast<double>(i));
  v.aypx(0.5, x, w);  // w = x + 0.5 w
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_DOUBLE_EQ(w[i], static_cast<double>(i) + 0.5 * (1.0 + static_cast<double>(i)));
  v.scale(2.0, w);
  v.set(0.0, w);
  for (double wi : w) EXPECT_EQ(wi, 0.0);
}

TEST_P(VecOpsTest, CopyIsExact) {
  const VecOps v = ops();
  AVec<double> x(123), y(123, 0.0);
  Rng rng(2);
  for (auto& xi : x) xi = rng.uniform(-5, 5);
  v.copy(x, y);
  EXPECT_EQ(x, y);
}

TEST_P(VecOpsTest, MaxpyAndMdot) {
  const VecOps v = ops();
  const std::size_t n = 300;
  AVec<double> x1(n), x2(n), x3(n), y(n, 1.0);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(-1, 1);
    x2[i] = rng.uniform(-1, 1);
    x3[i] = rng.uniform(-1, 1);
  }
  const double a[3] = {2.0, -1.0, 0.5};
  std::vector<std::span<const double>> xs{{x1.data(), n}, {x2.data(), n},
                                          {x3.data(), n}};
  AVec<double> yref(y);
  for (std::size_t i = 0; i < n; ++i)
    yref[i] += a[0] * x1[i] + a[1] * x2[i] + a[2] * x3[i];
  v.maxpy(std::span<const double>(a, 3),
          std::span<const std::span<const double>>(xs.data(), 3), y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], yref[i], 1e-12);

  double dots[3];
  v.mdot(std::span<const std::span<const double>>(xs.data(), 3), y,
         std::span<double>(dots, 3));
  EXPECT_NEAR(dots[0], v.dot(x1, y), 1e-12);
}

TEST_P(VecOpsTest, ReductionsAreDeterministic) {
  const VecOps v = ops();
  AVec<double> x(10007);
  Rng rng(4);
  for (auto& xi : x) xi = rng.uniform(-1, 1);
  const double d1 = v.norm2(x);
  const double d2 = v.norm2(x);
  EXPECT_EQ(d1, d2);  // bitwise-identical run to run
}

TEST_P(VecOpsTest, FusedMdotBitwiseEqualsIndependentDots) {
  const VecOps v = ops();
  const std::size_t k = 5, n = 1237;
  const MgsProblem p(k, n, 21);
  double fused[5];
  v.mdot(p.basis_span(), p.w, std::span<double>(fused, k));
  for (std::size_t i = 0; i < k; ++i) {
    const double ref = v.dot(p.spans[i], p.w);
    EXPECT_EQ(fused[i], ref) << "component " << i;  // bitwise
  }
}

TEST_P(VecOpsTest, FusedMdotCountsOneBatch) {
  const VecOps v = ops();
  const MgsProblem p(3, 100, 22);
  double out[3];
  const VecOpsStats before = vecops_stats();
  v.mdot(p.basis_span(), p.w, std::span<double>(out, 3));
  const VecOpsStats after = vecops_stats();
  EXPECT_EQ(after.mdot_batches, before.mdot_batches + 1);
  EXPECT_EQ(after.mdot_components, before.mdot_components + 3);
  EXPECT_EQ(after.fused_sweeps, before.fused_sweeps + 1);
  EXPECT_EQ(after.unfused_sweeps, before.unfused_sweeps + 3);
  EXPECT_GT(after.fused_bytes, before.fused_bytes);
  EXPECT_LT(after.fused_bytes - before.fused_bytes,
            after.unfused_bytes - before.unfused_bytes);
}

TEST_P(VecOpsTest, DotAxpyBitwiseEqualsAxpyThenDot) {
  const VecOps v = ops();
  const std::size_t n = 999;
  const MgsProblem p(2, n, 23);
  AVec<double> w_ref(p.w), w_fused(p.w);
  v.axpy(-0.75, p.spans[0], w_ref);
  const double ref = v.dot(p.spans[1], w_ref);
  const double fused = v.dot_axpy(-0.75, p.spans[0], p.spans[1], w_fused);
  EXPECT_EQ(fused, ref);
  EXPECT_EQ(w_ref, w_fused);
}

TEST_P(VecOpsTest, OrthogonalizeBitwiseEqualsUnfusedMgs) {
  const VecOps v = ops();
  const std::size_t k = 6, n = 2003;
  const MgsProblem p(k, n, 24);
  // Unfused reference: the dot/axpy/norm2 sequence GMRES used to run.
  AVec<double> w_ref(p.w);
  std::vector<double> h_ref(k + 1);
  for (std::size_t i = 0; i < k; ++i) {
    h_ref[i] = v.dot(p.spans[i], w_ref);
    v.axpy(-h_ref[i], p.spans[i], w_ref);
  }
  h_ref[k] = v.norm2(w_ref);

  AVec<double> w_fused(p.w);
  std::vector<double> h_fused(k + 1, 0.0);
  const double hk = v.orthogonalize(p.basis_span(), w_fused,
                                    std::span<double>(h_fused));
  EXPECT_EQ(hk, h_ref[k]);
  for (std::size_t i = 0; i <= k; ++i)
    EXPECT_EQ(h_fused[i], h_ref[i]) << "h[" << i << "]";
  EXPECT_EQ(w_ref, w_fused);
}

TEST_P(VecOpsTest, OrthogonalizeEmptyBasisIsNorm) {
  const VecOps v = ops();
  const MgsProblem p(1, 511, 25);
  AVec<double> w(p.w);
  double h[1];
  const double hk = v.orthogonalize({}, w, std::span<double>(h, 1));
  EXPECT_EQ(hk, v.norm2(p.w));
  EXPECT_EQ(w, p.w);  // untouched
}

INSTANTIATE_TEST_SUITE_P(Threads, VecOpsTest, ::testing::Values(1, 2, 4));

TEST(VecOpsShortfall, FusedKernelsBitwiseIdenticalUnderCappedTeam) {
  const VecOps v{4};
  const std::size_t k = 4, n = 1501;
  const MgsProblem p(k, n, 31);

  // Uncapped references.
  double mdot_ref[4];
  v.mdot(p.basis_span(), p.w, std::span<double>(mdot_ref, k));
  AVec<double> w_ref(p.w);
  std::vector<double> h_ref(k + 1);
  const double hk_ref =
      v.orthogonalize(p.basis_span(), w_ref, std::span<double>(h_ref));

  reset_team_shortfall_stats();
  const VecOpsStats before = vecops_stats();
  double mdot_cap[4];
  AVec<double> w_cap(p.w);
  std::vector<double> h_cap(k + 1);
  double hk_cap = 0;
  with_capped_team([&] {
    v.mdot(p.basis_span(), p.w, std::span<double>(mdot_cap, k));
    hk_cap = v.orthogonalize(p.basis_span(), w_cap, std::span<double>(h_cap));
  });
  const VecOpsStats after = vecops_stats();

  // The capped runs are counted, never silent...
  EXPECT_GT(team_shortfall_events(), 0u);
  EXPECT_EQ(team_last_planned(), 4);
  EXPECT_EQ(team_last_delivered(), 1);
  EXPECT_EQ(after.orthogonalize_fallbacks, before.orthogonalize_fallbacks + 1);
  // ...and bitwise-identical to the uncapped results.
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(mdot_cap[i], mdot_ref[i]);
  EXPECT_EQ(hk_cap, hk_ref);
  for (std::size_t i = 0; i <= k; ++i) EXPECT_EQ(h_cap[i], h_ref[i]);
  EXPECT_EQ(w_cap, w_ref);
  reset_team_shortfall_stats();
}

TEST_P(VecOpsTest, SplitPhaseMdotBitwiseEqualsMdot) {
  const VecOps v = ops();
  const std::size_t k = 5, n = 1237;
  const MgsProblem p(k, n, 21);
  double fused[5], split[5];
  v.mdot(p.basis_span(), p.w, std::span<double>(fused, k));
  MDotBatch batch = v.mdot_start(p.basis_span(), p.w);
  v.mdot_finish(batch, std::span<double>(split, k));
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(split[i], fused[i]) << "component " << i;  // bitwise
    const double ref = v.dot(p.spans[i], p.w);
    EXPECT_EQ(split[i], ref) << "component " << i;
  }
}

TEST_P(VecOpsTest, SplitPhaseMdotCountsOneBatch) {
  const VecOps v = ops();
  const MgsProblem p(3, 100, 22);
  double out[3];
  const VecOpsStats before = vecops_stats();
  MDotBatch batch = v.mdot_start(p.basis_span(), p.w);
  v.mdot_finish(batch, std::span<double>(out, 3));
  const VecOpsStats after = vecops_stats();
  EXPECT_EQ(after.split_batches, before.split_batches + 1);
  // If the environment itself caps the team (OMP_THREAD_LIMIT in the
  // shortfall matrix), the start sweep aborts and the finish is counted
  // as exactly one fallback; otherwise no fallback happens.
  EXPECT_EQ(after.split_fallbacks,
            before.split_fallbacks + (batch.fused ? 0 : 1));
  EXPECT_EQ(after.fused_sweeps, before.fused_sweeps + 1);
  EXPECT_EQ(after.unfused_sweeps, before.unfused_sweeps + 3);
}

TEST_P(VecOpsTest, SplitPhaseToleratesWorkBetweenStartAndFinish) {
  // The point of the split: unrelated kernels run between the two phases
  // without perturbing the posted partials.
  const VecOps v = ops();
  const std::size_t k = 4, n = 2011;
  const MgsProblem p(k, n, 23);
  double ref[4], split[4];
  v.mdot(p.basis_span(), p.w, std::span<double>(ref, k));
  MDotBatch batch = v.mdot_start(p.basis_span(), p.w);
  AVec<double> scratch(n, 1.0);  // overlapped work on unrelated storage
  v.scale(2.0, scratch);
  (void)v.norm2(scratch);
  v.mdot_finish(batch, std::span<double>(split, k));
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(split[i], ref[i]);
}

TEST(VecOpsShortfall, SplitPhaseMdotBitwiseIdenticalUnderCappedTeam) {
  // A capped team aborts the fused start sweep; finish() must complete
  // through the shortfall-robust unfused kernels, count the fallback, and
  // still produce bitwise-identical results (the PR 5 contract, extended
  // to the split-phase primitives pipelined GMRES overlaps with).
  const VecOps v{4};
  const std::size_t k = 4, n = 1501;
  const MgsProblem p(k, n, 31);

  double ref[4];
  MDotBatch ref_batch = v.mdot_start(p.basis_span(), p.w);
  v.mdot_finish(ref_batch, std::span<double>(ref, k));
  // (ref_batch.fused is true when this process has its 4 threads; under an
  // external OMP_THREAD_LIMIT the reference shortfalls too — either way it
  // is the bitwise target the capped run must reproduce.)

  reset_team_shortfall_stats();
  const VecOpsStats before = vecops_stats();
  double cap[4];
  with_capped_team([&] {
    MDotBatch batch = v.mdot_start(p.basis_span(), p.w);
    EXPECT_FALSE(batch.fused);  // kAbort: the fused sweep never ran
    v.mdot_finish(batch, std::span<double>(cap, k));
  });
  const VecOpsStats after = vecops_stats();

  EXPECT_GT(team_shortfall_events(), 0u);
  EXPECT_EQ(after.split_batches, before.split_batches + 1);
  EXPECT_EQ(after.split_fallbacks, before.split_fallbacks + 1);
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(cap[i], ref[i]);  // bitwise
  reset_team_shortfall_stats();
}

TEST(VecOps, ThreadCountsAgreeWithEachOther) {
  AVec<double> x(5000);
  Rng rng(5);
  for (auto& xi : x) xi = rng.uniform(-1, 1);
  const double s1 = VecOps{1}.norm2(x);
  const double s4 = VecOps{4}.norm2(x);
  EXPECT_NEAR(s1, s4, 1e-12 * s1);
}

}  // namespace
}  // namespace fun3d
