#include <gtest/gtest.h>

#include <cmath>

#include "core/vecops.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

class VecOpsTest : public ::testing::TestWithParam<int> {
 protected:
  VecOps ops() const { return VecOps{GetParam()}; }
};

TEST_P(VecOpsTest, DotAndNorm) {
  const VecOps v = ops();
  AVec<double> x(1000), y(1000);
  Rng rng(1);
  double ref = 0, nx = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
    ref += x[i] * y[i];
    nx += x[i] * x[i];
  }
  EXPECT_NEAR(v.dot(x, y), ref, 1e-10);
  EXPECT_NEAR(v.norm2(x), std::sqrt(nx), 1e-10);
}

TEST_P(VecOpsTest, AxpyFamilies) {
  const VecOps v = ops();
  AVec<double> x(257), y(257), w(257);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 1.0;
  }
  v.waxpy(2.0, x, y, w);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_DOUBLE_EQ(w[i], 1.0 + 2.0 * static_cast<double>(i));
  v.axpy(-1.0, x, w);  // w = 1 + i
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_DOUBLE_EQ(w[i], 1.0 + static_cast<double>(i));
  v.aypx(0.5, x, w);  // w = x + 0.5 w
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_DOUBLE_EQ(w[i], static_cast<double>(i) + 0.5 * (1.0 + static_cast<double>(i)));
  v.scale(2.0, w);
  v.set(0.0, w);
  for (double wi : w) EXPECT_EQ(wi, 0.0);
}

TEST_P(VecOpsTest, CopyIsExact) {
  const VecOps v = ops();
  AVec<double> x(123), y(123, 0.0);
  Rng rng(2);
  for (auto& xi : x) xi = rng.uniform(-5, 5);
  v.copy(x, y);
  EXPECT_EQ(x, y);
}

TEST_P(VecOpsTest, MaxpyAndMdot) {
  const VecOps v = ops();
  const std::size_t n = 300;
  AVec<double> x1(n), x2(n), x3(n), y(n, 1.0);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(-1, 1);
    x2[i] = rng.uniform(-1, 1);
    x3[i] = rng.uniform(-1, 1);
  }
  const double a[3] = {2.0, -1.0, 0.5};
  std::vector<std::span<const double>> xs{{x1.data(), n}, {x2.data(), n},
                                          {x3.data(), n}};
  AVec<double> yref(y);
  for (std::size_t i = 0; i < n; ++i)
    yref[i] += a[0] * x1[i] + a[1] * x2[i] + a[2] * x3[i];
  v.maxpy(std::span<const double>(a, 3),
          std::span<const std::span<const double>>(xs.data(), 3), y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], yref[i], 1e-12);

  double dots[3];
  v.mdot(std::span<const std::span<const double>>(xs.data(), 3), y,
         std::span<double>(dots, 3));
  EXPECT_NEAR(dots[0], v.dot(x1, y), 1e-12);
}

TEST_P(VecOpsTest, ReductionsAreDeterministic) {
  const VecOps v = ops();
  AVec<double> x(10007);
  Rng rng(4);
  for (auto& xi : x) xi = rng.uniform(-1, 1);
  const double d1 = v.norm2(x);
  const double d2 = v.norm2(x);
  EXPECT_EQ(d1, d2);  // bitwise-identical run to run
}

INSTANTIATE_TEST_SUITE_P(Threads, VecOpsTest, ::testing::Values(1, 2, 4));

TEST(VecOps, ThreadCountsAgreeWithEachOther) {
  AVec<double> x(5000);
  Rng rng(5);
  for (auto& xi : x) xi = rng.uniform(-1, 1);
  const double s1 = VecOps{1}.norm2(x);
  const double s4 = VecOps{4}.norm2(x);
  EXPECT_NEAR(s1, s4, 1e-12 * s1);
}

}  // namespace
}  // namespace fun3d
