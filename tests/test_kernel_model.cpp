#include <gtest/gtest.h>

#include "machine/kernel_model.hpp"
#include "mesh/generate.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

IluFactor mesh_factor(int fill = 1) {
  // Large enough that per-row work dominates synchronization in the models.
  const CsrGraph adj = generate_box(12, 10, 10).vertex_graph();
  Bcsr4 a = Bcsr4::from_adjacency(adj);
  Rng rng(1);
  for (idx_t r = 0; r < a.num_rows(); ++r)
    for (idx_t nz = a.row_begin(r); nz < a.row_end(r); ++nz) {
      double* b = a.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (a.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += 8.0;
    }
  return factorize_ilu(a, symbolic_ilu(a.structure(), fill));
}

TEST(EdgeLoopModel, PrefetchReducesTime) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  const LatencyModel lat;
  std::vector<EdgeLoopCounts> w(10);
  for (auto& t : w) {
    // Realistic flux-kernel profile: ~0.3 DRAM misses and ~1 LLC hit per
    // edge after RCM reordering.
    t.edges = 1e6;
    t.simd_flops = 4.8e8;
    t.dram_bytes = 6e7;
    t.llc_miss_lines = 3e5;
    t.l2_miss_lines = 1e6;
  }
  const PhaseTime no_pf = model_edge_loop(m, lat, w, false);
  const PhaseTime pf = model_edge_loop(m, lat, w, true);
  EXPECT_LT(pf.seconds, no_pf.seconds);
  // Paper's prefetch benefit is ~15%; the model should land in 3-35%.
  const double gain = no_pf.seconds / pf.seconds;
  EXPECT_GT(gain, 1.03);
  EXPECT_LT(gain, 1.35);
}

TEST(EdgeLoopModel, AtomicsStrategySlower) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  const LatencyModel lat;
  std::vector<EdgeLoopCounts> plain(10), atomics(10);
  for (auto& t : plain) {
    t.simd_flops = 4.8e8;
    t.dram_bytes = 6e7;
  }
  for (auto& t : atomics) {
    t.simd_flops = 4.8e8;
    t.dram_bytes = 6e7;
    t.atomics = 8e6;  // 8 atomic adds per edge, 1e6 edges
  }
  EXPECT_GT(model_edge_loop(m, lat, atomics, false).seconds,
            1.5 * model_edge_loop(m, lat, plain, false).seconds);
}

TEST(RecurrenceModel, WorkVectorsMatchFactorTotals) {
  const IluFactor f = mesh_factor();
  const RecurrenceWork w = trsv_row_work(f);
  double flops = 0;
  for (double x : w.row_flops) flops += x;
  EXPECT_DOUBLE_EQ(flops, static_cast<double>(f.solve_flops()));
}

TEST(RecurrenceModel, P2PBeatsLevelScheduling) {
  // The paper's Fig. 7 ordering: P2P-sparse > level-scheduled, both > serial
  // per-core time, with bandwidth saturation limiting total speedup.
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  const IluFactor f = mesh_factor();
  const RecurrenceWork w = trsv_row_work(f);
  const CsrGraph deps = f.lower_deps();
  const LevelSchedule sched = build_level_schedule(deps);
  const Partition owner = partition_natural(f.num_rows(), 10);
  const P2PSyncPlan plan = build_p2p_plan(deps, owner, true);

  const PhaseTime serial = model_recurrence_serial(m, w);
  const PhaseTime levels = model_level_schedule(m, w, sched, 10);
  const PhaseTime p2p = model_p2p(m, w, deps, owner, plan, 10);
  EXPECT_LT(p2p.seconds, levels.seconds);
  EXPECT_LT(p2p.seconds, serial.seconds);
  // Speedup bounded by bandwidth saturation (~4x) plus schedule overheads.
  EXPECT_LT(serial.seconds / p2p.seconds, 6.0);
}

TEST(RecurrenceModel, LevelSchedulingPaysBarrierPerLevel) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  const IluFactor f = mesh_factor();
  const RecurrenceWork w = trsv_row_work(f);
  const LevelSchedule sched = build_level_schedule(f.lower_deps());
  const PhaseTime t = model_level_schedule(m, w, sched, 8);
  EXPECT_NEAR(t.sync_seconds,
              static_cast<double>(sched.nlevels) * m.barrier_seconds(8),
              1e-12);
}

TEST(RecurrenceModel, MoreCoresNeverSlowerP2P) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  const IluFactor f = mesh_factor();
  const RecurrenceWork w = trsv_row_work(f);
  const CsrGraph deps = f.lower_deps();
  double prev = 1e30;
  for (int p : {1, 2, 4, 8}) {
    const Partition owner = partition_natural(f.num_rows(), p);
    const P2PSyncPlan plan = build_p2p_plan(deps, owner, true);
    const double t = model_p2p(m, w, deps, owner, plan, p).seconds;
    EXPECT_LT(t, prev * 1.05);
    prev = t;
  }
}

TEST(RecurrenceModel, IluWorkExceedsTrsvWork) {
  const IluFactor f = mesh_factor();
  const RecurrenceWork trsv = trsv_row_work(f);
  const RecurrenceWork ilu = ilu_row_work(f);
  double ft = 0, fi = 0;
  for (double x : trsv.row_flops) ft += x;
  for (double x : ilu.row_flops) fi += x;
  EXPECT_GT(fi, ft);  // factorization does gemms, solve does gemvs
}

}  // namespace
}  // namespace fun3d
