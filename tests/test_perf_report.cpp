// End-to-end validation of the perf-report layer (the `perf_smoke` ctest):
// a real solve fills a PerfReport, the report serializes to JSON, parses
// back, passes structural/sanity validation, and the baseline comparator
// flags planted regressions.
#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>
#include <cstdio>

#include "core/solver.hpp"
#include "core/vecops.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/team.hpp"

namespace fun3d {
namespace {

TetMesh solver_mesh(unsigned seed = 1) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, seed);
  rcm_reorder(m);
  return m;
}

/// Small real solve -> filled report, shared by the tests below. The
/// optimized config defaults to pipelined GMRES; tests that assert on the
/// classical fused-MGS accounting pass kClassical explicitly.
PerfReport smoke_report(GmresMode mode = GmresMode::kPipelined) {
  reset_team_shortfall_stats();  // isolate from other tests' capped runs
  SolverConfig cfg = SolverConfig::optimized(2);
  cfg.gmres_mode = mode;
  cfg.ptc.max_steps = 10;
  cfg.ptc.rtol = 1e-6;
  FlowSolver solver(solver_mesh(), cfg);
  const SolveStats st = solver.solve();
  PerfReport rep = PerfReport::begin("perf_smoke", "perf-report smoke test");
  rep.params["scale"] = 1.0;
  solver.fill_report(rep);
  rep.metrics["wall_seconds"] = st.wall_seconds;
  return rep;
}

TEST(Profile, FractionsOfZeroTotalProfileAreZeroNotNaN) {
  Profile p;
  p.timers.add(kernel::kFlux, 0.0);
  p.timers.add(kernel::kTrsv, 0.0);
  const auto frac = p.fractions();
  ASSERT_EQ(frac.size(), 2u);  // keys survive so report schemas stay stable
  for (const auto& [k, v] : frac) {
    EXPECT_EQ(v, 0.0) << k;
    EXPECT_FALSE(std::isnan(v)) << k;
  }
  // format() must not divide by zero either.
  const std::string s = p.format("empty");
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(PerfReport, BeginFillsRunMetadata) {
  const PerfReport r = PerfReport::begin("x", "t");
  EXPECT_FALSE(r.info.at("timestamp_utc").empty());
  EXPECT_FALSE(r.info.at("hostname").empty());
  EXPECT_GE(r.params.at("omp_max_threads"), 1.0);
}

TEST(PerfReport, SmokeSolveEmitsValidReport) {
  const PerfReport rep = smoke_report();

  // Counters from a real solve are nonzero.
  EXPECT_GT(rep.counters.at("newton_steps"), 0u);
  EXPECT_GT(rep.counters.at("linear_iterations"), 0u);
  EXPECT_GT(rep.counters.at("reductions"), 0u);
  // Kernel fractions sum to ~1.
  double sum = 0;
  for (const auto& [k, v] : rep.kernel_fractions) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Edge-plan stats captured (replication strategy => overhead >= 0,
  // imbalance >= 1).
  EXPECT_GE(rep.plan_stats.at("replication_overhead"), 0.0);
  EXPECT_GE(rep.plan_stats.at("load_imbalance"), 1.0);
  // P2P TRSV schedules were built for nthreads=2.
  EXPECT_GT(rep.plan_stats.at("trsv_fwd.raw_cross_deps"), 0.0);
  // optimized(2) also builds parallel-factorization schedules; their stats
  // land under ilu_factor.* and must be internally consistent.
  EXPECT_EQ(rep.plan_stats.at("ilu_factor.nthreads"), 2.0);
  EXPECT_GT(rep.plan_stats.at("ilu_factor.nlevels"), 1.0);
  EXPECT_GT(rep.plan_stats.at("ilu_factor.critical_path"), 0.0);
  EXPECT_GE(rep.plan_stats.at("ilu_factor.waits"), 0.0);
  EXPECT_LE(rep.plan_stats.at("ilu_factor.reduced_cross_deps"),
            rep.plan_stats.at("ilu_factor.raw_cross_deps"));
  EXPECT_EQ(rep.params.at("ilu_mode"),
            static_cast<double>(IluMode::kP2P));

  const std::string path =
      testing::TempDir() + "fun3d_perf_smoke_report.json";
  std::string err;
  ASSERT_TRUE(rep.write(path, &err)) << err;

  // Round trip: parse the artifact and validate structure + sanity bounds.
  std::string text;
  ASSERT_TRUE(read_text_file(path, &text, &err)) << err;
  const Json parsed = Json::parse(text, &err);
  ASSERT_TRUE(parsed.is_object()) << err;
  const auto problems = validate_report(parsed);
  EXPECT_TRUE(problems.empty())
      << "report invalid: " << (problems.empty() ? "" : problems.front());
  std::remove(path.c_str());
}

TEST(PerfReport, ComparatorAcceptsSelfAndFlagsPlantedRegression) {
  const PerfReport rep = smoke_report();
  const Json baseline = rep.to_json();

  // Same report against itself: clean.
  EXPECT_TRUE(compare_reports(baseline, baseline, 0.25).empty());

  // 2x slower flux kernel: flagged.
  PerfReport slow = rep;
  slow.kernel_seconds["flux"] = rep.kernel_seconds.at("flux") * 2 + 1.0;
  const auto regressions = compare_reports(baseline, slow.to_json(), 0.25);
  ASSERT_FALSE(regressions.empty());
  EXPECT_NE(regressions.front().find("flux"), std::string::npos);

  // Schema drift (a baseline metric vanished): flagged.
  PerfReport dropped = rep;
  dropped.metrics.erase("wall_seconds");
  EXPECT_FALSE(compare_reports(baseline, dropped.to_json(), 0.25).empty());
}

TEST(PerfReport, TeamShortfallCountersAreCapturedAndConsistent) {
  // An uncapped solve reports zero shortfall events with 0/0 team sizes.
  const PerfReport rep = smoke_report();
  ASSERT_TRUE(rep.counters.count("team_shortfall_events"));
  ASSERT_TRUE(rep.counters.count("team_planned_threads"));
  ASSERT_TRUE(rep.counters.count("team_delivered_threads"));
  EXPECT_TRUE(validate_report(rep.to_json()).empty());

  // A capped kernel run shows up in the next report.
  reset_team_shortfall_stats();
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    run_team(4, [](idx_t) {});
  }
  omp_set_max_active_levels(saved);
  PerfReport capped = PerfReport::begin("x", "t");
  capped.add_team_stats();
  EXPECT_GE(capped.counters.at("team_shortfall_events"), 1u);
  EXPECT_EQ(capped.counters.at("team_planned_threads"), 4u);
  EXPECT_LT(capped.counters.at("team_delivered_threads"), 4u);
  EXPECT_TRUE(validate_report(capped.to_json()).empty());
  reset_team_shortfall_stats();
}

TEST(PerfReport, VecopsStatsAreCapturedAndConsistent) {
  // A real classical-mode solve runs the fused GMRES orthogonalization:
  // the vecops.* keys land in the report and pass validation.
  reset_vecops_stats();
  const PerfReport rep = smoke_report(GmresMode::kClassical);
  ASSERT_TRUE(rep.counters.count("vecops.orthogonalize_calls"));
  EXPECT_GT(rep.counters.at("vecops.orthogonalize_calls"), 0u);
  EXPECT_EQ(rep.counters.at("vecops.orthogonalize_fallbacks"), 0u);
  EXPECT_LE(rep.counters.at("vecops.fused_sweeps"),
            rep.counters.at("vecops.unfused_sweeps"));
  EXPECT_EQ(rep.metrics.at("vecops.basis_sweeps_per_column"), 1.0);
  EXPECT_GT(rep.metrics.at("vecops.sweeps_saved"), 0.0);
  EXPECT_GT(rep.metrics.at("vecops.bytes_saved_fraction"), 0.0);
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, ValidatorRejectsInconsistentVecopsCounters) {
  // fused_sweeps without the matching unfused count: rejected.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.counters["vecops.fused_sweeps"] = 5;
  auto problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("vecops"), std::string::npos);

  // Fusion claiming to ADD sweeps: rejected.
  rep.counters["vecops.unfused_sweeps"] = 4;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());

  // The consistent shape passes.
  rep.counters["vecops.unfused_sweeps"] = 9;
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, GmresStatsAreCapturedAndConsistent) {
  // A real pipelined solve fills the gmres.* Krylov accounting: every
  // column attributed to a path, most through the 1-reduction pipelined
  // path, and the derived metrics agree with the counters.
  reset_vecops_stats();
  const PerfReport rep = smoke_report(GmresMode::kPipelined);
  ASSERT_TRUE(rep.counters.count("gmres.columns"));
  const auto cols = rep.counters.at("gmres.columns");
  ASSERT_GT(cols, 0u);
  EXPECT_GT(rep.counters.at("gmres.pipelined_columns"), 0u);
  EXPECT_LE(rep.counters.at("gmres.pipelined_columns") +
                rep.counters.at("gmres.fallback_columns"),
            cols);
  EXPECT_GE(rep.counters.at("gmres.reductions"), cols);
  EXPECT_GT(rep.metrics.at("gmres.reductions_per_column"), 0.0);
  EXPECT_GE(rep.metrics.at("gmres.overlap_fraction"), 0.0);
  EXPECT_LE(rep.metrics.at("gmres.overlap_fraction"), 1.0);
  // The split-phase primitives are what make the overlap real.
  EXPECT_GT(rep.counters.at("vecops.split_batches"), 0u);
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, ValidatorRejectsInconsistentGmresCounters) {
  // Columns without the path/reduction counters: rejected.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.counters["gmres.columns"] = 10;
  auto problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("gmres"), std::string::npos);

  // More attributed columns than columns: rejected.
  rep.counters["gmres.pipelined_columns"] = 8;
  rep.counters["gmres.fallback_columns"] = 5;
  rep.counters["gmres.reductions"] = 12;
  rep.metrics["gmres.reductions_per_column"] = 1.2;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());

  // Fewer reductions than columns (impossible: each column costs at
  // least its one batched reduction): rejected.
  rep.counters["gmres.fallback_columns"] = 2;
  rep.counters["gmres.reductions"] = 4;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());

  // A derived metric that contradicts its counters: rejected.
  rep.counters["gmres.reductions"] = 12;
  rep.metrics["gmres.reductions_per_column"] = 3.0;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());

  // An overlap fraction outside [0,1]: rejected.
  rep.metrics["gmres.reductions_per_column"] = 1.2;
  rep.metrics["gmres.overlap_fraction"] = 1.5;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());

  // The consistent shape passes.
  rep.metrics["gmres.overlap_fraction"] = 0.4;
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, ValidatorRejectsInconsistentShortfallCounters) {
  // Events without the team sizes: rejected.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.counters["team_shortfall_events"] = 1;
  auto problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("team_shortfall_events"),
            std::string::npos);

  // Events claiming a shortfall while planned == delivered: rejected.
  rep.counters["team_planned_threads"] = 4;
  rep.counters["team_delivered_threads"] = 4;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());

  // Zero events with leftover nonzero team sizes: rejected.
  PerfReport rep2 = PerfReport::begin("x", "t");
  rep2.counters["team_shortfall_events"] = 0;
  rep2.counters["team_planned_threads"] = 4;
  rep2.counters["team_delivered_threads"] = 1;
  EXPECT_FALSE(validate_report(rep2.to_json()).empty());

  // The consistent shapes pass.
  rep.counters["team_delivered_threads"] = 1;
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
  rep2.counters["team_planned_threads"] = 0;
  rep2.counters["team_delivered_threads"] = 0;
  EXPECT_TRUE(validate_report(rep2.to_json()).empty());
}

TEST(PerfReport, ComparatorFlagsShortfallMismatchAsEnvironmentNotPerf) {
  PerfReport base = PerfReport::begin("x", "t");
  base.counters["team_shortfall_events"] = 0;
  base.counters["team_planned_threads"] = 0;
  base.counters["team_delivered_threads"] = 0;
  PerfReport cur = base;
  cur.counters["team_shortfall_events"] = 3;
  cur.counters["team_planned_threads"] = 4;
  cur.counters["team_delivered_threads"] = 1;

  const auto flags = compare_reports(base.to_json(), cur.to_json(), 0.25);
  ASSERT_FALSE(flags.empty());
  EXPECT_NE(flags.front().find("team_shortfall_events"), std::string::npos);
  EXPECT_NE(flags.front().find("not a perf regression"), std::string::npos);

  // Same shortfall state on both sides: nothing to flag.
  EXPECT_TRUE(compare_reports(base.to_json(), base.to_json(), 0.25).empty());
  EXPECT_TRUE(compare_reports(cur.to_json(), cur.to_json(), 0.25).empty());
}

TEST(PerfReport, ValidatorRejectsInconsistentCrossDepCounts) {
  // Sparsification can only remove waits: reduced > raw is a broken plan.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.plan_stats["ilu_factor.raw_cross_deps"] = 5;
  rep.plan_stats["ilu_factor.reduced_cross_deps"] = 9;
  auto problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("reduced_cross_deps"), std::string::npos);

  // A reduced count with no matching raw count is schema drift.
  PerfReport orphan = PerfReport::begin("x", "t");
  orphan.plan_stats["trsv_fwd.reduced_cross_deps"] = 3;
  EXPECT_FALSE(validate_report(orphan.to_json()).empty());

  // The consistent shape passes.
  rep.plan_stats["ilu_factor.reduced_cross_deps"] = 5;
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, ValidatorRejectsBrokenTraceTimelineInvariants) {
  // The measured-timeline sandwich: shard busy <= critical path <= wall.
  // A report violating either side is corrupt instrumentation, not noise.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.metrics["trace.k.wall_seconds"] = 1.0;
  rep.metrics["trace.k.max_shard_busy_seconds"] = 0.6;
  rep.metrics["trace.k.measured_critical_path_seconds"] = 2.0;  // > wall
  auto problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("exceeds wall time"), std::string::npos);

  rep.metrics["trace.k.measured_critical_path_seconds"] = 0.8;
  rep.metrics["trace.k.max_shard_busy_seconds"] = 0.9;  // > critical path
  problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("exceeds measured critical path"),
            std::string::npos);

  // A critical path with no wall/shard siblings is schema drift.
  PerfReport orphan = PerfReport::begin("x", "t");
  orphan.metrics["trace.k.measured_critical_path_seconds"] = 0.5;
  EXPECT_FALSE(validate_report(orphan.to_json()).empty());

  // Wait fractions are fractions.
  PerfReport frac = PerfReport::begin("x", "t");
  frac.metrics["trace.k.wait_fraction"] = 1.5;
  EXPECT_FALSE(validate_report(frac.to_json()).empty());

  // The consistent shape passes.
  rep.metrics["trace.k.max_shard_busy_seconds"] = 0.6;
  rep.metrics["trace.k.wait_fraction"] = 0.25;
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, ValidatorCrossChecksMeasuredParallelismAgainstSchedule) {
  // The timeline cannot realize more parallelism than the factorization
  // DAG admits: busy/critical-path above plan.ilu_factor.parallelism
  // (modulo generous timing slack) means the trace and the schedule
  // disagree about the same dependency structure.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.plan_stats["ilu_factor.parallelism"] = 2.0;
  rep.metrics["trace.ilu_factor_p2p.wall_seconds"] = 1.0;
  rep.metrics["trace.ilu_factor_p2p.max_shard_busy_seconds"] = 0.5;
  rep.metrics["trace.ilu_factor_p2p.measured_critical_path_seconds"] = 0.5;
  rep.metrics["trace.ilu_factor_p2p.effective_parallelism"] = 8.0;
  auto problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("DAG parallelism bound"),
            std::string::npos);

  // Within the bound (2.0 * 1.25 + 0.5 = 3.0): passes.
  rep.metrics["trace.ilu_factor_p2p.effective_parallelism"] = 1.9;
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, ComparatorFlagsWaitFractionRegression) {
  PerfReport base = PerfReport::begin("x", "t");
  base.metrics["trace.trsv_p2p.wait_fraction"] = 0.05;
  PerfReport cur = base;

  // Needs both material absolute growth (+0.10) and relative growth:
  // 0.05 -> 0.12 stays quiet, 0.05 -> 0.30 is a sync regression.
  cur.metrics["trace.trsv_p2p.wait_fraction"] = 0.12;
  EXPECT_TRUE(compare_reports(base.to_json(), cur.to_json(), 0.25).empty());

  cur.metrics["trace.trsv_p2p.wait_fraction"] = 0.30;
  const auto flags = compare_reports(base.to_json(), cur.to_json(), 0.25);
  ASSERT_FALSE(flags.empty());
  EXPECT_NE(flags.front().find("synchronization wait fraction regressed"),
            std::string::npos);
  EXPECT_NE(flags.front().find("trsv_p2p"), std::string::npos);

  // Self-comparison stays clean.
  EXPECT_TRUE(compare_reports(cur.to_json(), cur.to_json(), 0.25).empty());
}

TEST(PerfReport, ResilienceStatsAreCapturedAndValidated) {
  // A clean solve carries the full resilience.* counter set with zero
  // rejections, and the report validates.
  const PerfReport rep = smoke_report();
  ASSERT_TRUE(rep.counters.count("resilience.rejected_steps"));
  EXPECT_EQ(rep.counters.at("resilience.rejected_steps"), 0u);
  EXPECT_EQ(rep.counters.at("resilience.injected_faults"), 0u);
  ASSERT_TRUE(rep.counters.count("resilience.checkpoints_written"));
  EXPECT_TRUE(validate_report(rep.to_json()).empty());

  // An injected-fault solve reports its rejection and still validates:
  // the per-reason breakdown sums to rejected_steps.
  SolverConfig cfg = SolverConfig::optimized(2);
  cfg.ptc.max_steps = 30;
  cfg.ptc.rtol = 1e-6;
  cfg.resilience.fault.nan_residual_step = 2;
  FlowSolver solver(solver_mesh(21), cfg);
  const SolveStats st = solver.solve();
  EXPECT_TRUE(st.converged);
  PerfReport faulty = PerfReport::begin("x", "t");
  solver.fill_report(faulty);
  EXPECT_EQ(faulty.counters.at("resilience.rejected_steps"), 1u);
  EXPECT_EQ(faulty.counters.at("resilience.nonfinite_residual_rejects"), 1u);
  EXPECT_TRUE(validate_report(faulty.to_json()).empty());
}

TEST(PerfReport, ValidatorRejectsInconsistentResilienceCounters) {
  // Rejected steps whose per-reason breakdown does not sum up: tampered
  // or miscounted — rejected.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.counters["resilience.rejected_steps"] = 3;
  rep.counters["resilience.nonfinite_update_rejects"] = 1;
  rep.counters["resilience.nonfinite_residual_rejects"] = 0;
  rep.counters["resilience.breakdown_rejects"] = 0;
  rep.counters["resilience.stall_rejects"] = 0;
  rep.counters["resilience.growth_rejects"] = 0;
  auto problems = validate_report(rep.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("rejected_steps"), std::string::npos);

  // A rejected_steps counter missing its reason breakdown is schema drift.
  PerfReport orphan = PerfReport::begin("x", "t");
  orphan.counters["resilience.rejected_steps"] = 1;
  EXPECT_FALSE(validate_report(orphan.to_json()).empty());

  // Retries (and backoffs) can never exceed the rejection count.
  rep.counters["resilience.nonfinite_update_rejects"] = 3;
  rep.counters["resilience.retries"] = 4;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());
  rep.counters["resilience.retries"] = 2;
  rep.counters["resilience.backoffs"] = 5;
  EXPECT_FALSE(validate_report(rep.to_json()).empty());

  // The consistent shape passes.
  rep.counters["resilience.backoffs"] = 2;
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
}

TEST(PerfReport, CommStatsFamilyValidates) {
  // A consistent comm.* family — bytes = 8 * cells, cells = component
  // rounds * decomposition ghosts — passes validation, bare and under the
  // benches' `measured.` prefix.
  CommSummary c;
  c.ranks = 4;
  c.threads_per_rank = 2;
  c.total_ghosts = 120;
  c.exchanges = 12;
  c.exchange_components = 40;
  c.packed_cells = 40 * 120;
  c.halo_bytes = 8 * c.packed_cells;
  c.allreduces = 7;
  c.barriers = 14;
  c.overlap_seconds = 0.25;
  c.halo_wait_seconds = 0.75;
  c.overlap_fraction = 0.25;
  c.exchanges_per_linear_iteration = 2.5;
  PerfReport rep = PerfReport::begin("x", "t");
  rep.add_comm_stats(c);
  rep.add_comm_stats(c, "measured.");
  EXPECT_TRUE(validate_report(rep.to_json()).empty());
  EXPECT_EQ(rep.counters.at("comm.halo_bytes"), c.halo_bytes);
  EXPECT_EQ(rep.counters.at("measured.comm.packed_cells"), c.packed_cells);
  EXPECT_EQ(rep.params.at("comm.ranks"), 4.0);
}

TEST(PerfReport, ValidatorRejectsInconsistentCommCounters) {
  CommSummary c;
  c.total_ghosts = 100;
  c.exchange_components = 8;
  c.packed_cells = 800;
  c.halo_bytes = 6400;
  c.overlap_fraction = 0.5;

  // Bytes that are not 8 per packed double: miscounted traffic.
  CommSummary bad_bytes = c;
  bad_bytes.halo_bytes = 6399;
  PerfReport r1 = PerfReport::begin("x", "t");
  r1.add_comm_stats(bad_bytes);
  auto problems = validate_report(r1.to_json());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("halo_bytes"), std::string::npos);

  // Cells that disagree with exchange_components * total_ghosts: the
  // traffic no longer ties back to the Decomposition's ghost accounting.
  CommSummary bad_cells = c;
  bad_cells.total_ghosts = 99;
  PerfReport r2 = PerfReport::begin("x", "t");
  r2.add_comm_stats(bad_cells);
  EXPECT_FALSE(validate_report(r2.to_json()).empty());

  // An overlap fraction outside [0, 1] is not a time ratio.
  CommSummary bad_overlap = c;
  bad_overlap.overlap_fraction = 1.5;
  PerfReport r3 = PerfReport::begin("x", "t");
  r3.add_comm_stats(bad_overlap);
  EXPECT_FALSE(validate_report(r3.to_json()).empty());

  // A halo_bytes counter orphaned from its family is schema drift.
  PerfReport r4 = PerfReport::begin("x", "t");
  r4.counters["comm.halo_bytes"] = 6400;
  EXPECT_FALSE(validate_report(r4.to_json()).empty());
}

TEST(PerfReport, ValidatorCatchesBrokenReports) {
  EXPECT_FALSE(validate_report(Json(1.0)).empty());

  Json missing = Json::object();
  missing["schema_version"] = Json(PerfReport::kSchemaVersion);
  EXPECT_FALSE(validate_report(missing).empty());

  // A NaN metric serializes as null and must be rejected.
  PerfReport rep = PerfReport::begin("x", "t");
  rep.metrics["bad"] = std::nan("");
  const Json j = Json::parse(rep.to_json().dump());
  const auto problems = validate_report(j);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("bad"), std::string::npos);

  // Out-of-range kernel fraction.
  PerfReport rep2 = PerfReport::begin("x", "t");
  rep2.kernel_fractions["flux"] = 1.5;
  EXPECT_FALSE(validate_report(rep2.to_json()).empty());
}

}  // namespace
}  // namespace fun3d
