#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/physics.hpp"
#include "core/vtk_io.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

class TmpFile {
 public:
  explicit TmpFile(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {}
  ~TmpFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

AVec<double> random_solution(const TetMesh& m, unsigned seed) {
  AVec<double> q(static_cast<std::size_t>(m.num_vertices) * kNs);
  Rng rng(seed);
  for (auto& v : q) v = rng.uniform(-1, 1);
  return q;
}

TEST(VtkIo, VolumeFileHasExpectedStructure) {
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q = random_solution(m, 1);
  TmpFile f("vol.vtk");
  write_vtk(f.path(), m, {q.data(), q.size()});
  const std::string s = slurp(f.path());
  EXPECT_NE(s.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(s.find("POINTS 27 double"), std::string::npos);
  EXPECT_NE(s.find("CELLS 48 240"), std::string::npos);  // 8 cubes x 6 tets
  EXPECT_NE(s.find("SCALARS pressure"), std::string::npos);
  EXPECT_NE(s.find("VECTORS velocity"), std::string::npos);
}

TEST(VtkIo, VolumeWithoutSolutionOmitsPointData) {
  const TetMesh m = generate_box(2, 2, 2);
  TmpFile f("vol2.vtk");
  write_vtk(f.path(), m);
  const std::string s = slurp(f.path());
  EXPECT_EQ(s.find("POINT_DATA"), std::string::npos);
}

TEST(VtkIo, SurfaceFileListsBoundaryTrianglesWithTags) {
  const TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  TmpFile f("surf.vtk");
  write_vtk_surface(f.path(), m);
  const std::string s = slurp(f.path());
  EXPECT_NE(s.find("SCALARS bc_tag"), std::string::npos);
  char expect[64];
  std::snprintf(expect, sizeof(expect), "CELL_TYPES %zu", m.bfaces.size());
  EXPECT_NE(s.find(expect), std::string::npos);
}

TEST(VtkIo, RejectsWrongSolutionSize) {
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q(3, 0.0);
  TmpFile f("bad.vtk");
  EXPECT_THROW(write_vtk(f.path(), m, {q.data(), q.size()}),
               std::invalid_argument);
}

TEST(Checkpoint, RoundTripsExactly) {
  const TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  const AVec<double> q = random_solution(m, 2);
  TmpFile f("ckpt.bin");
  save_checkpoint(f.path(), m, {q.data(), q.size()});
  AVec<double> back(q.size(), 0.0);
  load_checkpoint(f.path(), m, {back.data(), back.size()});
  EXPECT_EQ(q, back);  // bitwise
}

TEST(Checkpoint, WriteIsAtomicAndLeavesNoTempFile) {
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q = random_solution(m, 7);
  TmpFile f("atomic.bin");
  save_checkpoint(f.path(), m, {q.data(), q.size()});
  // The temp the data staged through was renamed away.
  std::ifstream tmp(f.path() + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

TEST(Checkpoint, InterruptedRewriteLeavesOldCheckpointLoadable) {
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q1 = random_solution(m, 8);
  const AVec<double> q2 = random_solution(m, 9);
  TmpFile f("survives.bin");
  save_checkpoint(f.path(), m, {q1.data(), q1.size()});
  {
    // Simulate a crash mid-rewrite: a half-written temp next to the good
    // file. The previous checkpoint must stay intact and loadable.
    std::ofstream out(f.path() + ".tmp", std::ios::binary);
    out << "half-written garbage from a dying process";
  }
  AVec<double> back(q1.size(), 0.0);
  load_checkpoint(f.path(), m, {back.data(), back.size()});
  EXPECT_EQ(q1, back);
  // The next successful save replaces both the stale temp and the file.
  save_checkpoint(f.path(), m, {q2.data(), q2.size()});
  std::ifstream tmp(f.path() + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  load_checkpoint(f.path(), m, {back.data(), back.size()});
  EXPECT_EQ(q2, back);
}

TEST(Checkpoint, MetaRoundTripsExactly) {
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q = random_solution(m, 10);
  TmpFile f("meta.bin");
  const CheckpointMeta meta{7, 123.4567891011, 2.5e-3};
  save_checkpoint(f.path(), m, {q.data(), q.size()}, &meta);
  AVec<double> back(q.size(), 0.0);
  CheckpointMeta got;
  load_checkpoint(f.path(), m, {back.data(), back.size()}, &got);
  EXPECT_EQ(q, back);
  EXPECT_EQ(got.step, meta.step);
  EXPECT_EQ(got.cfl, meta.cfl);  // bitwise, not approximate
  EXPECT_EQ(got.r0, meta.r0);
}

TEST(Checkpoint, LegacyFileWithoutMetaYieldsZeroMeta) {
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q = random_solution(m, 11);
  TmpFile f("legacy.bin");
  save_checkpoint(f.path(), m, {q.data(), q.size()});  // no meta block
  AVec<double> back(q.size(), 0.0);
  CheckpointMeta got{99, 99.0, 99.0};  // poisoned: loader must overwrite
  load_checkpoint(f.path(), m, {back.data(), back.size()}, &got);
  EXPECT_EQ(q, back);
  EXPECT_EQ(got.step, 0u);
  EXPECT_EQ(got.cfl, 0.0);
  EXPECT_EQ(got.r0, 0.0);
}

TEST(Checkpoint, MetaFileStaysLoadableByMetaUnawareReader) {
  // Forward compatibility: a reader that never asks for meta reads a
  // meta-bearing file fine (the trailing block is simply ignored).
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q = random_solution(m, 12);
  TmpFile f("fwd.bin");
  const CheckpointMeta meta{3, 40.0, 1.0};
  save_checkpoint(f.path(), m, {q.data(), q.size()}, &meta);
  AVec<double> back(q.size(), 0.0);
  load_checkpoint(f.path(), m, {back.data(), back.size()});
  EXPECT_EQ(q, back);
}

TEST(Checkpoint, RejectsDifferentMesh) {
  const TetMesh m1 = generate_box(3, 3, 3);
  const TetMesh m2 = generate_box(3, 3, 4);
  const AVec<double> q = random_solution(m1, 3);
  TmpFile f("ckpt2.bin");
  save_checkpoint(f.path(), m1, {q.data(), q.size()});
  AVec<double> back(static_cast<std::size_t>(m2.num_vertices) * kNs, 0.0);
  EXPECT_THROW(load_checkpoint(f.path(), m2, {back.data(), back.size()}),
               std::runtime_error);
}

TEST(Checkpoint, RejectsGarbageFile) {
  const TetMesh m = generate_box(2, 2, 2);
  TmpFile f("garbage.bin");
  {
    std::ofstream out(f.path(), std::ios::binary);
    out << "this is not a checkpoint at all, but long enough to read";
  }
  AVec<double> back(static_cast<std::size_t>(m.num_vertices) * kNs, 0.0);
  EXPECT_THROW(load_checkpoint(f.path(), m, {back.data(), back.size()}),
               std::runtime_error);
}

TEST(Checkpoint, MissingFileThrows) {
  const TetMesh m = generate_box(2, 2, 2);
  AVec<double> back(static_cast<std::size_t>(m.num_vertices) * kNs, 0.0);
  EXPECT_THROW(
      load_checkpoint("/nonexistent/nowhere.bin", m,
                      {back.data(), back.size()}),
      std::runtime_error);
}

TEST(Checkpoint, DecompositionSignatureRoundTripsExactly) {
  const TetMesh m = generate_box(2, 2, 2);
  const AVec<double> q = random_solution(m, 14);
  TmpFile f("sig.bin");
  const idx_t rows[] = {0, 9, 18};
  const CheckpointMeta meta{5, 80.0, 1.5e-2, 3,
                            partition_hash(rows, m.num_vertices)};
  save_checkpoint(f.path(), m, {q.data(), q.size()}, &meta);
  // Through the full loader...
  AVec<double> back(q.size(), 0.0);
  CheckpointMeta got;
  load_checkpoint(f.path(), m, {back.data(), back.size()}, &got);
  EXPECT_EQ(got.ranks, 3u);
  EXPECT_EQ(got.partition_hash, meta.partition_hash);
  // ...and through the meta-only reader (no payload load, no fingerprint
  // validation — this is what restore paths check FIRST).
  const CheckpointMeta peeked = read_checkpoint_meta(f.path());
  EXPECT_EQ(peeked.step, 5u);
  EXPECT_EQ(peeked.cfl, 80.0);
  EXPECT_EQ(peeked.ranks, 3u);
  EXPECT_EQ(peeked.partition_hash, meta.partition_hash);
}

TEST(Checkpoint, PartitionHashSeparatesPartitionsAndMeshSizes) {
  const idx_t a[] = {0, 10, 20};
  const idx_t b[] = {0, 12, 20};  // same rank count, different split
  const idx_t c[] = {0, 10};      // different rank count
  EXPECT_EQ(partition_hash(a, 30), partition_hash(a, 30));
  EXPECT_NE(partition_hash(a, 30), partition_hash(b, 30));
  EXPECT_NE(partition_hash(a, 30), partition_hash(c, 30));
  EXPECT_NE(partition_hash(a, 30), partition_hash(a, 31));  // mesh size
}

TEST(Checkpoint, SignatureCheckNamesBothSidesOfARankCountMismatch) {
  const idx_t rows[] = {0, 10, 20, 30};
  CheckpointMeta meta;
  meta.ranks = 4;
  meta.partition_hash = partition_hash(rows, 40);
  // Matching signature passes.
  EXPECT_NO_THROW(check_checkpoint_signature(meta, 4, meta.partition_hash));
  // Rank-count mismatch: the error names the written and restoring counts.
  try {
    check_checkpoint_signature(meta, 2, meta.partition_hash);
    FAIL() << "expected a rank-count mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("4-rank"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2-rank"), std::string::npos) << msg;
  }
  // Same rank count but a different partition (e.g. a different mesh
  // size's renumbering): also rejected, with a partition-specific message.
  try {
    const idx_t other[] = {0, 11, 20, 30};
    check_checkpoint_signature(meta, 4, partition_hash(other, 40));
    FAIL() << "expected a partition mismatch error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("partition"), std::string::npos);
  }
}

TEST(Checkpoint, LegacySignatureIsNeverChecked) {
  // ranks == 0 means "unrecorded" (a legacy V1 meta block or no meta at
  // all): any restoring configuration accepts it.
  CheckpointMeta legacy;
  EXPECT_NO_THROW(check_checkpoint_signature(legacy, 1, 12345u));
  EXPECT_NO_THROW(check_checkpoint_signature(legacy, 8, 0u));
}

TEST(Checkpoint, ReadMetaRejectsNonCheckpointFiles) {
  TmpFile f("notmeta.bin");
  {
    std::ofstream out(f.path(), std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_THROW(read_checkpoint_meta(f.path()), std::runtime_error);
  EXPECT_THROW(read_checkpoint_meta("/nonexistent/nowhere.bin"),
               std::runtime_error);
}

TEST(Fingerprint, SensitiveToTopologyNotNumberingAlone) {
  TetMesh a = generate_box(3, 3, 3);
  const TetMesh b = generate_box(3, 3, 4);
  EXPECT_NE(mesh_fingerprint(a), mesh_fingerprint(b));
  const std::uint64_t before = mesh_fingerprint(a);
  shuffle_numbering(a, 1);  // renumbering changes edge identities
  EXPECT_NE(mesh_fingerprint(a), before);
}

}  // namespace
}  // namespace fun3d
