// End-to-end integration tests across modules: solver + I/O + restart, and
// solution agreement across the full optimization matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/solver.hpp"
#include "core/vtk_io.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"

namespace fun3d {
namespace {

TetMesh make_case(unsigned seed) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, seed);
  rcm_reorder(m);
  return m;
}

TEST(Integration, CheckpointRestartResumesConvergedState) {
  const std::string ckpt =
      std::string(::testing::TempDir()) + "restart.ckpt";
  double final_resid = 0;
  // Phase 1: converge and checkpoint.
  {
    SolverConfig cfg = SolverConfig::baseline();
    cfg.ptc.max_steps = 30;
    cfg.ptc.rtol = 1e-8;
    FlowSolver solver(make_case(1), cfg);
    const SolveStats st = solver.solve();
    ASSERT_TRUE(st.converged);
    final_resid = st.residual_history.back();
    save_checkpoint(ckpt, solver.mesh(),
                    {solver.fields().q.data(), solver.fields().q.size()});
  }
  // Phase 2: a fresh solver restarted from the checkpoint is converged
  // immediately (0 further steps) under the absolute tolerance.
  {
    SolverConfig cfg = SolverConfig::baseline();
    cfg.ptc.max_steps = 30;
    cfg.ptc.rtol = 1e-8;
    cfg.ptc.atol = 2.0 * final_resid;
    FlowSolver solver(make_case(1), cfg);
    load_checkpoint(ckpt, solver.mesh(),
                    {solver.fields().q.data(), solver.fields().q.size()});
    const SolveStats st = solver.solve();
    EXPECT_TRUE(st.converged);
    EXPECT_LE(st.steps, 2);  // already at steady state
  }
  std::remove(ckpt.c_str());
}

TEST(Integration, SolveThenWriteVtkArtifacts) {
  SolverConfig cfg = SolverConfig::optimized(2);
  cfg.ptc.max_steps = 20;
  cfg.ptc.rtol = 1e-6;
  FlowSolver solver(make_case(2), cfg);
  ASSERT_TRUE(solver.solve().converged);
  const std::string vol = std::string(::testing::TempDir()) + "i_vol.vtk";
  const std::string surf = std::string(::testing::TempDir()) + "i_surf.vtk";
  write_vtk(vol, solver.mesh(),
            {solver.fields().q.data(), solver.fields().q.size()});
  write_vtk_surface(surf, solver.mesh(),
                    {solver.fields().q.data(), solver.fields().q.size()});
  // Files exist and are non-trivial.
  std::FILE* f = std::fopen(vol.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 1000);
  std::fclose(f);
  std::remove(vol.c_str());
  std::remove(surf.c_str());
}

TEST(Integration, PipelinedGmresMatchesClassicalIterationCounts) {
  // ISSUE 8 acceptance: on an integration mesh at the production linear
  // tolerance, pipelined GMRES must walk the same Krylov spaces as
  // classical MGS — same pseudo-time steps, total linear iterations within
  // ±1 per step — while doing O(1) reductions per column.
  SolverConfig classical = SolverConfig::optimized(2);
  classical.gmres_mode = GmresMode::kClassical;
  SolverConfig pipelined = SolverConfig::optimized(2);
  pipelined.gmres_mode = GmresMode::kPipelined;
  classical.ptc.max_steps = pipelined.ptc.max_steps = 25;
  classical.ptc.rtol = pipelined.ptc.rtol = 1e-8;

  FlowSolver sc(make_case(4), classical);
  const SolveStats stc = sc.solve();
  FlowSolver sp(make_case(4), pipelined);
  const SolveStats stp = sp.solve();
  ASSERT_TRUE(stc.converged);
  ASSERT_TRUE(stp.converged);
  EXPECT_EQ(stp.steps, stc.steps);
  EXPECT_NEAR(static_cast<double>(stp.linear_iterations),
              static_cast<double>(stc.linear_iterations),
              static_cast<double>(stc.steps));

  // Reduction accounting: classical grows with the column index (j+2);
  // pipelined stays O(1) per column on the whole run.
  EXPECT_GT(sc.profile().gmres.reductions_per_column(), 2.0);
  EXPECT_LT(sp.profile().gmres.reductions_per_column(), 2.0);
  EXPECT_LT(sp.profile().gmres.reductions, sc.profile().gmres.reductions);

  // And the two modes land on the same steady state.
  double diff = 0, ref_norm = 0;
  const AVec<double>& reference = sc.fields().q;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    diff += std::pow(sp.fields().q[i] - reference[i], 2);
    ref_norm += reference[i] * reference[i];
  }
  EXPECT_LT(std::sqrt(diff) / std::sqrt(ref_norm), 1e-6);
}

/// Every optimization combination must land on the same steady state.
/// (Each case solves both the baseline and the variant: ctest runs
/// parameterized cases in separate processes, so no state can be shared.)
class CrossConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossConfigTest, AllConfigurationsAgreeOnTheSteadyState) {
  SolverConfig cfg;
  switch (GetParam()) {
    case 1: cfg = SolverConfig::optimized(1); break;
    case 2: cfg = SolverConfig::optimized(4); break;
    case 3:
      cfg = SolverConfig::optimized(2);
      cfg.gradient_method = GradientMethod::kLeastSquares;
      break;
    case 4:
      cfg = SolverConfig::baseline();
      cfg.krylov = KrylovMethod::kBicgstab;
      break;
    default: cfg = SolverConfig::baseline(); break;
  }
  SolverConfig base = SolverConfig::baseline();
  base.ptc.max_steps = cfg.ptc.max_steps = 35;
  base.ptc.rtol = cfg.ptc.rtol = 1e-9;

  FlowSolver ref_solver(make_case(3), base);
  ASSERT_TRUE(ref_solver.solve().converged);
  FlowSolver solver(make_case(3), cfg);
  ASSERT_TRUE(solver.solve().converged);

  double diff = 0, ref_norm = 0;
  const AVec<double>& reference = ref_solver.fields().q;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    diff += std::pow(solver.fields().q[i] - reference[i], 2);
    ref_norm += reference[i] * reference[i];
  }
  diff = std::sqrt(diff) / std::sqrt(ref_norm);
  // LSQ gradients change the discretization slightly; the rest must agree
  // to solver tolerance.
  EXPECT_LT(diff, GetParam() == 3 ? 5e-2 : 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Matrix, CrossConfigTest,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace fun3d
