#include <gtest/gtest.h>
#include <omp.h>

#include "mesh/generate.hpp"
#include "parallel/team.hpp"
#include "sparse/spmv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

Bcsr4 random_matrix(const CsrGraph& adj, unsigned seed) {
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (std::size_t nz = 0; nz < m.num_blocks(); ++nz) {
    double* b = m.block(static_cast<idx_t>(nz));
    for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-1, 1);
  }
  return m;
}

/// Dense reference product.
void dense_spmv(const Bcsr4& m, const std::vector<double>& x,
                std::vector<double>& y) {
  const idx_t n = m.num_rows();
  y.assign(static_cast<std::size_t>(n) * kBs, 0.0);
  for (idx_t r = 0; r < n; ++r)
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      const double* b = m.block(nz);
      for (int i = 0; i < kBs; ++i)
        for (int j = 0; j < kBs; ++j)
          y[static_cast<std::size_t>(r) * kBs + static_cast<std::size_t>(i)] +=
              b[i * kBs + j] *
              x[static_cast<std::size_t>(m.col(nz)) * kBs +
                static_cast<std::size_t>(j)];
    }
}

TEST(Spmv, MatchesDenseReference) {
  const Bcsr4 m = random_matrix(generate_box(3, 3, 3).vertex_graph(), 1);
  const std::size_t n = static_cast<std::size_t>(m.num_rows()) * kBs;
  Rng rng(2);
  std::vector<double> x(n), y(n), yref;
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_serial(m, x, y);
  dense_spmv(m, x, yref);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], yref[i], 1e-12);
}

class SpmvThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(SpmvThreadsTest, ParallelMatchesSerial) {
  const Bcsr4 m = random_matrix(generate_box(4, 4, 3).vertex_graph(), 3);
  const std::size_t n = static_cast<std::size_t>(m.num_rows()) * kBs;
  Rng rng(4);
  std::vector<double> x(n), y1(n), y2(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_serial(m, x, y1);
  spmv_parallel(m, x, y2, GetParam());
  // The SIMD microkernel keeps each lane on the serial accumulation order,
  // and spmv.cpp is built with -ffp-contract=off: bitwise identity.
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);
}

INSTANTIATE_TEST_SUITE_P(Threads, SpmvThreadsTest,
                         ::testing::Values(1, 2, 4));

TEST(SpmvShortfall, CappedTeamBitwiseIdenticalAndCounted) {
  const Bcsr4 m = random_matrix(generate_box(4, 3, 3).vertex_graph(), 6);
  const std::size_t n = static_cast<std::size_t>(m.num_rows()) * kBs;
  Rng rng(7);
  std::vector<double> x(n), yref(n), ycap(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_serial(m, x, yref);

  reset_team_shortfall_stats();
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    spmv_parallel(m, x, ycap, 4);  // nested: delivered team is capped at 1
  }
  omp_set_max_active_levels(saved);

  EXPECT_GT(team_shortfall_events(), 0u);
  EXPECT_EQ(team_last_planned(), 4);
  EXPECT_EQ(team_last_delivered(), 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(yref[i], ycap[i]);
  reset_team_shortfall_stats();
}

TEST(Spmv, IdentityActsAsIdentity) {
  Bcsr4 m = Bcsr4::from_adjacency(generate_box(2, 2, 2).vertex_graph());
  const std::vector<double> ones(static_cast<std::size_t>(m.num_rows()), 1.0);
  m.shift_diagonal(ones);
  const std::size_t n = static_cast<std::size_t>(m.num_rows()) * kBs;
  Rng rng(5);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_serial(m, x, y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

}  // namespace
}  // namespace fun3d
