#include <gtest/gtest.h>

#include <cmath>

#include "sparse/blockops.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

void random_block(Rng& rng, double* a, double diag_boost = 0.0) {
  for (int i = 0; i < kBs2; ++i) a[i] = rng.uniform(-1, 1);
  for (int i = 0; i < kBs; ++i) a[i * kBs + i] += diag_boost;
}

TEST(BlockOps, GemvSubMatchesReference) {
  Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    double a[kBs2], x[kBs], y[kBs], y2[kBs];
    random_block(rng, a);
    for (int i = 0; i < kBs; ++i) {
      x[i] = rng.uniform(-1, 1);
      y[i] = y2[i] = rng.uniform(-1, 1);
    }
    block_gemv_sub(a, x, y);
    for (int r = 0; r < kBs; ++r) {
      double s = y2[r];
      for (int c = 0; c < kBs; ++c) s -= a[r * kBs + c] * x[c];
      EXPECT_NEAR(y[r], s, 1e-14);
    }
  }
}

TEST(BlockOps, SimdGemvSubMatchesScalar) {
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    double a[kBs2], x[kBs], y1[kBs], y2[kBs];
    random_block(rng, a);
    for (int i = 0; i < kBs; ++i) {
      x[i] = rng.uniform(-1, 1);
      y1[i] = y2[i] = rng.uniform(-1, 1);
    }
    block_gemv_sub(a, x, y1);
    block_gemv_sub_simd(a, x, y2);
    for (int i = 0; i < kBs; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
  }
}

TEST(BlockOps, GemmSubMatchesReference) {
  Rng rng(3);
  double a[kBs2], b[kBs2], c1[kBs2], c2[kBs2];
  random_block(rng, a);
  random_block(rng, b);
  for (int i = 0; i < kBs2; ++i) c1[i] = c2[i] = rng.uniform(-1, 1);
  block_gemm_sub(a, b, c1);
  for (int r = 0; r < kBs; ++r)
    for (int j = 0; j < kBs; ++j) {
      double s = c2[r * kBs + j];
      for (int k = 0; k < kBs; ++k) s -= a[r * kBs + k] * b[k * kBs + j];
      EXPECT_NEAR(c1[r * kBs + j], s, 1e-13);
    }
}

TEST(BlockOps, SimdGemmSubMatchesScalar) {
  Rng rng(4);
  for (int rep = 0; rep < 20; ++rep) {
    double a[kBs2], b[kBs2], c1[kBs2], c2[kBs2];
    random_block(rng, a);
    random_block(rng, b);
    for (int i = 0; i < kBs2; ++i) c1[i] = c2[i] = rng.uniform(-1, 1);
    block_gemm_sub(a, b, c1);
    block_gemm_sub_simd(a, b, c2);
    for (int i = 0; i < kBs2; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-13);
  }
}

TEST(BlockOps, InvertRecoversIdentity) {
  Rng rng(5);
  for (int rep = 0; rep < 30; ++rep) {
    double a[kBs2], inv[kBs2], prod[kBs2];
    random_block(rng, a, 4.0);  // diagonally dominant => nonsingular
    ASSERT_TRUE(block_invert(a, inv));
    block_gemm(a, inv, prod);
    for (int r = 0; r < kBs; ++r)
      for (int c = 0; c < kBs; ++c)
        EXPECT_NEAR(prod[r * kBs + c], r == c ? 1.0 : 0.0, 1e-10);
  }
}

TEST(BlockOps, InvertNeedsPivoting) {
  // Zero in the (0,0) position but nonsingular: requires row swap.
  double a[kBs2] = {0, 1, 0, 0,  //
                    1, 0, 0, 0,  //
                    0, 0, 1, 0,  //
                    0, 0, 0, 1};
  double inv[kBs2];
  ASSERT_TRUE(block_invert(a, inv));
  double prod[kBs2];
  block_gemm(a, inv, prod);
  for (int r = 0; r < kBs; ++r)
    for (int c = 0; c < kBs; ++c)
      EXPECT_NEAR(prod[r * kBs + c], r == c ? 1.0 : 0.0, 1e-12);
}

TEST(BlockOps, InvertDetectsSingular) {
  double a[kBs2] = {};  // zero matrix
  double inv[kBs2];
  EXPECT_FALSE(block_invert(a, inv));
  // Rank-deficient: two equal rows.
  double b[kBs2] = {1, 2, 3, 4, 1, 2, 3, 4, 0, 0, 1, 0, 0, 0, 0, 1};
  EXPECT_FALSE(block_invert(b, inv));
}

TEST(BlockOps, DiffNorm) {
  double a[kBs2] = {}, b[kBs2] = {};
  b[0] = 3.0;
  b[5] = 4.0;
  EXPECT_NEAR(block_diff_norm(a, b), 5.0, 1e-14);
}

}  // namespace
}  // namespace fun3d
