#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"

namespace fun3d {
namespace {

TetMesh solver_mesh(unsigned seed = 1) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, seed);
  rcm_reorder(m);
  return m;
}

SolveStats run(SolverConfig cfg, TetMesh m) {
  cfg.ptc.max_steps = 30;
  cfg.ptc.rtol = 1e-8;
  FlowSolver solver(std::move(m), cfg);
  return solver.solve();
}

TEST(Solver, BaselineConvergesOnWingBump) {
  const SolveStats st = run(SolverConfig::baseline(), solver_mesh());
  EXPECT_TRUE(st.converged);
  EXPECT_LT(st.steps, 25);
  EXPECT_GT(st.linear_iterations, 0u);
  // Residual history decreases overall by the requested ratio.
  EXPECT_LT(st.residual_history.back(), 1e-7 * st.residual_history.front());
}

TEST(Solver, OptimizedMatchesBaselineSolution) {
  TetMesh m1 = solver_mesh(2), m2 = solver_mesh(2);
  SolverConfig base = SolverConfig::baseline();
  SolverConfig opt = SolverConfig::optimized(4);
  base.ptc.max_steps = opt.ptc.max_steps = 30;
  base.ptc.rtol = opt.ptc.rtol = 1e-9;
  FlowSolver s1(std::move(m1), base), s2(std::move(m2), opt);
  const SolveStats st1 = s1.solve();
  const SolveStats st2 = s2.solve();
  EXPECT_TRUE(st1.converged);
  EXPECT_TRUE(st2.converged);
  // Both converge to the same steady state (physics, not roundoff, decides).
  double diff = 0, norm = 0;
  for (std::size_t i = 0; i < s1.fields().q.size(); ++i) {
    diff += std::pow(s1.fields().q[i] - s2.fields().q[i], 2);
    norm += std::pow(s1.fields().q[i], 2);
  }
  EXPECT_LT(std::sqrt(diff / norm), 1e-6);
}

TEST(Solver, MatrixFreeAndAssembledBothConverge) {
  SolverConfig mf = SolverConfig::baseline();
  SolverConfig asm_op = SolverConfig::baseline();
  asm_op.matrix_free = false;
  const SolveStats st_mf = run(mf, solver_mesh(3));
  const SolveStats st_asm = run(asm_op, solver_mesh(3));
  EXPECT_TRUE(st_mf.converged);
  EXPECT_TRUE(st_asm.converged);
}

TEST(Solver, Ilu0NeedsMoreIterationsThanIlu1) {
  // Paper Table II: ILU-0 offers more parallelism but slower convergence.
  SolverConfig c0 = SolverConfig::baseline();
  c0.fill_level = 0;
  SolverConfig c1 = SolverConfig::baseline();
  c1.fill_level = 1;
  const SolveStats st0 = run(c0, solver_mesh(4));
  const SolveStats st1 = run(c1, solver_mesh(4));
  EXPECT_TRUE(st0.converged);
  EXPECT_TRUE(st1.converged);
  EXPECT_GE(st0.linear_iterations, st1.linear_iterations);
  EXPECT_GT(st0.ilu_parallelism, st1.ilu_parallelism);
}

TEST(Solver, MoreSubdomainsDegradeConvergence) {
  // Block-Jacobi coupling loss: the paper's +30% iterations at 256 ranks.
  SolverConfig c1 = SolverConfig::baseline();
  c1.subdomains = 1;
  SolverConfig c8 = SolverConfig::baseline();
  c8.subdomains = 8;
  const SolveStats st1 = run(c1, solver_mesh(5));
  const SolveStats st8 = run(c8, solver_mesh(5));
  EXPECT_TRUE(st1.converged);
  EXPECT_TRUE(st8.converged);
  EXPECT_GT(st8.linear_iterations, st1.linear_iterations);
}

class SolverVariantTest : public ::testing::TestWithParam<TrsvMode> {};

TEST_P(SolverVariantTest, TrsvModesAllConverge) {
  SolverConfig cfg = SolverConfig::optimized(2);
  cfg.trsv_mode = GetParam();
  const SolveStats st = run(cfg, solver_mesh(6));
  EXPECT_TRUE(st.converged);
}

INSTANTIATE_TEST_SUITE_P(Modes, SolverVariantTest,
                         ::testing::Values(TrsvMode::kSerial,
                                           TrsvMode::kLevels,
                                           TrsvMode::kP2P));

TEST(Solver, ProfileCoversAllKernels) {
  TetMesh m = solver_mesh(7);
  SolverConfig cfg = SolverConfig::baseline();
  cfg.ptc.max_steps = 5;
  cfg.ptc.rtol = 1e-3;
  FlowSolver solver(std::move(m), cfg);
  solver.solve();
  const Profile& p = solver.profile();
  for (const char* k : {kernel::kFlux, kernel::kGradient, kernel::kJacobian,
                        kernel::kIlu, kernel::kTrsv, kernel::kVecOps}) {
    EXPECT_GT(p.timers.get(k), 0.0) << k;
  }
  EXPECT_GT(p.residual_evals, 0u);
  EXPECT_GT(p.reductions, 0u);
}

TEST(Solver, ResidualEvalIsDeterministic) {
  TetMesh m = solver_mesh(8);
  FlowSolver solver(std::move(m), SolverConfig::baseline());
  const std::size_t n =
      static_cast<std::size_t>(solver.fields().nv) * kNs;
  AVec<double> q(solver.fields().q.begin(), solver.fields().q.end());
  AVec<double> r1(n), r2(n);
  solver.eval_residual({q.data(), n}, {r1.data(), n});
  solver.eval_residual({q.data(), n}, {r2.data(), n});
  EXPECT_EQ(r1, r2);
}

TEST(Solver, BicgstabKrylovConverges) {
  SolverConfig cfg = SolverConfig::baseline();
  cfg.krylov = KrylovMethod::kBicgstab;
  const SolveStats st = run(cfg, solver_mesh(11));
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.linear_iterations, 0u);
}

TEST(Solver, RusanovSchemeConverges) {
  SolverConfig cfg = SolverConfig::baseline();
  cfg.scheme = FluxScheme::kRusanov;
  cfg.flux.scheme = FluxScheme::kRusanov;
  const SolveStats st = run(cfg, solver_mesh(9));
  EXPECT_TRUE(st.converged);
}

TEST(Solver, FirstOrderConverges) {
  SolverConfig cfg = SolverConfig::baseline();
  cfg.second_order = false;
  cfg.flux.second_order = false;
  const SolveStats st = run(cfg, solver_mesh(10));
  EXPECT_TRUE(st.converged);
}

}  // namespace
}  // namespace fun3d
