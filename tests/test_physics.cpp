#include <gtest/gtest.h>

#include <cmath>

#include "core/physics.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

void random_state(Rng& rng, double* q) {
  q[0] = rng.uniform(-1, 1);
  for (int i = 1; i < kNs; ++i) q[i] = rng.uniform(-2, 2);
}

void random_normal(Rng& rng, double* n) {
  for (int i = 0; i < 3; ++i) n[i] = rng.uniform(-1, 1);
}

TEST(Physics, FluxDefinition) {
  Physics ph;
  ph.beta = 5.0;
  const double q[kNs] = {2.0, 1.0, -1.0, 0.5};
  const double n[3] = {1.0, 2.0, -1.0};
  const double theta = 1.0 * 1 + 2.0 * (-1) + (-1.0) * 0.5;  // -1.5
  double f[kNs];
  euler_flux(ph, q, n, f);
  EXPECT_DOUBLE_EQ(f[0], 5.0 * theta);
  EXPECT_DOUBLE_EQ(f[1], 1.0 * theta + 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(f[2], -1.0 * theta + 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(f[3], 0.5 * theta + (-1.0) * 2.0);
}

TEST(Physics, FluxJacobianMatchesFiniteDifference) {
  Physics ph;
  Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    double q[kNs], n[3], a[kNs * kNs];
    random_state(rng, q);
    random_normal(rng, n);
    euler_flux_jacobian(ph, q, n, a);
    const double h = 1e-7;
    for (int c = 0; c < kNs; ++c) {
      double qp[kNs], qm[kNs], fp[kNs], fm[kNs];
      for (int i = 0; i < kNs; ++i) qp[i] = qm[i] = q[i];
      qp[c] += h;
      qm[c] -= h;
      euler_flux(ph, qp, n, fp);
      euler_flux(ph, qm, n, fm);
      for (int r = 0; r < kNs; ++r)
        EXPECT_NEAR(a[r * kNs + c], (fp[r] - fm[r]) / (2 * h), 1e-6);
    }
  }
}

TEST(Physics, WavespeedsStructure) {
  Physics ph;
  ph.beta = 10.0;
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    double q[kNs], n[3], lam[kNs];
    random_state(rng, q);
    random_normal(rng, n);
    const double c = euler_wavespeeds(ph, q, n, lam);
    const double theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
    const double s2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
    EXPECT_NEAR(c, std::sqrt(theta * theta + ph.beta * s2), 1e-12);
    EXPECT_DOUBLE_EQ(lam[0], theta);
    EXPECT_DOUBLE_EQ(lam[2], theta + c);
    EXPECT_DOUBLE_EQ(lam[3], theta - c);
    EXPECT_GE(c, std::fabs(theta));  // lam+ >= 0 >= lam-
    EXPECT_NEAR(spectral_radius(ph, q, n), std::fabs(theta) + c, 1e-12);
  }
}

/// |A| must (a) commute with A's eigenstructure: |A| applied to an
/// eigenvector of A scales it by ~|lambda|; verified indirectly through
/// the polynomial identity |A| = p(A) checked against a numerically built
/// |A| via eigen-decomposition of the 2x2-reducible system. Here we check
/// two robust properties instead: |A| == A when all wave speeds positive
/// (supersonic-like), and |A| == -A when all negative.
TEST(Physics, AbsJacobianEqualsSignedAWhenAllWavesOneSided) {
  Physics ph;
  ph.beta = 0.01;  // tiny beta: c ~ |theta|, all speeds share theta's sign
  ph.entropy_eps = 0.0;
  const double q[kNs] = {0.3, 2.0, 0.0, 0.0};
  const double n[3] = {1.0, 0.0, 0.0};  // theta = 2 > 0, c = sqrt(4.01)
  // lambda- = theta - c is slightly negative here, so use a beta-free check:
  // scale beta so that c < theta: impossible (c >= sqrt(theta^2) = theta).
  // Instead verify |A| x = A x for x in the span of the positive-speed
  // eigenvectors: take x = A y (mixes all); compare |A|A y vs A A y only in
  // the limit beta -> 0 where lambda- -> 0^-.
  double absa[kNs * kNs], a[kNs * kNs];
  euler_abs_jacobian(ph, q, n, absa);
  euler_flux_jacobian(ph, q, n, a);
  // With beta -> 0, |A| ~ A up to O(beta) corrections.
  for (int i = 0; i < kNs * kNs; ++i) EXPECT_NEAR(absa[i], a[i], 0.05);
}

TEST(Physics, AbsJacobianIsEvenInNormal) {
  // |A(q, -n)| must equal |A(q, n)| (dissipation independent of edge
  // orientation).
  Physics ph;
  Rng rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    double q[kNs], n[3], nm[3], a1[kNs * kNs], a2[kNs * kNs];
    random_state(rng, q);
    random_normal(rng, n);
    for (int d = 0; d < 3; ++d) nm[d] = -n[d];
    euler_abs_jacobian(ph, q, n, a1);
    euler_abs_jacobian(ph, q, nm, a2);
    for (int i = 0; i < kNs * kNs; ++i) EXPECT_NEAR(a1[i], a2[i], 1e-10);
  }
}

TEST(Physics, RoeFluxConsistency) {
  // qL == qR == q  =>  F_face = F(q) exactly (dissipation vanishes).
  Physics ph;
  Rng rng(4);
  for (int rep = 0; rep < 20; ++rep) {
    double q[kNs], n[3], f[kNs], fexact[kNs];
    random_state(rng, q);
    random_normal(rng, n);
    roe_flux(ph, q, q, n, f);
    euler_flux(ph, q, n, fexact);
    for (int i = 0; i < kNs; ++i) EXPECT_NEAR(f[i], fexact[i], 1e-12);
  }
}

TEST(Physics, RusanovFluxConsistency) {
  Physics ph;
  double q[kNs] = {1.0, 0.5, -0.25, 0.75};
  double n[3] = {0.3, -0.2, 0.9};
  double f[kNs], fexact[kNs];
  rusanov_flux(ph, q, q, n, f);
  euler_flux(ph, q, n, fexact);
  for (int i = 0; i < kNs; ++i) EXPECT_NEAR(f[i], fexact[i], 1e-13);
}

TEST(Physics, RoeDissipationUpwindsContactStates) {
  // Roe dissipation must damp jumps: ||F_roe - F_central|| > 0 for qL != qR.
  Physics ph;
  const double ql[kNs] = {1.0, 1.0, 0.0, 0.0};
  const double qr[kNs] = {0.5, 0.8, 0.1, 0.0};
  const double n[3] = {1.0, 0.0, 0.0};
  double froe[kNs], fl[kNs], fr[kNs];
  roe_flux(ph, ql, qr, n, froe);
  euler_flux(ph, ql, n, fl);
  euler_flux(ph, qr, n, fr);
  double diss = 0;
  for (int i = 0; i < kNs; ++i)
    diss += std::fabs(froe[i] - 0.5 * (fl[i] + fr[i]));
  EXPECT_GT(diss, 1e-3);
}

TEST(Physics, RoeJacobiansMatchFiniteDifferenceOfFrozenAbsA) {
  // The returned dF/dqL, dF/dqR are the frozen-|A| linearization; verify
  // against finite differences of the flux with |A| held at qbar of the
  // *base* states (consistency of the implementation, not exact Newton).
  Physics ph;
  Rng rng(5);
  double ql[kNs], qr[kNs], n[3];
  random_state(rng, ql);
  random_state(rng, qr);
  random_normal(rng, n);
  double f[kNs], dl[kNs * kNs], dr[kNs * kNs];
  roe_flux(ph, ql, qr, n, f, dl, dr);
  // Frozen-|A| Jacobians: dF/dqL = (A(qL)+|A|)/2.
  double al[kNs * kNs], absa[kNs * kNs];
  euler_flux_jacobian(ph, ql, n, al);
  double qbar[kNs];
  for (int i = 0; i < kNs; ++i) qbar[i] = 0.5 * (ql[i] + qr[i]);
  euler_abs_jacobian(ph, qbar, n, absa);
  for (int i = 0; i < kNs * kNs; ++i)
    EXPECT_NEAR(dl[i], 0.5 * (al[i] + absa[i]), 1e-12);
}

TEST(Physics, SlipWallFluxHasNoMassFlux) {
  Physics ph;
  const double q[kNs] = {2.5, 1.0, 2.0, 3.0};
  const double n[3] = {0.0, 0.0, -1.0};
  double f[kNs], dfdq[kNs * kNs];
  slip_wall_flux(ph, q, n, f, dfdq);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[3], -2.5);
  // Jacobian: only the pressure column is nonzero.
  for (int r = 0; r < kNs; ++r)
    for (int c = 1; c < kNs; ++c) EXPECT_DOUBLE_EQ(dfdq[r * kNs + c], 0.0);
}

TEST(Physics, FarfieldFluxAtFreestreamIsExactFlux) {
  Physics ph;
  const double n[3] = {0.5, -0.5, 1.0};
  double f[kNs], fexact[kNs];
  farfield_flux(ph, ph.freestream.data(), n, f);
  euler_flux(ph, ph.freestream.data(), n, fexact);
  for (int i = 0; i < kNs; ++i) EXPECT_NEAR(f[i], fexact[i], 1e-13);
}

}  // namespace
}  // namespace fun3d
