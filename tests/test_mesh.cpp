#include <gtest/gtest.h>

#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/stats.hpp"

namespace fun3d {
namespace {

TEST(Generate, BoxCountsMatchStructuredFormulas) {
  const idx_t nx = 4, ny = 3, nz = 2;
  const TetMesh m = generate_box(nx, ny, nz);
  EXPECT_EQ(m.num_vertices, (nx + 1) * (ny + 1) * (nz + 1));
  EXPECT_EQ(m.num_tets(), static_cast<std::size_t>(nx * ny * nz) * 6);
  // Kuhn subdivision: every cube face contributes 2 boundary triangles.
  const std::size_t quads = 2u * (static_cast<std::size_t>(nx * ny) +
                                  static_cast<std::size_t>(ny * nz) +
                                  static_cast<std::size_t>(nx * nz));
  EXPECT_EQ(m.bfaces.size(), quads * 2);
}

TEST(Generate, AllTetsPositiveVolume) {
  const TetMesh m = generate_wing_bump(preset_params(MeshPreset::kSmall));
  for (const auto& t : m.tets) EXPECT_GT(tet_volume(m, t), 0.0);
}

TEST(Generate, BoxVolumeExact) {
  const TetMesh m = generate_box(3, 4, 5, 2.0, 1.0, 3.0);
  double v = 0;
  for (const auto& t : m.tets) v += tet_volume(m, t);
  EXPECT_NEAR(v, 2.0 * 1.0 * 3.0, 1e-10);
}

class DualClosureTest : public ::testing::TestWithParam<MeshPreset> {};

TEST_P(DualClosureTest, ConservationIdentitiesHold) {
  const TetMesh m = generate_wing_bump(preset_params(GetParam()));
  // Characteristic face area for scaling the roundoff tolerance.
  const double tol = 1e-12 * static_cast<double>(m.num_vertices);
  EXPECT_LT(dual_closure_error(m), tol);
  EXPECT_LT(surface_closure_error(m), tol);
  EXPECT_LT(volume_consistency_error(m), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Presets, DualClosureTest,
                         ::testing::Values(MeshPreset::kTiny,
                                           MeshPreset::kSmall));

TEST(Dual, AllDualVolumesPositive) {
  const TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  for (double v : m.dual_vol) EXPECT_GT(v, 0.0);
}

TEST(Dual, EdgeNormalPointsFromAToB) {
  // For a structured box, the dual face of an x-aligned edge must have a
  // positive x area component.
  const TetMesh m = generate_box(3, 3, 3);
  for (std::size_t e = 0; e < m.edges.size(); ++e) {
    const auto [a, b] = m.edges[e];
    const double dx = m.x[static_cast<std::size_t>(b)] - m.x[static_cast<std::size_t>(a)];
    const double dy = m.y[static_cast<std::size_t>(b)] - m.y[static_cast<std::size_t>(a)];
    const double dz = m.z[static_cast<std::size_t>(b)] - m.z[static_cast<std::size_t>(a)];
    const double d = dx * m.dual_nx[e] + dy * m.dual_ny[e] + dz * m.dual_nz[e];
    EXPECT_GT(d, 0.0) << "edge " << e;
  }
}

TEST(Generate, EdgesSortedWithLowerFirst) {
  const TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  for (std::size_t e = 0; e < m.edges.size(); ++e) {
    EXPECT_LT(m.edges[e].first, m.edges[e].second);
    if (e > 0) {
      EXPECT_LT(m.edges[e - 1], m.edges[e]);
    }
  }
}

TEST(Generate, WingBumpHasSlipWall) {
  const TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  std::size_t slip = 0, far = 0;
  for (const auto& f : m.bfaces)
    (f.tag == BcTag::kSlipWall ? slip : far)++;
  EXPECT_GT(slip, 0u);
  EXPECT_GT(far, slip);  // 5 far-field sides vs 1 wall
}

TEST(Generate, BoxIsAllFarField) {
  const TetMesh m = generate_box(3, 3, 3);
  for (const auto& f : m.bfaces) EXPECT_EQ(f.tag, BcTag::kFarField);
}

TEST(Generate, BumpRaisesWallVertices) {
  WingBumpParams p = preset_params(MeshPreset::kSmall);
  const TetMesh m = generate_wing_bump(p);
  double zmax_wall = 0;
  const idx_t wall_verts = (p.nx + 1) * (p.ny + 1);
  for (idx_t v = 0; v < wall_verts; ++v)
    zmax_wall = std::max(zmax_wall, m.z[static_cast<std::size_t>(v)]);
  EXPECT_GT(zmax_wall, 0.5 * p.bump_height);
  EXPECT_LE(zmax_wall, p.bump_height * 1.0001);
}

TEST(Stats, MatchesPaperTopologyProfile) {
  const MeshStats s =
      compute_mesh_stats(generate_wing_bump(preset_params(MeshPreset::kSmall)));
  // Paper meshes: ~6.7 edges per vertex, average degree ~13.4. A structured
  // Kuhn tet mesh gives 7 edges/vertex in the bulk; boundary lowers it.
  EXPECT_GT(s.edges_per_vertex, 5.0);
  EXPECT_LT(s.edges_per_vertex, 7.2);
  EXPECT_EQ(s.degree.max, 14);
}

TEST(Presets, ScaleReducesSize) {
  const WingBumpParams full = preset_params(MeshPreset::kMeshC, 8.0);
  const WingBumpParams half = preset_params(MeshPreset::kMeshC, 16.0);
  EXPECT_GT(full.nx, half.nx);
  EXPECT_STREQ(preset_name(MeshPreset::kMeshC), "Mesh-C");
}

TEST(Presets, MeshCFullScaleMatchesPaperCounts) {
  // Do not build it (too large for a unit test) — check the arithmetic.
  const WingBumpParams p = preset_params(MeshPreset::kMeshC, 1.0);
  const std::int64_t verts = static_cast<std::int64_t>(p.nx + 1) *
                             (p.ny + 1) * (p.nz + 1);
  EXPECT_NEAR(static_cast<double>(verts), 3.58e5, 0.1e5);
}

TEST(FindBoundary, DetectsAllFacesOnce) {
  const TetMesh m = generate_box(2, 2, 2);
  const auto tris = find_boundary_triangles(m);
  EXPECT_EQ(tris.size(), m.bfaces.size());
}

TEST(Generate, RejectsBadDims) {
  WingBumpParams p;
  p.nx = 0;
  EXPECT_THROW(generate_wing_bump(p), std::invalid_argument);
}

}  // namespace
}  // namespace fun3d
