#include <gtest/gtest.h>

#include "core/bicgstab.hpp"
#include "mesh/generate.hpp"
#include "sparse/ilu.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

Bcsr4 random_dd(const CsrGraph& adj, unsigned seed, double dd = 8.0) {
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (idx_t r = 0; r < m.num_rows(); ++r)
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      double* b = m.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (m.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += dd;
    }
  return m;
}

TEST(Bicgstab, SolvesDiagonalSystem) {
  const std::size_t n = 64;
  AVec<double> b(n), x(n, 0.0);
  Rng rng(1);
  for (auto& bi : b) bi = rng.uniform(-1, 1);
  const LinearOp a = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = 4.0 * in[i];
  };
  VecOps vec{1};
  BicgstabOptions opt;
  opt.rtol = 1e-12;
  const BicgstabResult r = bicgstab_solve(a, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], b[i] / 4.0, 1e-10);
}

TEST(Bicgstab, SolvesNonsymmetricBcsrSystem) {
  const Bcsr4 a = random_dd(generate_box(3, 3, 3).vertex_graph(), 2);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n), x(n, 0.0);
  Rng rng(3);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  BicgstabOptions opt;
  opt.rtol = 1e-10;
  opt.max_iters = 400;
  const BicgstabResult r = bicgstab_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-6);
}

TEST(Bicgstab, IluPreconditioningCutsIterations) {
  const Bcsr4 a = random_dd(generate_box(4, 4, 3).vertex_graph(), 4, 5.0);
  const IluFactor f = factorize_ilu(a, symbolic_ilu(a.structure(), 0));
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> xref(n), b(n);
  Rng rng(5);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  spmv_serial(a, xref, b);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  const LinearOp pre = [&](std::span<const double> in, std::span<double> out) {
    trsv_serial(f, in, out);
  };
  VecOps vec{1};
  BicgstabOptions opt;
  opt.rtol = 1e-8;
  AVec<double> x1(n, 0.0), x2(n, 0.0);
  const BicgstabResult plain = bicgstab_solve(op, nullptr, b, x1, opt, vec);
  const BicgstabResult prec = bicgstab_solve(op, &pre, b, x2, opt, vec);
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x2[i], xref[i], 1e-5);
}

TEST(Bicgstab, FewerReductionsPerIterationThanGmres) {
  // The motivation for short-recurrence methods at scale: constant (4)
  // reductions per iteration vs GMRES's growing Gram-Schmidt count.
  const Bcsr4 a = random_dd(generate_box(3, 3, 3).vertex_graph(), 6, 4.0);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  AVec<double> b(n, 1.0);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    spmv_serial(a, in, out);
  };
  VecOps vec{1};
  Profile pb, pg;
  AVec<double> x1(n, 0.0), x2(n, 0.0);
  BicgstabOptions bopt;
  bopt.rtol = 1e-8;
  const BicgstabResult rb = bicgstab_solve(op, nullptr, b, x1, bopt, vec, &pb);
  GmresOptions gopt;
  gopt.rtol = 1e-8;
  const GmresResult rg = gmres_solve(op, nullptr, b, x2, gopt, vec, &pg);
  ASSERT_TRUE(rb.converged);
  ASSERT_TRUE(rg.converged);
  const double per_it_b =
      static_cast<double>(pb.reductions) / std::max(rb.iterations, 1);
  const double per_it_g =
      static_cast<double>(pg.reductions) / std::max(rg.iterations, 1);
  EXPECT_LT(per_it_b, per_it_g);
}

TEST(Bicgstab, ZeroRhsImmediateConvergence) {
  AVec<double> b(16, 0.0), x(16, 0.0);
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
  };
  VecOps vec{1};
  const BicgstabResult r =
      bicgstab_solve(op, nullptr, b, x, BicgstabOptions{}, vec);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Bicgstab, ReportsBreakdownInsteadOfLooping) {
  // A x = b with A nilpotent-ish on the shadow direction triggers rho ~ 0.
  const std::size_t n = 8;
  AVec<double> b(n, 0.0), x(n, 0.0);
  b[0] = 1.0;
  const LinearOp op = [](std::span<const double> in, std::span<double> out) {
    // Shift: out[i] = in[(i+1) mod n] — orthogonalizes quickly.
    const std::size_t m = in.size();
    for (std::size_t i = 0; i < m; ++i) out[i] = in[(i + 1) % m];
  };
  VecOps vec{1};
  BicgstabOptions opt;
  opt.max_iters = 50;
  const BicgstabResult r = bicgstab_solve(op, nullptr, b, x, opt, vec);
  EXPECT_TRUE(r.converged || r.breakdown || r.iterations == opt.max_iters);
}

}  // namespace
}  // namespace fun3d
