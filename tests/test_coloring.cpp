#include <gtest/gtest.h>

#include "graph/coloring.hpp"
#include "mesh/generate.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

TEST(Coloring, PathNeedsTwoColors) {
  std::vector<std::pair<idx_t, idx_t>> es{{0, 1}, {1, 2}, {2, 3}};
  const CsrGraph g = build_csr_from_edges(4, es);
  const Coloring c = greedy_coloring(g);
  EXPECT_EQ(c.ncolors, 2);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  std::vector<std::pair<idx_t, idx_t>> es;
  for (idx_t i = 0; i < 5; ++i)
    for (idx_t j = i + 1; j < 5; ++j) es.emplace_back(i, j);
  const CsrGraph g = build_csr_from_edges(5, es);
  const Coloring c = greedy_coloring(g);
  EXPECT_EQ(c.ncolors, 5);
  EXPECT_TRUE(is_valid_coloring(g, c));
}

TEST(Coloring, ValidOnMeshGraph) {
  const CsrGraph g = generate_box(6, 6, 6).vertex_graph();
  const Coloring c = greedy_coloring(g);
  EXPECT_TRUE(is_valid_coloring(g, c));
  // Greedy uses at most maxdeg+1 colours.
  idx_t maxdeg = 0;
  for (idx_t v = 0; v < g.num_vertices(); ++v)
    maxdeg = std::max(maxdeg, g.degree(v));
  EXPECT_LE(c.ncolors, maxdeg + 1);
}

TEST(Coloring, DegreeOrderNotWorseMuch) {
  const CsrGraph g = generate_box(6, 6, 6).vertex_graph();
  const Coloring natural = greedy_coloring(g);
  const Coloring bydeg = greedy_coloring(g, degree_descending_order(g));
  EXPECT_TRUE(is_valid_coloring(g, bydeg));
  EXPECT_LE(bydeg.ncolors, natural.ncolors + 2);
}

TEST(Coloring, IsValidColoringRejectsBadColorings) {
  const CsrGraph g = build_csr_from_edges(
      2, std::vector<std::pair<idx_t, idx_t>>{{0, 1}});
  Coloring bad;
  bad.ncolors = 1;
  bad.color = {0, 0};
  EXPECT_FALSE(is_valid_coloring(g, bad));
}

TEST(EdgeConflictGraph, PairsEdgesSharingVertices) {
  // Triangle: all three edges pairwise conflict.
  std::vector<std::pair<idx_t, idx_t>> edges{{0, 1}, {1, 2}, {0, 2}};
  const CsrGraph cg = edge_conflict_graph(3, edges);
  EXPECT_EQ(cg.num_vertices(), 3);
  for (idx_t e = 0; e < 3; ++e) EXPECT_EQ(cg.degree(e), 2);
  const Coloring c = greedy_coloring(cg);
  EXPECT_EQ(c.ncolors, 3);
}

TEST(EdgeConflictGraph, DisjointEdgesDoNotConflict) {
  std::vector<std::pair<idx_t, idx_t>> edges{{0, 1}, {2, 3}};
  const CsrGraph cg = edge_conflict_graph(4, edges);
  EXPECT_EQ(cg.num_arcs(), 0u);
  EXPECT_EQ(greedy_coloring(cg).ncolors, 1);
}

}  // namespace
}  // namespace fun3d
