// Parallel numeric ILU(k) factorization: the level-scheduled and
// p2p-sparsified variants must produce factors bitwise-identical to the
// serial `factorize_ilu` for every fill level, thread count, and subdomain
// pattern — the schedules only reorder row completions across threads,
// never the per-row arithmetic.
#include <gtest/gtest.h>

#include <omp.h>

#include <cstring>

#include "graph/levels.hpp"
#include "graph/sparsify.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/team.hpp"
#include "sparse/ilu.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

Bcsr4 random_dd(const CsrGraph& adj, unsigned seed) {
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (idx_t r = 0; r < m.num_rows(); ++r)
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      double* b = m.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (m.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += 8.0;
    }
  return m;
}

CsrGraph mesh_adjacency(unsigned seed) {
  TetMesh m = generate_box(4, 4, 3);
  shuffle_numbering(m, seed);  // irregular row order, like real meshes
  return m.vertex_graph();
}

/// Restriction of an adjacency to `nsub` contiguous diagonal blocks — the
/// block-Jacobi sparsity the solver factorizes when subdomains > 1.
CsrGraph block_diagonal(const CsrGraph& adj, idx_t nsub) {
  const idx_t n = adj.num_vertices();
  auto block_of = [&](idx_t v) {
    return std::min<idx_t>(
        static_cast<idx_t>(static_cast<std::int64_t>(v) * nsub / n),
        nsub - 1);
  };
  CsrGraph out;
  out.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t v = 0; v < n; ++v) {
    idx_t count = 0;
    for (idx_t u : adj.neighbors(v))
      if (block_of(u) == block_of(v)) ++count;
    out.rowptr[static_cast<std::size_t>(v) + 1] =
        out.rowptr[static_cast<std::size_t>(v)] + count;
  }
  out.col.reserve(static_cast<std::size_t>(out.rowptr.back()));
  for (idx_t v = 0; v < n; ++v)
    for (idx_t u : adj.neighbors(v))
      if (block_of(u) == block_of(v)) out.col.push_back(u);
  return out;
}

void expect_factors_identical(const IluFactor& a, const IluFactor& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  for (idx_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.row_begin(r), b.row_begin(r));
    ASSERT_EQ(a.row_end(r), b.row_end(r));
    ASSERT_EQ(a.diag_index(r), b.diag_index(r));
  }
  for (idx_t nz = 0; nz < static_cast<idx_t>(a.num_blocks()); ++nz)
    ASSERT_EQ(a.col(nz), b.col(nz));
  // Bitwise: memcmp over the whole value array, no tolerance.
  EXPECT_EQ(std::memcmp(a.block(0), b.block(0),
                        a.num_blocks() * kBs2 * sizeof(double)),
            0);
  EXPECT_EQ(a.factor_flops(), b.factor_flops());
}

class IluParallelTest
    : public ::testing::TestWithParam<std::tuple<int, idx_t>> {};

TEST_P(IluParallelTest, LevelsAndP2PMatchSerialBitwise) {
  const auto [fill, nthreads] = GetParam();
  const CsrGraph adj = mesh_adjacency(12345u + static_cast<unsigned>(fill));
  const Bcsr4 a = random_dd(adj, 7u + static_cast<unsigned>(fill));
  const IluPattern p = symbolic_ilu(adj, fill);
  const IluSchedules s = IluSchedules::build(p, nthreads);
  const IluFactor serial = factorize_ilu(a, p);
  expect_factors_identical(serial, factorize_ilu_levels(a, p, s));
  expect_factors_identical(serial, factorize_ilu_p2p(a, p, s));
}

// ThreadSanitizer instruments every atomic access in the p2p spin waits,
// slowing them by an order of magnitude; the oversubscribed tail of the
// thread ladder then takes minutes per case on small hosts. Race coverage
// needs concurrent threads, not the full ladder, so cap the sweep there.
#if defined(__SANITIZE_THREAD__)
#define FUN3D_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FUN3D_TEST_UNDER_TSAN 1
#endif
#endif

#ifdef FUN3D_TEST_UNDER_TSAN
constexpr idx_t kSweepThreadsEnd = 3;  // threads 1..2 under TSan
#else
constexpr idx_t kSweepThreadsEnd = 9;  // threads 1..8
#endif

INSTANTIATE_TEST_SUITE_P(
    FillByThreads, IluParallelTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range<idx_t>(1, kSweepThreadsEnd)));

TEST(IluParallel, BlockJacobiPatternsMatchSerialBitwise) {
  const CsrGraph adj = mesh_adjacency(99);
  const Bcsr4 a = random_dd(adj, 31);
  for (const idx_t nsub : {2, 3, 5}) {
    const IluPattern p = symbolic_ilu(block_diagonal(adj, nsub), 1);
    const IluSchedules s = IluSchedules::build(p, 4);
    const IluFactor serial = factorize_ilu(a, p);
    expect_factors_identical(serial, factorize_ilu_levels(a, p, s));
    expect_factors_identical(serial, factorize_ilu_p2p(a, p, s));
  }
}

TEST(IluSchedules, BuildStatsSane) {
  const CsrGraph adj = mesh_adjacency(3);
  const IluPattern p = symbolic_ilu(adj, 1);
  const IluSchedules s = IluSchedules::build(p, 4);
  EXPECT_EQ(s.nthreads, 4);
  EXPECT_GT(s.levels.nlevels, 1);
  EXPECT_GT(s.critical_path, 0.0);
  const CsrGraph deps = ilu_lower_deps(p);
  EXPECT_TRUE(is_valid_level_schedule(deps, s.levels));
  EXPECT_TRUE(p2p_plan_covers(deps, s.owner, s.plan));
  EXPECT_LE(s.plan.reduced_cross_deps, s.plan.raw_cross_deps);
}

TEST(IluSchedules, DependencyDagMatchesFactor) {
  const CsrGraph adj = mesh_adjacency(5);
  const Bcsr4 a = random_dd(adj, 5);
  const IluPattern p = symbolic_ilu(adj, 2);
  const IluFactor f = factorize_ilu(a, p);
  const CsrGraph from_pattern = ilu_lower_deps(p);
  const CsrGraph from_factor = f.lower_deps();
  EXPECT_EQ(from_pattern.rowptr, from_factor.rowptr);
  EXPECT_EQ(from_pattern.col, from_factor.col);
}

TEST(IluParallel, SingularDiagonalThrowsFromBothVariants) {
  CsrGraph adj;
  adj.rowptr = {0, 2, 4};
  adj.col = {0, 1, 0, 1};
  const Bcsr4 a = Bcsr4::from_adjacency(adj);  // all-zero blocks
  const IluPattern p = symbolic_ilu(adj, 0);
  const IluSchedules s = IluSchedules::build(p, 2);
  EXPECT_THROW(factorize_ilu_levels(a, p, s), std::runtime_error);
  EXPECT_THROW(factorize_ilu_p2p(a, p, s), std::runtime_error);
}

// Regression companion to TrsvP2P.CompletesWhenRuntimeCapsThreadsBelowSchedule:
// when the OpenMP runtime delivers fewer threads than the p2p schedule was
// built for, rows owned by absent threads would never factor and waiters
// would spin forever. Reproduced by factoring from inside an active
// parallel region with nesting disabled (inner teams capped at 1 thread);
// the call must fall back to the serial factorization and still produce
// the bitwise-identical factor, recording a shortfall event.
TEST(IluP2P, CompletesWhenRuntimeCapsThreadsBelowSchedule) {
  const CsrGraph adj = mesh_adjacency(7);
  const Bcsr4 a = random_dd(adj, 7);
  const IluPattern p = symbolic_ilu(adj, 1);
  const IluSchedules s = IluSchedules::build(p, 4);
  ASSERT_GT(s.plan.raw_cross_deps, 0u);  // waits exist => would deadlock
  const IluFactor serial = factorize_ilu(a, p);
  reset_team_shortfall_stats();
  const int saved_levels = omp_get_max_active_levels();
  omp_set_max_active_levels(1);  // inner parallel regions get 1 thread
  IluFactor capped;
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    capped = factorize_ilu_p2p(a, p, s);
  }
  omp_set_max_active_levels(saved_levels);
  expect_factors_identical(serial, capped);
  EXPECT_GE(team_shortfall_events(), 1u);
  EXPECT_EQ(team_last_planned(), 4);
  EXPECT_LT(team_last_delivered(), 4);
}

TEST(IluParallel, RepeatedFactorizationsAreDeterministic) {
  const CsrGraph adj = mesh_adjacency(11);
  const Bcsr4 a = random_dd(adj, 11);
  const IluPattern p = symbolic_ilu(adj, 1);
  const IluSchedules s = IluSchedules::build(p, 4);
  expect_factors_identical(factorize_ilu_p2p(a, p, s),
                           factorize_ilu_p2p(a, p, s));
}

}  // namespace
}  // namespace fun3d
