// The team-robustness contract (DESIGN.md): every kernel that precomputes
// per-thread work must be correct for ANY delivered team size <= planned.
// These tests drive run_team/run_team_workshare directly and then re-run
// every migrated kernel (flux strategies, gradients, LSQ gradients,
// Jacobian assembly, workshare reductions) under a runtime that grants
// fewer threads than the plan was built for, using the nested-region
// recipe from the PR 1 trsv_p2p fix: an active outer region with
// max_active_levels=1 caps every inner team at a single thread.
#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>
#include <vector>

#include "core/flux_kernels.hpp"
#include "core/gradients.hpp"
#include "core/gradients_lsq.hpp"
#include "core/jacobian.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/team.hpp"
#include "parallel/workshare.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

/// Runs `fn` in a context where any parallel region it opens is capped at
/// one thread: the caller sits inside an active 2-thread region and
/// max_active_levels is exhausted.
template <class Fn>
void with_capped_team(Fn&& fn) {
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    fn();
  }
  omp_set_max_active_levels(saved);
}

// ---------------------------------------------------------------------------
// run_team unit tests
// ---------------------------------------------------------------------------

TEST(RunTeam, FullTeamRunsEachShardExactlyOnce) {
  constexpr idx_t kPlanned = 4;
  std::vector<int> ran(kPlanned, 0);
  const TeamRun run = run_team(kPlanned, [&](idx_t t) {
#pragma omp atomic
    ran[static_cast<std::size_t>(t)]++;
  });
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.planned, kPlanned);
  for (idx_t t = 0; t < kPlanned; ++t) EXPECT_EQ(ran[static_cast<std::size_t>(t)], 1);
  if (run.delivered == kPlanned) {
    EXPECT_FALSE(run.shortfall());
  }
}

TEST(RunTeam, CooperativeShortfallRunsEveryShardExactlyOnce) {
  constexpr idx_t kPlanned = 4;
  std::vector<int> ran(kPlanned, 0);
  TeamRun run;
  with_capped_team([&] {
    run = run_team(kPlanned, [&](idx_t t) {
#pragma omp atomic
      ran[static_cast<std::size_t>(t)]++;
    });
  });
  ASSERT_TRUE(run.shortfall());  // the recipe must actually cap the team
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.planned, kPlanned);
  EXPECT_LT(run.delivered, kPlanned);
  for (idx_t t = 0; t < kPlanned; ++t)
    EXPECT_EQ(ran[static_cast<std::size_t>(t)], 1) << "shard " << t;
}

TEST(RunTeam, SerialPolicyRunsShardsInPlannedOrder) {
  constexpr idx_t kPlanned = 4;
  std::vector<idx_t> order;
  TeamRun run;
  with_capped_team([&] {
    run = run_team(
        kPlanned, [&](idx_t t) { order.push_back(t); },
        ShortfallPolicy::kSerial);
  });
  ASSERT_TRUE(run.shortfall());
  EXPECT_TRUE(run.completed);
  // Capped to 1 delivered thread, kSerial runs 0..planned-1 in order
  // after the region closed — no concurrent push_back.
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kPlanned));
  for (idx_t t = 0; t < kPlanned; ++t)
    EXPECT_EQ(order[static_cast<std::size_t>(t)], t);
}

TEST(RunTeam, AbortPolicyRunsNoShardsAndReportsIncomplete) {
  constexpr idx_t kPlanned = 4;
  int ran = 0;
  TeamRun run;
  with_capped_team([&] {
    run = run_team(
        kPlanned,
        [&](idx_t) {
#pragma omp atomic
          ran++;
        },
        ShortfallPolicy::kAbort);
  });
  ASSERT_TRUE(run.shortfall());
  EXPECT_FALSE(run.completed);
  EXPECT_EQ(ran, 0);
}

TEST(RunTeam, SingleThreadPlanRunsInline) {
  int ran = 0;
  const TeamRun run = run_team(1, [&](idx_t t) {
    EXPECT_EQ(t, 0);
    ran++;
  });
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(run.shortfall());
}

TEST(RunTeamWorkshare, DetectsAndCountsCappedTeam) {
  reset_team_shortfall_stats();
  std::vector<int> visited(100, 0);
  TeamRun run;
  with_capped_team([&] {
    run = run_team_workshare(4, [&] {
#pragma omp for schedule(static)
      for (int i = 0; i < 100; ++i) visited[static_cast<std::size_t>(i)]++;
    });
  });
  ASSERT_TRUE(run.shortfall());
  for (int v : visited) EXPECT_EQ(v, 1);  // omp for covered every iteration
  EXPECT_GE(team_shortfall_events(), 1u);
  EXPECT_EQ(team_last_planned(), 4);
  EXPECT_LT(team_last_delivered(), 4);
}

TEST(TeamStats, ShortfallCountersTrackPlannedAndDelivered) {
  reset_team_shortfall_stats();
  EXPECT_EQ(team_shortfall_events(), 0u);
  EXPECT_EQ(team_last_planned(), 0);
  EXPECT_EQ(team_last_delivered(), 0);

  with_capped_team([&] { run_team(3, [](idx_t) {}); });
  EXPECT_EQ(team_shortfall_events(), 1u);
  EXPECT_EQ(team_last_planned(), 3);
  EXPECT_GE(team_last_delivered(), 1);
  EXPECT_LT(team_last_delivered(), 3);

  reset_team_shortfall_stats();
  EXPECT_EQ(team_shortfall_events(), 0u);
}

// ---------------------------------------------------------------------------
// workshare helpers under shortfall (satellite: deterministic reduction)
// ---------------------------------------------------------------------------

TEST(Workshare, ParallelRangesCoversAllItemsUnderShortfall) {
  constexpr idx_t kN = 1237;
  std::vector<int> hits(kN, 0);
  with_capped_team([&] {
    parallel_ranges(kN, 4, [&](idx_t, idx_t b, idx_t e) {
      for (idx_t i = b; i < e; ++i)
#pragma omp atomic
        hits[static_cast<std::size_t>(i)]++;
    });
  });
  for (idx_t i = 0; i < kN; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "item " << i;
}

TEST(Workshare, ParallelSumBitwiseReproducibleUnderShortfall) {
  // Terms chosen so that any re-association of the partial sums changes
  // the rounding: magnitudes spanning ~16 decimal digits.
  constexpr idx_t kN = 10000;
  std::vector<double> terms(kN);
  Rng rng(11);
  for (auto& v : terms) v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-8.0, 8.0));
  auto term = [&](idx_t i) { return terms[static_cast<std::size_t>(i)]; };

  const double full = parallel_sum(kN, 4, term);
  double capped = 0;
  with_capped_team([&] { capped = parallel_sum(kN, 4, term); });
  // Partials are per *planned* thread and combined in planned order, so
  // the capped run reproduces the full-team result bit for bit.
  EXPECT_EQ(full, capped);

  // And the reduction is complete: planned-order partials over the
  // 4-chunk split match the same summation done by hand.
  double expect = 0;
  for (idx_t t = 0; t < 4; ++t) {
    const auto [b, e] = static_chunk(kN, t, 4);
    double acc = 0;
    for (idx_t i = b; i < e; ++i) acc += term(i);
    expect += acc;
  }
  EXPECT_EQ(full, expect);
}

// ---------------------------------------------------------------------------
// Kernel shortfall matrix: flux (all strategies), gradients, LSQ
// gradients, Jacobian — capped team vs serial reference.
// ---------------------------------------------------------------------------

struct KernelSetup {
  TetMesh mesh;
  FlowFields fields;
  EdgeArrays edges;

  explicit KernelSetup(unsigned seed)
      : mesh(make_mesh(seed)), fields(mesh), edges(mesh) {
    fields.set_uniform({1.0, 1.0, 0.0, 0.0});
    Rng rng(seed);
    for (auto& v : fields.q) v += rng.uniform(-0.1, 0.1);
    const EdgeLoopPlan plan = build_edge_plan(mesh, EdgeStrategy::kAtomics, 1);
    compute_gradients(mesh, edges, plan, fields);
    fields.sync_soa_from_aos();
  }

  static TetMesh make_mesh(unsigned seed) {
    TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
    shuffle_numbering(m, seed);
    return m;
  }
};

double max_diff(const AVec<double>& a, const AVec<double>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

class KernelShortfallTest : public ::testing::TestWithParam<EdgeStrategy> {};

TEST_P(KernelShortfallTest, FluxResidualMatchesSerialUnderCappedTeam) {
  const EdgeStrategy strategy = GetParam();
  KernelSetup s(21);
  FluxKernelConfig cfg;
  const EdgeLoopPlan serial = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  AVec<double> ref(static_cast<std::size_t>(s.fields.nv) * kNs, 0.0);
  compute_edge_fluxes(Physics{}, s.edges, serial, cfg, s.fields,
                      {ref.data(), ref.size()});

  const EdgeLoopPlan plan = build_edge_plan(s.mesh, strategy, 4);
  reset_team_shortfall_stats();
  AVec<double> r(ref.size(), 0.0);
  with_capped_team([&] {
    compute_edge_fluxes(Physics{}, s.edges, plan, cfg, s.fields,
                        {r.data(), r.size()});
  });
  EXPECT_GE(team_shortfall_events(), 1u);  // the capped run was recorded
  EXPECT_LT(max_diff(ref, r), 1e-10);
}

TEST_P(KernelShortfallTest, GradientsMatchSerialUnderCappedTeam) {
  const EdgeStrategy strategy = GetParam();
  KernelSetup s(22);
  KernelSetup ref(22);
  const EdgeLoopPlan serial = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  compute_gradients(ref.mesh, ref.edges, serial, ref.fields);

  const EdgeLoopPlan plan = build_edge_plan(s.mesh, strategy, 4);
  with_capped_team(
      [&] { compute_gradients(s.mesh, s.edges, plan, s.fields); });
  for (std::size_t i = 0; i < s.fields.grad.size(); ++i)
    ASSERT_NEAR(s.fields.grad[i], ref.fields.grad[i], 1e-11) << "i=" << i;
}

TEST_P(KernelShortfallTest, LsqGradientsMatchSerialUnderCappedTeam) {
  const EdgeStrategy strategy = GetParam();
  KernelSetup s(23);
  KernelSetup ref(23);
  const LsqGradientOperator lsq(s.mesh);
  const EdgeLoopPlan serial = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  lsq.apply(ref.edges, serial, ref.fields);

  const EdgeLoopPlan plan = build_edge_plan(s.mesh, strategy, 4);
  with_capped_team([&] { lsq.apply(s.edges, plan, s.fields); });
  for (std::size_t i = 0; i < s.fields.grad.size(); ++i)
    ASSERT_NEAR(s.fields.grad[i], ref.fields.grad[i], 1e-11) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelShortfallTest,
    ::testing::Values(EdgeStrategy::kAtomics, EdgeStrategy::kReplicationNatural,
                      EdgeStrategy::kReplicationPartitioned,
                      EdgeStrategy::kColoring));

TEST(JacobianShortfall, OwnerRowAssemblyMatchesSerialBitwise) {
  KernelSetup s(24);
  Bcsr4 ref = make_jacobian_matrix(s.mesh);
  const EdgeLoopPlan serial = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  assemble_jacobian(Physics{}, s.edges, serial, s.fields, FluxScheme::kRoe,
                    ref);

  Bcsr4 jac = make_jacobian_matrix(s.mesh);
  const EdgeLoopPlan plan =
      build_edge_plan(s.mesh, EdgeStrategy::kReplicationPartitioned, 4);
  with_capped_team([&] {
    assemble_jacobian(Physics{}, s.edges, plan, s.fields, FluxScheme::kRoe,
                      jac);
  });
  // Per row, the owner shard adds edge contributions in the same ascending
  // edge order as the serial loop: bitwise equality, not just closeness.
  ASSERT_EQ(jac.num_blocks(), ref.num_blocks());
  for (idx_t nz = 0; nz < static_cast<idx_t>(ref.num_blocks()); ++nz) {
    const double* a = ref.block(nz);
    const double* b = jac.block(nz);
    for (int i = 0; i < kBs2; ++i)
      ASSERT_EQ(a[i], b[i]) << "block " << nz << " entry " << i;
  }
}

}  // namespace
}  // namespace fun3d
