#include <gtest/gtest.h>

#include <cmath>

#include "mesh/generate.hpp"
#include "netsim/cluster_sim.hpp"

namespace fun3d {
namespace {

TEST(Network, AllreduceGrowsLogarithmically) {
  const NetworkSpec net = NetworkSpec::fdr_fat_tree();
  const double t2 = net.allreduce_seconds(2, 64);
  const double t4 = net.allreduce_seconds(4, 64);
  const double t256 = net.allreduce_seconds(256, 64);
  EXPECT_GT(t4, t2);
  // log2(256)=8 rounds vs 1 round, plus extra tree stages.
  EXPECT_GT(t256, 6.0 * t2);
  EXPECT_LT(t256, 20.0 * t2);
  EXPECT_EQ(net.allreduce_seconds(1, 64), 0.0);
}

TEST(Network, P2PIsAlphaBetaLinear) {
  const NetworkSpec net = NetworkSpec::fdr_fat_tree();
  const double small = net.p2p_seconds(0);
  const double big = net.p2p_seconds(6'000'000);
  EXPECT_NEAR(small, net.alpha_us * 1e-6, 1e-12);
  EXPECT_NEAR(big - small, 1e-3, 1e-4);  // 6 MB at 6 GB/s = 1 ms
}

class ClusterSimTest : public ::testing::Test {
 protected:
  ClusterSimTest() : mesh(generate_wing_bump(preset_params(MeshPreset::kSmall))) {}

  ClusterConfig config(bool optimized) {
    ClusterConfig cfg;
    cfg.optimized = optimized;
    cfg.ranks_per_node = 4;  // small mesh: keep ranks meaningful
    cfg.iterations_of_ranks = [](int ranks) {
      return 300.0 * (1.0 + 0.05 * std::log2(static_cast<double>(ranks)));
    };
    return cfg;
  }

  TetMesh mesh;
};

TEST_F(ClusterSimTest, CommunicationFractionGrowsWithNodes) {
  const auto pts =
      simulate_strong_scaling(mesh, config(true), {1, 4, 16, 64});
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i].comm_fraction, pts[i - 1].comm_fraction);
  EXPECT_LT(pts[0].comm_fraction, 0.1);
}

TEST_F(ClusterSimTest, AllreduceDominatesCommAtScale) {
  // Paper: >90% of communication overhead is MPI_Allreduce; p2p < 5%.
  const auto pts = simulate_strong_scaling(mesh, config(true), {64});
  const double comm = pts[0].allreduce_seconds + pts[0].p2p_seconds;
  EXPECT_GT(pts[0].allreduce_seconds / comm, 0.8);
}

TEST_F(ClusterSimTest, OptimizedFasterThanBaselineAtAllScales) {
  const auto base =
      simulate_strong_scaling(mesh, config(false), {1, 4, 16, 64});
  const auto opt =
      simulate_strong_scaling(mesh, config(true), {1, 4, 16, 64});
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_LT(opt[i].total_seconds, base[i].total_seconds);
    // The gap narrows as communication dominates (paper: 16-28%).
    if (i > 0) {
      const double gain_prev =
          base[i - 1].total_seconds / opt[i - 1].total_seconds;
      const double gain_now = base[i].total_seconds / opt[i].total_seconds;
      EXPECT_LT(gain_now, gain_prev * 1.1);
    }
  }
}

TEST_F(ClusterSimTest, StrongScalingSpeedsUpThenSaturates) {
  const auto pts =
      simulate_strong_scaling(mesh, config(true), {1, 2, 4, 8, 16});
  EXPECT_LT(pts[1].total_seconds, pts[0].total_seconds);
  EXPECT_LT(pts[2].total_seconds, pts[1].total_seconds);
  // Efficiency decreases monotonically.
  double prev_eff = 2.0;
  for (const auto& p : pts) {
    const double eff =
        pts[0].total_seconds / p.total_seconds / std::max(p.nodes, 1);
    EXPECT_LT(eff, prev_eff + 1e-9);
    prev_eff = eff;
  }
}

TEST_F(ClusterSimTest, HybridReducesRanksAndAllreduceCost) {
  // 2 ranks x 8 threads vs 16 ranks x 1 thread on the same node count.
  ClusterConfig mpi_only = config(true);
  mpi_only.ranks_per_node = 8;
  mpi_only.threads_per_rank = 1;
  ClusterConfig hybrid = config(true);
  hybrid.ranks_per_node = 2;
  hybrid.threads_per_rank = 4;
  const auto m = simulate_strong_scaling(mesh, mpi_only, {16});
  const auto h = simulate_strong_scaling(mesh, hybrid, {16});
  // Fewer ranks => cheaper collectives and fewer iterations...
  EXPECT_LT(h[0].allreduce_seconds, m[0].allreduce_seconds);
  // ...but the Amdahl fraction keeps hybrid compute higher per iteration
  // (the paper's conclusion: MPI-only + opts wins pending threaded PETSc
  // primitives).
  EXPECT_GT(h[0].compute_seconds / h[0].iterations,
            m[0].compute_seconds / m[0].iterations * 0.9);
}

TEST_F(ClusterSimTest, PipelinedKrylovHidesAllreduce) {
  // The paper's future-work direction: overlapping the Allreduce with
  // compute must strictly help, most at communication-bound scales.
  ClusterConfig std_cfg = config(true);
  ClusterConfig pipe_cfg = config(true);
  pipe_cfg.pipelined_krylov = true;
  const auto s = simulate_strong_scaling(mesh, std_cfg, {4, 64});
  const auto p = simulate_strong_scaling(mesh, pipe_cfg, {4, 64});
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_LE(p[i].total_seconds, s[i].total_seconds);
  const double gain_small = s[0].total_seconds / p[0].total_seconds;
  const double gain_big = s[1].total_seconds / p[1].total_seconds;
  EXPECT_GT(gain_big, gain_small);
}

TEST_F(ClusterSimTest, PipelinedExposedAllreduceMatchesOverlapFormula) {
  // Validate the simulator's overlap arithmetic against its own outputs:
  // with steps = 0 every compute second is iteration compute, so
  //   t_iter_compute = compute_seconds / iterations
  //   t_allreduce    = allreduce_seconds / iterations   (non-pipelined)
  // and a pipelined run with overlap fraction f must expose exactly
  //   max(0, t_allreduce - f * t_iter_compute)
  // per iteration. This is the formula the measured gmres.overlap_fraction
  // feeds (bench_ablation_pipelined), so it must hold bit-for-bit in f.
  ClusterConfig base = config(true);
  base.steps = 0;
  const auto s = simulate_strong_scaling(mesh, base, {16})[0];
  const double t_iter_compute = s.compute_seconds / s.iterations;
  const double t_allreduce = s.allreduce_seconds / s.iterations;
  ASSERT_GT(t_iter_compute, 0.0);
  ASSERT_GT(t_allreduce, 0.0);

  double prev = -1.0;
  for (const double f : {1.0, 0.5, 0.25, 0.0}) {
    ClusterConfig pipe = base;
    pipe.pipelined_krylov = true;
    pipe.pipelined_overlap_fraction = f;
    const auto p = simulate_strong_scaling(mesh, pipe, {16})[0];
    const double expected =
        s.iterations * std::max(0.0, t_allreduce - f * t_iter_compute);
    EXPECT_NEAR(p.allreduce_seconds, expected,
                1e-12 * std::max(1.0, expected))
        << "overlap fraction " << f;
    // Less overlap can only expose more of the Allreduce.
    EXPECT_GE(p.allreduce_seconds, prev - 1e-15);
    prev = p.allreduce_seconds;
  }
  // f = 0 means nothing is hidden: identical to the non-pipelined run.
  ClusterConfig none = base;
  none.pipelined_krylov = true;
  none.pipelined_overlap_fraction = 0.0;
  EXPECT_DOUBLE_EQ(simulate_strong_scaling(mesh, none, {16})[0].allreduce_seconds,
                   s.allreduce_seconds);
}

TEST_F(ClusterSimTest, AllreducesPerIterOverrideScalesLinearly) {
  // The measured gmres.reductions_per_column override must scale the
  // Allreduce bill proportionally — this is what makes the simulated
  // classical-vs-pipelined speedup consistent with the measured reduction
  // counts of the two real solver modes.
  ClusterConfig a = config(true);
  a.steps = 0;
  ClusterConfig b = a;
  a.allreduces_per_iter = 5.0;  // ~ measured classical j+2 average
  b.allreduces_per_iter = 1.25;  // ~ measured pipelined constant
  const auto ra = simulate_strong_scaling(mesh, a, {16})[0];
  const auto rb = simulate_strong_scaling(mesh, b, {16})[0];
  EXPECT_NEAR(ra.allreduce_seconds / rb.allreduce_seconds, 5.0 / 1.25,
              1e-9);
  // Compute is untouched by the override.
  EXPECT_DOUBLE_EQ(ra.compute_seconds, rb.compute_seconds);
  // <= 0 keeps the cost-model default (the prior behaviour).
  ClusterConfig d = config(true);
  d.steps = 0;
  d.allreduces_per_iter = 0.0;
  const auto rd = simulate_strong_scaling(mesh, d, {16})[0];
  ClusterConfig d2 = d;
  d2.allreduces_per_iter = 2.0;  // the SolverCosts default, explicitly
  EXPECT_DOUBLE_EQ(simulate_strong_scaling(mesh, d2, {16})[0].allreduce_seconds,
                   rd.allreduce_seconds);
}

TEST_F(ClusterSimTest, HaloOverlapFractionScalesExposedP2P) {
  // The measured comm.overlap_fraction from a HybridSolver run hides that
  // share of every halo round; only (1 - f) of the p2p bill stays exposed.
  ClusterConfig base = config(true);
  base.steps = 0;
  const auto s = simulate_strong_scaling(mesh, base, {16})[0];
  ASSERT_GT(s.p2p_seconds, 0.0);
  for (const double f : {0.0, 0.25, 0.5, 1.0}) {
    ClusterConfig c = base;
    c.halo_overlap_fraction = f;
    const auto p = simulate_strong_scaling(mesh, c, {16})[0];
    EXPECT_NEAR(p.p2p_seconds, (1.0 - f) * s.p2p_seconds,
                1e-12 * std::max(1.0, s.p2p_seconds))
        << "overlap fraction " << f;
    // Compute and collectives are untouched by the halo knob.
    EXPECT_DOUBLE_EQ(p.compute_seconds, s.compute_seconds);
    EXPECT_DOUBLE_EQ(p.allreduce_seconds, s.allreduce_seconds);
  }
  // Out-of-range values clamp instead of producing negative time.
  ClusterConfig wild = base;
  wild.halo_overlap_fraction = 7.0;
  EXPECT_DOUBLE_EQ(simulate_strong_scaling(mesh, wild, {16})[0].p2p_seconds,
                   0.0);
}

TEST_F(ClusterSimTest, HaloExchangesPerIterOverrideScalesLinearly) {
  // The measured comm.exchanges_per_linear_iteration override scales the
  // p2p bill proportionally (additive Schwarz's extra exchange per Krylov
  // iteration shows up here); <= 0 keeps the cost-model default.
  ClusterConfig a = config(true);
  a.steps = 0;
  ClusterConfig b = a;
  a.halo_exchanges_per_iter = 5.0;
  b.halo_exchanges_per_iter = 1.25;
  const auto ra = simulate_strong_scaling(mesh, a, {16})[0];
  const auto rb = simulate_strong_scaling(mesh, b, {16})[0];
  EXPECT_NEAR(ra.p2p_seconds / rb.p2p_seconds, 5.0 / 1.25, 1e-9);
  EXPECT_DOUBLE_EQ(ra.compute_seconds, rb.compute_seconds);
  ClusterConfig d = config(true);
  d.steps = 0;
  d.halo_exchanges_per_iter = 0.0;
  ClusterConfig d2 = d;
  d2.halo_exchanges_per_iter = 2.0;  // the SolverCosts default, explicitly
  EXPECT_DOUBLE_EQ(simulate_strong_scaling(mesh, d2, {16})[0].p2p_seconds,
                   simulate_strong_scaling(mesh, d, {16})[0].p2p_seconds);
}

TEST_F(ClusterSimTest, HaloBytesOfRanksOverridesVolumeModel) {
  // A Decomposition-derived volume table replaces the internal
  // max_ghosts * kNs * 8 estimate, and the p2p time follows the alpha-beta
  // model evaluated at the override.
  ClusterConfig cfg = config(true);
  cfg.steps = 0;
  cfg.halo_bytes_of_ranks = [](int ranks) { return 1000.0 * ranks; };
  const auto p = simulate_strong_scaling(mesh, cfg, {4})[0];
  const int ranks = 4 * cfg.ranks_per_node;
  EXPECT_DOUBLE_EQ(p.halo_bytes_per_rank, 1000.0 * ranks);
  const double t_round = cfg.net.alpha_us * 1e-6 +
                         1000.0 * ranks / (cfg.net.bw_gbs * 1e9);
  EXPECT_NEAR(p.p2p_seconds, p.iterations * 2.0 * t_round,
              1e-12 * std::max(1.0, p.p2p_seconds));
}

TEST(SolverCosts, OptimizedConstantsAreFaster) {
  const MachineSpec node = MachineSpec::stampede_node();
  const SolverCosts base = make_solver_costs(node, 16, 1, false);
  const SolverCosts opt = make_solver_costs(node, 16, 1, true);
  EXPECT_LT(opt.sec_per_edge_iter, base.sec_per_edge_iter);
}

TEST(SolverCosts, HybridThreadingSpeedsEdgeWork) {
  const MachineSpec node = MachineSpec::stampede_node();
  const SolverCosts one = make_solver_costs(node, 2, 1, true);
  const SolverCosts eight = make_solver_costs(node, 2, 8, true);
  EXPECT_LT(eight.sec_per_edge_iter, one.sec_per_edge_iter / 4);
  // Vertex work improves sublinearly (Amdahl).
  EXPECT_GT(eight.sec_per_vertex_iter, one.sec_per_vertex_iter / 8);
}

}  // namespace
}  // namespace fun3d
