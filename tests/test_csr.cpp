#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

using EdgeList = std::vector<std::pair<idx_t, idx_t>>;

CsrGraph path_graph(idx_t n) {
  EdgeList es;
  for (idx_t i = 0; i + 1 < n; ++i) es.emplace_back(i, i + 1);
  return build_csr_from_edges(n, es);
}

CsrGraph random_graph(idx_t n, std::size_t m, unsigned seed) {
  Rng rng(seed);
  EdgeList es;
  for (std::size_t k = 0; k < m; ++k) {
    const idx_t a = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const idx_t b = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    es.emplace_back(a, b);
  }
  return build_csr_from_edges(n, es);
}

TEST(Csr, BuildFromEdgesBasic) {
  const EdgeList es{{0, 1}, {1, 2}, {0, 2}};
  const CsrGraph g = build_csr_from_edges(3, es);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_TRUE(is_valid_symmetric(g));
}

TEST(Csr, DuplicatesAndSelfLoopsRemoved) {
  const EdgeList es{{0, 1}, {1, 0}, {0, 1}, {2, 2}};
  const CsrGraph g = build_csr_from_edges(3, es);
  EXPECT_EQ(g.num_arcs(), 2u);  // just 0<->1
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_TRUE(is_valid_symmetric(g));
}

TEST(Csr, RandomGraphsAreValid) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const CsrGraph g = random_graph(100, 400, seed);
    EXPECT_TRUE(is_valid_symmetric(g));
  }
}

TEST(Csr, BandwidthOfPath) {
  const CsrGraph g = path_graph(10);
  const auto info = bandwidth_info(g);
  EXPECT_EQ(info.bandwidth, 1);
  EXPECT_EQ(info.profile, 9u);  // each vertex except 0 reaches back one
}

TEST(Csr, PermuteGraphPreservesStructure) {
  const CsrGraph g = random_graph(50, 150, 7);
  std::vector<idx_t> perm(50);
  for (idx_t i = 0; i < 50; ++i) perm[static_cast<std::size_t>(i)] = 49 - i;
  const CsrGraph pg = permute_graph(g, perm);
  EXPECT_TRUE(is_valid_symmetric(pg));
  EXPECT_EQ(pg.num_arcs(), g.num_arcs());
  // Degree multiset preserved.
  std::vector<idx_t> d0, d1;
  for (idx_t v = 0; v < 50; ++v) {
    d0.push_back(g.degree(v));
    d1.push_back(pg.degree(perm[static_cast<std::size_t>(v)]));
  }
  EXPECT_EQ(d0, d1);
}

TEST(Csr, PermuteIdentityIsNoop) {
  const CsrGraph g = random_graph(30, 80, 9);
  std::vector<idx_t> id(30);
  for (idx_t i = 0; i < 30; ++i) id[static_cast<std::size_t>(i)] = i;
  const CsrGraph pg = permute_graph(g, id);
  EXPECT_EQ(pg.rowptr, g.rowptr);
  EXPECT_EQ(pg.col, g.col);
}

TEST(Csr, ConnectedComponents) {
  EdgeList es{{0, 1}, {1, 2}, {3, 4}};
  const CsrGraph g = build_csr_from_edges(6, es);
  EXPECT_EQ(connected_components(g), 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(connected_components(path_graph(10)), 1);
}

TEST(Csr, InvertPermutationRoundTrip) {
  const std::vector<idx_t> perm{2, 0, 3, 1};
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<idx_t>{1, 3, 0, 2}));
  for (std::size_t i = 0; i < perm.size(); ++i)
    EXPECT_EQ(perm[static_cast<std::size_t>(inv[i])], static_cast<idx_t>(i));
}

TEST(Csr, IsPermutationDetectsBadInputs) {
  EXPECT_TRUE(is_permutation(std::vector<idx_t>{1, 0, 2}));
  EXPECT_FALSE(is_permutation(std::vector<idx_t>{0, 0, 2}));
  EXPECT_FALSE(is_permutation(std::vector<idx_t>{0, 3, 1}));
  EXPECT_FALSE(is_permutation(std::vector<idx_t>{0, -1, 1}));
}

TEST(Csr, EmptyGraph) {
  const CsrGraph g = build_csr_from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_TRUE(is_valid_symmetric(g));
}

}  // namespace
}  // namespace fun3d
