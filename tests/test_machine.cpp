#include <gtest/gtest.h>

#include "machine/cache_sim.hpp"
#include "machine/machine_model.hpp"

namespace fun3d {
namespace {

TEST(MachineSpec, PaperPlatformNumbers) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  EXPECT_EQ(m.cores, 10);
  EXPECT_NEAR(m.peak_gflops(), 240.0, 1.0);  // paper: 240 Gflop/s
  EXPECT_NEAR(m.stream_bw_gbs, 34.8, 0.1);
  EXPECT_NEAR(m.peak_bw_gbs, 42.2, 0.1);
}

TEST(MachineSpec, BandwidthSaturatesAtFourCores) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  EXPECT_LT(m.effective_bw_gbs(1), m.effective_bw_gbs(2));
  EXPECT_LT(m.effective_bw_gbs(2), m.effective_bw_gbs(4));
  EXPECT_NEAR(m.effective_bw_gbs(4), m.stream_bw_gbs, 1e-9);
  EXPECT_NEAR(m.effective_bw_gbs(10), m.stream_bw_gbs, 1e-9);
}

TEST(MachineSpec, BarrierCostGrowsWithThreads) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  EXPECT_EQ(m.barrier_seconds(1), 0.0);
  EXPECT_LT(m.barrier_seconds(2), m.barrier_seconds(16));
}

TEST(ModelPhase, ComputeBoundScalesLinearly) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  ThreadWork w;
  w.simd_flops = 1e9;
  w.dram_bytes = 1e3;  // negligible
  const PhaseTime serial = model_serial(m, w);
  std::vector<ThreadWork> split(10);
  for (auto& t : split) {
    t.simd_flops = 1e8;
    t.dram_bytes = 1e2;
  }
  const PhaseTime par = model_phase(m, split);
  EXPECT_FALSE(serial.bandwidth_bound);
  EXPECT_NEAR(serial.seconds / par.seconds, 10.0, 0.5);
}

TEST(ModelPhase, BandwidthBoundSaturates) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  ThreadWork w;
  w.scalar_flops = 1;
  w.dram_bytes = 1e9;
  const PhaseTime serial = model_serial(m, w);
  std::vector<ThreadWork> split(10);
  for (auto& t : split) t.dram_bytes = 1e8;
  const PhaseTime par = model_phase(m, split);
  EXPECT_TRUE(par.bandwidth_bound);
  // Speedup limited to stream/bw_1core = 4, not 10.
  EXPECT_NEAR(serial.seconds / par.seconds, 4.0, 0.3);
  EXPECT_NEAR(par.achieved_bw_gbs, m.stream_bw_gbs, 1.0);
}

TEST(ModelPhase, ImbalanceDominates) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  std::vector<ThreadWork> split(4);
  split[0].simd_flops = 4e8;  // one hot thread
  const PhaseTime par = model_phase(m, split);
  ThreadWork hot;
  hot.simd_flops = 4e8;
  EXPECT_NEAR(par.seconds, model_serial(m, hot).seconds, 1e-9);
}

TEST(ModelPhase, AtomicsAddCost) {
  const MachineSpec m = MachineSpec::xeon_e5_2690v2();
  std::vector<ThreadWork> a(4), b(4);
  for (auto& t : a) t.simd_flops = 1e8;
  for (auto& t : b) {
    t.simd_flops = 1e8;
    t.contended_atomics = 1e7;
  }
  EXPECT_GT(model_phase(m, b).seconds, model_phase(m, a).seconds * 1.5);
}

TEST(CacheSim, SequentialStreamMissesOncePerLine) {
  CacheSim sim({{32 * 1024, 8, 64}});
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 8)
    sim.access(addr, 8);
  // 64KB / 64B lines = 1024 misses; 8192 accesses total.
  EXPECT_EQ(sim.level(0).misses(), 1024u);
  EXPECT_NEAR(sim.hit_rate(0), 7.0 / 8.0, 1e-6);
}

TEST(CacheSim, WorkingSetThatFitsHitsOnSecondPass) {
  CacheSim sim({{32 * 1024, 8, 64}});
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64)
      sim.access(addr, 8);
  EXPECT_EQ(sim.level(0).misses(), 256u);  // only the first pass misses
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashes) {
  CacheSim sim({{4 * 1024, 2, 64}});
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64)
      sim.access(addr, 8);
  // LRU + working set 16x the cache: every access misses.
  EXPECT_EQ(sim.level(0).misses(), 2048u);
}

TEST(CacheSim, SecondLevelCatchesL1Misses) {
  CacheSim sim({{4 * 1024, 8, 64}, {64 * 1024, 8, 64}});
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t addr = 0; addr < 32 * 1024; addr += 64)
      sim.access(addr, 8);
  // Fits L2 but not L1: second pass hits in L2, DRAM traffic = 1 pass.
  EXPECT_EQ(sim.dram_bytes(), 32u * 1024u);
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines) {
  CacheSim sim({{4 * 1024, 8, 64}});
  sim.access(60, 8);  // crosses the 64-byte boundary
  EXPECT_EQ(sim.level(0).misses(), 2u);
}

TEST(CacheSim, ResetClearsState) {
  CacheSim sim({{4 * 1024, 8, 64}});
  sim.access(0, 8);
  sim.reset();
  EXPECT_EQ(sim.level(0).misses(), 0u);
  sim.access(0, 8);
  EXPECT_EQ(sim.level(0).misses(), 1u);
}

TEST(CacheSim, RejectsEmptyHierarchy) {
  EXPECT_THROW(CacheSim({}), std::invalid_argument);
}

}  // namespace
}  // namespace fun3d
