#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>

#include "core/gradients.hpp"
#include "core/gradients_lsq.hpp"
#include "core/solver.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/team.hpp"

namespace fun3d {
namespace {

void set_affine(const TetMesh& m, FlowFields& f, const double (*g)[3],
                const double* a) {
  for (idx_t v = 0; v < f.nv; ++v) {
    const std::size_t vs = static_cast<std::size_t>(v);
    for (int s = 0; s < kNs; ++s)
      f.q[vs * kNs + static_cast<std::size_t>(s)] =
          a[s] + g[s][0] * m.x[vs] + g[s][1] * m.y[vs] + g[s][2] * m.z[vs];
  }
}

TEST(LsqGradients, ExactForAffineFieldsEverywhere) {
  // Unlike midpoint Green-Gauss, the least-squares fit reproduces affine
  // fields exactly at interior AND boundary vertices.
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, 4);
  FlowFields f(m);
  const double g[kNs][3] = {
      {1.0, 2.0, -1.0}, {0.5, 0.0, 3.0}, {-2.0, 1.0, 0.0}, {0.0, -1.5, 2.5}};
  const double a[kNs] = {1, -2, 3, 0};
  set_affine(m, f, g, a);
  EdgeArrays e(m);
  const LsqGradientOperator lsq(m);
  const EdgeLoopPlan plan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  lsq.apply(e, plan, f);
  for (idx_t v = 0; v < f.nv; ++v)
    for (int s = 0; s < kNs; ++s)
      for (int d = 0; d < 3; ++d)
        EXPECT_NEAR(f.grad[static_cast<std::size_t>(v) * kGradStride +
                           static_cast<std::size_t>(s * 3 + d)],
                    g[s][d], 1e-9)
            << "v=" << v << " s=" << s << " d=" << d;
}

TEST(LsqGradients, ZeroForConstantField) {
  TetMesh m = generate_box(3, 3, 3);
  FlowFields f(m);
  f.set_uniform({2.0, -1.0, 0.5, 3.0});
  EdgeArrays e(m);
  const LsqGradientOperator lsq(m);
  const EdgeLoopPlan plan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  lsq.apply(e, plan, f);
  for (double gv : f.grad) EXPECT_NEAR(gv, 0.0, 1e-11);
}

class LsqStrategyTest
    : public ::testing::TestWithParam<std::tuple<EdgeStrategy, idx_t>> {};

TEST_P(LsqStrategyTest, AllStrategiesMatchSerial) {
  const auto [strategy, nthreads] = GetParam();
  TetMesh m = generate_box(4, 3, 3);
  shuffle_numbering(m, 5);
  FlowFields f(m), fref(m);
  const double g[kNs][3] = {{1, 0, 2}, {0, 1, 0}, {3, 0, 1}, {1, 1, 1}};
  const double a[kNs] = {0, 1, 2, 3};
  set_affine(m, f, g, a);
  set_affine(m, fref, g, a);
  EdgeArrays e(m);
  const LsqGradientOperator lsq(m);
  lsq.apply(e, build_edge_plan(m, EdgeStrategy::kAtomics, 1), fref);
  lsq.apply(e, build_edge_plan(m, strategy, nthreads), f);
  for (std::size_t i = 0; i < f.grad.size(); ++i)
    EXPECT_NEAR(f.grad[i], fref.grad[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LsqStrategyTest,
    ::testing::Combine(
        ::testing::Values(EdgeStrategy::kAtomics,
                          EdgeStrategy::kReplicationNatural,
                          EdgeStrategy::kReplicationPartitioned,
                          EdgeStrategy::kColoring),
        ::testing::Values(2, 4)));

// Regression (ROADMAP "edge-loop thread shortfall"): the LSQ accumulation
// loops must stay correct when the runtime grants fewer threads than the
// plan was built for (nested-region recipe; matrix in test_team.cpp).
TEST_P(LsqStrategyTest, CappedTeamStillAccumulatesEveryEdge) {
  const auto [strategy, nthreads] = GetParam();
  TetMesh m = generate_box(4, 3, 3);
  shuffle_numbering(m, 5);
  FlowFields f(m), fref(m);
  const double g[kNs][3] = {{1, 0, 2}, {0, 1, 0}, {3, 0, 1}, {1, 1, 1}};
  const double a[kNs] = {0, 1, 2, 3};
  set_affine(m, f, g, a);
  set_affine(m, fref, g, a);
  EdgeArrays e(m);
  const LsqGradientOperator lsq(m);
  lsq.apply(e, build_edge_plan(m, EdgeStrategy::kAtomics, 1), fref);
  const EdgeLoopPlan plan = build_edge_plan(m, strategy, nthreads);
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);  // inner parallel regions get 1 thread
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    lsq.apply(e, plan, f);
  }
  omp_set_max_active_levels(saved);
  for (std::size_t i = 0; i < f.grad.size(); ++i)
    ASSERT_NEAR(f.grad[i], fref.grad[i], 1e-11) << "i=" << i;
}

// The per-vertex (A^T A)^{-1} solve loop rides parallel_ranges: a capped
// team must be counted as a shortfall and produce bitwise-identical
// gradients (replication edge loop + elementwise vertex solve).
TEST(LsqShortfall, CappedTeamBitwiseIdenticalAndCounted) {
  TetMesh m = generate_box(4, 3, 3);
  shuffle_numbering(m, 5);
  FlowFields f(m), fref(m);
  const double g[kNs][3] = {{1, 0, 2}, {0, 1, 0}, {3, 0, 1}, {1, 1, 1}};
  const double a[kNs] = {0, 1, 2, 3};
  set_affine(m, f, g, a);
  set_affine(m, fref, g, a);
  EdgeArrays e(m);
  const LsqGradientOperator lsq(m);
  const EdgeLoopPlan plan =
      build_edge_plan(m, EdgeStrategy::kReplicationNatural, 4);
  lsq.apply(e, plan, fref);

  reset_team_shortfall_stats();
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    lsq.apply(e, plan, f);
  }
  omp_set_max_active_levels(saved);

  EXPECT_GT(team_shortfall_events(), 0u);
  EXPECT_EQ(team_last_planned(), 4);
  EXPECT_EQ(team_last_delivered(), 1);
  for (std::size_t i = 0; i < f.grad.size(); ++i)
    ASSERT_EQ(f.grad[i], fref.grad[i]) << "i=" << i;
  reset_team_shortfall_stats();
}

TEST(LsqGradients, SolverConvergesWithLsqReconstruction) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, 6);
  rcm_reorder(m);
  SolverConfig cfg = SolverConfig::baseline();
  cfg.gradient_method = GradientMethod::kLeastSquares;
  cfg.ptc.max_steps = 30;
  cfg.ptc.rtol = 1e-8;
  FlowSolver solver(std::move(m), cfg);
  const SolveStats st = solver.solve();
  EXPECT_TRUE(st.converged);
}

TEST(LsqGradients, GreenGaussAndLsqAgreeInSmoothInterior) {
  // For a smooth (quadratic) field the two gradients differ by O(h) — on a
  // fine mesh they should be close at interior vertices.
  TetMesh m = generate_box(8, 8, 8);
  FlowFields fgg(m), flsq(m);
  for (idx_t v = 0; v < m.num_vertices; ++v) {
    const std::size_t vs = static_cast<std::size_t>(v);
    const double q = m.x[vs] * m.x[vs] + 0.5 * m.y[vs] * m.z[vs];
    for (int s = 0; s < kNs; ++s) {
      fgg.q[vs * kNs + static_cast<std::size_t>(s)] = q;
      flsq.q[vs * kNs + static_cast<std::size_t>(s)] = q;
    }
  }
  EdgeArrays e(m);
  const EdgeLoopPlan plan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, plan, fgg);
  const LsqGradientOperator lsq(m);
  lsq.apply(e, plan, flsq);
  std::vector<char> boundary(static_cast<std::size_t>(m.num_vertices), 0);
  for (const auto& bf : m.bfaces)
    for (idx_t v : bf.v) boundary[static_cast<std::size_t>(v)] = 1;
  for (idx_t v = 0; v < m.num_vertices; ++v) {
    if (boundary[static_cast<std::size_t>(v)]) continue;
    for (int i = 0; i < kGradStride; ++i)
      EXPECT_NEAR(fgg.grad[static_cast<std::size_t>(v) * kGradStride +
                           static_cast<std::size_t>(i)],
                  flsq.grad[static_cast<std::size_t>(v) * kGradStride +
                            static_cast<std::size_t>(i)],
                  0.3);
  }
}

}  // namespace
}  // namespace fun3d
