#include <gtest/gtest.h>

#include "mesh/generate.hpp"
#include "sparse/ilu.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

Bcsr4 random_spd_like(const CsrGraph& adj, unsigned seed) {
  // Diagonally dominant random blocks: safe to factor.
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (idx_t r = 0; r < m.num_rows(); ++r) {
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      double* b = m.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (m.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += 8.0;
    }
  }
  return m;
}

TEST(SymbolicIlu, Ilu0PatternEqualsMatrixPattern) {
  const CsrGraph adj = generate_box(3, 3, 3).vertex_graph();
  const Bcsr4 m = Bcsr4::from_adjacency(adj);
  const IluPattern p = symbolic_ilu(m.structure(), 0);
  EXPECT_EQ(p.nnz(), m.num_blocks());
  for (int lv : p.level) EXPECT_EQ(lv, 0);
}

TEST(SymbolicIlu, FillGrowsMonotonically) {
  const Bcsr4 m =
      Bcsr4::from_adjacency(generate_box(3, 3, 3).vertex_graph());
  const IluPattern p0 = symbolic_ilu(m.structure(), 0);
  const IluPattern p1 = symbolic_ilu(m.structure(), 1);
  const IluPattern p2 = symbolic_ilu(m.structure(), 2);
  EXPECT_LT(p0.nnz(), p1.nnz());
  EXPECT_LT(p1.nnz(), p2.nnz());
}

TEST(SymbolicIlu, Ilu1FillOnChainMatrix) {
  // Tridiagonal pattern has NO fill at any level (perfect elimination).
  std::vector<std::pair<idx_t, idx_t>> es;
  for (idx_t i = 0; i + 1 < 10; ++i) es.emplace_back(i, i + 1);
  const Bcsr4 m = Bcsr4::from_adjacency(build_csr_from_edges(10, es));
  const IluPattern p3 = symbolic_ilu(m.structure(), 3);
  EXPECT_EQ(p3.nnz(), m.num_blocks());
}

TEST(SymbolicIlu, ArrowheadFillsIn) {
  // Arrowhead: vertex 0 connected to all; eliminating 0 makes the rest
  // pairwise coupled at level 1.
  std::vector<std::pair<idx_t, idx_t>> es;
  for (idx_t i = 1; i < 5; ++i) es.emplace_back(0, i);
  const Bcsr4 m = Bcsr4::from_adjacency(build_csr_from_edges(5, es));
  const IluPattern p1 = symbolic_ilu(m.structure(), 1);
  // 4x3 new couplings among {1..4}.
  EXPECT_EQ(p1.nnz(), m.num_blocks() + 12);
  int max_level = 0;
  for (int lv : p1.level) max_level = std::max(max_level, lv);
  EXPECT_EQ(max_level, 1);
}

void dense_b(const Bcsr4& a, const std::vector<double>& x,
             std::vector<double>& b) {
  b.assign(x.size(), 0.0);
  spmv_serial(a, x, b);
}

TEST(NumericIlu, FullFillEqualsExactLU) {
  // With a complete pattern the "incomplete" LU is exact: L U x = b solves
  // A x = b to roundoff.
  std::vector<std::pair<idx_t, idx_t>> es;
  for (idx_t i = 0; i < 8; ++i)
    for (idx_t j = i + 1; j < 8; ++j) es.emplace_back(i, j);
  const CsrGraph adj = build_csr_from_edges(8, es);
  const Bcsr4 a = random_spd_like(adj, 3);
  const IluPattern p = symbolic_ilu(a.structure(), 0);  // already dense
  const IluFactor f = factorize_ilu(a, p);

  const std::size_t n = 8 * kBs;
  Rng rng(4);
  std::vector<double> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  dense_b(a, xref, b);
  trsv_serial(f, b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST(NumericIlu, CompressedAndFullBuffersIdentical) {
  const Bcsr4 a =
      random_spd_like(generate_box(3, 3, 3).vertex_graph(), 5);
  const IluPattern p = symbolic_ilu(a.structure(), 1);
  const IluFactor f1 = factorize_ilu(a, p, /*compressed=*/true, false);
  const IluFactor f2 = factorize_ilu(a, p, /*compressed=*/false, false);
  ASSERT_EQ(f1.num_blocks(), f2.num_blocks());
  for (std::size_t nz = 0; nz < f1.num_blocks(); ++nz)
    for (int i = 0; i < kBs2; ++i)
      EXPECT_DOUBLE_EQ(f1.block(static_cast<idx_t>(nz))[i],
                       f2.block(static_cast<idx_t>(nz))[i]);
}

TEST(NumericIlu, SimdAndScalarGemmIdentical) {
  const Bcsr4 a =
      random_spd_like(generate_box(3, 3, 2).vertex_graph(), 6);
  const IluPattern p = symbolic_ilu(a.structure(), 1);
  const IluFactor f1 = factorize_ilu(a, p, true, /*simd=*/true);
  const IluFactor f2 = factorize_ilu(a, p, true, /*simd=*/false);
  for (std::size_t nz = 0; nz < f1.num_blocks(); ++nz)
    for (int i = 0; i < kBs2; ++i)
      EXPECT_NEAR(f1.block(static_cast<idx_t>(nz))[i],
                  f2.block(static_cast<idx_t>(nz))[i], 1e-12);
}

TEST(NumericIlu, Ilu0PreconditionerReducesResidual) {
  // M^{-1} should be a contraction-quality approximation: ||I - M^{-1}A||
  // applied to a random vector shrinks it substantially.
  const Bcsr4 a =
      random_spd_like(generate_box(4, 3, 3).vertex_graph(), 7);
  const IluPattern p = symbolic_ilu(a.structure(), 0);
  const IluFactor f = factorize_ilu(a, p);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  Rng rng(8);
  std::vector<double> x(n), ax(n), minv_ax(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_serial(a, x, ax);
  trsv_serial(f, ax, minv_ax);
  double err = 0, norm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    err += (minv_ax[i] - x[i]) * (minv_ax[i] - x[i]);
    norm += x[i] * x[i];
  }
  EXPECT_LT(std::sqrt(err / norm), 0.2);
}

TEST(NumericIlu, DependencyGraphsAreConsistent) {
  const Bcsr4 a =
      random_spd_like(generate_box(3, 3, 3).vertex_graph(), 9);
  const IluPattern p = symbolic_ilu(a.structure(), 1);
  const IluFactor f = factorize_ilu(a, p);
  const CsrGraph lo = f.lower_deps();
  const CsrGraph up = f.upper_deps_mirrored();
  const idx_t n = f.num_rows();
  // Strictly lower triangular in their index spaces.
  for (idx_t i = 0; i < n; ++i) {
    for (idx_t j : lo.neighbors(i)) EXPECT_LT(j, i);
    for (idx_t j : up.neighbors(i)) EXPECT_LT(j, i);
  }
  // Same total count: every off-diagonal block appears in exactly one DAG.
  EXPECT_EQ(lo.num_arcs() + up.num_arcs(),
            f.num_blocks() - static_cast<std::size_t>(n));
}

TEST(NumericIlu, FactorFlopsPositiveAndGrowWithFill) {
  const Bcsr4 a =
      random_spd_like(generate_box(3, 3, 3).vertex_graph(), 10);
  const IluFactor f0 = factorize_ilu(a, symbolic_ilu(a.structure(), 0));
  const IluFactor f1 = factorize_ilu(a, symbolic_ilu(a.structure(), 1));
  EXPECT_GT(f0.factor_flops(), 0u);
  EXPECT_GT(f1.factor_flops(), f0.factor_flops());
  EXPECT_GT(f1.solve_flops(), f0.solve_flops());
  EXPECT_GT(f1.solve_stream_bytes(), f0.solve_stream_bytes());
}

TEST(NumericIlu, HigherFillGivesBetterPreconditioner) {
  // ||x - M^{-1} A x|| shrinks as the fill level grows (Table II's quality
  // side of the parallelism/quality tradeoff).
  const Bcsr4 a =
      random_spd_like(generate_box(4, 4, 3).vertex_graph(), 21);
  const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
  Rng rng(22);
  std::vector<double> x(n), ax(n), minv(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_serial(a, x, ax);
  double prev = 1e300;
  for (int fill = 0; fill <= 2; ++fill) {
    const IluFactor f = factorize_ilu(a, symbolic_ilu(a.structure(), fill));
    trsv_serial(f, ax, minv);
    double err = 0;
    for (std::size_t i = 0; i < n; ++i)
      err += (minv[i] - x[i]) * (minv[i] - x[i]);
    err = std::sqrt(err);
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(NumericIlu, SingularDiagonalThrows) {
  const CsrGraph adj = build_csr_from_edges(
      2, std::vector<std::pair<idx_t, idx_t>>{{0, 1}});
  Bcsr4 a = Bcsr4::from_adjacency(adj);  // all-zero blocks
  const IluPattern p = symbolic_ilu(a.structure(), 0);
  EXPECT_THROW(factorize_ilu(a, p), std::runtime_error);
}

}  // namespace
}  // namespace fun3d
