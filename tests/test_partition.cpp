#include <gtest/gtest.h>

#include "graph/partition.hpp"
#include "mesh/generate.hpp"

namespace fun3d {
namespace {

TEST(PartitionNatural, ContiguousAndBalanced) {
  const Partition p = partition_natural(10, 3);
  EXPECT_EQ(p.part, (std::vector<idx_t>{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}));
  const auto w = part_weights(p);
  EXPECT_EQ(w, (std::vector<std::uint64_t>{4, 3, 3}));
}

TEST(PartitionNatural, OnePartCoversAll) {
  const Partition p = partition_natural(5, 1);
  for (idx_t q : p.part) EXPECT_EQ(q, 0);
}

class GraphPartitionTest : public ::testing::TestWithParam<idx_t> {};

TEST_P(GraphPartitionTest, BalancedAndLowCutOnMesh) {
  const idx_t nparts = GetParam();
  TetMesh m = generate_box(10, 8, 8);
  const CsrGraph g = m.vertex_graph();
  const Partition p = partition_graph(g, nparts);

  // All vertices assigned to valid parts.
  for (idx_t q : p.part) {
    EXPECT_GE(q, 0);
    EXPECT_LT(q, nparts);
  }
  // Balance within tolerance (allow slack for refinement granularity).
  EXPECT_LT(partition_imbalance(p), 1.25);
  // Cut must beat the natural-order split on a spatially shuffled problem —
  // here natural order is already good, so just check cut << total edges.
  const std::uint64_t cut = edge_cut(g, p);
  EXPECT_LT(cut, g.num_arcs() / 2 / 2);  // < half of all undirected edges
}

INSTANTIATE_TEST_SUITE_P(Parts, GraphPartitionTest,
                         ::testing::Values(2, 4, 8, 16));

TEST(GraphPartition, BeatsNaturalOrderAfterShuffle) {
  // Shuffled numbering destroys the locality of natural-order splits; the
  // graph partitioner must recover a far smaller cut (the paper's METIS
  // vs natural-order comparison).
  TetMesh m = generate_box(10, 10, 8);
  const CsrGraph g = m.vertex_graph();
  const idx_t n = g.num_vertices();
  Partition strided;  // worst-case "natural" split: round-robin striping
  strided.nparts = 8;
  strided.part.resize(static_cast<std::size_t>(n));
  for (idx_t v = 0; v < n; ++v) strided.part[static_cast<std::size_t>(v)] = v % 8;
  const Partition good = partition_graph(g, 8);
  EXPECT_LT(edge_cut(g, good), edge_cut(g, strided) / 4);
}

TEST(GraphPartition, RespectsVertexWeights) {
  const CsrGraph g = generate_box(8, 8, 8).vertex_graph();
  const idx_t n = g.num_vertices();
  // Vertex v has weight 1 + (v < n/4 ? 3 : 0): the first quarter is heavy.
  std::vector<idx_t> w(static_cast<std::size_t>(n), 1);
  for (idx_t v = 0; v < n / 4; ++v) w[static_cast<std::size_t>(v)] = 4;
  const Partition p = partition_graph(g, 4, w);
  EXPECT_LT(partition_imbalance(p, w), 1.3);
}

TEST(GraphPartition, DeterministicForFixedSeed) {
  const CsrGraph g = generate_box(6, 6, 6).vertex_graph();
  const Partition a = partition_graph(g, 4);
  const Partition b = partition_graph(g, 4);
  EXPECT_EQ(a.part, b.part);
}

TEST(GraphPartition, SinglePart) {
  const CsrGraph g = generate_box(4, 4, 4).vertex_graph();
  const Partition p = partition_graph(g, 1);
  EXPECT_EQ(edge_cut(g, p), 0u);
}

TEST(EdgeCut, CountsCrossingEdges) {
  const CsrGraph g = build_csr_from_edges(
      4, std::vector<std::pair<idx_t, idx_t>>{{0, 1}, {1, 2}, {2, 3}});
  Partition p;
  p.nparts = 2;
  p.part = {0, 0, 1, 1};
  EXPECT_EQ(edge_cut(g, p), 1u);
}

}  // namespace
}  // namespace fun3d
