#include <gtest/gtest.h>

#include <cmath>

#include "simd/vecd.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

TEST(Vec4d, LoadStoreRoundTrip) {
  alignas(32) double in[4] = {1.5, -2.0, 3.25, 0.0};
  double out[4] = {};
  Vec4d::load(in).store(out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Vec4d, BroadcastAndLane) {
  const Vec4d v(7.5);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v.lane(i), 7.5);
}

TEST(Vec4d, ArithmeticMatchesScalar) {
  Rng rng(1);
  for (int rep = 0; rep < 50; ++rep) {
    double a[4], b[4], c[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = rng.uniform(-10, 10);
      b[i] = rng.uniform(-10, 10);
      c[i] = rng.uniform(-10, 10);
    }
    const Vec4d va = Vec4d::load(a), vb = Vec4d::load(b), vc = Vec4d::load(c);
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ((va + vb).lane(i), a[i] + b[i]);
      EXPECT_DOUBLE_EQ((va - vb).lane(i), a[i] - b[i]);
      EXPECT_DOUBLE_EQ((va * vb).lane(i), a[i] * b[i]);
      EXPECT_DOUBLE_EQ((va / vb).lane(i), a[i] / b[i]);
      EXPECT_DOUBLE_EQ(Vec4d::max(va, vb).lane(i), std::max(a[i], b[i]));
      EXPECT_DOUBLE_EQ(Vec4d::min(va, vb).lane(i), std::min(a[i], b[i]));
      EXPECT_DOUBLE_EQ(Vec4d::abs(va).lane(i), std::fabs(a[i]));
      // FMA may contract; allow 1 ulp-ish slack.
      EXPECT_NEAR(Vec4d::fma(va, vb, vc).lane(i), a[i] * b[i] + c[i],
                  1e-12 * (1 + std::fabs(a[i] * b[i] + c[i])));
    }
  }
}

TEST(Vec4d, SqrtMatchesScalar) {
  const double a[4] = {0.0, 1.0, 2.0, 100.0};
  const Vec4d s = Vec4d::sqrt(Vec4d::load(a));
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(s.lane(i), std::sqrt(a[i]));
}

TEST(Vec4d, GatherPicksIndexedElements) {
  AVec<double> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 10.0 * static_cast<double>(i);
  alignas(16) idx_t idx[4] = {3, 0, 99, 42};
  const Vec4d g = Vec4d::gather(data.data(), idx);
  EXPECT_EQ(g.lane(0), 30.0);
  EXPECT_EQ(g.lane(1), 0.0);
  EXPECT_EQ(g.lane(2), 990.0);
  EXPECT_EQ(g.lane(3), 420.0);
}

TEST(Vec4d, DefaultIsZero) {
  const Vec4d z;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(z.lane(i), 0.0);
}

TEST(Prefetch, IsSafeOnArbitraryAddresses) {
  double x = 1.0;
  prefetch_l1(&x);
  prefetch_l2(&x);
  prefetch_l1(nullptr);  // prefetch never faults
  SUCCEED();
}

}  // namespace
}  // namespace fun3d
