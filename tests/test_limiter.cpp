#include <gtest/gtest.h>

#include <cmath>

#include "core/gradients.hpp"
#include "core/limiter.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

struct LimSetup {
  TetMesh mesh = generate_box(5, 4, 4);
  FlowFields fields{mesh};
  EdgeArrays edges{mesh};
  EdgeLoopPlan plan = build_edge_plan(mesh, EdgeStrategy::kAtomics, 1);

  void grads() { compute_gradients(mesh, edges, plan, fields); }
  AVec<double> limit(double k = 5.0) {
    AVec<double> phi(static_cast<std::size_t>(fields.nv) * kNs, 0.0);
    compute_venkat_limiter(mesh, edges, plan, fields, {k},
                           {phi.data(), phi.size()});
    return phi;
  }
};

TEST(Limiter, PhiInUnitInterval) {
  LimSetup s;
  Rng rng(1);
  for (auto& q : s.fields.q) q = rng.uniform(-1, 1);  // rough field
  s.grads();
  const AVec<double> phi = s.limit();
  for (double p : phi) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Limiter, NearOneForSmoothField) {
  LimSetup s;
  for (idx_t v = 0; v < s.fields.nv; ++v) {
    const std::size_t vs = static_cast<std::size_t>(v);
    for (int st = 0; st < kNs; ++st)
      s.fields.q[vs * kNs + static_cast<std::size_t>(st)] =
          1.0 + 0.3 * s.mesh.x[vs] + 0.2 * s.mesh.y[vs];
  }
  s.grads();
  const AVec<double> phi = s.limit();
  double min_phi = 1.0;
  for (double p : phi) min_phi = std::min(min_phi, p);
  EXPECT_GT(min_phi, 0.6);  // smooth linear field: little limiting
}

TEST(Limiter, SuppressesOvershootAtDiscontinuity) {
  LimSetup s;
  // Step in x: q = 0 for x < 0.5, 1 beyond — the classic overshoot case.
  for (idx_t v = 0; v < s.fields.nv; ++v) {
    const std::size_t vs = static_cast<std::size_t>(v);
    const double q = s.mesh.x[vs] < 0.5 ? 0.0 : 1.0;
    for (int st = 0; st < kNs; ++st)
      s.fields.q[vs * kNs + static_cast<std::size_t>(st)] = q;
  }
  s.grads();
  const AVec<double> phi = s.limit(/*k=*/0.5);  // strict limiting
  // Reconstruction with phi must stay within local bounds: check every
  // edge's reconstructed left state against neighbour extrema.
  double worst_overshoot = 0;
  for (std::size_t ei = 0; ei < s.edges.n; ++ei) {
    const std::size_t a = static_cast<std::size_t>(s.edges.a[ei]);
    const std::size_t b = static_cast<std::size_t>(s.edges.b[ei]);
    double dx[3];
    for (int d = 0; d < 3; ++d)
      dx[d] = 0.5 * (s.fields.coords[b * 3 + static_cast<std::size_t>(d)] -
                     s.fields.coords[a * 3 + static_cast<std::size_t>(d)]);
    const double* g = s.fields.grad.data() + a * kGradStride;
    const double delta = g[0] * dx[0] + g[1] * dx[1] + g[2] * dx[2];
    const double qa = s.fields.q[a * kNs];
    const double limited = qa + phi[a * kNs] * delta;
    const double unlimited = qa + delta;
    worst_overshoot = std::max(
        worst_overshoot, std::max(limited - 1.0, 0.0 - limited));
    (void)unlimited;
  }
  EXPECT_LT(worst_overshoot, 0.12);  // Venkat is smooth, not strictly TVD
}

TEST(Limiter, ZeroGradientGivesPhiOne) {
  LimSetup s;
  s.fields.set_uniform({1, 2, 3, 4});
  s.grads();
  const AVec<double> phi = s.limit();
  for (double p : phi) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(Limiter, LargerKLimitsLess) {
  LimSetup s;
  Rng rng(2);
  for (auto& q : s.fields.q) q = rng.uniform(-1, 1);
  s.grads();
  const AVec<double> strict = s.limit(0.5);
  const AVec<double> loose = s.limit(20.0);
  double sum_strict = 0, sum_loose = 0;
  for (std::size_t i = 0; i < strict.size(); ++i) {
    sum_strict += strict[i];
    sum_loose += loose[i];
  }
  EXPECT_GT(sum_loose, sum_strict);
}

}  // namespace
}  // namespace fun3d
