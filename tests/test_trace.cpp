// The tracing contract (DESIGN.md §7): recording is per-thread and
// lock-free, overflow keeps the newest events and counts the drops,
// disabled mode allocates nothing, the Chrome-trace export round-trips
// through the repo's own strict JSON parser, team shortfalls surface as
// trace events under a capped OpenMP runtime, and the timeline analysis
// honours the measured-critical-path invariants against the real p2p
// kernels' schedules.
#include <gtest/gtest.h>

#include <omp.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/spinwait.hpp"
#include "parallel/team.hpp"
#include "sparse/ilu.hpp"
#include "sparse/trsv.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter, for the disabled-mode zero-allocation test.
// Counts every operator-new in the process; tests snapshot a window.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fun3d {
namespace {

/// Runs `fn` where any parallel region it opens is capped at one thread
/// (same recipe as test_team.cpp): deterministic shortfall anywhere.
template <class Fn>
void with_capped_team(Fn&& fn) {
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    fn();
  }
  omp_set_max_active_levels(saved);
}

/// RAII: tracing is global state; every test leaves it disabled + empty.
struct TraceGuard {
  ~TraceGuard() {
    trace::disable();
    trace::reset();
  }
};

Bcsr4 random_dd(const CsrGraph& adj, unsigned seed) {
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (idx_t r = 0; r < m.num_rows(); ++r)
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      double* b = m.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (m.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += 8.0;
    }
  return m;
}

CsrGraph mesh_adjacency(unsigned seed) {
  TetMesh m = generate_box(4, 4, 3);
  shuffle_numbering(m, seed);
  return m.vertex_graph();
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RingOverflowKeepsNewestAndCountsDrops) {
  TraceGuard guard;
  trace::TraceConfig cfg;
  cfg.events_per_thread = 8;
  trace::enable(cfg);
  for (int i = 0; i < 20; ++i) trace::TraceSpan span("ring", i);
  trace::disable();

  const auto threads = trace::collect();
  const trace::ThreadTrace* mine = nullptr;
  for (const auto& t : threads)
    if (!t.events.empty() && t.events[0].name != nullptr &&
        std::strcmp(t.events[0].name, "ring") == 0)
      mine = &t;
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->events.size(), 8u);
  EXPECT_EQ(mine->dropped, 12u);
  // Drops-oldest: the retained window is the newest 8, oldest first.
  for (std::size_t i = 0; i < mine->events.size(); ++i) {
    EXPECT_EQ(mine->events[i].a0, static_cast<std::int64_t>(12 + i));
    EXPECT_EQ(mine->events[i].kind, trace::EventKind::kSpan);
  }
}

TEST(TraceRecorder, DisabledModeRecordsNothingAndAllocatesNothing) {
  TraceGuard guard;
  trace::disable();
  trace::reset();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    trace::TraceSpan span("noop", i);
    trace::wavefront("noop", i, 1);
    trace::shortfall(4, 2);
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled tracing must not allocate";
  EXPECT_TRUE(trace::collect().empty());
}

TEST(TraceRecorder, DisabledSpanCostIsNegligible) {
  // The contract is ONE relaxed load per disabled site. An absolute bound
  // with orders-of-magnitude slack guards against accidentally adding a
  // clock read or allocation to the disabled path without turning this
  // into a flaky micro-benchmark: 200k disabled spans in under 100ms is
  // ~500ns per span, ~100x the expected cost.
  TraceGuard guard;
  trace::disable();
  Timer t;
  for (int i = 0; i < 200000; ++i) trace::TraceSpan span("cost", i);
  EXPECT_LT(t.seconds(), 0.1);
}

TEST(TraceRecorder, EnableResetsPreviousEvents) {
  TraceGuard guard;
  trace::enable();
  { trace::TraceSpan span("first"); }
  trace::disable();
  trace::enable();
  { trace::TraceSpan span("second"); }
  trace::disable();
  const auto threads = trace::collect();
  std::size_t first = 0, second = 0;
  for (const auto& t : threads)
    for (const auto& e : t.events) {
      if (std::strcmp(e.name, "first") == 0) ++first;
      if (std::strcmp(e.name, "second") == 0) ++second;
    }
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 1u);
}

// ---------------------------------------------------------------------------
// Chrome-trace export round-trip through src/util/json
// ---------------------------------------------------------------------------

TEST(TraceExport, ChromeTraceRoundTripsThroughStrictParser) {
  TraceGuard guard;
  trace::enable();
  { trace::TraceSpan span("kernel_a", 0); }
  trace::spin_wait(/*owner=*/1, /*row=*/42, /*spins=*/100, /*yields=*/3,
                   trace::now_ns());
  trace::wavefront("wf", 2, 17);
  trace::disable();
  const auto threads = trace::collect();
  ASSERT_FALSE(threads.empty());

  const std::string path = testing::TempDir() + "fun3d_trace_roundtrip.json";
  std::string err;
  ASSERT_TRUE(trace::write_chrome_trace(path, threads, &err)) << err;
  std::string text;
  ASSERT_TRUE(read_text_file(path, &text, &err)) << err;
  const Json doc = Json::parse(text, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(doc.is_object());

  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_span = false, saw_wait = false, saw_wavefront = false,
       saw_meta = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    const std::string name = e.find("name")->as_string();
    const std::string ph = e.find("ph")->as_string();
    if (name == "kernel_a" && ph == "X") {
      saw_span = true;
      EXPECT_GE(e.find("dur")->as_double(-1), 0.0);
      EXPECT_EQ(e.find("args")->find("planned_thread")->as_double(-1), 0.0);
    }
    if (name == "spin_wait" && ph == "X") {
      saw_wait = true;
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("owner_thread")->as_double(-1), 1.0);
      EXPECT_EQ(args->find("row")->as_double(-1), 42.0);
      EXPECT_EQ(args->find("spins")->as_double(-1), 100.0);
      EXPECT_EQ(args->find("yields")->as_double(-1), 3.0);
    }
    if (name == "wf" && ph == "i") {
      saw_wavefront = true;
      EXPECT_EQ(e.find("s")->as_string(), "t");
      EXPECT_EQ(e.find("args")->find("level")->as_double(-1), 2.0);
      EXPECT_EQ(e.find("args")->find("rows")->as_double(-1), 17.0);
    }
    if (ph == "M" && name == "thread_name") saw_meta = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_wavefront);
  EXPECT_TRUE(saw_meta);
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->as_double(-1), 0.0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Shortfall events under a capped OpenMP runtime (the `shortfall` label
// runs this whole binary under OMP_THREAD_LIMIT caps as well)
// ---------------------------------------------------------------------------

TEST(TraceShortfall, CappedTeamEmitsShortfallEvent) {
  TraceGuard guard;
  reset_team_shortfall_stats();
  trace::enable();
  std::vector<int> ran(4, 0);
  with_capped_team([&] {
    run_team(4, [&](idx_t t) {
#pragma omp atomic
      ran[static_cast<std::size_t>(t)]++;
    });
  });
  trace::disable();
  for (int r : ran) EXPECT_EQ(r, 1);  // cooperative completion unaffected

  bool saw = false;
  for (const auto& t : trace::collect())
    for (const auto& e : t.events)
      if (e.kind == trace::EventKind::kShortfall) {
        saw = true;
        EXPECT_EQ(e.a0, 4);          // planned
        EXPECT_LT(e.a1, 4);          // delivered
        EXPECT_GE(e.a1, 1);
      }
  EXPECT_TRUE(saw) << "capped run_team must leave a shortfall trace event";
  reset_team_shortfall_stats();
}

// ---------------------------------------------------------------------------
// Timeline analysis: deterministic synthetic timeline
// ---------------------------------------------------------------------------

TEST(TraceAnalysis, SyntheticWaitSplicesOwnerChainIntoCriticalPath) {
  // Thread 0 runs shard 0 for [0,100]ns; thread 1 runs shard 1 for
  // [0,150]ns and spends [10,60]ns waiting on shard 0's row 5.
  std::vector<trace::ThreadTrace> threads(2);
  threads[0].tid = 0;
  threads[1].tid = 1;
  trace::Event s0;
  s0.kind = trace::EventKind::kSpan;
  s0.name = "k";
  s0.t0_ns = 0;
  s0.t1_ns = 100;
  s0.a0 = 0;
  trace::Event w;
  w.kind = trace::EventKind::kSpinWait;
  w.name = "spin_wait";
  w.t0_ns = 10;
  w.t1_ns = 60;
  w.a0 = 0;  // owner shard
  w.a1 = 5;  // row
  trace::Event s1 = s0;
  s1.t1_ns = 150;
  s1.a0 = 1;
  threads[0].events = {s0};
  threads[1].events = {w, s1};

  const trace::TimelineAnalysis a = trace::TimelineAnalysis::compute(threads);
  ASSERT_EQ(a.threads.size(), 2u);
  EXPECT_DOUBLE_EQ(a.threads[0].span_seconds, 100e-9);
  EXPECT_DOUBLE_EQ(a.threads[0].wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.threads[1].span_seconds, 150e-9);
  EXPECT_DOUBLE_EQ(a.threads[1].wait_seconds, 50e-9);
  EXPECT_EQ(a.threads[1].spin_waits, 1u);

  const trace::KernelSummary* k = a.kernel("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->spans, 2u);
  EXPECT_EQ(k->waits, 1u);  // attributed to the enclosing thread-1 span
  EXPECT_DOUBLE_EQ(k->wall_seconds, 150e-9);
  EXPECT_DOUBLE_EQ(k->wait_seconds, 50e-9);
  EXPECT_DOUBLE_EQ(k->max_shard_busy_seconds, 100e-9);
  // Chain: shard 1 runs 10ns, splices shard 0's 60ns chain at the wait's
  // resolution, then runs 90ns more -> 150ns, the realized bound.
  EXPECT_DOUBLE_EQ(k->measured_critical_path_seconds, 150e-9);
  EXPECT_EQ(k->max_concurrency, 2);
  EXPECT_NEAR(k->effective_parallelism(), 200.0 / 150.0, 1e-12);

  ASSERT_EQ(a.top_blocking.size(), 1u);
  EXPECT_EQ(a.top_blocking[0].kernel, "k");
  EXPECT_EQ(a.top_blocking[0].owner, 0);
  EXPECT_EQ(a.top_blocking[0].row, 5);
  EXPECT_DOUBLE_EQ(a.top_blocking[0].seconds, 50e-9);
  EXPECT_EQ(a.top_blocking[0].count, 1u);
}

// ---------------------------------------------------------------------------
// Timeline analysis against the real p2p kernels
// ---------------------------------------------------------------------------

TEST(TraceAnalysis, P2PKernelsSatisfyCriticalPathInvariants) {
  TraceGuard guard;
  const CsrGraph adj = mesh_adjacency(12345);
  const Bcsr4 a = random_dd(adj, 7);
  const IluPattern p = symbolic_ilu(adj, 1);
  const idx_t nt = 2;
  const IluSchedules is = IluSchedules::build(p, nt);
  const IluFactor serial = factorize_ilu(a, p);
  const TrsvSchedules ts = TrsvSchedules::build(serial, nt, true);
  AVec<double> b(static_cast<std::size_t>(serial.num_rows()) * kBs, 1.0);
  AVec<double> x(b.size(), 0.0), xs(b.size(), 0.0);
  trsv_serial(serial, {b.data(), b.size()}, {xs.data(), xs.size()});

  trace::enable();
  const IluFactor traced = factorize_ilu_p2p(a, p, is);
  trsv_p2p(serial, ts, {b.data(), b.size()}, {x.data(), x.size()});
  trace::disable();

  // Tracing must not perturb results: identical factor and solve.
  ASSERT_EQ(traced.num_blocks(), serial.num_blocks());
  EXPECT_EQ(std::memcmp(traced.block(0), serial.block(0),
                        serial.num_blocks() * kBs2 * sizeof(double)),
            0);
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], xs[i]);

  const trace::TimelineAnalysis an =
      trace::TimelineAnalysis::compute(trace::collect());
  if (an.shortfalls > 0) GTEST_SKIP() << "runtime capped the team";

  // Every spin-wait the plans schedule is recorded exactly once.
  std::uint64_t ilu_waits = 0, trsv_waits = 0;
  const trace::KernelSummary* ik = an.kernel("ilu_factor_p2p");
  const trace::KernelSummary* tk = an.kernel("trsv_p2p");
  ASSERT_NE(ik, nullptr);
  ASSERT_NE(tk, nullptr);
  ilu_waits = ik->waits;
  trsv_waits = tk->waits;
  EXPECT_EQ(ilu_waits, static_cast<std::uint64_t>(is.plan.wait_ptr.back()));
  EXPECT_EQ(trsv_waits,
            static_cast<std::uint64_t>(ts.fwd_plan.wait_ptr.back() +
                                       ts.bwd_plan.wait_ptr.back()));

  constexpr double kAbs = 1e-6;  // clock-granularity slack, seconds
  for (const trace::KernelSummary* k : {ik, tk}) {
    EXPECT_EQ(k->spans, static_cast<std::uint64_t>(nt)) << k->name;
    EXPECT_LE(k->max_shard_busy_seconds,
              k->measured_critical_path_seconds + kAbs)
        << k->name;
    EXPECT_LE(k->measured_critical_path_seconds, k->wall_seconds + kAbs)
        << k->name;
    EXPECT_GE(k->wait_fraction(), 0.0) << k->name;
    EXPECT_LE(k->wait_fraction(), 1.0) << k->name;
    // Realized parallelism cannot beat the delivered team size, and for
    // the factorization it cannot beat the DAG's own bound.
    EXPECT_LE(k->effective_parallelism(), static_cast<double>(nt) + 0.5)
        << k->name;
  }
  EXPECT_LE(ik->effective_parallelism(), is.parallelism * 1.25 + 0.5);
  EXPECT_GT(is.parallelism, 1.0);  // a real mesh DAG has concurrency
}

}  // namespace
}  // namespace fun3d
