#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>

#include "core/boundary.hpp"
#include "core/flux_kernels.hpp"
#include "core/gradients.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

struct FluxSetup {
  TetMesh mesh;
  FlowFields fields;
  EdgeArrays edges;

  explicit FluxSetup(unsigned seed, bool perturb = true)
      : mesh(make_mesh(seed)), fields(mesh), edges(mesh) {
    fields.set_uniform({1.0, 1.0, 0.0, 0.0});
    if (perturb) {
      Rng rng(seed);
      for (auto& v : fields.q) v += rng.uniform(-0.1, 0.1);
    }
    const EdgeLoopPlan plan = build_edge_plan(mesh, EdgeStrategy::kAtomics, 1);
    compute_gradients(mesh, edges, plan, fields);
    fields.sync_soa_from_aos();
  }

  static TetMesh make_mesh(unsigned seed) {
    TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
    shuffle_numbering(m, seed);
    return m;
  }

  AVec<double> residual(const FluxKernelConfig& cfg, const EdgeLoopPlan& plan) {
    AVec<double> r(static_cast<std::size_t>(fields.nv) * kNs, 0.0);
    compute_edge_fluxes(Physics{}, edges, plan, cfg, fields,
                        {r.data(), r.size()});
    return r;
  }
};

double max_diff(const AVec<double>& a, const AVec<double>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

TEST(FluxKernels, InteriorFluxesTelescope) {
  // Sum of edge-flux residual over all vertices is exactly zero: each edge
  // adds +F to one vertex and -F to the other.
  FluxSetup s(1);
  FluxKernelConfig cfg;
  const EdgeLoopPlan plan = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  const AVec<double> r = s.residual(cfg, plan);
  double sum[kNs] = {};
  for (idx_t v = 0; v < s.fields.nv; ++v)
    for (int c = 0; c < kNs; ++c)
      sum[c] += r[static_cast<std::size_t>(v) * kNs + static_cast<std::size_t>(c)];
  for (int c = 0; c < kNs; ++c) EXPECT_NEAR(sum[c], 0.0, 1e-9);
}

TEST(FluxKernels, FreestreamPreservationOnAllFarfieldMesh) {
  // Uniform state + closed dual volumes => residual identically zero
  // including far-field boundary fluxes.
  TetMesh m = generate_box(4, 3, 3);
  shuffle_numbering(m, 5);
  Physics ph;
  FlowFields f(m);
  f.set_uniform(ph.freestream);
  EdgeArrays e(m);
  const EdgeLoopPlan plan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, plan, f);
  AVec<double> r(static_cast<std::size_t>(f.nv) * kNs, 0.0);
  FluxKernelConfig cfg;
  compute_edge_fluxes(ph, e, plan, cfg, f, {r.data(), r.size()});
  add_boundary_fluxes(ph, m, f, {r.data(), r.size()});
  for (double rv : r) EXPECT_NEAR(rv, 0.0, 1e-10);
}

TEST(FluxKernels, SoAAndAoSLayoutsAgree) {
  FluxSetup s(2);
  const EdgeLoopPlan plan = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  FluxKernelConfig aos, soa;
  aos.layout = VertexLayout::kAoS;
  soa.layout = VertexLayout::kSoA;
  EXPECT_LT(max_diff(s.residual(aos, plan), s.residual(soa, plan)), 1e-12);
}

TEST(FluxKernels, SimdMatchesScalar) {
  FluxSetup s(3);
  const EdgeLoopPlan plan = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  FluxKernelConfig scalar, simd;
  simd.simd = true;
  EXPECT_LT(max_diff(s.residual(scalar, plan), s.residual(simd, plan)),
            1e-11);
}

TEST(FluxKernels, PrefetchDoesNotChangeResults) {
  FluxSetup s(4);
  const EdgeLoopPlan plan = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  FluxKernelConfig base, pf;
  pf.prefetch = true;
  EXPECT_EQ(max_diff(s.residual(base, plan), s.residual(pf, plan)), 0.0);
  FluxKernelConfig simd_pf;
  simd_pf.simd = true;
  simd_pf.prefetch = true;
  FluxKernelConfig simd;
  simd.simd = true;
  EXPECT_EQ(max_diff(s.residual(simd, plan), s.residual(simd_pf, plan)), 0.0);
}

TEST(FluxKernels, RusanovAndRoeDiffer) {
  FluxSetup s(5);
  const EdgeLoopPlan plan = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  FluxKernelConfig roe, rus;
  rus.scheme = FluxScheme::kRusanov;
  EXPECT_GT(max_diff(s.residual(roe, plan), s.residual(rus, plan)), 1e-8);
}

TEST(FluxKernels, FirstOrderIgnoresGradients) {
  FluxSetup s(6);
  const EdgeLoopPlan plan = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  FluxKernelConfig fo;
  fo.second_order = false;
  const AVec<double> r1 = s.residual(fo, plan);
  for (auto& gv : s.fields.grad) gv *= 10.0;  // corrupt gradients
  s.fields.sync_soa_from_aos();
  const AVec<double> r2 = s.residual(fo, plan);
  EXPECT_EQ(max_diff(r1, r2), 0.0);
}

class FluxStrategyTest
    : public ::testing::TestWithParam<std::tuple<EdgeStrategy, idx_t, bool>> {
};

TEST_P(FluxStrategyTest, ThreadedStrategiesMatchSerial) {
  const auto [strategy, nthreads, simd] = GetParam();
  FluxSetup s(7);
  const EdgeLoopPlan serial = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  FluxKernelConfig cfg;
  cfg.simd = simd;
  const AVec<double> ref = s.residual(cfg, serial);

  const EdgeLoopPlan plan = build_edge_plan(s.mesh, strategy, nthreads);
  EXPECT_TRUE(validate_edge_plan(s.mesh, plan));
  const AVec<double> r = s.residual(cfg, plan);
  EXPECT_LT(max_diff(ref, r), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FluxStrategyTest,
    ::testing::Combine(
        ::testing::Values(EdgeStrategy::kAtomics,
                          EdgeStrategy::kReplicationNatural,
                          EdgeStrategy::kReplicationPartitioned,
                          EdgeStrategy::kColoring),
        ::testing::Values(2, 4), ::testing::Values(false, true)));

// Regression (ROADMAP "edge-loop thread shortfall"): a plan built for 4
// threads executed by a runtime that only grants 1 must still process
// every edge. Reproduced with the nested-region recipe from the trsv_p2p
// fix; the full strategy × simd matrix lives in test_team.cpp.
TEST_P(FluxStrategyTest, CappedTeamStillProcessesEveryEdge) {
  const auto [strategy, nthreads, simd] = GetParam();
  FluxSetup s(9);
  const EdgeLoopPlan serial = build_edge_plan(s.mesh, EdgeStrategy::kAtomics, 1);
  FluxKernelConfig cfg;
  cfg.simd = simd;
  const AVec<double> ref = s.residual(cfg, serial);

  const EdgeLoopPlan plan = build_edge_plan(s.mesh, strategy, nthreads);
  AVec<double> r(ref.size(), 0.0);
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);  // inner parallel regions get 1 thread
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    compute_edge_fluxes(Physics{}, s.edges, plan, cfg, s.fields,
                        {r.data(), r.size()});
  }
  omp_set_max_active_levels(saved);
  EXPECT_LT(max_diff(ref, r), 1e-10);
}

TEST(FluxKernels, FlopCountsOrdering) {
  FluxKernelConfig roe2, roe1, rus;
  roe1.second_order = false;
  rus.scheme = FluxScheme::kRusanov;
  EXPECT_GT(flux_flops_per_edge(roe2), flux_flops_per_edge(roe1));
  EXPECT_GT(flux_flops_per_edge(roe2), flux_flops_per_edge(rus));
}

TEST(FluxTrace, AoSIssuesFewerAccessesAndComparableTraffic) {
  // The paper's layout claim (§V-A): AoS vertex data needs fewer loads (one
  // vector load per vertex vs one per field) and better utilizes issue
  // ports, giving ~20% better L1/L2 reuse per access. In the trace this
  // shows as far fewer cache accesses for the same kernel, while DRAM
  // traffic stays comparable (SoA has 8-vertices-per-line spatial locality
  // working in its favour).
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m, 8);
  rcm_reorder(m);
  FlowFields f(m);
  f.set_uniform({1, 1, 0, 0});
  f.sync_soa_from_aos();
  EdgeArrays e(m);
  std::vector<idx_t> order(m.edges.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<idx_t>(i);

  const std::vector<CacheLevelSpec> cache = {{32 * 1024, 8, 64},
                                             {256 * 1024, 8, 64}};
  FluxKernelConfig aos, soa;
  soa.layout = VertexLayout::kSoA;
  CacheSim sim_aos(cache), sim_soa(cache);
  trace_flux_accesses(e, order, aos, f, sim_aos);
  trace_flux_accesses(e, order, soa, f, sim_soa);
  const auto accesses = [](const CacheSim& s) {
    return s.level(0).hits() + s.level(0).misses();
  };
  EXPECT_LT(accesses(sim_aos), accesses(sim_soa) / 2);
  EXPECT_LT(static_cast<double>(sim_aos.dram_bytes()),
            1.3 * static_cast<double>(sim_soa.dram_bytes()));
}

}  // namespace
}  // namespace fun3d
