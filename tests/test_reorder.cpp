#include <gtest/gtest.h>

#include <numeric>

#include "graph/rcm.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "mesh/stats.hpp"

namespace fun3d {
namespace {

TEST(Reorder, PermutationPreservesGeometry) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  const double vol_before = compute_mesh_stats(m).total_volume;
  const std::size_t edges_before = m.edges.size();

  std::vector<idx_t> perm(static_cast<std::size_t>(m.num_vertices));
  std::iota(perm.rbegin(), perm.rend(), 0);  // reversal
  apply_vertex_permutation(m, perm);

  EXPECT_EQ(m.edges.size(), edges_before);
  EXPECT_NEAR(compute_mesh_stats(m).total_volume, vol_before, 1e-12);
  EXPECT_LT(dual_closure_error(m), 1e-11);
}

TEST(Reorder, ShuffleIsDeterministicPerSeed) {
  TetMesh a = generate_box(3, 3, 3);
  TetMesh b = generate_box(3, 3, 3);
  const auto pa = shuffle_numbering(a, 42);
  const auto pb = shuffle_numbering(b, 42);
  EXPECT_EQ(pa, pb);
  EXPECT_EQ(a.x, b.x);
}

TEST(Reorder, ShuffleDegradesRcmRestoresBandwidth) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kSmall));
  const idx_t bw_structured = compute_mesh_stats(m).graph_bandwidth;
  shuffle_numbering(m, 3);
  const idx_t bw_shuffled = compute_mesh_stats(m).graph_bandwidth;
  rcm_reorder(m);
  const idx_t bw_rcm = compute_mesh_stats(m).graph_bandwidth;
  EXPECT_GT(bw_shuffled, 4 * bw_structured);
  EXPECT_LT(bw_rcm, bw_shuffled / 4);
  EXPECT_LT(dual_closure_error(m), 1e-10);
}

TEST(Reorder, DualVolumesPermuteWithVertices) {
  TetMesh m = generate_box(3, 3, 3);
  const AVec<double> before = m.dual_vol;
  const auto perm = shuffle_numbering(m, 9);
  for (idx_t v = 0; v < m.num_vertices; ++v)
    EXPECT_NEAR(m.dual_vol[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])],
                before[static_cast<std::size_t>(v)], 1e-14);
}

TEST(Reorder, RcmReturnsValidPermutation) {
  TetMesh m = generate_box(4, 4, 4);
  shuffle_numbering(m, 5);
  const auto perm = rcm_reorder(m);
  EXPECT_TRUE(is_permutation(perm));
}

}  // namespace
}  // namespace fun3d
