#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/levels.hpp"
#include "graph/sparsify.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

CsrGraph deps_from_pairs(idx_t n,
                         const std::vector<std::pair<idx_t, idx_t>>& pairs) {
  CsrGraph g;
  g.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto [i, j] : pairs) g.rowptr[static_cast<std::size_t>(i) + 1]++;
  for (std::size_t k = 1; k < g.rowptr.size(); ++k)
    g.rowptr[k] += g.rowptr[k - 1];
  g.col.resize(pairs.size());
  std::vector<idx_t> cur(g.rowptr.begin(), g.rowptr.end() - 1);
  for (auto [i, j] : pairs) g.col[static_cast<std::size_t>(cur[i]++)] = j;
  for (idx_t i = 0; i < n; ++i)
    std::sort(g.col.begin() + g.rowptr[i], g.col.begin() + g.rowptr[i + 1]);
  return g;
}

CsrGraph random_dag(idx_t n, int maxdeps, unsigned seed) {
  Rng rng(seed);
  std::vector<std::pair<idx_t, idx_t>> pairs;
  for (idx_t i = 1; i < n; ++i) {
    const int k = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(maxdeps) + 1));
    std::set<idx_t> ds;
    for (int d = 0; d < k; ++d)
      ds.insert(static_cast<idx_t>(
          rng.next_below(static_cast<std::uint64_t>(i))));
    for (idx_t j : ds) pairs.emplace_back(i, j);
  }
  return deps_from_pairs(n, pairs);
}

TEST(TransitiveReduce, RemovesImpliedEdge) {
  // 2 depends on 1 and 0; 1 depends on 0 => (2,0) is redundant.
  const CsrGraph d = deps_from_pairs(3, {{1, 0}, {2, 0}, {2, 1}});
  const CsrGraph r = transitive_reduce(d);
  EXPECT_EQ(r.num_arcs(), 2u);
  EXPECT_EQ(r.degree(2), 1);
  EXPECT_EQ(r.neighbors(2)[0], 1);
}

TEST(TransitiveReduce, KeepsEssentialEdges) {
  const CsrGraph d = deps_from_pairs(4, {{1, 0}, {2, 1}, {3, 2}});
  const CsrGraph r = transitive_reduce(d);
  EXPECT_EQ(r.num_arcs(), d.num_arcs());
}

TEST(TransitiveReduce, PreservesLevelStructure) {
  // Level (longest path) of every row must be identical after reduction —
  // the reduced DAG admits exactly the same schedules.
  for (unsigned seed : {1u, 2u, 3u, 4u}) {
    const CsrGraph d = random_dag(150, 5, seed);
    const CsrGraph r = transitive_reduce(d);
    EXPECT_LE(r.num_arcs(), d.num_arcs());
    EXPECT_EQ(compute_levels(d), compute_levels(r));
  }
}

TEST(TransitiveReduce, TwoHopsCatchesDeeperRedundancy) {
  // 3 -> 0 is implied through 3 -> 2 -> 1 -> 0 (needs 2 hops to discover
  // from predecessor 2).
  const CsrGraph d = deps_from_pairs(4, {{1, 0}, {2, 1}, {3, 2}, {3, 0}});
  const CsrGraph r1 = transitive_reduce(d, 1);
  const CsrGraph r2 = transitive_reduce(d, 2);
  EXPECT_EQ(r2.degree(3), 1);
  EXPECT_LE(r2.num_arcs(), r1.num_arcs());
}

class P2PPlanTest
    : public ::testing::TestWithParam<std::tuple<unsigned, idx_t, bool>> {};

TEST_P(P2PPlanTest, PlanCoversAllDependencies) {
  const auto [seed, nthreads, sparsify] = GetParam();
  const CsrGraph d = random_dag(240, 5, seed);
  const Partition owner = partition_natural(240, nthreads);
  const P2PSyncPlan plan = build_p2p_plan(d, owner, sparsify);
  EXPECT_TRUE(p2p_plan_covers(d, owner, plan));
  EXPECT_LE(plan.reduced_cross_deps, plan.raw_cross_deps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, P2PPlanTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(2, 3, 4, 8),
                       ::testing::Bool()));

TEST(P2PPlan, SparsificationReducesWaits) {
  const CsrGraph d = random_dag(400, 6, 77);
  const Partition owner = partition_natural(400, 8);
  const P2PSyncPlan raw = build_p2p_plan(d, owner, /*reduce=*/false);
  const P2PSyncPlan sparse = build_p2p_plan(d, owner, /*reduce=*/true);
  EXPECT_TRUE(p2p_plan_covers(d, owner, raw));
  EXPECT_TRUE(p2p_plan_covers(d, owner, sparse));
  EXPECT_LT(sparse.reduced_cross_deps, raw.reduced_cross_deps);
}

TEST(P2PPlan, SingleThreadNeedsNoWaits) {
  const CsrGraph d = random_dag(100, 4, 5);
  const Partition owner = partition_natural(100, 1);
  const P2PSyncPlan plan = build_p2p_plan(d, owner);
  EXPECT_EQ(plan.reduced_cross_deps, 0u);
}

TEST(P2PPlan, CoverageCheckDetectsMissingWaits) {
  // Row 1 (thread 1) depends on row 0 (thread 0); an empty plan must fail.
  const CsrGraph d = deps_from_pairs(2, {{1, 0}});
  Partition owner;
  owner.nparts = 2;
  owner.part = {0, 1};
  P2PSyncPlan empty;
  empty.wait_ptr = {0, 0, 0};
  EXPECT_FALSE(p2p_plan_covers(d, owner, empty));
}

}  // namespace
}  // namespace fun3d
