#include <gtest/gtest.h>

#include <set>

#include "mesh/decompose.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"

namespace fun3d {
namespace {

class DecomposeTest
    : public ::testing::TestWithParam<std::tuple<idx_t, bool>> {};

TEST_P(DecomposeTest, PartsContiguousAndConsistent) {
  const auto [nparts, use_partitioner] = GetParam();
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m, 1);
  const Decomposition d = decompose(m, nparts, use_partitioner);

  EXPECT_EQ(d.nparts(), nparts);
  EXPECT_TRUE(is_permutation(d.perm));
  // Contiguity: part of vertex v equals the subdomain whose range holds v.
  for (idx_t q = 0; q < nparts; ++q) {
    const auto& sub = d.subs[static_cast<std::size_t>(q)];
    EXPECT_EQ(sub.owner, q);
    for (idx_t v = sub.row_begin; v < sub.row_end; ++v)
      EXPECT_EQ(d.part.part[static_cast<std::size_t>(v)], q);
  }
  // Ranges tile [0, n).
  idx_t covered = 0;
  for (const auto& sub : d.subs) covered += sub.num_owned();
  EXPECT_EQ(covered, m.num_vertices);
  // Edge accounting: interior counted once, cut counted twice.
  std::uint64_t interior = 0;
  for (const auto& sub : d.subs) interior += sub.interior_edges;
  EXPECT_EQ(interior + d.total_cut_edges() / 2, m.edges.size());
  // Mesh still valid after renumbering.
  EXPECT_LT(dual_closure_error(m), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8), ::testing::Bool()));

TEST(Decompose, PartitionerCutsFewerEdgesThanNaturalOnShuffled) {
  TetMesh m1 = generate_wing_bump(preset_params(MeshPreset::kSmall));
  TetMesh m2 = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m1, 4);
  shuffle_numbering(m2, 4);
  const Decomposition nat = decompose(m1, 8, /*use_graph_partitioner=*/false);
  const Decomposition gp = decompose(m2, 8, /*use_graph_partitioner=*/true);
  EXPECT_LT(gp.total_cut_edges(), nat.total_cut_edges() / 2);
  EXPECT_LT(gp.total_ghosts(), nat.total_ghosts());
}

TEST_P(DecomposeTest, GhostAccountingMatchesCutEdgeStencils) {
  const auto [nparts, use_partitioner] = GetParam();
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m, 2);
  const Decomposition d = decompose(m, nparts, use_partitioner);
  // total_ghosts() is exactly the sum of the per-subdomain ghost counts...
  std::uint64_t per_sub = 0;
  for (const auto& sub : d.subs)
    per_sub += static_cast<std::uint64_t>(sub.num_ghosts);
  EXPECT_EQ(d.total_ghosts(), per_sub);
  // ...and each count is the number of DISTINCT off-part endpoints of the
  // part's cut edges (recomputed here from scratch).
  for (idx_t q = 0; q < nparts; ++q) {
    std::set<idx_t> ghosts;
    for (const auto& [a, b] : m.edges) {
      const idx_t pa = d.part.part[static_cast<std::size_t>(a)];
      const idx_t pb = d.part.part[static_cast<std::size_t>(b)];
      if (pa == q && pb != q) ghosts.insert(b);
      if (pb == q && pa != q) ghosts.insert(a);
    }
    EXPECT_EQ(static_cast<std::uint64_t>(
                  d.subs[static_cast<std::size_t>(q)].num_ghosts),
              ghosts.size());
  }
}

TEST_P(DecomposeTest, IsDeterministicAcrossRepeatedCalls) {
  const auto [nparts, use_partitioner] = GetParam();
  TetMesh m1 = generate_wing_bump(preset_params(MeshPreset::kSmall));
  TetMesh m2 = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m1, 3);
  shuffle_numbering(m2, 3);
  const Decomposition d1 = decompose(m1, nparts, use_partitioner);
  const Decomposition d2 = decompose(m2, nparts, use_partitioner);
  EXPECT_EQ(d1.perm, d2.perm);
  EXPECT_EQ(d1.part.part, d2.part.part);
  ASSERT_EQ(d1.subs.size(), d2.subs.size());
  for (std::size_t q = 0; q < d1.subs.size(); ++q) {
    EXPECT_EQ(d1.subs[q].row_begin, d2.subs[q].row_begin);
    EXPECT_EQ(d1.subs[q].row_end, d2.subs[q].row_end);
    EXPECT_EQ(d1.subs[q].num_ghosts, d2.subs[q].num_ghosts);
    EXPECT_EQ(d1.subs[q].cut_edges, d2.subs[q].cut_edges);
  }
  // The renumbered meshes agree bitwise (same edges, same dual metrics).
  EXPECT_EQ(m1.edges, m2.edges);
  EXPECT_EQ(m1.dual_nx, m2.dual_nx);
  EXPECT_EQ(m1.dual_vol, m2.dual_vol);
}

TEST(Decompose, SinglePartHasNoGhosts) {
  TetMesh m = generate_box(4, 4, 4);
  const Decomposition d = decompose(m, 1, true);
  EXPECT_EQ(d.total_ghosts(), 0u);
  EXPECT_EQ(d.total_cut_edges(), 0u);
}

}  // namespace
}  // namespace fun3d
