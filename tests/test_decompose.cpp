#include <gtest/gtest.h>

#include "mesh/decompose.hpp"
#include "mesh/dual.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"

namespace fun3d {
namespace {

class DecomposeTest
    : public ::testing::TestWithParam<std::tuple<idx_t, bool>> {};

TEST_P(DecomposeTest, PartsContiguousAndConsistent) {
  const auto [nparts, use_partitioner] = GetParam();
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m, 1);
  const Decomposition d = decompose(m, nparts, use_partitioner);

  EXPECT_EQ(d.nparts(), nparts);
  EXPECT_TRUE(is_permutation(d.perm));
  // Contiguity: part of vertex v equals the subdomain whose range holds v.
  for (idx_t q = 0; q < nparts; ++q) {
    const auto& sub = d.subs[static_cast<std::size_t>(q)];
    EXPECT_EQ(sub.owner, q);
    for (idx_t v = sub.row_begin; v < sub.row_end; ++v)
      EXPECT_EQ(d.part.part[static_cast<std::size_t>(v)], q);
  }
  // Ranges tile [0, n).
  idx_t covered = 0;
  for (const auto& sub : d.subs) covered += sub.num_owned();
  EXPECT_EQ(covered, m.num_vertices);
  // Edge accounting: interior counted once, cut counted twice.
  std::uint64_t interior = 0;
  for (const auto& sub : d.subs) interior += sub.interior_edges;
  EXPECT_EQ(interior + d.total_cut_edges() / 2, m.edges.size());
  // Mesh still valid after renumbering.
  EXPECT_LT(dual_closure_error(m), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8), ::testing::Bool()));

TEST(Decompose, PartitionerCutsFewerEdgesThanNaturalOnShuffled) {
  TetMesh m1 = generate_wing_bump(preset_params(MeshPreset::kSmall));
  TetMesh m2 = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m1, 4);
  shuffle_numbering(m2, 4);
  const Decomposition nat = decompose(m1, 8, /*use_graph_partitioner=*/false);
  const Decomposition gp = decompose(m2, 8, /*use_graph_partitioner=*/true);
  EXPECT_LT(gp.total_cut_edges(), nat.total_cut_edges() / 2);
  EXPECT_LT(gp.total_ghosts(), nat.total_ghosts());
}

TEST(Decompose, SinglePartHasNoGhosts) {
  TetMesh m = generate_box(4, 4, 4);
  const Decomposition d = decompose(m, 1, true);
  EXPECT_EQ(d.total_ghosts(), 0u);
  EXPECT_EQ(d.total_cut_edges(), 0u);
}

}  // namespace
}  // namespace fun3d
