// Solver resilience layer (DESIGN.md §8): health-check units, the SER
// NaN regression, fault-injected solves exercising every rejection path,
// and the checkpoint/restart bitwise-continuation guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/newton.hpp"
#include "core/resilience.hpp"
#include "core/solver.hpp"
#include "core/vtk_io.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"

namespace fun3d {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TetMesh solver_mesh(unsigned seed = 1) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, seed);
  rcm_reorder(m);
  return m;
}

SolverConfig quick(SolverConfig cfg) {
  cfg.ptc.max_steps = 30;
  cfg.ptc.rtol = 1e-8;
  return cfg;
}

// ---- ser_update: the CFL controller must back off, not grow, on NaN ----

TEST(SerUpdate, NonFiniteResidualBacksOffInsteadOfGrowing) {
  const PtcOptions opt;  // cfl0 = 10
  // Regression: NaN fails `r_now > 0`, which used to take the GROWTH
  // branch and ramp the CFL into a diverging state. Now it is the 0.1
  // backoff, clamped below by min(cfl, cfl0).
  EXPECT_EQ(ser_update(100.0, 1.0, kNaN, opt), 10.0);
  EXPECT_EQ(ser_update(100.0, kNaN, 1.0, opt), 10.0);
  EXPECT_EQ(ser_update(100.0, 1.0, kInf, opt), 10.0);
  EXPECT_EQ(ser_update(1000.0, 1.0, kNaN, opt), 100.0);  // 0.1x, above cfl0
}

TEST(SerUpdate, ZeroResidualTakesGrowthClampNotDivideByZero) {
  const PtcOptions opt;
  const double next = ser_update(100.0, 1.0, 0.0, opt);
  EXPECT_TRUE(std::isfinite(next));
  EXPECT_EQ(next, 100.0 * opt.cfl_growth_max);
}

TEST(SerUpdate, BackedOffCflRecoversGraduallyInsteadOfSnappingToCfl0) {
  const PtcOptions opt;  // cfl0 = 10, growth clamp 2.0
  // The resilience layer can push the CFL below cfl0; the old lower clamp
  // to cfl0 would snap it straight back, defeating the backoff.
  EXPECT_EQ(ser_update(1.0, 10.0, 5.0, opt), 2.0);
  // And a healthy CFL >= cfl0 still never drops below cfl0.
  EXPECT_EQ(ser_update(10.0, 1.0, 100.0, opt), 10.0);
}

TEST(SerUpdate, RespectsGrowthClampAndCflMax) {
  PtcOptions opt;
  opt.cfl_max = 150.0;
  EXPECT_EQ(ser_update(100.0, 10.0, 1.0, opt), 150.0);  // 2x clamped to max
  EXPECT_EQ(ser_update(100.0, 3.0, 2.0, opt), 150.0);
  EXPECT_EQ(ser_update(100.0, 2.0, 3.0, opt), 100.0 * (2.0 / 3.0));
}

// ---- health-check units ----

TEST(Resilience, AllFiniteScansEveryEntry) {
  const double ok[] = {0.0, -1.5, 1e300};
  EXPECT_TRUE(all_finite({ok, 3}));
  EXPECT_TRUE(all_finite({ok, std::size_t{0}}));
  double bad[] = {0.0, 1.0, 2.0, 3.0};
  bad[3] = kNaN;
  EXPECT_FALSE(all_finite({bad, 4}));
  bad[3] = kInf;
  EXPECT_FALSE(all_finite({bad, 4}));
}

TEST(Resilience, FaultTargetIndexIsDeterministicAndInRange) {
  const std::size_t n = 1234;
  const std::size_t a = fault_target_index(0x5eedu, 7, n);
  EXPECT_EQ(a, fault_target_index(0x5eedu, 7, n));  // reproducible
  EXPECT_LT(a, n);
  // Different steps (and seeds) spread to different entries.
  EXPECT_NE(a, fault_target_index(0x5eedu, 8, n));
  EXPECT_NE(a, fault_target_index(0xbeefu, 7, n));
}

TEST(Resilience, UpdateHealthOrdersItsVerdicts) {
  const ResilienceOptions opt;
  double du[] = {1.0, -2.0};
  LinearOutcome lin;
  lin.converged = true;
  lin.relative_residual = 1e-4;
  EXPECT_EQ(check_update_health({du, 2}, lin, opt), StepVerdict::kAccept);

  // Non-finite du dominates everything else.
  du[1] = kNaN;
  lin.breakdown = true;
  EXPECT_EQ(check_update_health({du, 2}, lin, opt),
            StepVerdict::kRejectNonFiniteUpdate);

  du[1] = -2.0;
  lin.converged = false;
  EXPECT_EQ(check_update_health({du, 2}, lin, opt),
            StepVerdict::kRejectBreakdown);

  // No breakdown, not converged, zero progress: stall.
  lin.breakdown = false;
  lin.relative_residual = 1.0;
  EXPECT_EQ(check_update_health({du, 2}, lin, opt),
            StepVerdict::kRejectLinearStall);

  // Inexact Newton: partial progress without convergence is usable.
  lin.relative_residual = 0.5;
  EXPECT_EQ(check_update_health({du, 2}, lin, opt), StepVerdict::kAccept);
}

TEST(Resilience, ResidualHealthRejectsNaNAndCatastrophicGrowth) {
  const ResilienceOptions opt;  // growth_reject = 1e3
  EXPECT_EQ(check_residual_health(1.0, 0.5, opt), StepVerdict::kAccept);
  EXPECT_EQ(check_residual_health(1.0, kNaN, opt),
            StepVerdict::kRejectNonFiniteResidual);
  EXPECT_EQ(check_residual_health(1.0, kInf, opt),
            StepVerdict::kRejectNonFiniteResidual);
  EXPECT_EQ(check_residual_health(1.0, 2000.0, opt),
            StepVerdict::kRejectResidualGrowth);
  // Transient growth below the gate is PTC business as usual.
  EXPECT_EQ(check_residual_health(1.0, 999.0, opt), StepVerdict::kAccept);
}

TEST(Resilience, VerdictNamesAreDiagnosable) {
  EXPECT_STREQ(to_string(StepVerdict::kAccept), "accept");
  for (const StepVerdict v :
       {StepVerdict::kRejectNonFiniteUpdate, StepVerdict::kRejectBreakdown,
        StepVerdict::kRejectLinearStall, StepVerdict::kRejectNonFiniteResidual,
        StepVerdict::kRejectResidualGrowth})
    EXPECT_NE(std::string(to_string(v)), "accept");
}

// ---- fault-injected solves: every rejection path recovers or fails
// ---- gracefully (the acceptance criterion of DESIGN.md §8) ----

/// Runs a baseline solve with `mutate` applied to the config and returns
/// the stats; the mesh/seed is fixed so runs are comparable.
template <typename F>
SolveStats injected_run(F mutate, SolverConfig cfg = SolverConfig::baseline()) {
  cfg = quick(cfg);
  mutate(cfg);
  FlowSolver solver(solver_mesh(11), cfg);
  SolveStats st = solver.solve();
  // Whatever happened, the state left behind is never poisoned.
  EXPECT_TRUE(all_finite({solver.fields().q.data(), solver.fields().q.size()}));
  return st;
}

TEST(Resilience, SeededNaNResidualIsRejectedBackedOffAndRecovered) {
  const SolveStats st = injected_run(
      [](SolverConfig& c) { c.resilience.fault.nan_residual_step = 2; });
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.failure, SolveFailure::kNone);
  const ResilienceStats& rs = st.resilience;
  EXPECT_EQ(rs.injected_faults, 1u);
  EXPECT_EQ(rs.rejected_steps, 1u);
  EXPECT_EQ(rs.nonfinite_residual_rejects, 1u);
  EXPECT_EQ(rs.retries, 1u);
  EXPECT_EQ(rs.backoffs, 1u);
}

TEST(Resilience, SeededNaNUpdateIsCaughtBeforeTouchingTheState) {
  const SolveStats st = injected_run(
      [](SolverConfig& c) { c.resilience.fault.nan_update_step = 2; });
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.resilience.nonfinite_update_rejects, 1u);
  EXPECT_EQ(st.resilience.rejected_steps, 1u);
  EXPECT_EQ(st.resilience.retries, 1u);
}

TEST(Resilience, ForcedKrylovBreakdownRetriesAndConverges) {
  const SolveStats st = injected_run(
      [](SolverConfig& c) { c.resilience.fault.breakdown_step = 1; });
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.resilience.breakdown_rejects, 1u);
  EXPECT_EQ(st.resilience.rejected_steps, 1u);
}

TEST(Resilience, ExhaustedRetriesAbortGracefullyWithDiagnosableReason) {
  const SolveStats st = injected_run([](SolverConfig& c) {
    c.resilience.fault.breakdown_step = 1;
    c.resilience.fault.repeat = -1;  // poison every attempt
  });
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.failure, SolveFailure::kStepRetriesExhausted);
  EXPECT_NE(st.failure_detail.find("step 1"), std::string::npos);
  EXPECT_NE(st.failure_detail.find(
                to_string(StepVerdict::kRejectBreakdown)),
            std::string::npos);
  // max_retries = 4: attempts 0..4 all rejected.
  EXPECT_EQ(st.resilience.rejected_steps, 5u);
  EXPECT_EQ(st.resilience.retries, 4u);
}

TEST(Resilience, DisabledStepControlRestoresLegacyAcceptEverything) {
  // With the layer off, a synthetic breakdown flag is ignored (the GMRES
  // correction is still real) and the solve proceeds as before.
  const SolveStats st = injected_run([](SolverConfig& c) {
    c.resilience.enabled = false;
    c.resilience.fault.breakdown_step = 1;
  });
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.resilience.rejected_steps, 0u);
  EXPECT_EQ(st.resilience.injected_faults, 1u);
}

TEST(Resilience, HealthyRunNeverTripsTheChecks) {
  const SolveStats st = injected_run([](SolverConfig&) {});
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.resilience.rejected_steps, 0u);
  EXPECT_EQ(st.resilience.retries, 0u);
  EXPECT_EQ(st.resilience.backoffs, 0u);
  EXPECT_EQ(st.resilience.injected_faults, 0u);
}

TEST(Resilience, RecoveryPathIsIdenticalUnderCappedTeams) {
  // The `shortfall` CI matrix reruns this binary with OMP_THREAD_LIMIT
  // caps; the optimized parallel solver must take the exact same
  // reject/backoff/retry decisions as any uncapped run.
  const SolveStats st = injected_run(
      [](SolverConfig& c) { c.resilience.fault.nan_residual_step = 2; },
      SolverConfig::optimized(2));
  EXPECT_TRUE(st.converged);
  const ResilienceStats& rs = st.resilience;
  EXPECT_EQ(rs.injected_faults, 1u);
  EXPECT_EQ(rs.rejected_steps, 1u);
  EXPECT_EQ(rs.nonfinite_residual_rejects, 1u);
  EXPECT_EQ(rs.retries, 1u);
  EXPECT_EQ(rs.backoffs, 1u);
}

// ---- checkpoint / restart: bitwise continuation ----

class CkptFile {
 public:
  explicit CkptFile(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {}
  ~CkptFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Resilience, KilledAndRestartedRunMatchesUninterruptedBitwise) {
  SolverConfig cfg = quick(SolverConfig::baseline());
  cfg.resilience.checkpoint_every = 2;

  // Run A: uninterrupted to convergence.
  CkptFile ckpt_a("resil_a.ckpt");
  cfg.resilience.checkpoint_path = ckpt_a.path();
  FlowSolver a(solver_mesh(12), cfg);
  const SolveStats st_a = a.solve();
  ASSERT_TRUE(st_a.converged);
  ASSERT_GT(st_a.resilience.checkpoints_written, 1u);

  // Run B: same run "killed" after 5 steps — its last periodic
  // checkpoint (step 4) survives.
  CkptFile ckpt_b("resil_b.ckpt");
  cfg.resilience.checkpoint_path = ckpt_b.path();
  cfg.ptc.max_steps = 5;
  FlowSolver b(solver_mesh(12), cfg);
  const SolveStats st_b = b.solve();
  ASSERT_FALSE(st_b.converged);

  // Run C: restart from B's checkpoint and run to convergence.
  cfg.ptc.max_steps = 30;
  FlowSolver c(solver_mesh(12), cfg);
  const CheckpointMeta meta = c.restore_checkpoint(ckpt_b.path());
  EXPECT_EQ(meta.step, 4u);
  EXPECT_GT(meta.cfl, 0.0);
  EXPECT_GT(meta.r0, 0.0);
  const SolveStats st_c = c.solve();

  // The resumed run is the uninterrupted run, bit for bit.
  EXPECT_TRUE(st_c.converged);
  EXPECT_EQ(st_c.steps, st_a.steps);
  EXPECT_EQ(st_c.final_cfl, st_a.final_cfl);
  EXPECT_EQ(st_c.reference_residual, st_a.reference_residual);
  ASSERT_EQ(c.fields().q.size(), a.fields().q.size());
  for (std::size_t i = 0; i < a.fields().q.size(); ++i)
    ASSERT_EQ(c.fields().q[i], a.fields().q[i]) << "entry " << i;
}

TEST(Resilience, LegacyCheckpointWithoutMetaRestartsAsFreshSolve) {
  const SolverConfig cfg = quick(SolverConfig::baseline());
  TetMesh m = solver_mesh(13);
  CkptFile ckpt("resil_legacy.ckpt");
  {
    FlowSolver warm(solver_mesh(13), cfg);
    // Old-format checkpoint of the initial state: no meta block.
    save_checkpoint(ckpt.path(), warm.mesh(),
                    {warm.fields().q.data(), warm.fields().q.size()});
  }
  FlowSolver solver(std::move(m), cfg);
  const CheckpointMeta meta = solver.restore_checkpoint(ckpt.path());
  EXPECT_EQ(meta.step, 0u);
  EXPECT_EQ(meta.cfl, 0.0);
  EXPECT_EQ(meta.r0, 0.0);
  const SolveStats st = solver.solve();
  EXPECT_TRUE(st.converged);  // fresh solve from the stored state
}

}  // namespace
}  // namespace fun3d
