#include <gtest/gtest.h>

#include <omp.h>

#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/team.hpp"
#include "sparse/ilu.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

Bcsr4 random_dd(const CsrGraph& adj, unsigned seed) {
  Bcsr4 m = Bcsr4::from_adjacency(adj);
  Rng rng(seed);
  for (idx_t r = 0; r < m.num_rows(); ++r)
    for (idx_t nz = m.row_begin(r); nz < m.row_end(r); ++nz) {
      double* b = m.block(nz);
      for (int i = 0; i < kBs2; ++i) b[i] = rng.uniform(-0.5, 0.5);
      if (m.col(nz) == r)
        for (int i = 0; i < kBs; ++i) b[i * kBs + i] += 8.0;
    }
  return m;
}

struct TrsvFixture {
  Bcsr4 a;
  IluFactor f;
  std::vector<double> b;
  std::vector<double> x_serial;

  explicit TrsvFixture(unsigned seed, int fill = 1) {
    TetMesh m = generate_box(4, 4, 3);
    shuffle_numbering(m, seed);  // irregular row order, like real meshes
    a = random_dd(m.vertex_graph(), seed);
    const IluPattern p = symbolic_ilu(a.structure(), fill);
    f = factorize_ilu(a, p);
    const std::size_t n = static_cast<std::size_t>(a.num_rows()) * kBs;
    Rng rng(seed + 100);
    b.resize(n);
    for (auto& v : b) v = rng.uniform(-1, 1);
    x_serial.assign(n, 0.0);
    trsv_serial(f, b, x_serial);
  }
};

TEST(TrsvSerial, SolvesLuExactly) {
  // Verify L U x == b by applying the factor triangles explicitly:
  // forward pass value y, then U x = y. Instead, use the dense-pattern
  // route from test_ilu; here check residual smallness against A for a
  // preconditioner-quality factor.
  const TrsvFixture fx(1);
  // x should approximately solve A x = b (ILU(1) on diag-dominant A).
  std::vector<double> ax(fx.b.size());
  spmv_serial(fx.a, fx.x_serial, ax);
  double err = 0, norm = 0;
  for (std::size_t i = 0; i < fx.b.size(); ++i) {
    err += (ax[i] - fx.b[i]) * (ax[i] - fx.b[i]);
    norm += fx.b[i] * fx.b[i];
  }
  EXPECT_LT(std::sqrt(err / norm), 0.15);
}

class TrsvParallelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, idx_t, bool>> {};

TEST_P(TrsvParallelTest, LevelScheduledMatchesSerial) {
  const auto [seed, nthreads, sparsify] = GetParam();
  const TrsvFixture fx(seed);
  const TrsvSchedules s = TrsvSchedules::build(fx.f, nthreads, sparsify);
  std::vector<double> x(fx.b.size(), 0.0);
  trsv_levels(fx.f, s, fx.b, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_DOUBLE_EQ(x[i], fx.x_serial[i]);
}

TEST_P(TrsvParallelTest, P2PMatchesSerial) {
  const auto [seed, nthreads, sparsify] = GetParam();
  const TrsvFixture fx(seed);
  const TrsvSchedules s = TrsvSchedules::build(fx.f, nthreads, sparsify);
  std::vector<double> x(fx.b.size(), 0.0);
  trsv_p2p(fx.f, s, fx.b, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_DOUBLE_EQ(x[i], fx.x_serial[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrsvParallelTest,
    ::testing::Combine(::testing::Values(1u, 2u), ::testing::Values(2, 4),
                       ::testing::Bool()));

TEST(TrsvSchedules, BuildStatsSane) {
  const TrsvFixture fx(3);
  const TrsvSchedules s = TrsvSchedules::build(fx.f, 4, true);
  EXPECT_GT(s.fwd_levels.nlevels, 1);
  EXPECT_GT(s.bwd_levels.nlevels, 1);
  EXPECT_LE(s.fwd_plan.reduced_cross_deps, s.fwd_plan.raw_cross_deps);
  EXPECT_TRUE(is_valid_level_schedule(fx.f.lower_deps(), s.fwd_levels));
  EXPECT_TRUE(is_valid_level_schedule(fx.f.upper_deps_mirrored(),
                                      s.bwd_levels));
}

TEST(TrsvSchedules, SparsificationStrictlyHelpsOnFilledFactors) {
  const TrsvFixture fx(4, /*fill=*/2);  // denser deps => more redundancy
  const TrsvSchedules raw = TrsvSchedules::build(fx.f, 8, false);
  const TrsvSchedules sp = TrsvSchedules::build(fx.f, 8, true);
  EXPECT_LT(sp.fwd_plan.reduced_cross_deps, raw.fwd_plan.reduced_cross_deps);
}

// Regression: when the OpenMP runtime delivers fewer threads than the
// schedule was built for (OMP_THREAD_LIMIT, nested parallelism, resource
// caps), rows owned by the absent threads never execute: trsv_p2p spins
// forever in wait_progress when a surviving thread depends on them, or
// silently returns wrong x when it does not. Reproduced here by calling
// trsv_p2p from inside an active parallel region with nesting disabled,
// which caps its inner team at a single thread; the solve must complete
// and still produce the exact serial result via the level-scheduled
// fallback.
TEST(TrsvP2P, CompletesWhenRuntimeCapsThreadsBelowSchedule) {
  const TrsvFixture fx(7);
  const TrsvSchedules s = TrsvSchedules::build(fx.f, 4, true);
  ASSERT_GT(s.fwd_plan.raw_cross_deps, 0u);  // waits exist => would deadlock
  reset_team_shortfall_stats();
  const int saved_levels = omp_get_max_active_levels();
  omp_set_max_active_levels(1);  // inner parallel regions get 1 thread
  std::vector<double> x(fx.b.size(), 0.0);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    trsv_p2p(fx.f, s, fx.b, x);
  }
  omp_set_max_active_levels(saved_levels);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_DOUBLE_EQ(x[i], fx.x_serial[i]);
  // The capped run is observable, never silent: the aborted p2p region
  // and its level-scheduled fallback each record a shortfall event.
  EXPECT_GE(team_shortfall_events(), 2u);
  EXPECT_EQ(team_last_planned(), 4);
  EXPECT_LT(team_last_delivered(), 4);
}

TEST(Trsv, RepeatedSolvesAreDeterministic) {
  const TrsvFixture fx(5);
  const TrsvSchedules s = TrsvSchedules::build(fx.f, 4, true);
  std::vector<double> x1(fx.b.size(), 0.0), x2(fx.b.size(), 0.0);
  trsv_p2p(fx.f, s, fx.b, x1);
  trsv_p2p(fx.f, s, fx.b, x2);
  EXPECT_EQ(x1, x2);
}

}  // namespace
}  // namespace fun3d
