// Property sweeps on the physics and the full spatial linearization: the
// assembled first-order Jacobian must match finite differences of the
// first-order residual over random states, meshes and schemes — the
// strongest end-to-end consistency check available for the implicit side.
#include <gtest/gtest.h>

#include <cmath>

#include "core/boundary.hpp"
#include "core/flux_kernels.hpp"
#include "core/jacobian.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "sparse/spmv.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

struct JacCheck {
  TetMesh mesh;
  FlowFields fields;
  EdgeArrays edges;
  EdgeLoopPlan plan;
  Physics ph;
  FluxScheme scheme;

  JacCheck(unsigned seed, FluxScheme s)
      : mesh(make(seed)),
        fields(mesh),
        edges(mesh),
        plan(build_edge_plan(mesh, EdgeStrategy::kAtomics, 1)),
        scheme(s) {
    fields.set_uniform(ph.freestream);
    Rng rng(seed);
    for (auto& q : fields.q) q += rng.uniform(-0.1, 0.1);
  }
  static TetMesh make(unsigned seed) {
    TetMesh m = generate_box(3, 2, 2);
    shuffle_numbering(m, seed);
    return m;
  }

  /// First-order residual (no reconstruction) — what the Jacobian
  /// linearizes exactly (up to the frozen-|A| approximation).
  void residual(std::span<const double> q, std::span<double> r) {
    std::copy(q.begin(), q.end(), fields.q.begin());
    std::fill(r.begin(), r.end(), 0.0);
    FluxKernelConfig cfg;
    cfg.second_order = false;
    cfg.scheme = scheme;
    compute_edge_fluxes(ph, edges, plan, cfg, fields, r);
    add_boundary_fluxes(ph, mesh, fields, r);
  }
};

class JacobianFdTest
    : public ::testing::TestWithParam<std::tuple<unsigned, FluxScheme>> {};

TEST_P(JacobianFdTest, AssembledJacobianMatchesDirectionalFd) {
  const auto [seed, scheme] = GetParam();
  JacCheck jc(seed, scheme);
  const std::size_t n = static_cast<std::size_t>(jc.mesh.num_vertices) * kNs;

  Bcsr4 jac = make_jacobian_matrix(jc.mesh);
  std::copy(jc.fields.q.begin(), jc.fields.q.end(), jc.fields.q.begin());
  assemble_jacobian(jc.ph, jc.edges, jc.plan, jc.fields, scheme, jac);
  add_boundary_jacobian(jc.ph, jc.mesh, jc.fields, jac);

  AVec<double> q0(jc.fields.q.begin(), jc.fields.q.end());
  AVec<double> r0(n), r1(n), jv(n), fd(n), dir(n);
  jc.residual({q0.data(), n}, {r0.data(), n});

  Rng rng(seed + 7);
  for (int trial = 0; trial < 3; ++trial) {
    for (auto& d : dir) d = rng.uniform(-1, 1);
    const double h = 1e-7;
    AVec<double> qp(q0);
    for (std::size_t i = 0; i < n; ++i) qp[i] += h * dir[i];
    jc.residual({qp.data(), n}, {r1.data(), n});
    for (std::size_t i = 0; i < n; ++i) fd[i] = (r1[i] - r0[i]) / h;
    spmv_serial(jac, {dir.data(), n}, {jv.data(), n});
    // The frozen-|A| Jacobian is not the exact derivative of the Roe flux
    // (|A(qbar)| is held fixed); the directional derivative must still
    // agree to the linearization accuracy.
    double num = 0, den = 0;
    for (std::size_t i = 0; i < n; ++i) {
      num += (jv[i] - fd[i]) * (jv[i] - fd[i]);
      den += fd[i] * fd[i];
    }
    const double tol = scheme == FluxScheme::kRusanov ? 0.08 : 0.12;
    EXPECT_LT(std::sqrt(num / std::max(den, 1e-30)), tol)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobianFdTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(FluxScheme::kRoe,
                                         FluxScheme::kRusanov)));

class FluxPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FluxPropertyTest, RoeFluxIsConservativeAcrossOrientation) {
  // F(qL, qR, n) must equal -F(qR, qL, -n): what leaves one control volume
  // enters the other.
  Rng rng(GetParam());
  Physics ph;
  for (int rep = 0; rep < 50; ++rep) {
    double ql[kNs], qr[kNs], n[3], nm[3], f1[kNs], f2[kNs];
    for (int i = 0; i < kNs; ++i) {
      ql[i] = rng.uniform(-1, 1);
      qr[i] = rng.uniform(-1, 1);
    }
    for (int d = 0; d < 3; ++d) {
      n[d] = rng.uniform(-1, 1);
      nm[d] = -n[d];
    }
    roe_flux(ph, ql, qr, n, f1);
    roe_flux(ph, qr, ql, nm, f2);
    for (int i = 0; i < kNs; ++i) EXPECT_NEAR(f1[i], -f2[i], 1e-11);
  }
}

TEST_P(FluxPropertyTest, DissipationScalesWithJump) {
  Rng rng(GetParam() + 100);
  Physics ph;
  for (int rep = 0; rep < 20; ++rep) {
    double q[kNs], dq[kNs], n[3];
    for (int i = 0; i < kNs; ++i) {
      q[i] = rng.uniform(-1, 1);
      dq[i] = rng.uniform(-0.1, 0.1);
    }
    for (int d = 0; d < 3; ++d) n[d] = rng.uniform(-1, 1);
    double ql[kNs], qr[kNs], f_small[kNs], f_big[kNs], fc[kNs];
    // central part at jump 0
    roe_flux(ph, q, q, n, fc);
    for (int i = 0; i < kNs; ++i) {
      ql[i] = q[i] - 0.5 * dq[i];
      qr[i] = q[i] + 0.5 * dq[i];
    }
    roe_flux(ph, ql, qr, n, f_small);
    for (int i = 0; i < kNs; ++i) {
      ql[i] = q[i] - dq[i];
      qr[i] = q[i] + dq[i];
    }
    roe_flux(ph, ql, qr, n, f_big);
    // Upwind dissipation relative to central grows with the jump size.
    double d_small = 0, d_big = 0;
    for (int i = 0; i < kNs; ++i) {
      double fl[kNs], fr[kNs];
      euler_flux(ph, ql, n, fl);  // big-jump states
      euler_flux(ph, qr, n, fr);
      d_big += std::fabs(f_big[i] - 0.5 * (fl[i] + fr[i]));
    }
    for (int i = 0; i < kNs; ++i) {
      double fl[kNs], fr[kNs];
      double qls[kNs], qrs[kNs];
      for (int j = 0; j < kNs; ++j) {
        qls[j] = q[j] - 0.5 * dq[j];
        qrs[j] = q[j] + 0.5 * dq[j];
      }
      euler_flux(ph, qls, n, fl);
      euler_flux(ph, qrs, n, fr);
      d_small += std::fabs(f_small[i] - 0.5 * (fl[i] + fr[i]));
    }
    EXPECT_GE(d_big, d_small * 0.99);
    (void)fc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluxPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace fun3d
