#include <gtest/gtest.h>

#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/edge_partition.hpp"
#include "parallel/workshare.hpp"

namespace fun3d {
namespace {

TetMesh plan_mesh(unsigned seed = 1) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(m, seed);
  return m;
}

class EdgePlanTest
    : public ::testing::TestWithParam<std::tuple<EdgeStrategy, idx_t>> {};

TEST_P(EdgePlanTest, PlansValidateAcrossStrategiesAndThreads) {
  const auto [strategy, nthreads] = GetParam();
  const TetMesh m = plan_mesh();
  const EdgeLoopPlan p = build_edge_plan(m, strategy, nthreads);
  EXPECT_EQ(p.nthreads, nthreads);
  EXPECT_TRUE(validate_edge_plan(m, p));
  EXPECT_GE(p.processed_edges, p.num_edges);
  EXPECT_GE(p.load_imbalance, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EdgePlanTest,
    ::testing::Combine(
        ::testing::Values(EdgeStrategy::kAtomics,
                          EdgeStrategy::kReplicationNatural,
                          EdgeStrategy::kReplicationPartitioned,
                          EdgeStrategy::kColoring),
        ::testing::Values(1, 2, 4, 8, 20)));

TEST(EdgePlan, PaperReplicationOverheadShape) {
  // Paper §V-A: natural-order vertex split at 20 threads => ~41% redundant
  // compute; METIS-style partitioning => ~4%. The absolute partitioned
  // overhead shrinks with subdomain volume (surface/volume), so on this
  // test-size mesh assert the ordering and the mesh-size trend.
  TetMesh m = plan_mesh(3);
  const EdgeLoopPlan nat =
      build_edge_plan(m, EdgeStrategy::kReplicationNatural, 20);
  const EdgeLoopPlan part =
      build_edge_plan(m, EdgeStrategy::kReplicationPartitioned, 20);
  EXPECT_GT(nat.replication_overhead, 0.3);  // scrambled numbering hurts
  EXPECT_LT(part.replication_overhead, nat.replication_overhead / 2.5);
  EXPECT_LT(part.replication_overhead, 0.3);

  // Trend: a larger mesh gives a smaller partitioned overhead (towards the
  // paper's 4% at Mesh-C size).
  TetMesh big = generate_wing_bump(preset_params(MeshPreset::kMeshC, 8.0));
  shuffle_numbering(big, 3);
  const EdgeLoopPlan part_big =
      build_edge_plan(big, EdgeStrategy::kReplicationPartitioned, 20);
  TetMesh small = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(small, 3);
  const EdgeLoopPlan part_small =
      build_edge_plan(small, EdgeStrategy::kReplicationPartitioned, 20);
  EXPECT_LT(part_big.replication_overhead, part_small.replication_overhead);
}

TEST(EdgePlan, RcmImprovesNaturalReplication) {
  // After RCM the natural-order split becomes far less wasteful — the
  // reason the paper reorders before threading.
  TetMesh shuffled = plan_mesh(4);
  const EdgeLoopPlan bad =
      build_edge_plan(shuffled, EdgeStrategy::kReplicationNatural, 8);
  rcm_reorder(shuffled);
  const EdgeLoopPlan good =
      build_edge_plan(shuffled, EdgeStrategy::kReplicationNatural, 8);
  EXPECT_LT(good.replication_overhead, bad.replication_overhead / 2);
}

TEST(EdgePlan, AtomicsHasNoReplication) {
  const TetMesh m = plan_mesh(5);
  const EdgeLoopPlan p = build_edge_plan(m, EdgeStrategy::kAtomics, 8);
  EXPECT_EQ(p.replication_overhead, 0.0);
  EXPECT_EQ(p.processed_edges, p.num_edges);
  EXPECT_LT(p.load_imbalance, 1.01);
}

TEST(EdgePlan, ColoringCountsBarriers) {
  const TetMesh m = plan_mesh(6);
  const EdgeLoopPlan p = build_edge_plan(m, EdgeStrategy::kColoring, 4);
  EXPECT_GT(p.num_barriers, 10);  // degree ~14 mesh: many colour classes
  std::size_t total = 0;
  for (const auto& cls : p.color_classes) total += cls.size();
  EXPECT_EQ(total, m.edges.size());
}

TEST(EdgePlan, StrategyNames) {
  EXPECT_STREQ(edge_strategy_name(EdgeStrategy::kAtomics), "atomics");
  EXPECT_STREQ(edge_strategy_name(EdgeStrategy::kReplicationPartitioned),
               "replication-metis");
}

TEST(Workshare, StaticChunksTile) {
  idx_t covered = 0;
  for (idx_t t = 0; t < 7; ++t) {
    const auto [b, e] = static_chunk(100, t, 7);
    covered += e - b;
    EXPECT_LE(b, e);
  }
  EXPECT_EQ(covered, 100);
}

TEST(Workshare, ParallelSumMatchesSerial) {
  const double s =
      parallel_sum(1000, 4, [](idx_t i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(s, 999.0 * 1000.0 / 2.0);
}

}  // namespace
}  // namespace fun3d
