#include <gtest/gtest.h>

#include <omp.h>

#include <cmath>

#include "core/gradients.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "parallel/team.hpp"

namespace fun3d {
namespace {

/// Sets q_s = a_s + g_s . x (affine fields with known gradients).
void set_affine(const TetMesh& m, FlowFields& f, const double (*g)[3],
                const double* a) {
  for (idx_t v = 0; v < f.nv; ++v) {
    const std::size_t vs = static_cast<std::size_t>(v);
    for (int s = 0; s < kNs; ++s)
      f.q[vs * kNs + static_cast<std::size_t>(s)] =
          a[s] + g[s][0] * m.x[vs] + g[s][1] * m.y[vs] + g[s][2] * m.z[vs];
  }
}

TEST(Gradients, ExactForAffineFieldsInInterior) {
  // Green-Gauss with midpoint edge values is exact for affine fields on
  // interior median-dual volumes; boundary cells retain the well-known
  // midpoint-rule closure error (bounded, first-order), which is why the
  // solver's reconstruction only relies on gradient consistency there.
  TetMesh m = generate_box(4, 3, 3);
  std::vector<char> boundary(static_cast<std::size_t>(m.num_vertices), 0);
  for (const auto& bf : m.bfaces)
    for (idx_t v : bf.v) boundary[static_cast<std::size_t>(v)] = 1;
  FlowFields f(m);
  const double g[kNs][3] = {
      {1.0, 2.0, -1.0}, {0.5, 0.0, 3.0}, {-2.0, 1.0, 0.0}, {0.0, -1.5, 2.5}};
  const double a[kNs] = {1, -2, 3, 0};
  set_affine(m, f, g, a);
  EdgeArrays e(m);
  const EdgeLoopPlan plan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, plan, f);
  double gradmag = 0;
  for (int s = 0; s < kNs; ++s)
    for (int d = 0; d < 3; ++d) gradmag = std::max(gradmag, std::abs(g[s][d]));
  for (idx_t v = 0; v < f.nv; ++v)
    for (int s = 0; s < kNs; ++s)
      for (int d = 0; d < 3; ++d) {
        const double got = f.grad[static_cast<std::size_t>(v) * kGradStride +
                                  static_cast<std::size_t>(s * 3 + d)];
        if (boundary[static_cast<std::size_t>(v)]) {
          EXPECT_NEAR(got, g[s][d], gradmag)  // bounded closure error
              << "v=" << v << " s=" << s << " d=" << d;
        } else {
          EXPECT_NEAR(got, g[s][d], 1e-10)
              << "v=" << v << " s=" << s << " d=" << d;
        }
      }
}

TEST(Gradients, ZeroForConstantField) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  FlowFields f(m);
  f.set_uniform({3.0, -1.0, 2.0, 0.5});
  EdgeArrays e(m);
  const EdgeLoopPlan plan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, plan, f);
  for (double gv : f.grad) EXPECT_NEAR(gv, 0.0, 1e-11);
}

class GradStrategyTest : public ::testing::TestWithParam<
                             std::tuple<EdgeStrategy, idx_t>> {};

TEST_P(GradStrategyTest, AllStrategiesMatchSerial) {
  const auto [strategy, nthreads] = GetParam();
  TetMesh m = generate_box(4, 4, 3);
  shuffle_numbering(m, 3);
  FlowFields f(m);
  const double g[kNs][3] = {
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  const double a[kNs] = {0, 0, 0, 0};
  set_affine(m, f, g, a);
  EdgeArrays e(m);

  FlowFields fref(m);
  set_affine(m, fref, g, a);
  const EdgeLoopPlan serial = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, serial, fref);

  const EdgeLoopPlan plan = build_edge_plan(m, strategy, nthreads);
  compute_gradients(m, e, plan, f);
  for (std::size_t i = 0; i < f.grad.size(); ++i)
    EXPECT_NEAR(f.grad[i], fref.grad[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GradStrategyTest,
    ::testing::Combine(
        ::testing::Values(EdgeStrategy::kAtomics,
                          EdgeStrategy::kReplicationNatural,
                          EdgeStrategy::kReplicationPartitioned,
                          EdgeStrategy::kColoring),
        ::testing::Values(2, 4)));

// Regression (ROADMAP "edge-loop thread shortfall"): the gradient edge
// loops must stay correct when the runtime grants fewer threads than the
// plan was built for (nested-region recipe; matrix in test_team.cpp).
TEST_P(GradStrategyTest, CappedTeamStillAccumulatesEveryEdge) {
  const auto [strategy, nthreads] = GetParam();
  TetMesh m = generate_box(4, 4, 3);
  shuffle_numbering(m, 3);
  const double g[kNs][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  const double a[kNs] = {0, 0, 0, 0};
  EdgeArrays e(m);

  FlowFields fref(m);
  set_affine(m, fref, g, a);
  const EdgeLoopPlan serial = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, serial, fref);

  FlowFields f(m);
  set_affine(m, f, g, a);
  const EdgeLoopPlan plan = build_edge_plan(m, strategy, nthreads);
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);  // inner parallel regions get 1 thread
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    compute_gradients(m, e, plan, f);
  }
  omp_set_max_active_levels(saved);
  for (std::size_t i = 0; i < f.grad.size(); ++i)
    ASSERT_NEAR(f.grad[i], fref.grad[i], 1e-11) << "i=" << i;
}

// The inverse-dual-volume node loop rides parallel_ranges: a capped team
// must be counted as a shortfall and produce bitwise-identical gradients
// (replication edge loops are deterministic; the node loop is elementwise).
TEST(GradientsShortfall, CappedTeamBitwiseIdenticalAndCounted) {
  TetMesh m = generate_box(4, 4, 3);
  shuffle_numbering(m, 3);
  const double g[kNs][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  const double a[kNs] = {0, 0, 0, 0};
  EdgeArrays e(m);
  const EdgeLoopPlan plan =
      build_edge_plan(m, EdgeStrategy::kReplicationNatural, 4);

  FlowFields fref(m);
  set_affine(m, fref, g, a);
  compute_gradients(m, e, plan, fref);

  FlowFields f(m);
  set_affine(m, f, g, a);
  reset_team_shortfall_stats();
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    compute_gradients(m, e, plan, f);
  }
  omp_set_max_active_levels(saved);

  EXPECT_GT(team_shortfall_events(), 0u);
  EXPECT_EQ(team_last_planned(), 4);
  EXPECT_EQ(team_last_delivered(), 1);
  for (std::size_t i = 0; i < f.grad.size(); ++i)
    ASSERT_EQ(f.grad[i], fref.grad[i]) << "i=" << i;
  reset_team_shortfall_stats();
}

TEST(Gradients, FlopsPerEdgePositive) {
  EXPECT_GT(gradient_flops_per_edge(), 0.0);
}

}  // namespace
}  // namespace fun3d
