#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/levels.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

/// Builds a lower-triangular dependency structure from explicit (row, dep)
/// pairs. deps(i) must all be < i.
CsrGraph deps_from_pairs(idx_t n,
                         const std::vector<std::pair<idx_t, idx_t>>& pairs) {
  CsrGraph g;
  g.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto [i, j] : pairs) g.rowptr[static_cast<std::size_t>(i) + 1]++;
  for (std::size_t k = 1; k < g.rowptr.size(); ++k)
    g.rowptr[k] += g.rowptr[k - 1];
  g.col.resize(pairs.size());
  std::vector<idx_t> cur(g.rowptr.begin(), g.rowptr.end() - 1);
  for (auto [i, j] : pairs) g.col[static_cast<std::size_t>(cur[i]++)] = j;
  for (idx_t i = 0; i < n; ++i)
    std::sort(g.col.begin() + g.rowptr[i], g.col.begin() + g.rowptr[i + 1]);
  return g;
}

/// Random lower-triangular DAG: each row depends on up to `maxdeps`
/// earlier rows.
CsrGraph random_dag(idx_t n, int maxdeps, unsigned seed) {
  Rng rng(seed);
  std::vector<std::pair<idx_t, idx_t>> pairs;
  for (idx_t i = 1; i < n; ++i) {
    const int k = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(maxdeps) + 1));
    std::set<idx_t> ds;
    for (int d = 0; d < k; ++d)
      ds.insert(static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(i))));
    for (idx_t j : ds) pairs.emplace_back(i, j);
  }
  return deps_from_pairs(n, pairs);
}

TEST(Levels, ChainHasOneRowPerLevel) {
  const CsrGraph d = deps_from_pairs(4, {{1, 0}, {2, 1}, {3, 2}});
  const auto lv = compute_levels(d);
  EXPECT_EQ(lv, (std::vector<idx_t>{0, 1, 2, 3}));
  const LevelSchedule s = build_level_schedule(d);
  EXPECT_EQ(s.nlevels, 4);
  EXPECT_TRUE(is_valid_level_schedule(d, s));
}

TEST(Levels, IndependentRowsShareLevelZero) {
  const CsrGraph d = deps_from_pairs(5, {});
  const LevelSchedule s = build_level_schedule(d);
  EXPECT_EQ(s.nlevels, 1);
  EXPECT_EQ(s.level(0).size(), 5u);
}

TEST(Levels, DiamondDag) {
  // 0 -> {1, 2} -> 3
  const CsrGraph d = deps_from_pairs(4, {{1, 0}, {2, 0}, {3, 1}, {3, 2}});
  const auto lv = compute_levels(d);
  EXPECT_EQ(lv, (std::vector<idx_t>{0, 1, 1, 2}));
}

class RandomDagTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomDagTest, ScheduleValidOnRandomDags) {
  const CsrGraph d = random_dag(200, 4, GetParam());
  const LevelSchedule s = build_level_schedule(d);
  EXPECT_TRUE(is_valid_level_schedule(d, s));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Parallelism, ChainIsSerial) {
  const CsrGraph d = deps_from_pairs(4, {{1, 0}, {2, 1}, {3, 2}});
  EXPECT_NEAR(dag_parallelism(d), 1.0, 0.5);  // flops grow along the chain
}

TEST(Parallelism, IndependentRowsFullyParallel) {
  const CsrGraph d = deps_from_pairs(8, {});
  EXPECT_DOUBLE_EQ(dag_parallelism(d), 8.0);
}

TEST(Parallelism, UniformCostsChain) {
  const CsrGraph d = deps_from_pairs(4, {{1, 0}, {2, 1}, {3, 2}});
  const std::vector<double> cost{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(dag_parallelism(d, cost), 1.0);
  EXPECT_DOUBLE_EQ(dag_critical_path(d, cost), 4.0);
}

TEST(Parallelism, DenserDependencyReducesParallelism) {
  // The paper's Table II effect: more fill (denser deps) => less parallelism.
  const CsrGraph sparse = random_dag(300, 2, 11);
  const CsrGraph dense = random_dag(300, 8, 11);
  const std::vector<double> unit(300, 1.0);
  EXPECT_GT(dag_parallelism(sparse, unit), dag_parallelism(dense, unit));
}

}  // namespace
}  // namespace fun3d
