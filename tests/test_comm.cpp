#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "comm/hybrid_solver.hpp"
#include "core/profile.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"

namespace fun3d::comm {
namespace {

TetMesh comm_mesh(unsigned seed = 1) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, seed);
  rcm_reorder(m);
  return m;
}

SolverConfig solver_cfg() {
  SolverConfig c = SolverConfig::optimized(2);
  c.ptc.max_steps = 30;
  c.ptc.rtol = 1e-8;
  return c;
}

HybridConfig hybrid_cfg(int nranks, int threads = 2) {
  HybridConfig c;
  c.nranks = nranks;
  c.threads_per_rank = threads;
  c.solver = solver_cfg();
  return c;
}

// ---------------------------------------------------------------- runtime

TEST(RankRuntime, AllreduceIsPlannedOrderSumOnEveryRank) {
  constexpr int kRanks = 4;
  constexpr std::size_t kWidth = 3;
  RankRuntime rt(kRanks);
  // Values whose sum depends on association order, so a wrong combine
  // order shows up bitwise.
  auto value = [](int r, std::size_t i) {
    return 1.0 / (3.0 * (r + 1)) + 1e-13 * static_cast<double>(i + 1) / 7.0;
  };
  double expected[kWidth];
  for (std::size_t i = 0; i < kWidth; ++i) {
    double acc = 0.0;
    for (int r = 0; r < kRanks; ++r) acc += value(r, i);  // rank order
    expected[i] = acc;
  }
  std::vector<std::array<double, kWidth>> got(kRanks);
  std::vector<CommStats> stats(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r)
    threads.emplace_back([&, r] {
      for (int round = 0; round < 5; ++round) {
        std::array<double, kWidth> v;
        for (std::size_t i = 0; i < kWidth; ++i)
          v[i] = value(r, i);
        rt.allreduce_sum(r, v.data(), kWidth,
                         stats[static_cast<std::size_t>(r)]);
        got[static_cast<std::size_t>(r)] = v;
      }
    });
  for (auto& t : threads) t.join();
  for (int r = 0; r < kRanks; ++r)
    for (std::size_t i = 0; i < kWidth; ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(r)][i], expected[i])
          << "rank " << r << " component " << i;
  // 5 allreduces, each costing two barrier rounds.
  EXPECT_EQ(stats[0].allreduces, 5u);
  EXPECT_EQ(stats[0].barriers, 10u);
}

TEST(RankRuntime, BarrierSeparatesPhases) {
  constexpr int kRanks = 3;
  constexpr int kRounds = 20;
  RankRuntime rt(kRanks);
  std::array<std::atomic<int>, kRanks> phase{};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r)
    threads.emplace_back([&, r] {
      CommStats st;
      for (int k = 0; k < kRounds; ++k) {
        phase[static_cast<std::size_t>(r)].store(k + 1,
                                                 std::memory_order_relaxed);
        rt.barrier(r, st);
        // After the barrier every rank must have entered round k+1.
        for (int o = 0; o < kRanks; ++o)
          if (phase[static_cast<std::size_t>(o)].load(
                  std::memory_order_relaxed) < k + 1)
            violations.fetch_add(1);
        rt.barrier(r, st);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

// ------------------------------------------------------------ halo plans

TEST(HaloPlans, SymmetricAndConsistentWithDecomposition) {
  TetMesh m = comm_mesh(3);
  const Decomposition d = decompose(m, 4, /*use_graph_partitioner=*/true);
  const std::vector<RankHalo> plans = build_halo_plans(m, d);
  std::uint64_t ghosts = 0;
  for (const RankHalo& h : plans)
    ghosts += static_cast<std::uint64_t>(h.num_ghosts);
  EXPECT_EQ(ghosts, d.total_ghosts());
  for (const RankHalo& hs : plans) {
    idx_t covered = 0;
    for (const RankNeighbor& nb : hs.neighbors) {
      covered += nb.recv_count;
      // What s receives from r is exactly what r packs for s, in order.
      const RankHalo& hr = plans[static_cast<std::size_t>(nb.rank)];
      const auto it = std::find_if(
          hr.neighbors.begin(), hr.neighbors.end(),
          [&](const RankNeighbor& n) { return n.rank == hs.rank; });
      ASSERT_NE(it, hr.neighbors.end());
      ASSERT_EQ(static_cast<idx_t>(it->send_locals.size()), nb.recv_count);
      for (idx_t i = 0; i < nb.recv_count; ++i) {
        const idx_t g = hs.ghost_globals[static_cast<std::size_t>(
            nb.recv_begin - hs.num_owned + i)];
        EXPECT_EQ(g, hr.row_begin + it->send_locals[static_cast<std::size_t>(i)]);
      }
    }
    EXPECT_EQ(covered, hs.num_ghosts);
  }
}

TEST(HaloPlans, LocalDomainsPartitionEdgesAndCarryBoundary) {
  TetMesh m = comm_mesh(5);
  const std::size_t global_bfaces = m.bfaces.size();
  const Decomposition d = decompose(m, 4, true);
  std::vector<RankHalo> plans = build_halo_plans(m, d);
  std::size_t bfaces_owned = 0;
  for (int r = 0; r < 4; ++r) {
    const LocalDomain dom =
        build_local_domain(m, std::move(plans[static_cast<std::size_t>(r)]));
    const idx_t no = dom.halo.num_owned;
    EXPECT_EQ(dom.interior_shell.edges.size() + dom.cut_shell.edges.size(),
              dom.mesh.edges.size());
    for (const auto& [a, b] : dom.interior_shell.edges) {
      EXPECT_LT(a, no);
      EXPECT_LT(b, no);
    }
    for (const auto& [a, b] : dom.cut_shell.edges)
      EXPECT_TRUE((a < no) != (b < no));  // exactly one owned endpoint
    for (const BoundaryFace& f : dom.mesh.bfaces) {
      int owned = 0;
      for (const idx_t v : f.v) owned += v < no ? 1 : 0;
      EXPECT_GE(owned, 1);
      if (f.v[0] < no) ++bfaces_owned;  // count each face at its v0 owner
    }
    EXPECT_EQ(dom.mesh.num_vertices, dom.halo.num_local());
  }
  // Every global boundary face appears at exactly one rank owning its v0.
  EXPECT_EQ(bfaces_owned, global_bfaces);
}

TEST(HaloExchange, GhostsReceiveOwnersValuesExactly) {
  TetMesh m = comm_mesh(7);
  constexpr int kRanks = 4, kComp = 3;
  const Decomposition d = decompose(m, kRanks, true);
  std::vector<RankHalo> plans = build_halo_plans(m, d);
  RankRuntime rt(kRanks);
  std::size_t max_send = 0;
  for (const RankHalo& p : plans) max_send = std::max(max_send, p.max_send);
  rt.reserve_mailboxes(max_send * kComp);
  // Exactly-representable arithmetic: the value must be bit-identical when
  // recomputed at a different call site (FP contraction would otherwise
  // fuse the two inlined copies differently).
  auto truth = [](idx_t g, int c) { return g * 1.5 + 0.25 * (c + 1); };
  std::vector<LocalDomain> doms;
  for (int r = 0; r < kRanks; ++r)
    doms.push_back(
        build_local_domain(m, std::move(plans[static_cast<std::size_t>(r)])));
  std::vector<std::vector<double>> fields(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const RankHalo& h = doms[static_cast<std::size_t>(r)].halo;
    auto& f = fields[static_cast<std::size_t>(r)];
    f.assign(static_cast<std::size_t>(h.num_local()) * kComp, -1.0);
    for (idx_t v = 0; v < h.num_owned; ++v)
      for (int c = 0; c < kComp; ++c)
        f[static_cast<std::size_t>(v) * kComp + static_cast<std::size_t>(c)] =
            truth(h.row_begin + v, c);
  }
  std::vector<CommStats> stats(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r)
    threads.emplace_back([&, r] {
      HaloExchange hx(rt, doms[static_cast<std::size_t>(r)].halo);
      auto& f = fields[static_cast<std::size_t>(r)];
      // Two rounds: the second reuses the mailboxes (epoch protocol).
      for (int round = 0; round < 2; ++round)
        hx.exchange({f.data(), f.size()}, kComp,
                    stats[static_cast<std::size_t>(r)]);
    });
  for (auto& t : threads) t.join();
  for (int r = 0; r < kRanks; ++r) {
    const RankHalo& h = doms[static_cast<std::size_t>(r)].halo;
    for (idx_t i = 0; i < h.num_ghosts; ++i) {
      const idx_t g = h.ghost_globals[static_cast<std::size_t>(i)];
      for (int c = 0; c < kComp; ++c)
        EXPECT_EQ(fields[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(h.num_owned + i) * kComp +
                         static_cast<std::size_t>(c)],
                  truth(g, c));
    }
    // Volume accounting: 2 rounds x kComp components x this rank's ghosts.
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].packed_cells,
              2u * kComp * static_cast<std::uint64_t>(h.num_ghosts));
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].halo_bytes,
              stats[static_cast<std::size_t>(r)].packed_cells * 8u);
  }
}

// ---------------------------------------------------------- hybrid solver

TEST(HybridSolver, OneRankIsBitwiseIdenticalToFlowSolver) {
  HybridSolver hybrid(comm_mesh(2), hybrid_cfg(1, 2));
  SolverConfig sc = solver_cfg();
  sc.nthreads = 2;
  FlowSolver plain(comm_mesh(2), sc);
  const SolveStats hs = hybrid.solve();
  const SolveStats ps = plain.solve();
  EXPECT_TRUE(hs.converged);
  EXPECT_TRUE(ps.converged);
  ASSERT_EQ(hs.steps, ps.steps);
  ASSERT_EQ(hs.residual_history.size(), ps.residual_history.size());
  for (std::size_t i = 0; i < hs.residual_history.size(); ++i)
    EXPECT_EQ(hs.residual_history[i], ps.residual_history[i]);
  const auto q = hybrid.solution();
  ASSERT_EQ(q.size(), plain.fields().q.size());
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(q[i], plain.fields().q[i]) << "entry " << i;
}

class HybridRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(HybridRankSweep, ConvergesToTheFlowSolverSteadyState) {
  const int ranks = GetParam();
  HybridSolver hybrid(comm_mesh(2), hybrid_cfg(ranks, 2));
  SolverConfig sc = solver_cfg();
  sc.nthreads = 2;
  FlowSolver plain(comm_mesh(2), sc);
  const SolveStats hs = hybrid.solve();
  const SolveStats ps = plain.solve();
  EXPECT_TRUE(hs.converged) << ranks << " ranks";
  EXPECT_TRUE(ps.converged);
  // Same steady state up to the convergence tolerance, mapped through the
  // decomposition's renumbering (old -> new).
  const auto& perm = hybrid.decomposition().perm;
  const auto q = hybrid.solution();
  double diff = 0, norm = 0;
  for (std::size_t v = 0; v < perm.size(); ++v)
    for (int c = 0; c < kNs; ++c) {
      const double a =
          q[static_cast<std::size_t>(perm[v]) * kNs +
            static_cast<std::size_t>(c)];
      const double b =
          plain.fields().q[v * kNs + static_cast<std::size_t>(c)];
      diff += (a - b) * (a - b);
      norm += b * b;
    }
  EXPECT_LT(std::sqrt(diff / norm), 1e-6);

  // Communication accounting closes exactly.
  const CommReport& cr = hybrid.comm_report();
  EXPECT_EQ(cr.ranks, ranks);
  EXPECT_EQ(cr.total_ghosts, hybrid.decomposition().total_ghosts());
  EXPECT_EQ(cr.halo_bytes, 8u * cr.packed_cells);
  EXPECT_EQ(cr.packed_cells, cr.exchange_components * cr.total_ghosts);
  EXPECT_GT(cr.exchanges, 0u);
  EXPECT_GT(cr.allreduces, 0u);
  EXPECT_GE(cr.overlap_fraction, 0.0);
  EXPECT_LE(cr.overlap_fraction, 1.0);
  EXPECT_GT(cr.overlap_seconds, 0.0);
  EXPECT_GT(cr.exchanges_per_linear_iteration, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HybridRankSweep, ::testing::Values(2, 4, 8));

TEST(HybridSolver, RepeatedSolvesAreBitwiseReproducible) {
  HybridSolver a(comm_mesh(4), hybrid_cfg(4, 2));
  HybridSolver b(comm_mesh(4), hybrid_cfg(4, 2));
  const SolveStats sa = a.solve();
  const SolveStats sb = b.solve();
  ASSERT_EQ(sa.steps, sb.steps);
  ASSERT_EQ(sa.residual_history.size(), sb.residual_history.size());
  for (std::size_t i = 0; i < sa.residual_history.size(); ++i)
    EXPECT_EQ(sa.residual_history[i], sb.residual_history[i]);
  const auto qa = a.solution(), qb = b.solution();
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_EQ(qa[i], qb[i]);
}

TEST(HybridSolver, OverlapOffIsBitwiseIdenticalToOverlapOn) {
  HybridConfig on = hybrid_cfg(2, 2);
  HybridConfig off = hybrid_cfg(2, 2);
  off.overlap_halo = false;
  HybridSolver a(comm_mesh(6), on);
  HybridSolver b(comm_mesh(6), off);
  const SolveStats sa = a.solve();
  const SolveStats sb = b.solve();
  // The split-phase exchange changes WHEN data moves, never the numbers:
  // interior fluxes accumulate before cut fluxes on both paths.
  ASSERT_EQ(sa.steps, sb.steps);
  for (std::size_t i = 0; i < sa.residual_history.size(); ++i)
    EXPECT_EQ(sa.residual_history[i], sb.residual_history[i]);
  const auto qa = a.solution(), qb = b.solution();
  for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_EQ(qa[i], qb[i]);
  EXPECT_GT(a.comm_report().overlap_seconds, 0.0);
  EXPECT_EQ(b.comm_report().overlap_seconds, 0.0);
}

TEST(HybridSolver, AdditiveSchwarzConvergesAndExchangesMore) {
  HybridConfig bj = hybrid_cfg(4, 1);
  HybridConfig as = hybrid_cfg(4, 1);
  as.precond_scope = PrecondScope::kAdditiveSchwarz;
  HybridSolver sb(comm_mesh(2), bj);
  HybridSolver sa(comm_mesh(2), as);
  const SolveStats rb = sb.solve();
  const SolveStats ra = sa.solve();
  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(ra.converged);
  // The AS scope pays one extra exchange per preconditioner application.
  EXPECT_GT(sa.comm_report().exchanges_per_linear_iteration,
            sb.comm_report().exchanges_per_linear_iteration);
}

TEST(HybridSolver, FillReportEmitsAValidCommFamily) {
  HybridSolver hybrid(comm_mesh(2), hybrid_cfg(2, 1));
  const SolveStats st = hybrid.solve();
  PerfReport report = PerfReport::begin("test_comm", "hybrid smoke");
  hybrid.fill_report(report);
  report.counters["steps"] = static_cast<std::uint64_t>(st.steps);
  const std::vector<std::string> problems = validate_report(report.to_json());
  EXPECT_TRUE(problems.empty())
      << "first problem: " << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(report.params.at("comm.ranks"), 2.0);
  EXPECT_GT(report.counters.at("comm.halo_bytes"), 0u);
}

TEST(HybridSolver, RejectsUnsupportedConfigurations) {
  auto expect_throw = [](HybridConfig c) {
    EXPECT_THROW(HybridSolver(comm_mesh(1), c), std::invalid_argument);
  };
  HybridConfig c = hybrid_cfg(0);
  expect_throw(c);
  c = hybrid_cfg(2);
  c.solver.gradient_method = GradientMethod::kLeastSquares;
  expect_throw(c);
  c = hybrid_cfg(2);
  c.solver.krylov = KrylovMethod::kBicgstab;
  expect_throw(c);
  c = hybrid_cfg(2);
  c.solver.matrix_free = false;
  expect_throw(c);
  c = hybrid_cfg(2);
  c.solver.flux.layout = VertexLayout::kSoA;
  expect_throw(c);
  c = hybrid_cfg(2);
  c.solver.subdomains = 2;
  expect_throw(c);
  // Checkpointing and fault injection are rank-count-agnostic now: the
  // unified driver runs them on every rank master.
  c = hybrid_cfg(2);
  c.solver.resilience.checkpoint_every = 1;
  c.solver.resilience.checkpoint_path = "x.ckpt";
  c.solver.resilience.fault.nan_update_step = 0;
  EXPECT_NO_THROW(HybridSolver(comm_mesh(1), c));
  // The single-rank-only knobs are fine at one rank (delegate path).
  HybridConfig ok = hybrid_cfg(1);
  ok.solver.gradient_method = GradientMethod::kLeastSquares;
  EXPECT_NO_THROW(HybridSolver(comm_mesh(1), ok));
}

}  // namespace
}  // namespace fun3d::comm
