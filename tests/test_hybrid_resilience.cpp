// Multi-rank resilience + checkpoint/restart (DESIGN.md §8/§10): the
// unified NewtonDriver must take the SAME recovery decisions on every rank
// master of a hybrid solve as it does on a single rank — every verdict is
// an allreduce result — and a killed-and-restarted P-rank run must resume
// bitwise-identically to the uninterrupted one from rank 0's gathered
// checkpoint. The `shortfall` CI matrix reruns this binary under
// OMP_THREAD_LIMIT caps; nothing here may depend on delivered team width.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "comm/hybrid_solver.hpp"
#include "core/profile.hpp"
#include "core/resilience.hpp"
#include "core/vtk_io.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"

namespace fun3d::comm {
namespace {

TetMesh hybrid_mesh(unsigned seed = 21) {
  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kTiny));
  shuffle_numbering(m, seed);
  rcm_reorder(m);
  return m;
}

HybridConfig hybrid_cfg(int nranks) {
  HybridConfig c;
  c.nranks = nranks;
  c.threads_per_rank = 2;
  c.solver = SolverConfig::optimized(2);
  c.solver.ptc.max_steps = 30;
  c.solver.ptc.rtol = 1e-8;
  return c;
}

class CkptFile {
 public:
  explicit CkptFile(const char* name)
      : path_(std::string(::testing::TempDir()) + name) {}
  ~CkptFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Runs a hybrid solve at `nranks` with `mutate` applied to the config and
/// returns the stats; mesh/seed fixed so rank counts are comparable.
template <typename F>
SolveStats injected_hybrid_run(int nranks, F mutate) {
  HybridConfig cfg = hybrid_cfg(nranks);
  mutate(cfg.solver);
  HybridSolver solver(hybrid_mesh(), cfg);
  SolveStats st = solver.solve();
  EXPECT_TRUE(all_finite(solver.solution())) << nranks << " ranks";
  return st;
}

// ---- rank-count-invariant recovery: the same fault plan must produce the
// ---- same reject/backoff/retry trajectory at 1, 2, and 4 ranks ----

TEST(HybridResilience, NanResidualRecoveryIsRankCountInvariant) {
  for (const int nranks : {1, 2, 4}) {
    const SolveStats st = injected_hybrid_run(nranks, [](SolverConfig& c) {
      c.resilience.fault.nan_residual_step = 2;
    });
    EXPECT_TRUE(st.converged) << nranks << " ranks";
    EXPECT_EQ(st.failure, SolveFailure::kNone) << nranks << " ranks";
    const ResilienceStats& rs = st.resilience;
    EXPECT_EQ(rs.injected_faults, 1u) << nranks << " ranks";
    EXPECT_EQ(rs.rejected_steps, 1u) << nranks << " ranks";
    EXPECT_EQ(rs.nonfinite_residual_rejects, 1u) << nranks << " ranks";
    EXPECT_EQ(rs.retries, 1u) << nranks << " ranks";
    EXPECT_EQ(rs.backoffs, 1u) << nranks << " ranks";
  }
}

TEST(HybridResilience, NanUpdateIsCaughtBeforeTouchingAnyRanksState) {
  // The poisoned du entry lives on ONE rank; the allreduced finiteness
  // flag must reject it on ALL ranks before apply_update.
  for (const int nranks : {2, 4}) {
    const SolveStats st = injected_hybrid_run(nranks, [](SolverConfig& c) {
      c.resilience.fault.nan_update_step = 2;
    });
    EXPECT_TRUE(st.converged) << nranks << " ranks";
    EXPECT_EQ(st.resilience.nonfinite_update_rejects, 1u) << nranks;
    EXPECT_EQ(st.resilience.rejected_steps, 1u) << nranks;
    EXPECT_EQ(st.resilience.retries, 1u) << nranks;
  }
}

TEST(HybridResilience, ForcedBreakdownRecoveryIsRankCountInvariant) {
  for (const int nranks : {2, 4}) {
    const SolveStats st = injected_hybrid_run(nranks, [](SolverConfig& c) {
      c.resilience.fault.breakdown_step = 1;
    });
    EXPECT_TRUE(st.converged) << nranks << " ranks";
    EXPECT_EQ(st.resilience.breakdown_rejects, 1u) << nranks;
    EXPECT_EQ(st.resilience.rejected_steps, 1u) << nranks;
  }
}

TEST(HybridResilience, ExhaustedRetriesAbortInLockstepAcrossRanks) {
  const SolveStats st = injected_hybrid_run(2, [](SolverConfig& c) {
    c.resilience.fault.breakdown_step = 1;
    c.resilience.fault.repeat = -1;  // poison every attempt
  });
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.failure, SolveFailure::kStepRetriesExhausted);
  EXPECT_NE(st.failure_detail.find("step 1"), std::string::npos);
  EXPECT_EQ(st.resilience.rejected_steps, 5u);  // max_retries = 4
  EXPECT_EQ(st.resilience.retries, 4u);
}

TEST(HybridResilience, MultiRankReportCarriesResilienceCounters) {
  HybridConfig cfg = hybrid_cfg(2);
  cfg.solver.resilience.fault.nan_residual_step = 2;
  HybridSolver solver(hybrid_mesh(), cfg);
  const SolveStats st = solver.solve();
  ASSERT_TRUE(st.converged);
  PerfReport report;
  solver.fill_report(report, "h.");
  EXPECT_EQ(report.counters.at("h.resilience.injected_faults"), 1u);
  EXPECT_EQ(report.counters.at("h.resilience.rejected_steps"), 1u);
  EXPECT_EQ(report.counters.at("h.resilience.retries"), 1u);
}

// ---- rank-aware checkpoint / restart: bitwise continuation at P ranks ----

TEST(HybridResilience, KilledAndRestartedFourRankRunMatchesUninterrupted) {
  HybridConfig cfg = hybrid_cfg(4);
  cfg.solver.resilience.checkpoint_every = 2;

  // Run A: uninterrupted to convergence.
  CkptFile ckpt_a("hybrid_resil_a.ckpt");
  cfg.solver.resilience.checkpoint_path = ckpt_a.path();
  HybridSolver a(hybrid_mesh(), cfg);
  const SolveStats st_a = a.solve();
  ASSERT_TRUE(st_a.converged);
  ASSERT_GT(st_a.resilience.checkpoints_written, 1u);

  // Run B: the same run "killed" after 5 steps — its last periodic
  // checkpoint (rank 0's gathered global state at step 4) survives.
  CkptFile ckpt_b("hybrid_resil_b.ckpt");
  cfg.solver.resilience.checkpoint_path = ckpt_b.path();
  cfg.solver.ptc.max_steps = 5;
  HybridSolver b(hybrid_mesh(), cfg);
  const SolveStats st_b = b.solve();
  ASSERT_FALSE(st_b.converged);

  // The checkpoint carries the decomposition signature.
  const CheckpointMeta on_disk = read_checkpoint_meta(ckpt_b.path());
  EXPECT_EQ(on_disk.ranks, 4u);
  EXPECT_NE(on_disk.partition_hash, 0u);

  // Run C: restart from B's checkpoint and run to convergence.
  cfg.solver.ptc.max_steps = 30;
  HybridSolver c(hybrid_mesh(), cfg);
  const CheckpointMeta meta = c.restore_checkpoint(ckpt_b.path());
  EXPECT_EQ(meta.step, 4u);
  EXPECT_GT(meta.cfl, 0.0);
  const SolveStats st_c = c.solve();

  // The resumed run is the uninterrupted run, bit for bit.
  EXPECT_TRUE(st_c.converged);
  EXPECT_EQ(st_c.steps, st_a.steps);
  EXPECT_EQ(st_c.final_cfl, st_a.final_cfl);
  EXPECT_EQ(st_c.reference_residual, st_a.reference_residual);
  const std::span<const double> qa = a.solution();
  const std::span<const double> qc = c.solution();
  ASSERT_EQ(qa.size(), qc.size());
  for (std::size_t i = 0; i < qa.size(); ++i)
    ASSERT_EQ(qa[i], qc[i]) << "entry " << i;
}

TEST(HybridResilience, WriteCheckpointRoundTripsThroughRestore) {
  HybridConfig cfg = hybrid_cfg(2);
  HybridSolver a(hybrid_mesh(), cfg);
  const SolveStats st_a = a.solve();
  ASSERT_TRUE(st_a.converged);
  CkptFile ckpt("hybrid_final.ckpt");
  a.write_checkpoint(ckpt.path(), st_a);

  HybridSolver b(hybrid_mesh(), cfg);
  const CheckpointMeta meta = b.restore_checkpoint(ckpt.path());
  EXPECT_EQ(meta.step, static_cast<std::uint64_t>(st_a.steps));
  EXPECT_EQ(meta.cfl, st_a.final_cfl);
  // The restored state converges immediately (it already is converged).
  const SolveStats st_b = b.solve();
  EXPECT_TRUE(st_b.converged);
  EXPECT_EQ(st_b.steps, st_a.steps);
}

TEST(HybridResilience, RestoreRejectsACheckpointFromAnotherRankCount) {
  CkptFile ckpt("hybrid_wrong_ranks.ckpt");
  {
    HybridConfig cfg = hybrid_cfg(4);
    HybridSolver a(hybrid_mesh(), cfg);
    const SolveStats st = a.solve();
    ASSERT_TRUE(st.converged);
    a.write_checkpoint(ckpt.path(), st);
  }
  HybridSolver b(hybrid_mesh(), hybrid_cfg(2));
  try {
    b.restore_checkpoint(ckpt.path());
    FAIL() << "expected a decomposition-mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("4-rank"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2-rank"), std::string::npos) << msg;
  }
  // The single-rank FlowSolver rejects it the same way.
  FlowSolver single(hybrid_mesh(), hybrid_cfg(1).solver);
  EXPECT_THROW(single.restore_checkpoint(ckpt.path()), std::runtime_error);
}

}  // namespace
}  // namespace fun3d::comm
