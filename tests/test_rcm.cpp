#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/rcm.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

/// 2D grid graph (w x h) with a random vertex relabeling — a stand-in for a
/// badly numbered unstructured mesh.
CsrGraph shuffled_grid(idx_t w, idx_t h, unsigned seed) {
  Rng rng(seed);
  std::vector<idx_t> label(static_cast<std::size_t>(w * h));
  for (idx_t i = 0; i < w * h; ++i) label[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = label.size(); i > 1; --i)
    std::swap(label[i - 1], label[static_cast<std::size_t>(rng.next_below(i))]);
  std::vector<std::pair<idx_t, idx_t>> es;
  auto at = [&](idx_t x, idx_t y) { return label[static_cast<std::size_t>(y * w + x)]; };
  for (idx_t y = 0; y < h; ++y)
    for (idx_t x = 0; x < w; ++x) {
      if (x + 1 < w) es.emplace_back(at(x, y), at(x + 1, y));
      if (y + 1 < h) es.emplace_back(at(x, y), at(x, y + 1));
    }
  return build_csr_from_edges(w * h, es);
}

TEST(Bfs, LevelsOnPath) {
  std::vector<std::pair<idx_t, idx_t>> es{{0, 1}, {1, 2}, {2, 3}};
  const CsrGraph g = build_csr_from_edges(4, es);
  std::vector<idx_t> level;
  const idx_t depth = bfs_levels(g, 0, level);
  EXPECT_EQ(depth, 4);
  EXPECT_EQ(level, (std::vector<idx_t>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableIsMinusOne) {
  const CsrGraph g = build_csr_from_edges(3, std::vector<std::pair<idx_t, idx_t>>{{0, 1}});
  std::vector<idx_t> level;
  bfs_levels(g, 0, level);
  EXPECT_EQ(level[2], -1);
}

TEST(Rcm, PseudoPeripheralOnPathIsEndpoint) {
  std::vector<std::pair<idx_t, idx_t>> es;
  for (idx_t i = 0; i < 9; ++i) es.emplace_back(i, i + 1);
  const CsrGraph g = build_csr_from_edges(10, es);
  const idx_t p = pseudo_peripheral_vertex(g, 5);
  EXPECT_TRUE(p == 0 || p == 9);
}

TEST(Rcm, ProducesValidPermutation) {
  const CsrGraph g = shuffled_grid(12, 9, 3);
  const auto perm = rcm_permutation(g);
  EXPECT_TRUE(is_permutation(perm));
}

class RcmBandwidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RcmBandwidthTest, ReducesBandwidthOnShuffledGrids) {
  const CsrGraph g = shuffled_grid(20, 15, GetParam());
  const auto before = bandwidth_info(g);
  const CsrGraph rg = permute_graph(g, rcm_permutation(g));
  const auto after = bandwidth_info(rg);
  // Grid graphs have optimal bandwidth ~min(w,h); a shuffled labeling is
  // near n. RCM must get within a small factor of optimal.
  EXPECT_LT(after.bandwidth, before.bandwidth / 4);
  EXPECT_LE(after.bandwidth, 40);
  EXPECT_LT(after.profile, before.profile);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcmBandwidthTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Rcm, HandlesDisconnectedGraphs) {
  std::vector<std::pair<idx_t, idx_t>> es{{0, 1}, {2, 3}, {4, 5}};
  const CsrGraph g = build_csr_from_edges(7, es);  // vertex 6 isolated
  const auto perm = rcm_permutation(g);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Rcm, SingleVertex) {
  const CsrGraph g = build_csr_from_edges(1, {});
  const auto perm = rcm_permutation(g);
  EXPECT_EQ(perm, std::vector<idx_t>{0});
}

}  // namespace
}  // namespace fun3d
