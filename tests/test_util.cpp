#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "util/aligned.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fun3d {
namespace {

TEST(Aligned, VectorIsCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AVec<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u);
  }
}

TEST(Aligned, GrowsAndCopies) {
  AVec<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Stats, Summary) {
  const double xs[] = {1, 2, 3, 4};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, WelfordSurvivesLargeMeanOffset) {
  // E[x^2]-mean^2 cancels catastrophically here: with mean ~1e9 (bench
  // timings in ns) the squared sum eats all 53 mantissa bits and the naive
  // variance collapses to 0. The centered (Welford) recurrence keeps the
  // spread of {1,2,3,4} regardless of offset.
  const double offset = 1e9;
  const double xs[] = {offset + 1, offset + 2, offset + 3, offset + 4};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, offset + 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-6);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, Imbalance) {
  const double balanced[] = {2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(imbalance(balanced), 1.0);
  const double skewed[] = {1, 1, 1, 5};
  EXPECT_DOUBLE_EQ(imbalance(skewed), 2.5);
}

TEST(Stats, Geomean) {
  const double xs[] = {1, 4};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, Histogram) {
  const double xs[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto h = histogram(xs, 5);
  for (auto b : h) EXPECT_EQ(b, 2u);
}

TEST(Table, FormatsAligned) {
  Table t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, NumFormats) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(2.0, "%.1f"), "2.0");
}

TEST(Cli, ParsesFlagsBothSyntaxes) {
  const char* argv[] = {"prog", "--a", "1", "--b=x", "--flag"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("a", 0), 1);
  EXPECT_EQ(cli.get("b", ""), "x");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, ParsesNegativeNumericValues) {
  // Regression: `--shift -1.5` used to store shift=true and drop -1.5.
  const char* argv[] = {"prog", "--shift", "-1.5",  "--n",    "-3",
                        "--up",  "--mode", "serial"};
  Cli cli(8, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("shift", 0.0), -1.5);
  EXPECT_EQ(cli.get_int("n", 0), -3);
  // A following --flag is still a flag, not a value.
  EXPECT_TRUE(cli.get_bool("up", false));
  EXPECT_EQ(cli.get("mode", ""), "serial");
}

TEST(Cli, NumericGettersWarnOnTrailingGarbage) {
  const char* argv[] = {"prog", "--a", "12abc", "--b", "1.5x", "--c", "7"};
  Cli cli(7, const_cast<char**>(argv));
  testing::internal::CaptureStderr();
  EXPECT_EQ(cli.get_int("a", 0), 12);  // parsed prefix still returned
  EXPECT_DOUBLE_EQ(cli.get_double("b", 0.0), 1.5);
  EXPECT_EQ(cli.get_int("c", 0), 7);  // clean value: no warning
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--a"), std::string::npos);
  EXPECT_NE(err.find("--b"), std::string::npos);
  EXPECT_EQ(err.find("--c"), std::string::npos);
}

TEST(Cli, ExtractFlagConsumesTrailingValuelessFlag) {
  // Regression: `bench --json` as the last argument used to stay in argv
  // (breaking downstream parsers) and silently produce no report.
  const char* raw[] = {"prog", "--other", "--json"};
  char* argv[4];
  for (int i = 0; i < 3; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[3] = nullptr;
  int argc = 3;
  testing::internal::CaptureStderr();
  EXPECT_EQ(Cli::extract_flag(&argc, argv, "json"), "");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(argc, 2);  // flag consumed, not passed through
  EXPECT_STREQ(argv[1], "--other");
  EXPECT_NE(err.find("--json"), std::string::npos);
  EXPECT_NE(err.find("last argument"), std::string::npos);
}

TEST(Cli, ExtractFlagRemovesItFromArgv) {
  const char* raw[] = {"prog", "--benchmark_filter=Flux", "--json",
                       "out.json", "--other", "x"};
  char* argv[7];
  for (int i = 0; i < 6; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[6] = nullptr;
  int argc = 6;
  EXPECT_EQ(Cli::extract_flag(&argc, argv, "json"), "out.json");
  EXPECT_EQ(argc, 4);
  EXPECT_STREQ(argv[1], "--benchmark_filter=Flux");
  EXPECT_STREQ(argv[2], "--other");
  EXPECT_STREQ(argv[3], "x");
  // Absent flag: argv untouched, empty value.
  EXPECT_EQ(Cli::extract_flag(&argc, argv, "missing"), "");
  EXPECT_EQ(argc, 4);
  // --name=value syntax.
  argv[1] = const_cast<char*>("--json=a.json");
  EXPECT_EQ(Cli::extract_flag(&argc, argv, "json"), "a.json");
  EXPECT_EQ(argc, 3);
}

TEST(Json, BuildsAndDumpsSchemaStably) {
  Json j = Json::object();
  j["b"] = Json(1.5);
  j["a"] = Json("x\"y\n");
  j["flag"] = Json(true);
  j["list"].push_back(Json(1));
  j["list"].push_back(Json());
  // Insertion order is preserved — the writer never reorders keys.
  EXPECT_EQ(j.dump(), "{\"b\":1.5,\"a\":\"x\\\"y\\n\",\"flag\":true,"
                      "\"list\":[1,null]}");
  EXPECT_EQ(Json(3.0).dump(), "3");  // integral doubles stay integers
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(1.0 / 0.0).dump(), "null");
}

TEST(Json, ParseRoundTrip) {
  Json j = Json::object();
  j["pi"] = Json(3.25);
  j["neg"] = Json(-1e-3);
  j["s"] = Json("tab\there");
  j["arr"].push_back(Json(false));
  const std::string text = j.dump(2);
  std::string err;
  const Json back = Json::parse(text, &err);
  ASSERT_TRUE(back.is_object()) << err;
  EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(back.find("neg")->as_double(), -1e-3);
  EXPECT_EQ(back.find("s")->as_string(), "tab\there");
  EXPECT_EQ(back.find("arr")->size(), 1u);
  EXPECT_FALSE(back.find("arr")->at(0).as_bool(true));
  // Re-dump is byte-identical: parse/dump is a fixed point.
  EXPECT_EQ(back.dump(2), text);
}

TEST(Json, SurrogatePairsDecodeToSupplementaryCodePoints) {
  // RFC 8259 §7: code points above U+FFFF are escaped as a UTF-16
  // surrogate pair. "\ud83d\ude00" is U+1F600, UTF-8 f0 9f 98 80.
  std::string err;
  const Json j = Json::parse("\"\\ud83d\\ude00\"", &err);
  ASSERT_TRUE(j.is_string()) << err;
  EXPECT_EQ(j.as_string(), "\xf0\x9f\x98\x80");
  // Mixed BMP + supplementary content in one string.
  const Json mix = Json::parse("\"a\\u00e9\\ud834\\udd1ez\"", &err);
  ASSERT_TRUE(mix.is_string()) << err;
  EXPECT_EQ(mix.as_string(), "a\xc3\xa9\xf0\x9d\x84\x9ez");  // a é 𝄞 z
}

TEST(Json, SurrogatePairRoundTripIsLossless) {
  // Writer emits raw UTF-8; parser must reproduce the exact bytes through
  // a dump -> parse cycle, including supplementary-plane characters.
  Json j = Json::object();
  j["emoji"] = Json("\xf0\x9f\x98\x80 ok");           // U+1F600
  j["clef"] = Json("\xf0\x9d\x84\x9e");               // U+1D11E
  const std::string text = j.dump();
  std::string err;
  const Json back = Json::parse(text, &err);
  ASSERT_TRUE(back.is_object()) << err;
  EXPECT_EQ(back.find("emoji")->as_string(), "\xf0\x9f\x98\x80 ok");
  EXPECT_EQ(back.find("clef")->as_string(), "\xf0\x9d\x84\x9e");
  EXPECT_EQ(back.dump(), text);  // fixed point, bytes preserved
}

TEST(Json, LoneSurrogatesAreRejected) {
  std::string err;
  // High surrogate with no low half.
  EXPECT_TRUE(Json::parse("\"\\ud83d\"", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  // High surrogate followed by a non-escape.
  EXPECT_TRUE(Json::parse("\"\\ud83dx\"", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  // High surrogate followed by an escape that is not a low surrogate.
  EXPECT_TRUE(Json::parse("\"\\ud83d\\u0041\"", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  // Unpaired low surrogate.
  EXPECT_TRUE(Json::parse("\"\\ude00\"", &err).is_null());
  EXPECT_FALSE(err.empty());
}

TEST(Json, ParseRejectsGarbage) {
  std::string err;
  EXPECT_TRUE(Json::parse("{\"a\":}", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_TRUE(Json::parse("[1,2,]", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_TRUE(Json::parse("{} trailing", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_TRUE(Json::parse("\"unterminated", &err).is_null());
  EXPECT_FALSE(err.empty());
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(StopwatchSet, AccumulatesScopes) {
  StopwatchSet s;
  {
    auto a = s.scoped("k");
  }
  {
    auto a = s.scoped("k");
  }
  EXPECT_GT(s.get("k"), 0.0);
  EXPECT_EQ(s.get("absent"), 0.0);
  EXPECT_DOUBLE_EQ(s.total(), s.get("k"));
}

}  // namespace
}  // namespace fun3d
