#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "util/aligned.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fun3d {
namespace {

TEST(Aligned, VectorIsCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AVec<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u);
  }
}

TEST(Aligned, GrowsAndCopies) {
  AVec<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Stats, Summary) {
  const double xs[] = {1, 2, 3, 4};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, Imbalance) {
  const double balanced[] = {2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(imbalance(balanced), 1.0);
  const double skewed[] = {1, 1, 1, 5};
  EXPECT_DOUBLE_EQ(imbalance(skewed), 2.5);
}

TEST(Stats, Geomean) {
  const double xs[] = {1, 4};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, Histogram) {
  const double xs[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto h = histogram(xs, 5);
  for (auto b : h) EXPECT_EQ(b, 2u);
}

TEST(Table, FormatsAligned) {
  Table t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, NumFormats) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(2.0, "%.1f"), "2.0");
}

TEST(Cli, ParsesFlagsBothSyntaxes) {
  const char* argv[] = {"prog", "--a", "1", "--b=x", "--flag"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("a", 0), 1);
  EXPECT_EQ(cli.get("b", ""), "x");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(StopwatchSet, AccumulatesScopes) {
  StopwatchSet s;
  {
    auto a = s.scoped("k");
  }
  {
    auto a = s.scoped("k");
  }
  EXPECT_GT(s.get("k"), 0.0);
  EXPECT_EQ(s.get("absent"), 0.0);
  EXPECT_DOUBLE_EQ(s.total(), s.get("k"));
}

}  // namespace
}  // namespace fun3d
