// Fig. 9 reproduction: strong scaling of the application to 256 nodes of
// the (simulated) Stampede system, baseline vs cache+SIMD-optimized,
// 16 MPI ranks per node.
//
// Paper reference: the optimized version is 16-28% faster than the baseline
// at every node count; scaling flattens as communication grows.
//
// Inputs: the real Mesh-D-preset mesh partitioned by the real partitioner at
// every rank count; per-rank kernel costs from the machine model; iteration
// growth with subdomain count measured from real block-Jacobi solver runs.
#include "bench_common.hpp"

#include <cmath>
#include <map>

#include "mesh/decompose.hpp"
#include "netsim/cluster_sim.hpp"

using namespace fun3d;
using namespace fun3d::bench;

namespace {

/// Measures block-Jacobi iteration growth on a small mesh and fits
/// iters(R) = iters(1) * (1 + c * log2(R)); the paper observes ~+30% at
/// 4096 ranks (256 nodes x 16).
std::function<double(int)> measure_iteration_growth(double* c_out) {
  TetMesh m = make_mesh(MeshPreset::kSmall, 1.0, /*report=*/false);
  double base_iters = 0;
  double c = 0.02;
  std::vector<std::pair<double, double>> samples;  // (log2 R, ratio)
  for (idx_t nsub : {1, 2, 4, 8, 16}) {
    TetMesh mc = m;  // copy; solver takes ownership
    SolverConfig cfg = SolverConfig::baseline();
    cfg.subdomains = nsub;
    cfg.ptc.max_steps = 25;
    cfg.ptc.rtol = 1e-6;
    FlowSolver solver(std::move(mc), cfg);
    const SolveStats st = solver.solve();
    const double iters = static_cast<double>(st.linear_iterations);
    if (nsub == 1) {
      base_iters = iters;
    } else {
      samples.emplace_back(std::log2(static_cast<double>(nsub)),
                           iters / base_iters - 1.0);
    }
  }
  // Least-squares slope through the origin.
  double num = 0, den = 0;
  for (auto [x, y] : samples) {
    num += x * y;
    den += x * x;
  }
  if (den > 0) c = std::max(0.0, num / den);
  *c_out = c;
  const double paper_iters_1 = 1709.0;  // Mesh-D baseline (Table I)
  return [c, paper_iters_1](int ranks) {
    return paper_iters_1 *
           (1.0 + c * std::log2(std::max(1.0, static_cast<double>(ranks))));
  };
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 3.0);
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes", 256));

  header("Fig. 9", "strong scaling to 256 nodes, baseline vs optimized");
  PerfReport rep = make_report(
      cli, "fig9", "strong scaling to 256 nodes, baseline vs optimized");
  rep.params["max_nodes"] = max_nodes;
  double growth_c = 0;
  auto iters_of = measure_iteration_growth(&growth_c);
  std::printf(
      "measured block-Jacobi iteration growth on the (small) host mesh: "
      "+%.1f%% per subdomain doubling. Small subdomains (~200 vertices) "
      "exaggerate the effect; at the paper's ~700-vertex subdomains the "
      "total is ~+30%% at 4096 ranks (~+2.5%%/doubling), which is the "
      "default here. Pass --measured-growth to use the local measurement.\n",
      100 * growth_c);
  if (!cli.get_bool("measured-growth", false)) {
    iters_of = [](int ranks) {
      return 1709.0 *
             (1.0 + 0.025 * std::log2(std::max(1.0, static_cast<double>(ranks))));
    };
  }

  const TetMesh mesh = make_mesh(MeshPreset::kMeshD, scale);
  ClusterConfig base, opt;
  base.optimized = false;
  opt.optimized = true;
  base.iterations_of_ranks = opt.iterations_of_ranks = iters_of;

  std::vector<int> nodes;
  for (int n = 1; n <= max_nodes; n *= 4) nodes.push_back(n);
  if (nodes.back() != max_nodes) nodes.push_back(max_nodes);

  // Seed per-rank halo volumes from a real Decomposition of the benchmark
  // mesh — the same decompose() ghost accounting the in-process hybrid
  // runtime packs its mailboxes from — and keep the analytic
  // surface-to-volume estimate c*(V/R)^(2/3) alongside for comparison
  // (calibrated at the first sweep point).
  std::map<int, double> halo_decomp;  // ranks -> slowest rank's halo bytes
  for (int n : nodes) {
    const int ranks = n * base.ranks_per_node;
    TetMesh mc = mesh;  // decompose() renumbers in place
    const idx_t nparts =
        std::min<idx_t>(static_cast<idx_t>(ranks), mc.num_vertices);
    const Decomposition d = decompose(mc, nparts, true);
    double max_ghosts = 0;
    for (const auto& sub : d.subs)
      max_ghosts = std::max(max_ghosts, static_cast<double>(sub.num_ghosts));
    halo_decomp[ranks] = max_ghosts * kNs * 8.0;
  }
  base.halo_bytes_of_ranks = opt.halo_bytes_of_ranks =
      [halo_decomp](int ranks) {
        const auto it = halo_decomp.find(ranks);
        return it != halo_decomp.end() ? it->second : 0.0;
      };
  const double surf_cal =
      halo_decomp.begin()->second /
      std::pow(static_cast<double>(mesh.num_vertices) /
                   halo_decomp.begin()->first,
               2.0 / 3.0);
  std::printf(
      "\nhalo volume per rank (slowest rank), decomposition-derived vs "
      "analytic (V/R)^(2/3):\n");
  for (const auto& [ranks, bytes] : halo_decomp) {
    const double analytic =
        surf_cal * std::pow(static_cast<double>(mesh.num_vertices) / ranks,
                            2.0 / 3.0);
    std::printf("  %5d ranks: %8.0f B (analytic %8.0f B)\n", ranks, bytes,
                analytic);
    const std::string r = ".r" + std::to_string(ranks);
    rep.model["halo_bytes_decomposition" + r] = bytes;
    rep.model["halo_bytes_analytic" + r] = analytic;
  }

  // --measured: replace the analytic overlap/exchange-rate defaults with
  // numbers from a real in-process hybrid run (comm.* family lands in the
  // report, where validate_report cross-checks the ghost accounting).
  if (cli.get_bool("measured", false)) {
    const comm::CommReport cr = measure_comm(rep);
    base.halo_overlap_fraction = opt.halo_overlap_fraction =
        cr.overlap_fraction;
    base.halo_exchanges_per_iter = opt.halo_exchanges_per_iter =
        cr.exchanges_per_linear_iteration;
  }

  const auto pb = simulate_strong_scaling(mesh, base, nodes);
  const auto po = simulate_strong_scaling(mesh, opt, nodes);

  Table t({"nodes", "ranks", "baseline s", "optimized s", "opt gain",
           "paper gain", "parallel eff (opt)"});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double gain =
        (pb[i].total_seconds / po[i].total_seconds - 1.0) * 100.0;
    const double eff = po[0].total_seconds /
                       (po[i].total_seconds * po[i].nodes);
    t.row({Table::num(pb[i].nodes), Table::num(pb[i].ranks),
           Table::num(pb[i].total_seconds, "%.3f"),
           Table::num(po[i].total_seconds, "%.3f"),
           Table::num(gain, "%.0f%%"), "16-28%",
           Table::num(100 * eff, "%.0f%%")});
    const std::string n = ".n" + std::to_string(pb[i].nodes);
    rep.model["baseline_seconds" + n] = pb[i].total_seconds;
    rep.model["optimized_seconds" + n] = po[i].total_seconds;
    rep.model["optimized_gain_pct" + n] = gain;
  }
  t.print();
  rep.metrics["measured_iteration_growth_per_doubling"] = growth_c;
  std::printf(
      "\nShape check: optimized faster at all scales; the gain narrows and "
      "efficiency falls as communication grows. Mesh is the scaled Mesh-D "
      "preset; per-rank subdomains are proportionally smaller than the "
      "paper's, which pulls the comm-bound regime to fewer nodes.\n");
  return write_report(cli, rep) ? 0 : 1;
}
