// Table I reproduction: baseline (out-of-the-box, single-thread) solver runs
// on the Mesh-C and Mesh-D presets — mesh sizes, pseudo-time steps, linear
// iterations, and execution time.
//
// Paper reference (full-size meshes on an E5-2690v2 core):
//   Mesh-C: 3.58e5 vertices, 2.40e6 edges, 13 steps,  383 iters, 282 s
//   Mesh-D: 2.76e6 vertices, 1.89e7 edges, 29 steps, 1709 iters, 1.02e4 s
// Default scales keep runtimes in seconds; counts below are for the scaled
// meshes, with vertex/edge counts printed for context.
#include "bench_common.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale_c = cli.get_double("scale-c", 6.0);
  const double scale_d = cli.get_double("scale-d", 4.0);

  header("Table I", "baseline performance profile (scaled meshes)");
  PerfReport rep =
      make_report(cli, "table1", "baseline performance profile");
  rep.params["scale_c"] = scale_c;
  rep.params["scale_d"] = scale_d;
  Table t({"mesh", "vertices", "edges", "steps", "lin iters", "time (s)",
           "paper steps", "paper iters"});

  struct Row {
    MeshPreset preset;
    double scale;
    int paper_steps;
    int paper_iters;
  };
  const Row rows[] = {{MeshPreset::kMeshC, scale_c, 13, 383},
                      {MeshPreset::kMeshD, scale_d, 29, 1709}};
  for (const Row& row : rows) {
    TetMesh m = make_mesh(row.preset, row.scale);
    const MeshStats ms = compute_mesh_stats(m);
    SolverConfig cfg = SolverConfig::baseline();
    cfg.ptc.max_steps = 60;
    cfg.ptc.rtol = 1e-8;
    FlowSolver solver(std::move(m), cfg);
    const SolveStats st = solver.solve();
    const std::string prefix = std::string(preset_name(row.preset)) + ".";
    solver.fill_report(rep, prefix);
    rep.counters[prefix + "vertices"] =
        static_cast<std::uint64_t>(ms.vertices);
    rep.counters[prefix + "edges"] = static_cast<std::uint64_t>(ms.edges);
    rep.counters[prefix + "steps"] = static_cast<std::uint64_t>(st.steps);
    rep.counters[prefix + "converged"] = st.converged ? 1 : 0;
    rep.metrics[prefix + "wall_seconds"] = st.wall_seconds;
    t.row({preset_name(row.preset), Table::num(ms.vertices),
           Table::num(static_cast<double>(ms.edges)), Table::num(st.steps),
           Table::num(static_cast<double>(st.linear_iterations)),
           Table::num(st.wall_seconds, "%.2f"), Table::num(row.paper_steps),
           Table::num(row.paper_iters)});
    if (!st.converged)
      std::printf("WARNING: %s did not reach rtol in %d steps\n",
                  preset_name(row.preset), cfg.ptc.max_steps);
  }
  t.print();
  std::printf(
      "\nShape check: steps and iterations grow with mesh size as in the "
      "paper; absolute times are for the scaled meshes on this host.\n");
  return write_report(cli, rep) ? 0 : 1;
}
