// Fig. 8b reproduction: kernel-wise speedups of the optimized application.
//
// Paper reference (Mesh-C, 10 cores / 20 threads over sequential base):
// flux ~20.6x, gradient & Jacobian near-linear-with-extras, ILU 9.4x,
// TRSV 3.2x, vector ops bandwidth-limited.
//
// Measured: per-kernel single-core times for baseline and optimized solver
// runs on the host. Modelled: the threading multiplier per kernel class
// from the machine model, composed with the measured single-core gain.
#include "bench_common.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 6.0);
  const int threads = static_cast<int>(cli.get_int("threads", 1));

  header("Fig. 8b", "kernel-wise speedups (baseline -> optimized)");
  PerfReport rep = make_report(
      cli, "fig8b", "kernel-wise speedups (baseline -> optimized)");
  rep.params["threads"] = threads;
  SolverConfig base = SolverConfig::baseline();
  SolverConfig opt = SolverConfig::optimized(threads);
  opt.ilu_mode = parse_ilu_mode(cli, opt.ilu_mode);
  base.ptc.max_steps = opt.ptc.max_steps = 40;
  base.ptc.rtol = opt.ptc.rtol = 1e-8;

  TetMesh m1 = make_mesh(MeshPreset::kMeshC, scale);
  TetMesh m2 = make_mesh(MeshPreset::kMeshC, scale, false);
  FlowSolver sb(std::move(m1), base);
  sb.solve();
  FlowSolver so(std::move(m2), opt);
  so.solve();

  // Threading multipliers on the paper machine per kernel class (cf.
  // bench_fig6b / bench_fig7b); single-core gains are measured below.
  const struct {
    const char* kernel;
    double thread_mult;
    double paper_total;
  } rows[] = {{kernel::kFlux, 9.5, 20.6},  {kernel::kGradient, 9.5, 10.0},
              {kernel::kJacobian, 9.0, 9.0}, {kernel::kIlu, 4.5, 9.4},
              {kernel::kTrsv, 3.2, 3.2},     {kernel::kVecOps, 3.8, 4.0}};

  Table t({"kernel", "host 1-core gain", "modelled 10-core total",
           "paper total"});
  for (const auto& r : rows) {
    const double tb = sb.profile().timers.get(r.kernel);
    const double to = so.profile().timers.get(r.kernel);
    const double gain = to > 0 ? tb / to : 1.0;
    rep.metrics[std::string(r.kernel) + ".single_core_gain"] = gain;
    rep.model[std::string(r.kernel) + ".total_speedup_10c"] =
        gain * r.thread_mult;
    t.row({r.kernel, Table::num(gain, "%.2f"),
           Table::num(gain * r.thread_mult, "%.1f"),
           Table::num(r.paper_total, "%.1f")});
  }
  t.print();
  sb.fill_report(rep, "baseline.");
  so.fill_report(rep, "optimized.");
  std::printf(
      "\nShape check: flux gains the most (layout+SIMD+prefetch compound "
      "with threading); TRSV the least (bandwidth-saturated).\n"
      "Note: host 1-core gains also absorb iteration-count differences "
      "between the two runs.\n");
  return write_report(cli, rep) ? 0 : 1;
}
