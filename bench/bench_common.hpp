// Shared setup for the figure/table reproduction benches.
//
// Every bench prints the paper's reference values next to this
// reproduction's measured (host, single core) and modelled (paper machine)
// values. Mesh sizes default to scaled-down presets so each bench runs in
// seconds; pass --scale 1 to rebuild the paper-size meshes.
#pragma once

#include <cstdio>
#include <string>

#include "core/solver.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "mesh/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fun3d::bench {

/// Mesh in "solver-ready" state: generated, scrambled (like a real
/// unstructured-generator numbering), then RCM-reordered (the paper's
/// locality optimization, applied to all configurations as in §V-A).
inline TetMesh make_mesh(MeshPreset preset, double scale,
                         bool report = true) {
  TetMesh m = generate_wing_bump(preset_params(preset, scale));
  shuffle_numbering(m, 12345);
  rcm_reorder(m);
  if (report) {
    std::printf("%s\n",
                format_mesh_stats(compute_mesh_stats(m),
                                  std::string(preset_name(preset)) +
                                      " (scale " + Table::num(scale) + ")")
                    .c_str());
  }
  return m;
}

inline void header(const char* id, const char* what) {
  std::printf("\n=== %s: %s ===\n", id, what);
}

/// Perf-report skeleton for a bench: environment metadata plus the shared
/// CLI parameters every bench accepts. Benches fill metrics/model/plan
/// sections as they go and hand the report to write_report() at exit.
inline PerfReport make_report(const Cli& cli, const char* bench_id,
                              const char* title) {
  PerfReport r = PerfReport::begin(bench_id, title);
  if (cli.has("scale")) r.params["scale"] = cli.get_double("scale", 1.0);
  return r;
}

/// Writes the report to the path given by `--json <path>` (shared by every
/// bench; no flag means no artifact). Returns false on I/O failure, which
/// benches surface as a nonzero exit code so CI catches broken reports.
inline bool write_report(const Cli& cli, const PerfReport& r) {
  const std::string path = cli.get("json", "");
  if (path.empty()) return true;
  std::string err;
  if (!r.write(path, &err)) {
    std::fprintf(stderr, "bench: failed to write perf report: %s\n",
                 err.c_str());
    return false;
  }
  std::printf("\nperf report written to %s\n", path.c_str());
  return true;
}

/// "shape holds" annotation helper: ratio of ours to paper.
inline std::string vs_paper(double ours, double paper) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g (paper %.3g)", ours, paper);
  return buf;
}

}  // namespace fun3d::bench
