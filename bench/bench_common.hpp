// Shared setup for the figure/table reproduction benches.
//
// Every bench prints the paper's reference values next to this
// reproduction's measured (host, single core) and modelled (paper machine)
// values. Mesh sizes default to scaled-down presets so each bench runs in
// seconds; pass --scale 1 to rebuild the paper-size meshes.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "comm/hybrid_solver.hpp"
#include "core/boundary.hpp"
#include "core/jacobian.hpp"
#include "core/newton.hpp"
#include "core/solver.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "mesh/stats.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fun3d::bench {

/// Mesh in "solver-ready" state: generated, scrambled (like a real
/// unstructured-generator numbering), then RCM-reordered (the paper's
/// locality optimization, applied to all configurations as in §V-A).
inline TetMesh make_mesh(MeshPreset preset, double scale,
                         bool report = true) {
  TetMesh m = generate_wing_bump(preset_params(preset, scale));
  shuffle_numbering(m, 12345);
  rcm_reorder(m);
  if (report) {
    std::printf("%s\n",
                format_mesh_stats(compute_mesh_stats(m),
                                  std::string(preset_name(preset)) +
                                      " (scale " + Table::num(scale) + ")")
                    .c_str());
  }
  return m;
}

/// Assembles the solver's actual preconditioner matrix at freestream plus
/// small noise, CFL-50 pseudo-time shift included — the matrix the ILU
/// benches factorize so measured times match what a Newton step pays.
inline Bcsr4 make_solver_jacobian(const TetMesh& m, const Physics& ph) {
  FlowFields f(m);
  f.set_uniform(ph.freestream);
  Rng rng(3);
  for (auto& q : f.q) q += rng.uniform(-0.05, 0.05);
  EdgeArrays e(m);
  const EdgeLoopPlan plan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  Bcsr4 jac = make_jacobian_matrix(m);
  assemble_jacobian(ph, e, plan, f, FluxScheme::kRoe, jac);
  add_boundary_jacobian(ph, m, f, jac);
  AVec<double> lam(static_cast<std::size_t>(m.num_vertices));
  compute_wavespeed_sums(ph, m, e, f, {lam.data(), lam.size()});
  AVec<double> shift(lam.size());
  compute_dt_shift({lam.data(), lam.size()}, 50.0,
                   {shift.data(), shift.size()});
  jac.shift_diagonal({shift.data(), shift.size()});
  return jac;
}

inline void header(const char* id, const char* what) {
  std::printf("\n=== %s: %s ===\n", id, what);
}

/// Perf-report skeleton for a bench: environment metadata plus the shared
/// CLI parameters every bench accepts. Benches fill metrics/model/plan
/// sections as they go and hand the report to write_report() at exit.
inline PerfReport make_report(const Cli& cli, const char* bench_id,
                              const char* title) {
  PerfReport r = PerfReport::begin(bench_id, title);
  if (cli.has("scale")) r.params["scale"] = cli.get_double("scale", 1.0);
  return r;
}

/// Parses the shared `--ilu-mode serial|levels|p2p` knob; returns `def`
/// when absent, and warns (keeping `def`) on an unknown value.
inline IluMode parse_ilu_mode(const Cli& cli, IluMode def) {
  const std::string s = cli.get("ilu-mode", "");
  if (s.empty()) return def;
  if (s == "serial") return IluMode::kSerial;
  if (s == "levels") return IluMode::kLevels;
  if (s == "p2p") return IluMode::kP2P;
  std::fprintf(stderr,
               "bench: unknown --ilu-mode '%s' (want serial|levels|p2p)\n",
               s.c_str());
  return def;
}

/// Enables event tracing when the bench was invoked with `--trace <path>`
/// (shared by every bench, like `--json`). Call before the timed work;
/// finish_trace() — called automatically by write_report() — exports the
/// Chrome-trace artifact and folds the timeline analysis into the report.
inline void begin_trace(const Cli& cli) {
  if (cli.has("trace")) trace::enable();
}

/// If tracing is active: stops it, writes the Chrome trace-event JSON to
/// the `--trace` path, prints the timeline summary, and folds the analysis
/// (wait fractions, measured critical paths, top blocking dependencies)
/// into `r` so validate_report / compare_reports see it. Returns false on
/// export I/O failure.
inline bool finish_trace(const Cli& cli, PerfReport& r) {
  const std::string path = cli.get("trace", "");
  if (path.empty() || !trace::enabled()) return true;
  trace::disable();
  const std::vector<trace::ThreadTrace> threads = trace::collect();
  std::string err;
  if (!trace::write_chrome_trace(path, threads, &err)) {
    std::fprintf(stderr, "bench: failed to write trace: %s\n", err.c_str());
    return false;
  }
  const trace::TimelineAnalysis a = trace::TimelineAnalysis::compute(threads);
  std::printf("%s", a.format().c_str());
  std::printf("trace written to %s\n", path.c_str());
  r.add_trace_analysis(a);
  return true;
}

/// Writes the report to the path given by `--json <path>` (shared by every
/// bench; no flag means no artifact), then round-trips the artifact
/// through validate_report so a bench can never ship a structurally
/// broken report. Returns false on I/O or validation failure, which
/// benches surface as a nonzero exit code so CI catches broken reports.
/// Also finalizes an active `--trace` session first, so the trace metrics
/// land in the artifact.
inline bool write_report(const Cli& cli, PerfReport& r) {
  const bool trace_ok = finish_trace(cli, r);
  const std::string path = cli.get("json", "");
  if (path.empty()) return trace_ok;
  std::string err;
  if (!r.write(path, &err)) {
    std::fprintf(stderr, "bench: failed to write perf report: %s\n",
                 err.c_str());
    return false;
  }
  std::string text;
  if (!read_text_file(path, &text, &err)) {
    std::fprintf(stderr, "bench: failed to re-read perf report: %s\n",
                 err.c_str());
    return false;
  }
  const auto problems = validate_report(Json::parse(text, &err));
  if (!problems.empty()) {
    for (const auto& p : problems)
      std::fprintf(stderr, "bench: perf report invalid: %s\n", p.c_str());
    return false;
  }
  std::printf("\nperf report written to %s\n", path.c_str());
  return trace_ok;
}

/// `--measured` support for the multi-node benches: runs the real
/// in-process hybrid-rank solver (HybridSolver, DESIGN.md §10) over a
/// small host mesh and returns its CommReport. The measured
/// `comm.overlap_fraction` and `comm.exchanges_per_linear_iteration`
/// replace the netsim's analytic defaults, and the full comm.* family is
/// folded into `rep` under the `measured.` prefix so validate_report
/// cross-checks the traffic against Decomposition::total_ghosts().
inline comm::CommReport measure_comm(PerfReport& rep, int nranks = 4,
                                     int threads_per_rank = 2) {
  TetMesh m = make_mesh(MeshPreset::kSmall, 1.0, /*report=*/false);
  comm::HybridConfig hc;
  hc.nranks = nranks;
  hc.threads_per_rank = threads_per_rank;
  hc.solver = SolverConfig::optimized(threads_per_rank);
  hc.solver.ptc.max_steps = 10;
  hc.solver.ptc.rtol = 1e-8;
  comm::HybridSolver hs(std::move(m), hc);
  hs.solve();
  const comm::CommReport& cr = hs.comm_report();
  rep.add_comm_stats(cr.summary(), "measured.");
  std::printf(
      "measured (in-process hybrid run, %d ranks x %d threads on the small "
      "host mesh): overlap fraction %.3f, %.2f halo exchanges per linear "
      "iteration, %llu halo bytes over %llu exchange rounds\n",
      cr.ranks, cr.threads_per_rank, cr.overlap_fraction,
      cr.exchanges_per_linear_iteration,
      static_cast<unsigned long long>(cr.halo_bytes),
      static_cast<unsigned long long>(cr.exchanges));
  return cr;
}

/// "shape holds" annotation helper: ratio of ours to paper.
inline std::string vs_paper(double ours, double paper) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g (paper %.3g)", ours, paper);
  return buf;
}

}  // namespace fun3d::bench
