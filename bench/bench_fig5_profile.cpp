// Fig. 5 reproduction: execution-time profile of the baseline application.
//
// Paper reference (baseline, single thread, Mesh-C): flux 42%, TRSV 17%,
// ILU 16%, gradient 13%, Jacobian 7%, other ~5% (the five kernels cover
// ~95% of execution time).
#include "bench_common.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 6.0);

  header("Fig. 5", "baseline application profile");
  PerfReport rep = make_report(cli, "fig5", "baseline application profile");
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale);
  SolverConfig cfg = SolverConfig::baseline();
  cfg.ptc.max_steps = 40;
  cfg.ptc.rtol = 1e-8;
  FlowSolver solver(std::move(m), cfg);
  const SolveStats st = solver.solve();
  solver.fill_report(rep);
  rep.metrics["wall_seconds"] = st.wall_seconds;

  const auto frac = solver.profile().fractions();
  const struct {
    const char* kernel;
    double paper;
  } paper[] = {{kernel::kFlux, 0.42},    {kernel::kTrsv, 0.17},
               {kernel::kIlu, 0.16},     {kernel::kGradient, 0.13},
               {kernel::kJacobian, 0.07}};
  Table t({"kernel", "measured %", "paper %"});
  double covered = 0;
  for (const auto& p : paper) {
    const double f = frac.count(p.kernel) ? frac.at(p.kernel) : 0.0;
    covered += f;
    t.row({p.kernel, Table::num(100 * f, "%.1f"),
           Table::num(100 * p.paper, "%.0f")});
  }
  t.row({"(these five)", Table::num(100 * covered, "%.1f"), "95"});
  t.print();
  std::printf("%s", solver.profile().format("\nfull breakdown").c_str());
  std::printf(
      "\nShape check: flux is the dominant kernel; flux+TRSV+ILU+grad+jac "
      "cover ~90%%+ of execution time.\n");
  rep.metrics["top5_covered_fraction"] = covered;
  return write_report(cli, rep) ? 0 : 1;
}
