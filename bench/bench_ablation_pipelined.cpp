// Ablation (paper §VI-B2 future work): communication-hiding Krylov.
//
// The paper identifies the Krylov Allreduce as the scaling limit at 256
// nodes and points to pipelined GMRES (Ghysels et al. [28]) / hierarchical
// Krylov [29] as the way out. This ablation runs the cluster simulator with
// and without Allreduce/compute overlap and reports how far the scaling
// limit moves.
#include "bench_common.hpp"

#include <cmath>

#include "netsim/cluster_sim.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 3.0);
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes", 1024));

  header("Ablation", "pipelined (communication-hiding) GMRES at scale");
  PerfReport rep = make_report(
      cli, "ablation_pipelined", "pipelined GMRES at scale");
  rep.params["max_nodes"] = max_nodes;
  const TetMesh mesh = make_mesh(MeshPreset::kMeshD, scale);
  auto iters = [](int ranks) {
    return 1709.0 * (1.0 + 0.025 * std::log2(std::max(1, ranks)));
  };
  ClusterConfig standard, pipelined;
  standard.optimized = pipelined.optimized = true;
  standard.iterations_of_ranks = pipelined.iterations_of_ranks = iters;
  pipelined.pipelined_krylov = true;

  std::vector<int> nodes;
  for (int n = 16; n <= max_nodes; n *= 2) nodes.push_back(n);
  const auto ps = simulate_strong_scaling(mesh, standard, nodes);
  const auto pp = simulate_strong_scaling(mesh, pipelined, nodes);

  Table t({"nodes", "standard s", "pipelined s", "gain", "std comm %",
           "pipe comm %"});
  int std_best = 0, pipe_best = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (ps[i].total_seconds <= ps[static_cast<std::size_t>(std_best)].total_seconds)
      std_best = static_cast<int>(i);
    if (pp[i].total_seconds <= pp[static_cast<std::size_t>(pipe_best)].total_seconds)
      pipe_best = static_cast<int>(i);
    t.row({Table::num(ps[i].nodes), Table::num(ps[i].total_seconds, "%.3f"),
           Table::num(pp[i].total_seconds, "%.3f"),
           Table::num((ps[i].total_seconds / pp[i].total_seconds - 1) * 100,
                      "%.0f%%"),
           Table::num(100 * ps[i].comm_fraction, "%.0f%%"),
           Table::num(100 * pp[i].comm_fraction, "%.0f%%")});
    const std::string n = ".n" + std::to_string(ps[i].nodes);
    rep.model["standard_seconds" + n] = ps[i].total_seconds;
    rep.model["pipelined_seconds" + n] = pp[i].total_seconds;
  }
  t.print();
  rep.model["standard_best_seconds"] =
      ps[static_cast<std::size_t>(std_best)].total_seconds;
  rep.model["pipelined_best_seconds"] =
      pp[static_cast<std::size_t>(pipe_best)].total_seconds;
  rep.model["standard_best_nodes"] =
      nodes[static_cast<std::size_t>(std_best)];
  rep.model["pipelined_best_nodes"] =
      nodes[static_cast<std::size_t>(pipe_best)];
  std::printf(
      "\nBest time-to-solution: standard %.3fs at %d nodes vs pipelined "
      "%.3fs at %d nodes — hiding the Allreduce both lowers the floor and "
      "reaches it with fewer nodes, as the paper anticipates for its "
      "future-work Krylov variants.\n",
      ps[static_cast<std::size_t>(std_best)].total_seconds,
      nodes[static_cast<std::size_t>(std_best)],
      pp[static_cast<std::size_t>(pipe_best)].total_seconds,
      nodes[static_cast<std::size_t>(pipe_best)]);
  return write_report(cli, rep) ? 0 : 1;
}
