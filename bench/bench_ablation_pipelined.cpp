// Ablation (paper §VI-B2 future work): communication-hiding Krylov.
//
// The paper identifies the Krylov Allreduce as the scaling limit at 256
// nodes and points to pipelined GMRES (Ghysels et al. [28]) / hierarchical
// Krylov [29] as the way out. Since PR 8 the repo has a real
// `GmresMode::kPipelined` solver mode, so this ablation no longer assumes
// an overlap constant: it first runs two real solves (classical and
// pipelined) on a small mesh, measures reductions-per-column and the
// overlap fraction from `Profile::gmres`, then feeds those MEASURED
// numbers into the cluster simulator to see how far the scaling limit
// moves.
#include "bench_common.hpp"

#include <cmath>

#include "netsim/cluster_sim.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 3.0);
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes", 1024));

  header("Ablation", "pipelined (communication-hiding) GMRES at scale");
  PerfReport rep = make_report(
      cli, "ablation_pipelined", "pipelined GMRES at scale");
  rep.params["max_nodes"] = max_nodes;

  // ---- phase 1: measure the real solver's reduction behaviour ----------
  // Small mesh, few steps: we only need per-column reduction counts and
  // the overlap fraction, both of which are per-iteration properties.
  SolverConfig ccfg = SolverConfig::optimized(1);
  ccfg.gmres_mode = GmresMode::kClassical;
  ccfg.ptc.max_steps = 8;
  SolverConfig pcfg = ccfg;
  pcfg.gmres_mode = GmresMode::kPipelined;
  TetMesh mc = make_mesh(MeshPreset::kTiny, 1.0, /*report=*/false);
  TetMesh mp = make_mesh(MeshPreset::kTiny, 1.0, /*report=*/false);
  FlowSolver sc(std::move(mc), ccfg);
  sc.solve();
  FlowSolver sp(std::move(mp), pcfg);
  sp.solve();
  const GmresStats& gc = sc.profile().gmres;
  const GmresStats& gp = sp.profile().gmres;
  const double rpc_classical = gc.reductions_per_column();
  const double rpc_pipelined = gp.reductions_per_column();
  const double overlap = gp.overlap_fraction();
  std::printf(
      "\nmeasured (real solves, %llu / %llu Krylov columns):\n"
      "  classical reductions/column  %.2f\n"
      "  pipelined reductions/column  %.2f (fallback columns: %llu)\n"
      "  pipelined overlap fraction   %.2f of the column's compute\n",
      static_cast<unsigned long long>(gc.columns),
      static_cast<unsigned long long>(gp.columns), rpc_classical,
      rpc_pipelined, static_cast<unsigned long long>(gp.fallback_columns),
      overlap);
  rep.metrics["measured.classical.reductions_per_column"] = rpc_classical;
  rep.metrics["measured.pipelined.reductions_per_column"] = rpc_pipelined;
  rep.metrics["measured.pipelined.overlap_fraction"] = overlap;
  sc.fill_report(rep, "classical.");
  sp.fill_report(rep, "pipelined.");

  // ---- phase 2: simulate at scale with the measured inputs -------------
  const TetMesh mesh = make_mesh(MeshPreset::kMeshD, scale);
  auto iters = [](int ranks) {
    return 1709.0 * (1.0 + 0.025 * std::log2(std::max(1, ranks)));
  };
  ClusterConfig standard, pipelined;
  standard.optimized = pipelined.optimized = true;
  standard.iterations_of_ranks = pipelined.iterations_of_ranks = iters;
  standard.allreduces_per_iter = rpc_classical;
  pipelined.pipelined_krylov = true;
  pipelined.allreduces_per_iter = rpc_pipelined;
  pipelined.pipelined_overlap_fraction = overlap;

  std::vector<int> nodes;
  for (int n = 16; n <= max_nodes; n *= 2) nodes.push_back(n);
  const auto ps = simulate_strong_scaling(mesh, standard, nodes);
  const auto pp = simulate_strong_scaling(mesh, pipelined, nodes);

  Table t({"nodes", "standard s", "pipelined s", "gain", "std comm %",
           "pipe comm %"});
  int std_best = 0, pipe_best = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (ps[i].total_seconds <= ps[static_cast<std::size_t>(std_best)].total_seconds)
      std_best = static_cast<int>(i);
    if (pp[i].total_seconds <= pp[static_cast<std::size_t>(pipe_best)].total_seconds)
      pipe_best = static_cast<int>(i);
    t.row({Table::num(ps[i].nodes), Table::num(ps[i].total_seconds, "%.3f"),
           Table::num(pp[i].total_seconds, "%.3f"),
           Table::num((ps[i].total_seconds / pp[i].total_seconds - 1) * 100,
                      "%.0f%%"),
           Table::num(100 * ps[i].comm_fraction, "%.0f%%"),
           Table::num(100 * pp[i].comm_fraction, "%.0f%%")});
    const std::string n = ".n" + std::to_string(ps[i].nodes);
    rep.model["standard_seconds" + n] = ps[i].total_seconds;
    rep.model["pipelined_seconds" + n] = pp[i].total_seconds;
  }
  t.print();
  rep.model["standard_best_seconds"] =
      ps[static_cast<std::size_t>(std_best)].total_seconds;
  rep.model["pipelined_best_seconds"] =
      pp[static_cast<std::size_t>(pipe_best)].total_seconds;
  rep.model["standard_best_nodes"] =
      nodes[static_cast<std::size_t>(std_best)];
  rep.model["pipelined_best_nodes"] =
      nodes[static_cast<std::size_t>(pipe_best)];
  std::printf(
      "\nBest time-to-solution: standard %.3fs at %d nodes vs pipelined "
      "%.3fs at %d nodes — hiding the Allreduce both lowers the floor and "
      "reaches it with fewer nodes, as the paper anticipates for its "
      "future-work Krylov variants.\n",
      ps[static_cast<std::size_t>(std_best)].total_seconds,
      nodes[static_cast<std::size_t>(std_best)],
      pp[static_cast<std::size_t>(pipe_best)].total_seconds,
      nodes[static_cast<std::size_t>(pipe_best)]);
  return write_report(cli, rep) ? 0 : 1;
}
