// Fig. 11 reproduction: Baseline vs Optimized (MPI-only) vs Hybrid
// (MPI+OpenMP) scaled to 256 nodes.
//
// Paper reference: Hybrid (2 ranks/node x 8 threads, all shared-memory
// optimizations) beats Baseline by 10-23%, but the MPI-only Optimized
// version remains the fastest because PETSc's vector/scatter primitives are
// not thread-parallel (the Amdahl fraction), while MPI-only suffers ~+30%
// iterations at 256 nodes from subdomain-count convergence degradation.
#include "bench_common.hpp"

#include <cmath>

#include "netsim/cluster_sim.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 3.0);
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes", 256));
  const double growth = cli.get_double("iter-growth", 0.025);

  header("Fig. 11", "Baseline vs Optimized (MPI-only) vs Hybrid");
  PerfReport rep = make_report(
      cli, "fig11", "Baseline vs Optimized (MPI-only) vs Hybrid");
  rep.params["max_nodes"] = max_nodes;
  rep.params["iter_growth"] = growth;
  const TetMesh mesh = make_mesh(MeshPreset::kMeshD, scale);

  auto iters_for_rpn = [growth](int /*ranks_per_node unused*/) {
    return [growth](int ranks) {
      return 1709.0 *
             (1.0 + growth * std::log2(std::max(1, ranks)));
    };
  };

  ClusterConfig baseline;  // 16 ranks/node, unoptimized kernels
  baseline.optimized = false;
  baseline.iterations_of_ranks = iters_for_rpn(16);

  ClusterConfig optimized;  // 16 ranks/node, cache+SIMD optimizations
  optimized.optimized = true;
  optimized.iterations_of_ranks = iters_for_rpn(16);

  ClusterConfig hybrid;  // 2 ranks/node x 8 threads, all optimizations
  hybrid.optimized = true;
  hybrid.ranks_per_node = 2;
  hybrid.threads_per_rank = 8;
  hybrid.iterations_of_ranks = iters_for_rpn(2);  // 8x fewer subdomains

  // --measured: the hybrid variant's split-phase exchange hides part of
  // each halo round behind interior-edge compute; feed the REAL overlap
  // fraction and exchange rate from an in-process HybridSolver run
  // instead of assuming full exposure. MPI-only variants stay unoverlapped
  // (blocking VecScatter), matching the paper's implementation.
  if (cli.get_bool("measured", false)) {
    const comm::CommReport cr = measure_comm(rep, /*nranks=*/2,
                                             /*threads_per_rank=*/4);
    hybrid.halo_overlap_fraction = cr.overlap_fraction;
    hybrid.halo_exchanges_per_iter = cr.exchanges_per_linear_iteration;
    baseline.halo_exchanges_per_iter = optimized.halo_exchanges_per_iter =
        cr.exchanges_per_linear_iteration;
  }

  std::vector<int> nodes;
  for (int n = 4; n <= max_nodes; n *= 4) nodes.push_back(n);

  const auto pb = simulate_strong_scaling(mesh, baseline, nodes);
  const auto po = simulate_strong_scaling(mesh, optimized, nodes);
  const auto ph = simulate_strong_scaling(mesh, hybrid, nodes);

  Table t({"nodes", "baseline s", "optimized s", "hybrid s",
           "hybrid vs baseline", "paper", "fastest"});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double hgain =
        (pb[i].total_seconds / ph[i].total_seconds - 1.0) * 100;
    const char* fastest =
        po[i].total_seconds <= ph[i].total_seconds ? "optimized" : "hybrid";
    t.row({Table::num(pb[i].nodes), Table::num(pb[i].total_seconds, "%.3f"),
           Table::num(po[i].total_seconds, "%.3f"),
           Table::num(ph[i].total_seconds, "%.3f"),
           Table::num(hgain, "%.0f%%"), "10-23%", fastest});
    const std::string n = ".n" + std::to_string(pb[i].nodes);
    rep.model["baseline_seconds" + n] = pb[i].total_seconds;
    rep.model["optimized_seconds" + n] = po[i].total_seconds;
    rep.model["hybrid_seconds" + n] = ph[i].total_seconds;
  }
  t.print();
  rep.model["hybrid_iterations_max_nodes"] = ph.back().iterations;
  rep.model["mpi_only_iterations_max_nodes"] = po.back().iterations;
  std::printf(
      "\nHybrid iterations at %d nodes: %.0f vs MPI-only %.0f (+%.0f%% for "
      "MPI-only from subdomain growth; paper ~+30%%).\n",
      nodes.back(), ph.back().iterations, po.back().iterations,
      100 * (po.back().iterations / ph.back().iterations - 1.0));
  std::printf(
      "Shape check: hybrid beats baseline everywhere and trails the MPI-only "
      "optimized build while compute dominates (the unthreaded vector-"
      "primitive Amdahl fraction). On this scaled mesh the collective-"
      "latency savings of 8x fewer ranks flip the ordering at high node "
      "counts — the regime the paper predicts hybrid will win as on-node "
      "parallelism grows.\n");
  return write_report(cli, rep) ? 0 : 1;
}
