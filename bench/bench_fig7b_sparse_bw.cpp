// Fig. 7b reproduction: achieved bandwidth of ILU and TRSV vs core count
// for the two parallelization strategies (level-scheduled barriers vs
// P2P-sparsified synchronization).
//
// Paper reference: P2P beats level scheduling for both kernels at all core
// counts; TRSV reaches ~94% of STREAM (34.8 GB/s) and saturates beyond 4
// cores; ILU scales to ~8 cores with lower bandwidth efficiency (irregular
// access pattern).
#include "bench_common.hpp"

#include "core/boundary.hpp"
#include "core/jacobian.hpp"
#include "core/newton.hpp"
#include "machine/kernel_model.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 4.0);

  header("Fig. 7b", "achieved bandwidth vs cores, level vs P2P");
  PerfReport rep = make_report(cli, "fig7b",
                               "achieved bandwidth vs cores, level vs P2P");
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale);
  const Physics ph;

  // Real Jacobian -> real ILU(1) factor (see bench_fig7a).
  FlowFields fields(m);
  fields.set_uniform(ph.freestream);
  Rng rng(3);
  for (auto& q : fields.q) q += rng.uniform(-0.05, 0.05);
  EdgeArrays e(m);
  const EdgeLoopPlan eplan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  Bcsr4 jac = make_jacobian_matrix(m);
  assemble_jacobian(ph, e, eplan, fields, FluxScheme::kRoe, jac);
  add_boundary_jacobian(ph, m, fields, jac);
  const std::vector<double> shift(static_cast<std::size_t>(m.num_vertices), 5.0);
  jac.shift_diagonal(shift);
  const IluFactor f = factorize_ilu(jac, symbolic_ilu(jac.structure(), 1));

  const MachineSpec mach = MachineSpec::xeon_e5_2690v2();
  const RecurrenceWork trsv_w = trsv_row_work(f);
  const RecurrenceWork ilu_w = ilu_row_work(f);
  const CsrGraph deps = f.lower_deps();
  const LevelSchedule sched = build_level_schedule(deps);
  std::printf("factor: %zu blocks, %d level-schedule wavefronts, DAG "
              "parallelism %.0fx\n",
              f.num_blocks(), sched.nlevels, dag_parallelism(deps));

  Table t({"cores", "TRSV level GB/s", "TRSV p2p GB/s", "ILU level GB/s",
           "ILU p2p GB/s", "TRSV p2p %STREAM"});
  for (int cores : {1, 2, 4, 6, 8, 10}) {
    const Partition owner = partition_natural(f.num_rows(), cores);
    const P2PSyncPlan plan = build_p2p_plan(deps, owner, true);
    const PhaseTime tl = model_level_schedule(mach, trsv_w, sched, cores);
    const PhaseTime tp = model_p2p(mach, trsv_w, deps, owner, plan, cores);
    const PhaseTime il = model_level_schedule(mach, ilu_w, sched, cores);
    const PhaseTime ip = model_p2p(mach, ilu_w, deps, owner, plan, cores);
    const std::string c = ".c" + std::to_string(cores);
    rep.model["trsv.level_gbs" + c] = tl.achieved_bw_gbs;
    rep.model["trsv.p2p_gbs" + c] = tp.achieved_bw_gbs;
    rep.model["ilu.level_gbs" + c] = il.achieved_bw_gbs;
    rep.model["ilu.p2p_gbs" + c] = ip.achieved_bw_gbs;
    t.row({Table::num(cores), Table::num(tl.achieved_bw_gbs, "%.1f"),
           Table::num(tp.achieved_bw_gbs, "%.1f"),
           Table::num(il.achieved_bw_gbs, "%.1f"),
           Table::num(ip.achieved_bw_gbs, "%.1f"),
           Table::num(100 * tp.achieved_bw_gbs / mach.stream_bw_gbs,
                      "%.0f%%")});
  }
  t.print();
  std::printf(
      "\nPaper: TRSV hits ~94%% of STREAM and saturates beyond 4 cores; P2P "
      "above level-scheduling everywhere. Shape check those two columns.\n");
  rep.counters["factor_blocks"] = static_cast<std::uint64_t>(f.num_blocks());
  rep.counters["level_wavefronts"] = static_cast<std::uint64_t>(sched.nlevels);
  rep.metrics["dag_parallelism"] = dag_parallelism(deps);
  return write_report(cli, rep) ? 0 : 1;
}
