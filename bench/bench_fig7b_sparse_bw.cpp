// Fig. 7b reproduction: achieved bandwidth of ILU and TRSV vs core count
// for the two parallelization strategies (level-scheduled barriers vs
// P2P-sparsified synchronization).
//
// Paper reference: P2P beats level scheduling for both kernels at all core
// counts; TRSV reaches ~94% of STREAM (34.8 GB/s) and saturates beyond 4
// cores; ILU scales to ~8 cores with lower bandwidth efficiency (irregular
// access pattern).
#include "bench_common.hpp"

#include "core/boundary.hpp"
#include "core/jacobian.hpp"
#include "core/newton.hpp"
#include "core/vecops.hpp"
#include "machine/kernel_model.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 4.0);

  header("Fig. 7b", "achieved bandwidth vs cores, level vs P2P");
  PerfReport rep = make_report(cli, "fig7b",
                               "achieved bandwidth vs cores, level vs P2P");
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale);
  const Physics ph;

  // Real Jacobian -> real ILU(1) factor (see bench_fig7a).
  FlowFields fields(m);
  fields.set_uniform(ph.freestream);
  Rng rng(3);
  for (auto& q : fields.q) q += rng.uniform(-0.05, 0.05);
  EdgeArrays e(m);
  const EdgeLoopPlan eplan = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  Bcsr4 jac = make_jacobian_matrix(m);
  assemble_jacobian(ph, e, eplan, fields, FluxScheme::kRoe, jac);
  add_boundary_jacobian(ph, m, fields, jac);
  const std::vector<double> shift(static_cast<std::size_t>(m.num_vertices), 5.0);
  jac.shift_diagonal(shift);
  const IluFactor f = factorize_ilu(jac, symbolic_ilu(jac.structure(), 1));

  const MachineSpec mach = MachineSpec::xeon_e5_2690v2();
  const RecurrenceWork trsv_w = trsv_row_work(f);
  const RecurrenceWork ilu_w = ilu_row_work(f);
  const CsrGraph deps = f.lower_deps();
  const LevelSchedule sched = build_level_schedule(deps);
  std::printf("factor: %zu blocks, %d level-schedule wavefronts, DAG "
              "parallelism %.0fx\n",
              f.num_blocks(), sched.nlevels, dag_parallelism(deps));

  Table t({"cores", "TRSV level GB/s", "TRSV p2p GB/s", "ILU level GB/s",
           "ILU p2p GB/s", "TRSV p2p %STREAM"});
  for (int cores : {1, 2, 4, 6, 8, 10}) {
    const Partition owner = partition_natural(f.num_rows(), cores);
    const P2PSyncPlan plan = build_p2p_plan(deps, owner, true);
    const PhaseTime tl = model_level_schedule(mach, trsv_w, sched, cores);
    const PhaseTime tp = model_p2p(mach, trsv_w, deps, owner, plan, cores);
    const PhaseTime il = model_level_schedule(mach, ilu_w, sched, cores);
    const PhaseTime ip = model_p2p(mach, ilu_w, deps, owner, plan, cores);
    const std::string c = ".c" + std::to_string(cores);
    rep.model["trsv.level_gbs" + c] = tl.achieved_bw_gbs;
    rep.model["trsv.p2p_gbs" + c] = tp.achieved_bw_gbs;
    rep.model["ilu.level_gbs" + c] = il.achieved_bw_gbs;
    rep.model["ilu.p2p_gbs" + c] = ip.achieved_bw_gbs;
    t.row({Table::num(cores), Table::num(tl.achieved_bw_gbs, "%.1f"),
           Table::num(tp.achieved_bw_gbs, "%.1f"),
           Table::num(il.achieved_bw_gbs, "%.1f"),
           Table::num(ip.achieved_bw_gbs, "%.1f"),
           Table::num(100 * tp.achieved_bw_gbs / mach.stream_bw_gbs,
                      "%.0f%%")});
  }
  t.print();
  std::printf(
      "\nPaper: TRSV hits ~94%% of STREAM and saturates beyond 4 cores; P2P "
      "above level-scheduling everywhere. Shape check those two columns.\n");
  rep.counters["factor_blocks"] = static_cast<std::uint64_t>(f.num_blocks());
  rep.counters["level_wavefronts"] = static_cast<std::uint64_t>(sched.nlevels);
  rep.metrics["dag_parallelism"] = dag_parallelism(deps);

  // Measured on the host (complementing the model rows above): achieved
  // bandwidth of the Jacobian SpMV — scalar serial vs the TeamExecutor
  // SIMD microkernel — and of the fused vs unfused Krylov vector kernels.
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const std::size_t nvec = static_cast<std::size_t>(jac.num_rows()) * kBs;
  AVec<double> x(nvec), y(nvec, 0.0);
  Rng vrng(7);
  for (auto& xi : x) xi = vrng.uniform(-1, 1);
  const double spmv_gb =
      (static_cast<double>(jac.stream_bytes()) + 16.0 * nvec) * 1e-9;
  const double ts = time_best([&] { spmv_serial(jac, x, y); });
  const double tp = time_best([&] { spmv_parallel(jac, x, y, threads); });
  rep.metrics["spmv.serial_gbs"] = spmv_gb / ts;
  rep.metrics["spmv.simd_team_gbs"] = spmv_gb / tp;
  std::printf("\nmeasured SpMV: serial %.2f GB/s, SIMD team(%d) %.2f GB/s\n",
              spmv_gb / ts, threads, spmv_gb / tp);

  constexpr std::size_t kK = 8;
  std::vector<AVec<double>> basis(kK);
  std::vector<std::span<const double>> spans;
  for (auto& b : basis) {
    b.resize(nvec);
    for (auto& bi : b) bi = vrng.uniform(-1, 1);
    spans.emplace_back(b.data(), nvec);
  }
  AVec<double> w(nvec);
  const VecOps vec{threads};
  double dots[kK], h[kK + 1];
  const double tu = time_best([&] {
    for (std::size_t k = 0; k < kK; ++k) dots[k] = vec.dot(spans[k], x);
  });
  const double tf = time_best([&] {
    vec.mdot(std::span<const std::span<const double>>(spans.data(), kK), x,
             std::span<double>(dots, kK));
  });
  const double mdot_unfused_gb = 16.0 * nvec * kK * 1e-9;
  const double mdot_fused_gb = 8.0 * nvec * (kK + 1) * 1e-9;
  rep.metrics["vecops.mdot_unfused_gbs"] = mdot_unfused_gb / tu;
  rep.metrics["vecops.mdot_fused_gbs"] = mdot_fused_gb / tf;
  rep.metrics["vecops.mdot_fused_speedup"] = tu / tf;
  reset_vecops_stats();
  const double tmgs = time_best([&] {
    vec.copy(x, w);
    vec.orthogonalize(std::span<const std::span<const double>>(spans.data(),
                                                               kK),
                      w, std::span<double>(h, kK + 1));
  });
  rep.metrics["vecops.mgs_column_seconds"] = tmgs;
  rep.add_vecops_stats();
  std::printf("measured mdot(k=%zu): unfused %.2f GB/s, fused %.2f GB/s "
              "(%.2fx); fused MGS column %.3f ms\n",
              kK, mdot_unfused_gb / tu, mdot_fused_gb / tf, tu / tf,
              1e3 * tmgs);
  return write_report(cli, rep) ? 0 : 1;
}
