// Fig. 6a reproduction: the flux-kernel optimization ladder.
//
// Paper reference (Mesh-C, E5-2690v2): relative to the 1-thread base code,
// METIS-threading to 20 threads, then AoS data layout (+40%), SIMD across
// edges (+40%), software prefetch (+15%) compound to 20.6x.
//
// Here the single-core effects (layout, SIMD, prefetch) are *measured* on
// the host; the threading dimension is *modelled* on the paper machine from
// the real partition's replication/imbalance and cache-simulated traffic.
#include "bench_common.hpp"

#include "core/flux_kernels.hpp"
#include "core/gradients.hpp"
#include "machine/cache_sim.hpp"
#include "machine/kernel_model.hpp"
#include "parallel/edge_partition.hpp"
#include "util/rng.hpp"

using namespace fun3d;
using namespace fun3d::bench;

namespace {

struct Variant {
  const char* name;
  FluxKernelConfig cfg;
};

double measure_seconds(const Physics& ph, const EdgeArrays& e,
                       const EdgeLoopPlan& plan, const FluxKernelConfig& cfg,
                       const FlowFields& f, AVec<double>& r) {
  return time_best([&] {
    std::fill(r.begin(), r.end(), 0.0);
    compute_edge_fluxes(ph, e, plan, cfg, f, {r.data(), r.size()});
  });
}

/// Cache-simulated per-thread DRAM traffic and miss lines for the variant.
EdgeLoopCounts simulate_thread(const EdgeArrays& e, const FlowFields& f,
                               const FluxKernelConfig& cfg,
                               std::span<const idx_t> edges,
                               const MachineSpec& mach) {
  CacheSim sim(mach.caches);
  trace_flux_accesses(e, edges, cfg, f, sim);
  EdgeLoopCounts c;
  c.edges = static_cast<double>(edges.size());
  const double flops = flux_flops_per_edge(cfg) * c.edges;
  if (cfg.simd) {
    c.simd_flops = flops * 0.9;   // write-out stays scalar (paper: <5%)
    c.scalar_flops = flops * 0.1;
  } else {
    c.scalar_flops = flops;
  }
  c.dram_bytes = static_cast<double>(sim.dram_bytes());
  c.llc_miss_lines = static_cast<double>(sim.level(sim.num_levels() - 1).misses());
  c.l2_miss_lines = static_cast<double>(
      sim.num_levels() > 1 ? sim.level(1).misses() : 0);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 4.0);
  const int threads = static_cast<int>(cli.get_int("threads", 20));
  const int cores = static_cast<int>(cli.get_int("cores", 10));

  header("Fig. 6a", "flux kernel optimization ladder");
  PerfReport rep =
      make_report(cli, "fig6a", "flux kernel optimization ladder");
  rep.params["threads"] = threads;
  rep.params["cores"] = cores;
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale);
  Physics ph;
  FlowFields f(m);
  f.set_uniform(ph.freestream);
  {
    Rng rng(1);
    for (auto& q : f.q) q += rng.uniform(-0.05, 0.05);
  }
  EdgeArrays e(m);
  const EdgeLoopPlan serial = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, serial, f);
  f.sync_soa_from_aos();
  AVec<double> r(static_cast<std::size_t>(f.nv) * kNs, 0.0);

  Variant variants[4];
  variants[0] = {"base (SoA scalar)", {}};
  variants[0].cfg.layout = VertexLayout::kSoA;
  variants[1] = {"+AoS layout", {}};
  variants[2] = {"+SIMD", {}};
  variants[2].cfg.simd = true;
  variants[3] = {"+prefetch", {}};
  variants[3].cfg.simd = true;
  variants[3].cfg.prefetch = true;

  const MachineSpec mach = MachineSpec::xeon_e5_2690v2();
  const LatencyModel lat;
  const EdgeLoopPlan metis =
      build_edge_plan(m, EdgeStrategy::kReplicationPartitioned, cores);

  const double paper_step[4] = {1.0, 1.4, 1.4 * 1.4, 1.4 * 1.4 * 1.15};
  Table t({"variant", "host s/pass", "host speedup", "modelled 10c speedup",
           "paper 1-core ladder"});
  double base_host = 0, base_model = 0;
  for (int i = 0; i < 4; ++i) {
    const Variant& v = variants[i];
    const double host = measure_seconds(ph, e, serial, v.cfg, f, r);
    // Model: serial baseline time vs threaded optimized time on the paper
    // machine, with traffic from the cache simulator.
    std::vector<EdgeLoopCounts> per_thread;
    for (idx_t th = 0; th < metis.nthreads; ++th)
      per_thread.push_back(
          simulate_thread(e, f, v.cfg, metis.edges_of(th), mach));
    const PhaseTime par =
        model_edge_loop(mach, lat, per_thread, v.cfg.prefetch);
    if (i == 0) {
      std::vector<idx_t> all(m.edges.size());
      for (std::size_t k = 0; k < all.size(); ++k) all[k] = static_cast<idx_t>(k);
      const EdgeLoopCounts total = simulate_thread(e, f, v.cfg, all, mach);
      base_model = model_edge_loop(mach, lat, {total}, false).seconds;
      base_host = host;
    }
    t.row({v.name, Table::num(host, "%.4f"),
           Table::num(base_host / host, "%.2f"),
           Table::num(base_model / par.seconds, "%.1f"),
           Table::num(paper_step[i], "%.2f")});
    const std::string key = "variant" + std::to_string(i);
    rep.metrics[key + ".host_seconds"] = host;
    rep.metrics[key + ".host_speedup"] = base_host / host;
    rep.model[key + ".speedup_10c"] = base_model / par.seconds;
  }
  t.print();
  rep.add_edge_plan(metis, "metis.");
  std::printf(
      "\nPaper total: 20.6x at %d threads (%d cores). Shape check: each rung "
      "improves on the previous; the modelled threaded speedup lands in the "
      "10-25x band.\n",
      threads, cores);
  return write_report(cli, rep) ? 0 : 1;
}
