// Table II reproduction: ILU(0) vs ILU(1) — available parallelism,
// iterations to converge, and parallel execution time.
//
// Paper reference (Mesh-C):
//                         ILU-0    ILU-1
//   available parallelism  248x      60x
//   linear iterations       777      383
//   1-core time (s)         430      282
//   10-core time (s)         62       81
//   speedup                 6.9x     3.5x     (ILU-0 wins by ~1.3x)
//
// Parallelism is measured on the real factors; iteration counts from real
// solves; the 10-core projection applies the machine model's TRSV/ILU
// threading multipliers, which differ by fill level via the DAG structure.
#include "bench_common.hpp"

#include <omp.h>

#include "core/jacobian.hpp"
#include "machine/kernel_model.hpp"
#include "sparse/trsv.hpp"

using namespace fun3d;
using namespace fun3d::bench;

namespace {

struct FillResult {
  double parallelism = 0;
  std::uint64_t iterations = 0;
  double seconds_1core = 0;
  double speedup_10c = 0;
};

/// Measured numeric-factorization times on the host: serial vs the two
/// parallel schedules, on the real solver Jacobian at this fill level.
struct FactorTimes {
  double serial = 0;
  double levels = 0;
  double p2p = 0;
};

FactorTimes measure_factor(double scale, int fill, int threads,
                           PerfReport& rep, const std::string& prefix) {
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale, /*report=*/false);
  const Physics ph;
  const Bcsr4 jac = make_solver_jacobian(m, ph);
  const IluPattern pattern = symbolic_ilu(jac.structure(), fill);
  const IluSchedules sched = IluSchedules::build(pattern, threads, true);
  FactorTimes t;
  t.serial = time_best([&] { factorize_ilu(jac, pattern); });
  t.levels = time_best([&] { factorize_ilu_levels(jac, pattern, sched); });
  t.p2p = time_best([&] { factorize_ilu_p2p(jac, pattern, sched); });
  rep.metrics[prefix + "factor_serial_seconds"] = t.serial;
  rep.metrics[prefix + "factor_levels_seconds"] = t.levels;
  rep.metrics[prefix + "factor_p2p_seconds"] = t.p2p;
  rep.add_factor_schedule(sched, prefix);
  return t;
}

FillResult run_fill(double scale, int fill) {
  FillResult r;
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale, /*report=*/false);
  SolverConfig cfg = SolverConfig::baseline();
  cfg.fill_level = fill;
  cfg.ptc.max_steps = 40;
  cfg.ptc.rtol = 1e-8;
  FlowSolver solver(std::move(m), cfg);
  const SolveStats st = solver.solve();
  r.iterations = st.linear_iterations;
  r.seconds_1core = st.wall_seconds;
  r.parallelism = st.ilu_parallelism;

  // Modelled 10-core speedup of the recurrence portion: TRSV+ILU threading
  // is limited by the factor's DAG; edge kernels scale near-linearly. Use
  // the measured profile to weight the two classes.
  const auto frac = solver.profile().fractions();
  double recur_share = 0;
  for (const char* k : {kernel::kIlu, kernel::kTrsv})
    if (frac.count(k)) recur_share += frac.at(k);
  // Recurrence threading multiplier: min(DAG parallelism, bandwidth cap 4x)
  // with a sync-overhead knee when parallelism is low.
  const double recur_mult = std::min(4.0, 0.8 * std::sqrt(r.parallelism));
  const double other_mult = 8.0;  // compute-bound remainder at 10 cores
  r.speedup_10c =
      1.0 / (recur_share / recur_mult + (1.0 - recur_share) / other_mult);
  return r;
}

}  // namespace

/// DAG parallelism of the ILU(k) *pattern* on a larger mesh — cheap
/// (symbolic only) and shows how Table II's 248x/60x emerge with size.
double pattern_parallelism(double scale, int fill) {
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale, /*report=*/false);
  const Bcsr4 jac = make_jacobian_matrix(m);
  const IluPattern p = symbolic_ilu(jac.structure(), fill);
  CsrGraph deps;
  const idx_t n = p.rows.num_vertices();
  deps.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t i = 0; i < n; ++i)
    for (idx_t c : p.rows.neighbors(i))
      if (c < i) deps.rowptr[static_cast<std::size_t>(i) + 1]++;
  for (std::size_t k = 1; k < deps.rowptr.size(); ++k)
    deps.rowptr[k] += deps.rowptr[k - 1];
  deps.col.reserve(static_cast<std::size_t>(deps.rowptr.back()));
  for (idx_t i = 0; i < n; ++i)
    for (idx_t c : p.rows.neighbors(i))
      if (c < i) deps.col.push_back(c);
  return dag_parallelism(deps);
}

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 6.0);
  const double big_scale = cli.get_double("big-scale", 2.0);

  header("Table II", "ILU(0) vs ILU(1): parallelism / convergence tradeoff");
  PerfReport rep = make_report(
      cli, "table2", "ILU(0) vs ILU(1) parallelism/convergence tradeoff");
  rep.params["big_scale"] = big_scale;
  const FillResult r0 = run_fill(scale, 0);
  const FillResult r1 = run_fill(scale, 1);
  const int threads =
      static_cast<int>(cli.get_int("threads", omp_get_max_threads()));
  rep.params["threads"] = threads;
  const FactorTimes f0 = measure_factor(scale, 0, threads, rep, "ilu0.");
  const FactorTimes f1 = measure_factor(scale, 1, threads, rep, "ilu1.");
  const double p0_big = pattern_parallelism(big_scale, 0);
  const double p1_big = pattern_parallelism(big_scale, 1);
  for (const auto& [fill, r] : {std::pair{"ilu0", &r0}, {"ilu1", &r1}}) {
    const std::string p = std::string(fill) + ".";
    rep.metrics[p + "dag_parallelism"] = r->parallelism;
    rep.counters[p + "linear_iterations"] = r->iterations;
    rep.metrics[p + "wall_seconds"] = r->seconds_1core;
    rep.model[p + "speedup_10c"] = r->speedup_10c;
  }
  rep.metrics["ilu0.pattern_parallelism_big"] = p0_big;
  rep.metrics["ilu1.pattern_parallelism_big"] = p1_big;

  Table t({"metric", "ILU-0", "ILU-1", "paper ILU-0", "paper ILU-1"});
  t.row({"available parallelism", Table::num(r0.parallelism, "%.0f"),
         Table::num(r1.parallelism, "%.0f"), "248", "60"});
  t.row({"parallelism at 1/8-size mesh", Table::num(p0_big, "%.0f"),
         Table::num(p1_big, "%.0f"), "248", "60"});
  t.row({"linear iterations", Table::num(static_cast<double>(r0.iterations)),
         Table::num(static_cast<double>(r1.iterations)), "777", "383"});
  t.row({"1-core time (s, host, scaled mesh)",
         Table::num(r0.seconds_1core, "%.2f"),
         Table::num(r1.seconds_1core, "%.2f"), "430", "282"});
  t.row({"modelled 10-core speedup", Table::num(r0.speedup_10c, "%.1f"),
         Table::num(r1.speedup_10c, "%.1f"), "6.9", "3.5"});
  t.row({"measured factor speedup (levels)",
         Table::num(f0.serial / f0.levels, "%.2f"),
         Table::num(f1.serial / f1.levels, "%.2f"), "", ""});
  t.row({"measured factor speedup (p2p)",
         Table::num(f0.serial / f0.p2p, "%.2f"),
         Table::num(f1.serial / f1.p2p, "%.2f"), "", ""});
  const double ratio =
      (r0.seconds_1core / r0.speedup_10c) > 0
          ? (r1.seconds_1core / r1.speedup_10c) /
                (r0.seconds_1core / r0.speedup_10c)
          : 0;
  t.row({"ILU-0 advantage at 10 cores", Table::num(ratio, "%.2f"), "",
         "1.3", ""});
  t.print();
  std::printf(
      "\nShape check: ILU-0 has far more DAG parallelism but needs more "
      "iterations; at 10 cores ILU-0 overtakes ILU-1.\n");
  rep.metrics["ilu0_advantage_10c"] = ratio;
  return write_report(cli, rep) ? 0 : 1;
}
