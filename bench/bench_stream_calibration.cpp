// Supporting bench: host calibration vs the paper platform's numbers.
//
// Paper platform (1 socket E5-2690v2): 240 Gflop/s DP peak (AVX), 42.2 GB/s
// peak DRAM, 34.8 GB/s STREAM. This bench measures the host's actual triad
// bandwidth and flop rates — the anchors for interpreting "measured on
// host" numbers in the other benches — and sanity-checks the machine model.
#include "bench_common.hpp"

#include "machine/calibrate.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const std::size_t mb = static_cast<std::size_t>(cli.get_int("mb", 64));

  header("calibration", "host microbenchmarks vs paper platform");
  PerfReport rep = make_report(cli, "calibration",
                               "host microbenchmarks vs paper platform");
  rep.params["mb"] = static_cast<double>(mb);
  const HostCalibration c = calibrate_host(mb << 20);
  const MachineSpec paper = MachineSpec::xeon_e5_2690v2();
  rep.metrics["stream_triad_gbs"] = c.stream_triad_gbs;
  rep.metrics["scalar_gflops"] = c.scalar_gflops;
  rep.metrics["simd_gflops"] = c.simd_gflops;
  rep.model["paper_stream_gbs"] = paper.stream_bw_gbs;
  rep.model["paper_peak_gflops"] = paper.peak_gflops();

  Table t({"quantity", "host (1 core)", "paper node (10 cores)"});
  t.row({"STREAM triad GB/s", Table::num(c.stream_triad_gbs, "%.1f"),
         Table::num(paper.stream_bw_gbs, "%.1f")});
  t.row({"scalar Gflop/s", Table::num(c.scalar_gflops, "%.1f"),
         Table::num(paper.cores * paper.ghz * paper.scalar_flops_per_cycle,
                    "%.0f")});
  t.row({"SIMD Gflop/s", Table::num(c.simd_gflops, "%.1f"),
         Table::num(paper.peak_gflops(), "%.0f")});
  t.print();

  const MachineSpec host = host_machine(c);
  std::printf("\nderived host MachineSpec: '%s', %.1f GB/s, SIMD/scalar "
              "ratio %.1fx\n",
              host.name.c_str(), host.stream_bw_gbs,
              c.simd_gflops / c.scalar_gflops);
  std::printf(
      "model sanity: paper-machine 10-core bandwidth %.1f GB/s saturates at "
      "%.0f cores (bw_1core %.1f GB/s)\n",
      paper.effective_bw_gbs(10),
      paper.stream_bw_gbs / paper.bw_1core_gbs, paper.bw_1core_gbs);
  return write_report(cli, rep) ? 0 : 1;
}
