// Fig. 10 reproduction: communication overheads while scaling to 256 nodes.
//
// Paper reference: Mesh-D becomes communication-bound at 256 nodes (~70% of
// execution time in communication); >90% of the communication overhead is
// MPI_Allreduce from the Krylov solver; point-to-point messages are <5%.
#include "bench_common.hpp"

#include <cmath>

#include "netsim/cluster_sim.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 3.0);
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes", 256));

  header("Fig. 10", "communication decomposition vs node count");
  PerfReport rep = make_report(
      cli, "fig10", "communication decomposition vs node count");
  rep.params["max_nodes"] = max_nodes;
  const TetMesh mesh = make_mesh(MeshPreset::kMeshD, scale);
  ClusterConfig cfg;
  cfg.optimized = true;
  cfg.iterations_of_ranks = [](int ranks) {
    return 1709.0 * (1.0 + 0.025 * std::log2(std::max(1, ranks)));
  };

  // --measured: feed the overlap fraction and halo-exchange rate of a real
  // in-process hybrid run (HybridSolver) into the simulator in place of
  // the analytic defaults; the comm.* family lands in the report where
  // validate_report cross-checks the ghost accounting.
  if (cli.get_bool("measured", false)) {
    const comm::CommReport cr = measure_comm(rep);
    cfg.halo_overlap_fraction = cr.overlap_fraction;
    cfg.halo_exchanges_per_iter = cr.exchanges_per_linear_iteration;
  }

  std::vector<int> nodes;
  for (int n = 1; n <= max_nodes; n *= 2) nodes.push_back(n);
  const auto pts = simulate_strong_scaling(mesh, cfg, nodes);

  Table t({"nodes", "compute s", "allreduce s", "p2p s", "comm %",
           "allreduce % of comm", "p2p % of comm"});
  for (const auto& p : pts) {
    const double comm = p.allreduce_seconds + p.p2p_seconds;
    const std::string n = ".n" + std::to_string(p.nodes);
    rep.model["compute_seconds" + n] = p.compute_seconds;
    rep.model["allreduce_seconds" + n] = p.allreduce_seconds;
    rep.model["p2p_seconds" + n] = p.p2p_seconds;
    rep.model["comm_fraction" + n] = p.comm_fraction;
    t.row({Table::num(p.nodes), Table::num(p.compute_seconds, "%.3f"),
           Table::num(p.allreduce_seconds, "%.3f"),
           Table::num(p.p2p_seconds, "%.4f"),
           Table::num(100 * p.comm_fraction, "%.0f%%"),
           Table::num(comm > 0 ? 100 * p.allreduce_seconds / comm : 0,
                      "%.0f%%"),
           Table::num(comm > 0 ? 100 * p.p2p_seconds / comm : 0, "%.1f%%")});
  }
  t.print();
  std::printf(
      "\nPaper: ~70%% comm at 256 nodes; >90%% of comm is Allreduce; p2p "
      "<5%%. Shape check the last three columns' trends.\n");
  return write_report(cli, rep) ? 0 : 1;
}
