// Fig. 8a reproduction: full-application time to solution, baseline vs
// optimized.
//
// Paper reference (Mesh-C, 10 cores): 6.9x overall; post-optimization the
// bandwidth-bound TRSV becomes the hotspot and "other" (vector primitives,
// scatters) grows to ~30% of execution time.
//
// Measured: both solver configurations run for real on the host (single
// core), giving the true single-core optimization gain and kernel profile.
// Modelled: per-kernel 10-core speedups from the machine model (compute-
// bound kernels near-linear, TRSV/ILU bandwidth-limited), composed by
// Amdahl over the measured baseline profile.
#include "bench_common.hpp"

using namespace fun3d;
using namespace fun3d::bench;

namespace {

/// Modelled 10-core speedup per kernel on the paper machine (drivers:
/// Fig. 6b for edge loops, Fig. 7 for the recurrences, threaded vecops).
double kernel_speedup_10c(const std::string& k) {
  if (k == kernel::kFlux) return 9.5;      // compute bound, 4% replication
  if (k == kernel::kGradient) return 9.5;  // compute bound
  if (k == kernel::kJacobian) return 9.0;  // compute bound, owner rows
  if (k == kernel::kIlu) return 4.5;       // bandwidth-limited beyond 8c
  if (k == kernel::kTrsv) return 3.2;      // saturates at ~4 cores
  if (k == kernel::kVecOps) return 3.8;    // streaming, bandwidth bound
  return 3.0;                              // other: scatters, bookkeeping
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 6.0);

  header("Fig. 8a", "full application: baseline vs optimized");
  PerfReport rep = make_report(cli, "fig8a",
                               "full application: baseline vs optimized");
  SolverConfig base = SolverConfig::baseline();
  SolverConfig opt = SolverConfig::optimized(1);  // 1 host core available
  base.ptc.max_steps = opt.ptc.max_steps = 40;
  base.ptc.rtol = opt.ptc.rtol = 1e-8;

  TetMesh m1 = make_mesh(MeshPreset::kMeshC, scale);
  TetMesh m2 = make_mesh(MeshPreset::kMeshC, scale, /*report=*/false);
  FlowSolver sb(std::move(m1), base);
  const SolveStats stb = sb.solve();
  FlowSolver so(std::move(m2), opt);
  const SolveStats sto = so.solve();

  std::printf("%s", sb.profile().format("baseline profile (measured)").c_str());
  std::printf("%s",
              so.profile().format("optimized profile (measured)").c_str());
  std::printf(
      "\nmeasured single-core time to solution: baseline %.2fs, optimized "
      "%.2fs => single-core optimization gain %.2fx\n",
      stb.wall_seconds, sto.wall_seconds, stb.wall_seconds / sto.wall_seconds);
  sb.fill_report(rep, "baseline.");
  so.fill_report(rep, "optimized.");
  rep.metrics["baseline.wall_seconds"] = stb.wall_seconds;
  rep.metrics["optimized.wall_seconds"] = sto.wall_seconds;
  rep.metrics["single_core_gain"] = stb.wall_seconds / sto.wall_seconds;

  // Amdahl composition over the measured *baseline* fractions, with the
  // single-core gain folded into each optimized kernel's speedup.
  const auto frac = sb.profile().fractions();
  const double single_core = stb.wall_seconds / sto.wall_seconds;
  double denom = 0;
  for (const auto& [k, fshare] : frac)
    denom += fshare / (kernel_speedup_10c(k) *
                       (k == kernel::kTrsv || k == kernel::kIlu ||
                                k == kernel::kVecOps
                            ? 1.0
                            : single_core));
  const double app_speedup = 1.0 / denom;
  std::printf(
      "modelled 10-core full-application speedup vs baseline: %.1fx "
      "(paper: 6.9x)\n",
      app_speedup);

  // Post-optimization hotspot shift (paper: TRSV becomes the hotspot).
  Table t({"kernel", "baseline share", "modelled optimized 10c share"});
  for (const auto& [k, fshare] : frac) {
    const double sp =
        kernel_speedup_10c(k) *
        (k == kernel::kTrsv || k == kernel::kIlu || k == kernel::kVecOps
             ? 1.0
             : single_core);
    t.row({k, Table::num(100 * fshare, "%.1f%%"),
           Table::num(100 * (fshare / sp) * app_speedup, "%.1f%%")});
  }
  t.print();
  std::printf(
      "\nShape check: speedup in the 5-9x band; TRSV + other dominate the "
      "optimized profile.\n");
  rep.model["app_speedup_10c"] = app_speedup;
  if (!write_report(cli, rep)) return 1;
  return stb.converged && sto.converged ? 0 : 1;
}
