// Ablation (paper §V-A): what the RCM reordering + sorted edge endpoints
// buy — graph bandwidth, cache traffic of the flux kernel (cache-simulated
// on the real address stream), measured host kernel time, and the
// replication overhead of natural-order threading.
#include "bench_common.hpp"

#include "core/flux_kernels.hpp"
#include "core/gradients.hpp"
#include "machine/cache_sim.hpp"
#include "util/rng.hpp"

using namespace fun3d;
using namespace fun3d::bench;

namespace {

struct ReorderResult {
  idx_t bandwidth = 0;
  double host_seconds = 0;
  double dram_bytes_per_edge = 0;
  double natural_replication = 0;
};

ReorderResult evaluate(TetMesh m) {
  ReorderResult r;
  r.bandwidth = bandwidth_info(m.vertex_graph()).bandwidth;
  Physics ph;
  FlowFields f(m);
  f.set_uniform(ph.freestream);
  Rng rng(1);
  for (auto& q : f.q) q += rng.uniform(-0.05, 0.05);
  EdgeArrays e(m);
  const EdgeLoopPlan serial = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, serial, f);
  AVec<double> resid(static_cast<std::size_t>(f.nv) * kNs, 0.0);
  FluxKernelConfig cfg;
  r.host_seconds = time_best([&] {
    std::fill(resid.begin(), resid.end(), 0.0);
    compute_edge_fluxes(ph, e, serial, cfg, f, {resid.data(), resid.size()});
  });
  // Cache-simulated DRAM traffic. One thread's effective share of the
  // hierarchy with all 10 cores active: private L1/L2 plus ~1/10 of the
  // 25 MB LLC — the regime where numbering locality decides DRAM traffic
  // (a scaled-down mesh in a full LLC would hide the effect entirely).
  CacheSim sim({{32 * 1024, 8, 64},
                {256 * 1024, 8, 64},
                {2560 * 1024, 20, 64}});
  std::vector<idx_t> order(m.edges.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<idx_t>(i);
  trace_flux_accesses(e, order, cfg, f, sim);
  r.dram_bytes_per_edge =
      static_cast<double>(sim.dram_bytes()) / static_cast<double>(m.edges.size());
  r.natural_replication =
      build_edge_plan(m, EdgeStrategy::kReplicationNatural, 10)
          .replication_overhead;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 2.5);

  header("Ablation", "RCM reordering (paper §V-A locality optimization)");
  PerfReport rep = make_report(cli, "ablation_reorder",
                               "RCM reordering locality optimization");
  TetMesh shuffled = generate_wing_bump(preset_params(MeshPreset::kMeshC, scale));
  shuffle_numbering(shuffled, 12345);
  TetMesh reordered = shuffled;  // copy, then RCM
  rcm_reorder(reordered);

  const ReorderResult bad = evaluate(std::move(shuffled));
  const ReorderResult good = evaluate(std::move(reordered));

  Table t({"metric", "scrambled numbering", "after RCM", "improvement"});
  t.row({"adjacency bandwidth", Table::num(bad.bandwidth),
         Table::num(good.bandwidth),
         Table::num(static_cast<double>(bad.bandwidth) / good.bandwidth,
                    "%.1fx")});
  t.row({"flux kernel host s/pass", Table::num(bad.host_seconds, "%.4f"),
         Table::num(good.host_seconds, "%.4f"),
         Table::num(bad.host_seconds / good.host_seconds, "%.2fx")});
  t.row({"cache-sim DRAM bytes/edge", Table::num(bad.dram_bytes_per_edge, "%.0f"),
         Table::num(good.dram_bytes_per_edge, "%.0f"),
         Table::num(bad.dram_bytes_per_edge / good.dram_bytes_per_edge,
                    "%.2fx")});
  t.row({"natural-split replication @10t",
         Table::num(100 * bad.natural_replication, "%.0f%%"),
         Table::num(100 * good.natural_replication, "%.0f%%"), ""});
  t.print();
  std::printf(
      "\nShape check: RCM collapses the bandwidth by orders of magnitude, "
      "cuts irregular-gather DRAM traffic, speeds up the kernel, and makes "
      "even naive natural-order threading viable.\n");
  for (const auto& [name, r] :
       {std::pair{"scrambled", &bad}, {"rcm", &good}}) {
    const std::string p = std::string(name) + ".";
    rep.metrics[p + "adjacency_bandwidth"] =
        static_cast<double>(r->bandwidth);
    rep.metrics[p + "flux_seconds"] = r->host_seconds;
    rep.metrics[p + "dram_bytes_per_edge"] = r->dram_bytes_per_edge;
    rep.metrics[p + "natural_replication_10t"] = r->natural_replication;
  }
  return write_report(cli, rep) ? 0 : 1;
}
