// Fig. 6b reproduction: flux-kernel scaling with core count for the three
// parallelization strategies.
//
// Paper reference: "Basic partitioning with atomics" scales near-linearly
// but with low absolute performance; "Basic partitioning with replication"
// has better absolute performance but scales worse (41% redundant compute
// at 20 threads); "METIS based partitioning" is best and near-linear (4%
// redundant compute).
//
// Replication/imbalance are measured from the real plans; per-core time is
// modelled on the paper machine.
#include "bench_common.hpp"

#include "core/flux_kernels.hpp"
#include "machine/kernel_model.hpp"
#include "parallel/edge_partition.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 4.0);

  header("Fig. 6b", "flux scaling vs cores per threading strategy");
  PerfReport rep = make_report(cli, "fig6b",
                               "flux scaling vs cores per threading strategy");
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale);
  const MachineSpec mach = MachineSpec::xeon_e5_2690v2();
  const LatencyModel lat;
  FluxKernelConfig cfg;  // AoS + scalar kernel: isolates the threading axis
  const double flops_per_edge = flux_flops_per_edge(cfg);
  // Effective DRAM bytes per edge (post-RCM reuse; see bench_fig6a's cache
  // simulation for the derivation of this constant).
  const double bytes_per_edge = 64.0;

  const EdgeStrategy strategies[] = {EdgeStrategy::kAtomics,
                                     EdgeStrategy::kReplicationNatural,
                                     EdgeStrategy::kReplicationPartitioned};
  Table t({"cores", "atomics Gf/s", "repl-natural Gf/s", "metis Gf/s",
           "repl-nat overhead", "metis overhead"});
  const double total_flops = flops_per_edge * static_cast<double>(m.edges.size());

  for (int cores : {1, 2, 4, 6, 8, 10}) {
    std::vector<std::string> row{Table::num(cores)};
    double overhead_nat = 0, overhead_metis = 0;
    for (EdgeStrategy s : strategies) {
      const EdgeLoopPlan plan = build_edge_plan(m, s, cores);
      std::vector<EdgeLoopCounts> work(static_cast<std::size_t>(cores));
      if (s == EdgeStrategy::kAtomics) {
        for (int c = 0; c < cores; ++c) {
          auto& w = work[static_cast<std::size_t>(c)];
          w.edges = static_cast<double>(plan.edge_begin[static_cast<std::size_t>(c) + 1] -
                                        plan.edge_begin[static_cast<std::size_t>(c)]);
          w.scalar_flops = w.edges * flops_per_edge;
          w.dram_bytes = w.edges * bytes_per_edge;
          w.atomics = cores > 1 ? w.edges * 2 * kNs : 0;
        }
      } else {
        for (int c = 0; c < cores; ++c) {
          auto& w = work[static_cast<std::size_t>(c)];
          w.edges = static_cast<double>(plan.edges_of(c).size());
          w.scalar_flops = w.edges * flops_per_edge;
          w.dram_bytes = w.edges * bytes_per_edge;
        }
      }
      const PhaseTime pt = model_edge_loop(mach, lat, work, false);
      rep.model[std::string(edge_strategy_name(s)) + ".gflops.c" +
                std::to_string(cores)] = total_flops / pt.seconds / 1e9;
      row.push_back(Table::num(total_flops / pt.seconds / 1e9, "%.2f"));
      if (s == EdgeStrategy::kReplicationNatural)
        overhead_nat = plan.replication_overhead;
      if (s == EdgeStrategy::kReplicationPartitioned)
        overhead_metis = plan.replication_overhead;
    }
    row.push_back(Table::num(100 * overhead_nat, "%.1f%%"));
    row.push_back(Table::num(100 * overhead_metis, "%.1f%%"));
    t.row(row);
  }
  t.print();

  const EdgeLoopPlan nat20 =
      build_edge_plan(m, EdgeStrategy::kReplicationNatural, 20);
  const EdgeLoopPlan metis20 =
      build_edge_plan(m, EdgeStrategy::kReplicationPartitioned, 20);
  std::printf(
      "\nRedundant compute at 20 threads: natural %.0f%% (paper 41%%), "
      "partitioned %.1f%% (paper 4%%).\n",
      100 * nat20.replication_overhead, 100 * metis20.replication_overhead);
  std::printf(
      "Shape check: metis >= replication-natural >= atomics in absolute "
      "rate; atomics and metis scale near-linearly.\n");
  rep.add_edge_plan(nat20, "natural20.");
  rep.add_edge_plan(metis20, "metis20.");
  return write_report(cli, rep) ? 0 : 1;
}
