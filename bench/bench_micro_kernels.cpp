// google-benchmark microbenchmarks of the core kernels — the fine-grained
// complement to the figure/table reproduction benches: per-edge and
// per-block costs of every kernel variant, on the host.
//
// Accepts the repo-wide `--json <path>` and `--trace <path>` flags
// (stripped before benchmark::Initialize sees them): per-benchmark real
// times land in the perf report's metrics section; the trace flag exports
// a Chrome trace-event timeline of the benchmarked kernels.
#include <benchmark/benchmark.h>

#include "core/boundary.hpp"
#include "core/flux_kernels.hpp"
#include "core/gradients.hpp"
#include "core/jacobian.hpp"
#include "core/newton.hpp"
#include "core/profile.hpp"
#include "core/vecops.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trsv.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace fun3d {
namespace {

struct KernelFixture {
  TetMesh mesh;
  FlowFields fields;
  EdgeArrays edges;
  EdgeLoopPlan plan;
  AVec<double> resid;

  KernelFixture()
      : mesh(make()),
        fields(mesh),
        edges(mesh),
        plan(build_edge_plan(mesh, EdgeStrategy::kAtomics, 1)),
        resid(static_cast<std::size_t>(mesh.num_vertices) * kNs, 0.0) {
    fields.set_uniform({1.0, 1.0, 0.0, 0.0});
    Rng rng(1);
    for (auto& q : fields.q) q += rng.uniform(-0.05, 0.05);
    compute_gradients(mesh, edges, plan, fields);
    fields.sync_soa_from_aos();
  }
  static TetMesh make() {
    TetMesh m = generate_wing_bump(preset_params(MeshPreset::kMeshC, 6.0));
    shuffle_numbering(m, 9);
    rcm_reorder(m);
    return m;
  }
};

KernelFixture& fixture() {
  static KernelFixture f;
  return f;
}

void flux_variant(benchmark::State& state, FluxKernelConfig cfg) {
  auto& f = fixture();
  const Physics ph;
  for (auto _ : state) {
    std::fill(f.resid.begin(), f.resid.end(), 0.0);
    compute_edge_fluxes(ph, f.edges, f.plan, cfg, f.fields,
                        {f.resid.data(), f.resid.size()});
    benchmark::DoNotOptimize(f.resid.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.mesh.num_edges()));
}

void BM_FluxSoAScalar(benchmark::State& state) {
  FluxKernelConfig cfg;
  cfg.layout = VertexLayout::kSoA;
  flux_variant(state, cfg);
}
void BM_FluxAoSScalar(benchmark::State& state) {
  flux_variant(state, FluxKernelConfig{});
}
void BM_FluxAoSSimd(benchmark::State& state) {
  FluxKernelConfig cfg;
  cfg.simd = true;
  flux_variant(state, cfg);
}
void BM_FluxAoSSimdPrefetch(benchmark::State& state) {
  FluxKernelConfig cfg;
  cfg.simd = true;
  cfg.prefetch = true;
  flux_variant(state, cfg);
}
BENCHMARK(BM_FluxSoAScalar);
BENCHMARK(BM_FluxAoSScalar);
BENCHMARK(BM_FluxAoSSimd);
BENCHMARK(BM_FluxAoSSimdPrefetch);

void BM_Gradients(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    compute_gradients(f.mesh, f.edges, f.plan, f.fields);
    benchmark::DoNotOptimize(f.fields.grad.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.mesh.num_edges()));
}
BENCHMARK(BM_Gradients);

void BM_JacobianAssembly(benchmark::State& state) {
  auto& f = fixture();
  const Physics ph;
  Bcsr4 jac = make_jacobian_matrix(f.mesh);
  for (auto _ : state) {
    assemble_jacobian(ph, f.edges, f.plan, f.fields, FluxScheme::kRoe, jac);
    benchmark::DoNotOptimize(jac.block(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.mesh.num_edges()));
}
BENCHMARK(BM_JacobianAssembly);

struct FactorFixture {
  Bcsr4 jac;
  IluPattern p0, p1;
  FactorFixture() {
    auto& f = fixture();
    const Physics ph;
    jac = make_jacobian_matrix(f.mesh);
    assemble_jacobian(ph, f.edges, f.plan, f.fields, FluxScheme::kRoe, jac);
    add_boundary_jacobian(ph, f.mesh, f.fields, jac);
    const std::vector<double> shift(
        static_cast<std::size_t>(f.mesh.num_vertices), 5.0);
    jac.shift_diagonal(shift);
    p0 = symbolic_ilu(jac.structure(), 0);
    p1 = symbolic_ilu(jac.structure(), 1);
  }
};

FactorFixture& factors() {
  static FactorFixture f;
  return f;
}

void BM_IluFullBuffer(benchmark::State& state) {
  auto& ff = factors();
  for (auto _ : state)
    benchmark::DoNotOptimize(factorize_ilu(ff.jac, ff.p1, false, false));
}
void BM_IluCompressed(benchmark::State& state) {
  auto& ff = factors();
  for (auto _ : state)
    benchmark::DoNotOptimize(factorize_ilu(ff.jac, ff.p1, true, false));
}
void BM_IluCompressedSimd(benchmark::State& state) {
  auto& ff = factors();
  for (auto _ : state)
    benchmark::DoNotOptimize(factorize_ilu(ff.jac, ff.p1, true, true));
}
BENCHMARK(BM_IluFullBuffer);
BENCHMARK(BM_IluCompressed);
BENCHMARK(BM_IluCompressedSimd);

void BM_TrsvSerial(benchmark::State& state) {
  auto& ff = factors();
  static const IluFactor f = factorize_ilu(ff.jac, ff.p1);
  const std::size_t n = static_cast<std::size_t>(f.num_rows()) * kBs;
  AVec<double> b(n, 1.0), x(n, 0.0);
  for (auto _ : state) {
    trsv_serial(f, b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.solve_stream_bytes()));
}
BENCHMARK(BM_TrsvSerial);

void BM_SpmvSerial(benchmark::State& state) {
  auto& ff = factors();
  const std::size_t n = static_cast<std::size_t>(ff.jac.num_rows()) * kBs;
  AVec<double> x(n), y(n, 0.0);
  Rng rng(7);
  for (auto& xi : x) xi = rng.uniform(-1, 1);
  for (auto _ : state) {
    spmv_serial(ff.jac, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ff.jac.stream_bytes()));
}
BENCHMARK(BM_SpmvSerial);

void BM_SpmvParallelSimd(benchmark::State& state) {
  auto& ff = factors();
  const std::size_t n = static_cast<std::size_t>(ff.jac.num_rows()) * kBs;
  AVec<double> x(n), y(n, 0.0);
  Rng rng(7);
  for (auto& xi : x) xi = rng.uniform(-1, 1);
  const int nthreads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    spmv_parallel(ff.jac, x, y, nthreads);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ff.jac.stream_bytes()));
}
BENCHMARK(BM_SpmvParallelSimd)->Arg(1)->Arg(2)->Arg(4);

/// Krylov vector operands sized like the solver's linear systems.
struct VecFixture {
  static constexpr std::size_t kK = 8;  ///< basis vectors (restart prefix)
  std::size_t n = 0;
  std::vector<AVec<double>> basis;
  std::vector<std::span<const double>> spans;
  AVec<double> w0, w;

  VecFixture() {
    n = static_cast<std::size_t>(fixture().mesh.num_vertices) * kNs;
    Rng rng(11);
    basis.resize(kK);
    for (auto& b : basis) {
      b.resize(n);
      for (auto& bi : b) bi = rng.uniform(-1, 1);
    }
    for (auto& b : basis) spans.emplace_back(b.data(), n);
    w0.resize(n);
    for (auto& wi : w0) wi = rng.uniform(-1, 1);
    w.resize(n);
  }
};

VecFixture& vecfix() {
  static VecFixture f;
  return f;
}

void BM_MdotUnfused(benchmark::State& state) {
  auto& vf = vecfix();
  const VecOps vec{static_cast<int>(state.range(0))};
  double out[VecFixture::kK];
  for (auto _ : state) {
    for (std::size_t k = 0; k < VecFixture::kK; ++k)
      out[k] = vec.dot(vf.spans[k], vf.w0);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(16 * vf.n * VecFixture::kK));
}
BENCHMARK(BM_MdotUnfused)->Arg(1)->Arg(4);

void BM_MdotFused(benchmark::State& state) {
  auto& vf = vecfix();
  const VecOps vec{static_cast<int>(state.range(0))};
  double out[VecFixture::kK];
  for (auto _ : state) {
    vec.mdot(std::span<const std::span<const double>>(vf.spans.data(),
                                                      VecFixture::kK),
             vf.w0, std::span<double>(out, VecFixture::kK));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(8 * vf.n * (VecFixture::kK + 1)));
}
BENCHMARK(BM_MdotFused)->Arg(1)->Arg(4);

void BM_MgsColumnUnfused(benchmark::State& state) {
  auto& vf = vecfix();
  const VecOps vec{static_cast<int>(state.range(0))};
  double h[VecFixture::kK + 1];
  for (auto _ : state) {
    vec.copy(vf.w0, vf.w);
    for (std::size_t i = 0; i < VecFixture::kK; ++i) {
      h[i] = vec.dot(vf.spans[i], vf.w);
      vec.axpy(-h[i], vf.spans[i], vf.w);
    }
    h[VecFixture::kK] = vec.norm2(vf.w);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_MgsColumnUnfused)->Arg(1)->Arg(4);

void BM_MgsColumnFused(benchmark::State& state) {
  auto& vf = vecfix();
  const VecOps vec{static_cast<int>(state.range(0))};
  double h[VecFixture::kK + 1];
  for (auto _ : state) {
    vec.copy(vf.w0, vf.w);
    vec.orthogonalize(std::span<const std::span<const double>>(
                          vf.spans.data(), VecFixture::kK),
                      vf.w, std::span<double>(h, VecFixture::kK + 1));
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_MgsColumnFused)->Arg(1)->Arg(4);

void BM_SymbolicIlu(benchmark::State& state) {
  auto& ff = factors();
  const int fill = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(symbolic_ilu(ff.jac.structure(), fill));
}
BENCHMARK(BM_SymbolicIlu)->Arg(0)->Arg(1)->Arg(2);

/// Console reporter that additionally records per-benchmark real time into
/// a PerfReport, so `--json` works like in every table/figure bench.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(PerfReport* rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      rep_->metrics[run.benchmark_name() + ".real_ns"] =
          run.GetAdjustedRealTime();
      rep_->counters[run.benchmark_name() + ".iterations"] =
          static_cast<std::uint64_t>(run.iterations);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  PerfReport* rep_;
};

}  // namespace
}  // namespace fun3d

int main(int argc, char** argv) {
  const std::string json_path =
      fun3d::Cli::extract_flag(&argc, argv, "json");
  const std::string trace_path =
      fun3d::Cli::extract_flag(&argc, argv, "trace");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!trace_path.empty()) fun3d::trace::enable();
  fun3d::PerfReport rep =
      fun3d::PerfReport::begin("micro", "core kernel microbenchmarks");
  fun3d::CapturingReporter reporter(&rep);
  fun3d::reset_vecops_stats();
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Fused-kernel accounting for the run: with uncapped teams every MGS
  // column streams its basis exactly once, so
  // metrics["vecops.basis_sweeps_per_column"] reads 1.0.
  rep.add_vecops_stats();
  rep.add_team_stats();
  if (!trace_path.empty()) {
    fun3d::trace::disable();
    const auto threads = fun3d::trace::collect();
    std::string err;
    if (!fun3d::trace::write_chrome_trace(trace_path, threads, &err)) {
      std::fprintf(stderr, "bench: failed to write trace: %s\n", err.c_str());
      return 1;
    }
    const auto analysis = fun3d::trace::TimelineAnalysis::compute(threads);
    std::printf("%s", analysis.format().c_str());
    std::printf("trace written to %s\n", trace_path.c_str());
    rep.add_trace_analysis(analysis);
  }
  if (!json_path.empty()) {
    std::string err;
    if (!rep.write(json_path, &err)) {
      std::fprintf(stderr, "bench: failed to write perf report: %s\n",
                   err.c_str());
      return 1;
    }
    std::printf("\nperf report written to %s\n", json_path.c_str());
  }
  return 0;
}
