// Fig. 7a reproduction: ILU and TRSV optimization speedups.
//
// Paper reference (Mesh-C, 10 cores / 20 threads): ILU 9.4x and TRSV 3.2x
// over the sequential base; both kernels are bandwidth-bound, TRSV more so.
//
// Measured here: the real factor built from the real solver Jacobian; the
// compressed-buffer and SIMD single-core effects on the host; threading
// modelled (level-scheduled vs P2P-sparsified) on the paper machine.
#include "bench_common.hpp"

#include <omp.h>

#include "core/boundary.hpp"
#include "core/jacobian.hpp"
#include "core/newton.hpp"
#include "machine/kernel_model.hpp"
#include "sparse/trsv.hpp"
#include "util/rng.hpp"

using namespace fun3d;
using namespace fun3d::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  begin_trace(cli);
  const double scale = cli.get_double("scale", 4.0);
  const int fill = static_cast<int>(cli.get_int("fill", 1));

  header("Fig. 7a", "ILU / TRSV optimization speedups");
  PerfReport rep =
      make_report(cli, "fig7a", "ILU / TRSV optimization speedups");
  rep.params["fill"] = fill;
  TetMesh m = make_mesh(MeshPreset::kMeshC, scale);
  const Physics ph;
  const Bcsr4 jac = make_solver_jacobian(m, ph);
  const IluPattern pattern = symbolic_ilu(jac.structure(), fill);

  // --- single-core measured effects (host) -------------------------------
  const double t_full = time_best(
      [&] { factorize_ilu(jac, pattern, /*compressed=*/false, false); });
  const double t_compressed = time_best(
      [&] { factorize_ilu(jac, pattern, /*compressed=*/true, false); });
  const double t_simd = time_best(
      [&] { factorize_ilu(jac, pattern, /*compressed=*/true, true); });
  std::printf(
      "host ILU numeric factorization: full-buffer %.4fs, compressed %.4fs "
      "(%.2fx), +SIMD blocks %.4fs (%.2fx)\n",
      t_full, t_compressed, t_full / t_compressed, t_simd, t_full / t_simd);

  // --- parallel numeric factorization measured on the host ---------------
  const int threads =
      static_cast<int>(cli.get_int("threads", omp_get_max_threads()));
  const IluSchedules sched_f = IluSchedules::build(pattern, threads, true);
  const double t_levels = time_best(
      [&] { factorize_ilu_levels(jac, pattern, sched_f); });
  const double t_p2p = time_best(
      [&] { factorize_ilu_p2p(jac, pattern, sched_f); });
  std::printf(
      "host parallel factorization (%d threads): level-scheduled %.4fs "
      "(%.2fx vs serial+SIMD), p2p-sparsified %.4fs (%.2fx)\n",
      threads, t_levels, t_simd / t_levels, t_p2p, t_simd / t_p2p);
  rep.params["threads"] = threads;
  rep.metrics["ilu.levels_seconds"] = t_levels;
  rep.metrics["ilu.p2p_seconds"] = t_p2p;
  rep.metrics["ilu.levels_speedup"] = t_simd / t_levels;
  rep.metrics["ilu.p2p_speedup"] = t_simd / t_p2p;
  rep.add_factor_schedule(sched_f);

  const IluFactor f = factorize_ilu(jac, pattern);
  const std::size_t n = static_cast<std::size_t>(f.num_rows()) * kBs;
  AVec<double> b(n, 1.0), x(n, 0.0);
  const double t_trsv = time_best([&] { trsv_serial(f, b, x); });
  std::printf("host TRSV serial: %.4fs/solve (%.2f GB/s streamed)\n", t_trsv,
              static_cast<double>(f.solve_stream_bytes()) / t_trsv / 1e9);
  rep.metrics["ilu.full_buffer_seconds"] = t_full;
  rep.metrics["ilu.compressed_seconds"] = t_compressed;
  rep.metrics["ilu.compressed_simd_seconds"] = t_simd;
  rep.metrics["trsv.serial_seconds"] = t_trsv;
  rep.metrics["trsv.serial_gbs"] =
      static_cast<double>(f.solve_stream_bytes()) / t_trsv / 1e9;

  // --- threading modelled on the paper machine ---------------------------
  const MachineSpec mach = MachineSpec::xeon_e5_2690v2();
  const RecurrenceWork trsv_w = trsv_row_work(f);
  const RecurrenceWork ilu_w = ilu_row_work(f);
  const CsrGraph deps = f.lower_deps();
  const LevelSchedule sched = build_level_schedule(deps);

  const int cores = 10;
  const Partition owner = partition_natural(f.num_rows(), cores);
  const P2PSyncPlan plan = build_p2p_plan(deps, owner, true);
  // Baseline = sequential scalar code (the paper's out-of-the-box build):
  // same work vectors with the SIMD fraction stripped. The baseline ILU
  // additionally pays the full-length temporary row buffer (paper §V-B
  // "algorithmic optimization"): at Mesh-C size the n-block scratch array
  // (~45 MB) cannot stay resident, so every row clears and gathers its
  // rlen scattered slots through DRAM — 2 extra block transfers per entry.
  RecurrenceWork trsv_base = trsv_w, ilu_base = ilu_w;
  trsv_base.simd_fraction = 0.0;
  ilu_base.simd_fraction = 0.0;
  for (idx_t i = 0; i < f.num_rows(); ++i) {
    const double rlen = static_cast<double>(f.row_end(i) - f.row_begin(i));
    ilu_base.row_bytes[static_cast<std::size_t>(i)] +=
        2.0 * rlen * kBs2 * 8.0;
  }
  const double trsv_serial_t =
      model_recurrence_serial(mach, trsv_base).seconds;
  const double trsv_p2p_t = model_p2p(mach, trsv_w, deps, owner, plan, cores).seconds;
  const double ilu_serial_t = model_recurrence_serial(mach, ilu_base).seconds;
  const double ilu_p2p_t = model_p2p(mach, ilu_w, deps, owner, plan, cores).seconds;

  Table t({"kernel", "modelled 10-core speedup", "paper"});
  t.row({"TRSV (P2P-sparse)", Table::num(trsv_serial_t / trsv_p2p_t, "%.1f"),
         "3.2"});
  t.row({"ILU (P2P + compressed + SIMD)",
         Table::num(ilu_serial_t / ilu_p2p_t, "%.1f"), "9.4"});
  t.print();
  rep.model["trsv.speedup_10c"] = trsv_serial_t / trsv_p2p_t;
  rep.model["ilu.speedup_10c"] = ilu_serial_t / ilu_p2p_t;
  rep.add_p2p_plan(plan, "trsv_fwd.");
  std::printf(
      "\nShape check: both bandwidth-bound; ILU gains more (higher flop/byte "
      "+ buffer compression); TRSV capped near the bandwidth-saturation "
      "ratio (~4x).\n");
  return write_report(cli, rep) ? 0 : 1;
}
