// Quickstart: generate a mesh, solve the flow, inspect the result.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --trace quickstart.trace.json
//   $ ./build/examples/quickstart --checkpoint-every 5   # periodic ckpts
//   $ ./build/examples/quickstart --restart              # resume from one
//
// Builds the wing-bump validation case at a small size, runs the optimized
// pseudo-transient Newton-Krylov-Schwarz solver to steady state, and prints
// convergence history plus the kernel profile. With `--trace <path>` it
// additionally records a per-thread event timeline and exports it as
// Chrome trace-event JSON — open it at ui.perfetto.dev.
//
// Resilience controls (DESIGN.md §8):
//   --checkpoint <path>       checkpoint file (default quickstart.ckpt)
//   --checkpoint-every <n>    atomic checkpoint every n accepted steps
//   --restart                 resume from --checkpoint (bitwise-identical
//                             continuation of the interrupted run)
//   --max-steps <n>           pseudo-transient step budget (default 40)
//   --gmres-mode <m>          classical|pipelined Krylov orthogonalization
//                             (default: the optimized config's pipelined)
//   --json <path>             write a validated PerfReport (resilience.*)
// Fault injection (deterministic; exercises the recovery paths):
//   --inject-nan-step <k>     poison one residual entry with NaN at step k
//   --inject-update-nan-step <k>   poison the Newton update instead
//   --inject-breakdown-step <k>    flag the linear solve as broken down
//   --inject-crash-step <k>   raise SIGKILL at the top of step k
//   --inject-repeat <n>       poisoned attempts per step (-1 = all)
// In-process hybrid-rank mode (DESIGN.md §10):
//   --ranks <p>               solver domains on disjoint thread teams,
//                             coupled by shared-memory halo exchange
//                             (default 1 = the plain FlowSolver path).
//                             Checkpoint/restart and fault injection work
//                             at any rank count: the checkpoint is rank
//                             0's gathered global state, and --restart
//                             requires the same --ranks it was written with
//   --rank-threads <t>        threads per rank (default 2)
//   --precond-scope <s>       block-jacobi|additive-schwarz (default
//                             block-jacobi)
//   --no-overlap              block on every halo exchange instead of
//                             overlapping interior-edge fluxes (same answer)
#include <cstdio>
#include <exception>
#include <thread>

#include "comm/hybrid_solver.hpp"
#include "core/profile.hpp"
#include "core/solver.hpp"
#include "core/vtk_io.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "mesh/stats.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"

using namespace fun3d;

namespace {

/// Re-reads the exported trace through the strict JSON parser and checks
/// the properties a useful timeline must have: spans from at least two
/// threads and at least one attributed spin-wait. Keeps the quickstart
/// honest as a smoke test of the whole tracing path.
bool self_check_trace(const std::string& path) {
  std::string text, err;
  if (!read_text_file(path, &text, &err)) {
    std::fprintf(stderr, "trace self-check: cannot re-read %s: %s\n",
                 path.c_str(), err.c_str());
    return false;
  }
  const Json doc = Json::parse(text, &err);
  if (!err.empty() || !doc.is_object()) {
    std::fprintf(stderr, "trace self-check: invalid JSON: %s\n", err.c_str());
    return false;
  }
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array() || events->size() == 0) {
    std::fprintf(stderr, "trace self-check: no traceEvents\n");
    return false;
  }
  std::vector<double> span_tids;
  bool has_wait = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    const Json* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") continue;
    const Json* name = e.find("name");
    if (name != nullptr && name->is_string() &&
        name->as_string() == "spin_wait")
      has_wait = true;
    const Json* tid = e.find("tid");
    if (tid == nullptr) continue;
    const double t = tid->as_double(-1);
    bool seen = false;
    for (const double s : span_tids) seen = seen || s == t;
    if (!seen) span_tids.push_back(t);
  }
  if (span_tids.size() < 2) {
    std::fprintf(stderr,
                 "trace self-check: spans from %zu thread(s), want >= 2\n",
                 span_tids.size());
    return false;
  }
  if (!has_wait) {
    std::fprintf(stderr, "trace self-check: no spin-wait events recorded\n");
    return false;
  }
  std::printf("trace self-check: %zu events, spans from %zu threads, "
              "spin-waits present\n",
              events->size(), span_tids.size());
  return true;
}

/// Exports + self-checks the event timeline (shared by both solver paths).
int finish_trace(const std::string& trace_path) {
  trace::disable();
  const std::vector<trace::ThreadTrace> threads = trace::collect();
  std::string err;
  if (!trace::write_chrome_trace(trace_path, threads, &err)) {
    std::fprintf(stderr, "failed to write trace: %s\n", err.c_str());
    return 1;
  }
  std::printf("\n%s",
              trace::TimelineAnalysis::compute(threads).format().c_str());
  std::printf("trace written to %s (open at ui.perfetto.dev)\n",
              trace_path.c_str());
  return self_check_trace(trace_path) ? 0 : 1;
}

/// --ranks > 1: the in-process hybrid-rank path (DESIGN.md §10). Mirrors
/// the report/trace/VTK flow of main() over the HybridSolver surface and
/// self-validates the emitted comm.* family, so CI can cross-check the
/// measured halo traffic against the decomposition's ghost accounting.
int run_hybrid(const Cli& cli, TetMesh mesh, const SolverConfig& cfg,
               int ranks, int rank_threads, const std::string& trace_path,
               const std::string& json_path, const std::string& ckpt_path) {
  comm::HybridConfig hc;
  hc.nranks = ranks;
  hc.threads_per_rank = rank_threads;
  hc.solver = cfg;
  const std::string ps = cli.get("precond-scope", "block-jacobi");
  if (ps == "block-jacobi") {
    hc.precond_scope = comm::PrecondScope::kBlockJacobi;
  } else if (ps == "additive-schwarz") {
    hc.precond_scope = comm::PrecondScope::kAdditiveSchwarz;
  } else {
    std::fprintf(stderr,
                 "unknown --precond-scope '%s' (want "
                 "block-jacobi|additive-schwarz)\n",
                 ps.c_str());
    return 1;
  }
  hc.overlap_halo = !cli.get_bool("no-overlap", false);

  comm::HybridSolver solver(std::move(mesh), hc);
  if (cli.get_bool("restart", false)) {
    try {
      const CheckpointMeta meta = solver.restore_checkpoint(ckpt_path);
      std::printf("restarted from %s: step %llu, CFL %.6g (%llu ranks)\n",
                  ckpt_path.c_str(),
                  static_cast<unsigned long long>(meta.step), meta.cfl,
                  static_cast<unsigned long long>(meta.ranks));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "restart failed: %s\n", e.what());
      return 1;
    }
  }
  const SolveStats stats = solver.solve();
  std::printf("\nconverged: %s in %d steps, %llu linear iterations, %.2fs\n",
              stats.converged ? "yes" : "NO", stats.steps,
              static_cast<unsigned long long>(stats.linear_iterations),
              stats.wall_seconds);
  const comm::CommReport& cr = solver.comm_report();
  std::printf(
      "comm: %d ranks x %d threads (%s, overlap %s) | %llu exchanges, "
      "%.1f KiB halo traffic, %llu allreduces | overlap fraction %.3f, "
      "%.2f exchanges per linear iteration\n",
      cr.ranks, cr.threads_per_rank, precond_scope_name(hc.precond_scope),
      hc.overlap_halo ? "on" : "off",
      static_cast<unsigned long long>(cr.exchanges),
      static_cast<double>(cr.halo_bytes) / 1024.0,
      static_cast<unsigned long long>(cr.allreduces), cr.overlap_fraction,
      cr.exchanges_per_linear_iteration);
  const ResilienceStats& rs = stats.resilience;
  if (rs.rejected_steps > 0 || rs.injected_faults > 0 ||
      rs.checkpoints_written > 0) {
    std::printf("resilience: %llu rejected, %llu retries, %llu backoffs, "
                "%llu checkpoints, %llu injected faults\n",
                static_cast<unsigned long long>(rs.rejected_steps),
                static_cast<unsigned long long>(rs.retries),
                static_cast<unsigned long long>(rs.backoffs),
                static_cast<unsigned long long>(rs.checkpoints_written),
                static_cast<unsigned long long>(rs.injected_faults));
  }
  if (stats.failure != SolveFailure::kNone)
    std::printf("failure: %s\n", stats.failure_detail.c_str());
  std::printf("residual history:\n");
  for (std::size_t i = 0; i < stats.residual_history.size(); ++i)
    std::printf("  step %2zu  |R| = %.3e\n", i, stats.residual_history[i]);
  std::printf("\n%s",
              solver.profile().format("kernel profile (rank 0)").c_str());

  if (!trace_path.empty()) {
    const int rc = finish_trace(trace_path);
    if (rc != 0) return rc;
  }

  const std::span<const double> q = solver.solution();
  double pmin = 1e300, pmax = -1e300;
  for (idx_t v = 0; v < solver.mesh().num_vertices; ++v) {
    const double p = q[static_cast<std::size_t>(v) * kNs];
    pmin = std::min(pmin, p);
    pmax = std::max(pmax, p);
  }
  std::printf("\npressure range: [%.4f, %.4f] (freestream %.1f)\n", pmin,
              pmax, cfg.physics.freestream[0]);
  write_vtk("quickstart_volume.vtk", solver.mesh(), q);
  write_vtk_surface("quickstart_surface.vtk", solver.mesh(), q);
  // The final state as a restartable, byte-comparable checkpoint stamped
  // with this run's decomposition signature (CI's crash-recovery check
  // compares it against the uninterrupted run's).
  solver.write_checkpoint(ckpt_path, stats);
  std::printf("wrote quickstart_volume.vtk, quickstart_surface.vtk, %s\n",
              ckpt_path.c_str());

  if (!json_path.empty()) {
    PerfReport report = PerfReport::begin(
        "quickstart_hybrid", "wing-bump quickstart, in-process hybrid ranks");
    report.params["max_steps"] = static_cast<double>(cfg.ptc.max_steps);
    report.counters["steps"] = static_cast<std::uint64_t>(stats.steps);
    report.counters["converged"] = stats.converged ? 1 : 0;
    report.metrics["final_cfl"] = stats.final_cfl;
    solver.fill_report(report);
    const std::vector<std::string> problems =
        validate_report(report.to_json());
    for (const std::string& p : problems)
      std::fprintf(stderr, "report validation: %s\n", p.c_str());
    std::string err;
    if (!report.write(json_path, &err)) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("perf report written to %s (validated: %s)\n",
                json_path.c_str(), problems.empty() ? "ok" : "INVALID");
    if (!problems.empty()) return 1;
  }
  return stats.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string trace_path = cli.get("trace", "");
  if (!trace_path.empty()) trace::enable();
  const std::string ckpt_path = cli.get("checkpoint", "quickstart.ckpt");
  const std::string json_path = cli.get("json", "");
  // 1. Mesh: the synthetic swept-wing-bump channel (ONERA-M6 stand-in).
  TetMesh mesh = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(mesh, 42);  // mimic raw unstructured-generator numbering
  rcm_reorder(mesh);            // restore locality (paper §V-A)
  std::printf("%s\n",
              format_mesh_stats(compute_mesh_stats(mesh), "mesh").c_str());

  // 2. Solver: all shared-memory optimizations on. The resilience knobs
  // (DESIGN.md §8) are surfaced as flags so CI can crash/restart this
  // binary and tests can force the rejection paths deterministically.
  const int ranks = static_cast<int>(cli.get_int("ranks", 1));
  const int rank_threads = static_cast<int>(cli.get_int("rank-threads", 2));
  if (ranks < 1) {
    std::fprintf(stderr, "--ranks %d: want at least 1\n", ranks);
    return 1;
  }
  if (rank_threads < 1) {
    std::fprintf(stderr, "--rank-threads %d: want at least 1\n",
                 rank_threads);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && static_cast<unsigned>(ranks) * rank_threads > hw)
    std::fprintf(stderr,
                 "warning: %d ranks x %d threads oversubscribes the %u "
                 "hardware threads; expect slowdown, not speedup\n",
                 ranks, rank_threads, hw);
  SolverConfig cfg = SolverConfig::optimized(rank_threads);
  cfg.ptc.max_steps = static_cast<int>(cli.get_int("max-steps", 40));
  cfg.ptc.rtol = 1e-8;
  const std::string gmres_mode = cli.get("gmres-mode", "");
  if (gmres_mode == "classical") {
    cfg.gmres_mode = GmresMode::kClassical;
  } else if (gmres_mode == "pipelined") {
    cfg.gmres_mode = GmresMode::kPipelined;
  } else if (!gmres_mode.empty()) {
    std::fprintf(stderr,
                 "unknown --gmres-mode '%s' (want classical|pipelined)\n",
                 gmres_mode.c_str());
    return 1;
  }
  cfg.resilience.checkpoint_every =
      static_cast<int>(cli.get_int("checkpoint-every", 0));
  cfg.resilience.checkpoint_path = ckpt_path;
  FaultPlan& fault = cfg.resilience.fault;
  fault.nan_residual_step =
      static_cast<int>(cli.get_int("inject-nan-step", -1));
  fault.nan_update_step =
      static_cast<int>(cli.get_int("inject-update-nan-step", -1));
  fault.breakdown_step =
      static_cast<int>(cli.get_int("inject-breakdown-step", -1));
  fault.crash_step = static_cast<int>(cli.get_int("inject-crash-step", -1));
  fault.repeat = static_cast<int>(cli.get_int("inject-repeat", 1));

  // --ranks > 1 takes the hybrid path. The unified NewtonDriver runs the
  // same checkpoint/restart and fault-injection machinery there: every
  // rank master takes allreduce-identical recovery decisions, and the
  // periodic checkpoints are rank 0's gathered global state.
  if (ranks > 1)
    return run_hybrid(cli, std::move(mesh), cfg, ranks, rank_threads,
                      trace_path, json_path, ckpt_path);
  FlowSolver solver(std::move(mesh), cfg);
  if (cli.get_bool("restart", false)) {
    try {
      const CheckpointMeta meta = solver.restore_checkpoint(ckpt_path);
      std::printf("restarted from %s: step %llu, CFL %.6g\n",
                  ckpt_path.c_str(),
                  static_cast<unsigned long long>(meta.step), meta.cfl);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "restart failed: %s\n", e.what());
      return 1;
    }
  }

  // 3. Solve and report.
  const SolveStats stats = solver.solve();
  std::printf("\nconverged: %s in %d steps, %llu linear iterations, %.2fs\n",
              stats.converged ? "yes" : "NO", stats.steps,
              static_cast<unsigned long long>(stats.linear_iterations),
              stats.wall_seconds);
  const ResilienceStats& rs = stats.resilience;
  if (rs.rejected_steps > 0 || rs.injected_faults > 0 ||
      rs.checkpoints_written > 0) {
    std::printf("resilience: %llu rejected, %llu retries, %llu backoffs, "
                "%llu checkpoints, %llu injected faults\n",
                static_cast<unsigned long long>(rs.rejected_steps),
                static_cast<unsigned long long>(rs.retries),
                static_cast<unsigned long long>(rs.backoffs),
                static_cast<unsigned long long>(rs.checkpoints_written),
                static_cast<unsigned long long>(rs.injected_faults));
  }
  if (stats.failure != SolveFailure::kNone)
    std::printf("failure: %s\n", stats.failure_detail.c_str());
  std::printf("residual history:\n");
  for (std::size_t i = 0; i < stats.residual_history.size(); ++i)
    std::printf("  step %2zu  |R| = %.3e\n", i, stats.residual_history[i]);
  std::printf("\n%s", solver.profile().format("kernel profile").c_str());

  // 3b. Export + self-check the event timeline when --trace was given.
  if (!trace_path.empty()) {
    const int rc = finish_trace(trace_path);
    if (rc != 0) return rc;
  }

  // 4. Sample the solution: pressure extrema over the wall.
  const FlowFields& f = solver.fields();
  double pmin = 1e300, pmax = -1e300;
  for (idx_t v = 0; v < f.nv; ++v) {
    const double p = f.q[static_cast<std::size_t>(v) * kNs];
    pmin = std::min(pmin, p);
    pmax = std::max(pmax, p);
  }
  std::printf("\npressure range: [%.4f, %.4f] (freestream %.1f)\n", pmin,
              pmax, cfg.physics.freestream[0]);

  // 5. Persist: ParaView-readable VTK + a binary restart checkpoint whose
  // meta (step, CFL, reference residual) makes it a resumable — and, for
  // CI's crash-recovery check, byte-comparable — record of the final state.
  write_vtk("quickstart_volume.vtk", solver.mesh(),
            {f.q.data(), f.q.size()});
  write_vtk_surface("quickstart_surface.vtk", solver.mesh(),
                    {f.q.data(), f.q.size()});
  const idx_t single_rank_rows[1] = {0};
  const CheckpointMeta final_meta{
      static_cast<std::uint64_t>(stats.steps), stats.final_cfl,
      stats.reference_residual, 1,
      partition_hash(single_rank_rows, solver.mesh().num_vertices)};
  save_checkpoint(ckpt_path, solver.mesh(), {f.q.data(), f.q.size()},
                  &final_meta);
  std::printf("wrote quickstart_volume.vtk, quickstart_surface.vtk, %s\n",
              ckpt_path.c_str());

  // 6. Emit + self-validate the machine-readable perf report on --json.
  if (!json_path.empty()) {
    PerfReport report = PerfReport::begin(
        "quickstart", "wing-bump quickstart with step control");
    report.params["max_steps"] = static_cast<double>(cfg.ptc.max_steps);
    report.counters["steps"] = static_cast<std::uint64_t>(stats.steps);
    report.counters["converged"] = stats.converged ? 1 : 0;
    report.metrics["final_cfl"] = stats.final_cfl;
    solver.fill_report(report);
    const std::vector<std::string> problems =
        validate_report(report.to_json());
    for (const std::string& p : problems)
      std::fprintf(stderr, "report validation: %s\n", p.c_str());
    std::string err;
    if (!report.write(json_path, &err)) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("perf report written to %s (validated: %s)\n",
                json_path.c_str(), problems.empty() ? "ok" : "INVALID");
    if (!problems.empty()) return 1;
  }
  return stats.converged ? 0 : 1;
}
