// Quickstart: generate a mesh, solve the flow, inspect the result.
//
//   $ ./build/examples/quickstart
//
// Builds the wing-bump validation case at a small size, runs the optimized
// pseudo-transient Newton-Krylov-Schwarz solver to steady state, and prints
// convergence history plus the kernel profile.
#include <cstdio>

#include "core/solver.hpp"
#include "core/vtk_io.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "mesh/stats.hpp"

using namespace fun3d;

int main() {
  // 1. Mesh: the synthetic swept-wing-bump channel (ONERA-M6 stand-in).
  TetMesh mesh = generate_wing_bump(preset_params(MeshPreset::kSmall));
  shuffle_numbering(mesh, 42);  // mimic raw unstructured-generator numbering
  rcm_reorder(mesh);            // restore locality (paper §V-A)
  std::printf("%s\n",
              format_mesh_stats(compute_mesh_stats(mesh), "mesh").c_str());

  // 2. Solver: all shared-memory optimizations on.
  SolverConfig cfg = SolverConfig::optimized(/*nthreads=*/2);
  cfg.ptc.max_steps = 40;
  cfg.ptc.rtol = 1e-8;
  FlowSolver solver(std::move(mesh), cfg);

  // 3. Solve and report.
  const SolveStats stats = solver.solve();
  std::printf("\nconverged: %s in %d steps, %llu linear iterations, %.2fs\n",
              stats.converged ? "yes" : "NO", stats.steps,
              static_cast<unsigned long long>(stats.linear_iterations),
              stats.wall_seconds);
  std::printf("residual history:\n");
  for (std::size_t i = 0; i < stats.residual_history.size(); ++i)
    std::printf("  step %2zu  |R| = %.3e\n", i, stats.residual_history[i]);
  std::printf("\n%s", solver.profile().format("kernel profile").c_str());

  // 4. Sample the solution: pressure extrema over the wall.
  const FlowFields& f = solver.fields();
  double pmin = 1e300, pmax = -1e300;
  for (idx_t v = 0; v < f.nv; ++v) {
    const double p = f.q[static_cast<std::size_t>(v) * kNs];
    pmin = std::min(pmin, p);
    pmax = std::max(pmax, p);
  }
  std::printf("\npressure range: [%.4f, %.4f] (freestream %.1f)\n", pmin,
              pmax, cfg.physics.freestream[0]);

  // 5. Persist: ParaView-readable VTK + a binary restart checkpoint.
  write_vtk("quickstart_volume.vtk", solver.mesh(),
            {f.q.data(), f.q.size()});
  write_vtk_surface("quickstart_surface.vtk", solver.mesh(),
                    {f.q.data(), f.q.size()});
  save_checkpoint("quickstart.ckpt", solver.mesh(),
                  {f.q.data(), f.q.size()});
  std::printf(
      "wrote quickstart_volume.vtk, quickstart_surface.vtk, "
      "quickstart.ckpt\n");
  return stats.converged ? 0 : 1;
}
