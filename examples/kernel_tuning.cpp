// Kernel tuning walkthrough: measures every flux-kernel variant and every
// threading strategy on *your* machine and mesh, and reports which
// combination wins — the practical distillation of the paper's §V.
//
//   $ ./build/examples/kernel_tuning [--scale 4] [--threads 4]
#include <cstdio>

#include "core/flux_kernels.hpp"
#include "core/gradients.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace fun3d;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 4.0);
  const idx_t threads = static_cast<idx_t>(cli.get_int("threads", 4));

  TetMesh m = generate_wing_bump(preset_params(MeshPreset::kMeshC, scale));
  shuffle_numbering(m, 3);
  rcm_reorder(m);
  Physics ph;
  FlowFields f(m);
  f.set_uniform(ph.freestream);
  Rng rng(1);
  for (auto& q : f.q) q += rng.uniform(-0.05, 0.05);
  EdgeArrays e(m);
  const EdgeLoopPlan serial = build_edge_plan(m, EdgeStrategy::kAtomics, 1);
  compute_gradients(m, e, serial, f);
  f.sync_soa_from_aos();
  AVec<double> r(static_cast<std::size_t>(f.nv) * kNs, 0.0);

  auto measure = [&](const FluxKernelConfig& cfg, const EdgeLoopPlan& plan) {
    return time_best([&] {
      std::fill(r.begin(), r.end(), 0.0);
      compute_edge_fluxes(ph, e, plan, cfg, f, {r.data(), r.size()});
    });
  };

  std::printf("flux kernel variants, serial, %zu edges:\n", m.num_edges());
  Table t({"layout", "simd", "prefetch", "s/pass", "Medges/s"});
  FluxKernelConfig best_cfg;
  double best = 1e300;
  for (VertexLayout layout : {VertexLayout::kSoA, VertexLayout::kAoS}) {
    for (bool simd : {false, true}) {
      if (simd && layout == VertexLayout::kSoA) continue;
      for (bool prefetch : {false, true}) {
        FluxKernelConfig cfg;
        cfg.layout = layout;
        cfg.simd = simd;
        cfg.prefetch = prefetch;
        const double s = measure(cfg, serial);
        if (s < best) {
          best = s;
          best_cfg = cfg;
        }
        t.row({layout == VertexLayout::kAoS ? "AoS" : "SoA",
               simd ? "yes" : "no", prefetch ? "yes" : "no",
               Table::num(s, "%.4f"),
               Table::num(static_cast<double>(m.num_edges()) / s / 1e6,
                          "%.1f")});
      }
    }
  }
  t.print();

  std::printf("\nthreading strategies with the best variant (%d threads; on "
              "a single-core host these measure overheads only — the real "
              "scaling comes from bench_fig6b's model):\n",
              static_cast<int>(threads));
  Table t2({"strategy", "s/pass", "replication", "imbalance", "barriers"});
  for (EdgeStrategy strat :
       {EdgeStrategy::kAtomics, EdgeStrategy::kReplicationNatural,
        EdgeStrategy::kReplicationPartitioned, EdgeStrategy::kColoring}) {
    const EdgeLoopPlan plan = build_edge_plan(m, strat, threads);
    const double s = measure(best_cfg, plan);
    t2.row({edge_strategy_name(strat), Table::num(s, "%.4f"),
            Table::num(100 * plan.replication_overhead, "%.1f%%"),
            Table::num(plan.load_imbalance, "%.2f"),
            Table::num(plan.num_barriers)});
  }
  t2.print();
  std::printf("\nbest serial variant: %s%s%s\n",
              best_cfg.layout == VertexLayout::kAoS ? "AoS" : "SoA",
              best_cfg.simd ? " + SIMD" : "",
              best_cfg.prefetch ? " + prefetch" : "");
  return 0;
}
