// Scaling study: how should *you* run this solver on a cluster?
//
//   $ ./build/examples/scaling_study [--nodes 64] [--ranks-sweep true]
//
// Uses the cluster simulator with your mesh to explore rank/thread
// geometries per node (MPI-only vs several hybrid splits) at a fixed node
// count, and strong scaling for the best geometry — the practical question
// the paper's §VI answers for Stampede.
#include <cmath>
#include <cstdio>

#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "netsim/cluster_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace fun3d;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 64));
  const double scale = cli.get_double("scale", 3.0);

  TetMesh mesh = generate_wing_bump(preset_params(MeshPreset::kMeshD, scale));
  shuffle_numbering(mesh, 11);
  rcm_reorder(mesh);
  std::printf("mesh: %d vertices, %zu edges; target: %d nodes of 16 cores\n",
              mesh.num_vertices, mesh.num_edges(), nodes);

  const auto iters = [](int ranks) {
    return 1709.0 * (1.0 + 0.025 * std::log2(std::max(1, ranks)));
  };

  // Geometry sweep at the fixed node count.
  Table t({"ranks/node", "threads/rank", "total s", "compute s",
           "allreduce s", "comm %"});
  struct Geometry {
    int rpn, tpr;
  };
  const Geometry geos[] = {{16, 1}, {8, 2}, {4, 4}, {2, 8}, {1, 16}};
  double best = 1e300;
  Geometry best_geo{16, 1};
  for (const auto& g : geos) {
    ClusterConfig cfg;
    cfg.optimized = true;
    cfg.ranks_per_node = g.rpn;
    cfg.threads_per_rank = g.tpr;
    cfg.iterations_of_ranks = iters;
    const auto pts = simulate_strong_scaling(mesh, cfg, {nodes});
    t.row({Table::num(g.rpn), Table::num(g.tpr),
           Table::num(pts[0].total_seconds, "%.3f"),
           Table::num(pts[0].compute_seconds, "%.3f"),
           Table::num(pts[0].allreduce_seconds, "%.3f"),
           Table::num(100 * pts[0].comm_fraction, "%.0f%%")});
    if (pts[0].total_seconds < best) {
      best = pts[0].total_seconds;
      best_geo = g;
    }
  }
  t.print();
  std::printf("\nbest geometry at %d nodes: %d ranks x %d threads\n\n", nodes,
              best_geo.rpn, best_geo.tpr);

  // Strong scaling for the best geometry.
  ClusterConfig cfg;
  cfg.optimized = true;
  cfg.ranks_per_node = best_geo.rpn;
  cfg.threads_per_rank = best_geo.tpr;
  cfg.iterations_of_ranks = iters;
  std::vector<int> counts;
  for (int n = 1; n <= nodes * 4 && n <= 1024; n *= 2) counts.push_back(n);
  const auto pts = simulate_strong_scaling(mesh, cfg, counts);
  Table s({"nodes", "total s", "speedup", "efficiency", "comm %"});
  for (const auto& p : pts) {
    s.row({Table::num(p.nodes),
           Table::num(p.total_seconds, "%.3f"),
           Table::num(pts[0].total_seconds / p.total_seconds, "%.1f"),
           Table::num(100 * pts[0].total_seconds /
                          (p.total_seconds * p.nodes),
                      "%.0f%%"),
           Table::num(100 * p.comm_fraction, "%.0f%%")});
  }
  s.print();
  std::printf(
      "\nRule of thumb from the paper (and visible above): stop adding nodes "
      "once the Krylov Allreduce dominates — single-level NKS does not scale "
      "past that point without communication-hiding Krylov variants.\n");
  return 0;
}
