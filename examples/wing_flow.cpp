// Wing-flow scenario: incompressible flow over the swept wing-like bump,
// with aerodynamic post-processing — the forces on the wall and the surface
// pressure distribution along the root chord (the quantity the ONERA M6
// test case is classically validated on).
//
//   $ ./build/examples/wing_flow [--scale 1.5] [--aoa-deg 3]
//
// Also demonstrates configuring physics (artificial compressibility, flow
// angle) and comparing flux schemes.
#include <cmath>
#include <cstdio>

#include "core/solver.hpp"
#include "mesh/generate.hpp"
#include "mesh/reorder.hpp"
#include "util/cli.hpp"

using namespace fun3d;

namespace {

/// Integrated pressure force over the slip wall: F = sum p * n * A/3 per
/// boundary-face vertex piece.
std::array<double, 3> wall_pressure_force(const TetMesh& m,
                                          const FlowFields& f) {
  std::array<double, 3> force{0, 0, 0};
  for (std::size_t bf = 0; bf < m.bfaces.size(); ++bf) {
    if (m.bfaces[bf].tag != BcTag::kSlipWall) continue;
    for (idx_t v : m.bfaces[bf].v) {
      const double p = f.q[static_cast<std::size_t>(v) * kNs];
      force[0] += p * m.bface_nx[bf] / 3.0;
      force[1] += p * m.bface_ny[bf] / 3.0;
      force[2] += p * m.bface_nz[bf] / 3.0;
    }
  }
  return force;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.5);
  const double aoa = cli.get_double("aoa-deg", 3.0) * M_PI / 180.0;

  WingBumpParams params = preset_params(MeshPreset::kSmall, scale);
  TetMesh mesh = generate_wing_bump(params);
  shuffle_numbering(mesh, 7);
  rcm_reorder(mesh);

  SolverConfig cfg = SolverConfig::optimized(2);
  cfg.physics.freestream = {0.0, std::cos(aoa), 0.0, std::sin(aoa)};
  cfg.physics.beta = 8.0;
  cfg.ptc.max_steps = 60;
  cfg.ptc.rtol = 1e-8;

  std::printf("flow over the wing bump: angle of attack %.1f deg, beta %.1f\n",
              aoa * 180.0 / M_PI, cfg.physics.beta);
  FlowSolver solver(std::move(mesh), cfg);
  const SolveStats stats = solver.solve();
  std::printf("converged: %s (%d steps, %llu linear iters, %.2fs)\n",
              stats.converged ? "yes" : "NO", stats.steps,
              static_cast<unsigned long long>(stats.linear_iterations),
              stats.wall_seconds);

  const auto force = wall_pressure_force(solver.mesh(), solver.fields());
  std::printf("wall pressure force: Fx=%.4f Fy=%.4f Fz=%.4f\n", force[0],
              force[1], force[2]);
  std::printf("(the z-force is the pressure reaction of the wall on the "
              "fluid volume; it grows with angle of attack)\n");

  // Surface pressure along the root chord (y ~ 0 wall vertices, sorted by
  // x) — the classic Cp-vs-chord plot, printed as a table.
  const TetMesh& m = solver.mesh();
  const FlowFields& f = solver.fields();
  std::vector<std::pair<double, double>> chord;  // (x, p)
  for (std::size_t bf = 0; bf < m.bfaces.size(); ++bf) {
    if (m.bfaces[bf].tag != BcTag::kSlipWall) continue;
    for (idx_t v : m.bfaces[bf].v) {
      const std::size_t vs = static_cast<std::size_t>(v);
      if (m.y[vs] < 1e-9)  // root section
        chord.emplace_back(m.x[vs], f.q[vs * kNs]);
    }
  }
  std::sort(chord.begin(), chord.end());
  chord.erase(std::unique(chord.begin(), chord.end()), chord.end());
  std::printf("\nroot-chord surface pressure:\n   x       p\n");
  for (const auto& [x, p] : chord) std::printf("  %5.2f  %8.4f\n", x, p);
  return stats.converged ? 0 : 1;
}
