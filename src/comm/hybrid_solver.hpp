// HybridSolver (DESIGN.md §10): the in-process hybrid-rank driver — the
// shared-memory analogue of the paper's MPI+OpenMP "Hybrid" variant. The
// global mesh is decomposed into P subdomains (decompose()), each owned by
// one rank master std::thread running the SAME pseudo-transient
// Newton-Krylov loop as FlowSolver — literally the same code: every rank
// master drives the unified NewtonDriver (core/newton_driver.hpp) through
// an SPMD RankBackend, so step accept/reject, CFL backoff, retry budget,
// periodic rank-0-gathered checkpointing, and fault injection behave
// identically at any rank count — with
//
//   * ghost state moved through RankRuntime mailboxes (HaloExchange):
//     a blocking q exchange before gradients, and a split-phase gradient
//     exchange whose in-flight window the interior-edge fluxes run inside
//     (traced as comm_overlap spans) when overlap_halo is on;
//   * every global scalar (residual norms, Krylov dots, the matrix-free FD
//     step) computed by the deterministic planned-order allreduce, so all
//     ranks take bitwise-identical branches and the converged answer is
//     reproducible run to run at any fixed rank count;
//   * the preconditioner scoped per rank: block-Jacobi factors only the
//     owned principal block, additive Schwarz factors the whole local
//     (owned + ghost) matrix and exchanges the residual's ghost entries
//     before each triangular solve — one extra exchange per Krylov
//     iteration buying overlap-1 coupling.
//
// At nranks == 1 the driver delegates to a plain FlowSolver over the
// (identity-renumbered) mesh, so the single-rank hybrid run is
// bitwise-identical to the non-hybrid solver by construction.
#pragma once

#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "comm/halo.hpp"
#include "core/solver.hpp"

namespace fun3d::comm {

/// Preconditioner scope of the hybrid solve (paper §III-C: subdomain-block
/// preconditioning is what makes NKS "Schwarz").
enum class PrecondScope {
  kBlockJacobi,      ///< factor the owned principal block only (no overlap)
  kAdditiveSchwarz,  ///< factor owned+ghost rows; exchange before each TRSV
};

const char* precond_scope_name(PrecondScope s);

struct HybridConfig {
  int nranks = 2;
  int threads_per_rank = 1;  ///< inner TeamExecutor width per rank
  bool use_graph_partitioner = true;
  PrecondScope precond_scope = PrecondScope::kBlockJacobi;
  /// Split-phase gradient exchange with interior-edge fluxes inside the
  /// in-flight window (false = block on every exchange; same answer).
  bool overlap_halo = true;
  /// Per-rank solver knobs. nthreads is overridden by threads_per_rank.
  /// Multi-rank solves support the Green-Gauss + matrix-free GMRES + AoS
  /// configuration (the optimized path); others throw at construction.
  SolverConfig solver;
};

/// Aggregated communication observability of one solve — the source of the
/// PerfReport comm.* family and the measured inputs the netsim --measured
/// benches feed back into ClusterConfig.
struct CommReport {
  int ranks = 1;
  int threads_per_rank = 1;
  std::uint64_t total_ghosts = 0;     ///< Decomposition::total_ghosts()
  std::uint64_t total_cut_edges = 0;  ///< Decomposition::total_cut_edges()
  // Round counts are SPMD-identical on every rank; reported once (rank 0).
  std::uint64_t exchanges = 0;
  std::uint64_t exchange_components = 0;  ///< sum of ncomp over rounds
  std::uint64_t allreduces = 0;
  std::uint64_t barriers = 0;
  // Volumes and wait seconds are summed over ranks.
  std::uint64_t packed_cells = 0;  ///< ghost values received, all ranks
  std::uint64_t halo_bytes = 0;    ///< 8 * packed_cells
  double overlap_seconds = 0;       ///< compute inside in-flight exchanges
  double halo_wait_seconds = 0;     ///< exposed (not overlapped) halo waits
  double barrier_wait_seconds = 0;
  double allreduce_wait_seconds = 0;
  /// overlap / (overlap + exposed halo wait), clamped to [0, 1]; the
  /// measured analogue of ClusterConfig::halo_overlap_fraction.
  double overlap_fraction = 0;
  /// Halo exchange rounds per Krylov iteration (+ Newton-step overheads
  /// folded in) — the measured analogue of SolverCosts' exchanges/iter.
  double exchanges_per_linear_iteration = 0;

  /// The schema-neutral view PerfReport::add_comm_stats consumes.
  [[nodiscard]] CommSummary summary() const;
};

class HybridSolver {
 public:
  /// Takes ownership of the mesh (dual metrics built), decomposes and
  /// renumbers it. Throws std::invalid_argument for nranks < 1, nranks >
  /// mesh vertices, or a multi-rank configuration outside the supported
  /// envelope (least-squares gradients, BiCGSTAB, assembled-operator
  /// Krylov, SoA vertex layout). Checkpoint/restart and fault injection
  /// are rank-count-agnostic and fully supported.
  HybridSolver(TetMesh mesh, HybridConfig cfg);
  ~HybridSolver();
  HybridSolver(const HybridSolver&) = delete;
  HybridSolver& operator=(const HybridSolver&) = delete;

  /// Runs the hybrid solve: spawns nranks rank-master threads (delegates
  /// to a plain FlowSolver at nranks == 1), joins them, aggregates the
  /// CommReport, and gathers the owned slices into solution().
  SolveStats solve();

  /// Loads a checkpoint written by a solve at THIS rank count and
  /// partition (rank 0's gathered periodic checkpoints, or
  /// write_checkpoint) and arms the next solve() to continue from it —
  /// bitwise-identically to the uninterrupted run, the same guarantee
  /// FlowSolver::restore_checkpoint gives at one rank. A checkpoint whose
  /// decomposition signature names a different rank count or partition
  /// throws std::runtime_error with a message naming both sides.
  CheckpointMeta restore_checkpoint(const std::string& path);

  /// Writes the current solution() as a restartable checkpoint whose meta
  /// carries `stats`' step/CFL/reference-residual plus this run's
  /// decomposition signature. Valid after solve() (the final-state
  /// analogue of the periodic in-loop checkpoints).
  void write_checkpoint(const std::string& path,
                        const SolveStats& stats) const;

  /// The renumbered global mesh (subdomain-contiguous vertex ids).
  [[nodiscard]] const TetMesh& mesh() const { return mesh_; }
  [[nodiscard]] const Decomposition& decomposition() const { return decomp_; }
  [[nodiscard]] const HybridConfig& config() const { return cfg_; }
  /// Valid after solve().
  [[nodiscard]] const CommReport& comm_report() const { return comm_report_; }
  /// Global solution state (nv*4, AoS, renumbered order). Valid after
  /// solve().
  [[nodiscard]] std::span<const double> solution() const {
    return {q_global_.data(), q_global_.size()};
  }
  /// Rank 0's kernel profile (SPMD-representative) — the delegate's at
  /// nranks == 1.
  [[nodiscard]] const Profile& profile() const;

  /// Captures config, rank-0 profile, team/vecops stats, and the comm.*
  /// family into a perf report.
  void fill_report(PerfReport& report, const std::string& prefix = "") const;

  /// One rank master's state (opaque; defined in the .cpp). Public so the
  /// SPMD Krylov helper can take it by reference.
  struct Rank;

 private:
  /// NewtonBackend adapter over one Rank (defined in the .cpp): the SPMD
  /// end of the unified driver contract — planned-order allreduce norms,
  /// collective rank-0-gathered checkpoints.
  class RankBackend;

  void rank_main(int rank, SolveStats& stats);
  void validate_config() const;

  TetMesh mesh_;
  HybridConfig cfg_;
  Decomposition decomp_;
  std::unique_ptr<RankRuntime> rt_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::unique_ptr<FlowSolver> delegate_;  ///< the nranks == 1 path
  CommReport comm_report_;
  AVec<double> q_global_;
  /// This run's decomposition signature, stamped into every checkpoint.
  std::uint64_t partition_hash_ = 0;
  std::optional<CheckpointMeta> restart_;  ///< armed by restore_checkpoint
  /// Rank 0's checkpoint-write failure, published between the collective
  /// checkpoint barriers so every rank throws in lockstep instead of
  /// deadlocking on a rank that unwound.
  std::exception_ptr ckpt_error_;
};

}  // namespace fun3d::comm
