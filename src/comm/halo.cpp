#include "comm/halo.hpp"

#include <algorithm>
#include <cassert>

#include "trace/trace.hpp"
#include "util/timer.hpp"

namespace fun3d::comm {

idx_t RankHalo::local_id(idx_t g) const {
  if (g >= row_begin && g < row_begin + num_owned) return g - row_begin;
  const auto it =
      std::lower_bound(ghost_globals.begin(), ghost_globals.end(), g);
  assert(it != ghost_globals.end() && *it == g);
  return num_owned + static_cast<idx_t>(it - ghost_globals.begin());
}

std::vector<RankHalo> build_halo_plans(const TetMesh& m,
                                       const Decomposition& d) {
  const int P = static_cast<int>(d.nparts());
  std::vector<RankHalo> plans(static_cast<std::size_t>(P));
  // Ghost sets per rank, naturally sorted (std::set ascending).
  std::vector<std::vector<idx_t>> ghosts(static_cast<std::size_t>(P));
  {
    std::vector<std::vector<char>> seen(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r)
      seen[static_cast<std::size_t>(r)].assign(
          static_cast<std::size_t>(m.num_vertices), 0);
    for (const auto& [a, b] : m.edges) {
      const idx_t pa = d.part.part[static_cast<std::size_t>(a)];
      const idx_t pb = d.part.part[static_cast<std::size_t>(b)];
      if (pa == pb) continue;
      if (!seen[static_cast<std::size_t>(pa)][static_cast<std::size_t>(b)]) {
        seen[static_cast<std::size_t>(pa)][static_cast<std::size_t>(b)] = 1;
        ghosts[static_cast<std::size_t>(pa)].push_back(b);
      }
      if (!seen[static_cast<std::size_t>(pb)][static_cast<std::size_t>(a)]) {
        seen[static_cast<std::size_t>(pb)][static_cast<std::size_t>(a)] = 1;
        ghosts[static_cast<std::size_t>(pb)].push_back(a);
      }
    }
    for (auto& g : ghosts) std::sort(g.begin(), g.end());
  }

  for (int r = 0; r < P; ++r) {
    RankHalo& h = plans[static_cast<std::size_t>(r)];
    const Subdomain& sub = d.subs[static_cast<std::size_t>(r)];
    h.rank = r;
    h.row_begin = sub.row_begin;
    h.num_owned = sub.num_owned();
    h.ghost_globals = std::move(ghosts[static_cast<std::size_t>(r)]);
    h.num_ghosts = static_cast<idx_t>(h.ghost_globals.size());
    assert(h.num_ghosts == sub.num_ghosts);
    // Receive slices: ghosts are sorted by global id and ownership ranges
    // are contiguous, so each owner's contribution is one contiguous run.
    for (idx_t i = 0; i < h.num_ghosts;) {
      const idx_t g = h.ghost_globals[static_cast<std::size_t>(i)];
      const idx_t owner = d.part.part[static_cast<std::size_t>(g)];
      idx_t j = i;
      while (j < h.num_ghosts &&
             d.part.part[static_cast<std::size_t>(
                 h.ghost_globals[static_cast<std::size_t>(j)])] == owner)
        ++j;
      RankNeighbor nb;
      nb.rank = static_cast<int>(owner);
      nb.recv_begin = h.num_owned + i;
      nb.recv_count = j - i;
      h.neighbors.push_back(std::move(nb));
      i = j;
    }
  }
  // Send lists: what s receives from r IS what r must send to s, already
  // in the order s unpacks (ascending global id).
  for (int s = 0; s < P; ++s) {
    const RankHalo& hs = plans[static_cast<std::size_t>(s)];
    for (const RankNeighbor& nb : hs.neighbors) {
      RankHalo& hr = plans[static_cast<std::size_t>(nb.rank)];
      auto it = std::find_if(hr.neighbors.begin(), hr.neighbors.end(),
                             [s](const RankNeighbor& n) { return n.rank == s; });
      // The exchange graph is symmetric (a cut edge makes each side a
      // ghost owner for the other), so r always already lists s.
      assert(it != hr.neighbors.end());
      it->send_locals.reserve(static_cast<std::size_t>(nb.recv_count));
      for (idx_t i = 0; i < nb.recv_count; ++i) {
        const idx_t g = hs.ghost_globals[static_cast<std::size_t>(
            nb.recv_begin - hs.num_owned + i)];
        it->send_locals.push_back(g - hr.row_begin);
      }
      hr.max_send = std::max(hr.max_send, it->send_locals.size());
    }
  }
  return plans;
}

void HaloExchange::start(std::span<const double> field, int ncomp,
                         CommStats& stats) {
  assert(!in_flight_);
  const RankHalo& h = *halo_;
  stats.exchanges++;
  stats.exchange_components += static_cast<std::uint64_t>(ncomp);
  seq_++;
  ncomp_in_flight_ = ncomp;
  in_flight_ = true;
  if (h.neighbors.empty()) return;
  trace::TraceSpan span("halo_pack", h.rank);
  for (const RankNeighbor& nb : h.neighbors) {
    Mailbox& out = rt_->mailbox(h.rank, nb.rank);
    // The receiver of message seq_-1 must have drained the buffer before
    // we refill it (acquire pairs with its consume release).
    wait_epoch(out.consumed, seq_ - 1);
    double* buf = out.buf.data();
    std::size_t w = 0;
    for (const idx_t v : nb.send_locals) {
      const double* src =
          field.data() + static_cast<std::size_t>(v) * ncomp;
      for (int c = 0; c < ncomp; ++c) buf[w++] = src[c];
    }
    out.published.store(seq_, std::memory_order_release);
  }
}

void HaloExchange::finish(std::span<double> field, int ncomp,
                          CommStats& stats) {
  assert(in_flight_ && ncomp == ncomp_in_flight_);
  const RankHalo& h = *halo_;
  in_flight_ = false;
  stats.packed_cells +=
      static_cast<std::uint64_t>(h.num_ghosts) * static_cast<std::uint64_t>(ncomp);
  stats.halo_bytes += static_cast<std::uint64_t>(h.num_ghosts) *
                      static_cast<std::uint64_t>(ncomp) * 8u;
  if (h.neighbors.empty()) return;
  trace::TraceSpan span("halo_wait", h.rank);
  const bool traced = trace::enabled();
  Timer t;
  for (const RankNeighbor& nb : h.neighbors) {
    Mailbox& in = rt_->mailbox(nb.rank, h.rank);
    const std::uint64_t t0 = traced ? trace::now_ns() : 0;
    const WaitStats w = wait_epoch_counted(in.published, seq_);
    if (traced && (w.spins > 0 || w.yields > 0))
      trace::spin_wait(nb.rank, static_cast<std::int64_t>(seq_), w.spins,
                       w.yields, t0);
    const double* buf = in.buf.data();
    double* dst = field.data() +
                  static_cast<std::size_t>(nb.recv_begin) * ncomp;
    std::copy(buf, buf + static_cast<std::size_t>(nb.recv_count) * ncomp,
              dst);
    in.consumed.store(seq_, std::memory_order_release);
  }
  stats.halo_wait_seconds += t.seconds();
}

LocalDomain build_local_domain(const TetMesh& m, RankHalo halo,
                               bool full_overlap) {
  LocalDomain dom;
  dom.halo = std::move(halo);
  const RankHalo& h = dom.halo;
  const idx_t nl = h.num_local();
  TetMesh& lm = dom.mesh;
  lm.num_vertices = nl;
  lm.x.resize(static_cast<std::size_t>(nl));
  lm.y.resize(static_cast<std::size_t>(nl));
  lm.z.resize(static_cast<std::size_t>(nl));
  lm.dual_vol.resize(static_cast<std::size_t>(nl));
  auto global_of = [&](idx_t l) {
    return l < h.num_owned
               ? h.row_begin + l
               : h.ghost_globals[static_cast<std::size_t>(l - h.num_owned)];
  };
  for (idx_t l = 0; l < nl; ++l) {
    const std::size_t g = static_cast<std::size_t>(global_of(l));
    lm.x[static_cast<std::size_t>(l)] = m.x[g];
    lm.y[static_cast<std::size_t>(l)] = m.y[g];
    lm.z[static_cast<std::size_t>(l)] = m.z[g];
    lm.dual_vol[static_cast<std::size_t>(l)] = m.dual_vol[g];
  }
  // Edges with >= 1 owned endpoint, global orientation + normal preserved.
  // With full_overlap, ghost-ghost edges join lm.edges too — the Jacobian
  // structure and assembly run over lm.edges, so the additive-Schwarz
  // factor sees the complete A(sub, sub) of the overlap region — but stay
  // out of the flux shells: their scatters would only land in ghost
  // residual entries, which are never read.
  const idx_t gb = h.row_begin, ge = h.row_begin + h.num_owned;
  auto owned = [&](idx_t g) { return g >= gb && g < ge; };
  auto is_local = [&](idx_t g) {
    return owned(g) || std::binary_search(h.ghost_globals.begin(),
                                          h.ghost_globals.end(), g);
  };
  for (std::size_t e = 0; e < m.edges.size(); ++e) {
    const auto [a, b] = m.edges[e];
    const bool oa = owned(a), ob = owned(b);
    if (!oa && !ob) {
      if (!full_overlap || !is_local(a) || !is_local(b)) continue;
      lm.edges.emplace_back(h.local_id(a), h.local_id(b));
      lm.dual_nx.push_back(m.dual_nx[e]);
      lm.dual_ny.push_back(m.dual_ny[e]);
      lm.dual_nz.push_back(m.dual_nz[e]);
      continue;
    }
    const idx_t la = h.local_id(a), lb = h.local_id(b);
    lm.edges.emplace_back(la, lb);
    lm.dual_nx.push_back(m.dual_nx[e]);
    lm.dual_ny.push_back(m.dual_ny[e]);
    lm.dual_nz.push_back(m.dual_nz[e]);
    TetMesh& shell = (oa && ob) ? dom.interior_shell : dom.cut_shell;
    shell.edges.emplace_back(la, lb);
    shell.dual_nx.push_back(m.dual_nx[e]);
    shell.dual_ny.push_back(m.dual_ny[e]);
    shell.dual_nz.push_back(m.dual_nz[e]);
  }
  dom.interior_shell.num_vertices = nl;
  dom.cut_shell.num_vertices = nl;
  // Boundary faces with >= 1 owned corner. Triangle corners are pairwise
  // edge-adjacent, so a non-owned corner of an included face is always in
  // the ghost set. With full_overlap, all-ghost faces are kept as well so
  // ghost boundary rows carry their boundary Jacobian contribution.
  for (std::size_t f = 0; f < m.bfaces.size(); ++f) {
    const BoundaryFace& bf = m.bfaces[f];
    const bool any_owned = owned(bf.v[0]) || owned(bf.v[1]) || owned(bf.v[2]);
    if (!any_owned &&
        !(full_overlap && is_local(bf.v[0]) && is_local(bf.v[1]) &&
          is_local(bf.v[2])))
      continue;
    BoundaryFace lf;
    lf.tag = bf.tag;
    for (int k = 0; k < 3; ++k)
      lf.v[static_cast<std::size_t>(k)] =
          h.local_id(bf.v[static_cast<std::size_t>(k)]);
    lm.bfaces.push_back(lf);
    lm.bface_nx.push_back(m.bface_nx[f]);
    lm.bface_ny.push_back(m.bface_ny[f]);
    lm.bface_nz.push_back(m.bface_nz[f]);
  }
  return dom;
}

}  // namespace fun3d::comm
