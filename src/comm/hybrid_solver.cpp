#include "comm/hybrid_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "core/boundary.hpp"
#include "core/gradients.hpp"
#include "core/jacobian.hpp"
#include "graph/levels.hpp"
#include "trace/trace.hpp"

namespace fun3d::comm {
namespace {

/// Adjacency of the owned principal block (interior edges + diagonal, the
/// ghost columns dropped) — what the block-Jacobi scope factorizes.
CsrGraph owned_block_adjacency(const LocalDomain& dom) {
  const idx_t n = dom.halo.num_owned;
  CsrGraph g;
  g.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : dom.interior_shell.edges) {
    g.rowptr[static_cast<std::size_t>(a) + 1]++;
    g.rowptr[static_cast<std::size_t>(b) + 1]++;
  }
  for (idx_t v = 0; v < n; ++v)
    g.rowptr[static_cast<std::size_t>(v) + 1] +=
        g.rowptr[static_cast<std::size_t>(v)];
  g.col.resize(static_cast<std::size_t>(g.rowptr.back()));
  std::vector<idx_t> cur(g.rowptr.begin(), g.rowptr.end() - 1);
  for (const auto& [a, b] : dom.interior_shell.edges) {
    g.col[static_cast<std::size_t>(cur[static_cast<std::size_t>(a)]++)] = b;
    g.col[static_cast<std::size_t>(cur[static_cast<std::size_t>(b)]++)] = a;
  }
  for (idx_t v = 0; v < n; ++v)
    std::sort(g.col.begin() + g.rowptr[static_cast<std::size_t>(v)],
              g.col.begin() + g.rowptr[static_cast<std::size_t>(v) + 1]);
  return g;
}

}  // namespace

const char* precond_scope_name(PrecondScope s) {
  switch (s) {
    case PrecondScope::kBlockJacobi:
      return "block-jacobi";
    case PrecondScope::kAdditiveSchwarz:
      return "additive-schwarz";
  }
  return "?";
}

CommSummary CommReport::summary() const {
  CommSummary s;
  s.ranks = ranks;
  s.threads_per_rank = threads_per_rank;
  s.total_ghosts = total_ghosts;
  s.overlap_halo = overlap_fraction > 0 || overlap_seconds > 0;
  s.exchanges = exchanges;
  s.exchange_components = exchange_components;
  s.packed_cells = packed_cells;
  s.halo_bytes = halo_bytes;
  s.allreduces = allreduces;
  s.barriers = barriers;
  s.overlap_seconds = overlap_seconds;
  s.halo_wait_seconds = halo_wait_seconds;
  s.barrier_wait_seconds = barrier_wait_seconds;
  s.allreduce_wait_seconds = allreduce_wait_seconds;
  s.overlap_fraction = overlap_fraction;
  s.exchanges_per_linear_iteration = exchanges_per_linear_iteration;
  return s;
}

/// Everything one rank master owns: its local domain, exchange endpoint,
/// fields, kernels' plans, Jacobian + scoped preconditioner, and the SPMD
/// loop's scratch. Constructed on the main thread (setup is serial),
/// exercised only by the rank's own std::thread.
struct HybridSolver::Rank {
  const HybridConfig& cfg;
  RankRuntime& rt;
  LocalDomain dom;
  HaloExchange hx;
  FlowFields fields;
  EdgeArrays edges_full;  ///< gradients / wavespeed / Jacobian
  EdgeLoopPlan plan_full;
  EdgeArrays edges_int;  ///< fluxes inside the in-flight grad exchange
  EdgeLoopPlan plan_int;
  EdgeArrays edges_cut;  ///< fluxes needing exchanged ghost gradients
  EdgeLoopPlan plan_cut;
  Bcsr4 jac;  ///< all local rows (ghost rows partial but finite)
  // Block-Jacobi scope: the owned principal block copied out of jac.
  Bcsr4 pre;
  std::vector<idx_t> pre_from_jac;  ///< pre nz -> jac nz
  IluPattern pattern;
  std::unique_ptr<IluSchedules> ilu_schedules;
  std::unique_ptr<IluFactor> factor;
  std::unique_ptr<TrsvSchedules> trsv_schedules;
  AVec<double> wavespeed, dt_shift;  ///< full local
  AVec<double> as_in, as_out;        ///< additive-Schwarz full-size scratch
  VecOps vec;
  Profile profile;
  CommStats stats;
  SolveStats solve_stats;
  std::exception_ptr error;

  Rank(const HybridConfig& c, RankRuntime& runtime, LocalDomain d)
      : cfg(c),
        rt(runtime),
        dom(std::move(d)),
        hx(runtime, dom.halo),
        fields(dom.mesh),
        edges_full(dom.mesh),
        plan_full(build_edge_plan(dom.mesh, c.solver.strategy,
                                  std::max(1, c.threads_per_rank))),
        edges_int(dom.interior_shell),
        plan_int(build_edge_plan(dom.interior_shell, c.solver.strategy,
                                 std::max(1, c.threads_per_rank))),
        edges_cut(dom.cut_shell),
        plan_cut(build_edge_plan(dom.cut_shell, c.solver.strategy,
                                 std::max(1, c.threads_per_rank))),
        jac(make_jacobian_matrix(dom.mesh)) {
    vec.nthreads = c.solver.threaded_vecops ? c.threads_per_rank : 1;
    if (c.precond_scope == PrecondScope::kBlockJacobi) {
      pre = Bcsr4::from_adjacency(owned_block_adjacency(dom));
      pre_from_jac.resize(pre.num_blocks());
      for (idx_t r = 0; r < pre.num_rows(); ++r)
        for (idx_t nz = pre.row_begin(r); nz < pre.row_end(r); ++nz)
          pre_from_jac[static_cast<std::size_t>(nz)] =
              jac.find(r, pre.col(nz));
      pattern = symbolic_ilu(pre.structure(), c.solver.fill_level);
    } else {
      pattern = symbolic_ilu(jac.structure(), c.solver.fill_level);
      const std::size_t nl =
          static_cast<std::size_t>(dom.halo.num_local()) * kNs;
      as_in.assign(nl, 0.0);
      as_out.assign(nl, 0.0);
    }
    if (c.solver.ilu_mode != IluMode::kSerial)
      ilu_schedules = std::make_unique<IluSchedules>(IluSchedules::build(
          pattern, std::max(1, c.threads_per_rank), c.solver.sparsify_p2p));
    const std::size_t nl = static_cast<std::size_t>(dom.halo.num_local());
    wavespeed.assign(nl, 0.0);
    dt_shift.assign(nl, 0.0);
    fields.set_uniform(c.solver.physics.freestream);
  }

  [[nodiscard]] int id() const { return dom.halo.rank; }
  [[nodiscard]] std::size_t nq_owned() const {
    return static_cast<std::size_t>(dom.halo.num_owned) * kNs;
  }

  /// Global deterministic dot: planned-order local partials (VecOps),
  /// planned-order combine across ranks (allreduce) — bitwise-identical on
  /// every rank and run to run.
  double global_dot(std::span<const double> x, std::span<const double> y) {
    const double local = vec.dot(x, y);
    profile.reductions++;
    return rt.allreduce_sum1(id(), local, stats);
  }
  double global_norm(std::span<const double> x) {
    return std::sqrt(global_dot(x, x));
  }

  /// Steady residual over the OWNED entries: exchanges ghost q, computes
  /// gradients on the full local stencil, exchanges ghost gradients —
  /// split-phase, with the interior-edge fluxes inside the in-flight
  /// window when overlap_halo — then the cut-edge and boundary fluxes.
  void eval_residual(std::span<const double> u, std::span<double> r) {
    const std::size_t nq = nq_owned();
    std::copy(u.begin(), u.end(), fields.q.begin());
    hx.exchange({fields.q.data(), fields.q.size()}, kNs, stats);
    if (cfg.solver.second_order) {
      auto s = profile.timers.scoped(kernel::kGradient);
      trace::TraceSpan span("gradient");
      compute_gradients(dom.mesh, edges_full, plan_full, fields);
    }
    std::span<double> resid{fields.resid.data(), fields.resid.size()};
    std::fill(resid.begin(), resid.end(), 0.0);
    const bool split = cfg.overlap_halo && cfg.solver.second_order;
    if (split)
      hx.start({fields.grad.data(), fields.grad.size()}, kGradStride, stats);
    else if (cfg.solver.second_order)
      hx.exchange({fields.grad.data(), fields.grad.size()}, kGradStride,
                  stats);
    {
      auto s = profile.timers.scoped(kernel::kFlux);
      trace::TraceSpan span(split ? "comm_overlap" : "flux", id());
      Timer t;
      compute_edge_fluxes(cfg.solver.physics, edges_int, plan_int,
                          cfg.solver.flux, fields, resid);
      if (split) stats.overlap_seconds += t.seconds();
    }
    if (split)
      hx.finish({fields.grad.data(), fields.grad.size()}, kGradStride, stats);
    {
      auto s = profile.timers.scoped(kernel::kFlux);
      trace::TraceSpan span("flux");
      compute_edge_fluxes(cfg.solver.physics, edges_cut, plan_cut,
                          cfg.solver.flux, fields, resid);
      add_boundary_fluxes(cfg.solver.physics, dom.mesh, fields, resid);
    }
    std::copy(resid.begin(), resid.begin() + static_cast<std::ptrdiff_t>(nq),
              r.begin());
    profile.residual_evals++;
  }

  void factor_preconditioner() {
    auto s = profile.timers.scoped(kernel::kIlu);
    trace::TraceSpan span("ilu_factor_phase");
    Bcsr4* mat = &jac;
    if (cfg.precond_scope == PrecondScope::kBlockJacobi) {
      for (std::size_t nz = 0; nz < pre.num_blocks(); ++nz) {
        const double* src =
            jac.block(pre_from_jac[nz]);
        std::copy(src, src + kBs2, pre.block(static_cast<idx_t>(nz)));
      }
      mat = &pre;
    }
    switch (cfg.solver.ilu_mode) {
      case IluMode::kSerial:
        factor = std::make_unique<IluFactor>(
            factorize_ilu(*mat, pattern, cfg.solver.compressed_ilu_buffer,
                          cfg.solver.simd_ilu));
        break;
      case IluMode::kLevels:
        factor = std::make_unique<IluFactor>(factorize_ilu_levels(
            *mat, pattern, *ilu_schedules, cfg.solver.simd_ilu));
        break;
      case IluMode::kP2P:
        factor = std::make_unique<IluFactor>(factorize_ilu_p2p(
            *mat, pattern, *ilu_schedules, cfg.solver.simd_ilu));
        break;
    }
    if (trsv_schedules == nullptr && cfg.solver.trsv_mode != TrsvMode::kSerial)
      trsv_schedules = std::make_unique<TrsvSchedules>(TrsvSchedules::build(
          *factor, std::max(1, cfg.threads_per_rank),
          cfg.solver.sparsify_p2p));
  }

  void trsv(std::span<const double> in, std::span<double> out) {
    switch (cfg.solver.trsv_mode) {
      case TrsvMode::kSerial:
        trsv_serial(*factor, in, out);
        break;
      case TrsvMode::kLevels:
        trsv_levels(*factor, *trsv_schedules, in, out);
        break;
      case TrsvMode::kP2P:
        trsv_p2p(*factor, *trsv_schedules, in, out);
        break;
    }
  }

  /// Applies the scoped preconditioner to an owned-size vector. The
  /// additive-Schwarz scope first exchanges the ghost entries of the input
  /// (one extra round per application) and solves over owned + ghost rows
  /// — restricted AS: the overlap region's output is discarded.
  void apply_preconditioner(std::span<const double> in,
                            std::span<double> out) {
    auto s = profile.timers.scoped(kernel::kTrsv);
    trace::TraceSpan span("trsv_phase");
    if (cfg.precond_scope == PrecondScope::kBlockJacobi) {
      trsv(in, out);
      return;
    }
    const std::size_t nq = nq_owned();
    std::copy(in.begin(), in.end(), as_in.begin());
    hx.exchange({as_in.data(), as_in.size()}, kNs, stats);
    trsv({as_in.data(), as_in.size()}, {as_out.data(), as_out.size()});
    std::copy(as_out.begin(), as_out.begin() + static_cast<std::ptrdiff_t>(nq),
              out.begin());
  }
};

namespace {

struct SpmdLinearOutcome {
  int iterations = 0;
  double relative_residual = 1.0;
  bool converged = false;
};

/// Restarted left-preconditioned GMRES(m), modified Gram-Schmidt + Givens,
/// over OWNED-size distributed vectors. Every scalar that steers control
/// flow (column dots, norms, the Givens recurrence, convergence tests) is
/// a planned-order allreduce result, so all ranks branch identically and
/// the iterate is bitwise-reproducible at a fixed rank count. The cycle
/// head recomputes the TRUE preconditioned residual, so the convergence
/// claim never relies on the recurrence estimate alone.
template <typename Matvec, typename Precond>
SpmdLinearOutcome spmd_gmres(HybridSolver::Rank& rk, const GmresOptions& opt,
                             Matvec&& apply_a, Precond&& precond,
                             std::span<const double> b, std::span<double> x) {
  const std::size_t n = b.size();
  const int m = std::max(1, opt.restart);
  AVec<double> r(n, 0.0), z(n, 0.0), w(n, 0.0);
  std::vector<AVec<double>> basis(static_cast<std::size_t>(m) + 1);
  for (auto& v : basis) v.assign(n, 0.0);
  // Column-major Hessenberg: H[(m+1)*j + i].
  std::vector<double> H(static_cast<std::size_t>(m + 1) * m, 0.0);
  std::vector<double> g(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<double> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  SpmdLinearOutcome out;
  double r0norm = -1.0;
  while (true) {
    apply_a({x.data(), x.size()}, {w.data(), n});
    rk.vec.waxpy(-1.0, {w.data(), n}, b, {r.data(), n});
    precond({r.data(), n}, {z.data(), n});
    const double beta = rk.global_norm({z.data(), n});
    if (r0norm < 0) r0norm = beta > 0 ? beta : 1.0;
    out.relative_residual = beta / r0norm;
    const double tol = std::max(opt.rtol * r0norm, opt.atol);
    if (beta <= tol) {
      out.converged = true;
      return out;
    }
    if (out.iterations >= opt.max_iters) return out;

    rk.vec.copy({z.data(), n}, {basis[0].data(), n});
    rk.vec.scale(1.0 / beta, {basis[0].data(), n});
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;
    int j = 0;
    while (j < m && out.iterations < opt.max_iters) {
      apply_a({basis[static_cast<std::size_t>(j)].data(), n}, {w.data(), n});
      precond({w.data(), n}, {z.data(), n});
      auto& col = H;
      const std::size_t c0 = static_cast<std::size_t>(m + 1) *
                             static_cast<std::size_t>(j);
      for (int i = 0; i <= j; ++i) {
        const double h = rk.global_dot(
            {basis[static_cast<std::size_t>(i)].data(), n}, {z.data(), n});
        col[c0 + static_cast<std::size_t>(i)] = h;
        rk.vec.axpy(-h, {basis[static_cast<std::size_t>(i)].data(), n},
                    {z.data(), n});
      }
      const double hn = rk.global_norm({z.data(), n});
      col[c0 + static_cast<std::size_t>(j) + 1] = hn;
      if (hn > 0) {
        rk.vec.copy({z.data(), n},
                    {basis[static_cast<std::size_t>(j) + 1].data(), n});
        rk.vec.scale(1.0 / hn,
                     {basis[static_cast<std::size_t>(j) + 1].data(), n});
      }
      for (int i = 0; i < j; ++i) {
        const double a = col[c0 + static_cast<std::size_t>(i)];
        const double bb = col[c0 + static_cast<std::size_t>(i) + 1];
        col[c0 + static_cast<std::size_t>(i)] =
            cs[static_cast<std::size_t>(i)] * a +
            sn[static_cast<std::size_t>(i)] * bb;
        col[c0 + static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * a +
            cs[static_cast<std::size_t>(i)] * bb;
      }
      const double a = col[c0 + static_cast<std::size_t>(j)];
      const double bb = col[c0 + static_cast<std::size_t>(j) + 1];
      const double denom = std::sqrt(a * a + bb * bb);
      cs[static_cast<std::size_t>(j)] = denom > 0 ? a / denom : 1.0;
      sn[static_cast<std::size_t>(j)] = denom > 0 ? bb / denom : 0.0;
      col[c0 + static_cast<std::size_t>(j)] = denom;
      col[c0 + static_cast<std::size_t>(j) + 1] = 0.0;
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] =
          cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      ++out.iterations;
      ++j;
      if (std::abs(g[static_cast<std::size_t>(j)]) <= tol) break;
    }
    // Back-substitute and fold the cycle's correction into x; the outer
    // loop recomputes the true residual and decides convergence.
    for (int k = j - 1; k >= 0; --k) {
      double sum = g[static_cast<std::size_t>(k)];
      for (int l = k + 1; l < j; ++l)
        sum -= H[static_cast<std::size_t>(m + 1) * static_cast<std::size_t>(l) +
                 static_cast<std::size_t>(k)] *
               y[static_cast<std::size_t>(l)];
      y[static_cast<std::size_t>(k)] =
          sum / H[static_cast<std::size_t>(m + 1) *
                      static_cast<std::size_t>(k) +
                  static_cast<std::size_t>(k)];
    }
    for (int k = 0; k < j; ++k)
      rk.vec.axpy(y[static_cast<std::size_t>(k)],
                  {basis[static_cast<std::size_t>(k)].data(), n},
                  {x.data(), x.size()});
  }
}

}  // namespace

/// The SPMD end of the unified driver contract (core/newton_driver.hpp):
/// one instance per rank master. Every scalar handed back to the driver —
/// norms, the matrix-free FD step, the verdict flags — is a planned-order
/// allreduce result, so all ranks take bitwise-identical accept/reject
/// branches; checkpoints are collective rank-0-gathered atomic writes.
class HybridSolver::RankBackend final : public NewtonBackend {
 public:
  RankBackend(HybridSolver& hs, Rank& rk)
      : hs_(hs),
        rk_(rk),
        nq_(rk.nq_owned()),
        jv_tmp_(nq_, 0.0),
        jv_pert_(nq_, 0.0) {}

  [[nodiscard]] std::size_t owned_size() const override { return nq_; }
  [[nodiscard]] std::size_t global_size() const override {
    return static_cast<std::size_t>(hs_.mesh_.num_vertices) * kNs;
  }
  [[nodiscard]] std::size_t owned_offset() const override {
    return static_cast<std::size_t>(rk_.dom.halo.row_begin) * kNs;
  }

  void eval_residual(std::span<const double> u, std::span<double> r) override {
    rk_.eval_residual(u, r);
  }

  void prepare_step(double cfl) override {
    const SolverConfig& sc = rk_.cfg.solver;
    {
      auto s = rk_.profile.timers.scoped(kernel::kOther);
      compute_wavespeed_sums(sc.physics, rk_.dom.mesh, rk_.edges_full,
                             rk_.fields,
                             {rk_.wavespeed.data(), rk_.wavespeed.size()});
      // The local sum is truncated for ghost vertices (they only see
      // their cut edges). Block-Jacobi never reads ghost rows, but the
      // additive-Schwarz factor does — without the owner's full wavespeed
      // sum the ghost diagonal loses its pseudo-time dominance and the
      // ILU factor degrades with subdomain surface. One scalar exchange
      // restores the owner's value.
      if (rk_.cfg.precond_scope == PrecondScope::kAdditiveSchwarz)
        rk_.hx.exchange({rk_.wavespeed.data(), rk_.wavespeed.size()}, 1,
                        rk_.stats);
      compute_dt_shift({rk_.wavespeed.data(), rk_.wavespeed.size()}, cfl,
                       {rk_.dt_shift.data(), rk_.dt_shift.size()});
    }
    {
      auto s = rk_.profile.timers.scoped(kernel::kJacobian);
      trace::TraceSpan span("jacobian");
      assemble_jacobian(sc.physics, rk_.edges_full, rk_.plan_full, rk_.fields,
                        sc.scheme, rk_.jac);
      add_boundary_jacobian(sc.physics, rk_.dom.mesh, rk_.fields, rk_.jac);
      rk_.jac.shift_diagonal({rk_.dt_shift.data(), rk_.dt_shift.size()});
    }
    rk_.factor_preconditioner();
  }

  LinearOutcome solve_linear(std::span<const double> u,
                             std::span<const double> r,
                             std::span<const double> rhs,
                             std::span<double> du) override {
    const double unorm = rk_.global_norm(u);
    auto apply_a = [this, u, r, unorm](std::span<const double> v,
                                       std::span<double> yv) {
      const double vnorm = rk_.global_norm(v);
      if (vnorm == 0) {
        rk_.vec.set(0.0, yv);
        return;
      }
      const double h = std::sqrt(1e-14) * (1.0 + unorm) / vnorm;
      for (std::size_t i = 0; i < nq_; ++i) jv_pert_[i] = u[i] + h * v[i];
      rk_.eval_residual({jv_pert_.data(), nq_}, {jv_tmp_.data(), nq_});
      const double inv_h = 1.0 / h;
      for (std::size_t i = 0; i < nq_; ++i) {
        const std::size_t vtx = i / kNs;
        yv[i] = (jv_tmp_[i] - r[i]) * inv_h + rk_.dt_shift[vtx] * v[i];
      }
    };
    auto precond = [this](std::span<const double> in, std::span<double> outv) {
      rk_.apply_preconditioner(in, outv);
    };
    SpmdLinearOutcome sp;
    {
      trace::TraceSpan span("gmres");
      sp = spmd_gmres(rk_, rk_.cfg.solver.gmres, apply_a, precond, rhs, du);
    }
    LinearOutcome lin;
    lin.iterations = sp.iterations;
    lin.relative_residual = sp.relative_residual;
    lin.converged = sp.converged;
    return lin;
  }

  [[nodiscard]] double global_norm(std::span<const double> v) override {
    return rk_.global_norm(v);
  }

  [[nodiscard]] double allreduce_sum(double local) override {
    // Control-plane reduce (the driver's verdict flags): planned-order
    // like every data reduce, but not charged as a profile reduction —
    // the single-rank backend's identity reduce isn't either.
    return rk_.rt.allreduce_sum1(rk_.id(), local, rk_.stats);
  }

  void apply_update(std::span<const double> du, std::span<double> u) override {
    rk_.vec.axpy(1.0, du, u);
  }

  void save_state_checkpoint(std::span<const double> u,
                             const CheckpointMeta& meta) override {
    // Collective: every rank deposits its owned slice into the shared
    // global vector (disjoint plain stores), a barrier publishes them, and
    // rank 0 alone performs the atomic write with the decomposition
    // signature stamped in. The second barrier publishes rank 0's failure
    // (if any) so every rank throws in lockstep instead of deadlocking on
    // a rank that unwound.
    std::copy(u.begin(), u.end(),
              hs_.q_global_.begin() +
                  static_cast<std::ptrdiff_t>(rk_.dom.halo.row_begin) * kNs);
    hs_.rt_->barrier(rk_.id(), rk_.stats);
    if (rk_.id() == 0) {
      hs_.ckpt_error_ = nullptr;
      try {
        CheckpointMeta m = meta;
        m.ranks = static_cast<std::uint64_t>(hs_.cfg_.nranks);
        m.partition_hash = hs_.partition_hash_;
        save_checkpoint(rk_.cfg.solver.resilience.checkpoint_path, hs_.mesh_,
                        {hs_.q_global_.data(), hs_.q_global_.size()}, &m);
      } catch (...) {
        hs_.ckpt_error_ = std::current_exception();
      }
    }
    hs_.rt_->barrier(rk_.id(), rk_.stats);
    if (hs_.ckpt_error_ != nullptr) {
      if (rk_.id() == 0) std::rethrow_exception(hs_.ckpt_error_);
      throw std::runtime_error("hybrid checkpoint: write failed on rank 0");
    }
  }

  [[nodiscard]] Profile& profile() override { return rk_.profile; }

 private:
  HybridSolver& hs_;
  Rank& rk_;
  std::size_t nq_;
  AVec<double> jv_tmp_, jv_pert_;  ///< matrix-free FD scratch
};

void HybridSolver::validate_config() const {
  if (cfg_.nranks < 1)
    throw std::invalid_argument("HybridSolver: nranks must be >= 1");
  if (cfg_.threads_per_rank < 1)
    throw std::invalid_argument("HybridSolver: threads_per_rank must be >= 1");
  if (cfg_.nranks > mesh_.num_vertices)
    throw std::invalid_argument("HybridSolver: more ranks than mesh vertices");
  if (cfg_.nranks == 1) return;  // the delegate supports everything
  const SolverConfig& s = cfg_.solver;
  if (s.gradient_method != GradientMethod::kGreenGauss)
    throw std::invalid_argument(
        "HybridSolver: multi-rank requires Green-Gauss gradients");
  if (s.krylov != KrylovMethod::kGmres)
    throw std::invalid_argument("HybridSolver: multi-rank requires GMRES");
  if (!s.matrix_free)
    throw std::invalid_argument(
        "HybridSolver: multi-rank requires the matrix-free operator");
  if (s.flux.layout != VertexLayout::kAoS)
    throw std::invalid_argument(
        "HybridSolver: multi-rank requires the AoS vertex layout");
  if (s.subdomains > 1)
    throw std::invalid_argument(
        "HybridSolver: per-rank subdomain blocking is superseded by "
        "precond_scope; set subdomains = 1");
  // Checkpoint/restart and fault injection are rank-count-agnostic: the
  // unified NewtonDriver runs them identically on every rank master.
}

HybridSolver::HybridSolver(TetMesh mesh, HybridConfig cfg)
    : mesh_(std::move(mesh)), cfg_(cfg) {
  validate_config();
  decomp_ = decompose(mesh_, cfg_.nranks, cfg_.use_graph_partitioner);
  q_global_.assign(static_cast<std::size_t>(mesh_.num_vertices) * kNs, 0.0);
  std::vector<idx_t> row_begins;
  row_begins.reserve(decomp_.subs.size());
  for (const Subdomain& s : decomp_.subs) row_begins.push_back(s.row_begin);
  partition_hash_ = partition_hash(row_begins, mesh_.num_vertices);
  if (cfg_.nranks == 1) {
    // Bitwise identity with the plain solver by construction: decompose()
    // at one part applies the identity renumbering, and the delegate IS a
    // FlowSolver over that mesh.
    SolverConfig sc = cfg_.solver;
    sc.nthreads = cfg_.threads_per_rank;
    delegate_ = std::make_unique<FlowSolver>(mesh_, sc);
    return;
  }
  rt_ = std::make_unique<RankRuntime>(cfg_.nranks);
  std::vector<RankHalo> plans = build_halo_plans(mesh_, decomp_);
  std::size_t max_send = 0;
  for (const RankHalo& p : plans) max_send = std::max(max_send, p.max_send);
  rt_->reserve_mailboxes(max_send * kGradStride);
  ranks_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r)
    ranks_.push_back(std::make_unique<Rank>(
        cfg_, *rt_,
        build_local_domain(
            mesh_, std::move(plans[static_cast<std::size_t>(r)]),
            cfg_.precond_scope == PrecondScope::kAdditiveSchwarz)));
}

HybridSolver::~HybridSolver() = default;

const Profile& HybridSolver::profile() const {
  return delegate_ != nullptr ? delegate_->profile() : ranks_.front()->profile;
}

void HybridSolver::rank_main(int rank, SolveStats& stats) {
  Rank& rk = *ranks_[static_cast<std::size_t>(rank)];
  const std::size_t nq = rk.nq_owned();
  // The owned prefix of the rank's fields is its slice of the state.
  AVec<double> u(rk.fields.q.begin(),
                 rk.fields.q.begin() + static_cast<std::ptrdiff_t>(nq));
  RankBackend backend(*this, rk);
  NewtonDriver driver(backend, cfg_.solver.ptc, cfg_.solver.resilience);
  stats = driver.run({u.data(), nq}, restart_);
  if (rk.factor != nullptr)
    stats.ilu_parallelism = dag_parallelism(rk.factor->lower_deps());
  // Leave the accepted state in the fields (owned prefix authoritative).
  std::copy(u.begin(), u.end(), rk.fields.q.begin());
}

SolveStats HybridSolver::solve() {
  Timer wall;
  if (delegate_ != nullptr) {
    SolveStats stats = delegate_->solve();
    const auto& q = delegate_->fields().q;
    std::copy(q.begin(), q.end(), q_global_.begin());
    comm_report_ = CommReport{};
    comm_report_.ranks = 1;
    comm_report_.threads_per_rank = cfg_.threads_per_rank;
    comm_report_.total_ghosts = decomp_.total_ghosts();
    comm_report_.total_cut_edges = decomp_.total_cut_edges();
    comm_report_.exchanges_per_linear_iteration = 0;
    return stats;
  }

  std::vector<std::thread> masters;
  masters.reserve(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r)
    masters.emplace_back([this, r] {
      Rank& rk = *ranks_[r];
      try {
        rank_main(static_cast<int>(r), rk.solve_stats);
      } catch (...) {
        rk.error = std::current_exception();
      }
    });
  for (std::thread& t : masters) t.join();
  restart_.reset();  // a restored checkpoint arms exactly one solve
  for (const auto& rk : ranks_)
    if (rk->error) std::rethrow_exception(rk->error);

  // Gather the owned slices into the global solution vector.
  for (const auto& rk : ranks_) {
    const RankHalo& h = rk->dom.halo;
    std::copy(rk->fields.q.begin(),
              rk->fields.q.begin() +
                  static_cast<std::ptrdiff_t>(rk->nq_owned()),
              q_global_.begin() +
                  static_cast<std::ptrdiff_t>(h.row_begin) * kNs);
  }

  CommReport c;
  c.ranks = cfg_.nranks;
  c.threads_per_rank = cfg_.threads_per_rank;
  c.total_ghosts = decomp_.total_ghosts();
  c.total_cut_edges = decomp_.total_cut_edges();
  // Round counts are SPMD-identical on every rank; volumes and waits sum.
  c.exchanges = ranks_.front()->stats.exchanges;
  c.exchange_components = ranks_.front()->stats.exchange_components;
  c.allreduces = ranks_.front()->stats.allreduces;
  c.barriers = ranks_.front()->stats.barriers;
  for (const auto& rk : ranks_) {
    c.packed_cells += rk->stats.packed_cells;
    c.halo_bytes += rk->stats.halo_bytes;
    c.overlap_seconds += rk->stats.overlap_seconds;
    c.halo_wait_seconds += rk->stats.halo_wait_seconds;
    c.barrier_wait_seconds += rk->stats.barrier_wait_seconds;
    c.allreduce_wait_seconds += rk->stats.allreduce_wait_seconds;
  }
  const double denom = c.overlap_seconds + c.halo_wait_seconds;
  c.overlap_fraction =
      denom > 0 ? std::clamp(c.overlap_seconds / denom, 0.0, 1.0) : 0.0;
  SolveStats stats = ranks_.front()->solve_stats;
  c.exchanges_per_linear_iteration =
      stats.linear_iterations > 0
          ? static_cast<double>(c.exchanges) /
                static_cast<double>(stats.linear_iterations)
          : 0.0;
  comm_report_ = c;
  stats.wall_seconds = wall.seconds();
  return stats;
}

CheckpointMeta HybridSolver::restore_checkpoint(const std::string& path) {
  // Signature first: a rank-count mismatch also changes the renumbering
  // (hence the mesh fingerprint), and checking the signature before
  // load_checkpoint turns the confusing "different mesh" error into a
  // precise "written by an N-rank run" one.
  check_checkpoint_signature(read_checkpoint_meta(path), cfg_.nranks,
                             partition_hash_);
  if (delegate_ != nullptr) return delegate_->restore_checkpoint(path);
  CheckpointMeta meta;
  load_checkpoint(path, mesh_, {q_global_.data(), q_global_.size()}, &meta);
  // Scatter owned slices into the rank fields; ghosts refresh on the first
  // halo exchange of the armed solve.
  for (const auto& rk : ranks_) {
    const auto begin =
        q_global_.begin() +
        static_cast<std::ptrdiff_t>(rk->dom.halo.row_begin) * kNs;
    std::copy(begin, begin + static_cast<std::ptrdiff_t>(rk->nq_owned()),
              rk->fields.q.begin());
  }
  restart_ = meta;
  return meta;
}

void HybridSolver::write_checkpoint(const std::string& path,
                                    const SolveStats& stats) const {
  const CheckpointMeta meta{static_cast<std::uint64_t>(stats.steps),
                            stats.final_cfl, stats.reference_residual,
                            static_cast<std::uint64_t>(cfg_.nranks),
                            partition_hash_};
  save_checkpoint(path, mesh_, {q_global_.data(), q_global_.size()}, &meta);
}

void HybridSolver::fill_report(PerfReport& report,
                               const std::string& prefix) const {
  if (delegate_ != nullptr) {
    delegate_->fill_report(report, prefix);
  } else {
    report.params[prefix + "nthreads"] = cfg_.threads_per_rank;
    report.params[prefix + "fill_level"] = cfg_.solver.fill_level;
    report.params[prefix + "trsv_mode"] =
        static_cast<double>(cfg_.solver.trsv_mode);
    report.params[prefix + "ilu_mode"] =
        static_cast<double>(cfg_.solver.ilu_mode);
    report.params[prefix + "second_order"] =
        cfg_.solver.second_order ? 1.0 : 0.0;
    report.params[prefix + "matrix_free"] =
        cfg_.solver.matrix_free ? 1.0 : 0.0;
    report.add_profile(ranks_.front()->profile, prefix);
    report.add_edge_plan(ranks_.front()->plan_full, prefix);
    report.add_team_stats(prefix);
    report.add_vecops_stats(prefix);
    // Resilience counters are SPMD-identical (every verdict is an
    // allreduce result); report rank 0's.
    report.add_resilience_stats(ranks_.front()->solve_stats.resilience,
                                prefix);
  }
  CommSummary s = comm_report_.summary();
  s.precond_scope = static_cast<double>(cfg_.precond_scope);
  s.overlap_halo = cfg_.overlap_halo;
  report.add_comm_stats(s, prefix);
}

}  // namespace fun3d::comm
