// In-process "rank" runtime (DESIGN.md §10): the shared-memory stand-in for
// an MPI communicator. P solver domains run concurrently on their own
// std::thread rank masters inside ONE process and communicate through
//
//  * Mailbox      — a per-directed-neighbor-pair message buffer guarded by
//                   two monotone 64-bit epoch counters (published /
//                   consumed) with release/acquire ordering, the
//                   shared-memory analogue of an eager MPI send/recv;
//  * RankBarrier  — a central generation-counting barrier;
//  * allreduce    — a deterministic planned-order sum: every rank deposits
//                   its partials into its own slot row, and EVERY rank then
//                   combines the rows in rank order 0..P-1, so the result
//                   is bitwise-identical on all ranks and reproducible at
//                   any rank count for a given decomposition.
//
// Rank masters are std::threads, NOT an outer OpenMP team: each std::thread
// roots its own OpenMP contention group, so a capped runtime
// (OMP_THREAD_LIMIT) shrinks the per-rank *inner* teams — which the
// TeamExecutor shortfall machinery already tolerates — while the rank
// masters themselves always all exist and the barriers cannot deadlock.
//
// All spin loops reuse parallel/spinwait.hpp (cpu_relax + yield threshold),
// and the traced paths attribute waits through trace::spin_wait exactly
// like the P2P TRSV kernels, so rank stalls show up on the timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/spinwait.hpp"
#include "util/aligned.hpp"

namespace fun3d::comm {

/// Per-rank communication counters, aggregated by CommReport::aggregate
/// after the rank threads join. Wait seconds are wall time spent blocked in
/// the respective primitive (the exposed — not overlapped — cost).
struct CommStats {
  std::uint64_t exchanges = 0;      ///< halo exchange rounds this rank ran
  std::uint64_t exchange_components = 0;  ///< sum of ncomp over exchanges
  std::uint64_t packed_cells = 0;   ///< ghost values this rank received
  std::uint64_t halo_bytes = 0;     ///< 8 * packed_cells
  std::uint64_t allreduces = 0;     ///< planned-order allreduce calls
  std::uint64_t barriers = 0;       ///< barrier arrivals
  double barrier_wait_seconds = 0;    ///< blocked inside RankBarrier
  double allreduce_wait_seconds = 0;  ///< blocked inside allreduce barriers
  double halo_wait_seconds = 0;       ///< blocked waiting for neighbor data
  double overlap_seconds = 0;  ///< compute run inside an in-flight exchange
};

/// One directed point-to-point message slot (sender rank -> receiver rank).
/// Protocol (message k, counted from 1):
///   sender:   wait_epoch(consumed, k-1)  — buffer free again
///             write buf                  — plain stores
///             published.store(k, release)
///   receiver: wait_epoch(published, k)   — acquire pairs with the publish
///             read buf
///             consumed.store(k, release) — hands the buffer back
/// The release/acquire pairs make the buffer accesses data-race-free: the
/// receiver's reads happen-after the sender's writes (publish edge), and
/// the sender's next writes happen-after the receiver's reads (consume
/// edge). Counters are cache-line-separated from the buffer and from each
/// other so the two spinning sides never false-share.
struct Mailbox {
  AVec<double> buf;
  alignas(64) std::atomic<std::uint64_t> published{0};
  alignas(64) std::atomic<std::uint64_t> consumed{0};

  Mailbox() = default;
  explicit Mailbox(std::size_t capacity) : buf(capacity, 0.0) {}
  Mailbox(Mailbox&& o) noexcept
      : buf(std::move(o.buf)),
        published(o.published.load(std::memory_order_relaxed)),
        consumed(o.consumed.load(std::memory_order_relaxed)) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;
};

/// Central sense-free barrier: arrivals count up; the last arrival resets
/// the count and bumps the generation (release), everyone else spins on the
/// generation (acquire). Reusable immediately — a rank cannot re-enter
/// before the generation it waits on has been published.
class RankBarrier {
 public:
  explicit RankBarrier(int nranks) : nranks_(nranks) {}

  /// Arrives and waits for all ranks. Returns the spin/yield stats of the
  /// wait (zero when this rank was the last to arrive).
  WaitStats arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == nranks_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      return {};
    }
    return wait_epoch_counted(generation_, gen + 1);
  }

  [[nodiscard]] int nranks() const { return nranks_; }

 private:
  int nranks_ = 1;
  alignas(64) std::atomic<int> arrived_{0};
  alignas(64) std::atomic<std::uint64_t> generation_{0};
};

/// Shared state of one in-process rank group. Construct once, hand a
/// reference to every rank thread. `max_width` bounds the widest allreduce.
class RankRuntime {
 public:
  RankRuntime(int nranks, std::size_t max_width = 16);

  [[nodiscard]] int nranks() const { return nranks_; }

  /// Deterministic planned-order sum-allreduce over `width <= max_width`
  /// doubles. Every rank must call with the same width; `inout` holds this
  /// rank's partials on entry and the (bitwise rank-independent) global
  /// sums on return. Two barriers: one to publish the slots, one so the
  /// slots may be reused by the next call. Waits are charged to `stats`
  /// (and to the timeline as rank_allreduce spans by the caller).
  void allreduce_sum(int rank, double* inout, std::size_t width,
                     CommStats& stats);

  /// Scalar convenience wrapper.
  double allreduce_sum1(int rank, double value, CommStats& stats) {
    allreduce_sum(rank, &value, 1, stats);
    return value;
  }

  /// Full-group barrier with wait accounting.
  void barrier(int rank, CommStats& stats);

  /// Directed mailbox sender `from` -> receiver `to` (from != to).
  [[nodiscard]] Mailbox& mailbox(int from, int to) {
    return boxes_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(nranks_) +
                  static_cast<std::size_t>(to)];
  }

  /// Ensures every directed mailbox can hold `capacity` doubles. Call from
  /// the (single-threaded) setup phase only.
  void reserve_mailboxes(std::size_t capacity);

 private:
  int nranks_ = 1;
  std::size_t max_width_ = 0;
  RankBarrier barrier_;
  /// nranks x max_width slot rows, padded to whole cache lines so ranks
  /// never false-share their partials.
  std::size_t slot_stride_ = 0;
  AVec<double> slots_;
  std::vector<Mailbox> boxes_;
};

}  // namespace fun3d::comm
