// Shared-memory halo exchange over a Decomposition (DESIGN.md §10).
//
// Local numbering per rank r (global numbering is already part-contiguous
// after decompose()): owned vertices map to [0, num_owned) by subtracting
// row_begin; ghost vertices — off-part endpoints of r's cut edges — map to
// [num_owned, num_owned + num_ghosts) in ascending GLOBAL id. Because
// ownership ranges are themselves contiguous in global ids, sorting ghosts
// by global id also groups them by owning rank, so each neighbor's
// contribution is one contiguous slice of the ghost range and both sides of
// a directed pair agree on the pack/unpack order without negotiation.
//
// HaloExchange moves `ncomp` components per vertex of an AoS field array
// (q: 4, gradients: 12) through the RankRuntime mailboxes, either blocking
// (exchange) or split-phase (start / finish) so interior-edge compute can
// run inside the in-flight window — the comm/comp overlap the paper's
// hybrid variant relies on. Waits are traced as spin_wait events under a
// halo_wait span; packing under halo_pack.
#pragma once

#include <span>

#include "comm/runtime.hpp"
#include "mesh/decompose.hpp"

namespace fun3d::comm {

/// One neighbor of a rank in the exchange graph.
struct RankNeighbor {
  int rank = 0;
  /// Owned local ids this rank packs for `rank`, in ascending global id —
  /// exactly the order the receiver's ghost slice expects.
  std::vector<idx_t> send_locals;
  idx_t recv_begin = 0;  ///< first ghost local id filled by this neighbor
  idx_t recv_count = 0;  ///< ghosts received from this neighbor
};

/// One rank's halo-exchange plan.
struct RankHalo {
  int rank = 0;
  idx_t row_begin = 0;  ///< global id of owned local vertex 0
  idx_t num_owned = 0;
  idx_t num_ghosts = 0;
  std::vector<idx_t> ghost_globals;     ///< ascending; local = num_owned + i
  std::vector<RankNeighbor> neighbors;  ///< ascending by rank
  std::size_t max_send = 0;             ///< largest single send (vertices)

  [[nodiscard]] idx_t num_local() const { return num_owned + num_ghosts; }
  /// Local id of global vertex `g` (owned or ghost of this rank).
  [[nodiscard]] idx_t local_id(idx_t g) const;
};

/// Builds every rank's halo plan from the decomposed (renumbered) mesh.
/// Plans are symmetric: r sends to s exactly the vertices s receives from
/// r, in the same order.
std::vector<RankHalo> build_halo_plans(const TetMesh& m,
                                       const Decomposition& d);

/// Per-rank exchange endpoint over the shared mailboxes. One instance per
/// rank thread; `halo` and `rt` must outlive it. At most one split-phase
/// exchange may be in flight per instance.
class HaloExchange {
 public:
  HaloExchange(RankRuntime& rt, const RankHalo& halo)
      : rt_(&rt), halo_(&halo) {}

  /// Blocking exchange: fills the ghost slots of `field` (num_local() *
  /// ncomp doubles, AoS) with the owners' current values.
  void exchange(std::span<double> field, int ncomp, CommStats& stats) {
    start({field.data(), field.size()}, ncomp, stats);
    finish(field, ncomp, stats);
  }

  /// Packs and publishes this rank's owned boundary values; returns
  /// without waiting for neighbors. Run interior work next, then finish().
  void start(std::span<const double> field, int ncomp, CommStats& stats);

  /// Waits for every neighbor's message, unpacks into the ghost slots,
  /// and releases the buffers. Charges the blocked time to
  /// stats.halo_wait_seconds.
  void finish(std::span<double> field, int ncomp, CommStats& stats);

  [[nodiscard]] bool in_flight() const { return in_flight_; }

 private:
  RankRuntime* rt_;
  const RankHalo* halo_;
  std::uint64_t seq_ = 0;  ///< completed + in-flight exchange count
  int ncomp_in_flight_ = 0;
  bool in_flight_ = false;
};

/// The subset of TetMesh a rank-local solve needs, extracted once per rank:
/// local vertices (owned then ghosts), every edge with >= 1 owned endpoint
/// (global orientation and dual normal preserved — both sides of a cut edge
/// compute the identical flux and each accumulates only into vertices it
/// owns), every boundary face with >= 1 owned corner (its other corners are
/// edge-adjacent, hence always present as ghosts), and copied dual volumes.
/// Ghost entries of derived quantities (gradients before the exchange,
/// residuals, wave speeds) are computed from partial stencils and NEVER
/// read — ghost gradients are overwritten by the halo exchange, and only
/// owned residual/wavespeed entries feed the solver.
///
/// `interior_shell` / `cut_shell` are edges-only views (same vertex count)
/// splitting the local edge list into both-endpoints-owned edges — whose
/// fluxes need no exchanged gradients and run INSIDE the in-flight grad
/// exchange — and the rest, which run after finish(). Together they
/// partition the local edge list, so owned residuals match the unsplit
/// evaluation exactly.
struct LocalDomain {
  RankHalo halo;
  TetMesh mesh;
  TetMesh interior_shell;
  TetMesh cut_shell;
};

/// Extracts one rank's local domain from the decomposed mesh. `halo` is
/// that rank's entry of build_halo_plans (moved in — plans are built once
/// for all ranks because send orders come from the receivers' plans).
///
/// `full_overlap` additionally keeps ghost-ghost edges and all-ghost
/// boundary faces in `mesh` (NOT in the shells, whose scatters feed the
/// owned residual): the additive-Schwarz factor needs the complete
/// A(sub, sub) over the overlap region — with only cut-edge couplings the
/// ghost rows lose diagonal dominance as SER drives the pseudo-time shift
/// to zero and the subdomain ILU goes near-singular. Owned residuals,
/// gradients, and wave speeds are unaffected in value (the extra edges
/// scatter only into ghost entries).
LocalDomain build_local_domain(const TetMesh& m, RankHalo halo,
                               bool full_overlap = false);

}  // namespace fun3d::comm
