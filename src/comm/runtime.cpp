#include "comm/runtime.hpp"

#include "trace/trace.hpp"
#include "util/timer.hpp"

namespace fun3d::comm {

RankRuntime::RankRuntime(int nranks, std::size_t max_width)
    : nranks_(nranks), max_width_(max_width), barrier_(nranks) {
  // Pad each rank's slot row to a cache-line multiple.
  constexpr std::size_t kDoublesPerLine = 64 / sizeof(double);
  slot_stride_ =
      ((max_width_ + kDoublesPerLine - 1) / kDoublesPerLine) * kDoublesPerLine;
  slots_.assign(static_cast<std::size_t>(nranks_) * slot_stride_, 0.0);
  boxes_.resize(static_cast<std::size_t>(nranks_) *
                static_cast<std::size_t>(nranks_));
}

void RankRuntime::reserve_mailboxes(std::size_t capacity) {
  for (Mailbox& b : boxes_)
    if (b.buf.size() < capacity) b.buf.assign(capacity, 0.0);
}

void RankRuntime::barrier(int rank, CommStats& stats) {
  stats.barriers++;
  const bool traced = trace::enabled();
  const std::uint64_t t0 = traced ? trace::now_ns() : 0;
  Timer t;
  const WaitStats w = barrier_.arrive_and_wait();
  stats.barrier_wait_seconds += t.seconds();
  if (traced && (w.spins > 0 || w.yields > 0))
    trace::spin_wait(/*owner=*/-1, /*row=*/rank, w.spins, w.yields, t0);
}

void RankRuntime::allreduce_sum(int rank, double* inout, std::size_t width,
                                CommStats& stats) {
  stats.allreduces++;
  if (nranks_ <= 1) return;
  double* my_row = slots_.data() + static_cast<std::size_t>(rank) * slot_stride_;
  for (std::size_t i = 0; i < width; ++i) my_row[i] = inout[i];
  // Publish: the barrier's release/acquire edges order every rank's slot
  // writes before every rank's combine reads.
  {
    trace::TraceSpan span("rank_allreduce", rank);
    const bool traced = trace::enabled();
    const std::uint64_t t0 = traced ? trace::now_ns() : 0;
    Timer t;
    WaitStats w = barrier_.arrive_and_wait();
    // Combine in RANK order — the fixed plan every rank executes
    // identically, making the sums bitwise-equal on all ranks and
    // reproducible run to run (the allreduce analogue of the planned-order
    // partial combines in parallel_sum / VecOps).
    for (std::size_t i = 0; i < width; ++i) {
      double acc = 0.0;
      for (int r = 0; r < nranks_; ++r)
        acc += slots_[static_cast<std::size_t>(r) * slot_stride_ + i];
      inout[i] = acc;
    }
    // Reuse barrier: nobody may overwrite a slot row for the NEXT
    // allreduce until everyone has finished combining this one.
    const WaitStats w2 = barrier_.arrive_and_wait();
    stats.allreduce_wait_seconds += t.seconds();
    if (traced) {
      if (w.spins > 0 || w.yields > 0)
        trace::spin_wait(/*owner=*/-1, /*row=*/rank, w.spins, w.yields, t0);
      if (w2.spins > 0 || w2.yields > 0)
        trace::spin_wait(/*owner=*/-1, /*row=*/rank, w2.spins, w2.yields, t0);
    }
  }
  stats.barriers += 2;
}

}  // namespace fun3d::comm
