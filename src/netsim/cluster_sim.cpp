#include "netsim/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/flux_kernels.hpp"
#include "core/gradients.hpp"
#include "graph/partition.hpp"
#include "sparse/blockops.hpp"

namespace fun3d {
namespace {

/// Bytes touched per edge by the matrix-free residual (flux + gradient),
/// effective after cache reuse. The optimized AoS layout reuses vertex lines
/// better (paper: ~20% better L1/L2 reuse); constants consistent with the
/// cache-simulator measurements in bench_fig6a.
constexpr double kBytesPerEdgeOpt = 60.0;
constexpr double kBytesPerEdgeBase = 96.0;

/// TRSV: BCSR blocks per vertex for ILU(1) on tet meshes (~2 blocks per
/// edge + diagonal + fill), streamed once per solve.
constexpr double kTrsvBlocksPerVertex = 16.0;
/// GMRES vector-primitive traffic per vertex per iteration (~18 passes over
/// the 4-vector at restart 30).
constexpr double kVecBytesPerVertexIter = 576.0;
/// Jacobian assembly: 4 block writes + flux Jacobian per edge.
constexpr double kJacFlopsPerEdge = 324.0;
constexpr double kJacBytesPerEdge = 600.0;
/// ILU(1) numeric factorization per vertex (gemm-dominated).
constexpr double kIluFlopsPerVertex = 9000.0;
constexpr double kIluBytesPerVertex = 9000.0;
double roofline(double flops, double bytes, double flop_rate,
                double bw_share) {
  return std::max(flops / flop_rate, bytes / bw_share);
}

}  // namespace

SolverCosts make_solver_costs(const MachineSpec& node, int ranks_per_node,
                              int threads_per_rank, bool optimized,
                              double amdahl_vec_fraction) {
  SolverCosts c;
  const int busy = std::min(node.cores, ranks_per_node * threads_per_rank);
  const double bw_share = node.effective_bw_gbs(busy) * 1e9 / busy;
  // Bandwidth available to a single unthreaded rank when only the ranks
  // (not their threads) are active — the PETSc-primitive phases.
  const double bw_serial_phase =
      std::min(node.bw_1core_gbs,
               node.effective_bw_gbs(ranks_per_node) /
                   std::max(ranks_per_node, 1)) *
      1e9;
  // Effective flop rates. The multi-node "Baseline" is the 1999-optimized
  // PETSc-FUN3D (interlacing/blocking/reordering already in), so the
  // cache+SIMD-optimized build gains the paper's measured 16-28% on the
  // compute-bound kernels — with 16 ranks per node the per-rank bandwidth
  // share, not SIMD width, limits the benefit.
  const double scalar_rate = node.ghz * 1e9 * node.scalar_flops_per_cycle;
  const double flop_rate = optimized ? scalar_rate * 0.55 * 1.35
                                     : scalar_rate * 0.55;

  FluxKernelConfig fcfg;
  fcfg.scheme = FluxScheme::kRoe;
  fcfg.second_order = true;
  const double flux_flops = flux_flops_per_edge(fcfg) + gradient_flops_per_edge();
  const double edge_bytes = optimized ? kBytesPerEdgeOpt : kBytesPerEdgeBase;

  double spe_iter = roofline(flux_flops, edge_bytes, flop_rate, bw_share);
  // TRSV is bandwidth bound and threaded (P2P) in the hybrid build; the
  // PETSc vector primitives are NOT threaded — the paper's Amdahl fraction
  // (§VI-B3). `amdahl_vec_fraction` lets studies vary how much of the
  // vector work PETSc eventually threads (0 = fully threaded).
  const double trsv_bytes = kTrsvBlocksPerVertex * (kBs2 * 8.0 + 4.0);
  double spv_trsv = trsv_bytes / bw_share;
  const double vec_serial_bytes = kVecBytesPerVertexIter * amdahl_vec_fraction;
  const double vec_threaded_bytes =
      kVecBytesPerVertexIter * (1.0 - amdahl_vec_fraction);
  double spv_vec = vec_threaded_bytes / bw_share;
  double spv_vec_serial = vec_serial_bytes / bw_serial_phase;
  double spe_step = roofline(kJacFlopsPerEdge, kJacBytesPerEdge,
                             optimized ? flop_rate : flop_rate * 0.8, bw_share);
  double spv_step =
      roofline(kIluFlopsPerVertex, kIluBytesPerVertex, flop_rate, bw_share);

  if (threads_per_rank > 1) {
    // Threaded portions split the rank's work across its cores (each core
    // already has only a 1/busy bandwidth share, so per-rank time divides
    // by the thread count).
    const double t = threads_per_rank;
    spe_iter /= t;
    spe_step /= t;
    spv_step /= t;  // ILU threaded (P2P)
    spv_trsv /= t;  // TRSV threaded (P2P)
    spv_vec /= t;
    // spv_vec_serial stays serial per rank.
  } else {
    // MPI-only: everything runs on the rank's single core at its share.
    spv_vec_serial = vec_serial_bytes / bw_share;
  }
  c.sec_per_edge_iter = spe_iter;
  c.sec_per_vertex_iter = spv_trsv + spv_vec + spv_vec_serial;
  c.sec_per_edge_step = spe_step;
  c.sec_per_vertex_step = spv_step;
  return c;
}

std::vector<ScalingPoint> simulate_strong_scaling(
    const TetMesh& mesh, const ClusterConfig& cfg,
    const std::vector<int>& node_counts) {
  const CsrGraph g = mesh.vertex_graph();
  const SolverCosts costs =
      make_solver_costs(cfg.node, cfg.ranks_per_node, cfg.threads_per_rank,
                        cfg.optimized, cfg.amdahl_vec_fraction);
  std::vector<ScalingPoint> out;
  out.reserve(node_counts.size());

  for (int nodes : node_counts) {
    const int ranks = nodes * cfg.ranks_per_node;
    ScalingPoint pt;
    pt.nodes = nodes;
    pt.ranks = ranks;

    // Real partition of the real mesh: per-rank owned edges (cut edges are
    // processed by both sides) and ghost counts.
    Partition part = ranks > 1
                         ? partition_graph(g, ranks)
                         : partition_natural(g.num_vertices(), 1);
    std::vector<double> local_edges(static_cast<std::size_t>(ranks), 0.0);
    std::vector<double> local_verts(static_cast<std::size_t>(ranks), 0.0);
    std::vector<std::unordered_set<idx_t>> ghosts(
        static_cast<std::size_t>(ranks));
    for (idx_t v = 0; v < g.num_vertices(); ++v)
      local_verts[static_cast<std::size_t>(part.part[v])] += 1.0;
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      for (idx_t u : g.neighbors(v)) {
        if (u < v) continue;  // each undirected edge once
        const idx_t pv = part.part[v], pu = part.part[u];
        local_edges[static_cast<std::size_t>(pv)] += 1.0;
        if (pu != pv) {
          local_edges[static_cast<std::size_t>(pu)] += 1.0;
          ghosts[static_cast<std::size_t>(pv)].insert(u);
          ghosts[static_cast<std::size_t>(pu)].insert(v);
        }
      }
    }
    double max_edges = 0, max_verts = 0, max_ghosts = 0;
    for (int r = 0; r < ranks; ++r) {
      max_edges = std::max(max_edges, local_edges[static_cast<std::size_t>(r)]);
      max_verts = std::max(max_verts, local_verts[static_cast<std::size_t>(r)]);
      max_ghosts = std::max(
          max_ghosts,
          static_cast<double>(ghosts[static_cast<std::size_t>(r)].size()));
    }
    pt.max_local_edges = max_edges;
    pt.halo_bytes_per_rank = cfg.halo_bytes_of_ranks
                                 ? cfg.halo_bytes_of_ranks(ranks)
                                 : max_ghosts * kNs * 8.0;

    pt.iterations = cfg.iterations_of_ranks
                        ? cfg.iterations_of_ranks(ranks)
                        : 400.0;

    // Per linear iteration.
    const double t_iter_compute = max_edges * costs.sec_per_edge_iter +
                                  max_verts * costs.sec_per_vertex_iter;
    const double allreduces_per_iter = cfg.allreduces_per_iter > 0
                                           ? cfg.allreduces_per_iter
                                           : costs.allreduces_per_iter;
    const double t_allreduce =
        allreduces_per_iter *
        cfg.net.allreduce_seconds(ranks, 64);  // batched small reductions
    // Non-blocking sends to all neighbours proceed concurrently: one
    // message latency exposed, bandwidth shared over the rank's total halo
    // (the reason the paper sees <5% of comm time in point-to-point).
    const double halo_exchanges_per_iter =
        cfg.halo_exchanges_per_iter > 0 ? cfg.halo_exchanges_per_iter
                                        : costs.halo_exchanges_per_iter;
    // Split-phase exchange hides the measured overlap fraction of each
    // round behind interior-edge compute; only the rest is exposed.
    const double halo_exposed =
        1.0 - std::clamp(cfg.halo_overlap_fraction, 0.0, 1.0);
    const double t_halo =
        ranks > 1 ? halo_exposed * halo_exchanges_per_iter *
                        (cfg.net.alpha_us * 1e-6 +
                         pt.halo_bytes_per_rank / (cfg.net.bw_gbs * 1e9))
                  : 0.0;
    // Per pseudo-time step.
    const double t_step_compute = max_edges * costs.sec_per_edge_step +
                                  max_verts * costs.sec_per_vertex_step;

    pt.compute_seconds =
        pt.iterations * t_iter_compute + cfg.steps * t_step_compute;
    // Pipelined GMRES overlaps each iteration's Allreduce with the next
    // column's operator application; only the excess latency is exposed.
    // The hideable window is the measured overlap fraction of the
    // iteration's compute, not the whole iteration (the old full-overlap
    // assumption is pipelined_overlap_fraction = 1.0).
    const double exposed_allreduce =
        cfg.pipelined_krylov
            ? std::max(0.0, t_allreduce -
                                cfg.pipelined_overlap_fraction * t_iter_compute)
            : t_allreduce;
    pt.allreduce_seconds = pt.iterations * exposed_allreduce;
    pt.p2p_seconds = (pt.iterations + cfg.steps) * t_halo;
    pt.total_seconds =
        pt.compute_seconds + pt.allreduce_seconds + pt.p2p_seconds;
    pt.comm_fraction =
        (pt.allreduce_seconds + pt.p2p_seconds) / pt.total_seconds;
    out.push_back(pt);
  }
  return out;
}

}  // namespace fun3d
