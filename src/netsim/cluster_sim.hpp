// Cluster strong-scaling simulator (paper §VI-B, Figs. 9-11).
//
// Inputs are real, measured quantities:
//  * rank-local mesh sizes and halo volumes from an actual run of the graph
//    partitioner over the actual mesh at each rank count;
//  * per-iteration kernel costs from the single-node machine model (which is
//    itself fed by measured flop counts and cache-simulated traffic);
//  * solver behaviour (linear iterations per step, reductions per iteration)
//    from real solver runs, including the block-Jacobi iteration growth with
//    subdomain count.
// The network model adds the Allreduce/halo arithmetic of the absent fabric.
#pragma once

#include <functional>
#include <vector>

#include "machine/machine_model.hpp"
#include "mesh/mesh.hpp"
#include "netsim/network_model.hpp"

namespace fun3d {

/// Per-edge/per-vertex/per-block costs of one linear iteration and one
/// pseudo-time step on a single core of the node, for a given optimization
/// level. Derived from the machine model (see make_solver_costs).
struct SolverCosts {
  // Per linear (Krylov) iteration, per rank-local entity:
  double sec_per_edge_iter = 0;    ///< matrix-free residual: flux + gradient
  double sec_per_vertex_iter = 0;  ///< TRSV + vector primitives
  // Per pseudo-time step:
  double sec_per_edge_step = 0;    ///< Jacobian assembly
  double sec_per_vertex_step = 0;  ///< ILU factorization
  // Communication counts:
  double allreduces_per_iter = 2.0;   ///< GMRES MGS dots + norm (batched)
  double halo_exchanges_per_iter = 2.0;  ///< residual eval + precond
};

/// Computes SolverCosts from the machine model for a node running
/// `threads_per_rank` threads per rank (threads share the rank's work) with
/// `ranks_per_node * threads_per_rank` busy cores.
/// `optimized` selects the cache+SIMD-optimized kernel constants;
/// `amdahl_vec_fraction` is the share of per-vertex work that stays serial
/// per rank in hybrid mode (the unthreaded PETSc vector primitives).
SolverCosts make_solver_costs(const MachineSpec& node, int ranks_per_node,
                              int threads_per_rank, bool optimized,
                              double amdahl_vec_fraction = 1.0);

struct ClusterConfig {
  MachineSpec node = MachineSpec::stampede_node();
  NetworkSpec net = NetworkSpec::fdr_fat_tree();
  int ranks_per_node = 16;
  int threads_per_rank = 1;
  bool optimized = false;
  double amdahl_vec_fraction = 1.0;  // PETSc vec primitives unthreaded
  /// Linear iterations to convergence as a function of total subdomain
  /// (rank) count — measured from block-Jacobi solver runs.
  std::function<double(int)> iterations_of_ranks;
  double steps = 20;  ///< pseudo-time steps (fixed across scales)
  /// Communication-hiding Krylov (Ghysels et al. pipelined GMRES, now the
  /// real `GmresMode::kPipelined` solver mode): the Allreduce of iteration
  /// k overlaps the compute of iteration k+1, exposing only the excess
  /// latency.
  bool pipelined_krylov = false;
  /// Fraction of per-iteration compute actually available to hide the
  /// Allreduce behind when pipelined_krylov is set. The implementation
  /// overlaps the reduction with the next column's operator application
  /// only — not the whole iteration — so feed the MEASURED
  /// `gmres.overlap_fraction` from a real pipelined solve here (1.0
  /// reproduces the old full-overlap assumption).
  double pipelined_overlap_fraction = 1.0;
  /// Override of SolverCosts::allreduces_per_iter (global reductions per
  /// linear iteration); <= 0 keeps the cost-model default. Feed the
  /// measured `gmres.reductions_per_column` from a real solve.
  double allreduces_per_iter = 0.0;
  /// Fraction of each halo exchange hidden behind interior-edge compute
  /// (split-phase exchange); exposed p2p time is (1 - f) * t_halo. Feed
  /// the measured `comm.overlap_fraction` from a HybridSolver run.
  double halo_overlap_fraction = 0.0;
  /// Override of SolverCosts::halo_exchanges_per_iter; <= 0 keeps the
  /// cost-model default (2.0). Feed the measured
  /// `comm.exchanges_per_linear_iteration` from a HybridSolver run.
  double halo_exchanges_per_iter = 0.0;
  /// Override of the per-rank halo volume model (max_ghosts * kNs * 8
  /// bytes) as a function of total rank count. Feed the measured
  /// `comm.halo_bytes` per exchange round from a HybridSolver run.
  std::function<double(int)> halo_bytes_of_ranks;
};

struct ScalingPoint {
  int nodes = 0;
  int ranks = 0;
  double iterations = 0;
  double total_seconds = 0;
  double compute_seconds = 0;
  double allreduce_seconds = 0;
  double p2p_seconds = 0;
  double comm_fraction = 0;
  double max_local_edges = 0;   ///< slowest rank's edge count
  double halo_bytes_per_rank = 0;
};

/// Runs the real partitioner on `mesh` at each node count and composes the
/// strong-scaling curve. `mesh` is not modified.
std::vector<ScalingPoint> simulate_strong_scaling(
    const TetMesh& mesh, const ClusterConfig& cfg,
    const std::vector<int>& node_counts);

}  // namespace fun3d
