// Interconnect performance model for the multi-node scaling study
// (substitute for Stampede's Mellanox FDR InfiniBand 2-level fat tree,
// paper §IV-A / §VI-B).
//
// Collectives use the recursive-doubling/halving cost form
//   T_allreduce(P, m) = 2 ceil(log2 P) (alpha + m/bw)
// and point-to-point messages the alpha-beta form. Alpha includes the MPI
// stack; the fat-tree contributes per-stage latency at scale.
#pragma once

#include <cstddef>

namespace fun3d {

struct NetworkSpec {
  double alpha_us = 1.9;     ///< per-message latency (MPI + NIC)
  double bw_gbs = 6.0;       ///< effective per-link bandwidth (FDR ~56 Gb/s)
  double hop_us = 0.1;       ///< additional latency per fat-tree stage
  int nodes_per_edge_switch = 20;  ///< 2-level fat tree leaf size

  /// Allreduce of `bytes` across `nranks` ranks (seconds).
  [[nodiscard]] double allreduce_seconds(int nranks,
                                         std::size_t bytes) const;
  /// One point-to-point message (seconds).
  [[nodiscard]] double p2p_seconds(std::size_t bytes) const;
  /// Latency across the tree for the given node count.
  [[nodiscard]] double base_latency_seconds(int nodes) const;

  static NetworkSpec fdr_fat_tree();
};

}  // namespace fun3d
