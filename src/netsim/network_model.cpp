#include "netsim/network_model.hpp"

#include <cmath>

namespace fun3d {

double NetworkSpec::base_latency_seconds(int nodes) const {
  // One stage within an edge switch; crossing to the core level adds hops.
  const int stages = nodes <= nodes_per_edge_switch ? 1 : 3;
  return (alpha_us + stages * hop_us) * 1e-6;
}

double NetworkSpec::allreduce_seconds(int nranks, std::size_t bytes) const {
  if (nranks <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nranks)));
  const double per_round =
      base_latency_seconds(nranks) +
      static_cast<double>(bytes) / (bw_gbs * 1e9);
  return 2.0 * rounds * per_round;
}

double NetworkSpec::p2p_seconds(std::size_t bytes) const {
  return alpha_us * 1e-6 + static_cast<double>(bytes) / (bw_gbs * 1e9);
}

NetworkSpec NetworkSpec::fdr_fat_tree() { return {}; }

}  // namespace fun3d
