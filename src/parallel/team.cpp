#include "parallel/team.hpp"

#include <atomic>

#include "trace/trace.hpp"

namespace fun3d {
namespace {

// Relaxed atomics: the counters are observability, not synchronization,
// and note_team_shortfall can fire from concurrent solver instances.
std::atomic<std::uint64_t> g_shortfall_events{0};
std::atomic<idx_t> g_last_planned{0};
std::atomic<idx_t> g_last_delivered{0};

}  // namespace

std::uint64_t team_shortfall_events() {
  return g_shortfall_events.load(std::memory_order_relaxed);
}

idx_t team_last_planned() {
  return g_last_planned.load(std::memory_order_relaxed);
}

idx_t team_last_delivered() {
  return g_last_delivered.load(std::memory_order_relaxed);
}

void reset_team_shortfall_stats() {
  g_shortfall_events.store(0, std::memory_order_relaxed);
  g_last_planned.store(0, std::memory_order_relaxed);
  g_last_delivered.store(0, std::memory_order_relaxed);
}

namespace detail {

void note_team_shortfall(idx_t planned, idx_t delivered) {
  g_shortfall_events.fetch_add(1, std::memory_order_relaxed);
  g_last_planned.store(planned, std::memory_order_relaxed);
  g_last_delivered.store(delivered, std::memory_order_relaxed);
  // Every shortfall is also a timeline event: capped runs must be visible
  // in a trace, not just in the aggregate counters.
  trace::shortfall(planned, delivered);
}

}  // namespace detail
}  // namespace fun3d
