// Team-size-robust execution of precomputed per-thread work.
//
// Every parallel kernel in this codebase partitions its work ahead of time
// into `nthreads` shards (edge ranges, replicated edge lists, reduction
// partials, TRSV row ownership) and then opens
// `#pragma omp parallel num_threads(nthreads)`. The OpenMP runtime is free
// to deliver FEWER threads than requested (OMP_THREAD_LIMIT, nested
// regions with max_active_levels exhausted, cgroup CPU quotas): indexing
// the precomputed partition by `omp_get_thread_num()` then silently skips
// the absent threads' shards and corrupts results.
//
// `run_team` centralizes the fix: it opens the region, detects a
// shortfall in-region (team size is uniform across the region, so every
// thread agrees on the branch), and guarantees each planned shard executes
// exactly once:
//
//  * kCooperative — surviving threads round-robin the planned shard ids
//    (thread d runs shards d, d+delivered, d+2*delivered, ...). Ownership
//    semantics are unchanged: shard t still does exactly planned-thread
//    t's work, so owner-only writes stay conflict-free. Shards must not
//    contain barriers or worksharing constructs, and must be correct when
//    two different shards run concurrently on the surviving threads.
//  * kSerial — the shards run 0..planned-1 in planned order on the
//    calling thread, after the (useless) region has closed. For kernels
//    where cross-shard ordering matters.
//  * kAbort — no shard runs; the caller inspects TeamRun::completed and
//    picks its own fallback (e.g. trsv_p2p falling back to the
//    level-scheduled solve, whose worksharing is team-size-agnostic).
//
// Every detected shortfall is counted into process-wide statistics
// (team_shortfall_events & friends) that PerfReport::add_team_stats
// captures, so capped runs are visible in `--json` output, never silent.
#pragma once

#include <cstdint>

#include <omp.h>

#include "graph/csr.hpp"
#include "trace/trace.hpp"

namespace fun3d {

/// What run_team does when the runtime delivers fewer threads than planned.
enum class ShortfallPolicy {
  kCooperative,  ///< surviving threads round-robin the missing shards
  kSerial,       ///< all shards run in planned order on the calling thread
  kAbort,        ///< no shard runs; caller checks TeamRun::completed
};

/// Outcome of one run_team / run_team_workshare invocation.
struct TeamRun {
  idx_t planned = 1;    ///< team size the shards were built for
  idx_t delivered = 1;  ///< team size the runtime actually granted
  bool completed = true;  ///< false iff kAbort hit a shortfall

  [[nodiscard]] bool shortfall() const { return delivered < planned; }
};

/// Process-wide count of parallel regions that were delivered a smaller
/// team than planned (monotonic; reset with reset_team_shortfall_stats).
std::uint64_t team_shortfall_events();
/// Planned/delivered team sizes of the most recent shortfall (0 if none).
idx_t team_last_planned();
idx_t team_last_delivered();
void reset_team_shortfall_stats();

namespace detail {
void note_team_shortfall(idx_t planned, idx_t delivered);
}  // namespace detail

/// Runs `shard(t)` exactly once for every planned thread id t in
/// [0, planned), tolerating a delivered team smaller than planned (see
/// file comment for the per-policy contract). Returns what actually
/// happened; with kAbort the caller must check TeamRun::completed.
///
/// `label` names the per-shard trace spans (trace.hpp) so kernels are
/// distinguishable on a timeline; pass a string literal. Shards record one
/// span per planned id, carrying that id, which is what the timeline
/// analysis keys its critical-path chains on.
template <class Fn>
TeamRun run_team(idx_t planned, Fn&& shard,
                 ShortfallPolicy policy = ShortfallPolicy::kCooperative,
                 const char* label = "team") {
  TeamRun run;
  if (planned <= 1) {
    trace::TraceSpan span(label, 0);
    shard(static_cast<idx_t>(0));
    return run;
  }
  run.planned = planned;
  idx_t delivered = planned;
#pragma omp parallel num_threads(static_cast<int>(planned))
  {
    const idx_t team = static_cast<idx_t>(omp_get_num_threads());
    const idx_t me = static_cast<idx_t>(omp_get_thread_num());
    if (me == 0) delivered = team;
    // ONE code path for the full team and the cooperative round-robin: at
    // full strength the loop degenerates to the single iteration t == me.
    // Keeping a single inlined copy of the shard is what makes capped runs
    // bitwise-identical to full-team runs — two separately inlined copies
    // are free to contract floating-point mul+add differently. Team size
    // is uniform across the region, so every thread agrees on the branch
    // and a barrier-carrying shard (full team only) is never half-entered.
    if (team == planned || policy == ShortfallPolicy::kCooperative)
      for (idx_t t = me; t < planned; t += team) {
        trace::TraceSpan span(label, t);
        shard(t);
      }
  }
  run.delivered = delivered;
  if (run.shortfall()) {
    detail::note_team_shortfall(planned, delivered);
    if (policy == ShortfallPolicy::kSerial)
      for (idx_t t = 0; t < planned; ++t) {
        trace::TraceSpan span(label, t);
        shard(t);
      }
    run.completed = policy != ShortfallPolicy::kAbort;
  }
  return run;
}

/// Opens a parallel region whose body uses only team-size-agnostic
/// constructs (`omp for`, `omp single`, barriers) and never indexes
/// precomputed state by omp_get_thread_num() — correct for any delivered
/// team size by construction. Exists so even the "safe" regions detect
/// and count a capped team instead of degrading silently.
template <class Fn>
TeamRun run_team_workshare(idx_t planned, Fn&& body,
                           const char* label = "team") {
  TeamRun run;
  if (planned <= 1) {
    trace::TraceSpan span(label, 0);
    body();
    return run;
  }
  run.planned = planned;
  idx_t delivered = planned;
#pragma omp parallel num_threads(static_cast<int>(planned))
  {
    if (omp_get_thread_num() == 0)
      delivered = static_cast<idx_t>(omp_get_num_threads());
    trace::TraceSpan span(label,
                          static_cast<idx_t>(omp_get_thread_num()));
    body();
  }
  run.delivered = delivered;
  if (run.shortfall()) detail::note_team_shortfall(planned, delivered);
  return run;
}

}  // namespace fun3d
