#include "parallel/workshare.hpp"

// Header-only logic; translation unit anchors the library target.
