// Thin OpenMP work-sharing helpers: static range splitting, parallel-for,
// and deterministic parallel reductions used by the threaded vector
// primitives (the "PETSc native functions" the paper identifies as the
// Amdahl fraction of the Hybrid version).
#pragma once

#include <cstdint>
#include <utility>

#include <omp.h>

#include "graph/csr.hpp"

namespace fun3d {

/// [begin, end) chunk of `n` items for thread `t` of `nt` (balanced ±1).
inline std::pair<idx_t, idx_t> static_chunk(idx_t n, idx_t t, idx_t nt) {
  const idx_t base = n / nt, rem = n % nt;
  const idx_t begin = t * base + (t < rem ? t : rem);
  const idx_t len = base + (t < rem ? 1 : 0);
  return {begin, begin + len};
}

/// Runs fn(t, begin, end) on every thread over a static split of [0, n).
template <class Fn>
void parallel_ranges(idx_t n, int nthreads, Fn&& fn) {
#pragma omp parallel num_threads(nthreads)
  {
    const idx_t t = static_cast<idx_t>(omp_get_thread_num());
    const auto [b, e] = static_chunk(n, t, static_cast<idx_t>(nthreads));
    fn(t, b, e);
  }
}

/// Deterministic sum reduction: per-thread partials combined in thread
/// order, independent of scheduling (bitwise-reproducible run to run).
template <class Fn>
double parallel_sum(idx_t n, int nthreads, Fn&& term) {
  std::vector<double> partial(static_cast<std::size_t>(nthreads), 0.0);
#pragma omp parallel num_threads(nthreads)
  {
    const idx_t t = static_cast<idx_t>(omp_get_thread_num());
    const auto [b, e] = static_chunk(n, t, static_cast<idx_t>(nthreads));
    double acc = 0;
    for (idx_t i = b; i < e; ++i) acc += term(i);
    partial[static_cast<std::size_t>(t)] = acc;
  }
  double sum = 0;
  for (double p : partial) sum += p;
  return sum;
}

}  // namespace fun3d
