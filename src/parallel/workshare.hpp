// Thin OpenMP work-sharing helpers: static range splitting, parallel-for,
// and deterministic parallel reductions used by the threaded vector
// primitives (the "PETSc native functions" the paper identifies as the
// Amdahl fraction of the Hybrid version). Both helpers run through
// run_team, so a capped runtime (smaller delivered team) still executes
// every planned chunk exactly once.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/team.hpp"

namespace fun3d {

/// [begin, end) chunk of `n` items for thread `t` of `nt` (balanced ±1).
inline std::pair<idx_t, idx_t> static_chunk(idx_t n, idx_t t, idx_t nt) {
  const idx_t base = n / nt, rem = n % nt;
  const idx_t begin = t * base + (t < rem ? t : rem);
  const idx_t len = base + (t < rem ? 1 : 0);
  return {begin, begin + len};
}

/// Runs fn(t, begin, end) once per planned thread over a static split of
/// [0, n), for any delivered team size. `label` names the per-shard trace
/// spans (pass a string literal; see run_team).
template <class Fn>
void parallel_ranges(idx_t n, int nthreads, Fn&& fn,
                     const char* label = "team") {
  const idx_t nt = static_cast<idx_t>(nthreads);
  run_team(
      nt,
      [&](idx_t t) {
        const auto [b, e] = static_chunk(n, t, nt);
        fn(t, b, e);
      },
      ShortfallPolicy::kCooperative, label);
}

/// Deterministic sum reduction: partials are per *planned* thread and are
/// combined in planned-thread order, so the result is bitwise-reproducible
/// run to run and independent of the delivered team size.
template <class Fn>
double parallel_sum(idx_t n, int nthreads, Fn&& term,
                    const char* label = "team") {
  const idx_t nt = static_cast<idx_t>(nthreads);
  if (nt <= 1) {
    double acc = 0;
    for (idx_t i = 0; i < n; ++i) acc += term(i);
    return acc;
  }
  std::vector<double> partial(static_cast<std::size_t>(nt), 0.0);
  run_team(
      nt,
      [&](idx_t t) {
        const auto [b, e] = static_chunk(n, t, nt);
        double acc = 0;
        for (idx_t i = b; i < e; ++i) acc += term(i);
        partial[static_cast<std::size_t>(t)] = acc;
      },
      ShortfallPolicy::kCooperative, label);
  double sum = 0;
  for (double p : partial) sum += p;
  return sum;
}

}  // namespace fun3d
