#include "parallel/edge_partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/coloring.hpp"
#include "util/stats.hpp"

namespace fun3d {
namespace {

void finalize_replication_stats(EdgeLoopPlan& p) {
  p.processed_edges = 0;
  std::vector<double> per_thread;
  per_thread.reserve(p.thread_edges.size());
  for (const auto& te : p.thread_edges) {
    p.processed_edges += te.size();
    per_thread.push_back(static_cast<double>(te.size()));
  }
  p.replication_overhead =
      p.num_edges ? static_cast<double>(p.processed_edges) / p.num_edges - 1.0
                  : 0.0;
  p.load_imbalance = imbalance(per_thread);
}

void build_replication(const TetMesh& m, EdgeLoopPlan& p,
                       const Partition& owner) {
  p.vertex_owner = owner.part;
  p.thread_edges.assign(static_cast<std::size_t>(p.nthreads), {});
  for (std::size_t e = 0; e < m.edges.size(); ++e) {
    const auto [a, b] = m.edges[e];
    const idx_t ta = owner.part[static_cast<std::size_t>(a)];
    const idx_t tb = owner.part[static_cast<std::size_t>(b)];
    p.thread_edges[static_cast<std::size_t>(ta)].push_back(
        static_cast<idx_t>(e));
    if (tb != ta)
      p.thread_edges[static_cast<std::size_t>(tb)].push_back(
          static_cast<idx_t>(e));
  }
  finalize_replication_stats(p);
}

}  // namespace

const char* edge_strategy_name(EdgeStrategy s) {
  switch (s) {
    case EdgeStrategy::kAtomics: return "atomics";
    case EdgeStrategy::kReplicationNatural: return "replication-natural";
    case EdgeStrategy::kReplicationPartitioned: return "replication-metis";
    case EdgeStrategy::kColoring: return "coloring";
  }
  return "?";
}

EdgeLoopPlan build_edge_plan(const TetMesh& m, EdgeStrategy strategy,
                             idx_t nthreads, const PartitionOptions& opt) {
  EdgeLoopPlan p;
  p.strategy = strategy;
  p.nthreads = nthreads;
  p.num_edges = m.edges.size();
  const idx_t ne = static_cast<idx_t>(m.edges.size());

  switch (strategy) {
    case EdgeStrategy::kAtomics: {
      p.edge_begin.resize(static_cast<std::size_t>(nthreads) + 1);
      for (idx_t t = 0; t <= nthreads; ++t)
        p.edge_begin[static_cast<std::size_t>(t)] = static_cast<idx_t>(
            static_cast<std::int64_t>(ne) * t / nthreads);
      p.processed_edges = p.num_edges;
      p.replication_overhead = 0;
      std::vector<double> per_thread;
      for (idx_t t = 0; t < nthreads; ++t)
        per_thread.push_back(static_cast<double>(p.edge_begin[static_cast<std::size_t>(t) + 1] -
                                                 p.edge_begin[static_cast<std::size_t>(t)]));
      p.load_imbalance = imbalance(per_thread);
      break;
    }
    case EdgeStrategy::kReplicationNatural: {
      const Partition owner = partition_natural(m.num_vertices, nthreads);
      build_replication(m, p, owner);
      break;
    }
    case EdgeStrategy::kReplicationPartitioned: {
      const Partition owner =
          partition_graph(m.vertex_graph(), nthreads, {}, opt);
      build_replication(m, p, owner);
      break;
    }
    case EdgeStrategy::kColoring: {
      const CsrGraph conflicts = edge_conflict_graph(m.num_vertices, m.edges);
      const Coloring c = greedy_coloring(conflicts);
      p.color_classes.assign(static_cast<std::size_t>(c.ncolors), {});
      for (idx_t e = 0; e < ne; ++e)
        p.color_classes[static_cast<std::size_t>(c.color[e])].push_back(e);
      p.num_barriers = c.ncolors;
      p.processed_edges = p.num_edges;
      p.replication_overhead = 0;
      // Imbalance per colour class matters; report the worst.
      double worst = 1.0;
      for (const auto& cls : p.color_classes) {
        const double per = static_cast<double>(cls.size()) / nthreads;
        const double mx = std::ceil(per);
        if (per > 0) worst = std::max(worst, mx / per);
      }
      p.load_imbalance = worst;
      break;
    }
  }
  return p;
}

bool validate_edge_plan(const TetMesh& m, const EdgeLoopPlan& p) {
  const std::size_t ne = m.edges.size();
  std::vector<int> seen(ne, 0);
  switch (p.strategy) {
    case EdgeStrategy::kAtomics: {
      if (p.edge_begin.front() != 0 ||
          p.edge_begin.back() != static_cast<idx_t>(ne))
        return false;
      for (std::size_t t = 0; t + 1 < p.edge_begin.size(); ++t)
        if (p.edge_begin[t] > p.edge_begin[t + 1]) return false;
      return true;
    }
    case EdgeStrategy::kReplicationNatural:
    case EdgeStrategy::kReplicationPartitioned: {
      for (idx_t t = 0; t < p.nthreads; ++t) {
        for (idx_t e : p.edges_of(t)) {
          const auto [a, b] = m.edges[static_cast<std::size_t>(e)];
          // Thread must own at least one endpoint.
          if (p.vertex_owner[static_cast<std::size_t>(a)] != t &&
              p.vertex_owner[static_cast<std::size_t>(b)] != t)
            return false;
          seen[static_cast<std::size_t>(e)]++;
        }
      }
      for (std::size_t e = 0; e < ne; ++e) {
        const auto [a, b] = m.edges[e];
        const int expected =
            (p.vertex_owner[static_cast<std::size_t>(a)] ==
             p.vertex_owner[static_cast<std::size_t>(b)])
                ? 1
                : 2;
        if (seen[e] != expected) return false;
      }
      return true;
    }
    case EdgeStrategy::kColoring: {
      for (const auto& cls : p.color_classes) {
        std::vector<idx_t> touched;
        for (idx_t e : cls) {
          seen[static_cast<std::size_t>(e)]++;
          touched.push_back(m.edges[static_cast<std::size_t>(e)].first);
          touched.push_back(m.edges[static_cast<std::size_t>(e)].second);
        }
        std::sort(touched.begin(), touched.end());
        if (std::adjacent_find(touched.begin(), touched.end()) !=
            touched.end())
          return false;  // conflict within a class
      }
      for (std::size_t e = 0; e < ne; ++e)
        if (seen[e] != 1) return false;
      return true;
    }
  }
  return false;
}

}  // namespace fun3d
