// Thread-level parallelization strategies for edge-based loops
// (paper §V-A "Threading"):
//
//  * kAtomics               — edges split in natural order between threads;
//                             vertex updates use atomic adds ("Basic
//                             partitioning with atomics").
//  * kReplicationNatural    — vertices split in natural order; each thread
//                             processes every edge touching an owned vertex
//                             and writes only owned vertices ("Basic
//                             partitioning with replication"); cut edges are
//                             computed twice (~41% redundant work at 20
//                             threads in the paper).
//  * kReplicationPartitioned— vertex ownership from the graph partitioner
//                             ("METIS based partitioning"); replication
//                             drops to a few percent and load balances.
//  * kColoring              — conflict-free edge colour classes with a
//                             barrier per class (the strategy the paper
//                             rejects for locality; kept as a baseline).
#pragma once

#include <cstdint>

#include "graph/partition.hpp"
#include "mesh/mesh.hpp"

namespace fun3d {

enum class EdgeStrategy {
  kAtomics,
  kReplicationNatural,
  kReplicationPartitioned,
  kColoring,
};

const char* edge_strategy_name(EdgeStrategy s);

/// Execution plan for an edge loop under a given strategy/thread count.
struct EdgeLoopPlan {
  EdgeStrategy strategy = EdgeStrategy::kAtomics;
  idx_t nthreads = 1;

  /// kAtomics: thread t processes edges [edge_begin[t], edge_begin[t+1]).
  std::vector<idx_t> edge_begin;

  /// Replication strategies: vertex ownership and per-thread edge lists
  /// (ascending edge ids; cut edges appear in both touching threads).
  std::vector<idx_t> vertex_owner;
  std::vector<std::vector<idx_t>> thread_edges;

  /// kColoring: colour classes of edge ids; classes are barrier-separated,
  /// edges within a class share no vertex.
  std::vector<std::vector<idx_t>> color_classes;

  // --- measured work statistics (inputs to the machine model) ------------
  std::uint64_t num_edges = 0;
  std::uint64_t processed_edges = 0;  ///< sum over threads (>= num_edges)
  double replication_overhead = 0;    ///< processed/num_edges - 1
  double load_imbalance = 1;          ///< max/mean processed per thread
  idx_t num_barriers = 0;             ///< per loop execution (colours)

  [[nodiscard]] std::span<const idx_t> edges_of(idx_t t) const {
    return thread_edges[static_cast<std::size_t>(t)];
  }
};

/// Builds the plan for `nthreads` threads over the mesh's edge list.
EdgeLoopPlan build_edge_plan(const TetMesh& m, EdgeStrategy strategy,
                             idx_t nthreads,
                             const PartitionOptions& opt = {});

/// Validation: every edge is processed; under replication each vertex's
/// updates come from exactly its owner; colour classes are conflict-free.
bool validate_edge_plan(const TetMesh& m, const EdgeLoopPlan& p);

}  // namespace fun3d
