// Spin-wait primitive shared by the point-to-point scheduled sparse
// recurrences (TRSV sweeps, parallel ILU numeric factorization): each
// thread processes its owned rows in ascending index order and publishes a
// monotone per-thread progress counter; consumers spin until the owning
// thread has passed the row they depend on.
#pragma once

#include <atomic>
#include <cstdint>

#include <sched.h>
#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "graph/csr.hpp"

namespace fun3d {

inline void cpu_relax() {
#if defined(__x86_64__)
  _mm_pause();
#elif defined(__aarch64__)
  // The AArch64 hint for spin loops: yields pipeline resources to the
  // sibling hardware thread, the polite analogue of x86 PAUSE.
  asm volatile("yield");
#endif
}

/// Spins executed before conceding the core with sched_yield(). Shared
/// with the trace spin-counters (trace::spin_wait records spins/yields
/// against this threshold), so instrumentation and behaviour cannot drift.
inline constexpr int kSpinsBeforeYield = 64;

/// Spin/yield counts of one wait, as recorded by the instrumented path.
struct WaitStats {
  std::uint32_t spins = 0;
  std::uint32_t yields = 0;
};

/// Spin until the owner thread's progress counter reaches `row` — the
/// owner publishes `row` itself after finishing it, so the wait is
/// `counter >= row`, not strictly-greater (which would deadlock when `row`
/// is the owner's last row).
inline void wait_progress(const std::atomic<idx_t>& counter, idx_t row) {
  int spins = 0;
  while (counter.load(std::memory_order_acquire) < row) {
    cpu_relax();
    if (++spins >= kSpinsBeforeYield) {  // oversubscribed: let the owner run
      sched_yield();
      spins = 0;
    }
  }
}

/// wait_progress with spin/yield accounting, for the traced kernels. Same
/// wait loop and yield threshold; callers pick this variant only when
/// tracing is enabled, so the untraced path stays byte-for-byte the
/// uncounted loop above.
inline WaitStats wait_progress_counted(const std::atomic<idx_t>& counter,
                                       idx_t row) {
  WaitStats st;
  int spins = 0;
  while (counter.load(std::memory_order_acquire) < row) {
    cpu_relax();
    ++st.spins;
    if (++spins >= kSpinsBeforeYield) {
      sched_yield();
      ++st.yields;
      spins = 0;
    }
  }
  return st;
}

/// Epoch wait for the in-process rank runtime (src/comm/): spin until the
/// monotone 64-bit epoch counter reaches `target`. Same spin/yield loop and
/// threshold as wait_progress — mailbox epochs are unbounded message
/// counts, so they get the wider type instead of idx_t rows.
inline void wait_epoch(const std::atomic<std::uint64_t>& counter,
                       std::uint64_t target) {
  int spins = 0;
  while (counter.load(std::memory_order_acquire) < target) {
    cpu_relax();
    if (++spins >= kSpinsBeforeYield) {
      sched_yield();
      spins = 0;
    }
  }
}

/// wait_epoch with spin/yield accounting for the traced comm paths.
inline WaitStats wait_epoch_counted(const std::atomic<std::uint64_t>& counter,
                                    std::uint64_t target) {
  WaitStats st;
  int spins = 0;
  while (counter.load(std::memory_order_acquire) < target) {
    cpu_relax();
    ++st.spins;
    if (++spins >= kSpinsBeforeYield) {
      sched_yield();
      ++st.yields;
      spins = 0;
    }
  }
  return st;
}

}  // namespace fun3d
