// Spin-wait primitive shared by the point-to-point scheduled sparse
// recurrences (TRSV sweeps, parallel ILU numeric factorization): each
// thread processes its owned rows in ascending index order and publishes a
// monotone per-thread progress counter; consumers spin until the owning
// thread has passed the row they depend on.
#pragma once

#include <atomic>

#include <sched.h>
#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "graph/csr.hpp"

namespace fun3d {

inline void cpu_relax() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

/// Spin until the owner thread's progress counter reaches `row` — the
/// owner publishes `row` itself after finishing it, so the wait is
/// `counter >= row`, not strictly-greater (which would deadlock when `row`
/// is the owner's last row).
inline void wait_progress(const std::atomic<idx_t>& counter, idx_t row) {
  int spins = 0;
  while (counter.load(std::memory_order_acquire) < row) {
    cpu_relax();
    if (++spins >= 64) {  // oversubscribed cores: let the owner run
      sched_yield();
      spins = 0;
    }
  }
}

}  // namespace fun3d
