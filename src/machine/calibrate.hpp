// Host calibration: measures what this machine can actually do (STREAM-like
// bandwidth, scalar/SIMD flop rates) so that (a) single-core measurements
// can be compared against model predictions and (b) a `MachineSpec` for the
// host can be constructed.
#pragma once

#include "machine/machine_model.hpp"

namespace fun3d {

struct HostCalibration {
  double stream_triad_gbs = 0;   ///< a[i] = b[i] + s*c[i] over ~64 MB
  double scalar_gflops = 0;      ///< dependent-chain-free scalar FMA loop
  double simd_gflops = 0;        ///< vectorized FMA loop
};

/// Runs the microbenchmarks (~a second). `bytes` controls the triad size.
HostCalibration calibrate_host(std::size_t bytes = 64u << 20);

/// Host MachineSpec (single core) from a calibration.
MachineSpec host_machine(const HostCalibration& c);

}  // namespace fun3d
