#include "machine/kernel_model.hpp"

#include <algorithm>
#include <cmath>

namespace fun3d {

PhaseTime model_edge_loop(const MachineSpec& m, const LatencyModel& lat,
                          const std::vector<EdgeLoopCounts>& per_thread,
                          bool sw_prefetch, int barriers) {
  const int p = static_cast<int>(per_thread.size());
  const double scalar_rate = m.ghz * 1e9 * m.scalar_flops_per_cycle;
  const double simd_rate = m.ghz * 1e9 * m.simd_flops_per_cycle;
  const double bw_share = m.effective_bw_gbs(p) * 1e9 / std::max(p, 1);
  const double hide =
      sw_prefetch ? lat.hide_factor_sw_prefetch : lat.hide_factor;

  PhaseTime out;
  double total_bytes = 0;
  for (const auto& w : per_thread) {
    const double compute =
        w.scalar_flops / scalar_rate + w.simd_flops / simd_rate +
        w.atomics * m.atomic_contended_ns * 1e-9;
    const double memory = w.dram_bytes / bw_share;
    const double stalls = (w.llc_miss_lines * lat.dram_latency_ns +
                           w.l2_miss_lines * lat.llc_latency_ns) *
                          (1.0 - hide) * 1e-9;
    const double t = std::max(compute, memory) + stalls;
    if (t > out.seconds) {
      out.seconds = t;
      out.compute_seconds = compute;
      out.memory_seconds = memory + stalls;
      out.bandwidth_bound = memory > compute;
    }
    total_bytes += w.dram_bytes;
  }
  out.sync_seconds = barriers * m.barrier_seconds(p);
  out.seconds += out.sync_seconds;
  out.achieved_bw_gbs = out.seconds > 0 ? total_bytes / out.seconds / 1e9 : 0;
  return out;
}

RecurrenceWork trsv_row_work(const IluFactor& f) {
  const idx_t n = f.num_rows();
  RecurrenceWork w;
  w.simd_fraction = 0.3;  // 4x4 gemv vectorizes poorly (paper §V-B)
  w.row_flops.resize(static_cast<std::size_t>(n));
  w.row_bytes.resize(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    const double blocks =
        static_cast<double>(f.row_end(i) - f.row_begin(i));
    w.row_flops[static_cast<std::size_t>(i)] = blocks * 2.0 * kBs2;
    // Factor blocks + column indices streamed once; x/b vector accesses.
    w.row_bytes[static_cast<std::size_t>(i)] =
        blocks * (kBs2 * 8.0 + 4.0) + 2.0 * kBs * 8.0;
  }
  return w;
}

RecurrenceWork ilu_row_work(const IluFactor& f) {
  const idx_t n = f.num_rows();
  RecurrenceWork w;
  w.simd_fraction = 0.75;  // 4x4 gemm rows vectorize well
  w.row_flops.resize(static_cast<std::size_t>(n));
  w.row_bytes.resize(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    // Per L-part entry k: one gemm for L_ik plus updates against row k's
    // U part; approximate updates by the U length of row k.
    double flops = 2.0 * kBs * kBs2;  // diagonal inversion
    double bytes = 0;
    for (idx_t nz = f.row_begin(i); nz < f.diag_index(i); ++nz) {
      const idx_t k = f.col(nz);
      const double ulen =
          static_cast<double>(f.row_end(k) - f.diag_index(k) - 1);
      flops += 2.0 * kBs * kBs2 * (1.0 + ulen);
      bytes += (1.0 + ulen) * kBs2 * 8.0;  // row k streamed
    }
    const double own_blocks =
        static_cast<double>(f.row_end(i) - f.row_begin(i));
    bytes += own_blocks * (kBs2 * 8.0 * 2.0 + 4.0);  // read A, write factor
    w.row_flops[static_cast<std::size_t>(i)] = flops;
    w.row_bytes[static_cast<std::size_t>(i)] = bytes;
  }
  return w;
}

namespace {

/// One chunk of recurrence work on one core, with `p` cores sharing
/// bandwidth (`p` = 1 for critical-path rows, which execute with little
/// concurrent traffic). `simd_fraction` splits flops across pipe classes.
PhaseTime recurrence_phase(const MachineSpec& m, double flops, double bytes,
                           int p, double simd_fraction) {
  PhaseTime t;
  const double scalar_rate = m.ghz * 1e9 * m.scalar_flops_per_cycle;
  const double simd_rate = m.ghz * 1e9 * m.simd_flops_per_cycle;
  const double rate = 1.0 / ((1.0 - simd_fraction) / scalar_rate +
                             simd_fraction / simd_rate);
  const double bw = m.effective_bw_gbs(p) * 1e9 / std::max(p, 1);
  t.compute_seconds = flops / rate;
  t.memory_seconds = bytes / bw;
  t.seconds = std::max(t.compute_seconds, t.memory_seconds);
  t.bandwidth_bound = t.memory_seconds > t.compute_seconds;
  return t;
}

}  // namespace

PhaseTime model_level_schedule(const MachineSpec& m,
                               const RecurrenceWork& work,
                               const LevelSchedule& sched, int p) {
  PhaseTime out;
  double total_bytes = 0;
  for (idx_t l = 0; l < sched.nlevels; ++l) {
    const auto rows = sched.level(l);
    // Round-robin deal of the level's rows to p threads.
    std::vector<double> tf(static_cast<std::size_t>(p), 0.0),
        tb(static_cast<std::size_t>(p), 0.0);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const std::size_t t = k % static_cast<std::size_t>(p);
      tf[t] += work.row_flops[static_cast<std::size_t>(rows[k])];
      tb[t] += work.row_bytes[static_cast<std::size_t>(rows[k])];
      total_bytes += work.row_bytes[static_cast<std::size_t>(rows[k])];
    }
    double slowest = 0;
    for (int t = 0; t < p; ++t) {
      const PhaseTime pt =
          recurrence_phase(m, tf[static_cast<std::size_t>(t)],
                           tb[static_cast<std::size_t>(t)], p,
                           work.simd_fraction);
      slowest = std::max(slowest, pt.seconds);
    }
    out.seconds += slowest + m.barrier_seconds(p);
    out.sync_seconds += m.barrier_seconds(p);
  }
  out.achieved_bw_gbs = out.seconds > 0 ? total_bytes / out.seconds / 1e9 : 0;
  out.bandwidth_bound = true;
  return out;
}

PhaseTime model_p2p(const MachineSpec& m, const RecurrenceWork& work,
                    const CsrGraph& deps, const Partition& owner,
                    const P2PSyncPlan& plan, int p) {
  const idx_t n = deps.num_vertices();
  PhaseTime out;
  // Per-thread busy time.
  std::vector<double> tf(static_cast<std::size_t>(p), 0.0),
      tb(static_cast<std::size_t>(p), 0.0);
  double total_bytes = 0;
  for (idx_t i = 0; i < n; ++i) {
    const std::size_t t = static_cast<std::size_t>(owner.part[i]);
    tf[t] += work.row_flops[static_cast<std::size_t>(i)];
    tb[t] += work.row_bytes[static_cast<std::size_t>(i)];
    total_bytes += work.row_bytes[static_cast<std::size_t>(i)];
  }
  double slowest = 0;
  for (int t = 0; t < p; ++t)
    slowest = std::max(slowest,
                       recurrence_phase(m, tf[static_cast<std::size_t>(t)],
                                        tb[static_cast<std::size_t>(t)], p,
                                        work.simd_fraction)
                           .seconds);
  // Critical path through the dependency DAG. Rows on the critical path
  // execute with little concurrent traffic, so they see the single-core
  // bandwidth, not the p-way share.
  std::vector<double> path(static_cast<std::size_t>(n), 0.0);
  double cp = 0;
  for (idx_t i = 0; i < n; ++i) {
    double pmax = 0;
    for (idx_t j : deps.neighbors(i))
      pmax = std::max(pmax, path[static_cast<std::size_t>(j)]);
    const double row_t =
        recurrence_phase(m, work.row_flops[static_cast<std::size_t>(i)],
                         work.row_bytes[static_cast<std::size_t>(i)], 1,
                         work.simd_fraction)
            .seconds;
    path[static_cast<std::size_t>(i)] = pmax + row_t;
    cp = std::max(cp, path[static_cast<std::size_t>(i)]);
  }
  const double wait_overhead =
      static_cast<double>(plan.reduced_cross_deps) * m.p2p_wait_ns * 1e-9 /
      std::max(p, 1);
  out.seconds = std::max(slowest, cp) + wait_overhead;
  out.sync_seconds = wait_overhead;
  out.achieved_bw_gbs = out.seconds > 0 ? total_bytes / out.seconds / 1e9 : 0;
  out.bandwidth_bound = true;
  return out;
}

PhaseTime model_recurrence_serial(const MachineSpec& m,
                                  const RecurrenceWork& work) {
  double flops = 0, bytes = 0;
  for (double f : work.row_flops) flops += f;
  for (double b : work.row_bytes) bytes += b;
  PhaseTime t = recurrence_phase(m, flops, bytes, 1, work.simd_fraction);
  t.achieved_bw_gbs = t.seconds > 0 ? bytes / t.seconds / 1e9 : 0;
  return t;
}

}  // namespace fun3d
