#include "machine/machine_model.hpp"

#include <algorithm>
#include <cmath>

namespace fun3d {

double MachineSpec::effective_bw_gbs(int p) const {
  const double linear = bw_1core_gbs * std::max(p, 1);
  return std::min(linear, stream_bw_gbs);
}

double MachineSpec::barrier_seconds(int p) const {
  if (p <= 1) return 0.0;
  return (barrier_base_us + barrier_log_us * std::log2(static_cast<double>(p))) *
         1e-6;
}

MachineSpec MachineSpec::xeon_e5_2690v2() {
  MachineSpec m;
  m.name = "Xeon E5-2690 v2 (1 socket)";
  m.cores = 10;
  m.threads_per_core = 2;
  m.ghz = 3.0;
  m.scalar_flops_per_cycle = 2.0;
  m.simd_flops_per_cycle = 8.0;  // 4-wide DP mul + 4-wide DP add per cycle
  m.peak_bw_gbs = 42.2;
  m.stream_bw_gbs = 34.8;
  // Paper Fig. 7b: TRSV reaches ~94% of STREAM and saturates beyond 4 cores.
  m.bw_1core_gbs = 34.8 / 4.0;
  m.caches = {{32 * 1024, 8, 64}, {256 * 1024, 8, 64},
              {25 * 1024 * 1024, 20, 64}};
  return m;
}

MachineSpec MachineSpec::stampede_node() {
  MachineSpec m;
  m.name = "Stampede node (2x Xeon E5-2680)";
  m.cores = 16;
  m.threads_per_core = 1;  // hyper-threading disabled on Stampede
  m.ghz = 2.7;
  m.scalar_flops_per_cycle = 2.0;
  m.simd_flops_per_cycle = 8.0;
  m.peak_bw_gbs = 2 * 51.2;
  m.stream_bw_gbs = 2 * 38.0;
  m.bw_1core_gbs = 38.0 / 4.0;
  m.caches = {{32 * 1024, 8, 64}, {256 * 1024, 8, 64},
              {20 * 1024 * 1024, 20, 64}};
  return m;
}

namespace {

PhaseTime compose(const MachineSpec& m, const std::vector<ThreadWork>& work,
                  int active, int barriers) {
  PhaseTime out;
  const double scalar_rate = m.ghz * 1e9 * m.scalar_flops_per_cycle;
  const double simd_rate = m.ghz * 1e9 * m.simd_flops_per_cycle;
  const double bw_share =
      m.effective_bw_gbs(active) * 1e9 / std::max(active, 1);
  double total_bytes = 0;
  for (const auto& w : work) {
    const double compute = w.scalar_flops / scalar_rate +
                           w.simd_flops / simd_rate +
                           w.atomics * m.atomic_rmw_ns * 1e-9 +
                           w.contended_atomics * m.atomic_contended_ns * 1e-9 +
                           w.p2p_waits * m.p2p_wait_ns * 1e-9;
    const double memory = w.dram_bytes / bw_share;
    const double t = std::max(compute, memory);
    if (t > out.seconds) {
      out.seconds = t;
      out.compute_seconds = compute;
      out.memory_seconds = memory;
      out.bandwidth_bound = memory > compute;
    }
    total_bytes += w.dram_bytes;
  }
  out.sync_seconds = barriers * m.barrier_seconds(active);
  out.seconds += out.sync_seconds;
  out.achieved_bw_gbs = out.seconds > 0 ? total_bytes / out.seconds / 1e9 : 0;
  return out;
}

}  // namespace

PhaseTime model_phase(const MachineSpec& m,
                      const std::vector<ThreadWork>& per_thread,
                      int barriers) {
  return compose(m, per_thread, static_cast<int>(per_thread.size()), barriers);
}

PhaseTime model_serial(const MachineSpec& m, const ThreadWork& total) {
  return compose(m, {total}, 1, 0);
}

}  // namespace fun3d
