// Machine descriptions and the shared-memory execution-time model.
//
// The reproduction substitutes a *model* for the paper's 10-core Xeon
// E5-2690v2 (and Stampede's E5-2680 nodes), because this environment exposes
// a single core. The model's inputs are *measured* quantities from real runs
// of the real data structures — per-thread flop counts, DRAM bytes (from the
// cache simulator), replication overheads, load imbalance, critical paths,
// synchronization counts — and its outputs are the parallel execution times
// the missing hardware would produce, composed roofline-style:
//
//   t_thread  = max(flops / flop_rate, bytes / bw_share(p))
//   t_phase   = max_t t_thread + sync_cost(phase)
//
// Bandwidth is shared with saturation: total_bw(p) = min(p * bw_1core,
// stream_bw). The paper's observation that TRSV saturates beyond 4 cores
// pins bw_1core ~ stream_bw / 4 on the E5-2690v2.
#pragma once

#include <string>
#include <vector>

namespace fun3d {

struct CacheLevelSpec {
  std::size_t size_bytes = 0;
  int associativity = 8;
  int line_bytes = 64;
};

struct MachineSpec {
  std::string name;
  int cores = 1;
  int threads_per_core = 2;  ///< hyper-threading (affects thread mapping)
  double ghz = 3.0;
  /// Scalar double-precision flops per cycle per core (mul + add pipes).
  double scalar_flops_per_cycle = 2.0;
  /// SIMD flops per cycle per core (4-wide DP mul + add on AVX).
  double simd_flops_per_cycle = 8.0;
  double peak_bw_gbs = 42.2;    ///< DRAM peak
  double stream_bw_gbs = 34.8;  ///< measured STREAM
  double bw_1core_gbs = 9.0;    ///< single-core achievable bandwidth
  std::vector<CacheLevelSpec> caches;  ///< L1, L2, LLC

  // Synchronization cost constants (calibrated to typical x86 latencies).
  double barrier_base_us = 0.4;     ///< OpenMP barrier base cost
  double barrier_log_us = 0.25;     ///< + log2(threads) scaling
  double atomic_rmw_ns = 5.0;       ///< uncontended lock-prefixed add
  double atomic_contended_ns = 28.0;///< cache-line ping-pong add
  double p2p_wait_ns = 60.0;        ///< one satisfied point-to-point wait

  /// Peak double-precision Gflop/s with SIMD (e.g. 240 for E5-2690v2).
  [[nodiscard]] double peak_gflops() const {
    return cores * ghz * simd_flops_per_cycle;
  }
  /// Aggregate achievable bandwidth with `p` active cores (GB/s).
  [[nodiscard]] double effective_bw_gbs(int p) const;
  /// OpenMP-style barrier cost for `p` threads (seconds).
  [[nodiscard]] double barrier_seconds(int p) const;

  /// The paper's single-node platform: 1 socket of the 2x Xeon E5-2690v2
  /// workstation (10 cores @ 3.0 GHz, AVX, 240 Gflop/s, 42.2/34.8 GB/s).
  static MachineSpec xeon_e5_2690v2();
  /// One Stampede node: 2x Xeon E5-2680 (16 cores total @ 2.7 GHz).
  static MachineSpec stampede_node();
};

/// Work performed by one thread in one parallel phase.
struct ThreadWork {
  double scalar_flops = 0;  ///< flops executed on the scalar pipes
  double simd_flops = 0;    ///< flops executed on SIMD units
  double dram_bytes = 0;    ///< estimated DRAM traffic (cache-sim or model)
  double atomics = 0;       ///< atomic RMW count (uncontended assumed)
  double contended_atomics = 0;
  double p2p_waits = 0;     ///< point-to-point waits performed
};

struct PhaseTime {
  double seconds = 0;
  double compute_seconds = 0;   ///< slowest thread's compute component
  double memory_seconds = 0;    ///< slowest thread's memory component
  double sync_seconds = 0;
  bool bandwidth_bound = false;
  double achieved_bw_gbs = 0;   ///< total bytes / seconds
};

/// Composes one barrier-free parallel phase from per-thread work.
/// `barriers` adds that many barrier costs (e.g. level-scheduled TRSV).
PhaseTime model_phase(const MachineSpec& m,
                      const std::vector<ThreadWork>& per_thread,
                      int barriers = 0);

/// Serial-equivalent time of the same work on one core (for speedups).
PhaseTime model_serial(const MachineSpec& m, const ThreadWork& total);

}  // namespace fun3d
