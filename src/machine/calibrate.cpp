#include "machine/calibrate.hpp"

#include <algorithm>

#include "simd/vecd.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace fun3d {

HostCalibration calibrate_host(std::size_t bytes) {
  HostCalibration c;
  const std::size_t n = bytes / (3 * sizeof(double));
  AVec<double> a(n, 0.0), b(n, 1.0), d(n, 2.0);
  const double s = 3.0;

  const double triad_sec = time_best([&] {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * d[i];
  });
  c.stream_triad_gbs =
      static_cast<double>(3 * n * sizeof(double)) / triad_sec / 1e9;

  // Scalar flops: 8 independent accumulator chains, 2 flops per fma.
  // Volatile coefficients and sink keep the compiler from folding or
  // eliminating the arithmetic.
  volatile double vmul = 0.999999, vadd = 1e-9;
  volatile double sink = 0;
  const double mul_c = vmul, add_c = vadd;
  const std::size_t iters = 4u << 20;
  double acc[8] = {1, 1, 1, 1, 1, 1, 1, 1};
  const double scalar_sec = time_best([&] {
    double x0 = acc[0], x1 = acc[1], x2 = acc[2], x3 = acc[3];
    double x4 = acc[4], x5 = acc[5], x6 = acc[6], x7 = acc[7];
    for (std::size_t i = 0; i < iters; ++i) {
      x0 = x0 * mul_c + add_c;
      x1 = x1 * mul_c + add_c;
      x2 = x2 * mul_c + add_c;
      x3 = x3 * mul_c + add_c;
      x4 = x4 * mul_c + add_c;
      x5 = x5 * mul_c + add_c;
      x6 = x6 * mul_c + add_c;
      x7 = x7 * mul_c + add_c;
    }
    acc[0] = x0; acc[1] = x1; acc[2] = x2; acc[3] = x3;
    acc[4] = x4; acc[5] = x5; acc[6] = x6; acc[7] = x7;
    sink = x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7;
  });
  c.scalar_gflops = static_cast<double>(iters) * 8 * 2 / scalar_sec / 1e9;

  // SIMD flops: 8 vector accumulators, 8 flops per Vec4d fma.
  Vec4d v[8];
  for (auto& x : v) x = Vec4d(1.0);
  const Vec4d mul(mul_c), add(add_c);
  const double simd_sec = time_best([&] {
    Vec4d y0 = v[0], y1 = v[1], y2 = v[2], y3 = v[3];
    Vec4d y4 = v[4], y5 = v[5], y6 = v[6], y7 = v[7];
    for (std::size_t i = 0; i < iters; ++i) {
      y0 = Vec4d::fma(y0, mul, add);
      y1 = Vec4d::fma(y1, mul, add);
      y2 = Vec4d::fma(y2, mul, add);
      y3 = Vec4d::fma(y3, mul, add);
      y4 = Vec4d::fma(y4, mul, add);
      y5 = Vec4d::fma(y5, mul, add);
      y6 = Vec4d::fma(y6, mul, add);
      y7 = Vec4d::fma(y7, mul, add);
    }
    v[0] = y0; v[1] = y1; v[2] = y2; v[3] = y3;
    v[4] = y4; v[5] = y5; v[6] = y6; v[7] = y7;
    sink = y0.lane(0) + y1.lane(1) + y2.lane(2) + y3.lane(3);
  });
  c.simd_gflops = static_cast<double>(iters) * 8 * 8 / simd_sec / 1e9;
  (void)sink;
  return c;
}

MachineSpec host_machine(const HostCalibration& c) {
  MachineSpec m;
  m.name = "host (calibrated, 1 core)";
  m.cores = 1;
  m.threads_per_core = 1;
  m.ghz = 1.0;  // rates absorbed below
  m.scalar_flops_per_cycle = c.scalar_gflops;
  m.simd_flops_per_cycle = c.simd_gflops;
  m.stream_bw_gbs = c.stream_triad_gbs;
  m.peak_bw_gbs = c.stream_triad_gbs * 1.2;
  m.bw_1core_gbs = c.stream_triad_gbs;
  m.caches = {{32 * 1024, 8, 64}, {1024 * 1024, 8, 64},
              {32 * 1024 * 1024, 16, 64}};
  return m;
}

}  // namespace fun3d
