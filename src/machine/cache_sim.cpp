#include "machine/cache_sim.hpp"

#include <cassert>
#include <stdexcept>

namespace fun3d {

namespace {
bool is_pow2(std::size_t x) { return x && (x & (x - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(std::size_t size_bytes, int associativity,
                       int line_bytes)
    : assoc_(associativity), line_bytes_(line_bytes) {
  if (associativity <= 0 || line_bytes <= 0 || size_bytes == 0)
    throw std::invalid_argument("CacheLevel: bad geometry");
  num_sets_ = size_bytes / (static_cast<std::size_t>(associativity) *
                            static_cast<std::size_t>(line_bytes));
  if (num_sets_ == 0) num_sets_ = 1;
  if (!is_pow2(num_sets_)) {
    // Round down to a power of two so the index is a mask.
    std::size_t p = 1;
    while (p * 2 <= num_sets_) p *= 2;
    num_sets_ = p;
  }
  tags_.assign(num_sets_ * static_cast<std::size_t>(assoc_), ~0ull);
  age_.assign(tags_.size(), 0);
}

bool CacheLevel::access(std::uint64_t line_addr) {
  const std::size_t set = static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
  const std::size_t base = set * static_cast<std::size_t>(assoc_);
  ++clock_;
  int lru_way = 0;
  std::uint32_t lru_age = age_[base];
  for (int w = 0; w < assoc_; ++w) {
    if (tags_[base + static_cast<std::size_t>(w)] == line_addr) {
      age_[base + static_cast<std::size_t>(w)] = clock_;
      ++hits_;
      return true;
    }
    if (age_[base + static_cast<std::size_t>(w)] < lru_age) {
      lru_age = age_[base + static_cast<std::size_t>(w)];
      lru_way = w;
    }
  }
  tags_[base + static_cast<std::size_t>(lru_way)] = line_addr;
  age_[base + static_cast<std::size_t>(lru_way)] = clock_;
  ++misses_;
  return false;
}

void CacheLevel::reset() {
  std::fill(tags_.begin(), tags_.end(), ~0ull);
  std::fill(age_.begin(), age_.end(), 0u);
  clock_ = 0;
  hits_ = 0;
  misses_ = 0;
}

CacheSim::CacheSim(const std::vector<CacheLevelSpec>& levels) {
  for (const auto& s : levels)
    levels_.emplace_back(s.size_bytes, s.associativity, s.line_bytes);
  if (levels_.empty())
    throw std::invalid_argument("CacheSim: at least one level required");
}

void CacheSim::access(std::uint64_t addr, std::uint32_t bytes) {
  const int line = levels_[0].line_bytes();
  const std::uint64_t first = addr / static_cast<std::uint64_t>(line);
  const std::uint64_t last =
      (addr + bytes - 1) / static_cast<std::uint64_t>(line);
  for (std::uint64_t l = first; l <= last; ++l) {
    for (auto& lev : levels_) {
      if (lev.access(l)) break;  // hit: done; misses install downward
    }
  }
}

void CacheSim::reset() {
  for (auto& l : levels_) l.reset();
}

std::uint64_t CacheSim::dram_bytes() const {
  const auto& last = levels_.back();
  return last.misses() * static_cast<std::uint64_t>(last.line_bytes());
}

double CacheSim::hit_rate(std::size_t i) const {
  const auto& l = levels_[i];
  const std::uint64_t total = l.hits() + l.misses();
  return total ? static_cast<double>(l.hits()) / static_cast<double>(total)
               : 0.0;
}

}  // namespace fun3d
