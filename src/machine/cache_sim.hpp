// Multi-level set-associative LRU cache simulator.
//
// Estimates the DRAM traffic of irregular kernels (edge gathers, factor
// sweeps) by replaying their address streams. This is what lets the machine
// model distinguish the AoS vs SoA vertex layouts (paper §V-A: AoS gives
// ~20% better L1/L2 reuse => ~40% kernel speedup) without the real caches.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_model.hpp"

namespace fun3d {

/// One cache level. True LRU within a set.
class CacheLevel {
 public:
  CacheLevel(std::size_t size_bytes, int associativity, int line_bytes);

  /// Returns true on hit; on miss installs the line (LRU eviction).
  bool access(std::uint64_t line_addr);
  void reset();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }

 private:
  int assoc_;
  int line_bytes_;
  std::size_t num_sets_;
  // ways_[set*assoc + w] = tag (line address), lru_[..] = age stamp.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> age_;
  std::uint32_t clock_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0;
};

/// Inclusive-enough multi-level hierarchy: an access probes L1, then L2, ...
/// installing on each missed level. DRAM traffic = LLC misses * line size.
class CacheSim {
 public:
  explicit CacheSim(const std::vector<CacheLevelSpec>& levels);
  static CacheSim for_machine(const MachineSpec& m) {
    return CacheSim(m.caches);
  }

  /// Touch [addr, addr+bytes) — every spanned line is accessed.
  void access(std::uint64_t addr, std::uint32_t bytes);
  void reset();

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const CacheLevel& level(std::size_t i) const {
    return levels_[i];
  }
  /// Estimated bytes moved from DRAM (misses in the last level).
  [[nodiscard]] std::uint64_t dram_bytes() const;
  /// Hit rate of level i over its own accesses.
  [[nodiscard]] double hit_rate(std::size_t i) const;

 private:
  std::vector<CacheLevel> levels_;
};

}  // namespace fun3d
