// Kernel-specific time composition on top of the machine model: edge-based
// stencil loops (flux/gradient/Jacobian) and sparse recurrences (ILU/TRSV).
//
// All inputs are *measured* on the real data structures: flop counts are
// analytic per edge/block, DRAM bytes and miss counts come from the cache
// simulator replaying the kernel's exact address stream, schedules and
// critical paths come from the real factors. The model adds only the
// latency/bandwidth/synchronization arithmetic of the absent hardware.
#pragma once

#include "graph/levels.hpp"
#include "graph/sparsify.hpp"
#include "machine/machine_model.hpp"
#include "sparse/ilu.hpp"

namespace fun3d {

/// Memory-latency knobs for irregular-access kernels. Out-of-order
/// execution plus hardware prefetch hide most miss latency; software
/// prefetching (paper §V-A) hides more. Calibrated so the prefetch benefit
/// lands in the paper's observed ~15% range for the flux kernel.
struct LatencyModel {
  double dram_latency_ns = 75.0;
  double llc_latency_ns = 28.0;
  double hide_factor = 0.88;           ///< OoO + HW prefetch
  double hide_factor_sw_prefetch = 0.94;
};

/// Per-thread counters for one edge-loop execution (one thread's share).
struct EdgeLoopCounts {
  double edges = 0;
  double scalar_flops = 0;
  double simd_flops = 0;
  double dram_bytes = 0;
  double llc_miss_lines = 0;  ///< lines fetched from DRAM
  double l2_miss_lines = 0;   ///< lines fetched from LLC
  double atomics = 0;         ///< atomic RMWs (atomics strategy)
};

/// Models one barrier-free edge loop. `sw_prefetch` selects the stronger
/// hide factor. `barriers` covers the colouring strategy.
PhaseTime model_edge_loop(const MachineSpec& m, const LatencyModel& lat,
                          const std::vector<EdgeLoopCounts>& per_thread,
                          bool sw_prefetch, int barriers = 0);

/// Sparse recurrence cost inputs: per-row flops and streamed bytes of an
/// ILU factor (TRSV) or of the factorization itself. `simd_fraction` is the
/// share of flops executed on the SIMD pipes (within-block vectorization,
/// paper §V-B) — ILU's 4x4 gemms vectorize well, TRSV's gemvs less so.
struct RecurrenceWork {
  std::vector<double> row_flops;   ///< flops to process each row
  std::vector<double> row_bytes;   ///< bytes streamed for each row
  double simd_fraction = 0.0;
};

/// TRSV/ILU work vectors from a factor: forward+backward solve (trsv=true)
/// or factorization sweep (trsv=false; uses factor_flops distribution).
RecurrenceWork trsv_row_work(const IluFactor& f);
RecurrenceWork ilu_row_work(const IluFactor& f);

/// Level-scheduled execution: sum over levels of (slowest thread in level +
/// barrier). Rows within a level are dealt round-robin to p threads.
PhaseTime model_level_schedule(const MachineSpec& m,
                               const RecurrenceWork& work,
                               const LevelSchedule& sched, int p);

/// P2P execution: threads own contiguous row blocks and wait point-to-point.
/// Time = max(slowest thread, critical path) + per-wait overhead, with
/// bandwidth shared across p cores.
PhaseTime model_p2p(const MachineSpec& m, const RecurrenceWork& work,
                    const CsrGraph& deps, const Partition& owner,
                    const P2PSyncPlan& plan, int p);

/// Serial execution of the same recurrence on one core.
PhaseTime model_recurrence_serial(const MachineSpec& m,
                                  const RecurrenceWork& work);

}  // namespace fun3d
