#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace fun3d {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (widths.size() < r.size()) widths.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());
  }
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::string cell = r[c];
      cell.resize(widths[c], ' ');
      out += cell;
      if (c + 1 < r.size()) out += "  ";
    }
    out += '\n';
    if (i == 0) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        if (c + 1 < widths.size()) out += "  ";
      }
      out += '\n';
    }
  }
  return out;
}

void Table::print(std::FILE* out) const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace fun3d
