// Plain-text table printer for benchmark output.
//
// Every bench binary prints "paper vs measured/modelled" rows; this keeps the
// formatting consistent and alignment-safe without iostream manipulied noise.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace fun3d {

/// Column-aligned ASCII table. Add a header row, then data rows; print()
/// right-aligns numeric-looking cells and left-aligns text.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.3g, ints as-is.
  static std::string num(double v, const char* fmt = "%.4g");

  void print(std::FILE* out = stdout) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fun3d
