// Deterministic fast RNG for tests and synthetic data.
//
// xoshiro256** — small state, excellent statistical quality, and fully
// reproducible across platforms (unlike std::mt19937 distributions whose
// outputs are implementation-defined for floating point).
#pragma once

#include <cstdint>

namespace fun3d {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace fun3d
