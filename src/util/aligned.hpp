// Cache-line and SIMD-aligned storage helpers.
//
// HPC kernels in this project gather/scatter through vertex and edge arrays;
// keeping them 64-byte aligned makes vector loads cheap and keeps the cache
// simulator's address arithmetic honest.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace fun3d {

inline constexpr std::size_t kCacheLine = 64;

/// Minimal C++17/20 aligned allocator; use as
/// `std::vector<double, AlignedAllocator<double>>`.
template <class T, std::size_t Align = kCacheLine>
struct AlignedAllocator {
  using value_type = T;
  // Non-type template parameter defeats allocator_traits' automatic rebind;
  // spell it out.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }
};

/// Aligned dynamic array — the workhorse container for field data.
template <class T>
using AVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace fun3d
