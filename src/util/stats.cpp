#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fun3d {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  // Welford's online recurrence: E[x^2] - mean^2 cancels catastrophically
  // for large-mean samples (e.g. nanosecond timestamps), yielding zero or
  // even negative variance; the centered update does not.
  double sum = 0, mean = 0, m2 = 0, n = 0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
    n += 1.0;
    const double d = x - mean;
    mean += d / n;
    m2 += d * (x - mean);
  }
  s.sum = sum;
  s.mean = mean;
  s.stddev = std::sqrt(std::max(0.0, m2 / n));
  return s;
}

double imbalance(std::span<const double> per_thread_work) {
  const Summary s = summarize(per_thread_work);
  if (s.count == 0 || s.mean == 0) return 1.0;
  return s.max / s.mean;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

double rel_err(double a, double b, double eps) {
  return std::abs(a - b) / std::max(std::abs(b), eps);
}

std::vector<std::size_t> histogram(std::span<const double> xs,
                                   std::size_t nbins) {
  std::vector<std::size_t> bins(nbins, 0);
  if (xs.empty() || nbins == 0) return bins;
  const Summary s = summarize(xs);
  const double width = (s.max - s.min) / static_cast<double>(nbins);
  for (double x : xs) {
    std::size_t b =
        width == 0 ? 0
                   : static_cast<std::size_t>((x - s.min) / width);
    if (b >= nbins) b = nbins - 1;
    bins[b]++;
  }
  return bins;
}

}  // namespace fun3d
