#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace fun3d {
namespace {

/// True when the whole token parses as a number — so `--shift -1.5` is a
/// flag with a (negative) value, not two flags.
bool looks_numeric(const char* s) {
  char* end = nullptr;
  std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view a(argv[i]);
    if (a.size() < 3 || a.substr(0, 2) != "--") {
      std::fprintf(stderr, "cli: ignoring non-flag argument '%s'\n", argv[i]);
      continue;
    }
    a.remove_prefix(2);
    const auto eq = a.find('=');
    if (eq != std::string_view::npos) {
      kv_[std::string(a.substr(0, eq))] = std::string(a.substr(eq + 1));
    } else if (i + 1 < argc &&
               (argv[i + 1][0] != '-' || looks_numeric(argv[i + 1]))) {
      kv_[std::string(a)] = argv[++i];
    } else {
      kv_[std::string(a)] = "true";  // bare boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const { return kv_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

long Cli::get_int(const std::string& name, long def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0')
    std::fprintf(stderr, "cli: --%s: trailing garbage in '%s' (using %ld)\n",
                 name.c_str(), it->second.c_str(), v);
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    std::fprintf(stderr, "cli: --%s: trailing garbage in '%s' (using %g)\n",
                 name.c_str(), it->second.c_str(), v);
  return v;
}

std::string Cli::extract_flag(int* argc, char** argv,
                              const std::string& name) {
  const std::string plain = "--" + name;
  const std::string eq = plain + "=";
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view a(argv[i]);
    if (a == plain) {
      if (i + 1 < *argc) {
        value = argv[++i];
      } else {
        // Trailing valueless flag: consume it anyway so the downstream
        // parser never sees it, and say why nothing will happen.
        std::fprintf(stderr,
                     "cli: --%s requires a value but is the last argument; "
                     "flag ignored\n",
                     name.c_str());
      }
    } else if (a.substr(0, eq.size()) == eq) {
      value = std::string(a.substr(eq.size()));
    } else {
      argv[w++] = argv[i];
    }
  }
  argv[w] = nullptr;
  *argc = w;
  return value;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace fun3d
