#include "util/timer.hpp"

// Header-only logic; translation unit anchors the library target.
