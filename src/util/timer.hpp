// Wall-clock timing and named timer accumulation.
//
// The solver attributes execution time to the paper's kernel categories
// (flux, gradient, Jacobian, ILU, TRSV, vector ops, scatter, other); the
// StopwatchSet here is the mechanism behind Fig. 5 / Fig. 8 style profiles.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace fun3d {

/// Simple monotonic wall-clock timer.
class Timer {
 public:
  Timer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time under string keys; used for kernel profiles.
class StopwatchSet {
 public:
  /// RAII scope: adds elapsed time to `name` on destruction.
  class Scope {
   public:
    Scope(StopwatchSet& set, std::string name)
        : set_(&set), name_(std::move(name)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { set_->add(name_, t_.seconds()); }

   private:
    StopwatchSet* set_;
    std::string name_;
    Timer t_;
  };

  void add(const std::string& name, double sec) { acc_[name] += sec; }
  [[nodiscard]] Scope scoped(std::string name) {
    return Scope(*this, std::move(name));
  }
  [[nodiscard]] double get(const std::string& name) const {
    auto it = acc_.find(name);
    return it == acc_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] double total() const {
    double s = 0;
    for (auto& [k, v] : acc_) s += v;
    return s;
  }
  [[nodiscard]] const std::map<std::string, double>& entries() const {
    return acc_;
  }
  void clear() { acc_.clear(); }

 private:
  std::map<std::string, double> acc_;
};

/// Runs `fn` repeatedly until at least `min_seconds` elapsed (at least once),
/// returning best-of-reps seconds per call. Use for microbenchmarks outside
/// google-benchmark harnesses.
template <class Fn>
double time_best(Fn&& fn, int min_reps = 3, double min_seconds = 0.05) {
  double best = 1e300;
  double spent = 0;
  int reps = 0;
  while (reps < min_reps || spent < min_seconds) {
    Timer t;
    fn();
    double s = t.seconds();
    best = s < best ? s : best;
    spent += s;
    ++reps;
    if (reps > 1000) break;
  }
  return best;
}

}  // namespace fun3d
