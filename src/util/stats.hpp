// Small descriptive-statistics helpers used by mesh/partition quality
// reports and the machine model (load imbalance, replication factors).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fun3d {

struct Summary {
  double min = 0, max = 0, mean = 0, stddev = 0, sum = 0;
  std::size_t count = 0;
};

/// One-pass min/max/mean/stddev over a span of values.
Summary summarize(std::span<const double> xs);

/// max/mean — the classic parallel load-imbalance metric (1.0 = perfect).
double imbalance(std::span<const double> per_thread_work);

/// Geometric mean (used for speedup aggregation across kernels).
double geomean(std::span<const double> xs);

/// Relative error |a-b| / max(|b|, eps).
double rel_err(double a, double b, double eps = 1e-300);

/// Histogram with `nbins` equal-width bins over [min,max] of the data.
std::vector<std::size_t> histogram(std::span<const double> xs,
                                   std::size_t nbins);

}  // namespace fun3d
