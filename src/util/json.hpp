// Minimal dependency-free JSON document model: writer + strict parser.
//
// Backs the machine-readable perf-report layer (core/profile.hpp): benches
// serialize a PerfReport to a schema-stable JSON artifact, and the baseline
// comparator parses emitted reports back. Objects preserve insertion order,
// so a report built by the same code path always serializes byte-stably
// (modulo the values themselves).
//
// Numbers are stored as doubles; integers up to 2^53 round-trip exactly and
// serialize without a trailing ".0" when integral.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fun3d {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }

  [[nodiscard]] double as_double(double def = 0.0) const {
    return is_number() ? num_ : def;
  }
  [[nodiscard]] bool as_bool(bool def = false) const {
    return is_bool() ? bool_ : def;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Object: returns the member value, inserting a null member if absent.
  Json& operator[](const std::string& key);
  /// Object: member lookup without insertion; nullptr when absent or not an
  /// object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Array: appends an element (converts a null value to an array first).
  void push_back(Json v);

  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const { return items_[i].second; }
  [[nodiscard]] const std::string& key_at(std::size_t i) const {
    return items_[i].first;
  }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict recursive-descent parse. On failure returns null and, when
  /// `err` is non-null, stores a message with the byte offset.
  static Json parse(std::string_view text, std::string* err = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  /// Array elements (first empty) and object members, in insertion order.
  std::vector<std::pair<std::string, Json>> items_;
};

/// Writes `text` to `path` atomically enough for reports (tmp not needed:
/// single write + close). Returns false and fills `err` on I/O failure.
bool write_text_file(const std::string& path, const std::string& text,
                     std::string* err = nullptr);

/// Reads the whole file; returns false and fills `err` on failure.
bool read_text_file(const std::string& path, std::string* out,
                    std::string* err = nullptr);

}  // namespace fun3d
