#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fun3d {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; degrade to null
    out += "null";
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* err;

  [[nodiscard]] bool fail(const char* what) {
    if (err != nullptr && err->empty()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "json parse error at offset %zu: %s",
                    pos, what);
      *err = buf;
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  /// Consumes exactly four hex digits into `cp`; false (position left at
  /// the offending digit) otherwise.
  bool parse_hex4(unsigned& cp) {
    if (pos + 4 > text.size()) return false;
    cp = 0;
    for (int k = 0; k < 4; ++k) {
      char h = text[pos++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else return false;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) break;
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) return fail("bad \\u escape");
            if (cp >= 0xDC00 && cp <= 0xDFFF)
              return fail("unpaired low surrogate");
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: RFC 8259 requires the low half as an
              // immediately following \uXXXX escape; combine to the
              // supplementary-plane code point.
              if (pos + 2 > text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u')
                return fail("unpaired high surrogate");
              pos += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return fail("bad \\u escape");
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("unpaired high surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            // Encode the code point as UTF-8 (1-4 bytes).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else if (cp < 0x10000) {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xF0 | (cp >> 18));
              out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return fail("expected ':'");
        Json v;
        if (!parse_value(v)) return false;
        out[key] = std::move(v);
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Json v;
        if (!parse_value(v)) return false;
        out.push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      out = Json(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      out = Json(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      out = Json();
      return true;
    }
    // Number.
    const char* begin = text.data() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return fail("unexpected token");
    pos += static_cast<std::size_t>(end - begin);
    out = Json(v);
    return true;
  }
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, v] : items_)
    if (k == key) return v;
  items_.emplace_back(key, Json());
  return items_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : items_)
    if (k == key) return &v;
  return nullptr;
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  items_.emplace_back(std::string(), std::move(v));
}

std::size_t Json::size() const {
  return type_ == Type::kArray || type_ == Type::kObject ? items_.size() : 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, num_);
      break;
    case Type::kString:
      append_escaped(out, str_);
      break;
    case Type::kArray:
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    case Type::kObject:
      out += '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, items_[i].first);
        out += indent > 0 ? ": " : ":";
        items_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text, std::string* err) {
  Parser p{text, 0, err};
  Json out;
  if (!p.parse_value(out)) return Json();
  p.skip_ws();
  if (p.pos != text.size()) {
    [[maybe_unused]] const bool ok = p.fail("trailing content");
    return Json();
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& text,
                     std::string* err) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (fp == nullptr) {
    if (err != nullptr) *err = "cannot open '" + path + "' for writing";
    return false;
  }
  const std::size_t wrote = std::fwrite(text.data(), 1, text.size(), fp);
  const bool ok = std::fclose(fp) == 0 && wrote == text.size();
  if (!ok && err != nullptr) *err = "short write to '" + path + "'";
  return ok;
}

bool read_text_file(const std::string& path, std::string* out,
                    std::string* err) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    if (err != nullptr) *err = "cannot open '" + path + "'";
    return false;
  }
  out->clear();
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0) out->append(buf, n);
  std::fclose(fp);
  return true;
}

}  // namespace fun3d
