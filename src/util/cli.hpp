// Tiny flag parser shared by bench binaries and examples.
//
// Supports `--name value` and `--name=value`; unknown flags are reported.
#pragma once

#include <map>
#include <string>

namespace fun3d {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& name, long def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace fun3d
