// Tiny flag parser shared by bench binaries and examples.
//
// Supports `--name value` and `--name=value`; unknown flags are reported.
#pragma once

#include <map>
#include <string>

namespace fun3d {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& name, long def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Removes `--name value` / `--name=value` from argv (compacting it and
  /// decrementing *argc) and returns the value, or "" when absent. For
  /// binaries whose remaining flags are parsed by another framework
  /// (google-benchmark) that rejects unknown arguments.
  static std::string extract_flag(int* argc, char** argv,
                                  const std::string& name);

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace fun3d
