#include "graph/sparsify.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace fun3d {
namespace {

bool has(std::span<const idx_t> sorted, idx_t x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

/// True if `target` is reachable from `from` within `hops` dependency hops
/// in `deps` (excluding the trivial 0-hop case).
bool reachable(const CsrGraph& deps, idx_t from, idx_t target, int hops) {
  if (hops <= 0) return false;
  auto d = deps.neighbors(from);
  if (has(d, target)) return true;
  if (hops == 1) return false;
  for (idx_t m : d) {
    if (m < target) continue;  // deps only point downward; prune
    if (reachable(deps, m, target, hops - 1)) return true;
  }
  return false;
}

}  // namespace

CsrGraph transitive_reduce(const CsrGraph& deps, int hops) {
  const idx_t n = deps.num_vertices();
  CsrGraph out;
  out.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<idx_t> kept;
  std::vector<idx_t> all_kept;
  for (idx_t i = 0; i < n; ++i) {
    auto d = deps.neighbors(i);
    kept.clear();
    // In a DAG an edge (j -> i) is redundant iff a path of length >= 2 from
    // some other predecessor reaches j; removing all such edges at once is
    // safe (transitive reduction of a DAG is unique).
    for (std::size_t a = 0; a < d.size(); ++a) {
      const idx_t j = d[a];
      bool redundant = false;
      for (std::size_t b = 0; b < d.size() && !redundant; ++b) {
        if (a == b) continue;
        const idx_t k = d[b];
        if (k <= j) continue;  // a covering path must come from a later dep
        redundant = reachable(deps, k, j, hops);
      }
      if (!redundant) kept.push_back(j);
    }
    out.rowptr[static_cast<std::size_t>(i) + 1] =
        out.rowptr[static_cast<std::size_t>(i)] +
        static_cast<idx_t>(kept.size());
    all_kept.insert(all_kept.end(), kept.begin(), kept.end());
  }
  out.col = std::move(all_kept);
  return out;
}

P2PSyncPlan build_p2p_plan(const CsrGraph& deps, const Partition& owner,
                           bool reduce, int hops) {
  const idx_t n = deps.num_vertices();
  P2PSyncPlan plan;
  for (idx_t i = 0; i < n; ++i)
    for (idx_t j : deps.neighbors(i))
      if (owner.part[i] != owner.part[j]) plan.raw_cross_deps++;

  const CsrGraph reduced = reduce ? transitive_reduce(deps, hops) : deps;

  plan.wait_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  std::map<idx_t, idx_t> waits;  // thread -> max row needed
  for (idx_t i = 0; i < n; ++i) {
    waits.clear();
    for (idx_t j : reduced.neighbors(i)) {
      const idx_t tj = owner.part[j];
      if (tj == owner.part[i]) continue;  // in-order execution covers it
      auto [it, inserted] = waits.emplace(tj, j);
      if (!inserted) it->second = std::max(it->second, j);
    }
    for (auto [t, r] : waits) {
      plan.wait_thread.push_back(t);
      plan.wait_row.push_back(r);
    }
    plan.wait_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<idx_t>(plan.wait_thread.size());
  }
  plan.reduced_cross_deps = plan.wait_thread.size();
  return plan;
}

bool p2p_plan_covers(const CsrGraph& deps, const Partition& owner,
                     const P2PSyncPlan& plan) {
  const idx_t n = deps.num_vertices();
  const idx_t nt = owner.nparts;
  // snapshot[i][t] = highest row of thread t guaranteed complete once
  // owner(i) has finished row i (given in-order execution per thread and the
  // plan's waits, with knowledge propagating through waits).
  std::vector<std::vector<idx_t>> snapshot(
      static_cast<std::size_t>(n),
      std::vector<idx_t>(static_cast<std::size_t>(nt), -1));
  std::vector<idx_t> last_row_of_thread(static_cast<std::size_t>(nt), -1);
  for (idx_t i = 0; i < n; ++i) {
    const idx_t ti = owner.part[i];
    std::vector<idx_t>& know = snapshot[static_cast<std::size_t>(i)];
    // Inherit from this thread's previous row.
    if (last_row_of_thread[ti] >= 0)
      know = snapshot[static_cast<std::size_t>(last_row_of_thread[ti])];
    // Apply waits: learn everything the awaited thread knew at that row.
    for (idx_t w = plan.wait_ptr[i]; w < plan.wait_ptr[i + 1]; ++w) {
      const idx_t r = plan.wait_row[static_cast<std::size_t>(w)];
      const auto& other = snapshot[static_cast<std::size_t>(r)];
      for (idx_t t = 0; t < nt; ++t)
        know[static_cast<std::size_t>(t)] =
            std::max(know[static_cast<std::size_t>(t)],
                     other[static_cast<std::size_t>(t)]);
    }
    // Check all true dependencies are guaranteed.
    for (idx_t j : deps.neighbors(i)) {
      const idx_t tj = owner.part[j];
      if (tj == ti) continue;
      if (know[static_cast<std::size_t>(tj)] < j) return false;
    }
    know[static_cast<std::size_t>(ti)] = i;
    last_row_of_thread[ti] = i;
  }
  return true;
}

}  // namespace fun3d
