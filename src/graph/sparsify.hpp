// Synchronization sparsification for point-to-point triangular solves
// (stand-in for Park, Smelyanskiy & Dubey, ISC'14, cited as [26] in the
// paper): removes redundant dependency edges by approximate transitive
// reduction, then reduces cross-thread waits to one monotone progress check
// per predecessor thread.
#pragma once

#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace fun3d {

/// Approximate transitive edge reduction of a lower-triangular dependency
/// DAG: drops dependency (j -> i) when another retained predecessor k of i
/// already (transitively, checked up to `hops` indirections) depends on j.
/// The reduced DAG admits exactly the same execution orders.
CsrGraph transitive_reduce(const CsrGraph& deps, int hops = 2);

/// Cross-thread synchronization plan for a P2P triangular solve, given row
/// ownership. Threads process their rows in ascending index order and
/// publish a monotone per-thread progress counter; a wait on (thread t, row
/// r) blocks until t's counter passes r. Intra-thread dependencies need no
/// sync; multiple waits on the same predecessor thread collapse to the max.
struct P2PSyncPlan {
  /// For each row: list of (owner_thread, last_row_needed) waits.
  std::vector<idx_t> wait_ptr;      ///< size n+1
  std::vector<idx_t> wait_thread;   ///< owner thread to wait on
  std::vector<idx_t> wait_row;      ///< row index the owner must have passed
  std::uint64_t raw_cross_deps = 0;      ///< cross-thread deps before any reduction
  std::uint64_t reduced_cross_deps = 0;  ///< waits after reduction

  [[nodiscard]] std::size_t num_waits(idx_t row) const {
    return static_cast<std::size_t>(wait_ptr[row + 1] - wait_ptr[row]);
  }
};

/// Builds the sync plan. If `reduce` is true, applies transitive reduction
/// before collapsing waits (the paper's P2P-Sparse); otherwise only the
/// per-thread max collapse is applied.
P2PSyncPlan build_p2p_plan(const CsrGraph& deps, const Partition& owner,
                           bool reduce = true, int hops = 2);

/// Verifies the plan is sufficient: honouring the waits implies every
/// dependency in `deps` is satisfied (assuming in-order execution within a
/// thread). Exhaustive check, O(arcs).
bool p2p_plan_covers(const CsrGraph& deps, const Partition& owner,
                     const P2PSyncPlan& plan);

}  // namespace fun3d
