#include "graph/rcm.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace fun3d {

idx_t bfs_levels(const CsrGraph& g, idx_t root, std::vector<idx_t>& level) {
  const idx_t n = g.num_vertices();
  level.assign(static_cast<std::size_t>(n), -1);
  std::vector<idx_t> frontier{root};
  level[root] = 0;
  idx_t depth = 0;
  std::vector<idx_t> next;
  while (!frontier.empty()) {
    next.clear();
    for (idx_t v : frontier) {
      for (idx_t u : g.neighbors(v)) {
        if (level[u] < 0) {
          level[u] = depth + 1;
          next.push_back(u);
        }
      }
    }
    if (next.empty()) break;
    ++depth;
    frontier.swap(next);
  }
  return depth + 1;
}

idx_t pseudo_peripheral_vertex(const CsrGraph& g, idx_t start) {
  std::vector<idx_t> level;
  idx_t root = start;
  idx_t depth = bfs_levels(g, root, level);
  for (int iter = 0; iter < 16; ++iter) {  // converges in a handful of rounds
    // Find minimum-degree vertex of the deepest level.
    idx_t best = -1;
    for (idx_t v = 0; v < g.num_vertices(); ++v) {
      if (level[v] != depth - 1) continue;
      if (best < 0 || g.degree(v) < g.degree(best)) best = v;
    }
    if (best < 0) break;
    std::vector<idx_t> level2;
    const idx_t depth2 = bfs_levels(g, best, level2);
    if (depth2 <= depth) break;
    root = best;
    depth = depth2;
    level.swap(level2);
  }
  return root;
}

std::vector<idx_t> rcm_permutation(const CsrGraph& g) {
  const idx_t n = g.num_vertices();
  std::vector<idx_t> order;  // order[k] = old vertex visited k-th
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<idx_t> nbuf;

  for (idx_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    const idx_t root = pseudo_peripheral_vertex(g, seed);
    // Cuthill–McKee BFS with neighbours visited in increasing-degree order.
    std::size_t head = order.size();
    order.push_back(root);
    visited[root] = 1;
    while (head < order.size()) {
      const idx_t v = order[head++];
      nbuf.clear();
      for (idx_t u : g.neighbors(v))
        if (!visited[u]) nbuf.push_back(u);
      std::sort(nbuf.begin(), nbuf.end(), [&](idx_t a, idx_t b) {
        return g.degree(a) != g.degree(b) ? g.degree(a) < g.degree(b) : a < b;
      });
      for (idx_t u : nbuf) {
        visited[u] = 1;
        order.push_back(u);
      }
    }
  }
  assert(static_cast<idx_t>(order.size()) == n);
  // Reverse, then convert visit order to permutation perm[old]=new.
  std::vector<idx_t> perm(static_cast<std::size_t>(n));
  for (idx_t k = 0; k < n; ++k)
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] =
        n - 1 - k;
  return perm;
}

}  // namespace fun3d
