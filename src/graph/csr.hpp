// Compressed-sparse-row graph: the common substrate for mesh adjacency,
// Jacobian sparsity, reordering, partitioning and dependency analysis.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fun3d {

using idx_t = std::int32_t;  ///< vertex / row index type (meshes < 2^31)

/// Undirected (symmetric) or directed graph in CSR form.
/// `rowptr.size() == n+1`, neighbours of v are `col[rowptr[v]..rowptr[v+1])`.
struct CsrGraph {
  std::vector<idx_t> rowptr;
  std::vector<idx_t> col;

  [[nodiscard]] idx_t num_vertices() const {
    return rowptr.empty() ? 0 : static_cast<idx_t>(rowptr.size() - 1);
  }
  [[nodiscard]] std::size_t num_arcs() const { return col.size(); }
  [[nodiscard]] std::span<const idx_t> neighbors(idx_t v) const {
    return {col.data() + rowptr[v],
            static_cast<std::size_t>(rowptr[v + 1] - rowptr[v])};
  }
  [[nodiscard]] idx_t degree(idx_t v) const {
    return rowptr[v + 1] - rowptr[v];
  }
};

/// Builds a symmetric CSR adjacency from an undirected edge list.
/// Each edge (a,b) produces arcs a->b and b->a. Duplicate edges are merged.
/// Self loops are dropped. Neighbour lists come out sorted.
CsrGraph build_csr_from_edges(idx_t n,
                              std::span<const std::pair<idx_t, idx_t>> edges);

/// True if the graph is structurally symmetric with sorted, unique,
/// self-loop-free neighbour lists (the invariant most algorithms assume).
bool is_valid_symmetric(const CsrGraph& g);

/// Matrix bandwidth max|i-j| over arcs, and profile sum_i (i - min_j(i)).
struct BandwidthInfo {
  idx_t bandwidth = 0;
  std::uint64_t profile = 0;
};
BandwidthInfo bandwidth_info(const CsrGraph& g);

/// Renumbers graph vertices: new index of old vertex v is perm[v].
/// Returns the renumbered graph (neighbour lists re-sorted).
CsrGraph permute_graph(const CsrGraph& g, std::span<const idx_t> perm);

/// Number of connected components (undirected).
idx_t connected_components(const CsrGraph& g);

/// Inverts a permutation: out[perm[i]] = i.
std::vector<idx_t> invert_permutation(std::span<const idx_t> perm);

/// True if perm is a bijection on [0, n).
bool is_permutation(std::span<const idx_t> perm);

}  // namespace fun3d
