#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <numeric>

namespace fun3d {

CsrGraph build_csr_from_edges(idx_t n,
                              std::span<const std::pair<idx_t, idx_t>> edges) {
  CsrGraph g;
  g.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto [a, b] : edges) {
    if (a == b) continue;
    g.rowptr[static_cast<std::size_t>(a) + 1]++;
    g.rowptr[static_cast<std::size_t>(b) + 1]++;
  }
  for (std::size_t i = 1; i < g.rowptr.size(); ++i)
    g.rowptr[i] += g.rowptr[i - 1];
  g.col.resize(static_cast<std::size_t>(g.rowptr.back()));
  std::vector<idx_t> cursor(g.rowptr.begin(), g.rowptr.end() - 1);
  for (auto [a, b] : edges) {
    if (a == b) continue;
    g.col[static_cast<std::size_t>(cursor[a]++)] = b;
    g.col[static_cast<std::size_t>(cursor[b]++)] = a;
  }
  // Sort + dedup each neighbour list, then compact.
  std::vector<idx_t> new_rowptr(g.rowptr.size(), 0);
  std::size_t w = 0;
  for (idx_t v = 0; v < n; ++v) {
    auto* beg = g.col.data() + g.rowptr[v];
    auto* end = g.col.data() + g.rowptr[v + 1];
    std::sort(beg, end);
    auto* ue = std::unique(beg, end);
    for (auto* p = beg; p != ue; ++p) g.col[w++] = *p;
    new_rowptr[static_cast<std::size_t>(v) + 1] = static_cast<idx_t>(w);
  }
  g.col.resize(w);
  g.rowptr = std::move(new_rowptr);
  return g;
}

bool is_valid_symmetric(const CsrGraph& g) {
  const idx_t n = g.num_vertices();
  for (idx_t v = 0; v < n; ++v) {
    auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const idx_t u = nb[i];
      if (u < 0 || u >= n || u == v) return false;
      if (i > 0 && nb[i - 1] >= u) return false;  // sorted & unique
      auto back = g.neighbors(u);
      if (!std::binary_search(back.begin(), back.end(), v)) return false;
    }
  }
  return true;
}

BandwidthInfo bandwidth_info(const CsrGraph& g) {
  BandwidthInfo info;
  const idx_t n = g.num_vertices();
  for (idx_t v = 0; v < n; ++v) {
    idx_t lo = v;
    for (idx_t u : g.neighbors(v)) {
      info.bandwidth = std::max(info.bandwidth, std::abs(v - u));
      lo = std::min(lo, u);
    }
    info.profile += static_cast<std::uint64_t>(v - lo);
  }
  return info;
}

CsrGraph permute_graph(const CsrGraph& g, std::span<const idx_t> perm) {
  const idx_t n = g.num_vertices();
  assert(static_cast<idx_t>(perm.size()) == n);
  const std::vector<idx_t> inv = invert_permutation(perm);
  CsrGraph out;
  out.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t nv = 0; nv < n; ++nv)
    out.rowptr[static_cast<std::size_t>(nv) + 1] = g.degree(inv[nv]);
  for (std::size_t i = 1; i < out.rowptr.size(); ++i)
    out.rowptr[i] += out.rowptr[i - 1];
  out.col.resize(g.col.size());
  for (idx_t nv = 0; nv < n; ++nv) {
    const idx_t ov = inv[nv];
    idx_t w = out.rowptr[nv];
    for (idx_t u : g.neighbors(ov)) out.col[static_cast<std::size_t>(w++)] = perm[u];
    std::sort(out.col.begin() + out.rowptr[nv],
              out.col.begin() + out.rowptr[nv + 1]);
  }
  return out;
}

idx_t connected_components(const CsrGraph& g) {
  const idx_t n = g.num_vertices();
  std::vector<idx_t> comp(static_cast<std::size_t>(n), -1);
  std::vector<idx_t> stack;
  idx_t ncomp = 0;
  for (idx_t s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = ncomp;
    stack.push_back(s);
    while (!stack.empty()) {
      const idx_t v = stack.back();
      stack.pop_back();
      for (idx_t u : g.neighbors(v)) {
        if (comp[u] < 0) {
          comp[u] = ncomp;
          stack.push_back(u);
        }
      }
    }
    ++ncomp;
  }
  return ncomp;
}

std::vector<idx_t> invert_permutation(std::span<const idx_t> perm) {
  std::vector<idx_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<idx_t>(i);
  return inv;
}

bool is_permutation(std::span<const idx_t> perm) {
  const std::size_t n = perm.size();
  std::vector<char> seen(n, 0);
  for (idx_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= n) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

}  // namespace fun3d
