// Graph partitioning: the METIS stand-in used for thread-level domain
// decomposition of edge loops (paper §V-A "METIS based partitioning") and for
// multi-node rank decomposition in the cluster simulator.
//
// Single-level BFS-grow greedy partitioning followed by boundary
// Fiduccia–Mattheyses refinement. Quality goal (matching the paper's use of
// METIS): balanced vertex counts and low edge cut, so that per-thread
// replicated (cut) edges drop from ~40% (natural-order split) to a few %.
#pragma once

#include <span>

#include "graph/csr.hpp"

namespace fun3d {

/// part[v] in [0, nparts).
struct Partition {
  std::vector<idx_t> part;
  idx_t nparts = 0;
};

/// Contiguous equal-count blocks in natural vertex order
/// (paper's "Basic partitioning").
Partition partition_natural(idx_t n, idx_t nparts);

struct PartitionOptions {
  int refine_passes = 4;        ///< FM boundary passes (0 disables)
  double balance_tol = 1.03;    ///< max part weight / average
  unsigned seed = 12345;        ///< seed-vertex selection
};

/// BFS-grow + FM-refined k-way partition. `vweight` (optional, size n)
/// weights vertices by work; empty means unit weights.
Partition partition_graph(const CsrGraph& g, idx_t nparts,
                          std::span<const idx_t> vweight = {},
                          const PartitionOptions& opt = {});

/// Number of edges (unordered pairs) crossing parts.
std::uint64_t edge_cut(const CsrGraph& g, const Partition& p);

/// Total vertex weight per part (unit weights if vweight empty).
std::vector<std::uint64_t> part_weights(const Partition& p,
                                        std::span<const idx_t> vweight = {});

/// Load imbalance of part weights: max/mean (1.0 = perfect).
double partition_imbalance(const Partition& p,
                           std::span<const idx_t> vweight = {});

}  // namespace fun3d
