#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>

namespace fun3d {

Coloring greedy_coloring(const CsrGraph& g, std::span<const idx_t> order) {
  const idx_t n = g.num_vertices();
  Coloring c;
  c.color.assign(static_cast<std::size_t>(n), -1);
  std::vector<idx_t> forbidden(static_cast<std::size_t>(n), -1);
  auto color_vertex = [&](idx_t v) {
    for (idx_t u : g.neighbors(v))
      if (c.color[u] >= 0) forbidden[static_cast<std::size_t>(c.color[u])] = v;
    idx_t col = 0;
    while (forbidden[static_cast<std::size_t>(col)] == v) ++col;
    c.color[v] = col;
    c.ncolors = std::max(c.ncolors, col + 1);
  };
  if (order.empty()) {
    for (idx_t v = 0; v < n; ++v) color_vertex(v);
  } else {
    for (idx_t v : order) color_vertex(v);
  }
  return c;
}

std::vector<idx_t> degree_descending_order(const CsrGraph& g) {
  const idx_t n = g.num_vertices();
  std::vector<idx_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
    return g.degree(a) > g.degree(b);
  });
  return order;
}

bool is_valid_coloring(const CsrGraph& g, const Coloring& c) {
  const idx_t n = g.num_vertices();
  for (idx_t v = 0; v < n; ++v) {
    if (c.color[v] < 0 || c.color[v] >= c.ncolors) return false;
    for (idx_t u : g.neighbors(v))
      if (c.color[u] == c.color[v]) return false;
  }
  return true;
}

CsrGraph edge_conflict_graph(idx_t num_mesh_vertices,
                             std::span<const std::pair<idx_t, idx_t>> edges) {
  // vertex -> incident mesh-edges
  std::vector<std::vector<idx_t>> incident(
      static_cast<std::size_t>(num_mesh_vertices));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    incident[static_cast<std::size_t>(edges[e].first)].push_back(
        static_cast<idx_t>(e));
    incident[static_cast<std::size_t>(edges[e].second)].push_back(
        static_cast<idx_t>(e));
  }
  std::vector<std::pair<idx_t, idx_t>> conflicts;
  for (const auto& inc : incident)
    for (std::size_t i = 0; i < inc.size(); ++i)
      for (std::size_t j = i + 1; j < inc.size(); ++j)
        conflicts.emplace_back(inc[i], inc[j]);
  return build_csr_from_edges(static_cast<idx_t>(edges.size()), conflicts);
}

}  // namespace fun3d
