// Reverse Cuthill–McKee vertex reordering (paper §V-A: "The vertex numbering
// is reordered using Reverse Cuthill-McKee to improve locality").
#pragma once

#include "graph/csr.hpp"

namespace fun3d {

/// BFS level structure from `root`: level[v] = distance, -1 if unreachable.
/// Returns the number of levels (eccentricity + 1 of the component).
idx_t bfs_levels(const CsrGraph& g, idx_t root, std::vector<idx_t>& level);

/// Pseudo-peripheral vertex via the George–Liu iteration: repeatedly BFS and
/// jump to a minimum-degree vertex of the deepest level until the
/// eccentricity stops growing.
idx_t pseudo_peripheral_vertex(const CsrGraph& g, idx_t start);

/// Reverse Cuthill–McKee permutation: perm[old] = new.
/// Handles disconnected graphs (each component seeded at a pseudo-peripheral
/// vertex of minimum degree).
std::vector<idx_t> rcm_permutation(const CsrGraph& g);

}  // namespace fun3d
