// Greedy graph colouring. The paper notes edge loops have "colour-wise
// concurrency" but rejects colouring for locality reasons; we implement it
// anyway as the comparison baseline and for correctness-checking concurrent
// edge schedules.
#pragma once

#include "graph/csr.hpp"

namespace fun3d {

struct Coloring {
  std::vector<idx_t> color;  ///< color[v] in [0, ncolors)
  idx_t ncolors = 0;
};

/// Greedy colouring in the given vertex order (empty = natural order).
/// No two adjacent vertices share a colour.
Coloring greedy_coloring(const CsrGraph& g,
                         std::span<const idx_t> order = {});

/// Largest-degree-first ordering, usually fewer colours than natural order.
std::vector<idx_t> degree_descending_order(const CsrGraph& g);

/// Validates that no arc connects same-coloured vertices.
bool is_valid_coloring(const CsrGraph& g, const Coloring& c);

/// Builds the "edge conflict graph" for an edge list: vertices are edges of
/// the mesh, arcs connect mesh-edges sharing a mesh-vertex. Colouring this
/// yields conflict-free batches of mesh edges.
CsrGraph edge_conflict_graph(idx_t num_mesh_vertices,
                             std::span<const std::pair<idx_t, idx_t>> edges);

}  // namespace fun3d
