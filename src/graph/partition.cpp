#include "graph/partition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "util/rng.hpp"

namespace fun3d {
namespace {

std::uint64_t weight_of(std::span<const idx_t> vweight, idx_t v) {
  return vweight.empty() ? 1u : static_cast<std::uint64_t>(vweight[v]);
}

/// One FM-style boundary refinement pass: moves boundary vertices to the
/// neighbouring part with the highest gain if balance permits. Returns the
/// number of moves made.
std::size_t fm_pass(const CsrGraph& g, Partition& p,
                    std::span<const idx_t> vweight,
                    std::vector<std::uint64_t>& pw, double max_weight) {
  const idx_t n = g.num_vertices();
  std::size_t moves = 0;
  std::vector<idx_t> cnt(static_cast<std::size_t>(p.nparts), 0);
  std::vector<idx_t> touched;
  for (idx_t v = 0; v < n; ++v) {
    const idx_t from = p.part[v];
    // Count neighbour parts.
    touched.clear();
    for (idx_t u : g.neighbors(v)) {
      const idx_t q = p.part[u];
      if (cnt[q] == 0) touched.push_back(q);
      cnt[q]++;
    }
    idx_t best_part = from;
    idx_t best_gain = 0;
    for (idx_t q : touched) {
      if (q == from) continue;
      const idx_t gain = cnt[q] - cnt[from];  // cut-edge reduction
      if (gain > best_gain) {
        const std::uint64_t w = weight_of(vweight, v);
        if (static_cast<double>(pw[q] + w) <= max_weight) {
          best_gain = gain;
          best_part = q;
        }
      }
    }
    for (idx_t q : touched) cnt[q] = 0;
    if (best_part != from) {
      const std::uint64_t w = weight_of(vweight, v);
      pw[from] -= w;
      pw[best_part] += w;
      p.part[v] = best_part;
      ++moves;
    }
  }
  return moves;
}

}  // namespace

Partition partition_natural(idx_t n, idx_t nparts) {
  Partition p;
  p.nparts = nparts;
  p.part.resize(static_cast<std::size_t>(n));
  // Even contiguous blocks with the remainder spread over the first parts.
  const idx_t base = n / nparts, rem = n % nparts;
  idx_t v = 0;
  for (idx_t q = 0; q < nparts; ++q) {
    const idx_t count = base + (q < rem ? 1 : 0);
    for (idx_t i = 0; i < count; ++i) p.part[v++] = q;
  }
  return p;
}

Partition partition_graph(const CsrGraph& g, idx_t nparts,
                          std::span<const idx_t> vweight,
                          const PartitionOptions& opt) {
  const idx_t n = g.num_vertices();
  Partition p;
  p.nparts = nparts;
  p.part.assign(static_cast<std::size_t>(n), -1);
  if (nparts <= 1) {
    std::fill(p.part.begin(), p.part.end(), 0);
    p.nparts = std::max<idx_t>(nparts, 1);
    return p;
  }

  std::uint64_t total_w = 0;
  for (idx_t v = 0; v < n; ++v) total_w += weight_of(vweight, v);
  const double target = static_cast<double>(total_w) / nparts;

  // BFS-grow: each part grows from a seed until it reaches its target
  // weight, preferring frontier vertices with many neighbours already in
  // the part (reduces cut).
  Rng rng(opt.seed);
  std::vector<std::uint64_t> pw(static_cast<std::size_t>(nparts), 0);
  idx_t next_unassigned = 0;
  for (idx_t q = 0; q < nparts; ++q) {
    // Seed: first unassigned vertex (natural order keeps parts roughly
    // spatially coherent after RCM).
    while (next_unassigned < n && p.part[next_unassigned] >= 0)
      ++next_unassigned;
    if (next_unassigned >= n) break;
    std::vector<idx_t> frontier{next_unassigned};
    p.part[next_unassigned] = q;
    pw[q] += weight_of(vweight, next_unassigned);
    std::size_t cursor = 0;
    while (static_cast<double>(pw[q]) < target && cursor < frontier.size()) {
      const idx_t v = frontier[cursor++];
      for (idx_t u : g.neighbors(v)) {
        if (p.part[u] >= 0) continue;
        if (static_cast<double>(pw[q]) >= target) break;
        p.part[u] = q;
        pw[q] += weight_of(vweight, u);
        frontier.push_back(u);
      }
    }
  }
  // Any vertices left (disconnected leftovers): assign to lightest part.
  for (idx_t v = 0; v < n; ++v) {
    if (p.part[v] >= 0) continue;
    const idx_t q = static_cast<idx_t>(
        std::min_element(pw.begin(), pw.end()) - pw.begin());
    p.part[v] = q;
    pw[q] += weight_of(vweight, v);
  }

  const double max_weight = target * opt.balance_tol;
  for (int pass = 0; pass < opt.refine_passes; ++pass) {
    if (fm_pass(g, p, vweight, pw, max_weight) == 0) break;
  }
  return p;
}

std::uint64_t edge_cut(const CsrGraph& g, const Partition& p) {
  std::uint64_t cut = 0;
  const idx_t n = g.num_vertices();
  for (idx_t v = 0; v < n; ++v)
    for (idx_t u : g.neighbors(v))
      if (u > v && p.part[u] != p.part[v]) ++cut;
  return cut;
}

std::vector<std::uint64_t> part_weights(const Partition& p,
                                        std::span<const idx_t> vweight) {
  std::vector<std::uint64_t> pw(static_cast<std::size_t>(p.nparts), 0);
  for (std::size_t v = 0; v < p.part.size(); ++v)
    pw[static_cast<std::size_t>(p.part[v])] +=
        weight_of(vweight, static_cast<idx_t>(v));
  return pw;
}

double partition_imbalance(const Partition& p,
                           std::span<const idx_t> vweight) {
  const auto pw = part_weights(p, vweight);
  std::uint64_t mx = 0, sum = 0;
  for (auto w : pw) {
    mx = std::max(mx, w);
    sum += w;
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(mx) * pw.size() / static_cast<double>(sum);
}

}  // namespace fun3d
