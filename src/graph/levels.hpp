// Level scheduling of sparse triangular dependency DAGs (Anderson & Saad),
// and the paper's "available parallelism" metric (total flops / flops along
// the longest dependency path) used in Table II.
//
// A dependency structure is a CSR "graph" where neighbors(i) lists the
// predecessor rows of row i (all < i for a lower-triangular solve).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace fun3d {

/// Rows grouped by wavefront level; rows within a level are independent.
struct LevelSchedule {
  std::vector<idx_t> level_ptr;  ///< size nlevels+1
  std::vector<idx_t> rows;       ///< rows in level order (ascending in level)
  idx_t nlevels = 0;

  [[nodiscard]] std::span<const idx_t> level(idx_t l) const {
    return {rows.data() + level_ptr[l],
            static_cast<std::size_t>(level_ptr[l + 1] - level_ptr[l])};
  }
};

/// level(i) = 1 + max level over predecessors (entries have level 0).
/// `deps` must be acyclic with all predecessors preceding their row when
/// processed in index order (true for triangular factors).
std::vector<idx_t> compute_levels(const CsrGraph& deps);

LevelSchedule build_level_schedule(const CsrGraph& deps);

/// Validates: every row appears once; each row's level exceeds all its
/// predecessors' levels.
bool is_valid_level_schedule(const CsrGraph& deps, const LevelSchedule& s);

/// Paper §III-B parallelism metric. `row_cost[i]` is the flop count of row i
/// (empty = use 1 + #predecessors, proportional to the row inner product).
/// Returns total_cost / max over rows of (cost along longest path ending at
/// the row).
double dag_parallelism(const CsrGraph& deps,
                       std::span<const double> row_cost = {});

/// Critical path cost (denominator of dag_parallelism).
double dag_critical_path(const CsrGraph& deps,
                         std::span<const double> row_cost = {});

}  // namespace fun3d
