#include "graph/levels.hpp"

#include <algorithm>
#include <cassert>

namespace fun3d {

std::vector<idx_t> compute_levels(const CsrGraph& deps) {
  const idx_t n = deps.num_vertices();
  std::vector<idx_t> level(static_cast<std::size_t>(n), 0);
  for (idx_t i = 0; i < n; ++i) {
    idx_t lv = 0;
    for (idx_t j : deps.neighbors(i)) {
      assert(j < i && "dependency structure must be lower triangular");
      lv = std::max(lv, level[j] + 1);
    }
    level[i] = lv;
  }
  return level;
}

LevelSchedule build_level_schedule(const CsrGraph& deps) {
  const idx_t n = deps.num_vertices();
  const std::vector<idx_t> level = compute_levels(deps);
  LevelSchedule s;
  s.nlevels = 0;
  for (idx_t l : level) s.nlevels = std::max(s.nlevels, l + 1);
  s.level_ptr.assign(static_cast<std::size_t>(s.nlevels) + 1, 0);
  for (idx_t l : level) s.level_ptr[static_cast<std::size_t>(l) + 1]++;
  for (std::size_t i = 1; i < s.level_ptr.size(); ++i)
    s.level_ptr[i] += s.level_ptr[i - 1];
  s.rows.resize(static_cast<std::size_t>(n));
  std::vector<idx_t> cursor(s.level_ptr.begin(), s.level_ptr.end() - 1);
  for (idx_t i = 0; i < n; ++i)
    s.rows[static_cast<std::size_t>(cursor[level[i]]++)] = i;
  return s;
}

bool is_valid_level_schedule(const CsrGraph& deps, const LevelSchedule& s) {
  const idx_t n = deps.num_vertices();
  if (static_cast<idx_t>(s.rows.size()) != n) return false;
  std::vector<idx_t> level_of(static_cast<std::size_t>(n), -1);
  for (idx_t l = 0; l < s.nlevels; ++l)
    for (idx_t r : s.level(l)) {
      if (level_of[r] != -1) return false;  // duplicate
      level_of[r] = l;
    }
  for (idx_t i = 0; i < n; ++i) {
    if (level_of[i] < 0) return false;  // missing
    for (idx_t j : deps.neighbors(i))
      if (level_of[j] >= level_of[i]) return false;
  }
  return true;
}

double dag_critical_path(const CsrGraph& deps,
                         std::span<const double> row_cost) {
  const idx_t n = deps.num_vertices();
  auto cost = [&](idx_t i) {
    return row_cost.empty() ? 1.0 + static_cast<double>(deps.degree(i))
                            : row_cost[i];
  };
  std::vector<double> path(static_cast<std::size_t>(n), 0.0);
  double longest = 0;
  for (idx_t i = 0; i < n; ++i) {
    double p = 0;
    for (idx_t j : deps.neighbors(i)) p = std::max(p, path[j]);
    path[i] = p + cost(i);
    longest = std::max(longest, path[i]);
  }
  return longest;
}

double dag_parallelism(const CsrGraph& deps,
                       std::span<const double> row_cost) {
  const idx_t n = deps.num_vertices();
  auto cost = [&](idx_t i) {
    return row_cost.empty() ? 1.0 + static_cast<double>(deps.degree(i))
                            : row_cost[i];
  };
  double total = 0;
  for (idx_t i = 0; i < n; ++i) total += cost(i);
  const double cp = dag_critical_path(deps, row_cost);
  return cp > 0 ? total / cp : 1.0;
}

}  // namespace fun3d
