// Synthetic unstructured-mesh generator.
//
// Substitution for the paper's ONERA M6 wing meshes (not public): a 3D
// channel with a swept, tapered wing-like bump on the bottom (slip) wall,
// tetrahedralized by Kuhn subdivision of a graded structured grid. The
// numbering is deliberately scrambled downstream (see reorder.hpp) so the
// mesh exhibits the irregular-access behaviour of a real unstructured mesh;
// topological statistics (degree ~14, edges ~ 6.7x vertices) match the
// paper's meshes. Presets reproduce Mesh-C / Mesh-D sizes at a given scale.
#pragma once

#include "mesh/mesh.hpp"

namespace fun3d {

struct WingBumpParams {
  // Cell counts per direction (vertices are +1).
  idx_t nx = 16, ny = 12, nz = 12;
  // Physical extents. Flow is along +x, span along y, wall at z=0.
  double lx = 4.0, ly = 2.0, lz = 2.0;
  // Wing-like bump on the bottom wall.
  double bump_height = 0.12;   ///< max bump height (fraction of lz applied)
  double root_chord = 1.2;     ///< chord at y=0
  double taper = 0.4;          ///< tip chord = (1-taper) * root chord
  double sweep_tan = 0.35;     ///< tan(leading-edge sweep angle)
  double span = 1.2;           ///< bump vanishes for y > span
  double x_le0 = 1.0;          ///< leading edge x at root
  // Vertical grading toward the wall (tanh clustering strength; 0 = uniform).
  double grading = 1.6;
};

/// Channel-with-wing-bump mesh. Bottom wall (z side at w=0) is kSlipWall,
/// all other boundaries kFarField. Dual metrics are built.
TetMesh generate_wing_bump(const WingBumpParams& p);

/// Plain box [0,lx]x[0,ly]x[0,lz], all boundaries kFarField; for unit tests.
TetMesh generate_box(idx_t nx, idx_t ny, idx_t nz, double lx = 1.0,
                     double ly = 1.0, double lz = 1.0);

/// Named sizes mirroring the paper's datasets. `scale` divides each linear
/// cell count (scale=4 => ~1/64 of the vertices), so benches stay tractable
/// on small machines while preserving all topological statistics.
enum class MeshPreset { kTiny, kSmall, kMeshC, kMeshD };
WingBumpParams preset_params(MeshPreset preset, double scale = 1.0);
const char* preset_name(MeshPreset preset);

/// All boundary triangles (faces owned by exactly one tet), wound outward.
std::vector<std::array<idx_t, 3>> find_boundary_triangles(const TetMesh& m);

}  // namespace fun3d
