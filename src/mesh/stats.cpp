#include "mesh/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace fun3d {

MeshStats compute_mesh_stats(const TetMesh& m) {
  MeshStats s;
  s.vertices = m.num_vertices;
  s.edges = m.edges.size();
  s.tets = m.tets.size();
  s.boundary_faces = m.bfaces.size();
  s.edges_per_vertex =
      s.vertices ? static_cast<double>(s.edges) / s.vertices : 0.0;
  std::vector<double> degree(static_cast<std::size_t>(m.num_vertices), 0.0);
  for (const auto& [a, b] : m.edges) {
    degree[static_cast<std::size_t>(a)] += 1;
    degree[static_cast<std::size_t>(b)] += 1;
  }
  s.degree = summarize(degree);
  s.min_tet_volume = m.tets.empty() ? 0.0 : 1e300;
  for (const auto& t : m.tets) {
    const double v = tet_volume(m, t);
    s.total_volume += v;
    s.min_tet_volume = std::min(s.min_tet_volume, v);
  }
  s.graph_bandwidth = bandwidth_info(m.vertex_graph()).bandwidth;
  return s;
}

std::string format_mesh_stats(const MeshStats& s, const std::string& name) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%s: %d vertices, %llu edges (%.2f per vertex), %llu tets, "
                "%llu boundary faces, degree avg %.1f max %.0f, "
                "bandwidth %d, volume %.4g (min tet %.3g)",
                name.c_str(), s.vertices,
                static_cast<unsigned long long>(s.edges), s.edges_per_vertex,
                static_cast<unsigned long long>(s.tets),
                static_cast<unsigned long long>(s.boundary_faces),
                s.degree.mean, s.degree.max, s.graph_bandwidth,
                s.total_volume, s.min_tet_volume);
  return buf;
}

}  // namespace fun3d
