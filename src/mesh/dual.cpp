#include "mesh/dual.hpp"

#include <cmath>

namespace fun3d {

double dual_closure_error(const TetMesh& m) {
  const std::size_t nv = static_cast<std::size_t>(m.num_vertices);
  std::vector<double> sx(nv, 0.0), sy(nv, 0.0), sz(nv, 0.0);
  for (std::size_t e = 0; e < m.edges.size(); ++e) {
    const auto [a, b] = m.edges[e];
    // Normal points a -> b: outward for a, inward for b.
    sx[static_cast<std::size_t>(a)] += m.dual_nx[e];
    sy[static_cast<std::size_t>(a)] += m.dual_ny[e];
    sz[static_cast<std::size_t>(a)] += m.dual_nz[e];
    sx[static_cast<std::size_t>(b)] -= m.dual_nx[e];
    sy[static_cast<std::size_t>(b)] -= m.dual_ny[e];
    sz[static_cast<std::size_t>(b)] -= m.dual_nz[e];
  }
  for (std::size_t f = 0; f < m.bfaces.size(); ++f) {
    for (idx_t v : m.bfaces[f].v) {
      sx[static_cast<std::size_t>(v)] += m.bface_nx[f] / 3.0;
      sy[static_cast<std::size_t>(v)] += m.bface_ny[f] / 3.0;
      sz[static_cast<std::size_t>(v)] += m.bface_nz[f] / 3.0;
    }
  }
  double worst = 0.0;
  for (std::size_t v = 0; v < nv; ++v) {
    const double mag = std::sqrt(sx[v] * sx[v] + sy[v] * sy[v] + sz[v] * sz[v]);
    worst = std::max(worst, mag);
  }
  return worst;
}

double surface_closure_error(const TetMesh& m) {
  double sx = 0, sy = 0, sz = 0;
  for (std::size_t f = 0; f < m.bfaces.size(); ++f) {
    sx += m.bface_nx[f];
    sy += m.bface_ny[f];
    sz += m.bface_nz[f];
  }
  return std::sqrt(sx * sx + sy * sy + sz * sz);
}

double volume_consistency_error(const TetMesh& m) {
  double vt = 0, vd = 0;
  for (const auto& t : m.tets) vt += tet_volume(m, t);
  for (double v : m.dual_vol) vd += v;
  return std::abs(vt - vd) / std::max(vt, 1e-300);
}

}  // namespace fun3d
