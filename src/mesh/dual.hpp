// Verification utilities for the median-dual metrics: discrete conservation
// identities that the finite-volume scheme relies on. Used by tests and by
// mesh generation sanity checks.
#pragma once

#include "mesh/mesh.hpp"

namespace fun3d {

/// Max over vertices of |sum of outward dual-face area vectors + 1/3 of the
/// incident boundary-face area vectors|. Zero (to roundoff) for a valid
/// median-dual closure — this is what makes the FV scheme conservative.
double dual_closure_error(const TetMesh& m);

/// |sum of all boundary face area vectors| — zero for a watertight boundary.
double surface_closure_error(const TetMesh& m);

/// Relative difference between sum of dual volumes and sum of tet volumes.
double volume_consistency_error(const TetMesh& m);

}  // namespace fun3d
