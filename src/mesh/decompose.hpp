// Domain decomposition of a mesh into subdomains: drives thread-level
// ownership of edge loops, block-Jacobi/additive-Schwarz preconditioning,
// and the multi-node cluster simulator's halo-exchange volumes.
#pragma once

#include "graph/partition.hpp"
#include "mesh/mesh.hpp"

namespace fun3d {

struct Subdomain {
  idx_t owner = 0;
  idx_t row_begin = 0;  ///< first owned vertex (contiguous after renumber)
  idx_t row_end = 0;    ///< one past last owned vertex
  idx_t num_ghosts = 0; ///< off-part vertices referenced by owned edges
  std::uint64_t interior_edges = 0;  ///< both endpoints owned
  std::uint64_t cut_edges = 0;       ///< one endpoint owned

  [[nodiscard]] idx_t num_owned() const { return row_end - row_begin; }
};

/// Decomposition with subdomain-contiguous vertex numbering.
struct Decomposition {
  Partition part;                 ///< in the *new* numbering
  std::vector<idx_t> perm;        ///< old -> new vertex id
  std::vector<Subdomain> subs;

  [[nodiscard]] idx_t nparts() const { return part.nparts; }
  /// Total halo (ghost) vertices across parts — proportional to point-to-
  /// point communication volume per halo exchange.
  [[nodiscard]] std::uint64_t total_ghosts() const;
  /// Total cut edges (each induces replicated flux work or messages).
  [[nodiscard]] std::uint64_t total_cut_edges() const;
};

/// Partitions mesh vertices (graph partitioner if `use_graph_partitioner`,
/// else natural-order blocks), renumbers vertices so each part is
/// contiguous (stable within a part), applies the renumbering to the mesh,
/// and gathers per-subdomain statistics.
Decomposition decompose(TetMesh& m, idx_t nparts, bool use_graph_partitioner,
                        const PartitionOptions& opt = {});

}  // namespace fun3d
