#include "mesh/generate.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

namespace fun3d {
namespace {

// Kuhn subdivision: 6 tets per cube, one per permutation of the axes, all
// sharing the main diagonal 000 -> 111. Conforming across translated cubes.
constexpr int kAxisPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                  {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};

struct GridIndexer {
  idx_t nx, ny, nz;  // cell counts
  [[nodiscard]] idx_t vid(idx_t i, idx_t j, idx_t k) const {
    return (k * (ny + 1) + j) * (nx + 1) + i;
  }
  [[nodiscard]] idx_t num_vertices() const {
    return (nx + 1) * (ny + 1) * (nz + 1);
  }
};

void add_cube_tets(TetMesh& m, const GridIndexer& g, idx_t i, idx_t j,
                   idx_t k) {
  for (const auto& perm : kAxisPerms) {
    std::array<idx_t, 4> tet;
    idx_t d[3] = {0, 0, 0};
    tet[0] = g.vid(i, j, k);
    for (int s = 0; s < 3; ++s) {
      d[perm[s]] = 1;
      tet[static_cast<std::size_t>(s) + 1] =
          g.vid(i + d[0], j + d[1], k + d[2]);
    }
    if (tet_volume(m, tet) < 0) std::swap(tet[2], tet[3]);
    m.tets.push_back(tet);
  }
}

double bump_height_at(const WingBumpParams& p, double x, double y) {
  if (y > p.span) return 0.0;
  const double span_frac = y / p.span;
  const double chord = p.root_chord * (1.0 - p.taper * span_frac);
  const double x_le = p.x_le0 + p.sweep_tan * y;
  const double xi = (x - x_le) / chord;
  if (xi <= 0.0 || xi >= 1.0) return 0.0;
  const double profile = 4.0 * xi * (1.0 - xi);           // parabolic arc
  const double span_falloff = 1.0 - span_frac * span_frac; // smooth tip
  return p.bump_height * profile * span_falloff;
}

TetMesh generate_structured(const WingBumpParams& p, bool with_bump) {
  if (p.nx < 1 || p.ny < 1 || p.nz < 1)
    throw std::invalid_argument("generate: cell counts must be >= 1");
  TetMesh m;
  const GridIndexer g{p.nx, p.ny, p.nz};
  m.num_vertices = g.num_vertices();
  m.x.resize(static_cast<std::size_t>(m.num_vertices));
  m.y.resize(static_cast<std::size_t>(m.num_vertices));
  m.z.resize(static_cast<std::size_t>(m.num_vertices));
  for (idx_t k = 0; k <= p.nz; ++k) {
    double w = static_cast<double>(k) / p.nz;
    if (p.grading > 0)  // cluster points toward the wall at w=0
      w = std::tanh(p.grading * w) / std::tanh(p.grading);
    for (idx_t j = 0; j <= p.ny; ++j) {
      const double y = p.ly * static_cast<double>(j) / p.ny;
      for (idx_t i = 0; i <= p.nx; ++i) {
        const double x = p.lx * static_cast<double>(i) / p.nx;
        const double zb = with_bump ? bump_height_at(p, x, y) : 0.0;
        const std::size_t v = static_cast<std::size_t>(g.vid(i, j, k));
        m.x[v] = x;
        m.y[v] = y;
        m.z[v] = zb + (p.lz - zb) * w;
      }
    }
  }
  m.tets.reserve(static_cast<std::size_t>(p.nx) * p.ny * p.nz * 6);
  for (idx_t k = 0; k < p.nz; ++k)
    for (idx_t j = 0; j < p.ny; ++j)
      for (idx_t i = 0; i < p.nx; ++i) add_cube_tets(m, g, i, j, k);

  // Boundary faces: bottom wall (z ~ wall) is slip, the rest far-field.
  const auto tris = find_boundary_triangles(m);
  m.bfaces.reserve(tris.size());
  auto on_bottom = [&](idx_t v) {
    // Vertices at grid level k=0 have vid < (nx+1)*(ny+1).
    return v < (p.nx + 1) * (p.ny + 1);
  };
  for (const auto& t : tris) {
    const bool bottom =
        with_bump && on_bottom(t[0]) && on_bottom(t[1]) && on_bottom(t[2]);
    m.bfaces.push_back({t, bottom ? BcTag::kSlipWall : BcTag::kFarField});
  }
  build_dual_metrics(m);
  return m;
}

}  // namespace

TetMesh generate_wing_bump(const WingBumpParams& p) {
  return generate_structured(p, /*with_bump=*/true);
}

TetMesh generate_box(idx_t nx, idx_t ny, idx_t nz, double lx, double ly,
                     double lz) {
  WingBumpParams p;
  p.nx = nx;
  p.ny = ny;
  p.nz = nz;
  p.lx = lx;
  p.ly = ly;
  p.lz = lz;
  p.grading = 0.0;
  return generate_structured(p, /*with_bump=*/false);
}

WingBumpParams preset_params(MeshPreset preset, double scale) {
  WingBumpParams p;
  auto set_dims = [&](double nx, double ny, double nz) {
    p.nx = std::max<idx_t>(2, static_cast<idx_t>(std::lround(nx / scale)));
    p.ny = std::max<idx_t>(2, static_cast<idx_t>(std::lround(ny / scale)));
    p.nz = std::max<idx_t>(2, static_cast<idx_t>(std::lround(nz / scale)));
  };
  switch (preset) {
    case MeshPreset::kTiny:
      set_dims(6, 4, 4);
      break;
    case MeshPreset::kSmall:
      set_dims(16, 12, 12);
      break;
    case MeshPreset::kMeshC:
      // Full scale: 89*73*56 = 363,832 vertices (paper Mesh-C: 357,900).
      set_dims(88, 72, 55);
      break;
    case MeshPreset::kMeshD:
      // Full scale: 177*145*109 = 2,797,485 vertices (paper: 2,761,774).
      set_dims(176, 144, 108);
      break;
  }
  return p;
}

const char* preset_name(MeshPreset preset) {
  switch (preset) {
    case MeshPreset::kTiny: return "Tiny";
    case MeshPreset::kSmall: return "Small";
    case MeshPreset::kMeshC: return "Mesh-C";
    case MeshPreset::kMeshD: return "Mesh-D";
  }
  return "?";
}

std::vector<std::array<idx_t, 3>> find_boundary_triangles(const TetMesh& m) {
  // Outward-wound faces of a positively oriented tet (a,b,c,d).
  static constexpr int kFaces[4][3] = {
      {1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}};
  struct FaceRec {
    std::array<idx_t, 3> sorted;
    std::array<idx_t, 3> wound;
  };
  std::vector<FaceRec> faces;
  faces.reserve(m.tets.size() * 4);
  for (const auto& t : m.tets) {
    for (const auto& f : kFaces) {
      FaceRec r;
      r.wound = {t[static_cast<std::size_t>(f[0])],
                 t[static_cast<std::size_t>(f[1])],
                 t[static_cast<std::size_t>(f[2])]};
      r.sorted = r.wound;
      std::sort(r.sorted.begin(), r.sorted.end());
      faces.push_back(r);
    }
  }
  std::sort(faces.begin(), faces.end(),
            [](const FaceRec& a, const FaceRec& b) { return a.sorted < b.sorted; });
  std::vector<std::array<idx_t, 3>> out;
  for (std::size_t i = 0; i < faces.size();) {
    std::size_t j = i;
    while (j < faces.size() && faces[j].sorted == faces[i].sorted) ++j;
    if (j - i == 1) out.push_back(faces[i].wound);  // unshared => boundary
    i = j;
  }
  return out;
}

}  // namespace fun3d
