// Vertex-centered unstructured tetrahedral mesh with median-dual metrics —
// the FUN3D-style discretization substrate (paper §II-A).
//
// The flow solver works on the *dual* mesh: one control volume per vertex,
// bounded by faces that bisect the edges. All flux computation is edge-based:
// each unique vertex pair (edge) carries a directed dual-face area vector.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/aligned.hpp"

namespace fun3d {

/// Boundary condition tags assigned to boundary triangles.
enum class BcTag : std::uint8_t {
  kFarField = 0,  ///< characteristic far-field (free stream)
  kSlipWall = 1,  ///< inviscid wall: no normal flow
};

/// A boundary triangle (vertices CCW as seen from outside the domain).
struct BoundaryFace {
  std::array<idx_t, 3> v;
  BcTag tag;
};

struct TetMesh {
  // --- primal mesh -------------------------------------------------------
  idx_t num_vertices = 0;
  AVec<double> x, y, z;                    ///< vertex coordinates (SoA)
  std::vector<std::array<idx_t, 4>> tets;  ///< positive-volume tetrahedra
  std::vector<BoundaryFace> bfaces;

  // --- derived edge/dual data (built by build_dual_metrics) --------------
  /// Unique edges with v0 < v1 ("vertices at one end sorted increasing").
  std::vector<std::pair<idx_t, idx_t>> edges;
  /// Directed median-dual face area vector per edge, oriented v0 -> v1 (SoA).
  AVec<double> dual_nx, dual_ny, dual_nz;
  /// Median-dual control volume per vertex (vol(T)/4 per incident tet).
  AVec<double> dual_vol;
  /// Outward area vector per boundary face (|.| = face area).
  AVec<double> bface_nx, bface_ny, bface_nz;

  [[nodiscard]] std::size_t num_edges() const { return edges.size(); }
  [[nodiscard]] std::size_t num_tets() const { return tets.size(); }

  /// Vertex adjacency graph over edges (the Jacobian sparsity off-diagonals).
  [[nodiscard]] CsrGraph vertex_graph() const;
};

/// Extracts the unique edge list (v0<v1, lexicographically sorted) from the
/// tetrahedra. Called by build_dual_metrics; exposed for tests.
std::vector<std::pair<idx_t, idx_t>> extract_edges(const TetMesh& m);

/// Fills edges, dual face normals, dual volumes, and boundary face normals.
/// Requires tets and bfaces to be set. Signed tet volumes must be positive.
void build_dual_metrics(TetMesh& m);

/// Signed volume of tet (a,b,c,d) = det[b-a, c-a, d-a] / 6.
double tet_volume(const TetMesh& m, const std::array<idx_t, 4>& t);

}  // namespace fun3d
