#include "mesh/reorder.hpp"

#include <cassert>
#include <numeric>

#include "graph/rcm.hpp"
#include "util/rng.hpp"

namespace fun3d {

void apply_vertex_permutation(TetMesh& m, std::span<const idx_t> perm) {
  assert(is_permutation(perm));
  const std::size_t nv = static_cast<std::size_t>(m.num_vertices);
  AVec<double> nx(nv), ny(nv), nz(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    const std::size_t p = static_cast<std::size_t>(perm[v]);
    nx[p] = m.x[v];
    ny[p] = m.y[v];
    nz[p] = m.z[v];
  }
  m.x = std::move(nx);
  m.y = std::move(ny);
  m.z = std::move(nz);
  for (auto& t : m.tets)
    for (auto& v : t) v = perm[v];
  for (auto& f : m.bfaces)
    for (auto& v : f.v) v = perm[v];
  // Edge identities and their traversal order depend on the numbering;
  // rebuild metrics from the primal mesh.
  build_dual_metrics(m);
}

std::vector<idx_t> shuffle_numbering(TetMesh& m, unsigned seed) {
  std::vector<idx_t> perm(static_cast<std::size_t>(m.num_vertices));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[static_cast<std::size_t>(rng.next_below(i))]);
  apply_vertex_permutation(m, perm);
  return perm;
}

std::vector<idx_t> rcm_reorder(TetMesh& m) {
  const CsrGraph g = m.vertex_graph();
  std::vector<idx_t> perm = rcm_permutation(g);
  apply_vertex_permutation(m, perm);
  return perm;
}

}  // namespace fun3d
