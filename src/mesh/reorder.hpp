// Vertex renumbering for locality (paper §V-A): random scrambling to mimic
// raw unstructured-generator output, and RCM-based renumbering to restore
// locality. Edge lists are re-extracted so edge traversal order follows the
// new numbering ("vertices at one end of each edge sorted increasing").
#pragma once

#include "mesh/mesh.hpp"

namespace fun3d {

/// Renumbers vertices: new id of old vertex v is perm[v]. Rebuilds edges and
/// dual metrics in the new numbering.
void apply_vertex_permutation(TetMesh& m, std::span<const idx_t> perm);

/// Random bijective renumbering (deterministic in `seed`); models the poor
/// numbering of real unstructured meshes. Returns the applied permutation.
std::vector<idx_t> shuffle_numbering(TetMesh& m, unsigned seed = 1);

/// Applies Reverse Cuthill–McKee to the vertex adjacency. Returns perm.
std::vector<idx_t> rcm_reorder(TetMesh& m);

}  // namespace fun3d
