#include "mesh/mesh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fun3d {
namespace {

struct V3 {
  double x, y, z;
};
V3 operator-(V3 a, V3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
V3 operator+(V3 a, V3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
V3 operator*(double s, V3 a) { return {s * a.x, s * a.y, s * a.z}; }
V3 cross(V3 a, V3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
double dot(V3 a, V3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

V3 vertex(const TetMesh& m, idx_t v) { return {m.x[v], m.y[v], m.z[v]}; }

/// Vector area of triangle (p,q,r): 0.5 (q-p) x (r-p).
V3 tri_area(V3 p, V3 q, V3 r) { return 0.5 * cross(q - p, r - p); }

// The 6 edges of a tet as local index pairs (i<j), with the remaining two
// vertices (k,l) ordered so that (i,j,k,l) is an even permutation of
// (0,1,2,3); for a positive-volume tet this makes det[j-i, k-i, l-i] > 0,
// which fixes the winding of the median-dual face piece to point i -> j.
constexpr int kTetEdges[6][4] = {{0, 1, 2, 3}, {0, 2, 3, 1}, {0, 3, 1, 2},
                                 {1, 2, 0, 3}, {1, 3, 2, 0}, {2, 3, 0, 1}};

}  // namespace

double tet_volume(const TetMesh& m, const std::array<idx_t, 4>& t) {
  const V3 a = vertex(m, t[0]), b = vertex(m, t[1]), c = vertex(m, t[2]),
           d = vertex(m, t[3]);
  return dot(b - a, cross(c - a, d - a)) / 6.0;
}

std::vector<std::pair<idx_t, idx_t>> extract_edges(const TetMesh& m) {
  std::vector<std::pair<idx_t, idx_t>> es;
  es.reserve(m.tets.size() * 6);
  for (const auto& t : m.tets) {
    for (const auto& e : kTetEdges) {
      idx_t a = t[static_cast<std::size_t>(e[0])];
      idx_t b = t[static_cast<std::size_t>(e[1])];
      if (a > b) std::swap(a, b);
      es.emplace_back(a, b);
    }
  }
  std::sort(es.begin(), es.end());
  es.erase(std::unique(es.begin(), es.end()), es.end());
  return es;
}

CsrGraph TetMesh::vertex_graph() const {
  return build_csr_from_edges(num_vertices, edges);
}

void build_dual_metrics(TetMesh& m) {
  const std::size_t nv = static_cast<std::size_t>(m.num_vertices);
  m.edges = extract_edges(m);
  const std::size_t ne = m.edges.size();
  m.dual_nx.assign(ne, 0.0);
  m.dual_ny.assign(ne, 0.0);
  m.dual_nz.assign(ne, 0.0);
  m.dual_vol.assign(nv, 0.0);

  auto edge_id = [&](idx_t a, idx_t b) -> std::size_t {
    if (a > b) std::swap(a, b);
    const auto it = std::lower_bound(m.edges.begin(), m.edges.end(),
                                     std::make_pair(a, b));
    assert(it != m.edges.end() && *it == std::make_pair(a, b));
    return static_cast<std::size_t>(it - m.edges.begin());
  };

  for (const auto& t : m.tets) {
    const double vol = tet_volume(m, t);
    if (!(vol > 0))
      throw std::runtime_error("build_dual_metrics: non-positive tet volume");
    // Median dual: each corner owns exactly a quarter of the tet.
    for (idx_t v : t) m.dual_vol[static_cast<std::size_t>(v)] += vol / 4.0;

    const V3 centroid =
        0.25 * (vertex(m, t[0]) + vertex(m, t[1]) + vertex(m, t[2]) +
                vertex(m, t[3]));
    for (const auto& e : kTetEdges) {
      const idx_t a = t[static_cast<std::size_t>(e[0])];
      const idx_t b = t[static_cast<std::size_t>(e[1])];
      const idx_t c = t[static_cast<std::size_t>(e[2])];
      const idx_t d = t[static_cast<std::size_t>(e[3])];
      const V3 pa = vertex(m, a), pb = vertex(m, b);
      const V3 mid = 0.5 * (pa + pb);
      const V3 f1 = (1.0 / 3.0) * (pa + pb + vertex(m, c));
      const V3 f2 = (1.0 / 3.0) * (pa + pb + vertex(m, d));
      // Quad (mid, f1, centroid, f2): vector area as two triangles, oriented
      // a -> b by the even-permutation convention above.
      V3 n = tri_area(mid, f1, centroid) + tri_area(mid, centroid, f2);
      const std::size_t id = edge_id(a, b);
      const double sign = (a < b) ? 1.0 : -1.0;  // stored edge is (min,max)
      m.dual_nx[id] += sign * n.x;
      m.dual_ny[id] += sign * n.y;
      m.dual_nz[id] += sign * n.z;
    }
  }

  m.bface_nx.assign(m.bfaces.size(), 0.0);
  m.bface_ny.assign(m.bfaces.size(), 0.0);
  m.bface_nz.assign(m.bfaces.size(), 0.0);
  for (std::size_t f = 0; f < m.bfaces.size(); ++f) {
    const auto& bf = m.bfaces[f];
    const V3 n = tri_area(vertex(m, bf.v[0]), vertex(m, bf.v[1]),
                          vertex(m, bf.v[2]));
    m.bface_nx[f] = n.x;
    m.bface_ny[f] = n.y;
    m.bface_nz[f] = n.z;
  }
}

}  // namespace fun3d
