#include "mesh/decompose.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "mesh/reorder.hpp"

namespace fun3d {

std::uint64_t Decomposition::total_ghosts() const {
  std::uint64_t s = 0;
  for (const auto& sub : subs) s += static_cast<std::uint64_t>(sub.num_ghosts);
  return s;
}

std::uint64_t Decomposition::total_cut_edges() const {
  std::uint64_t s = 0;
  for (const auto& sub : subs) s += sub.cut_edges;
  return s;
}

Decomposition decompose(TetMesh& m, idx_t nparts, bool use_graph_partitioner,
                        const PartitionOptions& opt) {
  Decomposition d;
  const CsrGraph g = m.vertex_graph();
  Partition p = use_graph_partitioner
                    ? partition_graph(g, nparts, {}, opt)
                    : partition_natural(m.num_vertices, nparts);

  // Stable renumbering making parts contiguous: new id = rank of (part, old).
  const idx_t n = m.num_vertices;
  std::vector<idx_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
    return p.part[a] < p.part[b];
  });
  d.perm.resize(static_cast<std::size_t>(n));
  for (idx_t k = 0; k < n; ++k)
    d.perm[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = k;

  apply_vertex_permutation(m, d.perm);

  d.part.nparts = nparts;
  d.part.part.resize(static_cast<std::size_t>(n));
  for (idx_t old = 0; old < n; ++old)
    d.part.part[static_cast<std::size_t>(d.perm[static_cast<std::size_t>(old)])] =
        p.part[static_cast<std::size_t>(old)];

  d.subs.assign(static_cast<std::size_t>(nparts), {});
  for (idx_t q = 0; q < nparts; ++q) d.subs[static_cast<std::size_t>(q)].owner = q;
  // Row ranges (parts are contiguous in the new numbering).
  {
    std::vector<idx_t> count(static_cast<std::size_t>(nparts), 0);
    for (idx_t v = 0; v < n; ++v) count[static_cast<std::size_t>(d.part.part[v])]++;
    idx_t begin = 0;
    for (idx_t q = 0; q < nparts; ++q) {
      auto& sub = d.subs[static_cast<std::size_t>(q)];
      sub.row_begin = begin;
      begin += count[static_cast<std::size_t>(q)];
      sub.row_end = begin;
    }
  }
  // Halo and cut statistics from the renumbered edge list.
  std::vector<std::set<idx_t>> ghosts(static_cast<std::size_t>(nparts));
  for (const auto& [a, b] : m.edges) {
    const idx_t pa = d.part.part[static_cast<std::size_t>(a)];
    const idx_t pb = d.part.part[static_cast<std::size_t>(b)];
    if (pa == pb) {
      d.subs[static_cast<std::size_t>(pa)].interior_edges++;
    } else {
      d.subs[static_cast<std::size_t>(pa)].cut_edges++;
      d.subs[static_cast<std::size_t>(pb)].cut_edges++;
      ghosts[static_cast<std::size_t>(pa)].insert(b);
      ghosts[static_cast<std::size_t>(pb)].insert(a);
    }
  }
  for (idx_t q = 0; q < nparts; ++q)
    d.subs[static_cast<std::size_t>(q)].num_ghosts =
        static_cast<idx_t>(ghosts[static_cast<std::size_t>(q)].size());
  return d;
}

}  // namespace fun3d
