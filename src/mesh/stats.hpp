// Mesh statistics for reports and for checking that synthetic meshes match
// the topological profile of the paper's datasets.
#pragma once

#include <string>

#include "mesh/mesh.hpp"
#include "util/stats.hpp"

namespace fun3d {

struct MeshStats {
  idx_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t tets = 0;
  std::uint64_t boundary_faces = 0;
  double edges_per_vertex = 0;  ///< paper meshes: ~6.7
  Summary degree;               ///< vertex degree distribution
  double total_volume = 0;
  double min_tet_volume = 0;
  idx_t graph_bandwidth = 0;    ///< adjacency bandwidth (locality proxy)
};

MeshStats compute_mesh_stats(const TetMesh& m);
std::string format_mesh_stats(const MeshStats& s, const std::string& name);

}  // namespace fun3d
