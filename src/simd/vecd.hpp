// 4-wide double SIMD wrapper matching the paper's AVX platform (4-wide DP).
//
// The flux kernel vectorizes *across edges*: each SIMD lane processes one
// edge end-to-end, with gathers for vertex data and a scalar write-out phase
// (paper §V-A "Exploring SIMD"). AVX2 when available, portable scalar
// fallback otherwise — identical results either way.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define FUN3D_SIMD_AVX2 1
#endif

#include "graph/csr.hpp"

namespace fun3d {

inline constexpr int kSimdWidth = 4;

#if FUN3D_SIMD_AVX2

/// AVX2 backend.
class Vec4d {
 public:
  Vec4d() : v_(_mm256_setzero_pd()) {}
  explicit Vec4d(__m256d v) : v_(v) {}
  explicit Vec4d(double s) : v_(_mm256_set1_pd(s)) {}

  static Vec4d load(const double* p) { return Vec4d(_mm256_loadu_pd(p)); }
  static Vec4d load_aligned(const double* p) {
    return Vec4d(_mm256_load_pd(p));
  }
  void store(double* p) const { _mm256_storeu_pd(p, v_); }
  /// Gather lanes from p[idx[0..3]]. The masked form with an explicit zero
  /// source avoids GCC's uninitialized-source false positive on the plain
  /// gather intrinsic.
  static Vec4d gather(const double* p, const idx_t* idx) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return Vec4d(
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), p, vi, ones, 8));
  }

  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return Vec4d(_mm256_add_pd(a.v_, b.v_));
  }
  friend Vec4d operator-(Vec4d a, Vec4d b) {
    return Vec4d(_mm256_sub_pd(a.v_, b.v_));
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return Vec4d(_mm256_mul_pd(a.v_, b.v_));
  }
  friend Vec4d operator/(Vec4d a, Vec4d b) {
    return Vec4d(_mm256_div_pd(a.v_, b.v_));
  }
  /// a*b + c
  static Vec4d fma(Vec4d a, Vec4d b, Vec4d c) {
    return Vec4d(_mm256_fmadd_pd(a.v_, b.v_, c.v_));
  }
  static Vec4d sqrt(Vec4d a) { return Vec4d(_mm256_sqrt_pd(a.v_)); }
  static Vec4d abs(Vec4d a) {
    return Vec4d(_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v_));
  }
  static Vec4d max(Vec4d a, Vec4d b) {
    return Vec4d(_mm256_max_pd(a.v_, b.v_));
  }
  static Vec4d min(Vec4d a, Vec4d b) {
    return Vec4d(_mm256_min_pd(a.v_, b.v_));
  }
  [[nodiscard]] double lane(int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v_);
    return tmp[i];
  }

 private:
  __m256d v_;
};

#else

/// Portable scalar backend with identical semantics.
class Vec4d {
 public:
  Vec4d() : v_{0, 0, 0, 0} {}
  explicit Vec4d(double s) : v_{s, s, s, s} {}

  static Vec4d load(const double* p) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.v_[i] = p[i];
    return r;
  }
  static Vec4d load_aligned(const double* p) { return load(p); }
  void store(double* p) const {
    for (int i = 0; i < 4; ++i) p[i] = v_[i];
  }
  static Vec4d gather(const double* p, const idx_t* idx) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.v_[i] = p[idx[i]];
    return r;
  }

  friend Vec4d operator+(Vec4d a, Vec4d b) { return bin(a, b, [](double x, double y) { return x + y; }); }
  friend Vec4d operator-(Vec4d a, Vec4d b) { return bin(a, b, [](double x, double y) { return x - y; }); }
  friend Vec4d operator*(Vec4d a, Vec4d b) { return bin(a, b, [](double x, double y) { return x * y; }); }
  friend Vec4d operator/(Vec4d a, Vec4d b) { return bin(a, b, [](double x, double y) { return x / y; }); }
  static Vec4d fma(Vec4d a, Vec4d b, Vec4d c) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.v_[i] = a.v_[i] * b.v_[i] + c.v_[i];
    return r;
  }
  static Vec4d sqrt(Vec4d a) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.v_[i] = std::sqrt(a.v_[i]);
    return r;
  }
  static Vec4d abs(Vec4d a) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.v_[i] = std::fabs(a.v_[i]);
    return r;
  }
  static Vec4d max(Vec4d a, Vec4d b) { return bin(a, b, [](double x, double y) { return x > y ? x : y; }); }
  static Vec4d min(Vec4d a, Vec4d b) { return bin(a, b, [](double x, double y) { return x < y ? x : y; }); }
  [[nodiscard]] double lane(int i) const { return v_[i]; }

 private:
  template <class F>
  static Vec4d bin(Vec4d a, Vec4d b, F f) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.v_[i] = f(a.v_[i], b.v_[i]);
    return r;
  }
  double v_[4];
};

#endif  // FUN3D_SIMD_AVX2

/// Software prefetch into L1 / L2 (no-ops on unsupported compilers).
inline void prefetch_l1(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}
inline void prefetch_l2(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p, 0, 2);
#else
  (void)p;
#endif
}

}  // namespace fun3d
