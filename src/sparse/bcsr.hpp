// Block compressed-sparse-row matrix with 4x4 blocks — the Jacobian storage
// format of PETSc-FUN3D (paper §III-B: BCSR allows coalesced loads, less
// index arithmetic, lower bandwidth pressure than scalar CSR).
#pragma once

#include <span>

#include "graph/csr.hpp"
#include "sparse/blockops.hpp"
#include "util/aligned.hpp"

namespace fun3d {

class Bcsr4 {
 public:
  Bcsr4() = default;

  /// Pattern with sorted column indices per row; a diagonal entry is
  /// required in every row (added if missing from `adj`).
  static Bcsr4 from_adjacency(const CsrGraph& adj);

  [[nodiscard]] idx_t num_rows() const {
    return rowptr_.empty() ? 0 : static_cast<idx_t>(rowptr_.size() - 1);
  }
  [[nodiscard]] std::size_t num_blocks() const { return col_.size(); }

  [[nodiscard]] std::span<const idx_t> row_cols(idx_t r) const {
    return {col_.data() + rowptr_[r],
            static_cast<std::size_t>(rowptr_[r + 1] - rowptr_[r])};
  }
  [[nodiscard]] idx_t row_begin(idx_t r) const { return rowptr_[r]; }
  [[nodiscard]] idx_t row_end(idx_t r) const { return rowptr_[r + 1]; }
  [[nodiscard]] idx_t col(idx_t nz) const { return col_[static_cast<std::size_t>(nz)]; }
  [[nodiscard]] idx_t diag_index(idx_t r) const { return diag_[static_cast<std::size_t>(r)]; }

  [[nodiscard]] double* block(idx_t nz) {
    return val_.data() + static_cast<std::size_t>(nz) * kBs2;
  }
  [[nodiscard]] const double* block(idx_t nz) const {
    return val_.data() + static_cast<std::size_t>(nz) * kBs2;
  }

  /// Index of block (r,c), or -1 if not in the pattern.
  [[nodiscard]] idx_t find(idx_t r, idx_t c) const;

  void set_zero();
  /// Adds `b` (16 doubles) into block (r,c); asserts the entry exists.
  void add_block(idx_t r, idx_t c, const double* b);
  /// Adds `s * I` to every diagonal block (pseudo-time term).
  void shift_diagonal(std::span<const double> s);

  /// Structure of the blocks as a CSR graph (cols per row), sharing no data.
  [[nodiscard]] CsrGraph structure() const;

  /// Bytes touched by one streaming pass over the matrix (values + indices);
  /// the bandwidth-model input for TRSV/SpMV.
  [[nodiscard]] std::uint64_t stream_bytes() const {
    return static_cast<std::uint64_t>(num_blocks()) * (kBs2 * 8 + 4) +
           static_cast<std::uint64_t>(num_rows() + 1) * 4;
  }

 private:
  std::vector<idx_t> rowptr_;
  std::vector<idx_t> col_;
  std::vector<idx_t> diag_;
  AVec<double> val_;
};

}  // namespace fun3d
