#include "sparse/ilu.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>

#include "parallel/spinwait.hpp"
#include "parallel/team.hpp"
#include "trace/trace.hpp"

namespace fun3d {

IluPattern symbolic_ilu(const CsrGraph& pattern_with_diag, int fill_level) {
  const idx_t n = pattern_with_diag.num_vertices();
  IluPattern out;
  out.fill = fill_level;
  out.rows.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);

  // Row-by-row level-of-fill (IKJ): lev(i,j) = min over k<min(i,j) of
  // lev(i,k) + lev(k,j) + 1, entries kept while lev <= fill_level.
  // We keep completed factor rows around to merge from.
  std::vector<std::vector<idx_t>> fcols(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> flev(static_cast<std::size_t>(n));

  std::vector<int> lev_buf(static_cast<std::size_t>(n), -1);  // -1 = absent
  std::vector<idx_t> touched;

  for (idx_t i = 0; i < n; ++i) {
    touched.clear();
    auto nb = pattern_with_diag.neighbors(i);
    for (idx_t j : nb) {
      lev_buf[static_cast<std::size_t>(j)] = 0;
      touched.push_back(j);
    }
    if (lev_buf[static_cast<std::size_t>(i)] < 0) {
      lev_buf[static_cast<std::size_t>(i)] = 0;  // ensure diagonal
      touched.push_back(i);
    }
    // Process L-part columns in ascending order; touched isn't sorted yet,
    // so walk a sorted snapshot and re-scan for newly created L entries.
    // For ILU(k) with small k the L-part is short; a simple sorted set of
    // L columns suffices.
    std::vector<idx_t> lcols;
    for (idx_t j : touched)
      if (j < i) lcols.push_back(j);
    std::sort(lcols.begin(), lcols.end());
    for (std::size_t li = 0; li < lcols.size(); ++li) {
      const idx_t k = lcols[li];
      const int lik = lev_buf[static_cast<std::size_t>(k)];
      if (lik < 0 || lik > fill_level) continue;
      const auto& krow = fcols[static_cast<std::size_t>(k)];
      const auto& klev = flev[static_cast<std::size_t>(k)];
      for (std::size_t p = 0; p < krow.size(); ++p) {
        const idx_t j = krow[p];
        if (j <= k) continue;  // only U-part of row k
        const int cand = lik + klev[p] + 1;
        if (cand > fill_level) continue;
        int& cur = lev_buf[static_cast<std::size_t>(j)];
        if (cur < 0) {
          cur = cand;
          touched.push_back(j);
          if (j < i) {
            // New L entry: insert into lcols keeping ascending order.
            auto it = std::lower_bound(lcols.begin(), lcols.end(), j);
            const std::size_t pos = static_cast<std::size_t>(it - lcols.begin());
            lcols.insert(it, j);
            if (pos <= li) ++li;  // keep our cursor on the same element
          }
        } else {
          cur = std::min(cur, cand);
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    auto& fc = fcols[static_cast<std::size_t>(i)];
    auto& fl = flev[static_cast<std::size_t>(i)];
    fc.reserve(touched.size());
    fl.reserve(touched.size());
    for (idx_t j : touched) {
      const int lv = lev_buf[static_cast<std::size_t>(j)];
      if (lv >= 0 && lv <= fill_level) {
        fc.push_back(j);
        fl.push_back(lv);
      }
      lev_buf[static_cast<std::size_t>(j)] = -1;
    }
    out.rows.rowptr[static_cast<std::size_t>(i) + 1] =
        out.rows.rowptr[static_cast<std::size_t>(i)] +
        static_cast<idx_t>(fc.size());
  }
  out.rows.col.reserve(static_cast<std::size_t>(out.rows.rowptr.back()));
  out.level.reserve(static_cast<std::size_t>(out.rows.rowptr.back()));
  for (idx_t i = 0; i < n; ++i) {
    out.rows.col.insert(out.rows.col.end(),
                        fcols[static_cast<std::size_t>(i)].begin(),
                        fcols[static_cast<std::size_t>(i)].end());
    out.level.insert(out.level.end(), flev[static_cast<std::size_t>(i)].begin(),
                     flev[static_cast<std::size_t>(i)].end());
  }
  return out;
}

CsrGraph ilu_lower_deps(const IluPattern& pattern) {
  const idx_t n = pattern.rows.num_vertices();
  CsrGraph d;
  d.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t i = 0; i < n; ++i) {
    idx_t count = 0;
    for (idx_t c : pattern.rows.neighbors(i))
      if (c < i) ++count;
    d.rowptr[static_cast<std::size_t>(i) + 1] =
        d.rowptr[static_cast<std::size_t>(i)] + count;
  }
  d.col.reserve(static_cast<std::size_t>(d.rowptr.back()));
  for (idx_t i = 0; i < n; ++i)
    for (idx_t c : pattern.rows.neighbors(i))
      if (c < i) d.col.push_back(c);
  return d;
}

IluSchedules IluSchedules::build(const IluPattern& pattern, idx_t nthreads,
                                 bool sparsify) {
  IluSchedules s;
  s.nthreads = std::max<idx_t>(1, nthreads);
  const CsrGraph deps = ilu_lower_deps(pattern);
  s.levels = build_level_schedule(deps);
  s.owner = partition_natural(pattern.rows.num_vertices(), s.nthreads);
  s.plan = build_p2p_plan(deps, s.owner, sparsify);
  s.critical_path = dag_critical_path(deps);
  s.parallelism = dag_parallelism(deps);
  return s;
}

CsrGraph IluFactor::lower_deps() const {
  const idx_t n = num_rows();
  CsrGraph d;
  d.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t i = 0; i < n; ++i)
    d.rowptr[static_cast<std::size_t>(i) + 1] =
        d.rowptr[static_cast<std::size_t>(i)] + (diag_[static_cast<std::size_t>(i)] - rowptr_[static_cast<std::size_t>(i)]);
  d.col.reserve(static_cast<std::size_t>(d.rowptr.back()));
  for (idx_t i = 0; i < n; ++i)
    for (idx_t nz = rowptr_[static_cast<std::size_t>(i)];
         nz < diag_[static_cast<std::size_t>(i)]; ++nz)
      d.col.push_back(col_[static_cast<std::size_t>(nz)]);
  return d;
}

CsrGraph IluFactor::upper_deps_mirrored() const {
  const idx_t n = num_rows();
  CsrGraph d;
  d.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  // Mirrored row i' = n-1-i depends on mirrored cols of the U part.
  for (idx_t i = 0; i < n; ++i) {
    const idx_t mi = n - 1 - i;
    d.rowptr[static_cast<std::size_t>(mi) + 1] =
        rowptr_[static_cast<std::size_t>(i) + 1] -
        (diag_[static_cast<std::size_t>(i)] + 1);
  }
  for (std::size_t r = 1; r < d.rowptr.size(); ++r)
    d.rowptr[r] += d.rowptr[r - 1];
  d.col.resize(static_cast<std::size_t>(d.rowptr.back()));
  for (idx_t i = 0; i < n; ++i) {
    const idx_t mi = n - 1 - i;
    idx_t w = d.rowptr[static_cast<std::size_t>(mi)];
    // U columns ascend; mirrored they descend — store sorted ascending.
    for (idx_t nz = rowptr_[static_cast<std::size_t>(i) + 1] - 1;
         nz > diag_[static_cast<std::size_t>(i)]; --nz)
      d.col[static_cast<std::size_t>(w++)] = n - 1 - col_[static_cast<std::size_t>(nz)];
  }
  return d;
}

std::uint64_t IluFactor::solve_stream_bytes() const {
  // Factor values + column indices streamed once, plus x and b vectors.
  return static_cast<std::uint64_t>(num_blocks()) * (kBs2 * 8 + 4) +
         static_cast<std::uint64_t>(num_rows()) * (2u * kBs * 8);
}

std::uint64_t IluFactor::solve_flops() const {
  return static_cast<std::uint64_t>(num_blocks()) * (2 * kBs2);
}

IluFactor factorize_ilu(const Bcsr4& a, const IluPattern& pattern,
                        bool compressed_buffer, bool simd) {
  const idx_t n = a.num_rows();
  if (pattern.rows.num_vertices() != n)
    throw std::invalid_argument("factorize_ilu: pattern/matrix size mismatch");
  IluFactor f;
  f.rowptr_ = pattern.rows.rowptr;
  f.col_ = pattern.rows.col;
  f.diag_.resize(static_cast<std::size_t>(n));
  f.val_.assign(f.col_.size() * kBs2, 0.0);
  std::uint64_t flops = 0;

  for (idx_t i = 0; i < n; ++i) {
    bool found = false;
    for (idx_t nz = f.rowptr_[static_cast<std::size_t>(i)];
         nz < f.rowptr_[static_cast<std::size_t>(i) + 1]; ++nz) {
      if (f.col_[static_cast<std::size_t>(nz)] == i) {
        f.diag_[static_cast<std::size_t>(i)] = nz;
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("factorize_ilu: missing diagonal");
  }

  // Temporary row buffer. Full variant: one block per global column plus a
  // presence map. Compressed variant: one block per pattern entry of the
  // current row; global column -> local slot found by binary search in the
  // (static) pattern — the paper's reduced working-set formulation.
  AVec<double> full_buf;
  std::vector<idx_t> pos_of_col;  // full variant: col -> slot+1 (0 = absent)
  if (!compressed_buffer) {
    full_buf.assign(static_cast<std::size_t>(n) * kBs2, 0.0);
    pos_of_col.assign(static_cast<std::size_t>(n), 0);
  }
  AVec<double> cbuf;  // compressed: sized to the longest row

  auto gemm_sub = simd ? block_gemm_sub_simd : block_gemm_sub;

  for (idx_t i = 0; i < n; ++i) {
    const idx_t rb = f.rowptr_[static_cast<std::size_t>(i)];
    const idx_t re = f.rowptr_[static_cast<std::size_t>(i) + 1];
    const idx_t rlen = re - rb;
    const std::span<const idx_t> cols(f.col_.data() + rb,
                                      static_cast<std::size_t>(rlen));

    double* row;  // rlen blocks, local slot s corresponds to column cols[s]
    if (compressed_buffer) {
      cbuf.assign(static_cast<std::size_t>(rlen) * kBs2, 0.0);
      row = cbuf.data();
    } else {
      for (idx_t s = 0; s < rlen; ++s) {
        pos_of_col[static_cast<std::size_t>(cols[s])] =
            s + 1;  // mark presence
        double* b = full_buf.data() +
                    static_cast<std::size_t>(cols[s]) * kBs2;
        std::fill(b, b + kBs2, 0.0);
      }
      row = full_buf.data();
    }
    auto slot = [&](idx_t c) -> double* {
      if (compressed_buffer) {
        const auto it = std::lower_bound(cols.begin(), cols.end(), c);
        if (it == cols.end() || *it != c) return nullptr;
        return row + static_cast<std::size_t>(it - cols.begin()) * kBs2;
      }
      if (pos_of_col[static_cast<std::size_t>(c)] == 0) return nullptr;
      return row + static_cast<std::size_t>(c) * kBs2;
    };

    // Scatter row i of A. Matrix entries outside the pattern are dropped —
    // that is the incomplete-factorization semantics, and with a block-
    // diagonal pattern it is exactly the block-Jacobi preconditioner.
    for (idx_t anz = a.row_begin(i); anz < a.row_end(i); ++anz) {
      double* dst = slot(a.col(anz));
      if (dst == nullptr) continue;
      std::copy(a.block(anz), a.block(anz) + kBs2, dst);
    }

    // Eliminate: for each k < i in the pattern (ascending — cols is sorted).
    for (idx_t s = 0; s < rlen && cols[s] < i; ++s) {
      const idx_t k = cols[s];
      double* lik = slot(k);
      // L_ik = (row value at k) * invD_k  (invD stored at k's diagonal).
      double tmp[kBs2];
      block_gemm(lik, f.block(f.diag_[static_cast<std::size_t>(k)]), tmp);
      std::copy(tmp, tmp + kBs2, lik);
      flops += 2 * kBs * kBs2;
      // Update with U-part of row k.
      for (idx_t knz = f.diag_[static_cast<std::size_t>(k)] + 1;
           knz < f.rowptr_[static_cast<std::size_t>(k) + 1]; ++knz) {
        double* dst = slot(f.col_[static_cast<std::size_t>(knz)]);
        if (dst == nullptr) continue;  // dropped fill
        gemm_sub(lik, f.block(knz), dst);
        flops += 2 * kBs * kBs2;
      }
    }

    // Gather the finished row into the factor; invert the diagonal block.
    for (idx_t s = 0; s < rlen; ++s) {
      const double* src = slot(cols[s]);
      std::copy(src, src + kBs2, f.val_.data() + static_cast<std::size_t>(rb + s) * kBs2);
    }
    double inv[kBs2];
    double* dblk = f.val_.data() +
                   static_cast<std::size_t>(f.diag_[static_cast<std::size_t>(i)]) * kBs2;
    if (!block_invert(dblk, inv))
      throw std::runtime_error("factorize_ilu: singular diagonal block");
    std::copy(inv, inv + kBs2, dblk);
    flops += 2 * kBs * kBs2;  // inversion cost, same order as one gemm

    if (!compressed_buffer)
      for (idx_t s = 0; s < rlen; ++s)
        pos_of_col[static_cast<std::size_t>(cols[s])] = 0;
  }
  f.factor_flops_ = flops;
  return f;
}

namespace {

using GemmSubFn = void (*)(const double* a, const double* b, double* c);

/// Locates the diagonal entry of every row of the pattern (throws when a
/// row has none — the factor stores the inverted diagonal there).
void find_diagonals(const std::vector<idx_t>& rowptr,
                    const std::vector<idx_t>& col, idx_t n,
                    std::vector<idx_t>& diag) {
  diag.resize(static_cast<std::size_t>(n));
  for (idx_t i = 0; i < n; ++i) {
    bool found = false;
    for (idx_t nz = rowptr[static_cast<std::size_t>(i)];
         nz < rowptr[static_cast<std::size_t>(i) + 1]; ++nz) {
      if (col[static_cast<std::size_t>(nz)] == i) {
        diag[static_cast<std::size_t>(i)] = nz;
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("factorize_ilu: missing diagonal");
  }
}

/// Factors row i into `val` with a compressed temporary row buffer: the
/// exact arithmetic sequence of the serial compressed path in
/// factorize_ilu, so any schedule honouring the L-pattern dependencies
/// yields a bitwise-identical factor. Pre: every pattern predecessor k < i
/// is complete in `val` (and that completion happens-before this call).
/// Returns false on a singular diagonal block — the caller must NOT throw
/// inside a parallel region; it records the failure, keeps going (later
/// rows read garbage, which is harmless since the factor is discarded),
/// and rethrows after the region closes.
bool factor_row(const Bcsr4& a, const std::vector<idx_t>& rowptr,
                const std::vector<idx_t>& col, const std::vector<idx_t>& diag,
                double* val, idx_t i, AVec<double>& cbuf, GemmSubFn gemm_sub,
                std::uint64_t& flops) {
  const idx_t rb = rowptr[static_cast<std::size_t>(i)];
  const idx_t re = rowptr[static_cast<std::size_t>(i) + 1];
  const idx_t rlen = re - rb;
  const std::span<const idx_t> cols(col.data() + rb,
                                    static_cast<std::size_t>(rlen));
  cbuf.assign(static_cast<std::size_t>(rlen) * kBs2, 0.0);
  double* row = cbuf.data();

  auto slot = [&](idx_t c) -> double* {
    const auto it = std::lower_bound(cols.begin(), cols.end(), c);
    if (it == cols.end() || *it != c) return nullptr;
    return row + static_cast<std::size_t>(it - cols.begin()) * kBs2;
  };
  auto block = [&](idx_t nz) {
    return val + static_cast<std::size_t>(nz) * kBs2;
  };

  for (idx_t anz = a.row_begin(i); anz < a.row_end(i); ++anz) {
    double* dst = slot(a.col(anz));
    if (dst == nullptr) continue;
    std::copy(a.block(anz), a.block(anz) + kBs2, dst);
  }

  for (idx_t s = 0; s < rlen && cols[s] < i; ++s) {
    const idx_t k = cols[s];
    double* lik = slot(k);
    double tmp[kBs2];
    block_gemm(lik, block(diag[static_cast<std::size_t>(k)]), tmp);
    std::copy(tmp, tmp + kBs2, lik);
    flops += 2 * kBs * kBs2;
    for (idx_t knz = diag[static_cast<std::size_t>(k)] + 1;
         knz < rowptr[static_cast<std::size_t>(k) + 1]; ++knz) {
      double* dst = slot(col[static_cast<std::size_t>(knz)]);
      if (dst == nullptr) continue;  // dropped fill
      gemm_sub(lik, block(knz), dst);
      flops += 2 * kBs * kBs2;
    }
  }

  for (idx_t s = 0; s < rlen; ++s)
    std::copy(row + static_cast<std::size_t>(s) * kBs2,
              row + static_cast<std::size_t>(s + 1) * kBs2,
              val + static_cast<std::size_t>(rb + s) * kBs2);
  double inv[kBs2];
  double* dblk = block(diag[static_cast<std::size_t>(i)]);
  const bool ok = block_invert(dblk, inv);
  if (ok) std::copy(inv, inv + kBs2, dblk);
  flops += 2 * kBs * kBs2;  // inversion cost, same order as one gemm
  return ok;
}

}  // namespace

IluFactor factorize_ilu_levels(const Bcsr4& a, const IluPattern& pattern,
                               const IluSchedules& s, bool simd) {
  const idx_t n = a.num_rows();
  if (pattern.rows.num_vertices() != n)
    throw std::invalid_argument("factorize_ilu: pattern/matrix size mismatch");
  IluFactor f;
  f.rowptr_ = pattern.rows.rowptr;
  f.col_ = pattern.rows.col;
  find_diagonals(f.rowptr_, f.col_, n, f.diag_);
  f.val_.assign(f.col_.size() * kBs2, 0.0);
  const GemmSubFn gemm_sub = simd ? block_gemm_sub_simd : block_gemm_sub;

  std::atomic<std::uint64_t> total_flops{0};
  std::atomic<bool> singular{false};
  // Worksharing-only body: the `omp for` barrier after each wavefront both
  // orders level l before l+1 and makes the finished rows visible, for any
  // delivered team size.
  run_team_workshare(
      s.nthreads,
      [&] {
        AVec<double> cbuf;  // per-thread compressed row buffer
        std::uint64_t my_flops = 0;
        for (idx_t l = 0; l < s.levels.nlevels; ++l) {
          const auto rows = s.levels.level(l);
          if (omp_get_thread_num() == 0)
            trace::wavefront("ilu_factor", l, static_cast<idx_t>(rows.size()));
#pragma omp for schedule(static)
          for (std::int64_t k = 0; k < static_cast<std::int64_t>(rows.size());
               ++k) {
            if (!factor_row(a, f.rowptr_, f.col_, f.diag_, f.val_.data(),
                            rows[static_cast<std::size_t>(k)], cbuf, gemm_sub,
                            my_flops))
              singular.store(true, std::memory_order_relaxed);
          }
        }
        total_flops.fetch_add(my_flops, std::memory_order_relaxed);
      },
      "ilu_factor_levels");
  if (singular.load(std::memory_order_relaxed))
    throw std::runtime_error("factorize_ilu: singular diagonal block");
  f.factor_flops_ = total_flops.load(std::memory_order_relaxed);
  return f;
}

IluFactor factorize_ilu_p2p(const Bcsr4& a, const IluPattern& pattern,
                            const IluSchedules& s, bool simd) {
  const idx_t n = a.num_rows();
  if (pattern.rows.num_vertices() != n)
    throw std::invalid_argument("factorize_ilu: pattern/matrix size mismatch");
  const idx_t nt = s.nthreads;
  if (nt <= 1) return factorize_ilu(a, pattern, /*compressed_buffer=*/true,
                                    simd);
  IluFactor f;
  f.rowptr_ = pattern.rows.rowptr;
  f.col_ = pattern.rows.col;
  find_diagonals(f.rowptr_, f.col_, n, f.diag_);
  f.val_.assign(f.col_.size() * kBs2, 0.0);
  const GemmSubFn gemm_sub = simd ? block_gemm_sub_simd : block_gemm_sub;

  std::vector<std::atomic<idx_t>> progress(static_cast<std::size_t>(nt));
  for (auto& p : progress) p.store(-1, std::memory_order_relaxed);
  std::vector<std::uint64_t> thread_flops(static_cast<std::size_t>(nt), 0);
  std::atomic<bool> singular{false};

  // The schedule assumes exactly `nt` in-order workers synchronizing
  // through spin waits, so its shards can be neither round-robined nor
  // serialized: on shortfall run_team aborts (no shard executes) and we
  // fall back to the serial factorization, which needs no schedule and
  // still produces the exact same factor.
  const bool tracing = trace::enabled();  // hoisted out of the row loop
  const TeamRun run = run_team(
      nt,
      [&](idx_t t) {
        AVec<double> cbuf;  // per-planned-thread compressed row buffer
        std::uint64_t my_flops = 0;
        for (idx_t i = 0; i < n; ++i) {
          if (s.owner.part[static_cast<std::size_t>(i)] != t) continue;
          for (idx_t w = s.plan.wait_ptr[static_cast<std::size_t>(i)];
               w < s.plan.wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
            const idx_t owner =
                s.plan.wait_thread[static_cast<std::size_t>(w)];
            const idx_t row = s.plan.wait_row[static_cast<std::size_t>(w)];
            if (!tracing) {
              wait_progress(progress[static_cast<std::size_t>(owner)], row);
            } else {
              const std::int64_t t0 = trace::now_ns();
              const WaitStats ws = wait_progress_counted(
                  progress[static_cast<std::size_t>(owner)], row);
              trace::spin_wait(owner, row, ws.spins, ws.yields, t0);
            }
          }
          if (!factor_row(a, f.rowptr_, f.col_, f.diag_, f.val_.data(), i,
                          cbuf, gemm_sub, my_flops))
            singular.store(true, std::memory_order_relaxed);
          // Publish even after a singular row so waiters never deadlock;
          // the factor is discarded by the rethrow below anyway.
          progress[static_cast<std::size_t>(t)].store(
              i, std::memory_order_release);
        }
        thread_flops[static_cast<std::size_t>(t)] = my_flops;
      },
      ShortfallPolicy::kAbort, "ilu_factor_p2p");
  if (!run.completed)
    return factorize_ilu(a, pattern, /*compressed_buffer=*/true, simd);
  if (singular.load(std::memory_order_relaxed))
    throw std::runtime_error("factorize_ilu: singular diagonal block");
  std::uint64_t flops = 0;
  for (const std::uint64_t v : thread_flops) flops += v;
  f.factor_flops_ = flops;
  return f;
}

}  // namespace fun3d
