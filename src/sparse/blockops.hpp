// Dense 4x4 block kernels underlying the BCSR sparse operations (paper
// §V-B: "the primary compute is multiplying a 4x4 matrix with a 4x1 vector
// per non-zero block" and "4x4 matrix-matrix multiplication and inversion of
// the diagonal block"). Blocks are row-major: A[r*4+c].
//
// Each kernel has a scalar form and (transparently, via Vec4d) a SIMD form
// vectorized within the block — the paper's §V-B "Exploring SIMD".
#pragma once

#include <cmath>

#include "simd/vecd.hpp"

namespace fun3d {

inline constexpr int kBs = 4;              ///< block size (unknowns/vertex)
inline constexpr int kBs2 = kBs * kBs;     ///< doubles per block

/// y -= A * x   (4x4 * 4-vector)
inline void block_gemv_sub(const double* a, const double* x, double* y) {
  for (int r = 0; r < kBs; ++r) {
    double s = 0;
    for (int c = 0; c < kBs; ++c) s += a[r * kBs + c] * x[c];
    y[r] -= s;
  }
}

/// y = A * x
inline void block_gemv(const double* a, const double* x, double* y) {
  for (int r = 0; r < kBs; ++r) {
    double s = 0;
    for (int c = 0; c < kBs; ++c) s += a[r * kBs + c] * x[c];
    y[r] = s;
  }
}

/// SIMD y -= A*x: one row of A per fma with broadcasted x would need
/// transposes; instead treat columns: y -= sum_c A(:,c) * x[c], where A is
/// row-major so A(:,c) is a gather — we keep a strided load via set.
inline void block_gemv_sub_simd(const double* a, const double* x, double* y) {
  Vec4d acc = Vec4d::load(y);
  for (int c = 0; c < kBs; ++c) {
    alignas(32) double colv[4] = {a[0 * kBs + c], a[1 * kBs + c],
                                  a[2 * kBs + c], a[3 * kBs + c]};
    acc = Vec4d::fma(Vec4d(-x[c]), Vec4d::load(colv), acc);
  }
  acc.store(y);
}

/// C -= A * B   (4x4 each)
inline void block_gemm_sub(const double* a, const double* b, double* c) {
  for (int r = 0; r < kBs; ++r)
    for (int k = 0; k < kBs; ++k) {
      const double ark = a[r * kBs + k];
      for (int j = 0; j < kBs; ++j) c[r * kBs + j] -= ark * b[k * kBs + j];
    }
}

/// SIMD C -= A*B: each row of C is a 4-vector; row_r(C) -= sum_k a[r,k] *
/// row_k(B). This is the natural within-block vectorization for row-major.
inline void block_gemm_sub_simd(const double* a, const double* b, double* c) {
  for (int r = 0; r < kBs; ++r) {
    Vec4d acc = Vec4d::load(c + r * kBs);
    for (int k = 0; k < kBs; ++k)
      acc = Vec4d::fma(Vec4d(-a[r * kBs + k]), Vec4d::load(b + k * kBs), acc);
    acc.store(c + r * kBs);
  }
}

/// C = A * B
inline void block_gemm(const double* a, const double* b, double* c) {
  for (int i = 0; i < kBs2; ++i) c[i] = 0;
  for (int r = 0; r < kBs; ++r)
    for (int k = 0; k < kBs; ++k) {
      const double ark = a[r * kBs + k];
      for (int j = 0; j < kBs; ++j) c[r * kBs + j] += ark * b[k * kBs + j];
    }
}

/// inv = A^{-1} via Gauss-Jordan with partial pivoting.
/// Returns false if A is (numerically) singular.
bool block_invert(const double* a, double* inv);

/// Frobenius norm of the difference of two blocks.
inline double block_diff_norm(const double* a, const double* b) {
  double s = 0;
  for (int i = 0; i < kBs2; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace fun3d
