#include "sparse/blockops.hpp"

#include <algorithm>
#include <cmath>

namespace fun3d {

bool block_invert(const double* a, double* inv) {
  // Gauss-Jordan on [A | I] with partial pivoting.
  double aug[kBs][2 * kBs];
  for (int r = 0; r < kBs; ++r) {
    for (int c = 0; c < kBs; ++c) {
      aug[r][c] = a[r * kBs + c];
      aug[r][kBs + c] = (r == c) ? 1.0 : 0.0;
    }
  }
  for (int p = 0; p < kBs; ++p) {
    int piv = p;
    for (int r = p + 1; r < kBs; ++r)
      if (std::fabs(aug[r][p]) > std::fabs(aug[piv][p])) piv = r;
    if (aug[piv][p] == 0.0 || !std::isfinite(aug[piv][p])) return false;
    if (piv != p)
      for (int c = 0; c < 2 * kBs; ++c) std::swap(aug[p][c], aug[piv][c]);
    const double s = 1.0 / aug[p][p];
    for (int c = 0; c < 2 * kBs; ++c) aug[p][c] *= s;
    for (int r = 0; r < kBs; ++r) {
      if (r == p) continue;
      const double f = aug[r][p];
      if (f == 0.0) continue;
      for (int c = 0; c < 2 * kBs; ++c) aug[r][c] -= f * aug[p][c];
    }
  }
  for (int r = 0; r < kBs; ++r)
    for (int c = 0; c < kBs; ++c) inv[r * kBs + c] = aug[r][kBs + c];
  return true;
}

}  // namespace fun3d
