// Block sparse triangular solves x = U^{-1} L^{-1} b on ILU factors — the
// post-optimization hotspot of the application (paper Fig. 5/7/8).
//
// Three executions:
//  * serial            — the baseline recurrence (Fig. 2 of the paper);
//  * level-scheduled   — wavefront levels with a barrier after each level;
//  * P2P-sparsified    — per-thread in-order execution with point-to-point
//                        waits on sparsified cross-thread dependencies
//                        (Park et al. [26]).
// All variants produce bitwise-identical solutions.
//
// The backward substitution runs in *mirrored* index space (i' = n-1-i) so
// the lower-triangular scheduling machinery (levels, sync plans) is reused
// unchanged.
#pragma once

#include <span>

#include "graph/levels.hpp"
#include "graph/partition.hpp"
#include "graph/sparsify.hpp"
#include "sparse/ilu.hpp"

namespace fun3d {

/// Precomputed schedules for the parallel solve variants.
struct TrsvSchedules {
  idx_t nthreads = 1;
  LevelSchedule fwd_levels;  ///< forward-solve wavefronts
  LevelSchedule bwd_levels;  ///< backward-solve wavefronts (mirrored rows)
  Partition fwd_owner;       ///< contiguous row ownership
  Partition bwd_owner;       ///< contiguous mirrored-row ownership
  P2PSyncPlan fwd_plan;
  P2PSyncPlan bwd_plan;

  /// `sparsify` enables the transitive-reduction pass (P2P-Sparse);
  /// without it the plan still collapses waits per predecessor thread.
  static TrsvSchedules build(const IluFactor& f, idx_t nthreads,
                             bool sparsify = true);
};

/// Sequential reference solve. b and x are 4*nrows long; aliasing allowed.
void trsv_serial(const IluFactor& f, std::span<const double> b,
                 std::span<double> x);

/// Level-scheduled solve with `s.nthreads` OpenMP threads.
void trsv_levels(const IluFactor& f, const TrsvSchedules& s,
                 std::span<const double> b, std::span<double> x);

/// Point-to-point synchronized solve with `s.nthreads` OpenMP threads.
/// If the runtime delivers a smaller team than the schedule was built for
/// (thread limits, nested regions), falls back to the level-scheduled
/// solve instead of deadlocking on rows owned by absent threads.
void trsv_p2p(const IluFactor& f, const TrsvSchedules& s,
              std::span<const double> b, std::span<double> x);

}  // namespace fun3d
