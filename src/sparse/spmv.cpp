#include "sparse/spmv.hpp"

#include <cassert>

namespace fun3d {
namespace {

inline void row_product(const Bcsr4& a, idx_t r, const double* x, double* y) {
  double acc[kBs] = {0, 0, 0, 0};
  for (idx_t nz = a.row_begin(r); nz < a.row_end(r); ++nz) {
    const double* blk = a.block(nz);
    const double* xj = x + static_cast<std::size_t>(a.col(nz)) * kBs;
    for (int i = 0; i < kBs; ++i)
      for (int j = 0; j < kBs; ++j) acc[i] += blk[i * kBs + j] * xj[j];
  }
  for (int i = 0; i < kBs; ++i) y[r * kBs + i] = acc[i];
}

}  // namespace

void spmv_serial(const Bcsr4& a, std::span<const double> x,
                 std::span<double> y) {
  const idx_t n = a.num_rows();
  assert(x.size() == static_cast<std::size_t>(n) * kBs && y.size() == x.size());
  for (idx_t r = 0; r < n; ++r) row_product(a, r, x.data(), y.data());
}

void spmv_parallel(const Bcsr4& a, std::span<const double> x,
                   std::span<double> y, int nthreads) {
  const idx_t n = a.num_rows();
  assert(x.size() == static_cast<std::size_t>(n) * kBs && y.size() == x.size());
  const double* xp = x.data();
  double* yp = y.data();
#pragma omp parallel for schedule(static) num_threads(nthreads)
  for (idx_t r = 0; r < n; ++r) row_product(a, r, xp, yp);
}

}  // namespace fun3d
