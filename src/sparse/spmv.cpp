// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt): the scalar reference must not contract mul+add into
// FMA, because the SIMD microkernel uses explicit multiply-then-add and the
// two paths are required to be bitwise-identical.
#include "sparse/spmv.hpp"

#include <cassert>

#include "parallel/workshare.hpp"
#include "simd/vecd.hpp"

namespace fun3d {
namespace {

inline void row_product(const Bcsr4& a, idx_t r, const double* x, double* y) {
  double acc[kBs] = {0, 0, 0, 0};
  for (idx_t nz = a.row_begin(r); nz < a.row_end(r); ++nz) {
    const double* blk = a.block(nz);
    const double* xj = x + static_cast<std::size_t>(a.col(nz)) * kBs;
    for (int i = 0; i < kBs; ++i)
      for (int j = 0; j < kBs; ++j) acc[i] += blk[i * kBs + j] * xj[j];
  }
  for (int i = 0; i < kBs; ++i) y[r * kBs + i] = acc[i];
}

// Lane indices of block column j: lane i reads blk[i*kBs + j].
alignas(16) constexpr idx_t kColIdx[kBs][kBs] = {
    {0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14}, {3, 7, 11, 15}};

// SIMD 4x4 block microkernel: one Vec4d accumulator whose lanes are the
// block rows i, so lane i performs exactly the scalar acc[i] chain — same
// (nz, j) order, explicit mul+add — and the result matches row_product bit
// for bit. The column gather is the transpose access blk[{j,4+j,8+j,12+j}].
inline void row_product_simd(const Bcsr4& a, idx_t r, const double* x,
                             double* y) {
  const idx_t nnz = a.num_blocks();
  Vec4d acc;
  for (idx_t nz = a.row_begin(r); nz < a.row_end(r); ++nz) {
    const double* blk = a.block(nz);
    const double* xj = x + static_cast<std::size_t>(a.col(nz)) * kBs;
    if (nz + 1 < nnz) {
      // Next 4x4 block (two cache lines) and its x column. Blocks are
      // stored contiguously, so this also warms the first block of the
      // next row at a row boundary.
      const double* nblk = a.block(nz + 1);
      prefetch_l1(nblk);
      prefetch_l1(nblk + 8);
      prefetch_l1(x + static_cast<std::size_t>(a.col(nz + 1)) * kBs);
    }
    for (int j = 0; j < kBs; ++j)
      acc = acc + Vec4d::gather(blk, kColIdx[j]) * Vec4d(xj[j]);
  }
  acc.store(y + static_cast<std::size_t>(r) * kBs);
}

}  // namespace

void spmv_serial(const Bcsr4& a, std::span<const double> x,
                 std::span<double> y) {
  const idx_t n = a.num_rows();
  assert(x.size() == static_cast<std::size_t>(n) * kBs && y.size() == x.size());
  for (idx_t r = 0; r < n; ++r) row_product(a, r, x.data(), y.data());
}

void spmv_parallel(const Bcsr4& a, std::span<const double> x,
                   std::span<double> y, int nthreads) {
  const idx_t n = a.num_rows();
  assert(x.size() == static_cast<std::size_t>(n) * kBs && y.size() == x.size());
  const double* xp = x.data();
  double* yp = y.data();
  parallel_ranges(
      n, nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t r = b; r < e; ++r) row_product_simd(a, r, xp, yp);
      },
      "spmv");
}

}  // namespace fun3d
