#include "sparse/trsv.hpp"

#include <atomic>
#include <algorithm>
#include <cassert>

#include <omp.h>

#include "parallel/spinwait.hpp"
#include "parallel/team.hpp"
#include "trace/trace.hpp"

namespace fun3d {
namespace {

/// Instrumented-or-plain wait: the untraced path is exactly wait_progress;
/// the traced path counts spins/yields and records a spin-wait event
/// attributing the stall to (owner thread, row). `tracing` is hoisted out
/// of the row loop by the callers so the disabled cost is one branch.
inline void wait_dep(bool tracing, const std::atomic<idx_t>& counter,
                     idx_t owner, idx_t row) {
  if (!tracing) {
    wait_progress(counter, row);
    return;
  }
  const std::int64_t t0 = trace::now_ns();
  const WaitStats ws = wait_progress_counted(counter, row);
  trace::spin_wait(owner, row, ws.spins, ws.yields, t0);
}

/// Forward-substitute one row: x_i = b_i - sum_{j<i} L_ij x_j.
inline void fwd_row(const IluFactor& f, idx_t i, const double* b, double* x) {
  double acc[kBs];
  for (int c = 0; c < kBs; ++c) acc[c] = b[i * kBs + c];
  for (idx_t nz = f.row_begin(i); nz < f.diag_index(i); ++nz)
    block_gemv_sub(f.block(nz), x + static_cast<std::size_t>(f.col(nz)) * kBs,
                   acc);
  for (int c = 0; c < kBs; ++c) x[i * kBs + c] = acc[c];
}

/// Back-substitute one row: x_i = invD_i (x_i - sum_{j>i} U_ij x_j).
inline void bwd_row(const IluFactor& f, idx_t i, double* x) {
  double acc[kBs];
  for (int c = 0; c < kBs; ++c) acc[c] = x[i * kBs + c];
  for (idx_t nz = f.diag_index(i) + 1; nz < f.row_end(i); ++nz)
    block_gemv_sub(f.block(nz), x + static_cast<std::size_t>(f.col(nz)) * kBs,
                   acc);
  block_gemv(f.block(f.diag_index(i)), acc, x + static_cast<std::size_t>(i) * kBs);
}

}  // namespace

TrsvSchedules TrsvSchedules::build(const IluFactor& f, idx_t nthreads,
                                   bool sparsify) {
  TrsvSchedules s;
  s.nthreads = nthreads;
  const CsrGraph fwd = f.lower_deps();
  const CsrGraph bwd = f.upper_deps_mirrored();
  s.fwd_levels = build_level_schedule(fwd);
  s.bwd_levels = build_level_schedule(bwd);
  s.fwd_owner = partition_natural(f.num_rows(), nthreads);
  s.bwd_owner = partition_natural(f.num_rows(), nthreads);
  s.fwd_plan = build_p2p_plan(fwd, s.fwd_owner, sparsify);
  s.bwd_plan = build_p2p_plan(bwd, s.bwd_owner, sparsify);
  return s;
}

void trsv_serial(const IluFactor& f, std::span<const double> b,
                 std::span<double> x) {
  const idx_t n = f.num_rows();
  assert(b.size() == static_cast<std::size_t>(n) * kBs);
  assert(x.size() == b.size());
  for (idx_t i = 0; i < n; ++i) fwd_row(f, i, b.data(), x.data());
  for (idx_t i = n - 1; i >= 0; --i) bwd_row(f, i, x.data());
}

void trsv_levels(const IluFactor& f, const TrsvSchedules& s,
                 std::span<const double> b, std::span<double> x) {
  const idx_t n = f.num_rows();
  const double* bp = b.data();
  double* xp = x.data();
  // Level scheduling uses only `omp for` worksharing — correct for any
  // delivered team size; run_team_workshare records capped runs.
  run_team_workshare(
      s.nthreads,
      [&] {
        for (idx_t l = 0; l < s.fwd_levels.nlevels; ++l) {
          const auto rows = s.fwd_levels.level(l);
          if (omp_get_thread_num() == 0)
            trace::wavefront("trsv_fwd", l, static_cast<idx_t>(rows.size()));
#pragma omp for schedule(static)
          for (std::int64_t k = 0; k < static_cast<std::int64_t>(rows.size());
               ++k)
            fwd_row(f, rows[static_cast<std::size_t>(k)], bp, xp);
          // implicit barrier at end of omp for
        }
        for (idx_t l = 0; l < s.bwd_levels.nlevels; ++l) {
          const auto rows = s.bwd_levels.level(l);
          if (omp_get_thread_num() == 0)
            trace::wavefront("trsv_bwd", l, static_cast<idx_t>(rows.size()));
#pragma omp for schedule(static)
          for (std::int64_t k = 0; k < static_cast<std::int64_t>(rows.size());
               ++k)
            bwd_row(f, n - 1 - rows[static_cast<std::size_t>(k)], xp);
        }
      },
      "trsv_levels");
}

void trsv_p2p(const IluFactor& f, const TrsvSchedules& s,
              std::span<const double> b, std::span<double> x) {
  const idx_t n = f.num_rows();
  const idx_t nt = s.nthreads;
  std::vector<std::atomic<idx_t>> progress(static_cast<std::size_t>(nt));
  for (auto& p : progress) p.store(-1, std::memory_order_relaxed);
  const double* bp = b.data();
  double* xp = x.data();

  // The schedule assumes exactly `nt` in-order workers synchronizing
  // through spin waits and mid-sweep barriers, so its shards can be
  // neither round-robined nor serialized: on shortfall run_team aborts
  // (no shard executes) and we fall back to the level-scheduled solve,
  // whose `omp for` worksharing is correct for any delivered team size
  // and still produces the exact serial result.
  const bool tracing = trace::enabled();  // hoisted out of the row loops
  const TeamRun run = run_team(
      nt,
      [&](idx_t t) {
        // Forward: process owned rows in ascending order.
        for (idx_t i = 0; i < n; ++i) {
          if (s.fwd_owner.part[static_cast<std::size_t>(i)] != t) continue;
          for (idx_t w = s.fwd_plan.wait_ptr[i];
               w < s.fwd_plan.wait_ptr[i + 1]; ++w) {
            const idx_t owner =
                s.fwd_plan.wait_thread[static_cast<std::size_t>(w)];
            const idx_t row = s.fwd_plan.wait_row[static_cast<std::size_t>(w)];
            wait_dep(tracing, progress[static_cast<std::size_t>(owner)], owner,
                     row);
          }
          fwd_row(f, i, bp, xp);
          progress[static_cast<std::size_t>(t)].store(
              i, std::memory_order_release);
        }
#pragma omp barrier
#pragma omp single
        {
          for (auto& p : progress) p.store(-1, std::memory_order_relaxed);
        }
        // implicit barrier after single
        // Backward in mirrored space: mirrored row mi corresponds to row
        // n-1-mi.
        for (idx_t mi = 0; mi < n; ++mi) {
          if (s.bwd_owner.part[static_cast<std::size_t>(mi)] != t) continue;
          for (idx_t w = s.bwd_plan.wait_ptr[mi];
               w < s.bwd_plan.wait_ptr[mi + 1]; ++w) {
            const idx_t owner =
                s.bwd_plan.wait_thread[static_cast<std::size_t>(w)];
            const idx_t row = s.bwd_plan.wait_row[static_cast<std::size_t>(w)];
            wait_dep(tracing, progress[static_cast<std::size_t>(owner)], owner,
                     row);
          }
          bwd_row(f, n - 1 - mi, xp);
          progress[static_cast<std::size_t>(t)].store(
              mi, std::memory_order_release);
        }
      },
      ShortfallPolicy::kAbort, "trsv_p2p");
  if (!run.completed) trsv_levels(f, s, b, x);
}

}  // namespace fun3d
