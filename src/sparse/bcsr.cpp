#include "sparse/bcsr.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fun3d {

Bcsr4 Bcsr4::from_adjacency(const CsrGraph& adj) {
  const idx_t n = adj.num_vertices();
  Bcsr4 m;
  m.rowptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t r = 0; r < n; ++r) {
    auto nb = adj.neighbors(r);
    const bool has_diag = std::binary_search(nb.begin(), nb.end(), r);
    m.rowptr_[static_cast<std::size_t>(r) + 1] =
        m.rowptr_[static_cast<std::size_t>(r)] +
        static_cast<idx_t>(nb.size()) + (has_diag ? 0 : 1);
  }
  m.col_.resize(static_cast<std::size_t>(m.rowptr_.back()));
  m.diag_.resize(static_cast<std::size_t>(n));
  for (idx_t r = 0; r < n; ++r) {
    idx_t w = m.rowptr_[static_cast<std::size_t>(r)];
    bool placed_diag = false;
    for (idx_t c : adj.neighbors(r)) {
      if (!placed_diag && c > r) {
        m.diag_[static_cast<std::size_t>(r)] = w;
        m.col_[static_cast<std::size_t>(w++)] = r;
        placed_diag = true;
      }
      if (c == r) {
        m.diag_[static_cast<std::size_t>(r)] = w;
        placed_diag = true;
      }
      m.col_[static_cast<std::size_t>(w++)] = c;
    }
    if (!placed_diag) {
      m.diag_[static_cast<std::size_t>(r)] = w;
      m.col_[static_cast<std::size_t>(w++)] = r;
    }
    assert(w == m.rowptr_[static_cast<std::size_t>(r) + 1]);
  }
  m.val_.assign(m.col_.size() * kBs2, 0.0);
  return m;
}

idx_t Bcsr4::find(idx_t r, idx_t c) const {
  const auto cols = row_cols(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return -1;
  return rowptr_[r] + static_cast<idx_t>(it - cols.begin());
}

void Bcsr4::set_zero() { std::fill(val_.begin(), val_.end(), 0.0); }

void Bcsr4::add_block(idx_t r, idx_t c, const double* b) {
  const idx_t nz = find(r, c);
  if (nz < 0) throw std::out_of_range("Bcsr4::add_block: entry not in pattern");
  double* dst = block(nz);
  for (int i = 0; i < kBs2; ++i) dst[i] += b[i];
}

void Bcsr4::shift_diagonal(std::span<const double> s) {
  const idx_t n = num_rows();
  assert(static_cast<idx_t>(s.size()) == n);
  for (idx_t r = 0; r < n; ++r) {
    double* d = block(diag_[static_cast<std::size_t>(r)]);
    for (int i = 0; i < kBs; ++i) d[i * kBs + i] += s[static_cast<std::size_t>(r)];
  }
}

CsrGraph Bcsr4::structure() const {
  CsrGraph g;
  g.rowptr = rowptr_;
  g.col = col_;
  return g;
}

}  // namespace fun3d
