// Incomplete LU factorization of BCSR(4x4) matrices with level-of-fill
// (ILU(0), ILU(1), ... — Chow & Saad), the preconditioner of the paper's
// Newton-Krylov-Schwarz solver.
//
// Paper-relevant details implemented here:
//  * diagonal blocks are inverted during factorization and stored
//    (Smith & Zhang [17]) so the solve needs no divisions;
//  * the numeric phase supports a full-length temporary row buffer (the
//    textbook formulation) and the paper's §V-B "compressed temporary
//    buffer" that maps the static access pattern to a short buffer;
//  * the numeric phase itself parallelizes with the same two strategies as
//    the triangular solves (level-scheduled wavefronts and P2P-sparsified
//    row ownership): the dependency DAG of the IKJ elimination is exactly
//    the L-part of the *symbolic* pattern, which is fixed after
//    `symbolic_ilu`, so the schedules are built once and reused across
//    Newton steps;
//  * per-factorization flop/byte counters feed the machine model.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/levels.hpp"
#include "graph/partition.hpp"
#include "graph/sparsify.hpp"
#include "sparse/bcsr.hpp"

namespace fun3d {

/// Factor sparsity pattern: union of original entries and fill entries up to
/// the requested level. `level[nz]` is the level-of-fill of each entry
/// (0 = original).
struct IluPattern {
  CsrGraph rows;            ///< cols per row, sorted, diagonal included
  std::vector<int> level;   ///< per nonzero, aligned with rows.col
  int fill = 0;

  [[nodiscard]] std::size_t nnz() const { return rows.col.size(); }
};

/// Symbolic ILU(k): level-of-fill fill-in over the (diagonal-included)
/// adjacency pattern of A.
IluPattern symbolic_ilu(const CsrGraph& pattern_with_diag, int fill_level);

/// Dependency DAG of the numeric factorization: predecessors of row i are
/// the L-part columns of the symbolic pattern. Identical to
/// `IluFactor::lower_deps()` (the factor copies the pattern verbatim), but
/// computable before any numeric factor exists.
CsrGraph ilu_lower_deps(const IluPattern& pattern);

/// Precomputed schedules for the parallel numeric factorization. Because
/// the pattern is static, these are Newton-step-invariant: build once (the
/// FlowSolver constructor does) and reuse for every refactorization.
struct IluSchedules {
  idx_t nthreads = 1;
  LevelSchedule levels;  ///< wavefronts of the pattern's L-part DAG
  Partition owner;       ///< contiguous row ownership (natural order)
  P2PSyncPlan plan;      ///< sparsified cross-thread waits
  double critical_path = 0;  ///< cost of the longest dependency chain
  double parallelism = 1;    ///< total cost / critical_path (DAG bound)

  /// `sparsify` enables the transitive-reduction pass on the p2p plan;
  /// without it the plan still collapses waits per predecessor thread.
  static IluSchedules build(const IluPattern& pattern, idx_t nthreads,
                            bool sparsify = true);
};

/// Numeric factor: L (unit diagonal, not stored), U, and inverted diagonal
/// blocks stored in-place at the diagonal position.
class IluFactor {
 public:
  [[nodiscard]] idx_t num_rows() const {
    return rowptr_.empty() ? 0 : static_cast<idx_t>(rowptr_.size() - 1);
  }
  [[nodiscard]] std::size_t num_blocks() const { return col_.size(); }

  [[nodiscard]] idx_t row_begin(idx_t r) const { return rowptr_[r]; }
  [[nodiscard]] idx_t row_end(idx_t r) const { return rowptr_[r + 1]; }
  [[nodiscard]] idx_t diag_index(idx_t r) const {
    return diag_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] idx_t col(idx_t nz) const {
    return col_[static_cast<std::size_t>(nz)];
  }
  [[nodiscard]] const double* block(idx_t nz) const {
    return val_.data() + static_cast<std::size_t>(nz) * kBs2;
  }

  /// Dependency DAG of the forward solve: predecessors of row i are the
  /// L-part columns (j < i).
  [[nodiscard]] CsrGraph lower_deps() const;
  /// Dependency DAG of the backward solve in *mirrored* indices
  /// (i' = n-1-i), so the same scheduling machinery applies.
  [[nodiscard]] CsrGraph upper_deps_mirrored() const;

  /// Streaming bytes of one full L+U solve pass (values + indices + x/b).
  [[nodiscard]] std::uint64_t solve_stream_bytes() const;
  /// Flops of one full solve (2*16 per off-diag block + 2*16 diag apply).
  [[nodiscard]] std::uint64_t solve_flops() const;
  /// Flops spent in the last numeric factorization.
  [[nodiscard]] std::uint64_t factor_flops() const { return factor_flops_; }

 private:
  friend IluFactor factorize_ilu(const Bcsr4&, const IluPattern&, bool, bool);
  friend IluFactor factorize_ilu_levels(const Bcsr4&, const IluPattern&,
                                        const IluSchedules&, bool);
  friend IluFactor factorize_ilu_p2p(const Bcsr4&, const IluPattern&,
                                     const IluSchedules&, bool);
  std::vector<idx_t> rowptr_;
  std::vector<idx_t> col_;
  std::vector<idx_t> diag_;
  AVec<double> val_;
  std::uint64_t factor_flops_ = 0;
};

/// Numeric ILU on the given pattern. `compressed_buffer` selects the
/// short-row temporary (paper optimization); `simd` selects the
/// within-block vectorized gemm. All variants produce identical factors.
IluFactor factorize_ilu(const Bcsr4& a, const IluPattern& pattern,
                        bool compressed_buffer = true, bool simd = true);

/// Level-scheduled parallel numeric ILU: rows of each wavefront of
/// `s.levels` factor concurrently (`omp for`), with a barrier per level.
/// Per-row arithmetic is the compressed-buffer serial sequence, so the
/// factor is bitwise-identical to `factorize_ilu`. Worksharing-only body:
/// correct for any delivered team size (capped OpenMP teams included).
IluFactor factorize_ilu_levels(const Bcsr4& a, const IluPattern& pattern,
                               const IluSchedules& s, bool simd = true);

/// Point-to-point synchronized parallel numeric ILU: each planned thread
/// factors its owned rows in ascending order with its own compressed row
/// buffer, spin-waiting on the sparsified cross-thread dependencies of
/// `s.plan`. Bitwise-identical to `factorize_ilu`. If the runtime delivers
/// a smaller team than the schedule was built for, falls back to the
/// serial factorization instead of deadlocking on absent owners.
IluFactor factorize_ilu_p2p(const Bcsr4& a, const IluPattern& pattern,
                            const IluSchedules& s, bool simd = true);

}  // namespace fun3d
