// Block sparse matrix-vector product y = A x for BCSR(4x4) matrices.
// Used by the preconditioned linear solver when operating on the assembled
// first-order Jacobian (the matrix-free path evaluates F'(u)v by residual
// differencing instead; see core/gmres.hpp).
#pragma once

#include <span>

#include "sparse/bcsr.hpp"

namespace fun3d {

void spmv_serial(const Bcsr4& a, std::span<const double> x,
                 std::span<double> y);

/// Row-parallel SpMV over the TeamExecutor (shortfall-robust, traced as
/// "spmv" spans) with a SIMD 4x4 block microkernel: lanes span the block
/// rows, so each lane reproduces the serial accumulation order and the
/// result is bitwise-identical to spmv_serial at every thread count. No
/// write conflicts: each planned shard owns a contiguous row range.
void spmv_parallel(const Bcsr4& a, std::span<const double> x,
                   std::span<double> y, int nthreads);

}  // namespace fun3d
