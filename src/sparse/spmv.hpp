// Block sparse matrix-vector product y = A x for BCSR(4x4) matrices.
// Used by the preconditioned linear solver when operating on the assembled
// first-order Jacobian (the matrix-free path evaluates F'(u)v by residual
// differencing instead; see core/gmres.hpp).
#pragma once

#include <span>

#include "sparse/bcsr.hpp"

namespace fun3d {

void spmv_serial(const Bcsr4& a, std::span<const double> x,
                 std::span<double> y);

/// OpenMP row-parallel SpMV (no write conflicts: each thread owns rows).
void spmv_parallel(const Bcsr4& a, std::span<const double> x,
                   std::span<double> y, int nthreads);

}  // namespace fun3d
