#include "trace/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

namespace fun3d::trace {
namespace {

double sec(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

struct WaitRec {
  int tid = 0;
  std::uint64_t t0 = 0, t1 = 0;
  std::int64_t owner = 0, row = 0;
  int span = -1;  ///< index into the global span list; -1 = unattributed
};

struct SpanRec {
  int tid = 0;
  std::int64_t arg = -1;  ///< planned thread id for team shards
  std::uint64_t t0 = 0, t1 = 0;
  const char* name = nullptr;
  double wait_seconds = 0;         ///< attributed waits
  std::vector<int> waits;          ///< indices into the wait list
};

/// Union length of possibly-overlapping intervals, in seconds.
double union_seconds(std::vector<std::pair<std::uint64_t, std::uint64_t>> iv) {
  if (iv.empty()) return 0;
  std::sort(iv.begin(), iv.end());
  double total = 0;
  std::uint64_t lo = iv[0].first, hi = iv[0].second;
  for (const auto& [a, b] : iv) {
    if (a > hi) {
      total += sec(hi - lo);
      lo = a;
      hi = b;
    } else if (b > hi) {
      hi = b;
    }
  }
  return total + sec(hi - lo);
}

/// Measured critical path of one episode (spans of one kernel invocation,
/// with their attributed waits): each span accumulates its busy time; a
/// wait splices in the owner shard's chain at the moment it resolved.
double episode_critical_path(const std::vector<SpanRec*>& spans,
                             const std::vector<WaitRec>& all_waits) {
  std::vector<double> chain(spans.size(), 0);
  std::vector<std::uint64_t> cursor(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) cursor[i] = spans[i]->t0;
  // All waits of the episode, ordered by resolution time.
  std::vector<std::pair<const WaitRec*, std::size_t>> waits;
  for (std::size_t i = 0; i < spans.size(); ++i)
    for (int w : spans[i]->waits) waits.emplace_back(&all_waits[static_cast<std::size_t>(w)], i);
  std::sort(waits.begin(), waits.end(),
            [](const auto& a, const auto& b) { return a.first->t1 < b.first->t1; });

  auto owner_span = [&](std::int64_t owner, std::uint64_t at) -> std::size_t {
    // Latest-started span of the owner's planned id that had begun by `at`.
    std::size_t best = spans.size();
    for (std::size_t i = 0; i < spans.size(); ++i)
      if (spans[i]->arg == owner && spans[i]->t0 <= at &&
          (best == spans.size() || spans[i]->t0 > spans[best]->t0))
        best = i;
    return best;
  };

  for (const auto& [w, s] : waits) {
    if (w->t0 > cursor[s]) chain[s] += sec(w->t0 - cursor[s]);
    const std::size_t o = owner_span(w->owner, w->t1);
    if (o < spans.size() && o != s) {
      // Owner's chain extended by its busy time since its last event (it
      // published the row we waited for, so it was running until ~t1).
      const std::uint64_t oend = std::min(w->t1, spans[o]->t1);
      const double oc =
          chain[o] + (oend > cursor[o] ? sec(oend - cursor[o]) : 0.0);
      chain[s] = std::max(chain[s], oc);
    }
    cursor[s] = w->t1;
  }
  double cp = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i]->t1 > cursor[i]) chain[i] += sec(spans[i]->t1 - cursor[i]);
    cp = std::max(cp, chain[i]);
  }
  return cp;
}

}  // namespace

TimelineAnalysis TimelineAnalysis::compute(
    const std::vector<ThreadTrace>& threads, std::size_t top_k) {
  TimelineAnalysis a;
  std::vector<SpanRec> spans;
  std::vector<WaitRec> waits;
  std::uint64_t tmin = UINT64_MAX, tmax = 0;

  for (const ThreadTrace& t : threads) {
    ThreadSummary ts;
    ts.tid = t.tid;
    ts.events = t.events.size();
    ts.dropped = t.dropped;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
    for (const Event& e : t.events) {
      tmin = std::min(tmin, e.t0_ns);
      tmax = std::max(tmax, e.t1_ns);
      switch (e.kind) {
        case EventKind::kSpan: {
          SpanRec s;
          s.tid = t.tid;
          s.arg = e.a0;
          s.t0 = e.t0_ns;
          s.t1 = e.t1_ns;
          s.name = e.name;
          spans.push_back(s);
          iv.emplace_back(e.t0_ns, e.t1_ns);
          break;
        }
        case EventKind::kSpinWait: {
          WaitRec w;
          w.tid = t.tid;
          w.t0 = e.t0_ns;
          w.t1 = e.t1_ns;
          w.owner = e.a0;
          w.row = e.a1;
          waits.push_back(w);
          ts.wait_seconds += sec(e.t1_ns - e.t0_ns);
          ts.spin_waits++;
          break;
        }
        case EventKind::kShortfall:
          a.shortfalls++;
          break;
        case EventKind::kWavefront:
          break;
        case EventKind::kResilience:
          a.resilience_instants++;
          break;
      }
    }
    ts.span_seconds = union_seconds(std::move(iv));
    a.total_events += ts.events;
    a.dropped_events += ts.dropped;
    a.threads.push_back(ts);
  }
  if (tmax > tmin) a.total_seconds = sec(tmax - tmin);

  // Attribute each wait to the innermost enclosing span on its thread:
  // the containing span with the latest start (RAII spans nest properly
  // per thread, so that is the innermost).
  std::vector<int> by_t0(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) by_t0[i] = static_cast<int>(i);
  std::sort(by_t0.begin(), by_t0.end(), [&](int x, int y) {
    return spans[static_cast<std::size_t>(x)].t0 <
           spans[static_cast<std::size_t>(y)].t0;
  });
  for (std::size_t wi = 0; wi < waits.size(); ++wi) {
    WaitRec& w = waits[wi];
    // Last span (by t0) starting at or before the wait...
    auto it = std::upper_bound(
        by_t0.begin(), by_t0.end(), w.t0, [&](std::uint64_t v, int sidx) {
          return v < spans[static_cast<std::size_t>(sidx)].t0;
        });
    // ...then walk back to the first one on the same thread containing it.
    while (it != by_t0.begin()) {
      --it;
      SpanRec& s = spans[static_cast<std::size_t>(*it)];
      if (s.tid == w.tid && s.t0 <= w.t0 && w.t1 <= s.t1) {
        w.span = *it;
        s.wait_seconds += sec(w.t1 - w.t0);
        s.waits.push_back(static_cast<int>(wi));
        break;
      }
    }
  }

  // Kernel summaries + per-kernel episodes.
  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t i = 0; i < spans.size(); ++i)
    by_name[spans[i].name != nullptr ? spans[i].name : "?"].push_back(
        static_cast<int>(i));
  for (auto& [name, idxs] : by_name) {
    KernelSummary k;
    k.name = name;
    std::sort(idxs.begin(), idxs.end(), [&](int x, int y) {
      return spans[static_cast<std::size_t>(x)].t0 <
             spans[static_cast<std::size_t>(y)].t0;
    });
    // Cluster into episodes: spans overlapping in time = one invocation.
    std::vector<SpanRec*> episode;
    std::uint64_t ep_end = 0;
    auto flush = [&]() {
      if (episode.empty()) return;
      std::uint64_t lo = UINT64_MAX, hi = 0;
      std::map<std::int64_t, double> shard_busy;  // keyed by planned id
      int live = 0;
      for (SpanRec* s : episode) {
        lo = std::min(lo, s->t0);
        hi = std::max(hi, s->t1);
        const double busy = sec(s->t1 - s->t0) - s->wait_seconds;
        shard_busy[s->arg] += busy > 0 ? busy : 0.0;
        ++live;
      }
      k.wall_seconds += sec(hi - lo);
      double mb = 0;
      for (const auto& [id, b] : shard_busy) mb = std::max(mb, b);
      k.max_shard_busy_seconds += mb;
      k.max_concurrency = std::max(k.max_concurrency, live);
      // The chain measurement only means something for a multi-span
      // episode; a single span's critical path is the span itself.
      k.measured_critical_path_seconds +=
          episode.size() > 1
              ? std::min(episode_critical_path(episode, waits), sec(hi - lo))
              : (sec(hi - lo) - episode[0]->wait_seconds);
      episode.clear();
    };
    for (int si : idxs) {
      SpanRec& s = spans[static_cast<std::size_t>(si)];
      if (!episode.empty() && s.t0 > ep_end) flush();
      episode.push_back(&s);
      ep_end = std::max(ep_end, s.t1);
      k.spans++;
      k.span_seconds += sec(s.t1 - s.t0);
      k.wait_seconds += s.wait_seconds;
      k.waits += s.waits.size();
    }
    flush();
    a.kernels.push_back(std::move(k));
  }

  // Top blocking dependencies: aggregate waits by (kernel, owner, row).
  std::map<std::tuple<std::string, std::int64_t, std::int64_t>,
           std::pair<double, std::uint64_t>>
      agg;
  for (const WaitRec& w : waits) {
    const std::string kernel =
        w.span >= 0 && spans[static_cast<std::size_t>(w.span)].name != nullptr
            ? spans[static_cast<std::size_t>(w.span)].name
            : "?";
    auto& [s, c] = agg[{kernel, w.owner, w.row}];
    s += sec(w.t1 - w.t0);
    c++;
  }
  for (const auto& [key, val] : agg) {
    BlockingDep d;
    d.kernel = std::get<0>(key);
    d.owner = std::get<1>(key);
    d.row = std::get<2>(key);
    d.seconds = val.first;
    d.count = val.second;
    a.top_blocking.push_back(std::move(d));
  }
  std::sort(a.top_blocking.begin(), a.top_blocking.end(),
            [](const BlockingDep& x, const BlockingDep& y) {
              return x.seconds > y.seconds;
            });
  if (a.top_blocking.size() > top_k) a.top_blocking.resize(top_k);
  return a;
}

const KernelSummary* TimelineAnalysis::kernel(const std::string& name) const {
  for (const KernelSummary& k : kernels)
    if (k.name == name) return &k;
  return nullptr;
}

Json TimelineAnalysis::to_json() const {
  Json j = Json::object();
  j["total_seconds"] = Json(total_seconds);
  j["total_events"] = Json(total_events);
  j["dropped_events"] = Json(dropped_events);
  j["shortfalls"] = Json(shortfalls);
  j["resilience_instants"] = Json(resilience_instants);
  Json jt = Json::array();
  for (const ThreadSummary& t : threads) {
    Json e = Json::object();
    e["tid"] = Json(t.tid);
    e["span_seconds"] = Json(t.span_seconds);
    e["busy_seconds"] = Json(t.busy_seconds());
    e["wait_seconds"] = Json(t.wait_seconds);
    e["wait_fraction"] = Json(t.wait_fraction());
    e["spin_waits"] = Json(t.spin_waits);
    e["dropped"] = Json(t.dropped);
    jt.push_back(std::move(e));
  }
  j["threads"] = std::move(jt);
  Json jk = Json::array();
  for (const KernelSummary& k : kernels) {
    Json e = Json::object();
    e["name"] = Json(k.name);
    e["spans"] = Json(k.spans);
    e["span_seconds"] = Json(k.span_seconds);
    e["wait_seconds"] = Json(k.wait_seconds);
    e["wait_fraction"] = Json(k.wait_fraction());
    e["wall_seconds"] = Json(k.wall_seconds);
    e["measured_critical_path_seconds"] = Json(k.measured_critical_path_seconds);
    e["max_shard_busy_seconds"] = Json(k.max_shard_busy_seconds);
    e["effective_parallelism"] = Json(k.effective_parallelism());
    e["max_concurrency"] = Json(k.max_concurrency);
    jk.push_back(std::move(e));
  }
  j["kernels"] = std::move(jk);
  Json jb = Json::array();
  for (const BlockingDep& d : top_blocking) {
    Json e = Json::object();
    e["kernel"] = Json(d.kernel);
    e["owner"] = Json(static_cast<double>(d.owner));
    e["row"] = Json(static_cast<double>(d.row));
    e["seconds"] = Json(d.seconds);
    e["count"] = Json(d.count);
    jb.push_back(std::move(e));
  }
  j["top_blocking"] = std::move(jb);
  return j;
}

std::string TimelineAnalysis::format() const {
  std::string out = "trace timeline analysis:\n";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  %.4fs traced, %llu events (%llu dropped), %llu team "
                "shortfalls\n",
                total_seconds, static_cast<unsigned long long>(total_events),
                static_cast<unsigned long long>(dropped_events),
                static_cast<unsigned long long>(shortfalls));
  out += buf;
  for (const ThreadSummary& t : threads) {
    std::snprintf(buf, sizeof(buf),
                  "  thread %3d: busy %8.4fs  wait %8.4fs  (%5.1f%% waiting, "
                  "%llu spin-waits)\n",
                  t.tid, t.busy_seconds(), t.wait_seconds,
                  100.0 * t.wait_fraction(),
                  static_cast<unsigned long long>(t.spin_waits));
    out += buf;
  }
  for (const KernelSummary& k : kernels) {
    if (k.waits == 0 && k.max_concurrency <= 1) continue;
    std::snprintf(
        buf, sizeof(buf),
        "  kernel %-18s wall %8.4fs  wait %5.1f%%  crit-path %8.4fs  "
        "eff-par %.2f\n",
        k.name.c_str(), k.wall_seconds, 100.0 * k.wait_fraction(),
        k.measured_critical_path_seconds, k.effective_parallelism());
    out += buf;
  }
  for (std::size_t i = 0; i < top_blocking.size(); ++i) {
    const BlockingDep& d = top_blocking[i];
    std::snprintf(buf, sizeof(buf),
                  "  blocking dep #%zu: %s waits on thread %lld past row %lld "
                  "— %.4fs over %llu waits\n",
                  i + 1, d.kernel.c_str(), static_cast<long long>(d.owner),
                  static_cast<long long>(d.row), d.seconds,
                  static_cast<unsigned long long>(d.count));
    out += buf;
  }
  return out;
}

}  // namespace fun3d::trace
