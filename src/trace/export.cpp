#include "trace/export.hpp"

namespace fun3d::trace {
namespace {

/// ns -> Chrome's microsecond timestamps (fractional us preserved).
double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

Json event_json(int tid, const Event& e) {
  Json j = Json::object();
  j["name"] = Json(e.name != nullptr ? e.name : "?");
  j["pid"] = Json(0);
  j["tid"] = Json(tid);
  j["ts"] = Json(us(e.t0_ns));
  Json args = Json::object();
  switch (e.kind) {
    case EventKind::kSpan:
      j["cat"] = Json("span");
      j["ph"] = Json("X");
      j["dur"] = Json(us(e.t1_ns - e.t0_ns));
      if (e.a0 >= 0) args["planned_thread"] = Json(static_cast<double>(e.a0));
      break;
    case EventKind::kSpinWait:
      j["cat"] = Json("wait");
      j["ph"] = Json("X");
      j["dur"] = Json(us(e.t1_ns - e.t0_ns));
      args["owner_thread"] = Json(static_cast<double>(e.a0));
      args["row"] = Json(static_cast<double>(e.a1));
      args["spins"] = Json(static_cast<double>(e.a2));
      args["yields"] = Json(static_cast<double>(e.a3));
      break;
    case EventKind::kShortfall:
      j["cat"] = Json("team");
      j["ph"] = Json("i");
      j["s"] = Json("t");  // thread-scoped instant
      args["planned"] = Json(static_cast<double>(e.a0));
      args["delivered"] = Json(static_cast<double>(e.a1));
      break;
    case EventKind::kWavefront:
      j["cat"] = Json("wavefront");
      j["ph"] = Json("i");
      j["s"] = Json("t");
      args["level"] = Json(static_cast<double>(e.a0));
      args["rows"] = Json(static_cast<double>(e.a1));
      break;
    case EventKind::kResilience:
      j["cat"] = Json("resilience");
      j["ph"] = Json("i");
      j["s"] = Json("t");
      args["step"] = Json(static_cast<double>(e.a0));
      args["detail"] = Json(static_cast<double>(e.a1));
      break;
  }
  if (args.size() > 0) j["args"] = std::move(args);
  return j;
}

}  // namespace

Json chrome_trace_json(const std::vector<ThreadTrace>& threads) {
  Json doc = Json::object();
  Json events = Json::array();
  for (const ThreadTrace& t : threads) {
    // Name the track so Perfetto shows recorder slots, not bare numbers.
    Json meta = Json::object();
    meta["name"] = Json("thread_name");
    meta["ph"] = Json("M");
    meta["pid"] = Json(0);
    meta["tid"] = Json(t.tid);
    Json margs = Json::object();
    margs["name"] = Json("trace-slot-" + std::to_string(t.tid));
    meta["args"] = std::move(margs);
    events.push_back(std::move(meta));
    for (const Event& e : t.events) events.push_back(event_json(t.tid, e));
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = Json("ms");
  Json other = Json::object();
  std::uint64_t dropped = 0;
  for (const ThreadTrace& t : threads) dropped += t.dropped;
  other["dropped_events"] = Json(dropped);
  doc["otherData"] = std::move(other);
  return doc;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<ThreadTrace>& threads,
                        std::string* err) {
  return write_text_file(path, chrome_trace_json(threads).dump() + "\n", err);
}

}  // namespace fun3d::trace
