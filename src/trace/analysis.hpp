// Timeline analysis of a collected trace: per-thread busy/wait fractions,
// per-kernel wait attribution, top blocking p2p dependencies, and the
// MEASURED critical path through the p2p dependency waits.
//
// The measured critical path is computed per "episode" (one overlapping
// group of same-named spans = one kernel invocation): every span carries a
// busy chain; a spin-wait on (owner, row) splices the owner's chain into
// the waiter's at the moment the wait resolved. The longest resulting
// chain is the realized critical path — what actually bounded the
// invocation, as opposed to IluSchedules::critical_path, which is the
// DAG's prediction. Invariants (validated in validate_report):
//   max_shard_busy_seconds <= measured_critical_path_seconds <= wall_seconds
// and the effective parallelism busy/critical-path cannot exceed the
// schedule's predicted DAG parallelism (modulo timing noise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/json.hpp"

namespace fun3d::trace {

struct ThreadSummary {
  int tid = 0;
  double span_seconds = 0;  ///< union of this thread's span intervals
  double wait_seconds = 0;  ///< total time in recorded spin-waits
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t spin_waits = 0;

  [[nodiscard]] double busy_seconds() const {
    return span_seconds > wait_seconds ? span_seconds - wait_seconds : 0.0;
  }
  [[nodiscard]] double wait_fraction() const {
    return span_seconds > 0 ? wait_seconds / span_seconds : 0.0;
  }
};

/// Aggregate over every span sharing one name (a kernel / phase label).
struct KernelSummary {
  std::string name;
  std::uint64_t spans = 0;
  std::uint64_t waits = 0;  ///< spin-waits attributed to these spans
  double span_seconds = 0;  ///< sum of span durations
  double wait_seconds = 0;  ///< sum of attributed wait durations
  double wall_seconds = 0;  ///< sum of episode windows (first t0 to last t1)
  double measured_critical_path_seconds = 0;  ///< sum of episode chains
  double max_shard_busy_seconds = 0;  ///< sum of per-episode busiest shard
  int max_concurrency = 1;  ///< most spans of this name overlapping in time

  [[nodiscard]] double busy_seconds() const {
    return span_seconds > wait_seconds ? span_seconds - wait_seconds : 0.0;
  }
  [[nodiscard]] double wait_fraction() const {
    return span_seconds > 0 ? wait_seconds / span_seconds : 0.0;
  }
  /// busy / measured critical path: the parallelism the timeline actually
  /// realized. Bounded above by the schedule's DAG parallelism.
  [[nodiscard]] double effective_parallelism() const {
    return measured_critical_path_seconds > 0
               ? busy_seconds() / measured_critical_path_seconds
               : 1.0;
  }
};

/// One aggregated blocking dependency: total time threads spent waiting on
/// `owner` to pass `row` inside spans named `kernel`.
struct BlockingDep {
  std::string kernel;
  std::int64_t owner = 0;
  std::int64_t row = 0;
  double seconds = 0;
  std::uint64_t count = 0;
};

struct TimelineAnalysis {
  double total_seconds = 0;  ///< span of the whole trace (first..last event)
  std::uint64_t total_events = 0;
  std::uint64_t dropped_events = 0;
  std::uint64_t shortfalls = 0;
  std::uint64_t resilience_instants = 0;  ///< step rejects/backoffs/ckpts
  std::vector<ThreadSummary> threads;
  std::vector<KernelSummary> kernels;      ///< sorted by name
  std::vector<BlockingDep> top_blocking;   ///< sorted by seconds, descending

  /// Analyzes a collected trace. `top_k` caps top_blocking.
  static TimelineAnalysis compute(const std::vector<ThreadTrace>& threads,
                                  std::size_t top_k = 8);

  [[nodiscard]] const KernelSummary* kernel(const std::string& name) const;

  [[nodiscard]] Json to_json() const;
  /// Human-readable console summary (per-thread fractions, per-kernel wait
  /// shares, top blocking dependencies).
  [[nodiscard]] std::string format() const;
};

}  // namespace fun3d::trace
