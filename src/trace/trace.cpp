#include "trace/trace.hpp"

#include <chrono>
#include <cstddef>

namespace fun3d::trace {
namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/// One thread's ring. Each slot is written by exactly one thread (assigned
/// through a thread_local on first record), so recording needs no locks;
/// the alignment keeps neighbouring cursors off each other's cache line —
/// false sharing there would be a measurement artifact in the very waits
/// we are trying to observe.
struct alignas(64) ThreadBuf {
  Event* ring = nullptr;
  std::size_t cap = 0;
  /// Total events ever written; head = count % cap. Single writer (the
  /// slot's thread); the release store publishes the ring contents so
  /// collect()'s acquire load is correctly ordered on its own, not only
  /// through the caller's OpenMP join.
  std::atomic<std::uint64_t> count{0};
};

constexpr int kMaxThreads = 256;

ThreadBuf g_bufs[kMaxThreads];
std::atomic<int> g_next_slot{0};
std::size_t g_events_per_thread = TraceConfig{}.events_per_thread;
std::chrono::steady_clock::time_point g_epoch;

constexpr int kUnassigned = -1;
constexpr int kExhausted = -2;  // > kMaxThreads recorders: drop, don't share
thread_local int tls_slot = kUnassigned;

int thread_slot() {
  if (tls_slot == kUnassigned) {
    const int s = g_next_slot.fetch_add(1, std::memory_order_relaxed);
    tls_slot = s < kMaxThreads ? s : kExhausted;
  }
  return tls_slot;
}

}  // namespace

void record(const Event& e) {
  const int s = thread_slot();
  if (s < 0) return;
  ThreadBuf& b = g_bufs[s];
  if (b.ring == nullptr) {
    // First event of a thread beyond the preallocated set: one-time
    // allocation, still single-writer (this slot belongs to this thread).
    b.cap = g_events_per_thread;
    b.ring = new Event[b.cap];
    b.count.store(0, std::memory_order_relaxed);
  }
  const std::uint64_t n = b.count.load(std::memory_order_relaxed);
  b.ring[n % b.cap] = e;
  b.count.store(n + 1, std::memory_order_release);
}

}  // namespace detail

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detail::g_epoch)
          .count());
}

void enable(const TraceConfig& cfg) {
  using namespace detail;
  g_enabled.store(false, std::memory_order_relaxed);
  reset();
  g_events_per_thread = cfg.events_per_thread > 0 ? cfg.events_per_thread : 1;
  const std::size_t prealloc =
      cfg.prealloc_threads < kMaxThreads ? cfg.prealloc_threads : kMaxThreads;
  for (std::size_t s = 0; s < prealloc; ++s) {
    g_bufs[s].cap = g_events_per_thread;
    g_bufs[s].ring = new Event[g_events_per_thread];
    g_bufs[s].count.store(0, std::memory_order_relaxed);
  }
  g_epoch = std::chrono::steady_clock::now();
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  using namespace detail;
  for (auto& b : g_bufs) {
    delete[] b.ring;
    b.ring = nullptr;
    b.cap = 0;
    b.count.store(0, std::memory_order_relaxed);
  }
}

std::vector<ThreadTrace> collect() {
  using namespace detail;
  std::vector<ThreadTrace> out;
  for (int s = 0; s < kMaxThreads; ++s) {
    const ThreadBuf& b = g_bufs[s];
    // The acquire pairs with record()'s release store: every ring slot
    // written before the loaded count is visible here.
    const std::uint64_t cnt = b.count.load(std::memory_order_acquire);
    if (b.ring == nullptr || cnt == 0) continue;
    ThreadTrace t;
    t.tid = s;
    const std::uint64_t kept = cnt < b.cap ? cnt : b.cap;
    t.dropped = cnt - kept;
    t.events.reserve(static_cast<std::size_t>(kept));
    // Oldest retained event sits at count % cap once the ring has wrapped.
    const std::uint64_t start = cnt < b.cap ? 0 : cnt % b.cap;
    for (std::uint64_t i = 0; i < kept; ++i)
      t.events.push_back(b.ring[(start + i) % b.cap]);
    out.push_back(std::move(t));
  }
  return out;
}

void spin_wait(std::int64_t owner, std::int64_t row, std::int64_t spins,
               std::int64_t yields, std::uint64_t t0_ns) {
  Event e;
  e.kind = EventKind::kSpinWait;
  e.name = "spin_wait";
  e.t0_ns = t0_ns;
  e.t1_ns = now_ns();
  e.a0 = owner;
  e.a1 = row;
  e.a2 = spins;
  e.a3 = yields;
  detail::record(e);
}

void shortfall(std::int64_t planned, std::int64_t delivered) {
  if (!enabled()) return;
  Event e;
  e.kind = EventKind::kShortfall;
  e.name = "team_shortfall";
  e.t0_ns = e.t1_ns = now_ns();
  e.a0 = planned;
  e.a1 = delivered;
  detail::record(e);
}

void wavefront(const char* name, std::int64_t level, std::int64_t rows) {
  if (!enabled()) return;
  Event e;
  e.kind = EventKind::kWavefront;
  e.name = name;
  e.t0_ns = e.t1_ns = now_ns();
  e.a0 = level;
  e.a1 = rows;
  detail::record(e);
}

void resilience_instant(const char* name, std::int64_t step,
                        std::int64_t detail_arg) {
  if (!enabled()) return;
  Event e;
  e.kind = EventKind::kResilience;
  e.name = name;
  e.t0_ns = e.t1_ns = now_ns();
  e.a0 = step;
  e.a1 = detail_arg;
  detail::record(e);
}

}  // namespace fun3d::trace
