// Per-thread event tracing: the timeline instrument behind `--trace`.
//
// The aggregate PerfReport (counts, totals, means) cannot show the paper's
// central shared-memory claims — that p2p sparsification converts global
// barrier waits into a few cross-thread dependencies (§V), and that hybrid
// tradeoffs hinge on *where* threads stall. Those are timeline phenomena.
// This recorder captures them with a contract tight enough to leave
// enabled in benches:
//
//  * disabled cost: ONE relaxed atomic load per span/instant site (the
//    hot kernels additionally hoist that load out of their row loops, so
//    the per-wait cost is a register test). No allocation, no clock read.
//  * enabled cost: one steady_clock read per span endpoint / instant and
//    a 64-byte store into a preallocated, cache-line-padded, per-thread
//    ring buffer. No locks, no sharing between recording threads.
//  * overflow: the ring keeps the NEWEST events (drops-oldest); the drop
//    count is preserved and surfaced, never silent.
//
// Collection contract: `collect()` (and `disable()` + `collect()`) may only
// be called while no traced parallel region is active — joining an OpenMP
// region happens-before the caller's next statement, which makes the
// buffers safely readable without synchronization in the recorder itself.
//
// Event taxonomy (see DESIGN.md §7):
//  * kSpan      — an RAII interval: solver phase, kernel, or team shard.
//  * kSpinWait  — one p2p dependency wait: owner thread, row, spin/yield
//                 counts, duration. Payload mirrors P2PSyncPlan waits.
//  * kShortfall — a TeamExecutor planned-vs-delivered team shortfall.
//  * kWavefront — a level-scheduled wavefront boundary (level, row count).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace fun3d::trace {

enum class EventKind : std::uint8_t {
  kSpan,
  kSpinWait,
  kShortfall,
  kWavefront,
  kResilience,
};

/// One recorded event. `name` must be a string with static storage
/// duration (kernel labels are literals); only the pointer is stored.
struct Event {
  EventKind kind = EventKind::kSpan;
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;  ///< start, ns since the enable() epoch
  std::uint64_t t1_ns = 0;  ///< end; == t0_ns for point instants
  /// Kind-specific payload:
  ///  kSpan:       a0 = planned thread id of a team shard (-1 otherwise)
  ///  kSpinWait:   a0 = owner thread, a1 = row, a2 = spins, a3 = yields
  ///  kShortfall:  a0 = planned team size, a1 = delivered team size
  ///  kWavefront:  a0 = level index, a1 = rows in the level
  ///  kResilience: a0 = Newton step, a1 = event detail (verdict code for
  ///               step_reject, CFL millionths for cfl_backoff, running
  ///               checkpoint count for checkpoint)
  std::int64_t a0 = -1, a1 = 0, a2 = 0, a3 = 0;
};

struct TraceConfig {
  /// Ring capacity per thread, in events (64 B each). Overflow keeps the
  /// newest events and counts the dropped ones.
  std::size_t events_per_thread = 1u << 14;
  /// Thread slots preallocated at enable(); threads beyond this pay a
  /// one-time allocation on their first recorded event.
  std::size_t prealloc_threads = 16;
};

namespace detail {
/// The single runtime on/off branch. Relaxed: observability, not
/// synchronization — a span that straddles enable/disable is dropped.
extern std::atomic<bool> g_enabled;
void record(const Event& e);
}  // namespace detail

/// Nanoseconds since the enable() epoch (steady clock).
std::uint64_t now_ns();

[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// (Re)starts tracing: resets the epoch, (re)allocates the per-thread
/// rings, clears previous events. Not thread-safe against active recording.
void enable(const TraceConfig& cfg = {});

/// Stops tracing. Events already recorded stay available to collect().
void disable();

/// Drops all recorded events and releases the buffers (tracing must be
/// disabled first).
void reset();

/// All events one thread recorded, oldest retained first.
struct ThreadTrace {
  int tid = 0;  ///< recorder slot index (stable for the thread's lifetime)
  std::uint64_t dropped = 0;  ///< events overwritten by ring overflow
  std::vector<Event> events;
};

/// Snapshot of every thread's retained events (empty slots omitted),
/// ordered by slot. See the collection contract in the file comment.
[[nodiscard]] std::vector<ThreadTrace> collect();

/// RAII span: records one kSpan event on destruction covering the scope's
/// lifetime. When tracing is disabled at construction the destructor is a
/// null-pointer test — no clock read, no allocation.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = -1) {
    if (detail::g_enabled.load(std::memory_order_relaxed)) {
      name_ = name;
      arg_ = arg;
      t0_ = now_ns();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (name_ == nullptr || !enabled()) return;  // disabled mid-span: drop
    Event e;
    e.kind = EventKind::kSpan;
    e.name = name_;
    e.t0_ns = t0_;
    e.t1_ns = now_ns();
    e.a0 = arg_;
    detail::record(e);
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::int64_t arg_ = -1;
};

/// Records one p2p dependency wait that started at `t0_ns` (from now_ns())
/// on `owner`'s progress past `row`. Call only when enabled() — hot kernels
/// hoist the check.
void spin_wait(std::int64_t owner, std::int64_t row, std::int64_t spins,
               std::int64_t yields, std::uint64_t t0_ns);

/// Records a TeamExecutor shortfall (checks enabled() itself; cold path).
void shortfall(std::int64_t planned, std::int64_t delivered);

/// Records a wavefront boundary of a level-scheduled kernel (call from one
/// thread per level; checks enabled() itself).
void wavefront(const char* name, std::int64_t level, std::int64_t rows);

/// Records a solver resilience instant — a step rejection, CFL backoff, or
/// checkpoint write at Newton step `step`. `name` must have static storage
/// duration ("step_reject" / "cfl_backoff" / "checkpoint"); checks
/// enabled() itself (cold path).
void resilience_instant(const char* name, std::int64_t step,
                        std::int64_t detail);

}  // namespace fun3d::trace
