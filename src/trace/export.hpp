// Chrome trace-event export of a collected trace.
//
// The emitted JSON is the Trace Event Format's "JSON object" flavour:
// {"traceEvents": [...], "displayTimeUnit": "ms"} — loadable directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Spans and spin-waits
// become complete ("ph":"X") events with microsecond timestamps; shortfall
// and wavefront markers become thread-scoped instants ("ph":"i").
// Built on src/util/json, so the artifact round-trips through the same
// strict parser that validates perf reports.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/json.hpp"

namespace fun3d::trace {

/// Builds the Chrome trace-event document for the collected threads.
[[nodiscard]] Json chrome_trace_json(const std::vector<ThreadTrace>& threads);

/// Serializes chrome_trace_json() to `path`. False + `err` on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<ThreadTrace>& threads,
                        std::string* err = nullptr);

}  // namespace fun3d::trace
