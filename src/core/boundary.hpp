// Boundary-condition residual and Jacobian contributions. Each boundary
// triangle applies its flux through one third of its area vector at each of
// its vertices (the median-dual boundary closure).
#pragma once

#include <span>

#include "core/fields.hpp"
#include "sparse/bcsr.hpp"

namespace fun3d {

/// Adds slip-wall / far-field fluxes into resid.
void add_boundary_fluxes(const Physics& ph, const TetMesh& m,
                         const FlowFields& fields, std::span<double> resid);

/// Adds the boundary-flux linearization to the diagonal blocks of `jac`.
void add_boundary_jacobian(const Physics& ph, const TetMesh& m,
                           const FlowFields& fields, Bcsr4& jac);

}  // namespace fun3d
