#include "core/newton_driver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <csignal>
#include <limits>

#include "trace/trace.hpp"
#include "util/aligned.hpp"

namespace fun3d {

SolveStats NewtonDriver::run(std::span<double> u,
                             const std::optional<CheckpointMeta>& restart) {
  SolveStats stats;
  resil_ = ResilienceStats{};
  const ResilienceOptions& res_opt = res_;
  const FaultPlan& fault = res_opt.fault;
  const std::size_t nq = backend_.owned_size();
  assert(u.size() == nq);
  AVec<double> r(nq, 0.0), rhs(nq, 0.0), du(nq, 0.0);
  // Last accepted state, restored when a trial step is rejected after the
  // update was already applied.
  AVec<double> u_save(nq, 0.0);

  backend_.eval_residual(u, {r.data(), nq});
  double rnorm = backend_.global_norm({r.data(), nq});
  double r0 = rnorm > 0 ? rnorm : 1.0;
  double cfl = ptc_.cfl0;
  int start_step = 0;
  if (restart.has_value()) {
    // Resume bitwise where the checkpoint left off: its CFL, its step
    // count, and its reference residual for the relative convergence test
    // (rnorm itself is recomputed above and matches the uninterrupted run
    // bit-for-bit — every kernel is deterministic).
    if (restart->cfl > 0) cfl = restart->cfl;
    if (restart->r0 > 0) r0 = restart->r0;
    start_step = static_cast<int>(restart->step);
    stats.steps = start_step;
  }
  stats.residual_history.push_back(rnorm);

  // Fires at most `fault.repeat` attempts of the targeted step (-1 = all).
  auto inject = [&](int target, int step, int attempt) {
    return target >= 0 && target == step &&
           (fault.repeat < 0 || attempt < fault.repeat);
  };
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  // Poisons the locally-owned image of the plan's GLOBAL target entry.
  // Every rank (or the one single rank) counts the injection event, so the
  // resilience counters stay SPMD-identical even when another rank owns
  // the poisoned entry.
  auto poison = [&](AVec<double>& v, int step) {
    const std::size_t g =
        fault_target_index(fault.seed, step, backend_.global_size());
    const std::size_t off = backend_.owned_offset();
    if (g >= off && g - off < nq) v[g - off] = kNaN;
    resil_.injected_faults++;
  };
  bool aborted = false;

  for (int step = start_step; step < ptc_.max_steps && !aborted; ++step) {
    if (rnorm <= ptc_.rtol * r0 || rnorm <= ptc_.atol) {
      stats.converged = true;
      break;
    }
    if (fault.crash_step == step) std::raise(SIGKILL);  // simulated crash
    for (int attempt = 0;; ++attempt) {
      backend_.prepare_step(cfl);

      // Solve J du = -R.
      for (std::size_t i = 0; i < nq; ++i) rhs[i] = -r[i];
      std::fill(du.begin(), du.end(), 0.0);
      LinearOutcome lin = backend_.solve_linear(u, {r.data(), nq},
                                                {rhs.data(), nq},
                                                {du.data(), nq});
      stats.linear_iterations += static_cast<std::uint64_t>(lin.iterations);
      backend_.profile().linear_iterations +=
          static_cast<std::uint64_t>(lin.iterations);
      if (!lin.converged) resil_.linear_nonconverged++;

      // Deterministic fault injection (test/CI harness; default off).
      if (inject(fault.breakdown_step, step, attempt)) {
        lin.breakdown = true;
        lin.converged = false;
        resil_.injected_faults++;
      }
      if (inject(fault.nan_update_step, step, attempt)) poison(du, step);

      StepVerdict verdict = StepVerdict::kAccept;
      if (res_opt.enabled) {
        // The finiteness scan is the one verdict input computed from LOCAL
        // data; reduce it so every rank sees the same flag and branches
        // identically (a single-rank backend's allreduce is the identity).
        const bool update_finite =
            backend_.allreduce_sum(all_finite({du.data(), nq}) ? 0.0
                                                               : 1.0) == 0.0;
        verdict = check_update_health(update_finite, lin, res_opt);
      }
      bool applied = false;
      double rnew = kNaN;
      if (verdict == StepVerdict::kAccept) {
        std::copy(u.begin(), u.end(), u_save.begin());
        backend_.apply_update({du.data(), nq}, u);
        applied = true;
        backend_.eval_residual(u, {r.data(), nq});
        if (inject(fault.nan_residual_step, step, attempt)) poison(r, step);
        rnew = backend_.global_norm({r.data(), nq});
        if (res_opt.enabled)
          verdict = check_residual_health(rnorm, rnew, res_opt);
      }

      if (verdict == StepVerdict::kAccept) {
        cfl = ser_update(cfl, rnorm, rnew, ptc_);
        rnorm = rnew;
        stats.residual_history.push_back(rnorm);
        stats.steps = step + 1;
        backend_.profile().newton_steps++;
        if (res_opt.checkpoint_every > 0 && !res_opt.checkpoint_path.empty() &&
            (step + 1) % res_opt.checkpoint_every == 0) {
          const CheckpointMeta meta{static_cast<std::uint64_t>(step + 1), cfl,
                                    r0};
          backend_.save_state_checkpoint(u, meta);
          resil_.checkpoints_written++;
          trace::resilience_instant(
              "checkpoint", step + 1,
              static_cast<std::int64_t>(resil_.checkpoints_written));
        }
        break;
      }

      // Rejected: count the reason, roll back, back the CFL off, retry —
      // or give up with a diagnosable failure once the budget is spent.
      resil_.rejected_steps++;
      switch (verdict) {
        case StepVerdict::kRejectNonFiniteUpdate:
          resil_.nonfinite_update_rejects++;
          break;
        case StepVerdict::kRejectBreakdown:
          resil_.breakdown_rejects++;
          break;
        case StepVerdict::kRejectLinearStall:
          resil_.stall_rejects++;
          break;
        case StepVerdict::kRejectNonFiniteResidual:
          resil_.nonfinite_residual_rejects++;
          break;
        case StepVerdict::kRejectResidualGrowth:
          resil_.growth_rejects++;
          break;
        case StepVerdict::kAccept:
          break;  // unreachable
      }
      trace::resilience_instant("step_reject", step,
                                static_cast<std::int64_t>(verdict));
      if (applied) std::copy(u_save.begin(), u_save.end(), u.begin());
      // Re-anchor the cached field state (and r) to the rolled-back
      // iterate: the trial update and/or the matrix-free Jacobian-vector
      // perturbations left the backend's fields holding a different —
      // possibly poisoned — state than u, and the next attempt assembles
      // its Jacobian from those fields. Deterministic kernels make this r
      // bit-identical to the one computed at the last accept.
      backend_.eval_residual(u, {r.data(), nq});
      if (attempt >= res_opt.max_retries) {
        stats.failure = SolveFailure::kStepRetriesExhausted;
        stats.failure_detail = "step " + std::to_string(step) + " rejected " +
                               std::to_string(attempt + 1) +
                               "x: " + to_string(verdict);
        aborted = true;
        break;
      }
      const double backed = std::max(cfl * res_opt.cfl_backoff,
                                     res_opt.cfl_floor);
      if (backed < cfl) {
        resil_.backoffs++;
        trace::resilience_instant("cfl_backoff", step,
                                  static_cast<std::int64_t>(backed * 1e6));
      }
      cfl = backed;
      resil_.retries++;
    }
  }
  if (rnorm <= ptc_.rtol * r0 || rnorm <= ptc_.atol) stats.converged = true;
  stats.final_cfl = cfl;
  stats.reference_residual = r0;
  stats.resilience = resil_;
  return stats;
}

}  // namespace fun3d
