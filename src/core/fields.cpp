#include "core/fields.hpp"

namespace fun3d {

FlowFields::FlowFields(const TetMesh& m) : nv(m.num_vertices) {
  const std::size_t n = static_cast<std::size_t>(nv);
  q.assign(n * kNs, 0.0);
  grad.assign(n * kGradStride, 0.0);
  coords.resize(n * 3);
  resid.assign(n * kNs, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    coords[v * 3 + 0] = m.x[v];
    coords[v * 3 + 1] = m.y[v];
    coords[v * 3 + 2] = m.z[v];
  }
}

void FlowFields::set_uniform(const std::array<double, kNs>& state) {
  for (idx_t v = 0; v < nv; ++v)
    for (int s = 0; s < kNs; ++s)
      q[static_cast<std::size_t>(v) * kNs + static_cast<std::size_t>(s)] =
          state[static_cast<std::size_t>(s)];
}

void FlowFields::sync_soa_from_aos() {
  const std::size_t n = static_cast<std::size_t>(nv);
  for (int s = 0; s < kNs; ++s) {
    auto& arr = q_soa[static_cast<std::size_t>(s)];
    arr.resize(n);
    for (std::size_t v = 0; v < n; ++v)
      arr[v] = q[v * kNs + static_cast<std::size_t>(s)];
  }
  for (int g = 0; g < kGradStride; ++g) {
    auto& arr = grad_soa[static_cast<std::size_t>(g)];
    arr.resize(n);
    for (std::size_t v = 0; v < n; ++v)
      arr[v] = grad[v * kGradStride + static_cast<std::size_t>(g)];
  }
}

EdgeArrays::EdgeArrays(const TetMesh& m) : n(m.edges.size()) {
  a.resize(n);
  b.resize(n);
  for (std::size_t e = 0; e < n; ++e) {
    a[e] = m.edges[e].first;
    b[e] = m.edges[e].second;
  }
  nx = m.dual_nx.data();
  ny = m.dual_ny.data();
  nz = m.dual_nz.data();
}

}  // namespace fun3d
