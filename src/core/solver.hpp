// FlowSolver: the public entry point — a pseudo-transient Newton-Krylov-
// Schwarz solver for incompressible Euler flow on an unstructured tet mesh,
// assembled from the substrates:
//
//   residual  = Green-Gauss gradients + MUSCL/Roe edge fluxes + BC fluxes
//   Jacobian  = first-order analytic flux linearization in BCSR(4x4)
//   Krylov    = restarted GMRES, matrix-free F'(u)v by residual differencing
//   precond   = ILU(k) per subdomain block (block-Jacobi / additive Schwarz)
//   stepping  = pseudo-transient continuation with SER CFL growth
//
// Every optimization knob of the paper is a config switch, so "baseline" and
// "optimized" builds of the same solver can be compared (Fig. 8).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/bicgstab.hpp"
#include "core/flux_kernels.hpp"
#include "core/gmres.hpp"
#include "core/gradients_lsq.hpp"
#include "core/newton.hpp"
#include "core/newton_driver.hpp"
#include "core/profile.hpp"
#include "core/resilience.hpp"
#include "core/vtk_io.hpp"
#include "sparse/trsv.hpp"

namespace fun3d {

enum class TrsvMode { kSerial, kLevels, kP2P };

/// Parallelization strategy for the numeric ILU(k) factorization. Same
/// menu as TrsvMode: level-scheduled wavefronts or p2p-sparsified sweeps
/// over the static symbolic pattern's L-part DAG.
enum class IluMode { kSerial, kLevels, kP2P };

/// Gradient reconstruction method: Green-Gauss (midpoint rule, interior-
/// exact) or unweighted least squares (affine-exact everywhere; what FUN3D
/// itself uses for MUSCL).
enum class GradientMethod { kGreenGauss, kLeastSquares };

/// Krylov method for the Newton correction: restarted GMRES (paper default)
/// or BiCGSTAB (short recurrences, constant reductions per iteration).
enum class KrylovMethod { kGmres, kBicgstab };

struct SolverConfig {
  Physics physics;
  FluxScheme scheme = FluxScheme::kRoe;
  bool second_order = true;
  GradientMethod gradient_method = GradientMethod::kGreenGauss;

  // Shared-memory optimization set (paper §V).
  FluxKernelConfig flux;                   ///< layout / SIMD / prefetch
  EdgeStrategy strategy = EdgeStrategy::kReplicationPartitioned;
  int nthreads = 1;
  TrsvMode trsv_mode = TrsvMode::kSerial;
  IluMode ilu_mode = IluMode::kSerial;
  bool sparsify_p2p = true;
  bool compressed_ilu_buffer = true;
  bool simd_ilu = true;
  bool threaded_vecops = true;  ///< false = the PETSc unthreaded primitives

  // Preconditioner.
  int fill_level = 1;      ///< ILU(k)
  idx_t subdomains = 1;    ///< block-Jacobi blocks (contiguous row ranges)

  // Krylov / continuation.
  bool matrix_free = true;
  KrylovMethod krylov = KrylovMethod::kGmres;
  GmresOptions gmres;
  /// Arnoldi-column algorithm (overrides gmres.mode at the solve call):
  /// kPipelined batches each column's reductions into one split-phase
  /// mdot overlapped with the next operator application (DESIGN.md §9).
  GmresMode gmres_mode = GmresMode::kClassical;
  PtcOptions ptc;
  /// Step-control policy: health checks + rejection/backoff/retry,
  /// periodic atomic checkpointing, fault injection (DESIGN.md §8).
  ResilienceOptions resilience;

  /// Out-of-the-box single-thread build (paper baseline): SoA vertex data,
  /// no SIMD, no prefetch, full-length ILU buffer, serial TRSV.
  static SolverConfig baseline();
  /// All shared-memory optimizations on, `nthreads` threads.
  static SolverConfig optimized(int nthreads);
};

// SolveFailure and SolveStats live in core/newton_driver.hpp — the unified
// step driver produces them for every front-end (FlowSolver and the hybrid
// rank masters alike).

class FlowSolver {
 public:
  /// Takes ownership of the mesh (dual metrics must be built).
  FlowSolver(TetMesh mesh, SolverConfig cfg);
  ~FlowSolver();
  FlowSolver(const FlowSolver&) = delete;
  FlowSolver& operator=(const FlowSolver&) = delete;

  /// Runs pseudo-transient continuation to convergence or step limit.
  SolveStats solve();

  /// Loads a checkpoint written by solve()'s periodic checkpointing (or
  /// save_checkpoint with meta) into the fields and arms the next solve()
  /// to continue from it: same step count, CFL, and reference residual —
  /// the resumed run is bitwise-identical to the uninterrupted one. A
  /// legacy checkpoint without meta restarts as a fresh solve from the
  /// stored state. Returns the restored meta. Throws like load_checkpoint.
  CheckpointMeta restore_checkpoint(const std::string& path);

  /// Captures this solver's configuration, kernel profile, edge-plan
  /// statistics, and (when built) TRSV sync-plan statistics into a perf
  /// report. `prefix` qualifies the keys when one report holds several
  /// solver runs (e.g. "baseline.").
  void fill_report(PerfReport& report, const std::string& prefix = "") const;

  /// Steady residual R(q) (time term excluded). `q` and `resid` are
  /// nv*4-long.
  void eval_residual(std::span<const double> q, std::span<double> resid);

  [[nodiscard]] const TetMesh& mesh() const { return mesh_; }
  [[nodiscard]] const FlowFields& fields() const { return fields_; }
  [[nodiscard]] FlowFields& fields() { return fields_; }
  [[nodiscard]] const Profile& profile() const { return profile_; }
  [[nodiscard]] Profile& profile() { return profile_; }
  [[nodiscard]] const SolverConfig& config() const { return cfg_; }
  [[nodiscard]] const EdgeLoopPlan& edge_plan() const { return plan_; }
  /// Factorization schedules (null when ilu_mode == kSerial). Built once
  /// in the constructor — the symbolic pattern never changes.
  [[nodiscard]] const IluSchedules* ilu_schedules() const {
    return ilu_schedules_.get();
  }

 private:
  /// NewtonBackend adapter over this solver (defined in solver.cpp): the
  /// serial-reduction, single-rank end of the unified driver contract.
  class StepBackend;

  void factor_preconditioner();
  void apply_preconditioner(std::span<const double> in,
                            std::span<double> out);

  TetMesh mesh_;
  SolverConfig cfg_;
  FlowFields fields_;
  EdgeArrays edges_;
  EdgeLoopPlan plan_;
  VecOps vec_;
  Profile profile_;

  Bcsr4 jac_;
  std::unique_ptr<LsqGradientOperator> lsq_;
  IluPattern pattern_;
  std::unique_ptr<IluFactor> factor_;
  std::unique_ptr<TrsvSchedules> schedules_;
  std::unique_ptr<IluSchedules> ilu_schedules_;
  AVec<double> dt_shift_;
  AVec<double> wavespeed_;
  ResilienceStats resil_;  ///< last solve's recovery counters
  std::optional<CheckpointMeta> restart_;  ///< armed by restore_checkpoint
};

}  // namespace fun3d
