#include "core/bicgstab.hpp"

#include <cmath>

#include "util/aligned.hpp"

namespace fun3d {

BicgstabResult bicgstab_solve(const LinearOp& apply_a,
                              const LinearOp* precond,
                              std::span<const double> b, std::span<double> x,
                              const BicgstabOptions& opt, const VecOps& vec,
                              Profile* profile) {
  const std::size_t n = b.size();
  BicgstabResult res;
  AVec<double> r(n), rhat(n), p(n, 0.0), v(n, 0.0), s(n), t(n), z(n), y(n);

  auto reduce = [&] {
    if (profile != nullptr) profile->reductions++;
  };
  auto apply_m = [&](std::span<const double> in, std::span<double> out) {
    if (precond != nullptr) {
      (*precond)(in, out);
    } else {
      vec.copy(in, out);
    }
  };

  // r0 = b - A x ; rhat = r0 (shadow residual).
  apply_a(x, {r.data(), n});
  vec.aypx(-1.0, b, {r.data(), n});
  vec.copy({r.data(), n}, {rhat.data(), n});
  double rnorm = vec.norm2({r.data(), n});
  reduce();
  const double bnorm = vec.norm2(b);
  reduce();
  const double ref = bnorm > 0 ? bnorm : 1.0;
  res.relative_residual = rnorm / ref;
  if (res.relative_residual <= opt.rtol || rnorm <= opt.atol) {
    res.converged = true;
    return res;
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  for (int k = 0; k < opt.max_iters; ++k) {
    const double rho_new = vec.dot({rhat.data(), n}, {r.data(), n});
    reduce();
    if (std::fabs(rho_new) < 1e-300) {
      res.breakdown = true;
      return res;
    }
    if (k == 0) {
      vec.copy({r.data(), n}, {p.data(), n});
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      // p = r + beta (p - omega v)
      vec.axpy(-omega, {v.data(), n}, {p.data(), n});
      vec.aypx(beta, {r.data(), n}, {p.data(), n});
    }
    rho = rho_new;

    apply_m({p.data(), n}, {y.data(), n});
    apply_a({y.data(), n}, {v.data(), n});
    const double rhat_v = vec.dot({rhat.data(), n}, {v.data(), n});
    reduce();
    if (std::fabs(rhat_v) < 1e-300) {
      res.breakdown = true;
      return res;
    }
    alpha = rho / rhat_v;
    // s = r - alpha v
    vec.waxpy(-alpha, {v.data(), n}, {r.data(), n}, {s.data(), n});
    const double snorm = vec.norm2({s.data(), n});
    reduce();
    ++res.iterations;
    if (snorm / ref <= opt.rtol || snorm <= opt.atol) {
      vec.axpy(alpha, {y.data(), n}, x);  // x += alpha M^{-1} p
      res.relative_residual = snorm / ref;
      res.converged = true;
      return res;
    }

    apply_m({s.data(), n}, {z.data(), n});
    apply_a({z.data(), n}, {t.data(), n});
    const double tt = vec.dot({t.data(), n}, {t.data(), n});
    reduce();
    const double ts = vec.dot({t.data(), n}, {s.data(), n});
    reduce();
    if (tt < 1e-300) {
      res.breakdown = true;
      return res;
    }
    omega = ts / tt;
    // x += alpha y + omega z ; r = s - omega t
    vec.axpy(alpha, {y.data(), n}, x);
    vec.axpy(omega, {z.data(), n}, x);
    vec.waxpy(-omega, {t.data(), n}, {s.data(), n}, {r.data(), n});
    rnorm = vec.norm2({r.data(), n});
    reduce();
    res.relative_residual = rnorm / ref;
    if (res.relative_residual <= opt.rtol || rnorm <= opt.atol) {
      res.converged = true;
      return res;
    }
    if (std::fabs(omega) < 1e-300) {
      res.breakdown = true;
      return res;
    }
  }
  return res;
}

}  // namespace fun3d
