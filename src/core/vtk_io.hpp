// Legacy-VTK output of meshes and flow solutions (ParaView/VisIt readable),
// and a binary checkpoint format for solver restarts.
#pragma once

#include <span>
#include <string>

#include "mesh/mesh.hpp"

namespace fun3d {

/// Writes the tetrahedral mesh as an ASCII legacy-VTK unstructured grid.
/// With `q` (nv*4: p,u,v,w) attached, adds pressure + velocity point data.
/// Throws std::runtime_error on I/O failure.
void write_vtk(const std::string& path, const TetMesh& m,
               std::span<const double> q = {});

/// Writes only the boundary surface (triangles) with their BC tag as cell
/// data — handy for inspecting the wing bump and wall pressure.
void write_vtk_surface(const std::string& path, const TetMesh& m,
                       std::span<const double> q = {});

/// Binary checkpoint of a solution vector, keyed to the mesh by a
/// topology fingerprint so restarts onto a different mesh are rejected.
void save_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<const double> q);

/// Loads a checkpoint into `q` (must be nv*4). Throws on fingerprint or
/// size mismatch.
void load_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<double> q);

/// Topology fingerprint (vertices, tets, edge hash) used by checkpoints.
std::uint64_t mesh_fingerprint(const TetMesh& m);

}  // namespace fun3d
