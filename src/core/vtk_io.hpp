// Legacy-VTK output of meshes and flow solutions (ParaView/VisIt readable),
// and a binary checkpoint format for solver restarts.
#pragma once

#include <span>
#include <string>

#include "mesh/mesh.hpp"

namespace fun3d {

/// Writes the tetrahedral mesh as an ASCII legacy-VTK unstructured grid.
/// With `q` (nv*4: p,u,v,w) attached, adds pressure + velocity point data.
/// Throws std::runtime_error on I/O failure.
void write_vtk(const std::string& path, const TetMesh& m,
               std::span<const double> q = {});

/// Writes only the boundary surface (triangles) with their BC tag as cell
/// data — handy for inspecting the wing bump and wall pressure.
void write_vtk_surface(const std::string& path, const TetMesh& m,
                       std::span<const double> q = {});

/// Solver restart state carried alongside the solution vector, so a run
/// resumed from a checkpoint continues bitwise-identically to the
/// uninterrupted one: the completed-step count, the continuation CFL, and
/// the reference residual norm ||R_0|| the convergence test is relative
/// to. All-zero for checkpoints written without meta (legacy files), which
/// restart as a fresh solve from the stored state.
struct CheckpointMeta {
  std::uint64_t step = 0;
  double cfl = 0;
  double r0 = 0;
};

/// Binary checkpoint of a solution vector, keyed to the mesh by a
/// topology fingerprint so restarts onto a different mesh are rejected.
/// The write is atomic: data goes to `<path>.tmp`, is flushed and
/// fsync'ed, then renamed over `path` — a crash mid-write can never
/// corrupt the previous checkpoint. With `meta`, appends the solver
/// restart state after the solution payload (readers of the old format
/// ignore the trailing block).
void save_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<const double> q,
                     const CheckpointMeta* meta = nullptr);

/// Loads a checkpoint into `q` (must be nv*4). Throws on fingerprint or
/// size mismatch. With `meta`, fills the solver restart state when the
/// file carries one (all-zero otherwise).
void load_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<double> q, CheckpointMeta* meta = nullptr);

/// Topology fingerprint (vertices, tets, edge hash) used by checkpoints.
std::uint64_t mesh_fingerprint(const TetMesh& m);

}  // namespace fun3d
