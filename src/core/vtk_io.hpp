// Legacy-VTK output of meshes and flow solutions (ParaView/VisIt readable),
// and a binary checkpoint format for solver restarts.
#pragma once

#include <span>
#include <string>

#include "mesh/mesh.hpp"

namespace fun3d {

/// Writes the tetrahedral mesh as an ASCII legacy-VTK unstructured grid.
/// With `q` (nv*4: p,u,v,w) attached, adds pressure + velocity point data.
/// Throws std::runtime_error on I/O failure.
void write_vtk(const std::string& path, const TetMesh& m,
               std::span<const double> q = {});

/// Writes only the boundary surface (triangles) with their BC tag as cell
/// data — handy for inspecting the wing bump and wall pressure.
void write_vtk_surface(const std::string& path, const TetMesh& m,
                       std::span<const double> q = {});

/// Solver restart state carried alongside the solution vector, so a run
/// resumed from a checkpoint continues bitwise-identically to the
/// uninterrupted one: the completed-step count, the continuation CFL, and
/// the reference residual norm ||R_0|| the convergence test is relative
/// to. All-zero for checkpoints written without meta (legacy files), which
/// restart as a fresh solve from the stored state.
///
/// `ranks`/`partition_hash` are the decomposition signature of the writing
/// run: a checkpoint written by a P-rank hybrid solve stores the RENUMBERED
/// global state, so restoring it into a run with a different rank count or
/// partition would silently permute the solution. 0 means "unrecorded"
/// (legacy files) and is never checked.
struct CheckpointMeta {
  std::uint64_t step = 0;
  double cfl = 0;
  double r0 = 0;
  std::uint64_t ranks = 0;           ///< rank count of the writing run
  std::uint64_t partition_hash = 0;  ///< partition_hash() of its ownership
};

/// Binary checkpoint of a solution vector, keyed to the mesh by a
/// topology fingerprint so restarts onto a different mesh are rejected.
/// The write is atomic: data goes to `<path>.tmp`, is flushed and
/// fsync'ed, then renamed over `path` — a crash mid-write can never
/// corrupt the previous checkpoint. With `meta`, appends the solver
/// restart state after the solution payload (readers of the old format
/// ignore the trailing block).
void save_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<const double> q,
                     const CheckpointMeta* meta = nullptr);

/// Loads a checkpoint into `q` (must be nv*4). Throws on fingerprint or
/// size mismatch. With `meta`, fills the solver restart state when the
/// file carries one (all-zero otherwise).
void load_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<double> q, CheckpointMeta* meta = nullptr);

/// Reads ONLY the trailing CheckpointMeta block of a checkpoint file
/// (all-zero when the file carries none), without validating the mesh
/// fingerprint or loading the payload. This is how restore paths inspect
/// the decomposition signature first: a rank-count mismatch also changes
/// the renumbering (hence the fingerprint), and the signature check turns
/// the confusing "different mesh" error into a precise one. Throws on a
/// missing/non-checkpoint file.
CheckpointMeta read_checkpoint_meta(const std::string& path);

/// Decomposition signature hash: FNV-1a over the rank count, the global
/// vertex count, and each rank's first owned (renumbered) vertex id. A
/// single-rank solve hashes {0} with its vertex count.
std::uint64_t partition_hash(std::span<const idx_t> row_begins,
                             idx_t num_vertices);

/// Validates a checkpoint's decomposition signature against the restoring
/// run's. A legacy meta (ranks == 0) always passes; a rank-count or
/// partition-hash mismatch throws std::runtime_error with a message naming
/// both sides. Call before load_checkpoint for precise diagnostics.
void check_checkpoint_signature(const CheckpointMeta& meta, int nranks,
                                std::uint64_t hash);

/// Topology fingerprint (vertices, tets, edge hash) used by checkpoints.
std::uint64_t mesh_fingerprint(const TetMesh& m);

}  // namespace fun3d
