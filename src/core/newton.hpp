// Pseudo-transient continuation (Mulder & Van Leer, paper §II-A2/§II-B):
// a sequence of implicit steps with local time steps Delta t_v = CFL * V_v /
// (sum of incident face spectral radii), CFL grown by switched-evolution-
// relaxation (SER) as the residual drops, driving Delta t -> infinity and
// the iterate to the steady state.
#pragma once

#include <span>

#include "core/fields.hpp"
#include "parallel/edge_partition.hpp"

namespace fun3d {

struct PtcOptions {
  double cfl0 = 10.0;
  double cfl_max = 1e7;
  double cfl_growth_max = 2.0;  ///< SER growth clamp per step
  int max_steps = 100;
  double rtol = 1e-8;  ///< convergence: ||R|| < rtol * ||R_0||
  double atol = 0.0;   ///< absolute floor: ||R|| < atol also converges
                       ///< (needed for restarts from an already-converged
                       ///< state, where ||R_0|| is tiny)
};

/// Per-vertex wave-speed sums: lam[v] = sum over incident dual faces of the
/// spectral radius |Theta|+c (interior edges both sides + boundary pieces).
void compute_wavespeed_sums(const Physics& ph, const TetMesh& m,
                            const EdgeArrays& edges, const FlowFields& fields,
                            std::span<double> lam);

/// dt_scale[v] = V_v / (CFL * dt_v) = lam[v] / CFL — the diagonal shift
/// added to the Jacobian (the V/dt term of eq. (2)).
void compute_dt_shift(std::span<const double> wavespeed_sum, double cfl,
                      std::span<double> shift);

/// SER update: cfl * ||R_prev|| / ||R_now||, clamped to [0.1, growth_max]
/// per step and [min(cfl, cfl0), cfl_max] overall. Non-finite norms take
/// the 0.1 backoff branch (never growth); a CFL the resilience layer
/// pushed below cfl0 recovers gradually instead of snapping back up.
double ser_update(double cfl, double r_prev, double r_now,
                  const PtcOptions& opt);

}  // namespace fun3d
