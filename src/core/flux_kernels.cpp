#include "core/flux_kernels.hpp"

#include <cassert>
#include <cmath>

#ifndef NDEBUG
#include <atomic>
#endif

#include "parallel/team.hpp"
#include "simd/vecd.hpp"

namespace fun3d {
namespace {

// Software-prefetch distances in edges (tuned as in the paper §V-A).
constexpr std::size_t kPrefetchL1 = 8;
constexpr std::size_t kPrefetchL2 = 32;

// ---------------------------------------------------------------------------
// Scalar path
// ---------------------------------------------------------------------------

/// Loads the (possibly reconstructed) left/right states of edge e.
template <VertexLayout L>
inline void load_states(const FlowFields& f, idx_t va, idx_t vb,
                        bool second_order, double* ql, double* qr) {
  const std::size_t a = static_cast<std::size_t>(va);
  const std::size_t b = static_cast<std::size_t>(vb);
  if constexpr (L == VertexLayout::kAoS) {
    for (int s = 0; s < kNs; ++s) {
      ql[s] = f.q[a * kNs + static_cast<std::size_t>(s)];
      qr[s] = f.q[b * kNs + static_cast<std::size_t>(s)];
    }
  } else {
    for (int s = 0; s < kNs; ++s) {
      ql[s] = f.q_soa[static_cast<std::size_t>(s)][a];
      qr[s] = f.q_soa[static_cast<std::size_t>(s)][b];
    }
  }
  if (!second_order) return;
  // MUSCL: extrapolate each state to the edge midpoint.
  double dxa[3], dxb[3];
  for (int d = 0; d < 3; ++d) {
    const double xa = f.coords[a * 3 + static_cast<std::size_t>(d)];
    const double xb = f.coords[b * 3 + static_cast<std::size_t>(d)];
    const double mid = 0.5 * (xa + xb);
    dxa[d] = mid - xa;
    dxb[d] = mid - xb;
  }
  for (int s = 0; s < kNs; ++s) {
    double ga[3], gb[3];
    if constexpr (L == VertexLayout::kAoS) {
      for (int d = 0; d < 3; ++d) {
        ga[d] = f.grad[a * kGradStride + static_cast<std::size_t>(s * 3 + d)];
        gb[d] = f.grad[b * kGradStride + static_cast<std::size_t>(s * 3 + d)];
      }
    } else {
      for (int d = 0; d < 3; ++d) {
        ga[d] = f.grad_soa[static_cast<std::size_t>(s * 3 + d)][a];
        gb[d] = f.grad_soa[static_cast<std::size_t>(s * 3 + d)][b];
      }
    }
    ql[s] += ga[0] * dxa[0] + ga[1] * dxa[1] + ga[2] * dxa[2];
    qr[s] += gb[0] * dxb[0] + gb[1] * dxb[1] + gb[2] * dxb[2];
  }
}

template <VertexLayout L>
inline void edge_flux_scalar(const Physics& ph, const FlowFields& f,
                             const EdgeArrays& e, std::size_t ei,
                             const FluxKernelConfig& cfg, double* flux) {
  const idx_t va = e.a[ei], vb = e.b[ei];
  double ql[kNs], qr[kNs];
  load_states<L>(f, va, vb, cfg.second_order, ql, qr);
  const double n[3] = {e.nx[ei], e.ny[ei], e.nz[ei]};
  if (cfg.scheme == FluxScheme::kRoe) {
    roe_flux(ph, ql, qr, n, flux);
  } else {
    rusanov_flux(ph, ql, qr, n, flux);
  }
}

inline void prefetch_vertex(const FlowFields& f, idx_t v, bool second_order,
                            bool to_l1) {
  const std::size_t vs = static_cast<std::size_t>(v);
  const double* q = f.q.data() + vs * kNs;
  const double* g = f.grad.data() + vs * kGradStride;
  const double* x = f.coords.data() + vs * 3;
  if (to_l1) {
    prefetch_l1(q);
    if (second_order) {
      prefetch_l1(g);
      prefetch_l1(g + 8);
      prefetch_l1(x);
    }
  } else {
    prefetch_l2(q);
    if (second_order) {
      prefetch_l2(g);
      prefetch_l2(g + 8);
      prefetch_l2(x);
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD path: 4 edges per batch, one edge per lane (AoS vertex data only).
// Compute is conflict-free into a small buffer; write-out is scalar
// (paper §V-A "Exploring SIMD").
// ---------------------------------------------------------------------------

struct SimdEdgeFlux {
  // fout[lane*kNs + comp]
  alignas(32) double fout[4 * kNs];
};

inline void flux_simd_batch(const Physics& ph, const FlowFields& f,
                            const EdgeArrays& e, const idx_t* eids,
                            const FluxKernelConfig& cfg, SimdEdgeFlux& out) {
  alignas(16) idx_t ia4[4], ib4[4], ia12[4], ib12[4], ia3[4], ib3[4];
  for (int l = 0; l < 4; ++l) {
    const idx_t va = e.a[static_cast<std::size_t>(eids[l])];
    const idx_t vb = e.b[static_cast<std::size_t>(eids[l])];
    ia4[l] = va * kNs;
    ib4[l] = vb * kNs;
    ia12[l] = va * kGradStride;
    ib12[l] = vb * kGradStride;
    ia3[l] = va * 3;
    ib3[l] = vb * 3;
  }
  Vec4d ql[kNs], qr[kNs];
  for (int s = 0; s < kNs; ++s) {
    ql[s] = Vec4d::gather(f.q.data() + s, ia4);
    qr[s] = Vec4d::gather(f.q.data() + s, ib4);
  }
  if (cfg.second_order) {
    Vec4d dxa[3], dxb[3];
    for (int d = 0; d < 3; ++d) {
      const Vec4d xa = Vec4d::gather(f.coords.data() + d, ia3);
      const Vec4d xb = Vec4d::gather(f.coords.data() + d, ib3);
      const Vec4d mid = Vec4d(0.5) * (xa + xb);
      dxa[d] = mid - xa;
      dxb[d] = mid - xb;
    }
    for (int s = 0; s < kNs; ++s) {
      Vec4d accl = ql[s], accr = qr[s];
      for (int d = 0; d < 3; ++d) {
        accl = Vec4d::fma(Vec4d::gather(f.grad.data() + s * 3 + d, ia12),
                          dxa[d], accl);
        accr = Vec4d::fma(Vec4d::gather(f.grad.data() + s * 3 + d, ib12),
                          dxb[d], accr);
      }
      ql[s] = accl;
      qr[s] = accr;
    }
  }
  alignas(16) idx_t eidx[4] = {eids[0], eids[1], eids[2], eids[3]};
  const Vec4d nx = Vec4d::gather(e.nx, eidx);
  const Vec4d ny = Vec4d::gather(e.ny, eidx);
  const Vec4d nz = Vec4d::gather(e.nz, eidx);

  auto theta_of = [&](const Vec4d* q) {
    return nx * q[1] + ny * q[2] + nz * q[3];
  };
  auto flux_of = [&](const Vec4d* q, const Vec4d& theta, Vec4d* fl) {
    fl[0] = Vec4d(ph.beta) * theta;
    fl[1] = Vec4d::fma(q[1], theta, nx * q[0]);
    fl[2] = Vec4d::fma(q[2], theta, ny * q[0]);
    fl[3] = Vec4d::fma(q[3], theta, nz * q[0]);
  };
  const Vec4d thl = theta_of(ql), thr = theta_of(qr);
  Vec4d fl[kNs], fr[kNs];
  flux_of(ql, thl, fl);
  flux_of(qr, thr, fr);

  Vec4d qbar[kNs], dq[kNs];
  for (int s = 0; s < kNs; ++s) {
    qbar[s] = Vec4d(0.5) * (ql[s] + qr[s]);
    dq[s] = qr[s] - ql[s];
  }
  const Vec4d theta = theta_of(qbar);
  const Vec4d s2 = nx * nx + ny * ny + nz * nz;
  const Vec4d c = Vec4d::sqrt(Vec4d::fma(theta, theta, Vec4d(ph.beta) * s2));

  // Apply A(qbar) to a 4-vector of lanes.
  auto apply_a = [&](const Vec4d* x, Vec4d* y) {
    const Vec4d xth = nx * x[1] + ny * x[2] + nz * x[3];
    y[0] = Vec4d(ph.beta) * xth;
    y[1] = theta * x[1] + qbar[1] * xth + nx * x[0];
    y[2] = theta * x[2] + qbar[2] * xth + ny * x[0];
    y[3] = theta * x[3] + qbar[3] * xth + nz * x[0];
  };

  Vec4d fluxv[kNs];
  if (cfg.scheme == FluxScheme::kRusanov) {
    const Vec4d lam = Vec4d::abs(theta) + c;
    for (int s = 0; s < kNs; ++s)
      fluxv[s] = Vec4d(0.5) * (fl[s] + fr[s] - lam * dq[s]);
  } else {
    const Vec4d delta = Vec4d(ph.entropy_eps) * c;
    auto soft = [&](const Vec4d& lam) {
      return Vec4d::sqrt(Vec4d::fma(lam, lam, delta * delta));
    };
    const Vec4d l1 = theta, l2 = theta + c, l3 = theta - c;
    const Vec4d f1 = soft(l1), f2 = soft(l2), f3 = soft(l3);
    const Vec4d d12 = (f2 - f1) / (l2 - l1);
    const Vec4d d13 = (f3 - f1) / (l3 - l1);
    const Vec4d a2 = (d13 - d12) / (l3 - l2);
    const Vec4d a1 = d12 - a2 * (l1 + l2);
    const Vec4d a0 = f1 - l1 * (a1 + a2 * l1);
    Vec4d y1[kNs], y2[kNs];
    apply_a(dq, y1);
    apply_a(y1, y2);
    for (int s = 0; s < kNs; ++s) {
      const Vec4d diss = a0 * dq[s] + a1 * y1[s] + a2 * y2[s];
      fluxv[s] = Vec4d(0.5) * (fl[s] + fr[s] - diss);
    }
  }
  // Transpose to per-lane layout for the scalar write-out.
  for (int s = 0; s < kNs; ++s)
    for (int l = 0; l < 4; ++l) out.fout[l * kNs + s] = fluxv[s].lane(l);
}

// ---------------------------------------------------------------------------
// Accumulation policies
// ---------------------------------------------------------------------------

inline void add_plain(double* resid, idx_t v, const double* flux, double sign) {
  for (int s = 0; s < kNs; ++s)
    resid[static_cast<std::size_t>(v) * kNs + static_cast<std::size_t>(s)] +=
        sign * flux[s];
}

inline void add_atomic(double* resid, idx_t v, const double* flux,
                       double sign) {
  for (int s = 0; s < kNs; ++s) {
    double& slot = resid[static_cast<std::size_t>(v) * kNs +
                         static_cast<std::size_t>(s)];
#pragma omp atomic
    slot += sign * flux[s];
  }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

template <VertexLayout L>
void run_serial(const Physics& ph, const EdgeArrays& e,
                const FluxKernelConfig& cfg, const FlowFields& f,
                double* resid) {
  double flux[kNs];
  for (std::size_t ei = 0; ei < e.n; ++ei) {
    if (cfg.prefetch) {
      if (ei + kPrefetchL1 < e.n) {
        prefetch_vertex(f, e.a[ei + kPrefetchL1], cfg.second_order, true);
        prefetch_vertex(f, e.b[ei + kPrefetchL1], cfg.second_order, true);
      }
      if (ei + kPrefetchL2 < e.n) {
        prefetch_vertex(f, e.a[ei + kPrefetchL2], cfg.second_order, false);
        prefetch_vertex(f, e.b[ei + kPrefetchL2], cfg.second_order, false);
      }
    }
    edge_flux_scalar<L>(ph, f, e, ei, cfg, flux);
    add_plain(resid, e.a[ei], flux, +1.0);
    add_plain(resid, e.b[ei], flux, -1.0);
  }
}

void run_serial_simd(const Physics& ph, const EdgeArrays& e,
                     const FluxKernelConfig& cfg, const FlowFields& f,
                     double* resid) {
  SimdEdgeFlux buf;
  std::size_t ei = 0;
  for (; ei + 4 <= e.n; ei += 4) {
    if (cfg.prefetch && ei + kPrefetchL1 + 4 <= e.n) {
      for (std::size_t k = 0; k < 4; ++k) {
        prefetch_vertex(f, e.a[ei + kPrefetchL1 + k], cfg.second_order, true);
        prefetch_vertex(f, e.b[ei + kPrefetchL1 + k], cfg.second_order, true);
      }
    }
    idx_t eids[4] = {static_cast<idx_t>(ei), static_cast<idx_t>(ei + 1),
                     static_cast<idx_t>(ei + 2), static_cast<idx_t>(ei + 3)};
    flux_simd_batch(ph, f, e, eids, cfg, buf);
    for (int l = 0; l < 4; ++l) {
      add_plain(resid, e.a[ei + static_cast<std::size_t>(l)],
                buf.fout + l * kNs, +1.0);
      add_plain(resid, e.b[ei + static_cast<std::size_t>(l)],
                buf.fout + l * kNs, -1.0);
    }
  }
  double flux[kNs];
  for (; ei < e.n; ++ei) {
    edge_flux_scalar<VertexLayout::kAoS>(ph, f, e, ei, cfg, flux);
    add_plain(resid, e.a[ei], flux, +1.0);
    add_plain(resid, e.b[ei], flux, -1.0);
  }
}

template <VertexLayout L>
void run_atomics(const Physics& ph, const EdgeArrays& e,
                 const EdgeLoopPlan& plan, const FluxKernelConfig& cfg,
                 const FlowFields& f, double* resid) {
  // Atomic accumulation is order-independent, so a capped team can
  // round-robin the planned edge ranges.
  run_team(plan.nthreads, [&](idx_t t) {
    const std::size_t begin =
        static_cast<std::size_t>(plan.edge_begin[static_cast<std::size_t>(t)]);
    const std::size_t end = static_cast<std::size_t>(
        plan.edge_begin[static_cast<std::size_t>(t) + 1]);
    double flux[kNs];
    for (std::size_t ei = begin; ei < end; ++ei) {
      edge_flux_scalar<L>(ph, f, e, ei, cfg, flux);
      add_atomic(resid, e.a[ei], flux, +1.0);
      add_atomic(resid, e.b[ei], flux, -1.0);
    }
  });
}

/// Owner-only writes over per-thread (replicated) edge lists.
template <VertexLayout L, bool Simd>
void run_replicated(const Physics& ph, const EdgeArrays& e,
                    const EdgeLoopPlan& plan, const FluxKernelConfig& cfg,
                    const FlowFields& f, double* resid) {
  // Shard t writes only vertices owned by planned thread t, so shards are
  // write-disjoint and safe to round-robin over a capped team.
  run_team(plan.nthreads, [&](idx_t t) {
    const auto mine = plan.edges_of(t);
    const auto* owner = plan.vertex_owner.data();
    if constexpr (Simd) {
      SimdEdgeFlux buf;
      std::size_t k = 0;
      for (; k + 4 <= mine.size(); k += 4) {
        if (cfg.prefetch && k + kPrefetchL1 + 4 <= mine.size()) {
          for (std::size_t d = 0; d < 4; ++d) {
            const std::size_t pe =
                static_cast<std::size_t>(mine[k + kPrefetchL1 + d]);
            prefetch_vertex(f, e.a[pe], cfg.second_order, true);
            prefetch_vertex(f, e.b[pe], cfg.second_order, true);
          }
        }
        flux_simd_batch(ph, f, e, &mine[k], cfg, buf);
        for (int l = 0; l < 4; ++l) {
          const std::size_t ei =
              static_cast<std::size_t>(mine[k + static_cast<std::size_t>(l)]);
          if (owner[e.a[ei]] == t)
            add_plain(resid, e.a[ei], buf.fout + l * kNs, +1.0);
          if (owner[e.b[ei]] == t)
            add_plain(resid, e.b[ei], buf.fout + l * kNs, -1.0);
        }
      }
      double flux[kNs];
      for (; k < mine.size(); ++k) {
        const std::size_t ei = static_cast<std::size_t>(mine[k]);
        edge_flux_scalar<VertexLayout::kAoS>(ph, f, e, ei, cfg, flux);
        if (owner[e.a[ei]] == t) add_plain(resid, e.a[ei], flux, +1.0);
        if (owner[e.b[ei]] == t) add_plain(resid, e.b[ei], flux, -1.0);
      }
    } else {
      double flux[kNs];
      for (std::size_t k = 0; k < mine.size(); ++k) {
        if (cfg.prefetch && k + kPrefetchL1 < mine.size()) {
          const std::size_t pe =
              static_cast<std::size_t>(mine[k + kPrefetchL1]);
          prefetch_vertex(f, e.a[pe], cfg.second_order, true);
          prefetch_vertex(f, e.b[pe], cfg.second_order, true);
        }
        const std::size_t ei = static_cast<std::size_t>(mine[k]);
        edge_flux_scalar<L>(ph, f, e, ei, cfg, flux);
        if (owner[e.a[ei]] == t) add_plain(resid, e.a[ei], flux, +1.0);
        if (owner[e.b[ei]] == t) add_plain(resid, e.b[ei], flux, -1.0);
      }
    }
  });
}

template <VertexLayout L>
void run_colored(const Physics& ph, const EdgeArrays& e,
                 const EdgeLoopPlan& plan, const FluxKernelConfig& cfg,
                 const FlowFields& f, double* resid) {
  // The colour loop never indexes the plan by thread id: `omp for`
  // worksharing covers every iteration for any delivered team size, which
  // the debug counter below asserts. run_team_workshare still records a
  // capped team so the event is observable.
#ifndef NDEBUG
  std::atomic<std::uint64_t> visited{0};
#endif
  run_team_workshare(plan.nthreads, [&] {
    double flux[kNs];
    for (const auto& cls : plan.color_classes) {
#pragma omp for schedule(static)
      for (std::int64_t k = 0; k < static_cast<std::int64_t>(cls.size()); ++k) {
        const std::size_t ei =
            static_cast<std::size_t>(cls[static_cast<std::size_t>(k)]);
        edge_flux_scalar<L>(ph, f, e, ei, cfg, flux);
        add_plain(resid, e.a[ei], flux, +1.0);
        add_plain(resid, e.b[ei], flux, -1.0);
#ifndef NDEBUG
        visited.fetch_add(1, std::memory_order_relaxed);
#endif
      }
    }
  });
#ifndef NDEBUG
  assert(visited.load(std::memory_order_relaxed) == e.n &&
         "colour classes must cover every edge exactly once per sweep");
#endif
}

}  // namespace

void compute_edge_fluxes(const Physics& ph, const EdgeArrays& edges,
                         const EdgeLoopPlan& plan, const FluxKernelConfig& cfg,
                         const FlowFields& fields, std::span<double> resid) {
  assert(resid.size() >= static_cast<std::size_t>(fields.nv) * kNs);
  assert(!(cfg.simd && cfg.layout == VertexLayout::kSoA) &&
         "SIMD flux requires AoS vertex data");
  double* r = resid.data();

  if (plan.nthreads <= 1) {
    if (cfg.simd) {
      run_serial_simd(ph, edges, cfg, fields, r);
    } else if (cfg.layout == VertexLayout::kAoS) {
      run_serial<VertexLayout::kAoS>(ph, edges, cfg, fields, r);
    } else {
      run_serial<VertexLayout::kSoA>(ph, edges, cfg, fields, r);
    }
    return;
  }
  switch (plan.strategy) {
    case EdgeStrategy::kAtomics:
      if (cfg.layout == VertexLayout::kAoS)
        run_atomics<VertexLayout::kAoS>(ph, edges, plan, cfg, fields, r);
      else
        run_atomics<VertexLayout::kSoA>(ph, edges, plan, cfg, fields, r);
      break;
    case EdgeStrategy::kReplicationNatural:
    case EdgeStrategy::kReplicationPartitioned:
      if (cfg.simd)
        run_replicated<VertexLayout::kAoS, true>(ph, edges, plan, cfg, fields,
                                                 r);
      else if (cfg.layout == VertexLayout::kAoS)
        run_replicated<VertexLayout::kAoS, false>(ph, edges, plan, cfg,
                                                  fields, r);
      else
        run_replicated<VertexLayout::kSoA, false>(ph, edges, plan, cfg,
                                                  fields, r);
      break;
    case EdgeStrategy::kColoring:
      if (cfg.layout == VertexLayout::kAoS)
        run_colored<VertexLayout::kAoS>(ph, edges, plan, cfg, fields, r);
      else
        run_colored<VertexLayout::kSoA>(ph, edges, plan, cfg, fields, r);
      break;
  }
}

double flux_flops_per_edge(const FluxKernelConfig& cfg) {
  // Analytic operation counts of the scalar implementation.
  double flops = 0;
  flops += 2 * 20.0;  // F(qL), F(qR)
  if (cfg.scheme == FluxScheme::kRoe) {
    flops += 8 + 10 + 12;   // qbar, wavespeeds+c, softened |lambda| x3
    flops += 15;            // interpolation coefficients
    flops += 2 * 28;        // A applied twice
    flops += 4 * 6 + 4 * 4; // dissipation combine + final average
  } else {
    flops += 8 + 10 + 4 * 6;
  }
  if (cfg.second_order) flops += 9 + 2 * kNs * 7;  // midpoints + extrapolation
  return flops;
}

void trace_flux_accesses(const EdgeArrays& edges,
                         std::span<const idx_t> edge_order,
                         const FluxKernelConfig& cfg, const FlowFields& fields,
                         CacheSim& cache) {
  auto addr = [](const void* p) {
    return reinterpret_cast<std::uint64_t>(p);
  };
  for (idx_t eid : edge_order) {
    const std::size_t ei = static_cast<std::size_t>(eid);
    // Edge data: endpoints + dual normal, streamed.
    cache.access(addr(&edges.a[ei]), sizeof(idx_t));
    cache.access(addr(&edges.b[ei]), sizeof(idx_t));
    cache.access(addr(&edges.nx[ei]), 8);
    cache.access(addr(&edges.ny[ei]), 8);
    cache.access(addr(&edges.nz[ei]), 8);
    for (const idx_t v : {edges.a[ei], edges.b[ei]}) {
      const std::size_t vs = static_cast<std::size_t>(v);
      if (cfg.layout == VertexLayout::kAoS) {
        cache.access(addr(&fields.q[vs * kNs]), kNs * 8);
        if (cfg.second_order) {
          cache.access(addr(&fields.grad[vs * kGradStride]), kGradStride * 8);
          cache.access(addr(&fields.coords[vs * 3]), 3 * 8);
        }
      } else {
        for (int s = 0; s < kNs; ++s)
          cache.access(addr(&fields.q_soa[static_cast<std::size_t>(s)][vs]), 8);
        if (cfg.second_order) {
          for (int g = 0; g < kGradStride; ++g)
            cache.access(
                addr(&fields.grad_soa[static_cast<std::size_t>(g)][vs]), 8);
          cache.access(addr(&fields.coords[vs * 3]), 3 * 8);
        }
      }
      // Residual read-modify-write.
      cache.access(addr(&fields.resid[vs * kNs]), kNs * 8);
    }
  }
}

}  // namespace fun3d
