#include "core/limiter.hpp"

#include <algorithm>
#include <cmath>

namespace fun3d {
namespace {

inline double venkat(double d, double dm, double eps2) {
  // d = unlimited increment, dm = allowed bound (same sign side).
  const double num = (dm * dm + eps2) + 2.0 * dm * d;
  const double den = dm * dm + 2.0 * d * d + dm * d + eps2;
  return den > 0 ? num / den : 1.0;
}

}  // namespace

void compute_venkat_limiter(const TetMesh& m, const EdgeArrays& edges,
                            const EdgeLoopPlan& plan, const FlowFields& f,
                            const LimiterOptions& opt,
                            std::span<double> phi) {
  const std::size_t nv = static_cast<std::size_t>(f.nv);
  (void)m;     // reserved for volume-based length scales
  (void)plan;  // the two sweeps below are cheap; serial is fine at any size
  // Pass 1: neighbour min/max deltas per vertex/state.
  AVec<double> dmax(nv * kNs, 0.0), dmin(nv * kNs, 0.0);
  for (std::size_t ei = 0; ei < edges.n; ++ei) {
    const std::size_t a = static_cast<std::size_t>(edges.a[ei]);
    const std::size_t b = static_cast<std::size_t>(edges.b[ei]);
    for (int s = 0; s < kNs; ++s) {
      const double d = f.q[b * kNs + static_cast<std::size_t>(s)] -
                       f.q[a * kNs + static_cast<std::size_t>(s)];
      auto& xa = dmax[a * kNs + static_cast<std::size_t>(s)];
      auto& na = dmin[a * kNs + static_cast<std::size_t>(s)];
      auto& xb = dmax[b * kNs + static_cast<std::size_t>(s)];
      auto& nb = dmin[b * kNs + static_cast<std::size_t>(s)];
      xa = std::max(xa, d);
      na = std::min(na, d);
      xb = std::max(xb, -d);
      nb = std::min(nb, -d);
    }
  }
  // Pass 2: phi = min over incident face increments.
  std::fill(phi.begin(), phi.end(), 1.0);
  for (std::size_t ei = 0; ei < edges.n; ++ei) {
    const std::size_t a = static_cast<std::size_t>(edges.a[ei]);
    const std::size_t b = static_cast<std::size_t>(edges.b[ei]);
    double dxa[3], dxb[3], h2 = 0;
    for (int d = 0; d < 3; ++d) {
      const double xa = f.coords[a * 3 + static_cast<std::size_t>(d)];
      const double xb = f.coords[b * 3 + static_cast<std::size_t>(d)];
      const double mid = 0.5 * (xa + xb);
      dxa[d] = mid - xa;
      dxb[d] = mid - xb;
      h2 += (xb - xa) * (xb - xa);
    }
    const double h = std::sqrt(h2);
    const double eps2 = std::pow(opt.k * h, 3);
    for (int s = 0; s < kNs; ++s) {
      for (int side = 0; side < 2; ++side) {
        const std::size_t v = side == 0 ? a : b;
        const double* dx = side == 0 ? dxa : dxb;
        const double* g = f.grad.data() + v * kGradStride +
                          static_cast<std::size_t>(s * 3);
        const double delta = g[0] * dx[0] + g[1] * dx[1] + g[2] * dx[2];
        double p = 1.0;
        if (delta > 1e-300) {
          p = venkat(delta, dmax[v * kNs + static_cast<std::size_t>(s)],
                     eps2);
        } else if (delta < -1e-300) {
          p = venkat(delta, dmin[v * kNs + static_cast<std::size_t>(s)],
                     eps2);
        }
        double& slot = phi[v * kNs + static_cast<std::size_t>(s)];
        slot = std::min(slot, std::clamp(p, 0.0, 1.0));
      }
    }
  }
}

}  // namespace fun3d
