// Solution field storage in both layouts studied by the paper (§V-A "Data
// structures"):
//  * AoS vertex data (the optimized choice): per-vertex state packed as
//    q[v*4..], gradients as grad[v*12..], coordinates as coords[v*3..] —
//    one vector load per vertex, best reuse.
//  * SoA mirrors (the baseline comparison): one array per component.
// Edge data is always SoA (streamed sequentially — paper's optimized edge
// layout); the mesh's dual normals are already stored that way.
#pragma once

#include <array>

#include "core/physics.hpp"
#include "mesh/mesh.hpp"

namespace fun3d {

/// grad layout: grad[v*12 + s*3 + d] = d q_s / d x_d.
inline constexpr int kGradStride = kNs * 3;

struct FlowFields {
  idx_t nv = 0;
  AVec<double> q;       ///< nv*4, AoS
  AVec<double> grad;    ///< nv*12, AoS
  AVec<double> coords;  ///< nv*3, AoS
  AVec<double> resid;   ///< nv*4

  // SoA mirrors (filled by sync_soa_from_aos; used only by the baseline
  // layout kernels and layout-comparison benches).
  std::array<AVec<double>, kNs> q_soa;
  std::array<AVec<double>, kGradStride> grad_soa;

  explicit FlowFields(const TetMesh& m);

  void set_uniform(const std::array<double, kNs>& state);
  void sync_soa_from_aos();
};

/// SoA copies of the edge list (endpoints + dual normals are gathered /
/// streamed by every edge kernel).
struct EdgeArrays {
  AVec<idx_t> a, b;
  const double* nx = nullptr;  ///< borrowed from the mesh (already SoA)
  const double* ny = nullptr;
  const double* nz = nullptr;
  std::size_t n = 0;

  explicit EdgeArrays(const TetMesh& m);
};

}  // namespace fun3d
