// First-order flux Jacobian assembly into BCSR(4x4) — the preconditioning
// matrix of the Newton-Krylov-Schwarz solver ("derived from a lower-order,
// sparser and more diffusive discretization", paper §II-B). The "Jacobian"
// kernel of Fig. 5/8 (7% of baseline time).
#pragma once

#include "core/fields.hpp"
#include "parallel/edge_partition.hpp"
#include "sparse/bcsr.hpp"

namespace fun3d {

/// Builds the BCSR pattern for the mesh (vertex adjacency + diagonal).
Bcsr4 make_jacobian_matrix(const TetMesh& m);

/// Assembles the first-order (no reconstruction) interior-flux Jacobian into
/// `jac` (zeroed first). Threading uses the replication plan (owner rows);
/// any other plan strategy falls back to serial assembly.
void assemble_jacobian(const Physics& ph, const EdgeArrays& edges,
                       const EdgeLoopPlan& plan, const FlowFields& fields,
                       FluxScheme scheme, Bcsr4& jac);

/// Analytic flops per edge of Jacobian assembly (machine-model input).
double jacobian_flops_per_edge();

}  // namespace fun3d
