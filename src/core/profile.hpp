// Kernel-level profiling of the solver: the machinery behind the paper's
// Fig. 5 (baseline profile) and Fig. 8 (kernel-wise speedups).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/timer.hpp"

namespace fun3d {

/// Canonical kernel names used across the solver and benches.
namespace kernel {
inline constexpr const char* kFlux = "flux";
inline constexpr const char* kGradient = "gradient";
inline constexpr const char* kJacobian = "jacobian";
inline constexpr const char* kIlu = "ilu";
inline constexpr const char* kTrsv = "trsv";
inline constexpr const char* kVecOps = "vecops";
inline constexpr const char* kOther = "other";
}  // namespace kernel

struct Profile {
  StopwatchSet timers;
  std::uint64_t newton_steps = 0;
  std::uint64_t linear_iterations = 0;
  std::uint64_t residual_evals = 0;
  /// Global reductions performed (dots + norms): the netsim Allreduce count.
  std::uint64_t reductions = 0;

  /// Fraction of total time per kernel (Fig. 5-style breakdown).
  [[nodiscard]] std::map<std::string, double> fractions() const;
  [[nodiscard]] std::string format(const std::string& title) const;
  void clear();
};

}  // namespace fun3d
