// Kernel-level profiling of the solver: the machinery behind the paper's
// Fig. 5 (baseline profile) and Fig. 8 (kernel-wise speedups) — plus the
// machine-readable perf-report layer every bench emits through `--json`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace fun3d {

struct EdgeLoopPlan;
struct P2PSyncPlan;
struct IluSchedules;
struct ResilienceStats;
namespace trace {
struct TimelineAnalysis;
}  // namespace trace

/// Canonical kernel names used across the solver and benches.
namespace kernel {
inline constexpr const char* kFlux = "flux";
inline constexpr const char* kGradient = "gradient";
inline constexpr const char* kJacobian = "jacobian";
inline constexpr const char* kIlu = "ilu";
inline constexpr const char* kTrsv = "trsv";
inline constexpr const char* kVecOps = "vecops";
inline constexpr const char* kOther = "other";
}  // namespace kernel

/// Per-solve Krylov accounting filled by gmres_solve: how many Arnoldi
/// columns ran, which algorithmic path produced each of them, and how many
/// *solver-internal* global reductions they cost. `reductions` here counts
/// only the reductions the GMRES algorithm itself issues (cycle-head norm,
/// fused column batches, fallback MGS sequences) — reductions performed
/// inside the operator callback (e.g. the matrix-free FD norm) appear in
/// Profile::reductions but not here, so `reductions_per_column()` isolates
/// the algorithm's synchronization budget the way the netsim cost model
/// needs it.
struct GmresStats {
  std::uint64_t columns = 0;            ///< Arnoldi columns completed
  std::uint64_t pipelined_columns = 0;  ///< columns via the fused 1-reduction path
  std::uint64_t fallback_columns = 0;   ///< columns re-run through classical MGS
  std::uint64_t reductions = 0;         ///< solver-internal global reductions
  double overlap_seconds = 0;  ///< operator time inside the split-phase window
  double column_seconds = 0;   ///< wall time across all Arnoldi columns

  /// Solver-internal reductions per Arnoldi column (0 when no columns ran).
  /// Classical MGS pays j+2 per column j; the pipelined path pays exactly 1.
  [[nodiscard]] double reductions_per_column() const {
    return columns ? static_cast<double>(reductions) /
                         static_cast<double>(columns)
                   : 0.0;
  }
  /// Fraction of Arnoldi-column wall time spent inside the split-phase
  /// overlap window — the measured analogue of the netsim assumption that
  /// pipelining hides the Allreduce behind the next column's operator.
  [[nodiscard]] double overlap_fraction() const {
    return column_seconds > 0 ? overlap_seconds / column_seconds : 0.0;
  }
};

struct Profile {
  StopwatchSet timers;
  std::uint64_t newton_steps = 0;
  std::uint64_t linear_iterations = 0;
  std::uint64_t residual_evals = 0;
  /// Global reductions performed (dots + norms): the netsim Allreduce count.
  std::uint64_t reductions = 0;
  /// Krylov-internal accounting (accumulated across linear solves).
  GmresStats gmres;

  /// Fraction of total time per kernel (Fig. 5-style breakdown). A
  /// zero-total profile yields an all-zero map (never NaN), so reports
  /// built from an unexercised profile stay schema-stable and finite.
  [[nodiscard]] std::map<std::string, double> fractions() const;
  [[nodiscard]] std::string format(const std::string& title) const;
  void clear();
};

/// Schema-neutral summary of one hybrid-rank solve's communication
/// behaviour (filled from comm::CommReport; kept here so PerfReport does
/// not depend on the comm layer). Feeds the `comm.*` report family:
/// params comm.ranks / comm.threads_per_rank / comm.total_ghosts /
/// comm.precond_scope / comm.overlap_halo; counters comm.exchanges /
/// comm.exchange_components / comm.packed_cells / comm.halo_bytes /
/// comm.allreduces / comm.barriers; metrics comm.overlap_seconds /
/// comm.halo_wait_seconds / comm.barrier_wait_seconds /
/// comm.allreduce_wait_seconds / comm.overlap_fraction /
/// comm.exchanges_per_linear_iteration. validate_report cross-checks
/// halo_bytes == 8 * packed_cells, packed_cells == exchange_components *
/// total_ghosts (every rank joins every SPMD exchange round), and
/// overlap_fraction in [0, 1].
struct CommSummary {
  int ranks = 1;
  int threads_per_rank = 1;
  std::uint64_t total_ghosts = 0;
  double precond_scope = 0;  ///< comm::PrecondScope as a numeric param
  bool overlap_halo = false;
  std::uint64_t exchanges = 0;
  std::uint64_t exchange_components = 0;
  std::uint64_t packed_cells = 0;
  std::uint64_t halo_bytes = 0;
  std::uint64_t allreduces = 0;
  std::uint64_t barriers = 0;
  double overlap_seconds = 0;
  double halo_wait_seconds = 0;
  double barrier_wait_seconds = 0;
  double allreduce_wait_seconds = 0;
  double overlap_fraction = 0;
  double exchanges_per_linear_iteration = 0;
};

/// Structured, machine-readable performance report — the artifact behind
/// every bench's `--json <path>` flag and the substrate future perf work
/// reports through. Sections are fixed (schema-stable); keys within a
/// section vary by bench but are deterministic for a given bench + flags.
struct PerfReport {
  static constexpr int kSchemaVersion = 1;

  std::string bench_id;  ///< e.g. "fig7a", "table1", "micro"
  std::string title;     ///< human-readable one-liner

  /// Run metadata strings: hostname, timestamp_utc, compiler, build, omp.
  std::map<std::string, std::string> info;
  /// Numeric run parameters: scale, threads, cores, fill, ...
  std::map<std::string, double> params;

  /// Per-kernel wall seconds and share of total (from a Profile).
  std::map<std::string, double> kernel_seconds;
  std::map<std::string, double> kernel_fractions;
  /// Work counters: newton_steps, linear_iterations, residual_evals,
  /// reductions, plus bench-specific counts.
  std::map<std::string, std::uint64_t> counters;
  /// Edge-plan / sync-plan statistics: replication_overhead,
  /// load_imbalance, processed_edges, raw/reduced cross-thread deps.
  std::map<std::string, double> plan_stats;
  /// Machine-model predictions (modelled seconds, speedups, bandwidths).
  std::map<std::string, double> model;
  /// Bench-specific measured values (host seconds, rates, ratios).
  std::map<std::string, double> metrics;

  /// Report skeleton with environment metadata (hostname, UTC timestamp,
  /// compiler, build type, OpenMP max threads) pre-filled.
  static PerfReport begin(std::string bench_id, std::string title);

  /// Captures timers + counters from a solver profile. `prefix` qualifies
  /// the keys (e.g. "baseline.") when one report holds several runs.
  void add_profile(const Profile& p, const std::string& prefix = "");
  /// Captures replication/imbalance statistics of an edge-loop plan.
  void add_edge_plan(const EdgeLoopPlan& plan, const std::string& prefix = "");
  /// Captures cross-thread dependency counts of a P2P sync plan.
  void add_p2p_plan(const P2PSyncPlan& plan, const std::string& prefix = "");
  /// Captures the parallel-factorization schedule statistics (level count,
  /// DAG critical path, p2p wait counts) under `<prefix>ilu_factor.*`.
  void add_factor_schedule(const IluSchedules& s,
                           const std::string& prefix = "");
  /// Captures the process-wide team-shortfall statistics (capped OpenMP
  /// teams detected by run_team): `team_shortfall_events` plus the
  /// planned/delivered sizes of the latest shortfall (0/0 when none), so
  /// a capped run is visible in the JSON rather than silent.
  void add_team_stats(const std::string& prefix = "");
  /// Captures the process-wide fused vector-kernel statistics (vecops.hpp)
  /// under `<prefix>vecops.*`: counters for mdot batches/components,
  /// fused orthogonalization calls and capped-team fallbacks, and
  /// fused-vs-unfused sweep counts; metrics for the memory sweeps and
  /// estimated bytes the fusion saved plus `basis_sweeps_per_column`
  /// (1.0 when every MGS column streamed its basis exactly once).
  void add_vecops_stats(const std::string& prefix = "");
  /// Captures the solver's recovery observability (core/resilience.hpp)
  /// under `<prefix>resilience.*` counters: rejected steps with their
  /// per-reason breakdown, retries and effective CFL backoffs, linear
  /// solves that hit their iteration cap, checkpoints written, and faults
  /// the deterministic injector fired. validate_report cross-checks that
  /// the reason counters sum to rejected_steps and that retries/backoffs
  /// never exceed it.
  void add_resilience_stats(const ResilienceStats& s,
                            const std::string& prefix = "");
  /// Captures a hybrid-rank solve's communication summary under the
  /// `<prefix>comm.*` keys (see CommSummary for the family and the
  /// invariants validate_report enforces on it).
  void add_comm_stats(const CommSummary& c, const std::string& prefix = "");
  /// Folds a timeline analysis (trace/analysis.hpp) into the report under
  /// `<prefix>trace.*`: overall and per-kernel wait fractions, measured
  /// critical paths and effective parallelism (metrics), event/drop/
  /// shortfall counts (counters), and the top blocking p2p dependencies
  /// (info, as a human-readable string — their identity is data-dependent,
  /// so they stay out of the numeric schema). validate_report cross-checks
  /// the measured critical-path invariants; compare_reports flags
  /// wait-fraction growth as a synchronization regression.
  void add_trace_analysis(const trace::TimelineAnalysis& a,
                          const std::string& prefix = "");

  [[nodiscard]] Json to_json() const;
  /// Serializes (pretty-printed) to `path`; false + `err` on I/O failure.
  bool write(const std::string& path, std::string* err = nullptr) const;
};

/// Structural + sanity validation of an emitted report: required sections
/// present, schema version supported, numbers finite and in-range, kernel
/// fractions in [0,1] summing to <= 1 (+eps). Returns human-readable
/// problems; empty means valid.
std::vector<std::string> validate_report(const Json& report);

/// Baseline comparison: flags time-like numeric leaves (kernels.seconds,
/// plus metrics/model keys containing "seconds") that grew by more than
/// `rel_tol` relative to `baseline`, and any baseline key that vanished
/// from `current` (schema drift). Returns human-readable regressions;
/// empty means no regression.
std::vector<std::string> compare_reports(const Json& baseline,
                                         const Json& current,
                                         double rel_tol = 0.25);

}  // namespace fun3d
