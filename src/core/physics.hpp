// Incompressible Euler physics with artificial compressibility (paper §II-A):
// state q = (p, u, v, w), governing flux through a dual face with *area-
// scaled* normal n:
//
//   F(q, n) = ( beta*Theta, u*Theta + nx*p, v*Theta + ny*p, w*Theta + nz*p ),
//   Theta   = nx*u + ny*v + nz*w.
//
// Wave speeds are Theta (x2) and Theta +- c with c = sqrt(Theta^2 + beta*S^2),
// S = |n| — the "3x3 eigen-system per face" of the incompressible regime.
//
// The upwind face flux is flux-difference-splitting (Roe [10] form):
//   F_face = 1/2 (F(qL) + F(qR)) - 1/2 |A(q_bar)| (qR - qL)
// with |A| evaluated *exactly* as the quadratic matrix polynomial that
// interpolates |lambda| at the three distinct eigenvalues (A is
// diagonalizable, so p(A) = |A|), with a smooth entropy softening
// |lambda| -> sqrt(lambda^2 + (eps*c)^2). A Rusanov (spectral-radius)
// variant is provided as the cheap comparison scheme.
#pragma once

#include <array>

namespace fun3d {

inline constexpr int kNs = 4;  ///< unknowns per vertex: p,u,v,w

/// Global physics parameters.
struct Physics {
  double beta = 10.0;          ///< artificial compressibility
  double entropy_eps = 0.05;   ///< entropy-fix softening (fraction of c)
  std::array<double, kNs> freestream{1.0, 1.0, 0.0, 0.0};  ///< p,u,v,w
};

enum class FluxScheme { kRoe, kRusanov };

/// Analytic flux F(q, n) with area-scaled normal.
void euler_flux(const Physics& ph, const double* q, const double* n,
                double* f);

/// Analytic flux Jacobian A = dF/dq (row-major 4x4).
void euler_flux_jacobian(const Physics& ph, const double* q, const double* n,
                         double* a);

/// Eigenvalues {Theta, Theta, Theta+c, Theta-c}; returns c.
double euler_wavespeeds(const Physics& ph, const double* q, const double* n,
                        double* lam);

/// Spectral radius |Theta| + c of A(q,n).
double spectral_radius(const Physics& ph, const double* q, const double* n);

/// |A(q,n)| as the interpolating quadratic in A (exact for the
/// diagonalizable A), with smooth entropy softening. Row-major 4x4.
void euler_abs_jacobian(const Physics& ph, const double* q, const double* n,
                        double* absa);

/// Upwind face flux and (optionally) its Jacobians w.r.t. qL and qR using
/// the frozen-|A| linearization dF/dqL = (A(qL) + |A|)/2,
/// dF/dqR = (A(qR) - |A|)/2 (the standard first-order preconditioner
/// Jacobian; "lower-order, sparser, more diffusive" per the paper §II-B).
void roe_flux(const Physics& ph, const double* ql, const double* qr,
              const double* n, double* f, double* dfdl = nullptr,
              double* dfdr = nullptr);

/// Rusanov flux: central + spectral-radius dissipation. Same Jacobian
/// convention when requested.
void rusanov_flux(const Physics& ph, const double* ql, const double* qr,
                  const double* n, double* f, double* dfdl = nullptr,
                  double* dfdr = nullptr);

/// Slip-wall boundary flux through outward area vector n: no normal flow,
/// only pressure acts. dfdq is the 4x4 Jacobian w.r.t. the interior state.
void slip_wall_flux(const Physics& ph, const double* q, const double* n,
                    double* f, double* dfdq = nullptr);

/// Characteristic far-field flux: Rusanov against the freestream state.
void farfield_flux(const Physics& ph, const double* q, const double* n,
                   double* f, double* dfdq = nullptr);

}  // namespace fun3d
