#include "core/resilience.hpp"

#include <cmath>

namespace fun3d {

const char* to_string(StepVerdict v) {
  switch (v) {
    case StepVerdict::kAccept:
      return "accept";
    case StepVerdict::kRejectNonFiniteUpdate:
      return "non-finite update";
    case StepVerdict::kRejectBreakdown:
      return "linear-solver breakdown";
    case StepVerdict::kRejectLinearStall:
      return "linear-solver stall";
    case StepVerdict::kRejectNonFiniteResidual:
      return "non-finite residual norm";
    case StepVerdict::kRejectResidualGrowth:
      return "residual growth";
  }
  return "?";
}

bool all_finite(std::span<const double> v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

StepVerdict check_update_health(std::span<const double> du,
                                const LinearOutcome& lin,
                                const ResilienceOptions& opt) {
  return check_update_health(all_finite(du), lin, opt);
}

StepVerdict check_update_health(bool update_finite, const LinearOutcome& lin,
                                const ResilienceOptions& opt) {
  if (!update_finite) return StepVerdict::kRejectNonFiniteUpdate;
  if (lin.breakdown) return StepVerdict::kRejectBreakdown;
  if (!lin.converged && !(lin.relative_residual < opt.linear_stall_rel))
    return StepVerdict::kRejectLinearStall;
  return StepVerdict::kAccept;
}

StepVerdict check_residual_health(double r_prev, double r_new,
                                  const ResilienceOptions& opt) {
  if (!std::isfinite(r_new)) return StepVerdict::kRejectNonFiniteResidual;
  // A non-finite previous norm cannot anchor a growth test; the non-finite
  // residual was already rejected when it first appeared.
  if (std::isfinite(r_prev) && r_new > opt.growth_reject * r_prev)
    return StepVerdict::kRejectResidualGrowth;
  return StepVerdict::kAccept;
}

std::size_t fault_target_index(unsigned seed, int step, std::size_t n) {
  if (n == 0) return 0;
  // splitmix64 over the (seed, step) pair.
  std::uint64_t z = (static_cast<std::uint64_t>(seed) << 32) ^
                    static_cast<std::uint64_t>(static_cast<unsigned>(step));
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % n);
}

}  // namespace fun3d
