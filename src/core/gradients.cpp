#include "core/gradients.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/team.hpp"
#include "parallel/workshare.hpp"

namespace fun3d {
namespace {

/// Accumulates one edge's Green-Gauss contribution for all states into
/// out_a (+) and/or out_b (-); null pointer skips that side.
inline void edge_grad(const EdgeArrays& e, const FlowFields& f,
                      std::size_t ei, double* out_a, double* out_b) {
  const std::size_t a = static_cast<std::size_t>(e.a[ei]);
  const std::size_t b = static_cast<std::size_t>(e.b[ei]);
  const double n[3] = {e.nx[ei], e.ny[ei], e.nz[ei]};
  for (int s = 0; s < kNs; ++s) {
    const double qf = 0.5 * (f.q[a * kNs + static_cast<std::size_t>(s)] +
                             f.q[b * kNs + static_cast<std::size_t>(s)]);
    for (int d = 0; d < 3; ++d) {
      const double c = n[d] * qf;
      if (out_a != nullptr) out_a[s * 3 + d] += c;
      if (out_b != nullptr) out_b[s * 3 + d] -= c;
    }
  }
}

}  // namespace

void compute_gradients(const TetMesh& m, const EdgeArrays& edges,
                       const EdgeLoopPlan& plan, FlowFields& fields) {
  const std::size_t nv = static_cast<std::size_t>(fields.nv);
  std::fill(fields.grad.begin(), fields.grad.end(), 0.0);
  double* g = fields.grad.data();

  if (plan.nthreads <= 1) {
    for (std::size_t ei = 0; ei < edges.n; ++ei)
      edge_grad(edges, fields, ei,
                g + static_cast<std::size_t>(edges.a[ei]) * kGradStride,
                g + static_cast<std::size_t>(edges.b[ei]) * kGradStride);
  } else {
    switch (plan.strategy) {
      case EdgeStrategy::kAtomics: {
        run_team(plan.nthreads, [&](idx_t t) {
          double local[kGradStride];
          for (idx_t ei = plan.edge_begin[static_cast<std::size_t>(t)];
               ei < plan.edge_begin[static_cast<std::size_t>(t) + 1]; ++ei) {
            std::fill(local, local + kGradStride, 0.0);
            edge_grad(edges, fields, static_cast<std::size_t>(ei), local,
                      nullptr);
            double* ga =
                g + static_cast<std::size_t>(edges.a[static_cast<std::size_t>(ei)]) *
                        kGradStride;
            double* gb =
                g + static_cast<std::size_t>(edges.b[static_cast<std::size_t>(ei)]) *
                        kGradStride;
            for (int i = 0; i < kGradStride; ++i) {
#pragma omp atomic
              ga[i] += local[i];
#pragma omp atomic
              gb[i] -= local[i];
            }
          }
        });
        break;
      }
      case EdgeStrategy::kReplicationNatural:
      case EdgeStrategy::kReplicationPartitioned: {
        run_team(plan.nthreads, [&](idx_t t) {
          const auto* owner = plan.vertex_owner.data();
          for (idx_t eid : plan.edges_of(t)) {
            const std::size_t ei = static_cast<std::size_t>(eid);
            const idx_t va = edges.a[ei], vb = edges.b[ei];
            edge_grad(edges, fields, ei,
                      owner[va] == t
                          ? g + static_cast<std::size_t>(va) * kGradStride
                          : nullptr,
                      owner[vb] == t
                          ? g + static_cast<std::size_t>(vb) * kGradStride
                          : nullptr);
          }
        });
        break;
      }
      case EdgeStrategy::kColoring: {
        // `omp for` worksharing is team-size-agnostic; run_team_workshare
        // only adds shortfall observability.
        run_team_workshare(plan.nthreads, [&] {
          for (const auto& cls : plan.color_classes) {
#pragma omp for schedule(static)
            for (std::int64_t k = 0; k < static_cast<std::int64_t>(cls.size());
                 ++k) {
              const std::size_t ei = static_cast<std::size_t>(
                  cls[static_cast<std::size_t>(k)]);
              edge_grad(edges, fields, ei,
                        g + static_cast<std::size_t>(edges.a[ei]) * kGradStride,
                        g + static_cast<std::size_t>(edges.b[ei]) * kGradStride);
            }
          }
        });
        break;
      }
    }
  }

  // Boundary closure (small surface loop, serial). Each vertex's median
  // piece of the triangle integrates a linear field exactly as
  // A * (22 q_v + 7 q_p + 7 q_q) / 108 — this keeps the gradient exact for
  // affine fields up to and including boundary vertices (the naive
  // q_v * A/3 closure is O(1) wrong there). Constant fields still close:
  // (22+7+7)/108 = 1/3.
  for (std::size_t bf = 0; bf < m.bfaces.size(); ++bf) {
    const double n[3] = {m.bface_nx[bf], m.bface_ny[bf], m.bface_nz[bf]};
    const auto& verts = m.bfaces[bf].v;
    for (int corner = 0; corner < 3; ++corner) {
      const std::size_t vs = static_cast<std::size_t>(verts[static_cast<std::size_t>(corner)]);
      const std::size_t ps = static_cast<std::size_t>(verts[static_cast<std::size_t>((corner + 1) % 3)]);
      const std::size_t qs = static_cast<std::size_t>(verts[static_cast<std::size_t>((corner + 2) % 3)]);
      for (int s = 0; s < kNs; ++s) {
        const double qf = (22.0 * fields.q[vs * kNs + static_cast<std::size_t>(s)] +
                           7.0 * fields.q[ps * kNs + static_cast<std::size_t>(s)] +
                           7.0 * fields.q[qs * kNs + static_cast<std::size_t>(s)]) /
                          108.0;
        for (int d = 0; d < 3; ++d)
          g[vs * kGradStride + static_cast<std::size_t>(s * 3 + d)] +=
              n[d] * qf;
      }
    }
  }
  // Scale by inverse dual volume. Vertex-owned writes, barrier-free:
  // parallel_ranges keeps the loop shortfall-robust and traced.
  const double* vol = m.dual_vol.data();
  parallel_ranges(
      static_cast<idx_t>(nv), plan.nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t v = b; v < e; ++v) {
          const double inv = 1.0 / vol[v];
          for (int i = 0; i < kGradStride; ++i)
            g[static_cast<std::size_t>(v) * kGradStride +
              static_cast<std::size_t>(i)] *= inv;
        }
      },
      "gradients");
}

double gradient_flops_per_edge() {
  // Per state: average (2), 3 multiplies + up to 6 adds.
  return kNs * (2.0 + 3.0 + 6.0);
}

}  // namespace fun3d
