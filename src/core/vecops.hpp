// Threaded vector primitives — the analogues of the PETSc Vec operations
// (VecNorm, VecMDot, VecMAXPY, VecWAXPY, ...) that the paper identifies as
// the unthreaded Amdahl fraction of the Hybrid version (§VI-B3) and that the
// optimized single-node build replaces with threaded implementations.
//
// All reductions are deterministic: per-thread partials combined in thread
// order, so results are independent of scheduling.
#pragma once

#include <span>

namespace fun3d {

struct VecOps {
  int nthreads = 1;

  [[nodiscard]] double dot(std::span<const double> x,
                           std::span<const double> y) const;
  [[nodiscard]] double norm2(std::span<const double> x) const;
  /// y += a*x
  void axpy(double a, std::span<const double> x, std::span<double> y) const;
  /// y = x + a*y
  void aypx(double a, std::span<const double> x, std::span<double> y) const;
  /// w = y + a*x
  void waxpy(double a, std::span<const double> x, std::span<const double> y,
             std::span<double> w) const;
  void scale(double a, std::span<double> x) const;
  void copy(std::span<const double> x, std::span<double> y) const;
  void set(double a, std::span<double> x) const;
  /// y += sum_i a[i] * x[i]  (VecMAXPY)
  void maxpy(std::span<const double> a,
             std::span<const std::span<const double>> xs,
             std::span<double> y) const;
  /// out[i] = dot(x[i], y)  (VecMDot)
  void mdot(std::span<const std::span<const double>> xs,
            std::span<const double> y, std::span<double> out) const;
};

}  // namespace fun3d
