// Threaded vector primitives — the analogues of the PETSc Vec operations
// (VecNorm, VecMDot, VecMAXPY, VecWAXPY, ...) that the paper identifies as
// the unthreaded Amdahl fraction of the Hybrid version (§VI-B3) and that the
// optimized single-node build replaces with threaded implementations.
//
// All reductions are deterministic: per-thread partials combined in thread
// order, so results are independent of scheduling.
//
// The multi-vector operations (mdot, dot_axpy, orthogonalize) are *fused*
// bandwidth kernels: they open one TeamExecutor region and stream the
// operand vectors once instead of once per component, while keeping every
// per-element operation and every partial-combine order identical to the
// unfused dot/axpy/norm2 sequence — so the fused paths are bitwise-equal
// to their unfused references at every thread count, and the fusion is a
// pure memory-traffic optimization. Process-wide VecOpsStats counters make
// the saved sweeps observable (PerfReport::add_vecops_stats).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"  // idx_t

namespace fun3d {

/// Process-wide counters of the fused vector kernels (monotonic, like the
/// team-shortfall stats; reset with reset_vecops_stats). "Sweep" counts
/// one parallel kernel launch that streams its operands end to end; the
/// *_unfused_sweeps numbers are what the same work would have cost as
/// independent dot/axpy/norm2 calls, so `unfused - fused` is the number of
/// full-vector memory sweeps the fusion eliminated.
struct VecOpsStats {
  std::uint64_t mdot_batches = 0;     ///< fused mdot calls
  std::uint64_t mdot_components = 0;  ///< dots folded into those batches
  std::uint64_t orthogonalize_calls = 0;    ///< fused MGS columns
  std::uint64_t orthogonalize_vectors = 0;  ///< basis vectors across calls
  std::uint64_t orthogonalize_fallbacks = 0;  ///< capped-team unfused runs
  std::uint64_t split_batches = 0;    ///< split-phase mdot_start calls
  std::uint64_t split_fallbacks = 0;  ///< capped-team unfused completions
  std::uint64_t fused_sweeps = 0;    ///< kernel launches actually performed
  std::uint64_t unfused_sweeps = 0;  ///< launches the unfused path needs
  std::uint64_t fused_bytes = 0;     ///< est. bytes streamed, fused
  std::uint64_t unfused_bytes = 0;   ///< est. bytes streamed, unfused
};

[[nodiscard]] VecOpsStats vecops_stats();
void reset_vecops_stats();

/// In-flight split-phase batched dot (see VecOps::mdot_start /
/// VecOps::mdot_finish). The start call streams every operand once and
/// leaves per-*planned*-thread partials here; the finish call combines
/// them in planned order. Between the two calls the caller may run
/// unrelated work — the overlap window pipelined GMRES hides its global
/// reduction behind. The operand spans are captured by view: the caller
/// must keep the underlying vectors alive and unmodified until finish.
struct MDotBatch {
  std::vector<std::span<const double>> xs;  ///< captured operand views
  std::span<const double> y;
  std::vector<double> partial;  ///< nt x k, planned-thread-major
  std::size_t k = 0;
  idx_t nt = 1;
  /// True when the single-sweep start region completed. On a capped team
  /// (TeamExecutor kAbort shortfall) it stays false and finish() computes
  /// each component through the shortfall-robust unfused kernels instead —
  /// bitwise-identical per component at any delivered team size.
  bool fused = false;
};

struct VecOps {
  int nthreads = 1;

  [[nodiscard]] double dot(std::span<const double> x,
                           std::span<const double> y) const;
  [[nodiscard]] double norm2(std::span<const double> x) const;
  /// y += a*x
  void axpy(double a, std::span<const double> x, std::span<double> y) const;
  /// y = x + a*y
  void aypx(double a, std::span<const double> x, std::span<double> y) const;
  /// w = y + a*x
  void waxpy(double a, std::span<const double> x, std::span<const double> y,
             std::span<double> w) const;
  void scale(double a, std::span<double> x) const;
  void copy(std::span<const double> x, std::span<double> y) const;
  void set(double a, std::span<double> x) const;
  /// y += sum_i a[i] * x[i]  (VecMAXPY)
  void maxpy(std::span<const double> a,
             std::span<const std::span<const double>> xs,
             std::span<double> y) const;
  /// out[i] = dot(x[i], y)  (VecMDot): one fused sweep — y is streamed
  /// once for the whole batch — bitwise-identical to xs.size() independent
  /// dot() calls. Counts as ONE reduction batch (Profile::reductions).
  void mdot(std::span<const std::span<const double>> xs,
            std::span<const double> y, std::span<double> out) const;
  /// Fused update-then-dot: w += a*x, then returns dot(xn, w) on the
  /// updated w — one sweep of w instead of two. Bitwise-identical to
  /// axpy(a, x, w) followed by dot(xn, w) at the same thread count.
  [[nodiscard]] double dot_axpy(double a, std::span<const double> x,
                                std::span<const double> xn,
                                std::span<double> w) const;
  /// One fused modified-Gram-Schmidt column: for each basis vector v_i in
  /// order, h[i] = dot(v_i, w) against the progressively updated w, then
  /// w -= h[i] * v_i; finally h[basis.size()] = norm2(w) (also returned).
  /// Runs as a SINGLE TeamExecutor region (barrier-separated reduction
  /// steps), so each per-thread chunk of v_i and w is loaded from DRAM
  /// once per column — versus 2(j+1)+1 full-vector sweeps unfused. On a
  /// capped team the region aborts and the call falls back to the unfused
  /// dot/axpy/norm2 sequence; both paths are bitwise-identical. `h` must
  /// have basis.size()+1 entries. The basis dots are sequentially
  /// dependent, so the call performs basis.size()+1 global reductions.
  double orthogonalize(std::span<const std::span<const double>> basis,
                       std::span<double> w, std::span<double> h) const;
  /// Split-phase batched dot: posts the one-sweep partial accumulation of
  /// out[i] = dot(x[i], y) and returns without combining. The caller runs
  /// overlapping work (pipelined GMRES runs the next column's operator
  /// application), then calls mdot_finish to combine the partials in
  /// planned-thread order. start+finish is bitwise-identical to mdot(),
  /// which is itself bitwise-identical to xs.size() independent dot()
  /// calls. The start sweep runs under the TeamExecutor kAbort contract:
  /// a capped team aborts the fused sweep and finish() recomputes through
  /// the shortfall-robust unfused kernels — same bits, one counted
  /// `split_fallbacks` event. Counts as ONE global reduction.
  [[nodiscard]] MDotBatch mdot_start(
      std::span<const std::span<const double>> xs,
      std::span<const double> y) const;
  /// Completes a split-phase batched dot. `out` needs batch.k entries.
  void mdot_finish(MDotBatch& batch, std::span<double> out) const;
};

}  // namespace fun3d
