// BiCGSTAB (van der Vorst) with right preconditioning — the short-recurrence
// alternative to GMRES offered by PETSc's KSP. Unlike restarted GMRES it
// needs constant memory (7 vectors) and exactly 4 global reductions per
// iteration, which matters at scale (paper §VI-B2: the Krylov collectives
// are the scaling limit).
#pragma once

#include "core/gmres.hpp"

namespace fun3d {

struct BicgstabOptions {
  int max_iters = 400;
  double rtol = 1e-3;
  double atol = 1e-13;
};

struct BicgstabResult {
  int iterations = 0;
  double relative_residual = 1.0;
  bool converged = false;
  bool breakdown = false;  ///< rho or omega underflowed (restart advised)
};

/// Solves A x = b with right preconditioning: A M^{-1} (M x) = b. `x` holds
/// the initial guess. `precond` may be null (unpreconditioned).
BicgstabResult bicgstab_solve(const LinearOp& apply_a,
                              const LinearOp* precond,
                              std::span<const double> b, std::span<double> x,
                              const BicgstabOptions& opt, const VecOps& vec,
                              Profile* profile = nullptr);

}  // namespace fun3d
