// Unified pseudo-transient Newton-Krylov step driver (DESIGN.md §8/§10):
// ONE accept/reject loop shared by every solver front-end.
//
// FlowSolver::solve() and HybridSolver's per-rank SPMD loop used to be two
// hand-maintained copies of the same pseudo-transient continuation body —
// and only the single-rank copy had the resilience layer (health checks,
// rollback, CFL backoff, retry budget, periodic checkpointing, fault
// injection). NewtonDriver absorbs that body once; the front-ends supply a
// NewtonBackend that answers the handful of operations whose implementation
// actually differs between one rank and P ranks:
//
//   * eval_residual / prepare_step / solve_linear — the physics, Jacobian,
//     preconditioner, and Krylov machinery (serial or SPMD);
//   * global_norm / allreduce_sum — deterministic global reductions. On the
//     SPMD backend these are planned-order allreduces, so EVERY scalar that
//     steers the driver's control flow (norms, the update-finiteness flag)
//     is bitwise-identical on all ranks and all ranks branch identically —
//     no rank can accept a step another rank rejected;
//   * save_state_checkpoint — the atomic restartable snapshot. The SPMD
//     backend gathers owned slices and writes once from rank 0, inside
//     barriers, so the file is always a complete global state.
//
// The driver itself owns the policy: SER CFL control, the step
// accept/reject verdicts, rollback + re-anchoring, the retry budget,
// checkpoint cadence, restart continuation, and the deterministic fault
// injectors. This is the only ser_update() call site in src/ (lint:
// tools/lint_dup_driver.sh).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/newton.hpp"
#include "core/profile.hpp"
#include "core/resilience.hpp"
#include "core/vtk_io.hpp"

namespace fun3d {

/// Why a solve gave up before converging (beyond simply running out of
/// steps): kStepRetriesExhausted means one step was rejected by the health
/// checks more than resilience.max_retries times in a row — the state left
/// in the fields is the last ACCEPTED iterate, not the poisoned trial.
enum class SolveFailure { kNone = 0, kStepRetriesExhausted };

struct SolveStats {
  bool converged = false;
  int steps = 0;
  std::uint64_t linear_iterations = 0;
  double wall_seconds = 0;
  double final_cfl = 0;
  /// Reference residual the relative convergence test divided by (the
  /// initial ||R||, or the restored checkpoint's). Stored in checkpoint
  /// meta so a restart reproduces the same convergence decisions.
  double reference_residual = 0;
  std::vector<double> residual_history;  ///< ||R|| after each step
  /// Flop-weighted DAG parallelism of the ILU factor (paper Table II).
  double ilu_parallelism = 0;
  /// Diagnosable failure reason + human-readable detail (empty on
  /// success), e.g. "step 7 rejected 5x: non-finite residual norm".
  SolveFailure failure = SolveFailure::kNone;
  std::string failure_detail;
  /// Recovery observability for this solve (also in the PerfReport via
  /// fill_report as the `resilience.*` counters).
  ResilienceStats resilience;
};

/// What a solver front-end must provide for NewtonDriver to run its
/// pseudo-transient loop over it. One instance per solve; the driver calls
/// it from a single thread (each SPMD rank master constructs its own).
class NewtonBackend {
 public:
  virtual ~NewtonBackend() = default;

  /// Entries of the state vector this backend owns (nv*4 on one rank).
  [[nodiscard]] virtual std::size_t owned_size() const = 0;
  /// Entries of the GLOBAL state across all ranks — the domain the fault
  /// injectors pick their target index from, so a plan poisons the same
  /// global entry regardless of how the solve is decomposed.
  [[nodiscard]] virtual std::size_t global_size() const = 0;
  /// Global index of owned entry 0 (0 on a single rank).
  [[nodiscard]] virtual std::size_t owned_offset() const = 0;

  /// Steady residual R(u) over the owned entries. Must be deterministic,
  /// and must leave the backend's cached field state anchored at `u`: the
  /// driver's rollback contract re-evaluates at the rolled-back iterate
  /// precisely to restore that anchor after a rejected trial.
  virtual void eval_residual(std::span<const double> u,
                             std::span<double> r) = 0;
  /// Pseudo-time shift + Jacobian assembly + preconditioner factorization
  /// at the currently anchored state (the last eval_residual argument).
  virtual void prepare_step(double cfl) = 0;
  /// Krylov-solves J du = rhs around the anchored state. `u` and `r` feed
  /// the matrix-free operator; `du` is zero on entry. Charges its global
  /// reductions to profile() itself (the driver charges the iterations).
  virtual LinearOutcome solve_linear(std::span<const double> u,
                                     std::span<const double> r,
                                     std::span<const double> rhs,
                                     std::span<double> du) = 0;
  /// Deterministic global L2 norm of an owned-size vector; counts one
  /// reduction in profile(). SPMD backends return the planned-order
  /// allreduce result — the identical bit pattern on every rank.
  [[nodiscard]] virtual double global_norm(std::span<const double> v) = 0;
  /// Deterministic global sum of one scalar (identity on a single rank).
  /// The driver reduces every locally-computed control-flow predicate
  /// through this, so SPMD ranks always take the same branch.
  [[nodiscard]] virtual double allreduce_sum(double local) = 0;
  /// u += du in the backend's (bitwise-pinned) vector arithmetic.
  virtual void apply_update(std::span<const double> du,
                            std::span<double> u) = 0;
  /// Atomic restartable checkpoint of the owned state. `meta` carries the
  /// driver's step/CFL/r0; the backend completes its decomposition
  /// signature (rank count + partition hash) and performs the write —
  /// collectively on SPMD backends (gather, rank-0 write, barriers), so
  /// every rank returns only once the rename is durable.
  virtual void save_state_checkpoint(std::span<const double> u,
                                     const CheckpointMeta& meta) = 0;
  /// Profile the driver charges newton_steps to.
  [[nodiscard]] virtual Profile& profile() = 0;
};

/// The single pseudo-transient continuation loop (DESIGN.md §8): SER CFL
/// growth on accepted steps, health-checked accept/reject with rollback and
/// bounded retries, periodic checkpointing, restart continuation, and
/// deterministic fault injection. Drives any NewtonBackend.
class NewtonDriver {
 public:
  NewtonDriver(NewtonBackend& backend, const PtcOptions& ptc,
               const ResilienceOptions& res)
      : backend_(backend), ptc_(ptc), res_(res) {}

  /// Runs to convergence, the step limit, or retry exhaustion. `u` holds
  /// the initial owned state on entry and the last ACCEPTED state on
  /// return. `restart` (a restored CheckpointMeta) resumes the step count,
  /// CFL, and reference residual so the continuation is bitwise-identical
  /// to the uninterrupted run. wall_seconds and ilu_parallelism are left
  /// for the caller to fill.
  SolveStats run(std::span<double> u,
                 const std::optional<CheckpointMeta>& restart = std::nullopt);

 private:
  NewtonBackend& backend_;
  PtcOptions ptc_;
  ResilienceOptions res_;
  ResilienceStats resil_;
};

}  // namespace fun3d
