#include "core/boundary.hpp"

namespace fun3d {
namespace {

inline void bface_flux(const Physics& ph, BcTag tag, const double* q,
                       const double* n, double* f, double* dfdq) {
  if (tag == BcTag::kSlipWall) {
    slip_wall_flux(ph, q, n, f, dfdq);
  } else {
    farfield_flux(ph, q, n, f, dfdq);
  }
}

}  // namespace

void add_boundary_fluxes(const Physics& ph, const TetMesh& m,
                         const FlowFields& fields, std::span<double> resid) {
  double f[kNs];
  for (std::size_t bf = 0; bf < m.bfaces.size(); ++bf) {
    const double n3[3] = {m.bface_nx[bf] / 3.0, m.bface_ny[bf] / 3.0,
                          m.bface_nz[bf] / 3.0};
    for (idx_t v : m.bfaces[bf].v) {
      const std::size_t vs = static_cast<std::size_t>(v);
      bface_flux(ph, m.bfaces[bf].tag, &fields.q[vs * kNs], n3, f, nullptr);
      for (int s = 0; s < kNs; ++s)
        resid[vs * kNs + static_cast<std::size_t>(s)] += f[s];
    }
  }
}

void add_boundary_jacobian(const Physics& ph, const TetMesh& m,
                           const FlowFields& fields, Bcsr4& jac) {
  double f[kNs], dfdq[kNs * kNs];
  for (std::size_t bf = 0; bf < m.bfaces.size(); ++bf) {
    const double n3[3] = {m.bface_nx[bf] / 3.0, m.bface_ny[bf] / 3.0,
                          m.bface_nz[bf] / 3.0};
    for (idx_t v : m.bfaces[bf].v) {
      const std::size_t vs = static_cast<std::size_t>(v);
      bface_flux(ph, m.bfaces[bf].tag, &fields.q[vs * kNs], n3, f, dfdq);
      jac.add_block(v, v, dfdq);
    }
  }
}

}  // namespace fun3d
