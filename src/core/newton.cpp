#include "core/newton.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fun3d {

void compute_wavespeed_sums(const Physics& ph, const TetMesh& m,
                            const EdgeArrays& edges, const FlowFields& fields,
                            std::span<double> lam) {
  std::fill(lam.begin(), lam.end(), 0.0);
  double qbar[kNs];
  for (std::size_t ei = 0; ei < edges.n; ++ei) {
    const std::size_t a = static_cast<std::size_t>(edges.a[ei]);
    const std::size_t b = static_cast<std::size_t>(edges.b[ei]);
    for (int s = 0; s < kNs; ++s)
      qbar[s] = 0.5 * (fields.q[a * kNs + static_cast<std::size_t>(s)] +
                       fields.q[b * kNs + static_cast<std::size_t>(s)]);
    const double n[3] = {edges.nx[ei], edges.ny[ei], edges.nz[ei]};
    const double sr = spectral_radius(ph, qbar, n);
    lam[a] += sr;
    lam[b] += sr;
  }
  for (std::size_t bf = 0; bf < m.bfaces.size(); ++bf) {
    const double n3[3] = {m.bface_nx[bf] / 3.0, m.bface_ny[bf] / 3.0,
                          m.bface_nz[bf] / 3.0};
    for (idx_t v : m.bfaces[bf].v) {
      const std::size_t vs = static_cast<std::size_t>(v);
      lam[vs] += spectral_radius(ph, &fields.q[vs * kNs], n3);
    }
  }
}

void compute_dt_shift(std::span<const double> wavespeed_sum, double cfl,
                      std::span<double> shift) {
  assert(shift.size() == wavespeed_sum.size());
  for (std::size_t v = 0; v < shift.size(); ++v)
    shift[v] = wavespeed_sum[v] / cfl;
}

double ser_update(double cfl, double r_prev, double r_now,
                  const PtcOptions& opt) {
  // A non-finite norm means the step blew up; without the guard NaN fails
  // the `r_now > 0` test and falls into the growth branch, raising CFL
  // exactly when it must shrink. Back off to the 0.1 floor instead. An
  // exact zero r_now is full convergence — growth_max is correct there.
  double factor;
  if (!std::isfinite(r_now) || !std::isfinite(r_prev))
    factor = 0.1;
  else
    factor = r_now > 0 ? r_prev / r_now : opt.cfl_growth_max;
  factor = std::clamp(factor, 0.1, opt.cfl_growth_max);
  // The lower clamp must not snap a resilience-backed-off CFL (< cfl0)
  // straight back up to cfl0; from below it may only grow by `factor`.
  return std::clamp(cfl * factor, std::min(cfl, opt.cfl0), opt.cfl_max);
}

}  // namespace fun3d
