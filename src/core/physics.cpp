#include "core/physics.hpp"

#include <cmath>

namespace fun3d {
namespace {

constexpr int kN2 = kNs * kNs;

inline double softened_abs(double lam, double delta) {
  return std::sqrt(lam * lam + delta * delta);
}

}  // namespace

void euler_flux(const Physics& ph, const double* q, const double* n,
                double* f) {
  const double p = q[0], u = q[1], v = q[2], w = q[3];
  const double theta = n[0] * u + n[1] * v + n[2] * w;
  f[0] = ph.beta * theta;
  f[1] = u * theta + n[0] * p;
  f[2] = v * theta + n[1] * p;
  f[3] = w * theta + n[2] * p;
}

void euler_flux_jacobian(const Physics& ph, const double* q, const double* n,
                         double* a) {
  const double u = q[1], v = q[2], w = q[3];
  const double theta = n[0] * u + n[1] * v + n[2] * w;
  // Row 0: d(beta*theta)/dq
  a[0] = 0;
  a[1] = ph.beta * n[0];
  a[2] = ph.beta * n[1];
  a[3] = ph.beta * n[2];
  // Row 1: d(u*theta + nx*p)/dq
  a[4] = n[0];
  a[5] = theta + u * n[0];
  a[6] = u * n[1];
  a[7] = u * n[2];
  // Row 2
  a[8] = n[1];
  a[9] = v * n[0];
  a[10] = theta + v * n[1];
  a[11] = v * n[2];
  // Row 3
  a[12] = n[2];
  a[13] = w * n[0];
  a[14] = w * n[1];
  a[15] = theta + w * n[2];
}

double euler_wavespeeds(const Physics& ph, const double* q, const double* n,
                        double* lam) {
  const double theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
  const double s2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
  const double c = std::sqrt(theta * theta + ph.beta * s2);
  if (lam != nullptr) {
    lam[0] = theta;
    lam[1] = theta;
    lam[2] = theta + c;
    lam[3] = theta - c;
  }
  return c;
}

double spectral_radius(const Physics& ph, const double* q, const double* n) {
  const double theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
  const double s2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
  return std::fabs(theta) + std::sqrt(theta * theta + ph.beta * s2);
}

void euler_abs_jacobian(const Physics& ph, const double* q, const double* n,
                        double* absa) {
  double a[kN2];
  euler_flux_jacobian(ph, q, n, a);
  const double theta = n[0] * q[1] + n[1] * q[2] + n[2] * q[3];
  const double s2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
  const double c = std::sqrt(theta * theta + ph.beta * s2);
  const double delta = ph.entropy_eps * c;

  // Interpolate |lambda| (softened) at the distinct eigenvalues
  // l1 = theta, l2 = theta + c, l3 = theta - c by the quadratic
  // p(x) = a0 + a1 x + a2 x^2; since A is diagonalizable, |A| = p(A).
  const double l1 = theta, l2 = theta + c, l3 = theta - c;
  const double f1 = softened_abs(l1, delta);
  const double f2 = softened_abs(l2, delta);
  const double f3 = softened_abs(l3, delta);
  // Divided differences (l2 != l3 always; l1 distinct unless c == 0, which
  // requires beta*S^2 == 0 — excluded by beta > 0 and S > 0).
  const double d12 = (f2 - f1) / (l2 - l1);
  const double d13 = (f3 - f1) / (l3 - l1);
  const double a2 = (d13 - d12) / (l3 - l2);
  const double a1 = d12 - a2 * (l1 + l2);
  const double a0 = f1 - l1 * (a1 + a2 * l1);

  // absa = a0 I + a1 A + a2 A^2
  double a2m[kN2];
  for (int r = 0; r < kNs; ++r)
    for (int col = 0; col < kNs; ++col) {
      double s = 0;
      for (int k = 0; k < kNs; ++k) s += a[r * kNs + k] * a[k * kNs + col];
      a2m[r * kNs + col] = s;
    }
  for (int i = 0; i < kN2; ++i) absa[i] = a1 * a[i] + a2 * a2m[i];
  for (int r = 0; r < kNs; ++r) absa[r * kNs + r] += a0;
}

void roe_flux(const Physics& ph, const double* ql, const double* qr,
              const double* n, double* f, double* dfdl, double* dfdr) {
  double fl[kNs], fr[kNs];
  euler_flux(ph, ql, n, fl);
  euler_flux(ph, qr, n, fr);
  double qbar[kNs];
  for (int i = 0; i < kNs; ++i) qbar[i] = 0.5 * (ql[i] + qr[i]);
  double absa[kN2];
  euler_abs_jacobian(ph, qbar, n, absa);
  for (int r = 0; r < kNs; ++r) {
    double diss = 0;
    for (int c = 0; c < kNs; ++c) diss += absa[r * kNs + c] * (qr[c] - ql[c]);
    f[r] = 0.5 * (fl[r] + fr[r]) - 0.5 * diss;
  }
  if (dfdl != nullptr) {
    double al[kN2];
    euler_flux_jacobian(ph, ql, n, al);
    for (int i = 0; i < kN2; ++i) dfdl[i] = 0.5 * (al[i] + absa[i]);
  }
  if (dfdr != nullptr) {
    double ar[kN2];
    euler_flux_jacobian(ph, qr, n, ar);
    for (int i = 0; i < kN2; ++i) dfdr[i] = 0.5 * (ar[i] - absa[i]);
  }
}

void rusanov_flux(const Physics& ph, const double* ql, const double* qr,
                  const double* n, double* f, double* dfdl, double* dfdr) {
  double fl[kNs], fr[kNs];
  euler_flux(ph, ql, n, fl);
  euler_flux(ph, qr, n, fr);
  double qbar[kNs];
  for (int i = 0; i < kNs; ++i) qbar[i] = 0.5 * (ql[i] + qr[i]);
  const double lam = spectral_radius(ph, qbar, n);
  for (int i = 0; i < kNs; ++i)
    f[i] = 0.5 * (fl[i] + fr[i]) - 0.5 * lam * (qr[i] - ql[i]);
  if (dfdl != nullptr) {
    double al[kN2];
    euler_flux_jacobian(ph, ql, n, al);
    for (int i = 0; i < kN2; ++i) dfdl[i] = 0.5 * al[i];
    for (int r = 0; r < kNs; ++r) dfdl[r * kNs + r] += 0.5 * lam;
  }
  if (dfdr != nullptr) {
    double ar[kN2];
    euler_flux_jacobian(ph, qr, n, ar);
    for (int i = 0; i < kN2; ++i) dfdr[i] = 0.5 * ar[i];
    for (int r = 0; r < kNs; ++r) dfdr[r * kNs + r] -= 0.5 * lam;
  }
}

void slip_wall_flux(const Physics& ph, const double* q, const double* n,
                    double* f, double* dfdq) {
  (void)ph;
  const double p = q[0];
  f[0] = 0.0;
  f[1] = n[0] * p;
  f[2] = n[1] * p;
  f[3] = n[2] * p;
  if (dfdq != nullptr) {
    for (int i = 0; i < kN2; ++i) dfdq[i] = 0;
    dfdq[1 * kNs + 0] = n[0];
    dfdq[2 * kNs + 0] = n[1];
    dfdq[3 * kNs + 0] = n[2];
  }
}

void farfield_flux(const Physics& ph, const double* q, const double* n,
                   double* f, double* dfdq) {
  const double* qinf = ph.freestream.data();
  // Rusanov against the freestream: upwinded characteristic inflow/outflow.
  rusanov_flux(ph, q, qinf, n, f, dfdq, nullptr);
}

}  // namespace fun3d
