#include "core/vecops.hpp"

#include <cassert>
#include <cmath>

#include "graph/csr.hpp"
#include "parallel/workshare.hpp"

namespace fun3d {

double VecOps::dot(std::span<const double> x, std::span<const double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  const double* yp = y.data();
  return parallel_sum(static_cast<idx_t>(x.size()), nthreads,
                      [&](idx_t i) { return xp[i] * yp[i]; });
}

double VecOps::norm2(std::span<const double> x) const {
  const double* xp = x.data();
  return std::sqrt(parallel_sum(static_cast<idx_t>(x.size()), nthreads,
                                [&](idx_t i) { return xp[i] * xp[i]; }));
}

void VecOps::axpy(double a, std::span<const double> x,
                  std::span<double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  double* yp = y.data();
  parallel_ranges(static_cast<idx_t>(x.size()), nthreads,
                  [&](idx_t, idx_t b, idx_t e) {
                    for (idx_t i = b; i < e; ++i) yp[i] += a * xp[i];
                  });
}

void VecOps::aypx(double a, std::span<const double> x,
                  std::span<double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  double* yp = y.data();
  parallel_ranges(static_cast<idx_t>(x.size()), nthreads,
                  [&](idx_t, idx_t b, idx_t e) {
                    for (idx_t i = b; i < e; ++i) yp[i] = xp[i] + a * yp[i];
                  });
}

void VecOps::waxpy(double a, std::span<const double> x,
                   std::span<const double> y, std::span<double> w) const {
  assert(x.size() == y.size() && y.size() == w.size());
  const double* xp = x.data();
  const double* yp = y.data();
  double* wp = w.data();
  parallel_ranges(static_cast<idx_t>(x.size()), nthreads,
                  [&](idx_t, idx_t b, idx_t e) {
                    for (idx_t i = b; i < e; ++i) wp[i] = yp[i] + a * xp[i];
                  });
}

void VecOps::scale(double a, std::span<double> x) const {
  double* xp = x.data();
  parallel_ranges(static_cast<idx_t>(x.size()), nthreads,
                  [&](idx_t, idx_t b, idx_t e) {
                    for (idx_t i = b; i < e; ++i) xp[i] *= a;
                  });
}

void VecOps::copy(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  double* yp = y.data();
  parallel_ranges(static_cast<idx_t>(x.size()), nthreads,
                  [&](idx_t, idx_t b, idx_t e) {
                    for (idx_t i = b; i < e; ++i) yp[i] = xp[i];
                  });
}

void VecOps::set(double a, std::span<double> x) const {
  double* xp = x.data();
  parallel_ranges(static_cast<idx_t>(x.size()), nthreads,
                  [&](idx_t, idx_t b, idx_t e) {
                    for (idx_t i = b; i < e; ++i) xp[i] = a;
                  });
}

void VecOps::maxpy(std::span<const double> a,
                   std::span<const std::span<const double>> xs,
                   std::span<double> y) const {
  assert(a.size() == xs.size());
  double* yp = y.data();
  parallel_ranges(static_cast<idx_t>(y.size()), nthreads,
                  [&](idx_t, idx_t b, idx_t e) {
                    for (std::size_t k = 0; k < xs.size(); ++k) {
                      const double ak = a[k];
                      const double* xp = xs[k].data();
                      for (idx_t i = b; i < e; ++i) yp[i] += ak * xp[i];
                    }
                  });
}

void VecOps::mdot(std::span<const std::span<const double>> xs,
                  std::span<const double> y, std::span<double> out) const {
  assert(out.size() == xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k) out[k] = dot(xs[k], y);
}

}  // namespace fun3d
