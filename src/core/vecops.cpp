#include "core/vecops.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/team.hpp"
#include "parallel/workshare.hpp"

namespace fun3d {
namespace {

// Process-wide fused-kernel statistics (relaxed: observability counters,
// mirroring the team-shortfall stats in parallel/team.cpp).
std::atomic<std::uint64_t> g_mdot_batches{0};
std::atomic<std::uint64_t> g_mdot_components{0};
std::atomic<std::uint64_t> g_orth_calls{0};
std::atomic<std::uint64_t> g_orth_vectors{0};
std::atomic<std::uint64_t> g_orth_fallbacks{0};
std::atomic<std::uint64_t> g_split_batches{0};
std::atomic<std::uint64_t> g_split_fallbacks{0};
std::atomic<std::uint64_t> g_fused_sweeps{0};
std::atomic<std::uint64_t> g_unfused_sweeps{0};
std::atomic<std::uint64_t> g_fused_bytes{0};
std::atomic<std::uint64_t> g_unfused_bytes{0};

void note_fusion(std::uint64_t fused_sweeps, std::uint64_t unfused_sweeps,
                 std::uint64_t fused_bytes, std::uint64_t unfused_bytes) {
  g_fused_sweeps.fetch_add(fused_sweeps, std::memory_order_relaxed);
  g_unfused_sweeps.fetch_add(unfused_sweeps, std::memory_order_relaxed);
  g_fused_bytes.fetch_add(fused_bytes, std::memory_order_relaxed);
  g_unfused_bytes.fetch_add(unfused_bytes, std::memory_order_relaxed);
}

// Chunk-level primitives of the fused kernels. Their loop bodies repeat
// the unfused kernels' expressions verbatim (`acc += x[i]*y[i]`,
// `y[i] += a*x[i]`), so the compiler applies the same FP contraction to
// both paths and fused results stay bitwise-equal to unfused ones.

inline double chunk_dot(const double* x, const double* y, idx_t b, idx_t e) {
  double acc = 0;
  for (idx_t i = b; i < e; ++i) acc += x[i] * y[i];
  return acc;
}

inline void chunk_axpy(double a, const double* x, double* y, idx_t b,
                       idx_t e) {
  for (idx_t i = b; i < e; ++i) y[i] += a * x[i];
}

}  // namespace

VecOpsStats vecops_stats() {
  VecOpsStats s;
  s.mdot_batches = g_mdot_batches.load(std::memory_order_relaxed);
  s.mdot_components = g_mdot_components.load(std::memory_order_relaxed);
  s.orthogonalize_calls = g_orth_calls.load(std::memory_order_relaxed);
  s.orthogonalize_vectors = g_orth_vectors.load(std::memory_order_relaxed);
  s.orthogonalize_fallbacks = g_orth_fallbacks.load(std::memory_order_relaxed);
  s.split_batches = g_split_batches.load(std::memory_order_relaxed);
  s.split_fallbacks = g_split_fallbacks.load(std::memory_order_relaxed);
  s.fused_sweeps = g_fused_sweeps.load(std::memory_order_relaxed);
  s.unfused_sweeps = g_unfused_sweeps.load(std::memory_order_relaxed);
  s.fused_bytes = g_fused_bytes.load(std::memory_order_relaxed);
  s.unfused_bytes = g_unfused_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_vecops_stats() {
  g_mdot_batches.store(0, std::memory_order_relaxed);
  g_mdot_components.store(0, std::memory_order_relaxed);
  g_orth_calls.store(0, std::memory_order_relaxed);
  g_orth_vectors.store(0, std::memory_order_relaxed);
  g_orth_fallbacks.store(0, std::memory_order_relaxed);
  g_split_batches.store(0, std::memory_order_relaxed);
  g_split_fallbacks.store(0, std::memory_order_relaxed);
  g_fused_sweeps.store(0, std::memory_order_relaxed);
  g_unfused_sweeps.store(0, std::memory_order_relaxed);
  g_fused_bytes.store(0, std::memory_order_relaxed);
  g_unfused_bytes.store(0, std::memory_order_relaxed);
}

double VecOps::dot(std::span<const double> x, std::span<const double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  const double* yp = y.data();
  return parallel_sum(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t i) { return xp[i] * yp[i]; }, "vecops");
}

double VecOps::norm2(std::span<const double> x) const {
  const double* xp = x.data();
  return std::sqrt(parallel_sum(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t i) { return xp[i] * xp[i]; }, "vecops"));
}

void VecOps::axpy(double a, std::span<const double> x,
                  std::span<double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  double* yp = y.data();
  parallel_ranges(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) yp[i] += a * xp[i];
      },
      "vecops");
}

void VecOps::aypx(double a, std::span<const double> x,
                  std::span<double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  double* yp = y.data();
  parallel_ranges(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) yp[i] = xp[i] + a * yp[i];
      },
      "vecops");
}

void VecOps::waxpy(double a, std::span<const double> x,
                   std::span<const double> y, std::span<double> w) const {
  assert(x.size() == y.size() && y.size() == w.size());
  const double* xp = x.data();
  const double* yp = y.data();
  double* wp = w.data();
  parallel_ranges(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) wp[i] = yp[i] + a * xp[i];
      },
      "vecops");
}

void VecOps::scale(double a, std::span<double> x) const {
  double* xp = x.data();
  parallel_ranges(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) xp[i] *= a;
      },
      "vecops");
}

void VecOps::copy(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == y.size());
  const double* xp = x.data();
  double* yp = y.data();
  parallel_ranges(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) yp[i] = xp[i];
      },
      "vecops");
}

void VecOps::set(double a, std::span<double> x) const {
  double* xp = x.data();
  parallel_ranges(
      static_cast<idx_t>(x.size()), nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (idx_t i = b; i < e; ++i) xp[i] = a;
      },
      "vecops");
}

void VecOps::maxpy(std::span<const double> a,
                   std::span<const std::span<const double>> xs,
                   std::span<double> y) const {
  assert(a.size() == xs.size());
  double* yp = y.data();
  parallel_ranges(
      static_cast<idx_t>(y.size()), nthreads,
      [&](idx_t, idx_t b, idx_t e) {
        for (std::size_t k = 0; k < xs.size(); ++k) {
          const double ak = a[k];
          const double* xp = xs[k].data();
          for (idx_t i = b; i < e; ++i) yp[i] += ak * xp[i];
        }
      },
      "vecops");
}

void VecOps::mdot(std::span<const std::span<const double>> xs,
                  std::span<const double> y, std::span<double> out) const {
  assert(out.size() == xs.size());
  const std::size_t k = xs.size();
  if (k == 0) return;
  const idx_t n = static_cast<idx_t>(y.size());
  const double* yp = y.data();
  g_mdot_batches.fetch_add(1, std::memory_order_relaxed);
  g_mdot_components.fetch_add(k, std::memory_order_relaxed);
  note_fusion(1, k, 8ull * static_cast<std::uint64_t>(n) * (k + 1),
              16ull * static_cast<std::uint64_t>(n) * k);

  // One sweep: for each element, accumulate all k products — y is
  // streamed once for the whole batch. Per component the additions happen
  // in the same ascending-i order as an independent dot(), and partials
  // are per *planned* thread combined in planned order, so out[k] is
  // bitwise-equal to k independent dot() calls at any thread count.
  const idx_t nt = static_cast<idx_t>(nthreads);
  if (nt <= 1) {
    std::vector<double> acc(k, 0.0);
    for (idx_t i = 0; i < n; ++i)
      for (std::size_t kk = 0; kk < k; ++kk)
        acc[kk] += xs[kk].data()[i] * yp[i];
    for (std::size_t kk = 0; kk < k; ++kk) out[kk] = acc[kk];
    return;
  }
  std::vector<double> partial(static_cast<std::size_t>(nt) * k, 0.0);
  parallel_ranges(
      n, nthreads,
      [&](idx_t t, idx_t b, idx_t e) {
        double* acc = partial.data() + static_cast<std::size_t>(t) * k;
        for (idx_t i = b; i < e; ++i)
          for (std::size_t kk = 0; kk < k; ++kk)
            acc[kk] += xs[kk].data()[i] * yp[i];
      },
      "vecops_mdot");
  for (std::size_t kk = 0; kk < k; ++kk) {
    double sum = 0;
    for (idx_t t = 0; t < nt; ++t)
      sum += partial[static_cast<std::size_t>(t) * k + kk];
    out[kk] = sum;
  }
}

double VecOps::dot_axpy(double a, std::span<const double> x,
                        std::span<const double> xn,
                        std::span<double> w) const {
  assert(x.size() == w.size() && xn.size() == w.size());
  const idx_t n = static_cast<idx_t>(w.size());
  const double* xp = x.data();
  const double* xnp = xn.data();
  double* wp = w.data();
  note_fusion(1, 2, 32ull * static_cast<std::uint64_t>(n),
              40ull * static_cast<std::uint64_t>(n));

  const idx_t nt = static_cast<idx_t>(nthreads);
  if (nt <= 1) {
    chunk_axpy(a, xp, wp, 0, n);
    return chunk_dot(xnp, wp, 0, n);
  }
  // The axpy and dot sub-loops run back to back on the same chunk inside
  // one region, so the chunk of w is loaded from DRAM once; the combine
  // order matches parallel_sum, keeping the result bitwise-equal to
  // axpy() followed by dot().
  std::vector<double> partial(static_cast<std::size_t>(nt), 0.0);
  parallel_ranges(
      n, nthreads,
      [&](idx_t t, idx_t b, idx_t e) {
        chunk_axpy(a, xp, wp, b, e);
        partial[static_cast<std::size_t>(t)] = chunk_dot(xnp, wp, b, e);
      },
      "vecops_mdot");
  double sum = 0;
  for (double p : partial) sum += p;
  return sum;
}

double VecOps::orthogonalize(std::span<const std::span<const double>> basis,
                             std::span<double> w, std::span<double> h) const {
  const std::size_t k = basis.size();
  assert(h.size() == k + 1);
  const idx_t n = static_cast<idx_t>(w.size());
  double* wp = w.data();
  g_orth_calls.fetch_add(1, std::memory_order_relaxed);
  g_orth_vectors.fetch_add(k, std::memory_order_relaxed);
  // Unfused column cost: k dots (2 streams each) + k axpys (3 streams
  // each) + 1 norm — versus one fused region whose per-thread chunks keep
  // w and the just-dotted v_i cache-resident across the barriers: the
  // basis is loaded from DRAM once, w twice (in + out).
  note_fusion(1, 2 * k + 1,
              8ull * static_cast<std::uint64_t>(n) * (k + 2),
              8ull * static_cast<std::uint64_t>(n) * (5 * k + 1));

  if (k == 0) {
    h[0] = norm2(w);
    return h[0];
  }
  const idx_t nt = static_cast<idx_t>(nthreads);
  if (nt <= 1) {
    for (std::size_t i = 0; i < k; ++i) {
      h[i] = chunk_dot(basis[i].data(), wp, 0, n);
      chunk_axpy(-h[i], basis[i].data(), wp, 0, n);
    }
    h[k] = std::sqrt(chunk_dot(wp, wp, 0, n));
    return h[k];
  }

  // Single barrier-synchronized region: shard t owns the static chunk
  // [b, e). Step i publishes per-planned-thread partials of
  // dot(v_i, w), thread 0 combines them in planned order (bitwise the
  // parallel_sum order), then every shard applies w -= h[i] v_i to its
  // chunk and immediately forms the next dot partial. Shards contain
  // barriers, so a capped team cannot run them cooperatively: the region
  // aborts (kAbort) and the whole column falls back to the unfused —
  // bitwise-identical — dot/axpy/norm2 sequence below.
  std::vector<double> partial(static_cast<std::size_t>(nt), 0.0);
  const TeamRun run = run_team(
      nt,
      [&](idx_t t) {
        const auto [b, e] = static_chunk(n, t, nt);
        partial[static_cast<std::size_t>(t)] =
            chunk_dot(basis[0].data(), wp, b, e);
        for (std::size_t i = 0; i < k; ++i) {
#pragma omp barrier
          if (t == 0) {
            double sum = 0;
            for (idx_t tt = 0; tt < nt; ++tt)
              sum += partial[static_cast<std::size_t>(tt)];
            h[i] = sum;
          }
#pragma omp barrier
          chunk_axpy(-h[i], basis[i].data(), wp, b, e);
          partial[static_cast<std::size_t>(t)] =
              i + 1 < k ? chunk_dot(basis[i + 1].data(), wp, b, e)
                        : chunk_dot(wp, wp, b, e);
        }
      },
      ShortfallPolicy::kAbort, "vecops_mgs");
  if (run.completed) {
    double sum = 0;
    for (idx_t tt = 0; tt < nt; ++tt)
      sum += partial[static_cast<std::size_t>(tt)];
    h[k] = std::sqrt(sum);
    return h[k];
  }

  // Capped team: unfused fallback. dot/axpy/norm2 are themselves
  // shortfall-robust and deterministic, so this reproduces the fused
  // result bit for bit.
  g_orth_fallbacks.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < k; ++i) {
    h[i] = dot(basis[i], w);
    axpy(-h[i], basis[i], w);
  }
  h[k] = norm2(w);
  return h[k];
}

MDotBatch VecOps::mdot_start(std::span<const std::span<const double>> xs,
                             std::span<const double> y) const {
  MDotBatch batch;
  batch.k = xs.size();
  batch.nt = static_cast<idx_t>(nthreads > 1 ? nthreads : 1);
  batch.xs.assign(xs.begin(), xs.end());
  batch.y = y;
  const std::size_t k = batch.k;
  if (k == 0) {
    batch.fused = true;
    return batch;
  }
  g_split_batches.fetch_add(1, std::memory_order_relaxed);
  const idx_t n = static_cast<idx_t>(y.size());
  const double* yp = y.data();
  note_fusion(1, k, 8ull * static_cast<std::uint64_t>(n) * (k + 1),
              16ull * static_cast<std::uint64_t>(n) * k);

  const idx_t nt = batch.nt;
  batch.partial.assign(static_cast<std::size_t>(nt) * k, 0.0);
  if (nt <= 1) {
    double* acc = batch.partial.data();
    for (idx_t i = 0; i < n; ++i)
      for (std::size_t kk = 0; kk < k; ++kk)
        acc[kk] += batch.xs[kk].data()[i] * yp[i];
    batch.fused = true;
    return batch;
  }
  // Same sweep, chunking, and per-element accumulation order as mdot() —
  // only the planned-order combine is deferred to mdot_finish. The shard
  // has no barriers, but a capped team still aborts (kAbort) rather than
  // run cooperatively: the abort is the signal mdot_finish uses to replay
  // the batch through the unfused kernels, exercising the same fallback
  // contract as the fused MGS column.
  const std::vector<std::span<const double>>& xv = batch.xs;
  std::vector<double>& partial = batch.partial;
  const TeamRun run = run_team(
      nt,
      [&](idx_t t) {
        const auto [b, e] = static_chunk(n, t, nt);
        double* acc = partial.data() + static_cast<std::size_t>(t) * k;
        for (idx_t i = b; i < e; ++i)
          for (std::size_t kk = 0; kk < k; ++kk)
            acc[kk] += xv[kk].data()[i] * yp[i];
      },
      ShortfallPolicy::kAbort, "vecops_mdot");
  batch.fused = run.completed;
  return batch;
}

void VecOps::mdot_finish(MDotBatch& batch, std::span<double> out) const {
  assert(out.size() == batch.k);
  const std::size_t k = batch.k;
  if (k == 0) return;
  if (!batch.fused) {
    // Capped team at start: recompute each component through the
    // shortfall-robust unfused dot — per component the chunk boundaries,
    // ascending-i accumulation, and planned-order combine are identical
    // to the fused sweep's, so the results match bit for bit.
    g_split_fallbacks.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t kk = 0; kk < k; ++kk) out[kk] = dot(batch.xs[kk], batch.y);
    return;
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    double sum = 0;
    for (idx_t t = 0; t < batch.nt; ++t)
      sum += batch.partial[static_cast<std::size_t>(t) * k + kk];
    out[kk] = sum;
  }
}

}  // namespace fun3d
