// Restarted GMRES(m) with left preconditioning and modified Gram-Schmidt —
// the Krylov method of the paper's NKS solver. The operator is supplied as a
// callback so both the matrix-free Jacobian-vector product (paper §II-B,
// Knoll & Keyes [12]) and the assembled BCSR operator plug in.
#pragma once

#include <functional>
#include <span>

#include "core/profile.hpp"
#include "core/vecops.hpp"

namespace fun3d {

/// y = Op(x). Spans are distinct storage.
using LinearOp = std::function<void(std::span<const double>, std::span<double>)>;

/// Which Arnoldi-column algorithm gmres_solve runs (DESIGN.md §9).
enum class GmresMode {
  /// Modified Gram-Schmidt: j+2 sequentially dependent global reductions
  /// per column j (the fused orthogonalize sweep).
  kClassical,
  /// Ghysels-style pipelined column: ONE fused split-phase reduction per
  /// column (basis dots + candidate norm batched via mdot_start), with the
  /// next column's operator application overlapping its completion and the
  /// trailing norm recovered by the Pythagorean identity. Falls back to a
  /// classical MGS column when the norm estimate cancels (near breakdown).
  kPipelined,
};

struct GmresOptions {
  int restart = 30;
  int max_iters = 400;
  double rtol = 1e-3;   ///< relative (preconditioned) residual tolerance
  double atol = 1e-13;
  GmresMode mode = GmresMode::kClassical;
};

struct GmresResult {
  int iterations = 0;
  /// True relative (preconditioned) residual ||M^{-1}(b - Ax)|| / ||r0||,
  /// recomputed on the exit path — not the Givens recurrence estimate.
  double relative_residual = 1.0;
  /// The Givens recurrence estimate at exit (what `relative_residual`
  /// reported before the true-residual fix); kept so the drift between
  /// estimate and truth is observable and testable.
  double estimate_residual = 1.0;
  bool converged = false;
};

/// Solves A x = b (x holds the initial guess, typically zero). `precond`
/// applies M^{-1}; pass nullptr for unpreconditioned. `profile` (optional)
/// accumulates vecops time and reduction counts.
GmresResult gmres_solve(const LinearOp& apply_a, const LinearOp* precond,
                        std::span<const double> b, std::span<double> x,
                        const GmresOptions& opt, const VecOps& vec,
                        Profile* profile = nullptr);

}  // namespace fun3d
