// Edge-based flux residual kernels in every optimization variant studied by
// the paper (§V-A): vertex-data layout (SoA baseline vs AoS optimized),
// SIMD across edges with temp-buffer compute / scalar write-out, software
// prefetching, and the four threading strategies of EdgeLoopPlan.
//
// All variants compute the same residual (to floating-point reassociation):
//   resid[a] += F(qL, qR, n_e);  resid[b] -= F(qL, qR, n_e)
// for every edge e=(a,b), with optional second-order MUSCL reconstruction
// from Green-Gauss gradients.
#pragma once

#include <span>

#include "core/fields.hpp"
#include "machine/cache_sim.hpp"
#include "parallel/edge_partition.hpp"

namespace fun3d {

enum class VertexLayout { kSoA, kAoS };

struct FluxKernelConfig {
  VertexLayout layout = VertexLayout::kAoS;
  bool simd = false;      ///< vectorize across edges (AoS layout only)
  bool prefetch = false;  ///< software prefetch of upcoming vertex data
  bool second_order = true;
  FluxScheme scheme = FluxScheme::kRoe;
};

/// Adds all interior edge fluxes into `resid` (not zeroed here). Threading
/// and conflict handling follow `plan`; with plan.nthreads == 1 the loop is
/// serial regardless of strategy.
void compute_edge_fluxes(const Physics& ph, const EdgeArrays& edges,
                         const EdgeLoopPlan& plan, const FluxKernelConfig& cfg,
                         const FlowFields& fields, std::span<double> resid);

/// Analytic flop count per edge for the configuration (machine-model input).
double flux_flops_per_edge(const FluxKernelConfig& cfg);

/// Replays the kernel's address stream for the given edge traversal into a
/// cache simulator (vertex gathers + streamed edge data), without computing.
/// Used to measure layout-dependent DRAM traffic per thread.
void trace_flux_accesses(const EdgeArrays& edges,
                         std::span<const idx_t> edge_order,
                         const FluxKernelConfig& cfg, const FlowFields& fields,
                         CacheSim& cache);

}  // namespace fun3d
