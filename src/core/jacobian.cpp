#include "core/jacobian.hpp"

#include "parallel/team.hpp"

namespace fun3d {
namespace {

struct EdgeJac {
  double dfdl[kNs * kNs];
  double dfdr[kNs * kNs];
};

inline void edge_jacobian(const Physics& ph, const EdgeArrays& e,
                          const FlowFields& f, std::size_t ei,
                          FluxScheme scheme, EdgeJac& j) {
  const std::size_t a = static_cast<std::size_t>(e.a[ei]);
  const std::size_t b = static_cast<std::size_t>(e.b[ei]);
  const double n[3] = {e.nx[ei], e.ny[ei], e.nz[ei]};
  double flux[kNs];
  if (scheme == FluxScheme::kRoe) {
    roe_flux(ph, &f.q[a * kNs], &f.q[b * kNs], n, flux, j.dfdl, j.dfdr);
  } else {
    rusanov_flux(ph, &f.q[a * kNs], &f.q[b * kNs], n, flux, j.dfdl, j.dfdr);
  }
}

inline void sub_block(Bcsr4& jac, idx_t r, idx_t c, const double* b) {
  double neg[kNs * kNs];
  for (int i = 0; i < kNs * kNs; ++i) neg[i] = -b[i];
  jac.add_block(r, c, neg);
}

}  // namespace

Bcsr4 make_jacobian_matrix(const TetMesh& m) {
  return Bcsr4::from_adjacency(m.vertex_graph());
}

void assemble_jacobian(const Physics& ph, const EdgeArrays& edges,
                       const EdgeLoopPlan& plan, const FlowFields& fields,
                       FluxScheme scheme, Bcsr4& jac) {
  jac.set_zero();
  const bool replicated =
      plan.nthreads > 1 &&
      (plan.strategy == EdgeStrategy::kReplicationNatural ||
       plan.strategy == EdgeStrategy::kReplicationPartitioned);
  if (!replicated) {
    EdgeJac j;
    for (std::size_t ei = 0; ei < edges.n; ++ei) {
      edge_jacobian(ph, edges, fields, ei, scheme, j);
      const idx_t a = edges.a[ei], b = edges.b[ei];
      jac.add_block(a, a, j.dfdl);   // dR_a/dq_a
      jac.add_block(a, b, j.dfdr);   // dR_a/dq_b
      sub_block(jac, b, a, j.dfdl);  // dR_b/dq_a
      sub_block(jac, b, b, j.dfdr);  // dR_b/dq_b
    }
    return;
  }
  // Owner-row assembly: the thread owning vertex v writes row v only; cut
  // edges are evaluated by both owning threads (replicated compute, no
  // atomics) — same policy as the flux kernel. Shards are row-disjoint,
  // so a capped team can round-robin them.
  run_team(plan.nthreads, [&](idx_t t) {
    const auto* owner = plan.vertex_owner.data();
    EdgeJac j;
    for (idx_t eid : plan.edges_of(t)) {
      const std::size_t ei = static_cast<std::size_t>(eid);
      edge_jacobian(ph, edges, fields, ei, scheme, j);
      const idx_t a = edges.a[ei], b = edges.b[ei];
      if (owner[a] == t) {
        jac.add_block(a, a, j.dfdl);
        jac.add_block(a, b, j.dfdr);
      }
      if (owner[b] == t) {
        sub_block(jac, b, a, j.dfdl);
        sub_block(jac, b, b, j.dfdr);
      }
    }
  });
}

double jacobian_flops_per_edge() {
  // Flux + both analytic Jacobians + 4 block accumulations.
  return 180.0 + 2 * 40.0 + 4 * kNs * kNs;
}

}  // namespace fun3d
