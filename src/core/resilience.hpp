// Solver resilience layer (DESIGN.md §8): the policy that stops the Newton
// driver from silently accepting failed steps.
//
// The pseudo-transient continuation loop of FlowSolver::solve() used to
// apply every Krylov correction unconditionally: a NaN in the update or the
// residual marched a poisoned state to max_steps, a BiCGSTAB breakdown was
// dropped on the floor, and SER *grew* the CFL on a NaN residual (NaN fails
// the `r_now > 0` test). This header defines the contract that replaces
// that behavior:
//
//  * per-step health checks — a cheap verdict before the update is applied
//    (non-finite du, Krylov breakdown, linear stall) and after the new
//    residual is known (non-finite norm, catastrophic growth);
//  * step rejection — a rejected step rolls the state back to the last
//    accepted iterate, backs the CFL off, and retries; bounded retries,
//    then a graceful abort with a diagnosable failure reason in SolveStats;
//  * deterministic fault injection — seeded NaN poisoning of the residual
//    or the update, forced Krylov breakdown, and a simulated crash-at-step
//    (SIGKILL), so every recovery path is exercisable in tests and CI.
//
// Periodic atomic checkpointing (write-temp + fsync + rename) lives in
// vtk_io; ResilienceOptions only carries its cadence and path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace fun3d {

/// Outcome of one linear (Krylov) solve, unified across GMRES and
/// BiCGSTAB so the step-health check is method-agnostic.
struct LinearOutcome {
  int iterations = 0;
  double relative_residual = 1.0;
  bool converged = false;
  bool breakdown = false;  ///< BiCGSTAB rho/omega underflow (GMRES's happy
                           ///< breakdown is an exact solve, not a failure)
};

/// Health verdict on one Newton step, ordered by when it is detectable:
/// the first three are pre-application (the state is untouched, no
/// rollback needed), the last two need the trial residual.
enum class StepVerdict {
  kAccept = 0,
  kRejectNonFiniteUpdate,    ///< du contains NaN/Inf
  kRejectBreakdown,          ///< Krylov breakdown (du unusable)
  kRejectLinearStall,        ///< linear solve made no progress at all
  kRejectNonFiniteResidual,  ///< ||R(u + du)|| is NaN/Inf
  kRejectResidualGrowth,     ///< ||R|| grew beyond growth_reject
};

[[nodiscard]] const char* to_string(StepVerdict v);

/// Deterministic fault-injection plan. All targets default off (-1); a
/// fault fires when the Newton loop reaches the named step. `repeat`
/// bounds how many retry attempts at that step are poisoned: 1 means the
/// first attempt only (the retry is clean and recovery succeeds), -1 means
/// every attempt (drives the retry budget to exhaustion).
struct FaultPlan {
  int nan_residual_step = -1;  ///< poison one residual entry with NaN
  int nan_update_step = -1;    ///< poison one du entry with NaN
  int breakdown_step = -1;     ///< flag the linear solve as broken down
  int crash_step = -1;         ///< raise SIGKILL at the top of this step
  int repeat = 1;
  unsigned seed = 0x5eedu;     ///< selects the poisoned vector entry
};

/// Step-control policy of the Newton driver. Health checks are on by
/// default: a healthy run never trips them (no NaN, no breakdown, and the
/// growth gate only fires on catastrophic — 1000x — residual blowup).
struct ResilienceOptions {
  bool enabled = true;         ///< false = legacy accept-everything driver
  double growth_reject = 1e3;  ///< reject when r_new > growth_reject*r_prev
  /// A linear solve that neither converged nor reduced the preconditioned
  /// residual below this relative level produced an unusable correction.
  double linear_stall_rel = 1.0;
  int max_retries = 4;         ///< retries per step before aborting
  double cfl_backoff = 0.25;   ///< CFL multiplier on rejection
  double cfl_floor = 1e-2;     ///< backoff never pushes CFL below this
  /// Atomic checkpoint cadence inside the Newton loop: every
  /// `checkpoint_every` accepted steps a restartable snapshot (state +
  /// step/CFL/reference-residual) is written to `checkpoint_path`.
  /// 0 = off.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  FaultPlan fault;
};

/// Recovery observability, surfaced per solve in SolveStats and as the
/// `resilience.*` PerfReport keys (validated cross-checks: the per-reason
/// reject counters sum to rejected_steps; retries and backoffs never
/// exceed it).
struct ResilienceStats {
  std::uint64_t rejected_steps = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoffs = 0;  ///< rejections where the CFL actually shrank
  std::uint64_t nonfinite_update_rejects = 0;
  std::uint64_t nonfinite_residual_rejects = 0;
  std::uint64_t breakdown_rejects = 0;
  std::uint64_t stall_rejects = 0;
  std::uint64_t growth_rejects = 0;
  /// Linear solves that hit their iteration cap without reaching tolerance
  /// (observability only — an inexact Newton step can still use them).
  std::uint64_t linear_nonconverged = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t injected_faults = 0;
};

/// True when every entry is finite (no NaN/Inf). One serial sweep.
[[nodiscard]] bool all_finite(std::span<const double> v);

/// Pre-application health check: the update vector and the linear solve's
/// outcome, before du touches the state. kAccept or one of the first
/// three rejection verdicts.
[[nodiscard]] StepVerdict check_update_health(std::span<const double> du,
                                              const LinearOutcome& lin,
                                              const ResilienceOptions& opt);

/// Same check with the finiteness scan already reduced to a flag. This is
/// the form the unified NewtonDriver calls: on SPMD backends the flag is a
/// global allreduce result, so every rank reaches the same verdict even
/// when only one rank's owned entries are poisoned.
[[nodiscard]] StepVerdict check_update_health(bool update_finite,
                                              const LinearOutcome& lin,
                                              const ResilienceOptions& opt);

/// Post-application health check on the trial residual norm. A non-finite
/// r_new always rejects; growth beyond opt.growth_reject relative to the
/// last accepted norm rejects.
[[nodiscard]] StepVerdict check_residual_health(double r_prev, double r_new,
                                                const ResilienceOptions& opt);

/// The vector entry the NaN injectors poison at `step`: a splitmix64 hash
/// of (seed, step) mod n — deterministic across runs and thread counts.
[[nodiscard]] std::size_t fault_target_index(unsigned seed, int step,
                                             std::size_t n);

}  // namespace fun3d
