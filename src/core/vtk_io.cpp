#include "core/vtk_io.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "core/physics.hpp"

namespace fun3d {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  if (f == nullptr)
    throw std::runtime_error("vtk_io: cannot open " + path);
  return f;
}

void write_points(std::FILE* f, const TetMesh& m) {
  std::fprintf(f, "POINTS %d double\n", m.num_vertices);
  for (idx_t v = 0; v < m.num_vertices; ++v) {
    const std::size_t vs = static_cast<std::size_t>(v);
    std::fprintf(f, "%.9g %.9g %.9g\n", m.x[vs], m.y[vs], m.z[vs]);
  }
}

void write_point_data(std::FILE* f, const TetMesh& m,
                      std::span<const double> q) {
  if (q.empty()) return;
  std::fprintf(f, "POINT_DATA %d\n", m.num_vertices);
  std::fprintf(f, "SCALARS pressure double 1\nLOOKUP_TABLE default\n");
  for (idx_t v = 0; v < m.num_vertices; ++v)
    std::fprintf(f, "%.9g\n", q[static_cast<std::size_t>(v) * kNs]);
  std::fprintf(f, "VECTORS velocity double\n");
  for (idx_t v = 0; v < m.num_vertices; ++v) {
    const std::size_t vs = static_cast<std::size_t>(v);
    std::fprintf(f, "%.9g %.9g %.9g\n", q[vs * kNs + 1], q[vs * kNs + 2],
                 q[vs * kNs + 3]);
  }
}

}  // namespace

void write_vtk(const std::string& path, const TetMesh& m,
               std::span<const double> q) {
  if (!q.empty() && q.size() != static_cast<std::size_t>(m.num_vertices) * kNs)
    throw std::invalid_argument("write_vtk: q size mismatch");
  File f = open_or_throw(path, "w");
  std::fprintf(f.get(),
               "# vtk DataFile Version 3.0\nfun3d-smo volume\nASCII\n"
               "DATASET UNSTRUCTURED_GRID\n");
  write_points(f.get(), m);
  const std::size_t nt = m.tets.size();
  std::fprintf(f.get(), "CELLS %zu %zu\n", nt, nt * 5);
  for (const auto& t : m.tets)
    std::fprintf(f.get(), "4 %d %d %d %d\n", t[0], t[1], t[2], t[3]);
  std::fprintf(f.get(), "CELL_TYPES %zu\n", nt);
  for (std::size_t i = 0; i < nt; ++i) std::fprintf(f.get(), "10\n");
  write_point_data(f.get(), m, q);
}

void write_vtk_surface(const std::string& path, const TetMesh& m,
                       std::span<const double> q) {
  if (!q.empty() && q.size() != static_cast<std::size_t>(m.num_vertices) * kNs)
    throw std::invalid_argument("write_vtk_surface: q size mismatch");
  File f = open_or_throw(path, "w");
  std::fprintf(f.get(),
               "# vtk DataFile Version 3.0\nfun3d-smo surface\nASCII\n"
               "DATASET UNSTRUCTURED_GRID\n");
  write_points(f.get(), m);
  const std::size_t nf = m.bfaces.size();
  std::fprintf(f.get(), "CELLS %zu %zu\n", nf, nf * 4);
  for (const auto& bf : m.bfaces)
    std::fprintf(f.get(), "3 %d %d %d\n", bf.v[0], bf.v[1], bf.v[2]);
  std::fprintf(f.get(), "CELL_TYPES %zu\n", nf);
  for (std::size_t i = 0; i < nf; ++i) std::fprintf(f.get(), "5\n");
  std::fprintf(f.get(), "CELL_DATA %zu\n", nf);
  std::fprintf(f.get(), "SCALARS bc_tag int 1\nLOOKUP_TABLE default\n");
  for (const auto& bf : m.bfaces)
    std::fprintf(f.get(), "%d\n", static_cast<int>(bf.tag));
  write_point_data(f.get(), m, q);
}

std::uint64_t mesh_fingerprint(const TetMesh& m) {
  // FNV-1a over topology counts and a sample of edges.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(m.num_vertices));
  mix(m.tets.size());
  mix(m.edges.size());
  const std::size_t stride = std::max<std::size_t>(1, m.edges.size() / 64);
  for (std::size_t e = 0; e < m.edges.size(); e += stride) {
    mix(static_cast<std::uint64_t>(m.edges[e].first) << 32 |
        static_cast<std::uint32_t>(m.edges[e].second));
  }
  return h;
}

namespace {
constexpr std::uint64_t kCheckpointMagic = 0x46554e3344434b50ull;  // FUN3DCKP
// Trailing solver-state block (step/CFL/r0). Old readers stop after the
// solution payload and never see it; old files simply end without it.
constexpr std::uint64_t kMetaMagic = 0x46554e33444d4554ull;  // FUN3DMET
// V2 block: step/CFL/r0 plus the decomposition signature (rank count +
// partition hash). Written by every current checkpoint; V1 files stay
// readable (their signature reads back as 0 = unrecorded).
constexpr std::uint64_t kMetaMagic2 = 0x46554e33444d5432ull;  // FUN3DMT2

std::uint64_t double_bits(double v) {
  std::uint64_t b;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double bits_double(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

/// Reads the trailing meta block the file cursor sits before, if any.
CheckpointMeta read_meta_block(std::FILE* f) {
  CheckpointMeta meta;
  std::uint64_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1) return meta;
  if (magic == kMetaMagic) {
    std::uint64_t block[3];
    if (std::fread(block, sizeof(block), 1, f) == 1) {
      meta.step = block[0];
      meta.cfl = bits_double(block[1]);
      meta.r0 = bits_double(block[2]);
    }
  } else if (magic == kMetaMagic2) {
    std::uint64_t block[5];
    if (std::fread(block, sizeof(block), 1, f) == 1) {
      meta.step = block[0];
      meta.cfl = bits_double(block[1]);
      meta.r0 = bits_double(block[2]);
      meta.ranks = block[3];
      meta.partition_hash = block[4];
    }
  }
  return meta;
}

}  // namespace

void save_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<const double> q, const CheckpointMeta* meta) {
  if (q.size() != static_cast<std::size_t>(m.num_vertices) * kNs)
    throw std::invalid_argument("save_checkpoint: q size mismatch");
  // Atomic replace: write everything to a sibling temp file, force it to
  // disk, then rename over the destination. A crash at any point leaves
  // either the old complete checkpoint or the new complete one — never a
  // half-written file under `path`.
  const std::string tmp = path + ".tmp";
  try {
    File f = open_or_throw(tmp, "wb");
    const std::uint64_t header[3] = {kCheckpointMagic, mesh_fingerprint(m),
                                     q.size()};
    bool ok =
        std::fwrite(header, sizeof(header), 1, f.get()) == 1 &&
        std::fwrite(q.data(), sizeof(double), q.size(), f.get()) == q.size();
    if (ok && meta != nullptr) {
      const std::uint64_t block[6] = {kMetaMagic2,           meta->step,
                                      double_bits(meta->cfl),
                                      double_bits(meta->r0), meta->ranks,
                                      meta->partition_hash};
      ok = std::fwrite(block, sizeof(block), 1, f.get()) == 1;
    }
    if (!ok || std::fflush(f.get()) != 0 || fsync(fileno(f.get())) != 0)
      throw std::runtime_error("save_checkpoint: short write to " + tmp);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_checkpoint: cannot rename " + tmp +
                             " to " + path);
  }
}

void load_checkpoint(const std::string& path, const TetMesh& m,
                     std::span<double> q, CheckpointMeta* meta) {
  File f = open_or_throw(path, "rb");
  std::uint64_t header[3];
  if (std::fread(header, sizeof(header), 1, f.get()) != 1)
    throw std::runtime_error("load_checkpoint: short read");
  if (header[0] != kCheckpointMagic)
    throw std::runtime_error("load_checkpoint: not a checkpoint file");
  if (header[1] != mesh_fingerprint(m))
    throw std::runtime_error(
        "load_checkpoint: checkpoint belongs to a different mesh");
  if (header[2] != q.size())
    throw std::runtime_error("load_checkpoint: solution size mismatch");
  if (std::fread(q.data(), sizeof(double), q.size(), f.get()) != q.size())
    throw std::runtime_error("load_checkpoint: truncated data");
  if (meta != nullptr) *meta = read_meta_block(f.get());
}

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  File f = open_or_throw(path, "rb");
  std::uint64_t header[3];
  if (std::fread(header, sizeof(header), 1, f.get()) != 1)
    throw std::runtime_error("read_checkpoint_meta: short read");
  if (header[0] != kCheckpointMagic)
    throw std::runtime_error("read_checkpoint_meta: not a checkpoint file");
  if (std::fseek(f.get(),
                 static_cast<long>(header[2] * sizeof(double)),
                 SEEK_CUR) != 0)
    throw std::runtime_error("read_checkpoint_meta: truncated data");
  return read_meta_block(f.get());
}

std::uint64_t partition_hash(std::span<const idx_t> row_begins,
                             idx_t num_vertices) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(row_begins.size());
  mix(static_cast<std::uint64_t>(num_vertices));
  for (const idx_t rb : row_begins) mix(static_cast<std::uint64_t>(rb));
  return h;
}

void check_checkpoint_signature(const CheckpointMeta& meta, int nranks,
                                std::uint64_t hash) {
  if (meta.ranks == 0) return;  // legacy checkpoint: no signature recorded
  if (meta.ranks != static_cast<std::uint64_t>(nranks))
    throw std::runtime_error(
        "checkpoint decomposition mismatch: written by a " +
        std::to_string(meta.ranks) + "-rank run, restoring into a " +
        std::to_string(nranks) + "-rank run (re-run with --ranks " +
        std::to_string(meta.ranks) + " or start a fresh solve)");
  if (meta.partition_hash != 0 && hash != 0 && meta.partition_hash != hash)
    throw std::runtime_error(
        "checkpoint decomposition mismatch: same rank count (" +
        std::to_string(nranks) +
        ") but a different mesh partition — the stored state is in another "
        "run's renumbering and cannot be restored here");
}

}  // namespace fun3d
