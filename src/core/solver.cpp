#include "core/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/boundary.hpp"
#include "core/gradients.hpp"
#include "core/jacobian.hpp"
#include "core/newton_driver.hpp"
#include "graph/levels.hpp"
#include "sparse/spmv.hpp"
#include "trace/trace.hpp"

namespace fun3d {
namespace {

/// Restricts an adjacency pattern to the block diagonal of `nsub` contiguous
/// row blocks — the sparsity the block-Jacobi (single-level additive
/// Schwarz, zero overlap) preconditioner factorizes.
CsrGraph block_diagonal_pattern(const CsrGraph& adj, idx_t nsub) {
  const idx_t n = adj.num_vertices();
  auto block_of = [&](idx_t v) {
    return std::min<idx_t>(static_cast<idx_t>(
                               static_cast<std::int64_t>(v) * nsub / n),
                           nsub - 1);
  };
  CsrGraph out;
  out.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t v = 0; v < n; ++v) {
    idx_t count = 0;
    for (idx_t u : adj.neighbors(v))
      if (block_of(u) == block_of(v)) ++count;
    out.rowptr[static_cast<std::size_t>(v) + 1] =
        out.rowptr[static_cast<std::size_t>(v)] + count;
  }
  out.col.resize(static_cast<std::size_t>(out.rowptr.back()));
  idx_t w = 0;
  for (idx_t v = 0; v < n; ++v)
    for (idx_t u : adj.neighbors(v))
      if (block_of(u) == block_of(v))
        out.col[static_cast<std::size_t>(w++)] = u;
  return out;
}

}  // namespace

SolverConfig SolverConfig::baseline() {
  SolverConfig c;
  c.flux.layout = VertexLayout::kSoA;
  c.flux.simd = false;
  c.flux.prefetch = false;
  c.strategy = EdgeStrategy::kAtomics;  // irrelevant at nthreads = 1
  c.nthreads = 1;
  c.trsv_mode = TrsvMode::kSerial;
  c.compressed_ilu_buffer = false;
  c.simd_ilu = false;
  c.threaded_vecops = false;
  return c;
}

SolverConfig SolverConfig::optimized(int nthreads) {
  SolverConfig c;
  c.flux.layout = VertexLayout::kAoS;
  c.flux.simd = true;
  c.flux.prefetch = true;
  c.strategy = EdgeStrategy::kReplicationPartitioned;
  c.nthreads = nthreads;
  c.trsv_mode = nthreads > 1 ? TrsvMode::kP2P : TrsvMode::kSerial;
  c.ilu_mode = nthreads > 1 ? IluMode::kP2P : IluMode::kSerial;
  c.compressed_ilu_buffer = true;
  c.simd_ilu = true;
  c.threaded_vecops = true;
  c.gmres_mode = GmresMode::kPipelined;
  return c;
}

FlowSolver::FlowSolver(TetMesh mesh, SolverConfig cfg)
    : mesh_(std::move(mesh)),
      cfg_(cfg),
      fields_(mesh_),
      edges_(mesh_),
      plan_(build_edge_plan(mesh_, cfg.strategy,
                            std::max<idx_t>(1, cfg.nthreads))),
      jac_(make_jacobian_matrix(mesh_)) {
  vec_.nthreads = cfg_.threaded_vecops ? cfg_.nthreads : 1;
  const CsrGraph adj =
      cfg_.subdomains > 1
          ? block_diagonal_pattern(jac_.structure(), cfg_.subdomains)
          : jac_.structure();
  pattern_ = symbolic_ilu(adj, cfg_.fill_level);
  if (cfg_.ilu_mode != IluMode::kSerial) {
    ilu_schedules_ = std::make_unique<IluSchedules>(IluSchedules::build(
        pattern_, std::max<idx_t>(1, cfg_.nthreads), cfg_.sparsify_p2p));
  }
  dt_shift_.assign(static_cast<std::size_t>(mesh_.num_vertices), 0.0);
  wavespeed_.assign(static_cast<std::size_t>(mesh_.num_vertices), 0.0);
  if (cfg_.gradient_method == GradientMethod::kLeastSquares)
    lsq_ = std::make_unique<LsqGradientOperator>(mesh_);
  fields_.set_uniform(cfg_.physics.freestream);
  if (cfg_.flux.layout == VertexLayout::kSoA) fields_.sync_soa_from_aos();
}

FlowSolver::~FlowSolver() = default;

void FlowSolver::fill_report(PerfReport& report,
                             const std::string& prefix) const {
  report.params[prefix + "nthreads"] = cfg_.nthreads;
  report.params[prefix + "fill_level"] = cfg_.fill_level;
  report.params[prefix + "subdomains"] = static_cast<double>(cfg_.subdomains);
  report.params[prefix + "trsv_mode"] = static_cast<double>(cfg_.trsv_mode);
  report.params[prefix + "ilu_mode"] = static_cast<double>(cfg_.ilu_mode);
  report.params[prefix + "second_order"] = cfg_.second_order ? 1.0 : 0.0;
  report.params[prefix + "matrix_free"] = cfg_.matrix_free ? 1.0 : 0.0;
  report.params[prefix + "gmres_mode"] = static_cast<double>(cfg_.gmres_mode);
  report.add_profile(profile_, prefix);
  report.add_edge_plan(plan_, prefix);
  report.add_team_stats(prefix);
  report.add_vecops_stats(prefix);
  report.add_resilience_stats(resil_, prefix);
  if (schedules_ != nullptr) {
    report.add_p2p_plan(schedules_->fwd_plan, prefix + "trsv_fwd.");
    report.add_p2p_plan(schedules_->bwd_plan, prefix + "trsv_bwd.");
  }
  if (ilu_schedules_ != nullptr)
    report.add_factor_schedule(*ilu_schedules_, prefix);
}

void FlowSolver::eval_residual(std::span<const double> q,
                               std::span<double> resid) {
  const std::size_t nq = static_cast<std::size_t>(fields_.nv) * kNs;
  assert(q.size() == nq && resid.size() == nq);
  (void)nq;  // only used by the assert in release builds
  std::copy(q.begin(), q.end(), fields_.q.begin());
  if (cfg_.flux.layout == VertexLayout::kSoA) {
    auto s = profile_.timers.scoped(kernel::kOther);
    fields_.sync_soa_from_aos();
  }
  if (cfg_.second_order) {
    auto s = profile_.timers.scoped(kernel::kGradient);
    trace::TraceSpan span("gradient");
    if (lsq_ != nullptr) {
      lsq_->apply(edges_, plan_, fields_);
    } else {
      compute_gradients(mesh_, edges_, plan_, fields_);
    }
    if (cfg_.flux.layout == VertexLayout::kSoA) fields_.sync_soa_from_aos();
  }
  std::fill(resid.begin(), resid.end(), 0.0);
  {
    auto s = profile_.timers.scoped(kernel::kFlux);
    trace::TraceSpan span("flux");
    compute_edge_fluxes(cfg_.physics, edges_, plan_, cfg_.flux, fields_,
                        resid);
    add_boundary_fluxes(cfg_.physics, mesh_, fields_, resid);
  }
  profile_.residual_evals++;
}

void FlowSolver::factor_preconditioner() {
  auto s = profile_.timers.scoped(kernel::kIlu);
  trace::TraceSpan span("ilu_factor_phase");
  switch (cfg_.ilu_mode) {
    case IluMode::kSerial:
      factor_ = std::make_unique<IluFactor>(factorize_ilu(
          jac_, pattern_, cfg_.compressed_ilu_buffer, cfg_.simd_ilu));
      break;
    case IluMode::kLevels:
      factor_ = std::make_unique<IluFactor>(
          factorize_ilu_levels(jac_, pattern_, *ilu_schedules_,
                               cfg_.simd_ilu));
      break;
    case IluMode::kP2P:
      factor_ = std::make_unique<IluFactor>(factorize_ilu_p2p(
          jac_, pattern_, *ilu_schedules_, cfg_.simd_ilu));
      break;
  }
  if (schedules_ == nullptr && cfg_.trsv_mode != TrsvMode::kSerial) {
    schedules_ = std::make_unique<TrsvSchedules>(TrsvSchedules::build(
        *factor_, std::max<idx_t>(1, cfg_.nthreads), cfg_.sparsify_p2p));
  }
}

void FlowSolver::apply_preconditioner(std::span<const double> in,
                                      std::span<double> out) {
  auto s = profile_.timers.scoped(kernel::kTrsv);
  trace::TraceSpan span("trsv_phase");
  switch (cfg_.trsv_mode) {
    case TrsvMode::kSerial:
      trsv_serial(*factor_, in, out);
      break;
    case TrsvMode::kLevels:
      trsv_levels(*factor_, *schedules_, in, out);
      break;
    case TrsvMode::kP2P:
      trsv_p2p(*factor_, *schedules_, in, out);
      break;
  }
}

CheckpointMeta FlowSolver::restore_checkpoint(const std::string& path) {
  const idx_t row_begins[1] = {0};
  check_checkpoint_signature(read_checkpoint_meta(path), 1,
                             partition_hash(row_begins, mesh_.num_vertices));
  CheckpointMeta meta;
  load_checkpoint(path, mesh_, {fields_.q.data(), fields_.q.size()}, &meta);
  if (cfg_.flux.layout == VertexLayout::kSoA) fields_.sync_soa_from_aos();
  restart_ = meta;
  return meta;
}

/// The single-rank end of the unified driver contract (DESIGN.md §8): all
/// global reductions are plain VecOps reductions, allreduce is the
/// identity, and checkpoints go straight to disk with a 1-rank signature.
class FlowSolver::StepBackend final : public NewtonBackend {
 public:
  explicit StepBackend(FlowSolver& s)
      : s_(s),
        nq_(static_cast<std::size_t>(s.fields_.nv) * kNs),
        jv_tmp_(nq_, 0.0),
        jv_pert_(nq_, 0.0) {}

  [[nodiscard]] std::size_t owned_size() const override { return nq_; }
  [[nodiscard]] std::size_t global_size() const override { return nq_; }
  [[nodiscard]] std::size_t owned_offset() const override { return 0; }
  [[nodiscard]] Profile& profile() override { return s_.profile_; }

  void eval_residual(std::span<const double> u,
                     std::span<double> r) override {
    s_.eval_residual(u, r);
  }

  void prepare_step(double cfl) override {
    // Local pseudo-time shift.
    {
      auto s = s_.profile_.timers.scoped(kernel::kOther);
      compute_wavespeed_sums(s_.cfg_.physics, s_.mesh_, s_.edges_, s_.fields_,
                             {s_.wavespeed_.data(), s_.wavespeed_.size()});
      compute_dt_shift({s_.wavespeed_.data(), s_.wavespeed_.size()}, cfl,
                       {s_.dt_shift_.data(), s_.dt_shift_.size()});
    }
    // First-order Jacobian + boundary + time term.
    {
      auto s = s_.profile_.timers.scoped(kernel::kJacobian);
      trace::TraceSpan span("jacobian");
      assemble_jacobian(s_.cfg_.physics, s_.edges_, s_.plan_, s_.fields_,
                        s_.cfg_.scheme, s_.jac_);
      add_boundary_jacobian(s_.cfg_.physics, s_.mesh_, s_.fields_, s_.jac_);
      s_.jac_.shift_diagonal({s_.dt_shift_.data(), s_.dt_shift_.size()});
    }
    s_.factor_preconditioner();
  }

  LinearOutcome solve_linear(std::span<const double> u,
                             std::span<const double> r,
                             std::span<const double> rhs,
                             std::span<double> du) override {
    const std::size_t nq = nq_;
    const double unorm = s_.vec_.norm2(u);
    s_.profile_.reductions++;
    LinearOp apply_a;
    if (s_.cfg_.matrix_free) {
      apply_a = [&, u, r, unorm](std::span<const double> v,
                                 std::span<double> y) {
        const double vnorm = s_.vec_.norm2(v);
        s_.profile_.reductions++;
        if (vnorm == 0) {
          s_.vec_.set(0.0, y);
          return;
        }
        const double h = std::sqrt(1e-14) * (1.0 + unorm) / vnorm;
        for (std::size_t i = 0; i < nq; ++i)
          jv_pert_[i] = u[i] + h * v[i];
        s_.eval_residual({jv_pert_.data(), nq}, {jv_tmp_.data(), nq});
        const double inv_h = 1.0 / h;
        for (std::size_t i = 0; i < nq; ++i) {
          const std::size_t vtx = i / kNs;
          y[i] = (jv_tmp_[i] - r[i]) * inv_h + s_.dt_shift_[vtx] * v[i];
        }
      };
    } else {
      apply_a = [this](std::span<const double> v, std::span<double> y) {
        spmv_parallel(s_.jac_, v, y, std::max(1, s_.cfg_.nthreads));
      };
    }
    LinearOp precond = [this](std::span<const double> in,
                              std::span<double> out) {
      s_.apply_preconditioner(in, out);
    };
    LinearOutcome lin;
    if (s_.cfg_.krylov == KrylovMethod::kBicgstab) {
      trace::TraceSpan span("bicgstab");
      BicgstabOptions bopt;
      bopt.rtol = s_.cfg_.gmres.rtol;
      bopt.atol = s_.cfg_.gmres.atol;
      bopt.max_iters = s_.cfg_.gmres.max_iters;
      const BicgstabResult bres = bicgstab_solve(
          apply_a, &precond, rhs, du, bopt, s_.vec_, &s_.profile_);
      lin.iterations = bres.iterations;
      lin.relative_residual = bres.relative_residual;
      lin.converged = bres.converged;
      lin.breakdown = bres.breakdown;
    } else {
      trace::TraceSpan span("gmres");
      GmresOptions gopt = s_.cfg_.gmres;
      gopt.mode = s_.cfg_.gmres_mode;
      const GmresResult gres = gmres_solve(apply_a, &precond, rhs, du, gopt,
                                           s_.vec_, &s_.profile_);
      lin.iterations = gres.iterations;
      lin.relative_residual = gres.relative_residual;
      lin.converged = gres.converged;
    }
    return lin;
  }

  [[nodiscard]] double global_norm(std::span<const double> v) override {
    const double n = s_.vec_.norm2(v);
    s_.profile_.reductions++;
    return n;
  }

  [[nodiscard]] double allreduce_sum(double local) override { return local; }

  void apply_update(std::span<const double> du, std::span<double> u) override {
    s_.vec_.axpy(1.0, du, u);
  }

  void save_state_checkpoint(std::span<const double> u,
                             const CheckpointMeta& meta) override {
    CheckpointMeta m = meta;
    m.ranks = 1;
    const idx_t row_begins[1] = {0};
    m.partition_hash = partition_hash(row_begins, s_.mesh_.num_vertices);
    save_checkpoint(s_.cfg_.resilience.checkpoint_path, s_.mesh_, u, &m);
  }

 private:
  FlowSolver& s_;
  std::size_t nq_;
  AVec<double> jv_tmp_, jv_pert_;
};

SolveStats FlowSolver::solve() {
  Timer wall;
  AVec<double> u(fields_.q.begin(), fields_.q.end());
  StepBackend backend(*this);
  NewtonDriver driver(backend, cfg_.ptc, cfg_.resilience);
  SolveStats stats = driver.run({u.data(), u.size()}, restart_);
  restart_.reset();
  resil_ = stats.resilience;
  stats.wall_seconds = wall.seconds();
  if (factor_ != nullptr)
    stats.ilu_parallelism = dag_parallelism(factor_->lower_deps());
  // Leave the converged (or last accepted) state in the fields.
  std::copy(u.begin(), u.end(), fields_.q.begin());
  return stats;
}

}  // namespace fun3d
