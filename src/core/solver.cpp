#include "core/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <csignal>
#include <limits>

#include "core/boundary.hpp"
#include "core/gradients.hpp"
#include "core/jacobian.hpp"
#include "graph/levels.hpp"
#include "sparse/spmv.hpp"
#include "trace/trace.hpp"

namespace fun3d {
namespace {

/// Restricts an adjacency pattern to the block diagonal of `nsub` contiguous
/// row blocks — the sparsity the block-Jacobi (single-level additive
/// Schwarz, zero overlap) preconditioner factorizes.
CsrGraph block_diagonal_pattern(const CsrGraph& adj, idx_t nsub) {
  const idx_t n = adj.num_vertices();
  auto block_of = [&](idx_t v) {
    return std::min<idx_t>(static_cast<idx_t>(
                               static_cast<std::int64_t>(v) * nsub / n),
                           nsub - 1);
  };
  CsrGraph out;
  out.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (idx_t v = 0; v < n; ++v) {
    idx_t count = 0;
    for (idx_t u : adj.neighbors(v))
      if (block_of(u) == block_of(v)) ++count;
    out.rowptr[static_cast<std::size_t>(v) + 1] =
        out.rowptr[static_cast<std::size_t>(v)] + count;
  }
  out.col.resize(static_cast<std::size_t>(out.rowptr.back()));
  idx_t w = 0;
  for (idx_t v = 0; v < n; ++v)
    for (idx_t u : adj.neighbors(v))
      if (block_of(u) == block_of(v))
        out.col[static_cast<std::size_t>(w++)] = u;
  return out;
}

}  // namespace

SolverConfig SolverConfig::baseline() {
  SolverConfig c;
  c.flux.layout = VertexLayout::kSoA;
  c.flux.simd = false;
  c.flux.prefetch = false;
  c.strategy = EdgeStrategy::kAtomics;  // irrelevant at nthreads = 1
  c.nthreads = 1;
  c.trsv_mode = TrsvMode::kSerial;
  c.compressed_ilu_buffer = false;
  c.simd_ilu = false;
  c.threaded_vecops = false;
  return c;
}

SolverConfig SolverConfig::optimized(int nthreads) {
  SolverConfig c;
  c.flux.layout = VertexLayout::kAoS;
  c.flux.simd = true;
  c.flux.prefetch = true;
  c.strategy = EdgeStrategy::kReplicationPartitioned;
  c.nthreads = nthreads;
  c.trsv_mode = nthreads > 1 ? TrsvMode::kP2P : TrsvMode::kSerial;
  c.ilu_mode = nthreads > 1 ? IluMode::kP2P : IluMode::kSerial;
  c.compressed_ilu_buffer = true;
  c.simd_ilu = true;
  c.threaded_vecops = true;
  c.gmres_mode = GmresMode::kPipelined;
  return c;
}

FlowSolver::FlowSolver(TetMesh mesh, SolverConfig cfg)
    : mesh_(std::move(mesh)),
      cfg_(cfg),
      fields_(mesh_),
      edges_(mesh_),
      plan_(build_edge_plan(mesh_, cfg.strategy,
                            std::max<idx_t>(1, cfg.nthreads))),
      jac_(make_jacobian_matrix(mesh_)) {
  vec_.nthreads = cfg_.threaded_vecops ? cfg_.nthreads : 1;
  const CsrGraph adj =
      cfg_.subdomains > 1
          ? block_diagonal_pattern(jac_.structure(), cfg_.subdomains)
          : jac_.structure();
  pattern_ = symbolic_ilu(adj, cfg_.fill_level);
  if (cfg_.ilu_mode != IluMode::kSerial) {
    ilu_schedules_ = std::make_unique<IluSchedules>(IluSchedules::build(
        pattern_, std::max<idx_t>(1, cfg_.nthreads), cfg_.sparsify_p2p));
  }
  dt_shift_.assign(static_cast<std::size_t>(mesh_.num_vertices), 0.0);
  wavespeed_.assign(static_cast<std::size_t>(mesh_.num_vertices), 0.0);
  if (cfg_.gradient_method == GradientMethod::kLeastSquares)
    lsq_ = std::make_unique<LsqGradientOperator>(mesh_);
  fields_.set_uniform(cfg_.physics.freestream);
  if (cfg_.flux.layout == VertexLayout::kSoA) fields_.sync_soa_from_aos();
}

FlowSolver::~FlowSolver() = default;

void FlowSolver::fill_report(PerfReport& report,
                             const std::string& prefix) const {
  report.params[prefix + "nthreads"] = cfg_.nthreads;
  report.params[prefix + "fill_level"] = cfg_.fill_level;
  report.params[prefix + "subdomains"] = static_cast<double>(cfg_.subdomains);
  report.params[prefix + "trsv_mode"] = static_cast<double>(cfg_.trsv_mode);
  report.params[prefix + "ilu_mode"] = static_cast<double>(cfg_.ilu_mode);
  report.params[prefix + "second_order"] = cfg_.second_order ? 1.0 : 0.0;
  report.params[prefix + "matrix_free"] = cfg_.matrix_free ? 1.0 : 0.0;
  report.params[prefix + "gmres_mode"] = static_cast<double>(cfg_.gmres_mode);
  report.add_profile(profile_, prefix);
  report.add_edge_plan(plan_, prefix);
  report.add_team_stats(prefix);
  report.add_vecops_stats(prefix);
  report.add_resilience_stats(resil_, prefix);
  if (schedules_ != nullptr) {
    report.add_p2p_plan(schedules_->fwd_plan, prefix + "trsv_fwd.");
    report.add_p2p_plan(schedules_->bwd_plan, prefix + "trsv_bwd.");
  }
  if (ilu_schedules_ != nullptr)
    report.add_factor_schedule(*ilu_schedules_, prefix);
}

void FlowSolver::eval_residual(std::span<const double> q,
                               std::span<double> resid) {
  const std::size_t nq = static_cast<std::size_t>(fields_.nv) * kNs;
  assert(q.size() == nq && resid.size() == nq);
  (void)nq;  // only used by the assert in release builds
  std::copy(q.begin(), q.end(), fields_.q.begin());
  if (cfg_.flux.layout == VertexLayout::kSoA) {
    auto s = profile_.timers.scoped(kernel::kOther);
    fields_.sync_soa_from_aos();
  }
  if (cfg_.second_order) {
    auto s = profile_.timers.scoped(kernel::kGradient);
    trace::TraceSpan span("gradient");
    if (lsq_ != nullptr) {
      lsq_->apply(edges_, plan_, fields_);
    } else {
      compute_gradients(mesh_, edges_, plan_, fields_);
    }
    if (cfg_.flux.layout == VertexLayout::kSoA) fields_.sync_soa_from_aos();
  }
  std::fill(resid.begin(), resid.end(), 0.0);
  {
    auto s = profile_.timers.scoped(kernel::kFlux);
    trace::TraceSpan span("flux");
    compute_edge_fluxes(cfg_.physics, edges_, plan_, cfg_.flux, fields_,
                        resid);
    add_boundary_fluxes(cfg_.physics, mesh_, fields_, resid);
  }
  profile_.residual_evals++;
}

void FlowSolver::factor_preconditioner() {
  auto s = profile_.timers.scoped(kernel::kIlu);
  trace::TraceSpan span("ilu_factor_phase");
  switch (cfg_.ilu_mode) {
    case IluMode::kSerial:
      factor_ = std::make_unique<IluFactor>(factorize_ilu(
          jac_, pattern_, cfg_.compressed_ilu_buffer, cfg_.simd_ilu));
      break;
    case IluMode::kLevels:
      factor_ = std::make_unique<IluFactor>(
          factorize_ilu_levels(jac_, pattern_, *ilu_schedules_,
                               cfg_.simd_ilu));
      break;
    case IluMode::kP2P:
      factor_ = std::make_unique<IluFactor>(factorize_ilu_p2p(
          jac_, pattern_, *ilu_schedules_, cfg_.simd_ilu));
      break;
  }
  if (schedules_ == nullptr && cfg_.trsv_mode != TrsvMode::kSerial) {
    schedules_ = std::make_unique<TrsvSchedules>(TrsvSchedules::build(
        *factor_, std::max<idx_t>(1, cfg_.nthreads), cfg_.sparsify_p2p));
  }
}

void FlowSolver::apply_preconditioner(std::span<const double> in,
                                      std::span<double> out) {
  auto s = profile_.timers.scoped(kernel::kTrsv);
  trace::TraceSpan span("trsv_phase");
  switch (cfg_.trsv_mode) {
    case TrsvMode::kSerial:
      trsv_serial(*factor_, in, out);
      break;
    case TrsvMode::kLevels:
      trsv_levels(*factor_, *schedules_, in, out);
      break;
    case TrsvMode::kP2P:
      trsv_p2p(*factor_, *schedules_, in, out);
      break;
  }
}

CheckpointMeta FlowSolver::restore_checkpoint(const std::string& path) {
  CheckpointMeta meta;
  load_checkpoint(path, mesh_, {fields_.q.data(), fields_.q.size()}, &meta);
  if (cfg_.flux.layout == VertexLayout::kSoA) fields_.sync_soa_from_aos();
  restart_ = meta;
  return meta;
}

SolveStats FlowSolver::solve() {
  Timer wall;
  SolveStats stats;
  resil_ = ResilienceStats{};
  const ResilienceOptions& res_opt = cfg_.resilience;
  const FaultPlan& fault = res_opt.fault;
  const std::size_t nq = static_cast<std::size_t>(fields_.nv) * kNs;
  AVec<double> u(fields_.q.begin(), fields_.q.end());
  AVec<double> r(nq, 0.0), rhs(nq, 0.0), du(nq, 0.0);
  AVec<double> jv_tmp(nq, 0.0), jv_pert(nq, 0.0);
  // Last accepted state, restored when a trial step is rejected after the
  // update was already applied.
  AVec<double> u_save(nq, 0.0);

  eval_residual(u, {r.data(), nq});
  double rnorm = vec_.norm2({r.data(), nq});
  profile_.reductions++;
  double r0 = rnorm > 0 ? rnorm : 1.0;
  double cfl = cfg_.ptc.cfl0;
  int start_step = 0;
  if (restart_.has_value()) {
    // Resume bitwise where the checkpoint left off: its CFL, its step
    // count, and its reference residual for the relative convergence test
    // (rnorm itself is recomputed above and matches the uninterrupted run
    // bit-for-bit — every kernel is deterministic).
    if (restart_->cfl > 0) cfl = restart_->cfl;
    if (restart_->r0 > 0) r0 = restart_->r0;
    start_step = static_cast<int>(restart_->step);
    stats.steps = start_step;
    restart_.reset();
  }
  stats.residual_history.push_back(rnorm);

  // Fires at most `fault.repeat` attempts of the targeted step (-1 = all).
  auto inject = [&](int target, int step, int attempt) {
    return target >= 0 && target == step &&
           (fault.repeat < 0 || attempt < fault.repeat);
  };
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  bool aborted = false;

  for (int step = start_step; step < cfg_.ptc.max_steps && !aborted; ++step) {
    if (rnorm <= cfg_.ptc.rtol * r0 || rnorm <= cfg_.ptc.atol) {
      stats.converged = true;
      break;
    }
    if (fault.crash_step == step) std::raise(SIGKILL);  // simulated crash
    for (int attempt = 0;; ++attempt) {
      // Local pseudo-time shift.
      {
        auto s = profile_.timers.scoped(kernel::kOther);
        compute_wavespeed_sums(cfg_.physics, mesh_, edges_, fields_,
                               {wavespeed_.data(), wavespeed_.size()});
        compute_dt_shift({wavespeed_.data(), wavespeed_.size()}, cfl,
                         {dt_shift_.data(), dt_shift_.size()});
      }
      // First-order Jacobian + boundary + time term.
      {
        auto s = profile_.timers.scoped(kernel::kJacobian);
        trace::TraceSpan span("jacobian");
        assemble_jacobian(cfg_.physics, edges_, plan_, fields_, cfg_.scheme,
                          jac_);
        add_boundary_jacobian(cfg_.physics, mesh_, fields_, jac_);
        jac_.shift_diagonal({dt_shift_.data(), dt_shift_.size()});
      }
      factor_preconditioner();

      // Solve J du = -R.
      for (std::size_t i = 0; i < nq; ++i) rhs[i] = -r[i];
      std::fill(du.begin(), du.end(), 0.0);

      const double unorm = vec_.norm2({u.data(), nq});
      profile_.reductions++;
      LinearOp apply_a;
      if (cfg_.matrix_free) {
        apply_a = [&](std::span<const double> v, std::span<double> y) {
          const double vnorm = vec_.norm2(v);
          profile_.reductions++;
          if (vnorm == 0) {
            vec_.set(0.0, y);
            return;
          }
          const double h = std::sqrt(1e-14) * (1.0 + unorm) / vnorm;
          for (std::size_t i = 0; i < nq; ++i) jv_pert[i] = u[i] + h * v[i];
          eval_residual({jv_pert.data(), nq}, {jv_tmp.data(), nq});
          const double inv_h = 1.0 / h;
          for (std::size_t i = 0; i < nq; ++i) {
            const std::size_t vtx = i / kNs;
            y[i] = (jv_tmp[i] - r[i]) * inv_h + dt_shift_[vtx] * v[i];
          }
        };
      } else {
        apply_a = [&](std::span<const double> v, std::span<double> y) {
          spmv_parallel(jac_, v, y, std::max(1, cfg_.nthreads));
        };
      }
      LinearOp precond = [&](std::span<const double> in,
                             std::span<double> out) {
        apply_preconditioner(in, out);
      };
      LinearOutcome lin;
      if (cfg_.krylov == KrylovMethod::kBicgstab) {
        trace::TraceSpan span("bicgstab");
        BicgstabOptions bopt;
        bopt.rtol = cfg_.gmres.rtol;
        bopt.atol = cfg_.gmres.atol;
        bopt.max_iters = cfg_.gmres.max_iters;
        const BicgstabResult bres =
            bicgstab_solve(apply_a, &precond, {rhs.data(), nq},
                           {du.data(), nq}, bopt, vec_, &profile_);
        lin.iterations = bres.iterations;
        lin.relative_residual = bres.relative_residual;
        lin.converged = bres.converged;
        lin.breakdown = bres.breakdown;
      } else {
        trace::TraceSpan span("gmres");
        GmresOptions gopt = cfg_.gmres;
        gopt.mode = cfg_.gmres_mode;
        const GmresResult gres =
            gmres_solve(apply_a, &precond, {rhs.data(), nq}, {du.data(), nq},
                        gopt, vec_, &profile_);
        lin.iterations = gres.iterations;
        lin.relative_residual = gres.relative_residual;
        lin.converged = gres.converged;
      }
      stats.linear_iterations += static_cast<std::uint64_t>(lin.iterations);
      profile_.linear_iterations += static_cast<std::uint64_t>(lin.iterations);
      if (!lin.converged) resil_.linear_nonconverged++;

      // Deterministic fault injection (test/CI harness; default off).
      if (inject(fault.breakdown_step, step, attempt)) {
        lin.breakdown = true;
        lin.converged = false;
        resil_.injected_faults++;
      }
      if (inject(fault.nan_update_step, step, attempt)) {
        du[fault_target_index(fault.seed, step, nq)] = kNaN;
        resil_.injected_faults++;
      }

      StepVerdict verdict =
          res_opt.enabled ? check_update_health({du.data(), nq}, lin, res_opt)
                          : StepVerdict::kAccept;
      bool applied = false;
      double rnew = kNaN;
      if (verdict == StepVerdict::kAccept) {
        std::copy(u.begin(), u.end(), u_save.begin());
        vec_.axpy(1.0, {du.data(), nq}, {u.data(), nq});
        applied = true;
        eval_residual(u, {r.data(), nq});
        if (inject(fault.nan_residual_step, step, attempt)) {
          r[fault_target_index(fault.seed, step, nq)] = kNaN;
          resil_.injected_faults++;
        }
        rnew = vec_.norm2({r.data(), nq});
        profile_.reductions++;
        if (res_opt.enabled)
          verdict = check_residual_health(rnorm, rnew, res_opt);
      }

      if (verdict == StepVerdict::kAccept) {
        cfl = ser_update(cfl, rnorm, rnew, cfg_.ptc);
        rnorm = rnew;
        stats.residual_history.push_back(rnorm);
        stats.steps = step + 1;
        profile_.newton_steps++;
        if (res_opt.checkpoint_every > 0 && !res_opt.checkpoint_path.empty() &&
            (step + 1) % res_opt.checkpoint_every == 0) {
          const CheckpointMeta meta{static_cast<std::uint64_t>(step + 1), cfl,
                                    r0};
          save_checkpoint(res_opt.checkpoint_path, mesh_, {u.data(), nq},
                          &meta);
          resil_.checkpoints_written++;
          trace::resilience_instant(
              "checkpoint", step + 1,
              static_cast<std::int64_t>(resil_.checkpoints_written));
        }
        break;
      }

      // Rejected: count the reason, roll back, back the CFL off, retry —
      // or give up with a diagnosable failure once the budget is spent.
      resil_.rejected_steps++;
      switch (verdict) {
        case StepVerdict::kRejectNonFiniteUpdate:
          resil_.nonfinite_update_rejects++;
          break;
        case StepVerdict::kRejectBreakdown:
          resil_.breakdown_rejects++;
          break;
        case StepVerdict::kRejectLinearStall:
          resil_.stall_rejects++;
          break;
        case StepVerdict::kRejectNonFiniteResidual:
          resil_.nonfinite_residual_rejects++;
          break;
        case StepVerdict::kRejectResidualGrowth:
          resil_.growth_rejects++;
          break;
        case StepVerdict::kAccept:
          break;  // unreachable
      }
      trace::resilience_instant("step_reject", step,
                                static_cast<std::int64_t>(verdict));
      if (applied) std::copy(u_save.begin(), u_save.end(), u.begin());
      // Re-anchor the cached field state (and r) to the rolled-back
      // iterate: the trial update and/or the matrix-free Jacobian-vector
      // perturbations left fields_ holding a different — possibly
      // poisoned — state than u, and the next attempt assembles its
      // Jacobian from fields_. Deterministic kernels make this r
      // bit-identical to the one computed at the last accept.
      eval_residual(u, {r.data(), nq});
      if (attempt >= res_opt.max_retries) {
        stats.failure = SolveFailure::kStepRetriesExhausted;
        stats.failure_detail = "step " + std::to_string(step) + " rejected " +
                               std::to_string(attempt + 1) +
                               "x: " + to_string(verdict);
        aborted = true;
        break;
      }
      const double backed = std::max(cfl * res_opt.cfl_backoff,
                                     res_opt.cfl_floor);
      if (backed < cfl) {
        resil_.backoffs++;
        trace::resilience_instant("cfl_backoff", step,
                                  static_cast<std::int64_t>(backed * 1e6));
      }
      cfl = backed;
      resil_.retries++;
    }
  }
  if (rnorm <= cfg_.ptc.rtol * r0 || rnorm <= cfg_.ptc.atol)
    stats.converged = true;
  stats.final_cfl = cfl;
  stats.reference_residual = r0;
  stats.wall_seconds = wall.seconds();
  stats.resilience = resil_;
  if (factor_ != nullptr)
    stats.ilu_parallelism = dag_parallelism(factor_->lower_deps());
  // Leave the converged (or last accepted) state in the fields.
  std::copy(u.begin(), u.end(), fields_.q.begin());
  return stats;
}

}  // namespace fun3d
