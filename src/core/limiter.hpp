// Venkatakrishnan limiter for the MUSCL reconstruction — the smooth slope
// limiter FUN3D applies in transonic/compressible regimes. Our inviscid
// incompressible validation case is smooth, so the solver leaves it off by
// default; it is provided (and tested) for problems with sharp features.
//
// For vertex v and state s:
//   dmax = max over edge-neighbours u of (q_s(u) - q_s(v)), dmin likewise,
//   phi  = min over incident edges of venkat(delta_face, dmax or dmin, eps)
// where delta_face = grad q_s(v) . (midpoint - x_v) is the unlimited
// reconstruction increment and venkat is the smooth rational function
//   venkat(d, dm, e) = (dm^2 + 2 dm d + e) / (dm^2 + 2 d^2 + dm d + e).
// The limited reconstruction q_f = q_v + phi * delta_face then stays within
// the local solution bounds (monotone) while phi -> 1 in smooth regions.
#pragma once

#include "core/fields.hpp"
#include "parallel/edge_partition.hpp"

namespace fun3d {

struct LimiterOptions {
  /// Venkatakrishnan K: eps^2 = (K h)^3 with h a local mesh scale. Larger K
  /// = less limiting in smooth regions.
  double k = 5.0;
};

/// Computes phi (nv*4, in [0,1]) from the current q and grad. Serial or
/// threaded per `plan` (reduction over incident edges is per-vertex
/// max/min, handled with the same ownership rules as the other kernels).
void compute_venkat_limiter(const TetMesh& m, const EdgeArrays& edges,
                            const EdgeLoopPlan& plan, const FlowFields& f,
                            const LimiterOptions& opt,
                            std::span<double> phi);

}  // namespace fun3d
