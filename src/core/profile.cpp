#include "core/profile.hpp"

#include <omp.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <ctime>

#include "core/resilience.hpp"
#include "core/vecops.hpp"
#include "graph/sparsify.hpp"
#include "parallel/edge_partition.hpp"
#include "parallel/team.hpp"
#include "sparse/ilu.hpp"
#include "trace/analysis.hpp"

namespace fun3d {

std::map<std::string, double> Profile::fractions() const {
  std::map<std::string, double> out;
  const double total = timers.total();
  for (const auto& [k, v] : timers.entries())
    out[k] = total > 0 ? v / total : 0.0;
  return out;
}

std::string Profile::format(const std::string& title) const {
  std::string out = title + ":\n";
  char buf[160];
  const double total = timers.total();
  for (const auto& [k, v] : timers.entries()) {
    std::snprintf(buf, sizeof(buf), "  %-10s %10.4f s  (%5.1f%%)\n", k.c_str(),
                  v, total > 0 ? 100.0 * v / total : 0.0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  total %.4f s | %llu steps, %llu linear iters, "
                "%llu residual evals, %llu reductions\n",
                total, static_cast<unsigned long long>(newton_steps),
                static_cast<unsigned long long>(linear_iterations),
                static_cast<unsigned long long>(residual_evals),
                static_cast<unsigned long long>(reductions));
  out += buf;
  return out;
}

void Profile::clear() {
  timers.clear();
  newton_steps = linear_iterations = residual_evals = reductions = 0;
  gmres = GmresStats{};
}

PerfReport PerfReport::begin(std::string bench_id, std::string title) {
  PerfReport r;
  r.bench_id = std::move(bench_id);
  r.title = std::move(title);

  char host[256] = "unknown";
  if (gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  r.info["hostname"] = host;

  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  r.info["timestamp_utc"] = stamp;

#if defined(__VERSION__)
  r.info["compiler"] = __VERSION__;
#endif
#if defined(NDEBUG)
  r.info["build"] = "release";
#else
  r.info["build"] = "debug";
#endif
  r.params["omp_max_threads"] = omp_get_max_threads();
  return r;
}

void PerfReport::add_profile(const Profile& p, const std::string& prefix) {
  for (const auto& [k, v] : p.timers.entries()) kernel_seconds[prefix + k] = v;
  for (const auto& [k, v] : p.fractions()) kernel_fractions[prefix + k] = v;
  counters[prefix + "newton_steps"] = p.newton_steps;
  counters[prefix + "linear_iterations"] = p.linear_iterations;
  counters[prefix + "residual_evals"] = p.residual_evals;
  counters[prefix + "reductions"] = p.reductions;
  // Krylov accounting (GmresStats): which algorithmic path produced each
  // Arnoldi column and what it cost in solver-internal reductions, plus
  // the measured overlap the pipelined mode achieved. validate_report
  // cross-checks the family wherever a (prefixed) gmres.columns appears.
  const std::string g = prefix + "gmres.";
  counters[g + "columns"] = p.gmres.columns;
  counters[g + "pipelined_columns"] = p.gmres.pipelined_columns;
  counters[g + "fallback_columns"] = p.gmres.fallback_columns;
  counters[g + "reductions"] = p.gmres.reductions;
  metrics[g + "reductions_per_column"] = p.gmres.reductions_per_column();
  metrics[g + "overlap_fraction"] = p.gmres.overlap_fraction();
  metrics[g + "overlap_seconds"] = p.gmres.overlap_seconds;
  metrics[g + "column_seconds"] = p.gmres.column_seconds;
}

void PerfReport::add_edge_plan(const EdgeLoopPlan& plan,
                               const std::string& prefix) {
  plan_stats[prefix + "num_edges"] = static_cast<double>(plan.num_edges);
  plan_stats[prefix + "processed_edges"] =
      static_cast<double>(plan.processed_edges);
  plan_stats[prefix + "replication_overhead"] = plan.replication_overhead;
  plan_stats[prefix + "load_imbalance"] = plan.load_imbalance;
  plan_stats[prefix + "num_barriers"] = static_cast<double>(plan.num_barriers);
  plan_stats[prefix + "nthreads"] = static_cast<double>(plan.nthreads);
}

void PerfReport::add_p2p_plan(const P2PSyncPlan& plan,
                              const std::string& prefix) {
  plan_stats[prefix + "raw_cross_deps"] =
      static_cast<double>(plan.raw_cross_deps);
  plan_stats[prefix + "reduced_cross_deps"] =
      static_cast<double>(plan.reduced_cross_deps);
}

void PerfReport::add_factor_schedule(const IluSchedules& s,
                                     const std::string& prefix) {
  const std::string p = prefix + "ilu_factor.";
  plan_stats[p + "nthreads"] = static_cast<double>(s.nthreads);
  plan_stats[p + "nlevels"] = static_cast<double>(s.levels.nlevels);
  plan_stats[p + "critical_path"] = s.critical_path;
  plan_stats[p + "parallelism"] = s.parallelism;
  plan_stats[p + "waits"] =
      s.plan.wait_ptr.empty() ? 0.0
                              : static_cast<double>(s.plan.wait_ptr.back());
  add_p2p_plan(s.plan, p);
}

void PerfReport::add_team_stats(const std::string& prefix) {
  counters[prefix + "team_shortfall_events"] = team_shortfall_events();
  counters[prefix + "team_planned_threads"] =
      static_cast<std::uint64_t>(team_last_planned());
  counters[prefix + "team_delivered_threads"] =
      static_cast<std::uint64_t>(team_last_delivered());
}

void PerfReport::add_vecops_stats(const std::string& prefix) {
  const VecOpsStats s = vecops_stats();
  const std::string p = prefix + "vecops.";
  counters[p + "mdot_batches"] = s.mdot_batches;
  counters[p + "mdot_components"] = s.mdot_components;
  counters[p + "orthogonalize_calls"] = s.orthogonalize_calls;
  counters[p + "orthogonalize_vectors"] = s.orthogonalize_vectors;
  counters[p + "orthogonalize_fallbacks"] = s.orthogonalize_fallbacks;
  counters[p + "split_batches"] = s.split_batches;
  counters[p + "split_fallbacks"] = s.split_fallbacks;
  counters[p + "fused_sweeps"] = s.fused_sweeps;
  counters[p + "unfused_sweeps"] = s.unfused_sweeps;
  metrics[p + "sweeps_saved"] =
      s.unfused_sweeps >= s.fused_sweeps
          ? static_cast<double>(s.unfused_sweeps - s.fused_sweeps)
          : 0.0;
  metrics[p + "fused_bytes"] = static_cast<double>(s.fused_bytes);
  metrics[p + "unfused_bytes"] = static_cast<double>(s.unfused_bytes);
  metrics[p + "bytes_saved_fraction"] =
      s.unfused_bytes > 0
          ? 1.0 - static_cast<double>(s.fused_bytes) /
                      static_cast<double>(s.unfused_bytes)
          : 0.0;
  // A fused MGS column streams its basis once; a capped-team fallback
  // column streams each basis vector twice (dot + axpy).
  metrics[p + "basis_sweeps_per_column"] =
      s.orthogonalize_calls > 0
          ? static_cast<double>(s.orthogonalize_calls +
                                s.orthogonalize_fallbacks) /
                static_cast<double>(s.orthogonalize_calls)
          : 0.0;
}

void PerfReport::add_resilience_stats(const ResilienceStats& s,
                                      const std::string& prefix) {
  const std::string p = prefix + "resilience.";
  counters[p + "rejected_steps"] = s.rejected_steps;
  counters[p + "retries"] = s.retries;
  counters[p + "backoffs"] = s.backoffs;
  counters[p + "nonfinite_update_rejects"] = s.nonfinite_update_rejects;
  counters[p + "nonfinite_residual_rejects"] = s.nonfinite_residual_rejects;
  counters[p + "breakdown_rejects"] = s.breakdown_rejects;
  counters[p + "stall_rejects"] = s.stall_rejects;
  counters[p + "growth_rejects"] = s.growth_rejects;
  counters[p + "linear_nonconverged"] = s.linear_nonconverged;
  counters[p + "checkpoints_written"] = s.checkpoints_written;
  counters[p + "injected_faults"] = s.injected_faults;
}

void PerfReport::add_comm_stats(const CommSummary& c,
                                const std::string& prefix) {
  const std::string p = prefix + "comm.";
  params[p + "ranks"] = c.ranks;
  params[p + "threads_per_rank"] = c.threads_per_rank;
  params[p + "total_ghosts"] = static_cast<double>(c.total_ghosts);
  params[p + "precond_scope"] = c.precond_scope;
  params[p + "overlap_halo"] = c.overlap_halo ? 1.0 : 0.0;
  counters[p + "exchanges"] = c.exchanges;
  counters[p + "exchange_components"] = c.exchange_components;
  counters[p + "packed_cells"] = c.packed_cells;
  counters[p + "halo_bytes"] = c.halo_bytes;
  counters[p + "allreduces"] = c.allreduces;
  counters[p + "barriers"] = c.barriers;
  metrics[p + "overlap_seconds"] = c.overlap_seconds;
  metrics[p + "halo_wait_seconds"] = c.halo_wait_seconds;
  metrics[p + "barrier_wait_seconds"] = c.barrier_wait_seconds;
  metrics[p + "allreduce_wait_seconds"] = c.allreduce_wait_seconds;
  metrics[p + "overlap_fraction"] = c.overlap_fraction;
  metrics[p + "exchanges_per_linear_iteration"] =
      c.exchanges_per_linear_iteration;
}

void PerfReport::add_trace_analysis(const trace::TimelineAnalysis& a,
                                    const std::string& prefix) {
  const std::string p = prefix + "trace.";
  counters[p + "events"] = a.total_events;
  counters[p + "dropped_events"] = a.dropped_events;
  counters[p + "shortfalls"] = a.shortfalls;
  counters[p + "resilience_instants"] = a.resilience_instants;
  counters[p + "threads"] = a.threads.size();
  metrics[p + "total_seconds"] = a.total_seconds;

  double span = 0, wait = 0;
  std::uint64_t spin_waits = 0;
  for (const auto& t : a.threads) {
    span += t.span_seconds;
    wait += t.wait_seconds;
    spin_waits += t.spin_waits;
  }
  counters[p + "spin_waits"] = spin_waits;
  metrics[p + "wait_fraction"] = span > 0 ? wait / span : 0.0;

  for (const auto& k : a.kernels) {
    const std::string kp = p + k.name + ".";
    metrics[kp + "span_seconds"] = k.span_seconds;
    metrics[kp + "wall_seconds"] = k.wall_seconds;
    metrics[kp + "wait_fraction"] = k.wait_fraction();
    metrics[kp + "measured_critical_path_seconds"] =
        k.measured_critical_path_seconds;
    metrics[kp + "max_shard_busy_seconds"] = k.max_shard_busy_seconds;
    metrics[kp + "effective_parallelism"] = k.effective_parallelism();
    counters[kp + "spans"] = k.spans;
    counters[kp + "waits"] = k.waits;
  }

  // The top blocking dependencies are identified by data-dependent
  // (kernel, owner, row) tuples; a string keeps the numeric schema stable.
  if (!a.top_blocking.empty()) {
    std::string s;
    char buf[160];
    for (const auto& d : a.top_blocking) {
      std::snprintf(buf, sizeof(buf), "%s%s owner=%lld row=%lld %.3gs x%llu",
                    s.empty() ? "" : "; ", d.kernel.c_str(),
                    static_cast<long long>(d.owner),
                    static_cast<long long>(d.row), d.seconds,
                    static_cast<unsigned long long>(d.count));
      s += buf;
    }
    info[p + "top_blocking"] = s;
  }
}

namespace {

Json to_json_map(const std::map<std::string, double>& m) {
  Json j = Json::object();
  for (const auto& [k, v] : m) j[k] = Json(v);
  return j;
}

}  // namespace

Json PerfReport::to_json() const {
  Json j = Json::object();
  j["schema_version"] = Json(kSchemaVersion);
  j["bench"] = Json(bench_id);
  j["title"] = Json(title);
  Json ji = Json::object();
  for (const auto& [k, v] : info) ji[k] = Json(v);
  j["info"] = std::move(ji);
  j["params"] = to_json_map(params);
  Json jk = Json::object();
  jk["seconds"] = to_json_map(kernel_seconds);
  jk["fractions"] = to_json_map(kernel_fractions);
  j["kernels"] = std::move(jk);
  Json jc = Json::object();
  for (const auto& [k, v] : counters) jc[k] = Json(v);
  j["counters"] = std::move(jc);
  j["plan"] = to_json_map(plan_stats);
  j["model"] = to_json_map(model);
  j["metrics"] = to_json_map(metrics);
  return j;
}

bool PerfReport::write(const std::string& path, std::string* err) const {
  return write_text_file(path, to_json().dump(2) + "\n", err);
}

namespace {

/// Appends "section.key: why" style problems for non-finite leaves.
void check_finite_section(const Json& report, const char* section,
                          std::vector<std::string>& problems) {
  const Json* s = report.find(section);
  if (s == nullptr || !s->is_object()) {
    problems.push_back(std::string("missing section '") + section + "'");
    return;
  }
  for (std::size_t i = 0; i < s->size(); ++i) {
    const Json& v = s->at(i);
    // Non-finite doubles serialize as JSON null; both shapes are invalid.
    if (!v.is_number() || !std::isfinite(v.as_double()))
      problems.push_back(std::string(section) + "." + s->key_at(i) +
                         ": not a finite number");
  }
}

}  // namespace

std::vector<std::string> validate_report(const Json& report) {
  std::vector<std::string> problems;
  if (!report.is_object()) {
    problems.emplace_back("report is not a JSON object");
    return problems;
  }
  const Json* ver = report.find("schema_version");
  if (ver == nullptr || !ver->is_number())
    problems.emplace_back("missing schema_version");
  else if (ver->as_double() != PerfReport::kSchemaVersion)
    problems.emplace_back("unsupported schema_version");
  const Json* bench = report.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty())
    problems.emplace_back("missing bench id");
  const Json* info = report.find("info");
  if (info == nullptr || !info->is_object() ||
      info->find("timestamp_utc") == nullptr)
    problems.emplace_back("missing info.timestamp_utc");

  check_finite_section(report, "params", problems);
  check_finite_section(report, "plan", problems);
  check_finite_section(report, "model", problems);
  check_finite_section(report, "metrics", problems);

  // Sync-plan consistency: sparsification only removes waits, so wherever
  // a (possibly prefixed) reduced_cross_deps appears, the matching raw
  // count must accompany it and dominate it.
  const Json* plan = report.find("plan");
  if (plan != nullptr && plan->is_object()) {
    const std::string kReduced = "reduced_cross_deps";
    for (std::size_t i = 0; i < plan->size(); ++i) {
      const std::string key = plan->key_at(i);
      if (!key.ends_with(kReduced)) continue;
      const std::string prefix = key.substr(0, key.size() - kReduced.size());
      const Json* raw = plan->find(prefix + "raw_cross_deps");
      if (raw == nullptr) {
        problems.push_back("plan." + key +
                           ": missing matching raw_cross_deps");
        continue;
      }
      if (plan->at(i).as_double(-1) > raw->as_double(-1))
        problems.push_back("plan." + key +
                           ": reduced_cross_deps exceeds raw_cross_deps");
    }
  }

  const Json* kernels = report.find("kernels");
  if (kernels == nullptr || !kernels->is_object() ||
      kernels->find("seconds") == nullptr ||
      kernels->find("fractions") == nullptr) {
    problems.emplace_back("missing kernels.seconds / kernels.fractions");
  } else {
    const Json& secs = *kernels->find("seconds");
    for (std::size_t i = 0; i < secs.size(); ++i)
      if (!secs.at(i).is_number() || !(secs.at(i).as_double() >= 0))
        problems.push_back("kernels.seconds." + secs.key_at(i) +
                           ": negative or non-finite");
    const Json& fr = *kernels->find("fractions");
    double sum = 0;
    for (std::size_t i = 0; i < fr.size(); ++i) {
      const double v = fr.at(i).as_double(-1);
      if (!(v >= 0.0) || v > 1.0 + 1e-9)
        problems.push_back("kernels.fractions." + fr.key_at(i) +
                           ": outside [0,1]");
      else
        sum += v;
    }
    // Fractions of one profile sum to ~1 (or 0 for an unexercised one);
    // prefixed multi-run reports sum to ~(number of runs).
    const double frac = sum - std::floor(sum + 1e-6);
    if (fr.size() > 0 && std::min(frac, 1.0 - frac) > 1e-6)
      problems.emplace_back("kernels.fractions do not sum to a whole number "
                            "of profiles");
  }

  const Json* counters = report.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    problems.emplace_back("missing section 'counters'");
  } else {
    for (std::size_t i = 0; i < counters->size(); ++i)
      if (!counters->at(i).is_number() || counters->at(i).as_double(-1) < 0)
        problems.push_back("counters." + counters->key_at(i) +
                           ": negative or non-numeric");
    // Team-shortfall consistency: wherever a (possibly prefixed)
    // team_shortfall_events counter appears, the planned/delivered team
    // sizes of the latest shortfall must accompany it and tell the same
    // story — nonzero events require planned > delivered >= 1; zero
    // events require both sizes 0 (no shortfall ever observed).
    const std::string kEvents = "team_shortfall_events";
    for (std::size_t i = 0; i < counters->size(); ++i) {
      const std::string key = counters->key_at(i);
      if (!key.ends_with(kEvents)) continue;
      const std::string prefix = key.substr(0, key.size() - kEvents.size());
      const Json* planned = counters->find(prefix + "team_planned_threads");
      const Json* delivered =
          counters->find(prefix + "team_delivered_threads");
      if (planned == nullptr || delivered == nullptr) {
        problems.push_back("counters." + key +
                           ": missing matching team_planned_threads / "
                           "team_delivered_threads");
        continue;
      }
      const double ev = counters->at(i).as_double(-1);
      const double p = planned->as_double(-1), d = delivered->as_double(-1);
      if (ev > 0 && !(p > d && d >= 1))
        problems.push_back("counters." + key +
                           ": shortfall reported but planned/delivered team "
                           "sizes do not show planned > delivered >= 1");
      if (ev == 0 && (p != 0 || d != 0))
        problems.push_back("counters." + key +
                           ": no shortfall but planned/delivered team sizes "
                           "are nonzero");
    }
    // Fused vector-kernel consistency: fusion only removes sweeps, so
    // wherever a (possibly prefixed) vecops.fused_sweeps counter appears,
    // the matching unfused count must accompany it and dominate it.
    const std::string kFused = "vecops.fused_sweeps";
    for (std::size_t i = 0; i < counters->size(); ++i) {
      const std::string key = counters->key_at(i);
      if (!key.ends_with(kFused)) continue;
      const std::string prefix = key.substr(0, key.size() - kFused.size());
      const Json* unfused = counters->find(prefix + "vecops.unfused_sweeps");
      if (unfused == nullptr) {
        problems.push_back("counters." + key +
                           ": missing matching vecops.unfused_sweeps");
        continue;
      }
      if (counters->at(i).as_double(-1) > unfused->as_double(-1))
        problems.push_back("counters." + key +
                           ": fused_sweeps exceeds unfused_sweeps");
    }
    // Krylov-accounting consistency (add_profile): wherever a (possibly
    // prefixed) gmres.columns counter appears, the column-path counters
    // must accompany it, every column must be attributable (pipelined +
    // fallback <= columns; the remainder ran the classical path), any
    // column costs at least one solver-internal reduction, and the derived
    // metrics must match the counters they are derived from.
    const std::string kColumns = "gmres.columns";
    const Json* vmetrics = report.find("metrics");
    for (std::size_t i = 0; i < counters->size(); ++i) {
      const std::string key = counters->key_at(i);
      if (!key.ends_with(kColumns)) continue;
      const std::string prefix = key.substr(0, key.size() - kColumns.size());
      const Json* pip = counters->find(prefix + "gmres.pipelined_columns");
      const Json* fb = counters->find(prefix + "gmres.fallback_columns");
      const Json* red = counters->find(prefix + "gmres.reductions");
      if (pip == nullptr || fb == nullptr || red == nullptr) {
        problems.push_back("counters." + key +
                           ": missing matching gmres.pipelined_columns / "
                           "fallback_columns / reductions");
        continue;
      }
      const double cols = counters->at(i).as_double(-1);
      if (pip->as_double(0) + fb->as_double(0) > cols)
        problems.push_back("counters." + key +
                           ": pipelined + fallback columns exceed columns");
      if (cols > 0 && red->as_double(0) < cols)
        problems.push_back("counters." + prefix + "gmres.reductions" +
                           ": fewer reductions than Arnoldi columns");
      if (vmetrics != nullptr && vmetrics->is_object()) {
        const Json* rpc =
            vmetrics->find(prefix + "gmres.reductions_per_column");
        if (rpc != nullptr && cols > 0 &&
            std::abs(rpc->as_double(-1) - red->as_double(0) / cols) > 1e-9)
          problems.push_back("metrics." + prefix +
                             "gmres.reductions_per_column: does not equal "
                             "gmres.reductions / gmres.columns");
        const Json* ov = vmetrics->find(prefix + "gmres.overlap_fraction");
        if (ov != nullptr) {
          const double v = ov->as_double(-1);
          if (!(v >= 0.0) || v > 1.0 + 1e-9)
            problems.push_back("metrics." + prefix +
                               "gmres.overlap_fraction: outside [0,1]");
        }
      }
    }
    // Step-rejection consistency (add_resilience_stats): wherever a
    // (possibly prefixed) resilience.rejected_steps counter appears, the
    // per-reason reject counters must accompany it and sum to it, and
    // neither retries nor effective backoffs can exceed the rejections
    // that caused them.
    const std::string kRejected = "resilience.rejected_steps";
    for (std::size_t i = 0; i < counters->size(); ++i) {
      const std::string key = counters->key_at(i);
      if (!key.ends_with(kRejected)) continue;
      const std::string prefix = key.substr(0, key.size() - kRejected.size());
      static constexpr const char* kReasons[] = {
          "nonfinite_update_rejects", "nonfinite_residual_rejects",
          "breakdown_rejects", "stall_rejects", "growth_rejects"};
      double reason_sum = 0;
      bool complete = true;
      for (const char* reason : kReasons) {
        const Json* c = counters->find(prefix + "resilience." + reason);
        if (c == nullptr) {
          problems.push_back("counters." + key +
                             ": missing matching resilience." + reason);
          complete = false;
          continue;
        }
        reason_sum += c->as_double(0);
      }
      const double rejected = counters->at(i).as_double(-1);
      if (complete && reason_sum != rejected)
        problems.push_back("counters." + key +
                           ": per-reason reject counters do not sum to "
                           "rejected_steps");
      for (const char* dep : {"retries", "backoffs"}) {
        const Json* c = counters->find(prefix + "resilience." + dep);
        if (c != nullptr && c->as_double(0) > rejected)
          problems.push_back("counters." + prefix + "resilience." + dep +
                             ": exceeds rejected_steps");
      }
    }
    // Halo-exchange consistency (add_comm_stats): wherever a (possibly
    // prefixed) comm.halo_bytes counter appears, the volume accounting
    // must close exactly — bytes are 8 per packed double, and every rank
    // joins every SPMD exchange round, so the cells received across ranks
    // are the component-rounds times the decomposition's total ghosts.
    // This is the cross-check that ties a --measured bench's traffic back
    // to Decomposition::total_ghosts(). overlap_fraction is a ratio of
    // non-negative times, so it must sit in [0,1].
    const std::string kHaloBytes = "comm.halo_bytes";
    const Json* cparams = report.find("params");
    const Json* cmetrics = report.find("metrics");
    for (std::size_t i = 0; i < counters->size(); ++i) {
      const std::string key = counters->key_at(i);
      if (!key.ends_with(kHaloBytes)) continue;
      const std::string prefix = key.substr(0, key.size() - kHaloBytes.size());
      const Json* cells = counters->find(prefix + "comm.packed_cells");
      const Json* comps = counters->find(prefix + "comm.exchange_components");
      if (cells == nullptr || comps == nullptr) {
        problems.push_back("counters." + key +
                           ": missing matching comm.packed_cells / "
                           "comm.exchange_components");
        continue;
      }
      if (counters->at(i).as_double(-1) != 8.0 * cells->as_double(0))
        problems.push_back("counters." + key +
                           ": does not equal 8 * comm.packed_cells");
      const Json* ghosts =
          cparams != nullptr && cparams->is_object()
              ? cparams->find(prefix + "comm.total_ghosts")
              : nullptr;
      if (ghosts == nullptr)
        problems.push_back("counters." + key +
                           ": missing matching params comm.total_ghosts");
      else if (cells->as_double(0) !=
               comps->as_double(0) * ghosts->as_double(0))
        problems.push_back(
            "counters." + prefix +
            "comm.packed_cells: does not equal comm.exchange_components * "
            "comm.total_ghosts");
      if (cmetrics != nullptr && cmetrics->is_object()) {
        const Json* ov = cmetrics->find(prefix + "comm.overlap_fraction");
        if (ov != nullptr) {
          const double v = ov->as_double(-1);
          if (!(v >= 0.0) || v > 1.0 + 1e-9)
            problems.push_back("metrics." + prefix +
                               "comm.overlap_fraction: outside [0,1]");
        }
      }
    }
  }

  // Measured-timeline consistency (emitted by add_trace_analysis). For
  // every per-kernel trace block the realized critical path is sandwiched:
  //   max_shard_busy_seconds <= measured_critical_path_seconds
  //                          <= wall_seconds,
  // wait fractions live in [0,1], and — the cross-check against the
  // schedule's prediction — the realized parallelism busy/critical-path of
  // the ILU factorization kernels cannot exceed the dependency DAG's
  // parallelism bound (plan.*ilu_factor.parallelism) by more than timing
  // noise allows.
  const Json* metrics = report.find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    constexpr double kRel = 1e-3;   // clock-granularity slack
    constexpr double kAbs = 1e-6;   // seconds
    const std::string kCp = "measured_critical_path_seconds";
    double max_dag_parallelism = 0;
    if (plan != nullptr && plan->is_object())
      for (std::size_t i = 0; i < plan->size(); ++i)
        if (plan->key_at(i).ends_with("ilu_factor.parallelism"))
          max_dag_parallelism =
              std::max(max_dag_parallelism, plan->at(i).as_double(0));
    for (std::size_t i = 0; i < metrics->size(); ++i) {
      const std::string key = metrics->key_at(i);
      if (key.ends_with("wait_fraction")) {
        const double v = metrics->at(i).as_double(-1);
        if (!(v >= 0.0) || v > 1.0 + 1e-9)
          problems.push_back("metrics." + key + ": outside [0,1]");
      }
      if (!key.ends_with(kCp)) continue;
      const std::string base = key.substr(0, key.size() - kCp.size());
      const double cp = metrics->at(i).as_double(-1);
      const Json* wall = metrics->find(base + "wall_seconds");
      const Json* shard = metrics->find(base + "max_shard_busy_seconds");
      if (wall == nullptr || shard == nullptr) {
        problems.push_back("metrics." + key +
                           ": missing matching wall_seconds / "
                           "max_shard_busy_seconds");
        continue;
      }
      const double w = wall->as_double(-1), sh = shard->as_double(-1);
      if (cp > w * (1 + kRel) + kAbs)
        problems.push_back("metrics." + key +
                           ": measured critical path exceeds wall time");
      if (sh > cp * (1 + kRel) + kAbs)
        problems.push_back("metrics." + base + "max_shard_busy_seconds" +
                           ": busiest shard exceeds measured critical path");
      // DAG cross-check, only for the kernels a factor schedule predicts.
      if (max_dag_parallelism > 0 &&
          base.find("ilu_factor_") != std::string::npos) {
        const Json* ep = metrics->find(base + "effective_parallelism");
        if (ep != nullptr &&
            ep->as_double(0) > max_dag_parallelism * 1.25 + 0.5)
          problems.push_back(
              "metrics." + base + "effective_parallelism" +
              ": exceeds the schedule's DAG parallelism bound");
      }
    }
  }
  return problems;
}

namespace {

void compare_section(const Json& base, const Json& cur, const char* section,
                     const std::string& path, bool higher_is_worse,
                     double rel_tol, std::vector<std::string>& out) {
  const Json* b = base.find(section);
  if (b == nullptr) return;  // baseline has nothing to hold us to
  const Json* c = cur.find(section);
  char buf[64];
  for (std::size_t i = 0; i < b->size(); ++i) {
    const std::string key = b->key_at(i);
    const Json& bv = b->at(i);
    if (bv.is_object()) {  // e.g. kernels.{seconds,fractions}
      const Json* cv = c != nullptr ? c->find(key) : nullptr;
      if (cv == nullptr) {
        out.push_back(path + section + "." + key + ": section disappeared");
      } else {
        // Only "seconds" style subsections are regressions when they grow;
        // fractions shifting is not by itself a regression.
        if (key == "seconds")
          compare_section(*b, *c, key.c_str(), path + section + ".",
                          higher_is_worse, rel_tol, out);
      }
      continue;
    }
    if (!bv.is_number()) continue;
    const Json* cv = c != nullptr ? c->find(key) : nullptr;
    if (cv == nullptr || !cv->is_number()) {
      out.push_back(path + section + "." + key + ": missing from current");
      continue;
    }
    // Inside metrics/model only time-like leaves are direction-comparable;
    // speedups, rates and ratios legitimately move both ways.
    const bool time_like =
        higher_is_worse || key.find("seconds") != std::string::npos;
    const double bd = bv.as_double(), cd = cv->as_double();
    if (bd <= 0) continue;  // no meaningful relative comparison
    const double growth = cd / bd - 1.0;
    if (time_like && growth > rel_tol) {
      std::snprintf(buf, sizeof(buf), ": %.4g -> %.4g (+%.0f%%)", bd, cd,
                    100 * growth);
      out.push_back(path + section + "." + key + buf);
    }
  }
}

}  // namespace

std::vector<std::string> compare_reports(const Json& baseline,
                                         const Json& current, double rel_tol) {
  std::vector<std::string> out;
  if (!baseline.is_object() || !current.is_object()) {
    out.emplace_back("baseline or current report is not a JSON object");
    return out;
  }
  const Json* bb = baseline.find("bench");
  const Json* cb = current.find("bench");
  if (bb != nullptr && cb != nullptr && bb->as_string() != cb->as_string())
    out.push_back("bench id mismatch: '" + bb->as_string() + "' vs '" +
                  cb->as_string() + "'");
  // kernels.seconds: every leaf is wall time, larger is a regression.
  compare_section(baseline, current, "kernels", "", true, rel_tol, out);
  // metrics/model: only "seconds"-named leaves are direction-comparable.
  compare_section(baseline, current, "metrics", "", false, rel_tol, out);
  compare_section(baseline, current, "model", "", false, rel_tol, out);
  // Team shortfall: a baseline/candidate mismatch means the two runs saw
  // different delivered team sizes — the numbers are not comparable. This
  // is schema-meaningful (an environment difference to investigate), not
  // a performance regression, and the message says so.
  const Json* bc = baseline.find("counters");
  const Json* cc = current.find("counters");
  if (bc != nullptr && bc->is_object() && cc != nullptr && cc->is_object()) {
    for (std::size_t i = 0; i < bc->size(); ++i) {
      const std::string key = bc->key_at(i);
      if (!key.ends_with("team_shortfall_events")) continue;
      const Json* cv = cc->find(key);
      const double b = bc->at(i).as_double(0);
      const double c = cv != nullptr ? cv->as_double(0) : 0.0;
      if ((b > 0) != (c > 0)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "counters.%s: baseline %.0f vs current %.0f — capped "
                      "OpenMP team mismatch (environment difference, not a "
                      "perf regression)",
                      key.c_str(), b, c);
        out.emplace_back(buf);
      }
    }
  }
  // Synchronization regressions: a trace wait fraction that grew both
  // materially (absolute +0.10) and relatively (rel_tol) means threads now
  // stall meaningfully longer in that kernel's p2p waits — a scheduling or
  // sharing regression even if the wall time hides it.
  const Json* bm = baseline.find("metrics");
  const Json* cm = current.find("metrics");
  if (bm != nullptr && bm->is_object() && cm != nullptr && cm->is_object()) {
    for (std::size_t i = 0; i < bm->size(); ++i) {
      const std::string key = bm->key_at(i);
      if (!key.ends_with("wait_fraction")) continue;
      const Json* cv = cm->find(key);
      if (cv == nullptr || !cv->is_number()) continue;
      const double b = bm->at(i).as_double(0), c = cv->as_double(0);
      if (c > b + 0.10 && c > b * (1.0 + rel_tol)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "metrics.%s: %.3f -> %.3f — synchronization wait "
                      "fraction regressed",
                      key.c_str(), b, c);
        out.emplace_back(buf);
      }
    }
  }
  return out;
}

}  // namespace fun3d
