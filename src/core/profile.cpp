#include "core/profile.hpp"

#include <cstdio>

namespace fun3d {

std::map<std::string, double> Profile::fractions() const {
  std::map<std::string, double> out;
  const double total = timers.total();
  if (total <= 0) return out;
  for (const auto& [k, v] : timers.entries()) out[k] = v / total;
  return out;
}

std::string Profile::format(const std::string& title) const {
  std::string out = title + ":\n";
  char buf[160];
  const double total = timers.total();
  for (const auto& [k, v] : timers.entries()) {
    std::snprintf(buf, sizeof(buf), "  %-10s %10.4f s  (%5.1f%%)\n", k.c_str(),
                  v, total > 0 ? 100.0 * v / total : 0.0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  total %.4f s | %llu steps, %llu linear iters, "
                "%llu residual evals, %llu reductions\n",
                total, static_cast<unsigned long long>(newton_steps),
                static_cast<unsigned long long>(linear_iterations),
                static_cast<unsigned long long>(residual_evals),
                static_cast<unsigned long long>(reductions));
  out += buf;
  return out;
}

void Profile::clear() {
  timers.clear();
  newton_steps = linear_iterations = residual_evals = reductions = 0;
}

}  // namespace fun3d
