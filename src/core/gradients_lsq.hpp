// Unweighted least-squares gradient reconstruction (Anderson & Bonhaus —
// the gradient FUN3D itself uses for MUSCL reconstruction).
//
// Per vertex v, fit grad q to the edge differences dq_e = q(u) - q(v) over
// neighbours u in the least-squares sense: grad = (A^T A)^{-1} A^T dq with
// A rows = edge direction vectors. The 3x3 normal-matrix inverses depend
// only on the mesh and are precomputed once; the per-application sweep is
// an edge-based loop like the flux kernel.
//
// Unlike Green-Gauss with the midpoint rule, this is exact for affine
// fields on *every* vertex, including boundary vertices.
#pragma once

#include "core/fields.hpp"
#include "parallel/edge_partition.hpp"

namespace fun3d {

/// Precomputed per-vertex inverse normal matrices (symmetric 3x3, 6 doubles
/// per vertex: xx, xy, xz, yy, yz, zz of (A^T A)^{-1}).
class LsqGradientOperator {
 public:
  explicit LsqGradientOperator(const TetMesh& m);

  /// Overwrites fields.grad. Threading/conflicts follow `plan` (atomics,
  /// replication or colouring — same contract as compute_gradients).
  void apply(const EdgeArrays& edges, const EdgeLoopPlan& plan,
             FlowFields& fields) const;

  [[nodiscard]] const double* inv_normal(idx_t v) const {
    return inv_.data() + static_cast<std::size_t>(v) * 6;
  }

 private:
  AVec<double> inv_;  ///< nv * 6
};

/// Analytic flops per edge of the LSQ accumulation sweep.
double lsq_gradient_flops_per_edge();

}  // namespace fun3d
