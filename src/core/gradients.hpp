// Green-Gauss edge-based gradient reconstruction (the "Grad" kernel, 13% of
// the baseline profile in paper Fig. 5):
//
//   grad q_s(v) = (1/V_v) [ sum_edges n_e * 0.5 (q_s(a)+q_s(b)) (+/-)
//                           + sum_bfaces (n_f / 3) * q_s(v) ]
//
// The boundary closure uses the vertex's own value, which makes the gradient
// of a constant field exactly zero (dual closure identity).
#pragma once

#include "core/fields.hpp"
#include "parallel/edge_partition.hpp"

namespace fun3d {

/// Overwrites fields.grad. Threading/conflict handling follows `plan`.
void compute_gradients(const TetMesh& m, const EdgeArrays& edges,
                       const EdgeLoopPlan& plan, FlowFields& fields);

/// Analytic flops per edge of the gradient kernel (machine-model input).
double gradient_flops_per_edge();

}  // namespace fun3d
