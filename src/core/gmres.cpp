#include "core/gmres.hpp"

#include <cassert>
#include <cmath>
#include <optional>
#include <vector>

#include "util/aligned.hpp"

namespace fun3d {
namespace {

/// Applies the preconditioner or copies when none.
void apply_m(const LinearOp* precond, const VecOps& vec,
             std::span<const double> in, std::span<double> out) {
  if (precond != nullptr) {
    (*precond)(in, out);
  } else {
    vec.copy(in, out);
  }
}

}  // namespace

GmresResult gmres_solve(const LinearOp& apply_a, const LinearOp* precond,
                        std::span<const double> b, std::span<double> x,
                        const GmresOptions& opt, const VecOps& vec,
                        Profile* profile) {
  const std::size_t n = b.size();
  const int m = opt.restart;
  GmresResult res;

  // Krylov basis (m+1 vectors) + Hessenberg (row-major, (m+1) x m:
  // entry (i, j) lives at h[i*m + j]).
  std::vector<AVec<double>> v(static_cast<std::size_t>(m) + 1);
  for (auto& vi : v) vi.resize(n);
  std::vector<double> h(static_cast<std::size_t>((m + 1) * m), 0.0);
  std::vector<double> cs(static_cast<std::size_t>(m)), sn(static_cast<std::size_t>(m)),
      g(static_cast<std::size_t>(m) + 1);
  AVec<double> tmp(n), mtmp(n);

  auto timed = [&](const char* name) {
    return profile != nullptr
               ? std::optional<StopwatchSet::Scope>(std::in_place,
                                                    profile->timers, name)
               : std::nullopt;
  };

  double beta0 = -1;  // preconditioned norm of b (fixed reference)
  while (res.iterations < opt.max_iters) {
    // r = M^{-1}(b - A x)
    apply_a(x, tmp);
    {
      auto s = timed(kernel::kVecOps);
      vec.aypx(-1.0, b, tmp);  // tmp = b - tmp
    }
    apply_m(precond, vec, tmp, v[0]);
    double beta;
    {
      auto s = timed(kernel::kVecOps);
      beta = vec.norm2(v[0]);
      if (profile != nullptr) profile->reductions++;
    }
    if (beta0 < 0) beta0 = beta > 0 ? beta : 1.0;
    res.relative_residual = beta / beta0;
    if (beta <= opt.atol || res.relative_residual <= opt.rtol) {
      res.converged = true;
      return res;
    }
    {
      auto s = timed(kernel::kVecOps);
      vec.scale(1.0 / beta, v[0]);
    }
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    bool breakdown = false;
    for (; j < m && res.iterations < opt.max_iters; ++j) {
      ++res.iterations;
      // w = M^{-1} A v_j
      apply_a(v[static_cast<std::size_t>(j)], tmp);
      apply_m(precond, vec, tmp, mtmp);
      // Modified Gram-Schmidt: one fused column (basis streamed once).
      {
        auto s = timed(kernel::kVecOps);
        std::vector<std::span<const double>> basis;
        basis.reserve(static_cast<std::size_t>(j) + 1);
        for (int i = 0; i <= j; ++i)
          basis.emplace_back(v[static_cast<std::size_t>(i)].data(), n);
        std::vector<double> hcol(static_cast<std::size_t>(j) + 2);
        const double hj1 = vec.orthogonalize(
            std::span<const std::span<const double>>(basis.data(),
                                                     basis.size()),
            mtmp, std::span<double>(hcol.data(), hcol.size()));
        // The j+1 basis dots are sequentially dependent and the trailing
        // norm is one more: j+2 global reductions. `reductions` counts
        // reductions actually performed — a fused mdot batch is one.
        if (profile != nullptr) profile->reductions += j + 2;
        for (int i = 0; i <= j; ++i)
          h[static_cast<std::size_t>(i * m + j)] =
              hcol[static_cast<std::size_t>(i)];
        h[static_cast<std::size_t>((j + 1) * m + j)] = hj1;
        breakdown = !(hj1 > 0);
        if (!breakdown) {
          vec.copy(mtmp, v[static_cast<std::size_t>(j) + 1]);
          vec.scale(1.0 / hj1, v[static_cast<std::size_t>(j) + 1]);
        } else {
          // Happy breakdown: A v_j is already in the span of v_0..v_j. The
          // next basis vector would otherwise keep garbage from the
          // previous restart cycle; zero it and stop expanding the space
          // after this column's rotations/update below.
          vec.set(0.0, v[static_cast<std::size_t>(j) + 1]);
        }
      }
      // Apply stored Givens rotations to the new column, then form a new one.
      for (int i = 0; i < j; ++i) {
        const double t1 = h[static_cast<std::size_t>(i * m + j)];
        const double t2 = h[static_cast<std::size_t>((i + 1) * m + j)];
        h[static_cast<std::size_t>(i * m + j)] =
            cs[static_cast<std::size_t>(i)] * t1 + sn[static_cast<std::size_t>(i)] * t2;
        h[static_cast<std::size_t>((i + 1) * m + j)] =
            -sn[static_cast<std::size_t>(i)] * t1 + cs[static_cast<std::size_t>(i)] * t2;
      }
      {
        const double t1 = h[static_cast<std::size_t>(j * m + j)];
        const double t2 = h[static_cast<std::size_t>((j + 1) * m + j)];
        const double r = std::hypot(t1, t2);
        cs[static_cast<std::size_t>(j)] = r > 0 ? t1 / r : 1.0;
        sn[static_cast<std::size_t>(j)] = r > 0 ? t2 / r : 0.0;
        h[static_cast<std::size_t>(j * m + j)] = r;
        h[static_cast<std::size_t>((j + 1) * m + j)] = 0.0;
        const double gj = g[static_cast<std::size_t>(j)];
        g[static_cast<std::size_t>(j)] = cs[static_cast<std::size_t>(j)] * gj;
        g[static_cast<std::size_t>(j) + 1] = -sn[static_cast<std::size_t>(j)] * gj;
      }
      res.relative_residual =
          std::fabs(g[static_cast<std::size_t>(j) + 1]) / beta0;
      if (breakdown || res.relative_residual <= opt.rtol) {
        ++j;
        break;
      }
    }
    // Back-substitute y from the triangularized H, update x += V y.
    std::vector<double> y(static_cast<std::size_t>(j));
    for (int i = j - 1; i >= 0; --i) {
      double s = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k)
        s -= h[static_cast<std::size_t>(i * m + k)] * y[static_cast<std::size_t>(k)];
      y[static_cast<std::size_t>(i)] = s / h[static_cast<std::size_t>(i * m + i)];
    }
    {
      auto s = timed(kernel::kVecOps);
      std::vector<std::span<const double>> basis;
      basis.reserve(static_cast<std::size_t>(j));
      for (int i = 0; i < j; ++i)
        basis.emplace_back(v[static_cast<std::size_t>(i)].data(), n);
      vec.maxpy(std::span<const double>(y.data(), y.size()),
                std::span<const std::span<const double>>(basis.data(),
                                                         basis.size()),
                x);
    }
    if (res.relative_residual <= opt.rtol) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

}  // namespace fun3d
