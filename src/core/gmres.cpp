#include "core/gmres.hpp"

#include <cassert>
#include <cmath>
#include <optional>
#include <vector>

#include "trace/trace.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace fun3d {
namespace {

/// Applies the preconditioner or copies when none.
void apply_m(const LinearOp* precond, const VecOps& vec,
             std::span<const double> in, std::span<double> out) {
  if (precond != nullptr) {
    (*precond)(in, out);
  } else {
    vec.copy(in, out);
  }
}

/// Relative cancellation floor for the Pythagorean trailing-norm estimate
/// eta^2 = ||w||^2 - sum h_i^2. When the subtraction cancels below this
/// fraction of ||w||^2 the estimate has lost too many bits (the column is
/// near breakdown), and the column re-runs through classical MGS instead.
constexpr double kCancelTol = 1e-8;

}  // namespace

GmresResult gmres_solve(const LinearOp& apply_a, const LinearOp* precond,
                        std::span<const double> b, std::span<double> x,
                        const GmresOptions& opt, const VecOps& vec,
                        Profile* profile) {
  const std::size_t n = b.size();
  const int m = opt.restart;
  const bool pipelined = opt.mode == GmresMode::kPipelined;
  GmresResult res;
  GmresStats st;  // folded into profile->gmres on exit

  // Krylov basis (m+1 vectors) + Hessenberg (row-major, (m+1) x m:
  // entry (i, j) lives at h[i*m + j]).
  std::vector<AVec<double>> v(static_cast<std::size_t>(m) + 1);
  for (auto& vi : v) vi.resize(n);
  std::vector<double> h(static_cast<std::size_t>((m + 1) * m), 0.0);
  std::vector<double> cs(static_cast<std::size_t>(m)), sn(static_cast<std::size_t>(m)),
      g(static_cast<std::size_t>(m) + 1);
  AVec<double> tmp(n), mtmp(n);
  // Pipelined mode carries the operator images z_i = M^{-1} A v_i alongside
  // the basis, so the next column's candidate exists before the current
  // column's reduction completes (Ghysels-style communication hiding).
  std::vector<AVec<double>> z;
  if (pipelined) {
    z.resize(static_cast<std::size_t>(m) + 1);
    for (auto& zi : z) zi.resize(n);
  }

  auto timed = [&](const char* name) {
    return profile != nullptr
               ? std::optional<StopwatchSet::Scope>(std::in_place,
                                                    profile->timers, name)
               : std::nullopt;
  };
  // Solver-internal global reductions: counted in both the netsim Allreduce
  // total (Profile::reductions) and the per-column Krylov budget
  // (GmresStats::reductions). Reductions the operator callback performs
  // internally (e.g. the matrix-free FD norm) reach only the former.
  auto count_reductions = [&](int k) {
    st.reductions += static_cast<std::uint64_t>(k);
    if (profile != nullptr) profile->reductions += static_cast<std::uint64_t>(k);
  };
  auto finish = [&](bool converged) {
    res.converged = converged;
    if (profile != nullptr) {
      profile->gmres.columns += st.columns;
      profile->gmres.pipelined_columns += st.pipelined_columns;
      profile->gmres.fallback_columns += st.fallback_columns;
      profile->gmres.reductions += st.reductions;
      profile->gmres.overlap_seconds += st.overlap_seconds;
      profile->gmres.column_seconds += st.column_seconds;
    }
    return res;
  };
  // w = M^{-1} A in  (uses tmp as scratch; `in` and `out` distinct).
  auto apply_op = [&](std::span<const double> in, std::span<double> out) {
    apply_a(in, tmp);
    apply_m(precond, vec, tmp, out);
  };

  double beta0 = -1;  // preconditioned norm of b (fixed reference)
  while (true) {
    // Cycle head — also the ONLY exit path. Every return below reports the
    // TRUE preconditioned residual ||M^{-1}(b - A x)|| / beta0 computed
    // right here, never the Givens recurrence estimate (which drifts from
    // the truth with strong preconditioners); the estimate is kept in
    // res.estimate_residual for observability.
    // r = M^{-1}(b - A x)
    apply_a(x, tmp);
    {
      auto s = timed(kernel::kVecOps);
      vec.aypx(-1.0, b, tmp);  // tmp = b - tmp
    }
    apply_m(precond, vec, tmp, v[0]);
    double beta;
    {
      auto s = timed(kernel::kVecOps);
      beta = vec.norm2(v[0]);
      count_reductions(1);
    }
    if (beta0 < 0) beta0 = beta > 0 ? beta : 1.0;
    res.relative_residual = beta / beta0;
    if (beta <= opt.atol || res.relative_residual <= opt.rtol)
      return finish(true);
    if (res.iterations >= opt.max_iters) return finish(false);
    {
      auto s = timed(kernel::kVecOps);
      vec.scale(1.0 / beta, v[0]);
    }
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;
    // Prime the pipeline: the first column's candidate is z_0 = Op v_0.
    if (pipelined) apply_op(v[0], z[0]);

    int j = 0;
    bool breakdown = false;
    for (; j < m && res.iterations < opt.max_iters; ++j) {
      ++res.iterations;
      Timer col_timer;
      const auto ju = static_cast<std::size_t>(j);
      std::vector<std::span<const double>> basis;
      basis.reserve(ju + 1);
      for (int i = 0; i <= j; ++i)
        basis.emplace_back(v[static_cast<std::size_t>(i)].data(), n);
      const std::span<const std::span<const double>> basis_view(basis.data(),
                                                                basis.size());
      std::vector<double> hcol(ju + 2);

      if (!pipelined) {
        // Classical column: w = M^{-1} A v_j, then one fused MGS sweep.
        // The j+1 basis dots are sequentially dependent and the trailing
        // norm is one more: j+2 global reductions per column.
        apply_op(v[ju], mtmp);
        auto s = timed(kernel::kVecOps);
        const double hj1 = vec.orthogonalize(
            basis_view, mtmp, std::span<double>(hcol.data(), hcol.size()));
        count_reductions(j + 2);
        for (int i = 0; i <= j; ++i)
          h[static_cast<std::size_t>(i * m + j)] =
              hcol[static_cast<std::size_t>(i)];
        h[static_cast<std::size_t>((j + 1) * m + j)] = hj1;
        breakdown = !(hj1 > 0);
        if (!breakdown) {
          vec.copy(mtmp, v[ju + 1]);
          vec.scale(1.0 / hj1, v[ju + 1]);
        } else {
          // Happy breakdown: A v_j is already in the span of v_0..v_j. The
          // next basis vector would otherwise keep garbage from the
          // previous restart cycle; zero it and stop expanding the space
          // after this column's rotations/update below.
          vec.set(0.0, v[ju + 1]);
        }
      } else {
        // Pipelined column: the candidate w = z_j already exists. Batch
        // the j+1 basis dots AND the candidate's norm-squared into ONE
        // split-phase reduction, and complete it only after the next
        // column's operator application has been issued — the reduction
        // latency hides behind Op z_j.
        std::vector<std::span<const double>> xs = basis;
        xs.emplace_back(z[ju].data(), n);
        MDotBatch batch;
        {
          auto s = timed(kernel::kVecOps);
          batch = vec.mdot_start(
              std::span<const std::span<const double>>(xs.data(), xs.size()),
              std::span<const double>(z[ju].data(), n));
          count_reductions(1);
        }
        {
          // Overlap window: apply the operator to z_j (the image the
          // linearity correction below turns into z_{j+1}) while the
          // reduction is in flight.
          trace::TraceSpan span("gmres_overlap", j);
          Timer overlap_timer;
          apply_op(z[ju], z[ju + 1]);
          st.overlap_seconds += overlap_timer.seconds();
        }
        std::vector<double> dots(ju + 2);
        {
          auto s = timed(kernel::kVecOps);
          vec.mdot_finish(batch, std::span<double>(dots.data(), dots.size()));
        }
        const double mu = dots[ju + 1];  // ||z_j||^2
        double sigma = 0;
        for (int i = 0; i <= j; ++i)
          sigma += dots[static_cast<std::size_t>(i)] *
                   dots[static_cast<std::size_t>(i)];
        const double eta2 = mu - sigma;  // ||w - sum h_i v_i||^2, lagged
        if (!(eta2 > kCancelTol * mu)) {
          // The Pythagorean estimate cancelled: (near) breakdown. Re-run
          // this column through classical MGS on a copy of the candidate
          // (z_j itself must survive — later columns' linearity corrections
          // still read it).
          st.fallback_columns++;
          auto s = timed(kernel::kVecOps);
          vec.copy(z[ju], mtmp);
          const double hj1 = vec.orthogonalize(
              basis_view, mtmp, std::span<double>(hcol.data(), hcol.size()));
          count_reductions(j + 2);
          for (int i = 0; i <= j; ++i)
            h[static_cast<std::size_t>(i * m + j)] =
                hcol[static_cast<std::size_t>(i)];
          h[static_cast<std::size_t>((j + 1) * m + j)] = hj1;
          breakdown = !(hj1 > 0);
          if (!breakdown) {
            vec.copy(mtmp, v[ju + 1]);
            vec.scale(1.0 / hj1, v[ju + 1]);
            // The overlapped Op z_j image no longer matches the rebuilt
            // v_{j+1}; recompute its operator image directly.
            s.reset();
            apply_op(v[ju + 1], z[ju + 1]);
          } else {
            vec.set(0.0, v[ju + 1]);
            vec.set(0.0, z[ju + 1]);
          }
        } else {
          st.pipelined_columns++;
          const double hj1 = std::sqrt(eta2);
          auto s = timed(kernel::kVecOps);
          for (int i = 0; i <= j; ++i)
            h[static_cast<std::size_t>(i * m + j)] =
                dots[static_cast<std::size_t>(i)];
          h[static_cast<std::size_t>((j + 1) * m + j)] = hj1;
          std::vector<double> neg(ju + 1);
          for (int i = 0; i <= j; ++i)
            neg[static_cast<std::size_t>(i)] =
                -dots[static_cast<std::size_t>(i)];
          const std::span<const double> neg_view(neg.data(), neg.size());
          // v_{j+1} = (z_j - sum h_i v_i) / h_{j+1,j}
          vec.copy(z[ju], v[ju + 1]);
          vec.maxpy(neg_view, basis_view, v[ju + 1]);
          vec.scale(1.0 / hj1, v[ju + 1]);
          // z_{j+1} = (Op z_j - sum h_i z_i) / h_{j+1,j}: by linearity of
          // Op this equals Op v_{j+1} without a second operator call. The
          // overlapped image is already sitting in z_{j+1}.
          std::vector<std::span<const double>> zbasis;
          zbasis.reserve(ju + 1);
          for (int i = 0; i <= j; ++i)
            zbasis.emplace_back(z[static_cast<std::size_t>(i)].data(), n);
          vec.maxpy(neg_view,
                    std::span<const std::span<const double>>(zbasis.data(),
                                                             zbasis.size()),
                    z[ju + 1]);
          vec.scale(1.0 / hj1, z[ju + 1]);
          breakdown = false;
        }
      }

      // Apply stored Givens rotations to the new column, then form a new one.
      for (int i = 0; i < j; ++i) {
        const double t1 = h[static_cast<std::size_t>(i * m + j)];
        const double t2 = h[static_cast<std::size_t>((i + 1) * m + j)];
        h[static_cast<std::size_t>(i * m + j)] =
            cs[static_cast<std::size_t>(i)] * t1 + sn[static_cast<std::size_t>(i)] * t2;
        h[static_cast<std::size_t>((i + 1) * m + j)] =
            -sn[static_cast<std::size_t>(i)] * t1 + cs[static_cast<std::size_t>(i)] * t2;
      }
      {
        const double t1 = h[static_cast<std::size_t>(j * m + j)];
        const double t2 = h[static_cast<std::size_t>((j + 1) * m + j)];
        const double r = std::hypot(t1, t2);
        cs[static_cast<std::size_t>(j)] = r > 0 ? t1 / r : 1.0;
        sn[static_cast<std::size_t>(j)] = r > 0 ? t2 / r : 0.0;
        h[static_cast<std::size_t>(j * m + j)] = r;
        h[static_cast<std::size_t>((j + 1) * m + j)] = 0.0;
        const double gj = g[static_cast<std::size_t>(j)];
        g[static_cast<std::size_t>(j)] = cs[static_cast<std::size_t>(j)] * gj;
        g[static_cast<std::size_t>(j) + 1] = -sn[static_cast<std::size_t>(j)] * gj;
      }
      res.estimate_residual =
          std::fabs(g[static_cast<std::size_t>(j) + 1]) / beta0;
      st.columns++;
      st.column_seconds += col_timer.seconds();
      if (breakdown || res.estimate_residual <= opt.rtol) {
        ++j;
        break;
      }
    }
    // Back-substitute y from the triangularized H, update x += V y, then
    // loop back to the cycle head: it recomputes the true residual and
    // decides convergence from that — if the Givens estimate drifted low,
    // the solve simply continues instead of reporting a false success.
    std::vector<double> y(static_cast<std::size_t>(j));
    for (int i = j - 1; i >= 0; --i) {
      double s = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k)
        s -= h[static_cast<std::size_t>(i * m + k)] * y[static_cast<std::size_t>(k)];
      y[static_cast<std::size_t>(i)] = s / h[static_cast<std::size_t>(i * m + i)];
    }
    {
      auto s = timed(kernel::kVecOps);
      std::vector<std::span<const double>> basis;
      basis.reserve(static_cast<std::size_t>(j));
      for (int i = 0; i < j; ++i)
        basis.emplace_back(v[static_cast<std::size_t>(i)].data(), n);
      vec.maxpy(std::span<const double>(y.data(), y.size()),
                std::span<const std::span<const double>>(basis.data(),
                                                         basis.size()),
                x);
    }
  }
}

}  // namespace fun3d
